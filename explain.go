package fd

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Plan is Explain's report: everything the engine decides about a
// query before running it — the join-graph structure it will traverse,
// the dictionary and index statistics behind its scans, the execution
// strategy (and, for a parallel run, the exact task partition), and
// the key a result cache would file the answer under. The report is
// JSON-serialisable and round-trips losslessly; fdserve serves it at
// POST /explain and fdcli prints it with -explain.
//
// The strategy section is not a guess: the task layout comes from the
// same core.ExactLayout / core.ApproxLayout computation the parallel
// executor partitions with, so a plan's task list is what an execution
// of the same query over the same database runs.
type Plan struct {
	// Query is the normalised spec the engine would execute.
	Query Query `json:"query"`
	// CacheKey is the result-cache key of the query over this database:
	// the content fingerprint joined with the canonical spec, the exact
	// key internal/service files cached result lists under.
	CacheKey string `json:"cache_key"`
	// Database describes the relations and their dictionary encoding.
	Database PlanDatabase `json:"database"`
	// JoinGraph describes the relation connection graph.
	JoinGraph PlanGraph `json:"join_graph"`
	// Index reports which access structures engage, and why not.
	Index PlanIndex `json:"index"`
	// Strategy reports the chosen execution shape.
	Strategy PlanStrategy `json:"strategy"`
}

// PlanDatabase describes the queried database.
type PlanDatabase struct {
	// Fingerprint is the content fingerprint, in the %016x form cache
	// keys use.
	Fingerprint string `json:"fingerprint"`
	// Relations lists the relations in database order.
	Relations []PlanRelation `json:"relations"`
	// Tuples is the total tuple count across relations.
	Tuples int `json:"tuples"`
	// DictSize is the number of distinct non-null values in the
	// dictionary encoding.
	DictSize int `json:"dict_size"`
}

// PlanRelation describes one relation of the plan's database.
type PlanRelation struct {
	Name string `json:"name"`
	// Arity is the number of attributes.
	Arity int `json:"arity"`
	// Tuples is the relation's tuple count.
	Tuples int `json:"tuples"`
	// Adjacent names the relations sharing at least one attribute.
	Adjacent []string `json:"adjacent,omitempty"`
}

// PlanGraph describes the relation connection graph (one vertex per
// relation, an edge where schemas share an attribute).
type PlanGraph struct {
	// Connected reports whether one component spans every relation — a
	// full disjunction only combines all relations when it does.
	Connected bool `json:"connected"`
	// Chain and Tree classify the shape (the γ-acyclic workloads).
	Chain bool `json:"chain"`
	Tree  bool `json:"tree"`
	// Components lists the connected components, each as relation names
	// in index order.
	Components [][]string `json:"components"`
}

// PlanIndex reports which access structures the query engages.
type PlanIndex struct {
	// HashIndex reports whether the §7 hash index over the Complete and
	// Incomplete lists is on.
	HashIndex bool `json:"hash_index"`
	// JoinIndex reports whether the equi-join candidate index actually
	// engages. Requesting it is not enough: the approximate modes apply
	// it only under an exact similarity, because a graded similarity
	// admits matches that never equi-join and candidate-only scans
	// would lose results.
	JoinIndex bool `json:"join_index"`
	// JoinIndexReason explains a false JoinIndex.
	JoinIndexReason string `json:"join_index_reason,omitempty"`
	// PostingLists and PostingEntries size an engaged join index: the
	// number of posting lists and the tuple references they hold.
	PostingLists   int `json:"posting_lists,omitempty"`
	PostingEntries int `json:"posting_entries,omitempty"`
}

// PlanStrategy reports the execution shape Open would choose.
type PlanStrategy struct {
	// Execution is "sequential" or "parallel".
	Execution string `json:"execution"`
	// Reason explains a sequential choice when parallelism was
	// requested or defaulted.
	Reason string `json:"reason,omitempty"`
	// Workers is the effective worker count: 1 on the sequential paths,
	// otherwise the resolved Workers clamped to the task count.
	Workers int `json:"workers"`
	// Init is the per-pass initialisation strategy of exact mode.
	Init string `json:"init"`
	// BlockSize is the simulated page size of database scans.
	BlockSize int `json:"block_size"`
	// Passes is the number of per-relation passes the enumeration
	// consists of.
	Passes int `json:"passes"`
	// Tasks is the parallel partition layout: one entry per task, with
	// its pass, block and seed range. Empty for sequential execution.
	Tasks []PlanTask `json:"tasks,omitempty"`
}

// PlanTask is one planned unit of a partitioned enumeration.
type PlanTask struct {
	// Label names the task as observability output will ("pass 2",
	// "pass 0 block 1/4", "approx pass 3").
	Label string `json:"label"`
	// Pass is the seed relation index.
	Pass int `json:"pass"`
	// Block of Blocks places the task within its pass.
	Block  int `json:"block"`
	Blocks int `json:"blocks"`
	// Seeds is the number of seed singletons, indices [SeedLo, SeedHi)
	// of the pass relation.
	Seeds  int `json:"seeds"`
	SeedLo int `json:"seed_lo"`
	SeedHi int `json:"seed_hi"`
}

// Explain reports the plan of q over db without executing it: how the
// engine classifies the join graph, which indexes engage, whether the
// run would be sequential or parallel and under what task partition,
// and the cache key the results would be filed under. Like a first
// query, Explain freezes db (the fingerprint and dictionary statistics
// require the encoded form).
//
// The runtime-only hooks of q (Trace, Pool) participate: they force
// the sequential path exactly as they do under Open, and the plan says
// so.
func Explain(db *Database, q Query) (*Plan, error) {
	if db == nil {
		return nil, fmt.Errorf("fd: nil database")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	n := q.normalize()

	p := &Plan{
		Query:    n,
		CacheKey: fmt.Sprintf("%016x|%s", db.Fingerprint(), n.Canonical()),
	}

	p.Database = PlanDatabase{
		Fingerprint: fmt.Sprintf("%016x", db.Fingerprint()),
		Tuples:      db.NumTuples(),
		DictSize:    db.Dict().Len(),
		Relations:   make([]PlanRelation, db.NumRelations()),
	}
	for i := range p.Database.Relations {
		rel := db.Relation(i)
		pr := PlanRelation{
			Name:   rel.Name(),
			Arity:  rel.Schema().Len(),
			Tuples: rel.Len(),
		}
		for _, j := range db.Adjacent(i) {
			pr.Adjacent = append(pr.Adjacent, db.Relation(j).Name())
		}
		p.Database.Relations[i] = pr
	}

	conn := graph.NewConnection(db)
	p.JoinGraph = PlanGraph{
		Connected: conn.Connected(),
		Chain:     conn.IsChain(),
		Tree:      conn.IsTree(),
	}
	for _, comp := range conn.Components() {
		names := make([]string, len(comp))
		for i, r := range comp {
			names[i] = db.Relation(r).Name()
		}
		p.JoinGraph.Components = append(p.JoinGraph.Components, names)
	}

	p.Index = PlanIndex{HashIndex: n.Options.UseIndex}
	approxMode := n.Mode == ModeApprox || n.Mode == ModeApproxRanked
	switch {
	case !n.Options.UseJoinIndex:
		p.Index.JoinIndexReason = "not requested by the query options"
	case approxMode && n.Sim != "exact":
		// Mirrors approx.ScanOptions / approx.EquiCompatible.
		p.Index.JoinIndexReason = fmt.Sprintf(
			"similarity %q is graded: it admits matches that never equi-join, so candidate-only scans would lose results (the join index engages only under sim \"exact\")",
			n.Sim)
	default:
		p.Index.JoinIndex = true
		p.Index.PostingLists, p.Index.PostingEntries = db.Index().Counts()
	}

	p.Strategy = PlanStrategy{
		Init:      n.Options.Strategy,
		BlockSize: n.Options.BlockSize,
		Passes:    db.NumRelations(),
	}
	workers := q.ParallelWorkers()
	if workers > 1 {
		var layout []core.TaskMeta
		switch n.Mode {
		case ModeExact:
			layout = core.ExactLayout(db, workers)
		case ModeApprox:
			layout = core.ApproxLayout(db)
		}
		if workers > len(layout) {
			// The worker pool never exceeds the task count.
			workers = len(layout)
		}
		p.Strategy.Execution = "parallel"
		p.Strategy.Workers = workers
		p.Strategy.Tasks = make([]PlanTask, len(layout))
		for i, m := range layout {
			p.Strategy.Tasks[i] = PlanTask{
				Label:  m.Label,
				Pass:   m.Pass,
				Block:  m.Block,
				Blocks: m.Blocks,
				Seeds:  m.Seeds(),
				SeedLo: m.SeedLo,
				SeedHi: m.SeedHi,
			}
		}
		return p, nil
	}

	p.Strategy.Execution = "sequential"
	p.Strategy.Workers = 1
	switch {
	case q.Options.Trace != nil || q.Options.Pool != nil:
		p.Strategy.Reason = "per-iteration hooks (Trace, Pool) force the sequential path"
	case n.Mode == ModeRanked || n.Mode == ModeApproxRanked:
		p.Strategy.Reason = "ranked enumeration is inherently serial (the Fig 3 priority-queue order)"
	case n.Mode == ModeExact && n.Options.Strategy != "singletons":
		p.Strategy.Reason = fmt.Sprintf("the %s initialisation feeds each pass from the previous one", n.Options.Strategy)
	case q.Options.Workers == 1:
		p.Strategy.Reason = "one worker requested"
	default:
		p.Strategy.Reason = "one worker resolved (Workers 0 selects GOMAXPROCS)"
	}
	return p, nil
}
