package fd_test

import (
	"testing"

	fd "repro"
	"repro/internal/workload"
)

func TestPublicAPIApproxRanked(t *testing.T) {
	db, sims := workload.TouristApprox()
	imp := map[string]float64{"c1": 1, "c2": 2, "c3": 3, "a1": 4, "a2": 3, "a3": 1}
	for r := 0; r < db.NumRelations(); r++ {
		rel := db.Relation(r)
		for i := 0; i < rel.Len(); i++ {
			if v, ok := imp[rel.Tuple(i).Label]; ok {
				rel.MutateTuple(i, func(t *fd.Tuple) { t.Imp = v })
			}
		}
	}
	amin := fd.Amin(fd.TableSim(sims))

	top, _, err := fd.ApproxTopK(db, amin, 0.4, fd.FMax(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("top-3 returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Rank < top[i].Rank {
			t.Error("rank order violated")
		}
	}

	thr, _, err := fd.ApproxThreshold(db, amin, 0.4, 3, fd.FMax())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range thr {
		if r.Rank < 3 {
			t.Errorf("below rank threshold: %v", r.Rank)
		}
	}

	count := 0
	if _, err := fd.ApproxStreamRanked(db, amin, 0.4, fd.FMax(), func(fd.Ranked) bool {
		count++
		return count < 2
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("streamed %d", count)
	}
}
