package fd_test

import (
	"fmt"

	fd "repro"
)

// tourist builds the three relations of the paper's Table 1.
func tourist() *fd.Database {
	climates := fd.MustRelation("Climates", fd.MustSchema("Country", "Climate"))
	climates.MustAppend("c1", map[fd.Attribute]fd.Value{"Country": fd.V("Canada"), "Climate": fd.V("diverse")})
	climates.MustAppend("c2", map[fd.Attribute]fd.Value{"Country": fd.V("UK"), "Climate": fd.V("temperate")})
	climates.MustAppend("c3", map[fd.Attribute]fd.Value{"Country": fd.V("Bahamas"), "Climate": fd.V("tropical")})
	acc := fd.MustRelation("Accommodations", fd.MustSchema("Country", "City", "Hotel", "Stars"))
	acc.MustAppend("a1", map[fd.Attribute]fd.Value{"Country": fd.V("Canada"), "City": fd.V("Toronto"), "Hotel": fd.V("Plaza"), "Stars": fd.V("4")})
	acc.MustAppend("a2", map[fd.Attribute]fd.Value{"Country": fd.V("Canada"), "City": fd.V("London"), "Hotel": fd.V("Ramada"), "Stars": fd.V("3")})
	acc.MustAppend("a3", map[fd.Attribute]fd.Value{"Country": fd.V("Bahamas"), "City": fd.V("Nassau"), "Hotel": fd.V("Hilton")})
	sites := fd.MustRelation("Sites", fd.MustSchema("Country", "City", "Site"))
	sites.MustAppend("s1", map[fd.Attribute]fd.Value{"Country": fd.V("Canada"), "City": fd.V("London"), "Site": fd.V("Air Show")})
	sites.MustAppend("s2", map[fd.Attribute]fd.Value{"Country": fd.V("Canada"), "Site": fd.V("Mount Logan")})
	sites.MustAppend("s3", map[fd.Attribute]fd.Value{"Country": fd.V("UK"), "City": fd.V("London"), "Site": fd.V("Buckingham")})
	sites.MustAppend("s4", map[fd.Attribute]fd.Value{"Country": fd.V("UK"), "City": fd.V("London"), "Site": fd.V("Hyde Park")})
	return fd.MustDatabase(climates, acc, sites)
}

// ExampleFullDisjunction reproduces Table 2 of the paper: the full
// disjunction of the tourist relations of Table 1.
func ExampleFullDisjunction() {
	db := tourist()
	results, _, err := fd.FullDisjunction(db, fd.Options{})
	if err != nil {
		panic(err)
	}
	for _, t := range results {
		fmt.Println(fd.Format(db, t))
	}
	// Unordered output:
	// {c1, a1}
	// {c1, a2, s1}
	// {c1, s2}
	// {c2, s3}
	// {c2, s4}
	// {c3, a3}
}

// ExampleStream shows incremental consumption: take the first two
// answers and stop — the rest of the full disjunction is never
// computed (the PINC property, Corollary 4.11 of the paper).
func ExampleStream() {
	db := tourist()
	count := 0
	_, err := fd.Stream(db, fd.Options{}, func(t *fd.TupleSet) bool {
		count++
		return count < 2
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(count, "answers consumed")
	// Output:
	// 2 answers consumed
}

// ExampleTopK ranks destinations by hotel stars (imp) and returns the
// best answer only.
func ExampleTopK() {
	db := tourist()
	// imp defaults to 1; promote the four-star Plaza tuple.
	db.Relation(1).MutateTuple(0, func(t *fd.Tuple) { t.Imp = 4 })
	top, _, err := fd.TopK(db, fd.FMax(), 1, fd.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s rank %.0f\n", fd.Format(db, top[0].Set), top[0].Rank)
	// Output:
	// {c1, a1} rank 4
}

// ExampleApproxFullDisjunction joins a misspelled country name using
// Levenshtein similarity: exact joins miss "Cannada", approximate ones
// recover it.
func ExampleApproxFullDisjunction() {
	db := tourist()
	// Misspell c1's Country, as in Example 6.1 of the paper.
	cl := db.Relation(0)
	pos, _ := cl.Schema().Position("Country")
	cl.Tuple(0).Values[pos] = fd.V("Cannada")

	results, _, err := fd.ApproxFullDisjunction(db, fd.Amin(fd.LevenshteinSim()), 0.8)
	if err != nil {
		panic(err)
	}
	for _, t := range results {
		if fd.Format(db, t) == "{c1, a2, s1}" {
			fmt.Println("recovered:", fd.Format(db, t))
		}
	}
	// Output:
	// recovered: {c1, a2, s1}
}
