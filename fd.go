// Package fd computes full disjunctions of relational databases with
// incomplete information — the associative generalisation of the full
// outerjoin to any number of relations — implementing the algorithms of
//
//	Sara Cohen, Yehoshua Sagiv. "An incremental algorithm for computing
//	ranked full disjunctions." PODS 2005; JCSS 73(4):648–668, 2007.
//
// Every evaluation is described by one declarative, JSON-serialisable
// spec — Query — and executed through one entry point:
//
//	Open(ctx, db, Query) (Results, error)
//
// The four modes map onto the paper's four problems:
//
//   - ModeExact: INCREMENTALFD — FD(R), one result at a time in
//     incremental polynomial time (the problem is in PINC), so the
//     first k answers cost polynomial time in the input and k.
//   - ModeRanked: PRIORITYINCREMENTALFD — results arrive in ranking
//     order under a named monotonically c-determined ranking function;
//     K selects top-(k,f), RankTau the (τ,f)-threshold variant.
//   - ModeApprox: APPROXINCREMENTALFD — the (A,τ)-approximate full
//     disjunction under Amin with a named similarity, matching tuples
//     by similarity instead of equality.
//   - ModeApproxRanked: the ranked approximate adaptation the paper
//     sketches at the end of Section 6.
//
// Quick start:
//
//	climates := fd.MustRelation("Climates", fd.MustSchema("Country", "Climate"))
//	climates.MustAppend("c1", map[fd.Attribute]fd.Value{
//		"Country": fd.V("Canada"), "Climate": fd.V("diverse")})
//	// ... more relations ...
//	db := fd.MustDatabase(climates, accommodations, sites)
//	rs, err := fd.Open(ctx, db, fd.Query{Mode: fd.ModeExact})
//	defer rs.Close()
//	for r, ok := rs.Next(); ok; r, ok = rs.Next() {
//		fmt.Println(fd.Format(db, r.Set))
//	}
//
// Results is a pull cursor with explicit suspended state — no producer
// goroutines — and honours ctx cancellation within one enumeration
// step. The named per-mode functions (FullDisjunction, Stream, TopK,
// ApproxStream, ...) remain as deprecated wrappers; docs/QUERY_API.md
// tabulates the old → new mapping.
package fd

import (
	"context"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tupleset"
)

// Core data-model types, re-exported from the internal packages. See
// their documentation for details.
type (
	// Value is a single attribute value; the zero Value is the null ⊥.
	Value = relation.Value
	// Attribute names a column; equal names connect relations.
	Attribute = relation.Attribute
	// Schema is a sorted attribute set.
	Schema = relation.Schema
	// Tuple is a row with optional Label, Imp (ranking) and Prob
	// (approximate joins) metadata. Tuples may be adjusted through
	// Relation.MutateTuple until the database freezes (its first query,
	// or an explicit Database.Freeze); after that MutateTuple panics
	// and appends return an error.
	Tuple = relation.Tuple
	// Relation is a named relation.
	Relation = relation.Relation
	// Database is an immutable set of relations with precomputed join
	// structure and a dictionary-encoded columnar mirror of all values,
	// built lazily at the first query.
	Database = relation.Database
	// Ref identifies a tuple by (relation index, tuple index).
	Ref = relation.Ref
	// TupleSet is a set of tuples, at most one per relation — the unit
	// a full disjunction is made of.
	TupleSet = tupleset.Set
	// Padded is a tuple set rendered as a classical padded tuple.
	Padded = tupleset.Padded
	// Stats carries instrumentation counters of one execution.
	Stats = core.Stats
	// TaskSpan reports one finished parallel enumeration task (label,
	// wall-clock extent, folded counters) to a TaskObserver.
	TaskSpan = core.TaskSpan
	// TaskObserver receives a TaskSpan per finished parallel task; set
	// it via QueryOptions.TaskObserver to trace parallel execution.
	TaskObserver = core.TaskObserver
	// Delay tracks inter-result gaps — the measured form of the paper's
	// polynomial-delay guarantee. Attach one via QueryOptions.Delay and
	// snapshot it any time (see NewDelay).
	Delay = obs.Delay
	// DelaySummary is a point-in-time view of a Delay tracker.
	DelaySummary = obs.DelaySummary
	// Progress holds the atomic live counters of a running enumeration.
	// Attach one via QueryOptions.Progress and snapshot it mid-flight
	// from any goroutine.
	Progress = obs.Progress
	// ProgressData is a point-in-time view of a Progress.
	ProgressData = obs.ProgressData
)

// NewDelay creates a delay tracker keeping the last ring inter-result
// gaps (≤0 selects a default window).
func NewDelay(ring int) *Delay { return obs.NewDelay(ring) }

// Null is the null value ⊥.
var Null = relation.Null

// V returns a non-null value carrying s.
func V(s string) Value { return relation.V(s) }

// NewSchema builds a schema over the given attributes.
func NewSchema(attrs ...Attribute) (*Schema, error) { return relation.NewSchema(attrs...) }

// MustSchema is NewSchema panicking on error.
func MustSchema(attrs ...Attribute) *Schema { return relation.MustSchema(attrs...) }

// NewRelation creates an empty relation.
func NewRelation(name string, schema *Schema) (*Relation, error) {
	return relation.NewRelation(name, schema)
}

// MustRelation is NewRelation panicking on error.
func MustRelation(name string, schema *Schema) *Relation { return relation.MustRelation(name, schema) }

// NewDatabase builds a database over the given relations.
func NewDatabase(rels ...*Relation) (*Database, error) { return relation.NewDatabase(rels...) }

// MustDatabase is NewDatabase panicking on error.
func MustDatabase(rels ...*Relation) *Database { return relation.MustDatabase(rels...) }

// ReadCSV reads a relation from CSV (header row of attribute names;
// optional #label, #imp, #prob metadata columns; empty cells or ⊥ are
// nulls).
func ReadCSV(name string, r io.Reader) (*Relation, error) { return relation.ReadCSV(name, r) }

// WriteCSV writes a relation in the format accepted by ReadCSV.
func WriteCSV(rel *Relation, w io.Writer) error { return relation.WriteCSV(rel, w) }

// WriteSnapshot serialises the database in the versioned binary
// snapshot format (docs/SNAPSHOT_FORMAT.md): the string dictionary,
// per-relation schemas and labels, and the columnar code/imp/prob
// mirror, each section CRC32-checksummed, with the content fingerprint
// embedded in the header. Writing freezes the database.
func WriteSnapshot(db *Database, w io.Writer) error { return db.WriteSnapshot(w) }

// ReadSnapshot loads a database written by WriteSnapshot, adopting the
// dictionary, code columns and join index directly from the file — no
// re-encoding — and verifying every checksum plus the embedded content
// fingerprint before returning. The database arrives frozen and
// query-ready.
func ReadSnapshot(r io.Reader) (*Database, error) { return relation.ReadSnapshot(r) }

// SaveSnapshot writes db's snapshot to a file at path, fsyncing before
// close so the artifact survives a crash right after the call returns.
// It is the file-level convenience the CLIs share; WriteSnapshot is
// the stream-level primitive.
func SaveSnapshot(db *Database, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSnapshot reads a snapshot file written by SaveSnapshot (or any
// WriteSnapshot stream saved to disk).
func LoadSnapshot(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return relation.ReadSnapshot(f)
}

// InitStrategy selects how the per-relation passes of a full
// disjunction are initialised (Section 7 of the paper).
type InitStrategy = core.InitStrategy

// Initialisation strategies.
const (
	// InitSingletons is the textbook Fig 1 initialisation.
	InitSingletons = core.InitSingletons
	// InitSeeded reuses previously printed results (§7, option 2).
	InitSeeded = core.InitSeeded
	// InitProjected projects and extends previous results (§7, option 3).
	InitProjected = core.InitProjected
)

// Options configures full-disjunction evaluation.
type Options = core.Options

// BufferPool simulates a database buffer: with Options.Pool set and a
// block size chosen, page fetches go through LRU caching and only
// misses count as Stats.PageReads (block-based execution, §7 of the
// paper).
type BufferPool = storage.BufferPool

// NewBufferPool creates a pool holding up to capacity pages.
func NewBufferPool(capacity int) *BufferPool { return storage.NewBufferPool(capacity) }

// FullDisjunction computes FD(R): the set of maximal join-consistent
// and connected tuple sets over db's relations (Definition 2.1). Total
// time is O(s·n³·f²) (Corollary 4.9).
//
// Deprecated: use Open with Query{Mode: ModeExact} and drain the
// Results cursor; it adds context cancellation and a uniform result
// type across all modes.
func FullDisjunction(db *Database, opts Options) ([]*TupleSet, Stats, error) {
	return core.FullDisjunction(db, opts)
}

// Stream computes FD(R) incrementally, invoking yield on each result as
// soon as it is available; return false from yield to stop early. k
// results cost O(s²·n⁴·k²) time (Theorem 4.10) — the problem is in
// PINC (Corollary 4.11).
//
// Deprecated: use Open with Query{Mode: ModeExact} (set K to bound the
// prefix) and pull from the Results cursor.
func Stream(db *Database, opts Options, yield func(*TupleSet) bool) (Stats, error) {
	return core.Stream(db, opts, yield)
}

// Cursor is the pull-based form of Stream: a suspended enumeration of
// FD(R) producing one result per Next call. A cursor holds explicit
// state and no goroutine, so abandoning it with Close leaks nothing —
// the shape internal/service builds its paginated query sessions on.
type Cursor = core.Cursor

// NewCursor prepares a pull-based enumeration of FD(R); no work happens
// until the first Next call. Call Close when done (or drain it).
//
// Deprecated: use Open with Query{Mode: ModeExact}; the Results cursor
// it returns adds context cancellation.
func NewCursor(db *Database, opts Options) (*Cursor, error) {
	return core.NewCursor(context.Background(), db, opts)
}

// FDi computes FDi(R): the members of the full disjunction containing a
// tuple of relation seed (the algorithm INCREMENTALFD of Fig 1).
func FDi(db *Database, seed int, opts Options) ([]*TupleSet, Stats, error) {
	return core.FDi(db, seed, opts)
}

// Format renders a tuple set as {label, label, ...} in the notation of
// the paper's Table 2.
func Format(db *Database, t *TupleSet) string { return t.Format(db) }

// Pad renders a tuple set as a classical padded tuple over the union of
// all attributes in the database: the natural join of its members,
// padded with nulls (the right-hand columns of Table 2).
func Pad(db *Database, t *TupleSet) Padded {
	u := tupleset.NewUniverse(db)
	return u.PadOver(t, u.AllAttributes())
}

// PadAll renders many tuple sets over a shared attribute universe,
// returning the sorted attribute list and one padded row per set.
func PadAll(db *Database, sets []*TupleSet) ([]Attribute, []Padded) {
	u := tupleset.NewUniverse(db)
	attrs := u.AllAttributes()
	rows := make([]Padded, len(sets))
	for i, s := range sets {
		rows[i] = u.PadOver(s, attrs)
	}
	return attrs, rows
}
