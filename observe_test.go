package fd_test

import (
	"context"
	"sync"
	"testing"
	"time"

	fd "repro"
)

// TestDelayObservationsSumToWallTime is the delay-tracker property: the
// observed inter-result gaps of a drained cursor telescope — their sum
// is the wall time from Open's return to the last result, within clock
// tolerance, and every result contributes exactly one gap. Checked for
// each cursor family fd.Open routes to.
func TestDelayObservationsSumToWallTime(t *testing.T) {
	chain := explainDB(t, "chain")
	dirty := dirtyDB(t)
	cases := []struct {
		name string
		db   *fd.Database
		q    fd.Query
	}{
		{"exact", chain, fd.Query{Mode: fd.ModeExact,
			Options: fd.QueryOptions{UseIndex: true, Workers: 1}}},
		{"exact-parallel", chain, fd.Query{Mode: fd.ModeExact,
			Options: fd.QueryOptions{UseIndex: true, Workers: 4}}},
		{"ranked", chain, fd.Query{Mode: fd.ModeRanked, Rank: "fmax", K: 20,
			Options: fd.QueryOptions{UseIndex: true}}},
		{"approx", dirty, fd.Query{Mode: fd.ModeApprox, Tau: 0.6,
			Options: fd.QueryOptions{UseIndex: true, Workers: 1}}},
		{"approx-ranked", dirty, fd.Query{Mode: fd.ModeApproxRanked, Tau: 0.6,
			Rank: "fmax", K: 10, Options: fd.QueryOptions{UseIndex: true}}},
	}
	for _, c := range cases {
		q := c.q
		delay := fd.NewDelay(0)
		q.Options.Delay = delay
		start := time.Now()
		rs, err := fd.Open(context.Background(), c.db, q)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		results := 0
		for _, ok := rs.Next(); ok; _, ok = rs.Next() {
			results++
		}
		wall := time.Since(start)
		if err := rs.Err(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		rs.Close()
		if results == 0 {
			t.Fatalf("%s: no results to observe", c.name)
		}
		s := delay.Snapshot()
		if s.Count != int64(results) {
			t.Errorf("%s: %d delay observations for %d results", c.name, s.Count, results)
		}
		// The gaps are anchored at Open's return, so their sum can never
		// exceed the Open-to-drain wall time; and since the drain loop
		// does nothing between Next calls, they account for almost all of
		// it (the slack is Open itself plus per-call clock jitter).
		wallMs := float64(wall.Microseconds()) / 1e3
		if s.SumMillis > wallMs+1 {
			t.Errorf("%s: delay sum %.3fms exceeds wall time %.3fms", c.name, s.SumMillis, wallMs)
		}
		if s.SumMillis < 0 || s.MaxMillis > wallMs+1 {
			t.Errorf("%s: implausible summary %+v for wall %.3fms", c.name, s, wallMs)
		}
	}
}

// TestProgressConcurrentWithNext is the -race acceptance criterion:
// Progress() snapshots taken concurrently with the Next loop are safe
// and monotone, and the final snapshot accounts for every result and
// every partitioned task.
func TestProgressConcurrentWithNext(t *testing.T) {
	db := explainDB(t, "chain")
	for _, workers := range []int{1, 4} {
		prog := &fd.Progress{}
		q := fd.Query{Mode: fd.ModeExact, Options: fd.QueryOptions{
			UseIndex: true, Workers: workers, Progress: prog}}
		plan, err := fd.Explain(db, q)
		if err != nil {
			t.Fatal(err)
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEmitted, lastTasks int64
			for {
				s := prog.Snapshot()
				if s.ResultsEmitted < lastEmitted || s.TasksDone < lastTasks {
					t.Errorf("workers=%d: progress went backwards: %+v after emitted=%d tasks=%d",
						workers, s, lastEmitted, lastTasks)
					return
				}
				lastEmitted, lastTasks = s.ResultsEmitted, s.TasksDone
				select {
				case <-stop:
					return
				default:
				}
			}
		}()

		rs, err := fd.Open(context.Background(), db, q)
		if err != nil {
			t.Fatal(err)
		}
		results := 0
		for _, ok := rs.Next(); ok; _, ok = rs.Next() {
			results++
		}
		if err := rs.Err(); err != nil {
			t.Fatal(err)
		}
		rs.Close()
		close(stop)
		wg.Wait()

		s := prog.Snapshot()
		if s.Phase != "done" {
			t.Errorf("workers=%d: final phase %q, want done", workers, s.Phase)
		}
		if s.ResultsEmitted != int64(results) {
			t.Errorf("workers=%d: ResultsEmitted=%d, %d results delivered", workers, s.ResultsEmitted, results)
		}
		if s.TuplesScanned == 0 {
			t.Errorf("workers=%d: TuplesScanned stayed zero", workers)
		}
		if workers > 1 {
			if s.TasksTotal != int64(len(plan.Strategy.Tasks)) || s.TasksDone != s.TasksTotal {
				t.Errorf("workers=%d: tasks %d/%d, plan promised %d",
					workers, s.TasksDone, s.TasksTotal, len(plan.Strategy.Tasks))
			}
		} else if s.TasksTotal != 0 {
			t.Errorf("workers=1: TasksTotal=%d for an unpartitioned run", s.TasksTotal)
		}
	}
}

// TestProgressEarlyClose: a cursor abandoned before exhaustion still
// reaches the done phase, so pollers never hang on "enumerate".
func TestProgressEarlyClose(t *testing.T) {
	db := explainDB(t, "chain")
	prog := &fd.Progress{}
	rs, err := fd.Open(context.Background(), db, fd.Query{Mode: fd.ModeExact,
		Options: fd.QueryOptions{UseIndex: true, Workers: 1, Progress: prog}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rs.Next(); !ok {
		t.Fatal("no first result")
	}
	if got := prog.Snapshot().Phase; got != "enumerate" {
		t.Fatalf("mid-drain phase %q, want enumerate", got)
	}
	rs.Close()
	if got := prog.Snapshot().Phase; got != "done" {
		t.Errorf("post-Close phase %q, want done", got)
	}
}
