package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	fd "repro"
	"repro/internal/obs"
	"repro/internal/workload"
)

// writeTouristCSVs materialises the tourist relations as CSV files in a
// temp directory and returns their paths.
func writeTouristCSVs(t *testing.T) []string {
	t.Helper()
	db := workload.TouristRanked()
	dir := t.TempDir()
	var paths []string
	for i := 0; i < db.NumRelations(); i++ {
		rel := db.Relation(i)
		path := filepath.Join(dir, rel.Name()+".csv")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := fd.WriteCSV(rel, f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	return paths
}

func TestRunFullDisjunction(t *testing.T) {
	paths := writeTouristCSVs(t)
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), append([]string{"-stats"}, paths...), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"{c1, a1}", "{c1, a2, s1}", "{c1, s2}", "{c2, s3}", "{c2, s4}", "{c3, a3}"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %s:\n%s", want, text)
		}
	}
	if !strings.Contains(errBuf.String(), "iters=") {
		t.Error("-stats produced no counters")
	}
}

func TestRunTopK(t *testing.T) {
	paths := writeTouristCSVs(t)
	var out bytes.Buffer
	if err := run(context.Background(), append([]string{"-rank", "fmax", "-k", "2"}, paths...), &out, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 { // header + 2 results
		t.Fatalf("expected 3 lines, got %d:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[1], "{c1, a1}") || !strings.Contains(lines[1], "4") {
		t.Errorf("top answer wrong: %s", lines[1])
	}
}

func TestRunThreshold(t *testing.T) {
	paths := writeTouristCSVs(t)
	var out bytes.Buffer
	if err := run(context.Background(), append([]string{"-rank", "fmax", "-tau", "3"}, paths...), &out, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 { // header + 3 results with fmax ≥ 3
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out.String())
	}
}

func TestRunApprox(t *testing.T) {
	paths := writeTouristCSVs(t)
	var out bytes.Buffer
	if err := run(context.Background(), append([]string{"-approx", "0.9"}, paths...), &out, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "{c1, a1}") {
		t.Errorf("approximate output missing exact matches:\n%s", out.String())
	}
}

func TestRunSnapshotSaveAndLoad(t *testing.T) {
	paths := writeTouristCSVs(t)
	snap := filepath.Join(t.TempDir(), "tourist.fdb")

	// CSV run with -save: same results, plus a snapshot on disk.
	var csvOut, errBuf bytes.Buffer
	if err := run(context.Background(), append([]string{"-save", snap}, paths...), &csvOut, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "saved snapshot") {
		t.Errorf("no save diagnostic: %s", errBuf.String())
	}

	// Snapshot run: identical output without touching any CSV.
	var snapOut bytes.Buffer
	if err := run(context.Background(), []string{"-snapshot", snap}, &snapOut, &errBuf); err != nil {
		t.Fatal(err)
	}
	if csvOut.String() != snapOut.String() {
		t.Errorf("snapshot run output differs from CSV run:\n%s\nvs\n%s", csvOut.String(), snapOut.String())
	}

	// Ranked and approximate modes work off the snapshot too.
	var topOut bytes.Buffer
	if err := run(context.Background(), []string{"-snapshot", snap, "-rank", "fmax", "-k", "2"}, &topOut, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(topOut.String(), "{c1, a1}") {
		t.Errorf("ranked snapshot run missing top answer:\n%s", topOut.String())
	}
}

func TestRunSnapshotErrors(t *testing.T) {
	var out bytes.Buffer
	paths := writeTouristCSVs(t)
	if err := run(context.Background(), append([]string{"-snapshot", "/nonexistent.fdb"}, paths...), &out, &out); err == nil {
		t.Error("-snapshot combined with CSV args accepted")
	}
	if err := run(context.Background(), []string{"-snapshot", "/nonexistent.fdb"}, &out, &out); err == nil {
		t.Error("missing snapshot file accepted")
	}
	// A CSV is not a snapshot: the magic check must reject it.
	if err := run(context.Background(), []string{"-snapshot", paths[0]}, &out, &out); err == nil {
		t.Error("CSV file accepted as snapshot")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), nil, &out, &out); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run(context.Background(), []string{"/nonexistent/file.csv"}, &out, &out); err == nil {
		t.Error("missing file accepted")
	}
	paths := writeTouristCSVs(t)
	if err := run(context.Background(), append([]string{"-rank", "bogus", "-k", "1"}, paths...), &out, &out); err == nil {
		t.Error("unknown ranking function accepted")
	}
	if err := run(context.Background(), append([]string{"-rank", "fmax"}, paths...), &out, &out); err == nil {
		t.Error("-rank without -k or -tau accepted")
	}
}

// TestRunTrace: -trace prints the span-tree JSON to stderr with the
// load/open/enumerate phases, and the span stats sum to the run's
// final counters (open carries construction, enumerate the delta).
func TestRunTrace(t *testing.T) {
	paths := writeTouristCSVs(t)
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), append([]string{"-trace"}, paths...), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var doc obs.TraceData
	if err := json.Unmarshal(errBuf.Bytes(), &doc); err != nil {
		t.Fatalf("-trace stderr is not a trace document: %v\n%s", err, errBuf.String())
	}
	if doc.ID != "fdcli" {
		t.Errorf("trace id %q", doc.ID)
	}
	for _, want := range []string{"load", "open", "enumerate"} {
		if len(doc.FindAll(want)) != 1 {
			t.Errorf("trace missing %q span:\n%s", want, errBuf.String())
		}
	}
	sum := map[string]int64{}
	for _, name := range []string{"open", "enumerate"} {
		for k, v := range doc.SumStats(name) {
			sum[k] += v
		}
	}
	if sum["emitted"] != 6 { // |FD| of the tourist database
		t.Errorf("span stats sum emitted=%d, want 6", sum["emitted"])
	}
}

func TestRunExplain(t *testing.T) {
	paths := writeTouristCSVs(t)
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), append([]string{"-explain", "-workers", "4"}, paths...), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	var plan fd.Plan
	if err := json.Unmarshal(out.Bytes(), &plan); err != nil {
		t.Fatalf("-explain stdout is not a plan document: %v\n%s", err, out.String())
	}
	if len(plan.Database.Relations) != 3 {
		t.Errorf("plan lists %d relations, want 3", len(plan.Database.Relations))
	}
	if plan.Strategy.Execution != "parallel" || len(plan.Strategy.Tasks) == 0 {
		t.Errorf("workers=4 strategy %+v, want parallel with tasks", plan.Strategy)
	}
	// -explain plans without executing: no result rows on stdout.
	if strings.Contains(out.String(), "tuple set") {
		t.Error("-explain also executed the query")
	}

	var seqOut bytes.Buffer
	if err := run(context.Background(), append([]string{"-explain", "-rank", "fmax", "-k", "2"}, paths...), &seqOut, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(seqOut.Bytes(), &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Strategy.Execution != "sequential" || plan.Strategy.Reason == "" {
		t.Errorf("ranked strategy %+v, want sequential with reason", plan.Strategy)
	}
}

func TestRunProgress(t *testing.T) {
	paths := writeTouristCSVs(t)
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), append([]string{"-progress"}, paths...), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	// The run is far shorter than a ticker period, but the final line
	// always reports the completed state.
	text := errBuf.String()
	if !strings.Contains(text, "progress: phase=done results=6") {
		t.Errorf("-progress final line missing:\n%s", text)
	}
	if !strings.Contains(out.String(), "{c1, a1}") {
		t.Errorf("-progress suppressed results:\n%s", out.String())
	}
}
