// Command fdcli computes full disjunctions of CSV relations.
//
// Each positional argument is a CSV file holding one relation (header
// row of attribute names; optional #label, #imp and #prob metadata
// columns; empty cells or ⊥ are nulls). The relation is named after the
// file's base name.
//
// Modes:
//
//	fdcli a.csv b.csv c.csv             # full disjunction
//	fdcli -k 10 -rank fmax a.csv b.csv  # top-10 under fmax
//	fdcli -rank fmax -tau 3 a.csv b.csv # all answers ranking ≥ 3
//	fdcli -approx 0.8 a.csv b.csv       # approximate FD, Amin+Levenshtein, τ=0.8
//	fdcli -save db.fdb a.csv b.csv      # also save a binary snapshot
//	fdcli -snapshot db.fdb              # query a snapshot (no CSV parsing)
//
// A snapshot (the format of fd.WriteSnapshot, also emitted by
// fdgen -snapshot and fdserve -data) loads without re-parsing or
// re-encoding: the columnar mirror comes straight off disk.
//
// Output is one row per result tuple set: the tuple-set notation
// followed by the padded tuple.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	fd "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "fdcli: %v\n", err)
		os.Exit(1)
	}
}

// run executes the tool against args, writing results to stdout and
// diagnostics to stderr. It is main minus process concerns, so tests
// can drive it directly.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fdcli", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		k        = fs.Int("k", 0, "return only the first k results (0 = all)")
		rankName = fs.String("rank", "", "rank results: fmax, pairsum or triple (requires -k or -tau)")
		tau      = fs.Float64("tau", 0, "with -rank: threshold variant, return results ranking ≥ tau")
		approxT  = fs.Float64("approx", 0, "approximate FD with Amin + Levenshtein similarity at this threshold")
		index    = fs.Bool("index", true, "use the §7 hash index")
		block    = fs.Int("block", 1, "block size for block-based execution")
		stats    = fs.Bool("stats", false, "print execution counters to stderr")
		snapshot = fs.String("snapshot", "", "load the database from a binary snapshot instead of CSV files")
		save     = fs.String("save", "", "write the loaded database to a binary snapshot file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var db *fd.Database
	var err error
	switch {
	case *snapshot != "":
		if fs.NArg() > 0 {
			return fmt.Errorf("give either -snapshot or CSV relations, not both")
		}
		if db, err = fd.LoadSnapshot(*snapshot); err != nil {
			return err
		}
	case fs.NArg() >= 1:
		rels := make([]*fd.Relation, 0, fs.NArg())
		for _, path := range fs.Args() {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			rel, err := fd.ReadCSV(name, f)
			f.Close()
			if err != nil {
				return err
			}
			rels = append(rels, rel)
		}
		if db, err = fd.NewDatabase(rels...); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need at least one CSV relation or -snapshot (see -h)")
	}

	if *save != "" {
		if err := fd.SaveSnapshot(db, *save); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "saved snapshot %s (fingerprint %016x)\n", *save, db.Fingerprint())
	}
	opts := fd.Options{UseIndex: *index, BlockSize: *block}

	var results []*fd.TupleSet
	var ranks []float64
	var execStats fd.Stats

	switch {
	case *approxT > 0:
		execStats, err = fd.ApproxStream(db, fd.Amin(fd.LevenshteinSim()), *approxT,
			func(t *fd.TupleSet) bool {
				results = append(results, t)
				return *k == 0 || len(results) < *k
			})
	case *rankName != "":
		var f fd.RankFunc
		switch *rankName {
		case "fmax":
			f = fd.FMax()
		case "pairsum":
			f = fd.PairSum()
		case "triple":
			f = fd.PaperTriple()
		default:
			return fmt.Errorf("unknown ranking function %q (fmax, pairsum, triple)", *rankName)
		}
		var ranked []fd.Ranked
		switch {
		case *tau > 0:
			ranked, execStats, err = fd.Threshold(db, f, *tau, opts)
		case *k > 0:
			ranked, execStats, err = fd.TopK(db, f, *k, opts)
		default:
			return fmt.Errorf("-rank requires -k or -tau")
		}
		for _, r := range ranked {
			results = append(results, r.Set)
			ranks = append(ranks, r.Rank)
		}
	default:
		execStats, err = fd.Stream(db, opts, func(t *fd.TupleSet) bool {
			results = append(results, t)
			return *k == 0 || len(results) < *k
		})
	}
	if err != nil {
		return err
	}

	attrs, rows := fd.PadAll(db, results)
	header := fmt.Sprintf("%-24s", "tuple set")
	if ranks != nil {
		header += fmt.Sprintf(" %-8s", "rank")
	}
	for _, a := range attrs {
		header += fmt.Sprintf(" %-12s", a)
	}
	fmt.Fprintln(stdout, header)
	for i, t := range results {
		line := fmt.Sprintf("%-24s", fd.Format(db, t))
		if ranks != nil {
			line += fmt.Sprintf(" %-8.3g", ranks[i])
		}
		for _, v := range rows[i].Values {
			line += fmt.Sprintf(" %-12s", v)
		}
		fmt.Fprintln(stdout, line)
	}
	if *stats {
		fmt.Fprintf(stderr, "%s\n", execStats)
	}
	return nil
}
