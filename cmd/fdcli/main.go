// Command fdcli computes full disjunctions of CSV relations through
// the declarative fd.Query API — the same spec fdserve serves over
// HTTP and the library executes via fd.Open.
//
// Each positional argument is a CSV file holding one relation (header
// row of attribute names; optional #label, #imp and #prob metadata
// columns; empty cells or ⊥ are nulls). The relation is named after the
// file's base name.
//
// Modes:
//
//	fdcli a.csv b.csv c.csv               # full disjunction
//	fdcli -k 10 -rank fmax a.csv b.csv    # top-10 under fmax
//	fdcli -rank fmax -tau 3 a.csv b.csv   # all answers ranking ≥ 3
//	fdcli -approx 0.8 a.csv b.csv         # approximate FD, Amin+Levenshtein, τ=0.8
//	fdcli -approx 0.8 -rank fmax -k 5 ... # approx-ranked: top-5 of the approximate FD
//	fdcli -save db.fdb a.csv b.csv        # also save a binary snapshot
//	fdcli -snapshot db.fdb                # query a snapshot (no CSV parsing)
//	fdcli -append b=more.csv a.csv b.csv  # append rows, maintain the FD incrementally
//
// A snapshot (the format of fd.WriteSnapshot, also emitted by
// fdgen -snapshot and fdserve -data) loads without re-parsing or
// re-encoding: the columnar mirror comes straight off disk.
//
// The enumeration honours Ctrl-C: an interrupt cancels the query
// context and the run exits with the context error within one step.
//
// Output is one row per result tuple set: the tuple-set notation
// followed by the padded tuple.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	fd "repro"
	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "fdcli: %v\n", err)
		os.Exit(1)
	}
}

// run executes the tool against args, writing results to stdout and
// diagnostics to stderr. It is main minus process concerns, so tests
// can drive it directly.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fdcli", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		k        = fs.Int("k", 0, "return only the first k results (0 = all)")
		rankName = fs.String("rank", "", "rank results: fmax, pairsum or triple (requires -k or -tau)")
		tau      = fs.Float64("tau", 0, "with -rank: threshold variant, return results ranking ≥ tau")
		approxT  = fs.Float64("approx", 0, "approximate FD with Amin at this threshold")
		simName  = fs.String("sim", "", "with -approx: similarity, levenshtein (default) or exact")
		index    = fs.Bool("index", true, "use the §7 hash index")
		joinIdx  = fs.Bool("joinindex", false, "use the equi-join candidate index")
		block    = fs.Int("block", 1, "block size for block-based execution")
		strategy = fs.String("strategy", "", "init strategy: singletons (default), seeded or projected")
		workers  = fs.Int("workers", 0, "parallel enumeration workers: 0 = GOMAXPROCS, 1 = sequential (exact restart and approx modes; ranked runs sequential)")
		stats    = fs.Bool("stats", false, "print execution counters to stderr")
		trace    = fs.Bool("trace", false, "print the execution trace (span-tree JSON, the GET /queries/{id}/trace schema) to stderr")
		explain  = fs.Bool("explain", false, "print the query plan (the POST /explain schema) to stdout instead of executing")
		progress = fs.Bool("progress", false, "render a live progress line on stderr while draining")
		snapshot = fs.String("snapshot", "", "load the database from a binary snapshot instead of CSV files")
		save     = fs.String("save", "", "write the loaded database to a binary snapshot file")
		appendTo = fs.String("append", "", "relation=file.csv: append the file's rows to that relation and maintain the full disjunction incrementally (extend + delta + patch) instead of recomputing it")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// With -trace every step below records a span; without it the nil
	// trace no-ops each call, so the hot path pays one nil check.
	var tr *obs.Trace
	if *trace {
		tr = obs.NewTrace("fdcli", nil)
	}

	var db *fd.Database
	var err error
	loadSpan := tr.Root().Start("load")
	switch {
	case *snapshot != "":
		if fs.NArg() > 0 {
			return fmt.Errorf("give either -snapshot or CSV relations, not both")
		}
		if db, err = fd.LoadSnapshot(*snapshot); err != nil {
			return err
		}
	case fs.NArg() >= 1:
		rels := make([]*fd.Relation, 0, fs.NArg())
		for _, path := range fs.Args() {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			rel, err := fd.ReadCSV(name, f)
			f.Close()
			if err != nil {
				return err
			}
			rels = append(rels, rel)
		}
		if db, err = fd.NewDatabase(rels...); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need at least one CSV relation or -snapshot (see -h)")
	}
	loadSpan.End()

	if *save != "" {
		if err := fd.SaveSnapshot(db, *save); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "saved snapshot %s (fingerprint %016x)\n", *save, db.Fingerprint())
	}

	if *appendTo != "" {
		if *approxT > 0 || *rankName != "" {
			return fmt.Errorf("-append maintains the exact full disjunction (drop -approx/-rank)")
		}
		return runAppend(db, *appendTo, core.Options{
			UseIndex: *index, UseJoinIndex: *joinIdx, BlockSize: *block,
		}, stdout, stderr)
	}

	// Flags → the declarative query spec.
	q := fd.Query{
		K: *k,
		Options: fd.QueryOptions{
			UseIndex:     *index,
			UseJoinIndex: *joinIdx,
			BlockSize:    *block,
			Strategy:     *strategy,
			Workers:      *workers,
		},
	}
	switch {
	case *approxT > 0 && *rankName != "":
		q.Mode = fd.ModeApproxRanked
		q.Tau, q.Sim = *approxT, *simName
		q.Rank, q.RankTau = *rankName, *tau
	case *approxT > 0:
		q.Mode = fd.ModeApprox
		q.Tau, q.Sim = *approxT, *simName
	case *rankName != "":
		if *k <= 0 && *tau <= 0 {
			return fmt.Errorf("-rank requires -k or -tau")
		}
		q.Mode = fd.ModeRanked
		q.Rank, q.RankTau = *rankName, *tau
	default:
		q.Mode = fd.ModeExact
	}

	if tr != nil {
		// Parallel tasks time themselves on their worker goroutines and
		// report completion spans under the root.
		q.Options.TaskObserver = func(ts fd.TaskSpan) {
			tr.Root().Record("task", ts.Start, ts.End.Sub(ts.Start), ts.Stats.Map(),
				"label", ts.Label)
		}
	}

	if *explain {
		plan, err := fd.Explain(db, q)
		if err != nil {
			return err
		}
		doc, err := json.MarshalIndent(plan, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", doc)
		return nil
	}

	var prog *fd.Progress
	if *progress {
		prog = &fd.Progress{}
		q.Options.Progress = prog
		ticker := time.NewTicker(200 * time.Millisecond)
		done := make(chan struct{})
		defer func() {
			ticker.Stop()
			close(done)
			// One final line so even a sub-tick run shows its totals.
			fmt.Fprintf(stderr, "%s\n", progressLine(prog))
		}()
		go func() {
			for {
				select {
				case <-ticker.C:
					fmt.Fprintf(stderr, "%s\n", progressLine(prog))
				case <-done:
					return
				}
			}
		}()
	}

	openSpan := tr.Root().Start("open")
	rs, err := fd.Open(ctx, db, q)
	if err != nil {
		return err
	}
	defer rs.Close()
	openSpan.SetStats(rs.Stats().Map())
	openSpan.End()
	last := rs.Stats()

	enumSpan := tr.Root().Start("enumerate")
	var results []*fd.TupleSet
	var ranks []float64
	ranked := false
	for {
		r, ok := rs.Next()
		if !ok {
			break
		}
		results = append(results, r.Set)
		if r.Ranked {
			ranked = true
			ranks = append(ranks, r.Rank)
		}
	}
	if err := rs.Err(); err != nil {
		return err
	}
	enumSpan.SetStats(rs.Stats().Sub(last).Map())
	enumSpan.End()
	rs.Close()
	tr.Root().End()

	attrs, rows := fd.PadAll(db, results)
	header := fmt.Sprintf("%-24s", "tuple set")
	if ranked {
		header += fmt.Sprintf(" %-8s", "rank")
	}
	for _, a := range attrs {
		header += fmt.Sprintf(" %-12s", a)
	}
	fmt.Fprintln(stdout, header)
	for i, t := range results {
		line := fmt.Sprintf("%-24s", fd.Format(db, t))
		if ranked {
			line += fmt.Sprintf(" %-8.3g", ranks[i])
		}
		for _, v := range rows[i].Values {
			line += fmt.Sprintf(" %-12s", v)
		}
		fmt.Fprintln(stdout, line)
	}
	if *stats {
		fmt.Fprintf(stderr, "%s\n", rs.Stats())
	}
	if tr != nil {
		doc, err := json.MarshalIndent(tr.Snapshot(), "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "%s\n", doc)
	}
	return nil
}

// progressLine renders one -progress status line from a live snapshot.
func progressLine(p *fd.Progress) string {
	d := p.Snapshot()
	line := fmt.Sprintf("progress: phase=%s results=%d scanned=%d",
		d.Phase, d.ResultsEmitted, d.TuplesScanned)
	if d.TasksTotal > 0 {
		line += fmt.Sprintf(" tasks=%d/%d", d.TasksDone, d.TasksTotal)
	}
	return line
}
