package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	fd "repro"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/relation"
)

// runAppend is the -append mode: compute the base full disjunction,
// extend the named relation with the CSV file's rows, enumerate only
// the batch-anchored delta, and patch the base list instead of
// recomputing it. Output is the maintained result list in the usual
// format; stderr gets a one-line maintenance summary (batch size,
// delta size, subsumed results, rolled fingerprint) so the incremental
// path is observable from the command line.
func runAppend(db *fd.Database, spec string, opts core.Options, stdout, stderr io.Writer) error {
	name, path, ok := strings.Cut(spec, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("-append wants relation=file.csv, got %q", spec)
	}
	relIdx, ok := db.RelationIndex(name)
	if !ok {
		return fmt.Errorf("-append: no relation %q in the database", name)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	batch, err := fd.ReadCSV(name, f)
	f.Close()
	if err != nil {
		return err
	}
	if old, got := db.Relation(relIdx).Schema(), batch.Schema(); !old.Equal(got) {
		return fmt.Errorf("-append: %s has schema %s, relation %q has %s", path, got, name, old)
	}
	tuples := make([]relation.Tuple, batch.Len())
	for i := range tuples {
		tuples[i] = *batch.Tuple(i)
	}

	base, _, err := core.FullDisjunction(db, opts)
	if err != nil {
		return err
	}
	oldFP := db.Fingerprint()
	ext, d, err := delta.Append(db, relIdx, tuples, opts)
	if err != nil {
		return err
	}
	results, removed := d.Patch(base)
	fmt.Fprintf(stderr, "append: %s += %d tuples; delta %d, subsumed %d, |FD| %d -> %d; fingerprint %016x -> %016x\n",
		name, len(tuples), len(d.Added), removed, len(base), len(results), oldFP, ext.Fingerprint())

	attrs, rows := fd.PadAll(ext, results)
	header := fmt.Sprintf("%-24s", "tuple set")
	for _, a := range attrs {
		header += fmt.Sprintf(" %-12s", a)
	}
	fmt.Fprintln(stdout, header)
	for i, t := range results {
		line := fmt.Sprintf("%-24s", fd.Format(ext, t))
		for _, v := range rows[i].Values {
			line += fmt.Sprintf(" %-12s", v)
		}
		fmt.Fprintln(stdout, line)
	}
	return nil
}
