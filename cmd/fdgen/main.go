// Command fdgen emits synthetic workloads as CSV files, one per
// relation, in the format accepted by fdcli and fd.ReadCSV — or, with
// -snapshot, as one binary columnar snapshot (the format of
// fd.WriteSnapshot) that fdcli and fdserve load without re-parsing or
// re-encoding anything.
//
// Usage:
//
//	fdgen -shape chain -n 4 -m 16 -domain 4 -out /tmp/wl
//	fdgen -shape dirty -n 3 -m 10 -error 0.3 -out /tmp/dirty
//	fdgen -shape chain -n 4 -m 1000 -snapshot /tmp/big.fdb
//
// Shapes: chain, star, cycle, clique, random, dirty (misspelled chain
// for approximate joins). With -snapshot, CSVs are written only when
// -out is also given explicitly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	fd "repro"
	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fdgen: %v\n", err)
		os.Exit(1)
	}
}

// run executes the generator against args, reporting written files to
// stdout. Separated from main for testability.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fdgen", flag.ContinueOnError)
	var (
		shape    = fs.String("shape", "chain", "workload shape: chain, star, cycle, clique, random, dirty")
		n        = fs.Int("n", 4, "number of relations")
		m        = fs.Int("m", 16, "tuples per relation")
		domain   = fs.Int("domain", 4, "distinct join values")
		nullRate = fs.Float64("nulls", 0.1, "null probability on join attributes")
		impMax   = fs.Float64("imp", 1, "importances drawn from [1, imp]")
		errRate  = fs.Float64("error", 0.3, "dirty shape: misspelling probability")
		edgeProb = fs.Float64("edges", 0.3, "random shape: extra edge probability")
		seed     = fs.Int64("seed", 1, "generator seed")
		out      = fs.String("out", ".", "output directory")
		snapshot = fs.String("snapshot", "", "write the workload as one binary snapshot file instead of CSVs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	outSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})

	cfg := workload.Config{
		Relations:         *n,
		TuplesPerRelation: *m,
		Domain:            *domain,
		NullRate:          *nullRate,
		ImpMax:            *impMax,
		Seed:              *seed,
	}
	var (
		db  *fd.Database
		err error
	)
	switch *shape {
	case "chain":
		db, err = workload.Chain(cfg)
	case "star":
		db, err = workload.Star(cfg)
	case "cycle":
		db, err = workload.Cycle(cfg)
	case "clique":
		db, err = workload.Clique(cfg)
	case "random":
		db, err = workload.Random(cfg, *edgeProb)
	case "dirty":
		db, err = workload.DirtyChain(workload.DirtyConfig{
			Config: cfg, ErrorRate: *errRate, MaxEdits: 2, MinProb: 0.4})
	default:
		err = fmt.Errorf("unknown shape %q", *shape)
	}
	if err != nil {
		return err
	}

	if *snapshot != "" {
		if err := fd.SaveSnapshot(db, *snapshot); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (snapshot, %d relations, %d tuples, fingerprint %016x)\n",
			*snapshot, db.NumRelations(), db.NumTuples(), db.Fingerprint())
		if !outSet {
			return nil
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for i := 0; i < db.NumRelations(); i++ {
		rel := db.Relation(i)
		path := filepath.Join(*out, rel.Name()+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := relation.WriteCSV(rel, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d tuples)\n", path, rel.Len())
	}
	return nil
}
