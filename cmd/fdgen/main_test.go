package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	fd "repro"
)

func TestRunGeneratesLoadableCSVs(t *testing.T) {
	for _, shape := range []string{"chain", "star", "cycle", "clique", "random", "dirty"} {
		dir := t.TempDir()
		var out bytes.Buffer
		args := []string{"-shape", shape, "-n", "3", "-m", "4", "-domain", "3", "-out", dir, "-seed", "7"}
		if err := run(args, &out); err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 3 {
			t.Fatalf("%s: wrote %d files, want 3", shape, len(entries))
		}
		// Every file loads back and the set forms a database whose full
		// disjunction computes.
		var rels []*fd.Relation
		for _, e := range entries {
			f, err := os.Open(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			rel, err := fd.ReadCSV(strings.TrimSuffix(e.Name(), ".csv"), f)
			f.Close()
			if err != nil {
				t.Fatalf("%s/%s: %v", shape, e.Name(), err)
			}
			if rel.Len() != 4 {
				t.Errorf("%s/%s: %d tuples, want 4", shape, e.Name(), rel.Len())
			}
			rels = append(rels, rel)
		}
		db, err := fd.NewDatabase(rels...)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := fd.FullDisjunction(db, fd.Options{}); err != nil {
			t.Fatalf("%s: FD over generated data failed: %v", shape, err)
		}
		if !strings.Contains(out.String(), "wrote") {
			t.Errorf("%s: no progress output", shape)
		}
	}
}

func TestRunSnapshotOutput(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "wl.fdb")
	var out bytes.Buffer
	args := []string{"-shape", "chain", "-n", "3", "-m", "5", "-domain", "3", "-seed", "9", "-snapshot", snap}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	// Snapshot mode without an explicit -out writes no CSVs.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("wrote %d files, want just the snapshot", len(entries))
	}
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	db, err := fd.ReadSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatalf("generated snapshot does not load: %v", err)
	}
	if db.NumRelations() != 3 || db.Relation(0).Len() != 5 {
		t.Fatalf("snapshot shape: %d relations, %d tuples", db.NumRelations(), db.Relation(0).Len())
	}
	if _, _, err := fd.FullDisjunction(db, fd.Options{}); err != nil {
		t.Fatalf("FD over snapshot-loaded data failed: %v", err)
	}
	if !strings.Contains(out.String(), "snapshot") {
		t.Errorf("no snapshot progress output: %s", out.String())
	}

	// The snapshot matches the CSV output of the identical generator
	// spec: same fingerprint as loading the CSVs.
	csvDir := t.TempDir()
	if err := run([]string{"-shape", "chain", "-n", "3", "-m", "5", "-domain", "3", "-seed", "9", "-out", csvDir}, &out); err != nil {
		t.Fatal(err)
	}
	entries, _ = os.ReadDir(csvDir)
	var rels []*fd.Relation
	for _, e := range entries {
		fh, err := os.Open(filepath.Join(csvDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		rel, err := fd.ReadCSV(strings.TrimSuffix(e.Name(), ".csv"), fh)
		fh.Close()
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, rel)
	}
	csvDB, err := fd.NewDatabase(rels...)
	if err != nil {
		t.Fatal(err)
	}
	if csvDB.Fingerprint() != db.Fingerprint() {
		t.Fatalf("snapshot fingerprint %016x differs from CSV fingerprint %016x",
			db.Fingerprint(), csvDB.Fingerprint())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-shape", "bogus"}, &out); err == nil {
		t.Error("unknown shape accepted")
	}
	if err := run([]string{"-shape", "chain", "-n", "0"}, &out); err == nil {
		t.Error("zero relations accepted")
	}
}
