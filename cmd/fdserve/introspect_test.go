package main

import (
	"fmt"
	"net/http"
	"testing"

	"repro/internal/service"
)

// TestExplainEndpoint checks POST /explain over the wire: same body as
// POST /queries, a plan naming the strategy, and a cache-hit prediction
// that flips after an identical drain.
func TestExplainEndpoint(t *testing.T) {
	ts, _ := startServer(t)
	call(t, "POST", ts.URL+"/databases",
		map[string]any{"name": "w", "workload": chainSpec}, http.StatusCreated, nil)

	body := map[string]any{"database": "w", "mode": "exact",
		"options": map[string]any{"workers": 4}}
	var plan map[string]any
	call(t, "POST", ts.URL+"/explain", body, http.StatusOK, &plan)
	strategy, _ := plan["strategy"].(map[string]any)
	if strategy["execution"] != "parallel" {
		t.Fatalf("workers=4 planned as %v", strategy["execution"])
	}
	if tasks, _ := strategy["tasks"].([]any); len(tasks) == 0 {
		t.Error("parallel plan lists no tasks")
	}
	if plan["cache_key"] == "" || plan["cache_hit_predicted"] != false {
		t.Errorf("cold plan: key=%v hit=%v", plan["cache_key"], plan["cache_hit_predicted"])
	}

	// Workers=1 plans sequential, with a reason.
	seq := map[string]any{"database": "w", "mode": "exact",
		"options": map[string]any{"workers": 1}}
	call(t, "POST", ts.URL+"/explain", seq, http.StatusOK, &plan)
	strategy, _ = plan["strategy"].(map[string]any)
	if strategy["execution"] != "sequential" || strategy["reason"] == "" {
		t.Errorf("workers=1 strategy %v", strategy)
	}

	// Drain the workers=4 query, then the prediction flips.
	var q createQueryResponse
	call(t, "POST", ts.URL+"/queries", body, http.StatusCreated, &q)
	for {
		var page pageResponse
		call(t, "GET", fmt.Sprintf("%s/queries/%s/next?k=1000", ts.URL, q.ID), nil, http.StatusOK, &page)
		if page.Done {
			break
		}
	}
	call(t, "POST", ts.URL+"/explain", body, http.StatusOK, &plan)
	if plan["cache_hit_predicted"] != true {
		t.Error("no cache hit predicted after identical drain")
	}

	// Unknown database and invalid spec fail with the query statuses.
	call(t, "POST", ts.URL+"/explain",
		map[string]any{"database": "nope"}, http.StatusNotFound, nil)
	call(t, "POST", ts.URL+"/explain",
		map[string]any{"database": "w", "mode": "bogus"}, http.StatusBadRequest, nil)
}

// TestProgressEndpoint polls GET /queries/{id}/progress between pages:
// counters must be monotone, the phase honest, and the drained session
// must report every result.
func TestProgressEndpoint(t *testing.T) {
	ts, _ := startServer(t)
	call(t, "POST", ts.URL+"/databases",
		map[string]any{"name": "w", "workload": chainSpec}, http.StatusCreated, nil)
	var q createQueryResponse
	call(t, "POST", ts.URL+"/queries",
		map[string]any{"database": "w", "mode": "exact"}, http.StatusCreated, &q)

	var rep service.ProgressReport
	call(t, "GET", fmt.Sprintf("%s/queries/%s/progress", ts.URL, q.ID), nil, http.StatusOK, &rep)
	if rep.ID != q.ID || rep.DB != "w" || rep.Mode != "exact" || rep.FromCache {
		t.Fatalf("initial report wrong: %+v", rep)
	}

	var last int64
	total := 0
	for {
		var page pageResponse
		call(t, "GET", fmt.Sprintf("%s/queries/%s/next?k=5", ts.URL, q.ID), nil, http.StatusOK, &page)
		total += len(page.Results)
		call(t, "GET", fmt.Sprintf("%s/queries/%s/progress", ts.URL, q.ID), nil, http.StatusOK, &rep)
		if rep.ResultsEmitted < last {
			t.Fatalf("results_emitted went backwards: %d after %d", rep.ResultsEmitted, last)
		}
		last = rep.ResultsEmitted
		if page.Done {
			break
		}
	}
	if rep.Phase != "done" || rep.ResultsEmitted != int64(total) {
		t.Errorf("final report %+v, want done with %d results", rep, total)
	}
	if rep.Delay.Count != int64(total) {
		t.Errorf("delay count %d for %d results", rep.Delay.Count, total)
	}

	call(t, "GET", ts.URL+"/queries/nope/progress", nil, http.StatusNotFound, nil)
}
