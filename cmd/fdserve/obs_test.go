package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/service"
)

// startObsServer spins up the full middleware stack (request ids,
// recovery) over a service wired to a metrics registry, the way main()
// composes it.
func startObsServer(t *testing.T) (*httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	svc := service.New(service.Config{Metrics: reg})
	hs := newServer(context.Background(), svc, defaultMaxBody)
	hs.reg = reg
	ts := httptest.NewServer(hs.handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, reg
}

// TestMetricsEndpoint drives a query over the wire and asserts GET
// /metrics serves the Prometheus exposition with the moved counters
// and the right content type.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := startObsServer(t)
	call(t, "POST", ts.URL+"/databases",
		map[string]any{"name": "w", "workload": chainSpec}, http.StatusCreated, nil)
	var created createQueryResponse
	call(t, "POST", ts.URL+"/queries",
		map[string]any{"database": "w", "mode": "exact"}, http.StatusCreated, &created)
	var page pageResponse
	for done := false; !done; done = page.Done {
		call(t, "GET", ts.URL+"/queries/"+created.ID+"/next?k=7", nil, http.StatusOK, &page)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("GET /metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`fd_queries_total{db="w",mode="exact"} 1`,
		`fd_cache_misses_total 1`,
		"fd_admission_wait_seconds_bucket",
		"# TYPE fd_queries_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestTraceEndpoint pages a query and fetches its span tree, live and
// after the session is closed (from the finished-trace history).
func TestTraceEndpoint(t *testing.T) {
	ts, _ := startObsServer(t)
	call(t, "POST", ts.URL+"/databases",
		map[string]any{"name": "w", "workload": chainSpec}, http.StatusCreated, nil)
	var created createQueryResponse
	call(t, "POST", ts.URL+"/queries",
		map[string]any{"database": "w", "mode": "exact"}, http.StatusCreated, &created)
	var page pageResponse
	call(t, "GET", ts.URL+"/queries/"+created.ID+"/next?k=5", nil, http.StatusOK, &page)

	var live obs.TraceData
	call(t, "GET", ts.URL+"/queries/"+created.ID+"/trace", nil, http.StatusOK, &live)
	if live.ID != created.ID || live.Root == nil || live.Root.Name != "query" {
		t.Fatalf("unexpected live trace: %+v", live)
	}
	names := map[string]bool{}
	for _, sp := range live.Root.Children {
		names[sp.Name] = true
	}
	for _, want := range []string{"validate", "cache", "admission", "open", "next"} {
		if !names[want] {
			t.Errorf("live trace missing %q span (got %v)", want, names)
		}
	}

	call(t, "DELETE", ts.URL+"/queries/"+created.ID, nil, http.StatusNoContent, nil)
	var done obs.TraceData
	call(t, "GET", ts.URL+"/queries/"+created.ID+"/trace", nil, http.StatusOK, &done)
	if len(done.FindAll("close")) != 1 {
		t.Errorf("finished trace missing close span")
	}
	call(t, "GET", ts.URL+"/queries/no-such-id/trace", nil, http.StatusNotFound, nil)
}

// TestRequestIDHeader: the middleware assigns monotonically increasing
// X-Request-Id values.
func TestRequestIDHeader(t *testing.T) {
	ts, _ := startObsServer(t)
	var prev string
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if id == "" || id == prev {
			t.Fatalf("request %d: X-Request-Id %q (prev %q)", i, id, prev)
		}
		prev = id
	}
}

// TestPanicCounterInRegistry: a recovered handler panic increments
// fd_panics_recovered_total alongside the /stats counter.
func TestPanicCounterInRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	svc := service.New(service.Config{Metrics: reg})
	defer svc.Close()
	hs := newServer(context.Background(), svc, defaultMaxBody)
	hs.reg = reg
	mux := hs.routes()
	mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(hs.withRecovery(hs.withRequestID(mux)))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("GET /boom: status %d", resp.StatusCode)
	}
	if got := reg.Counter("fd_panics_recovered_total", "").Value(); got != 1 {
		t.Errorf("fd_panics_recovered_total = %d, want 1", got)
	}
	var stats statsResponse
	call(t, "GET", ts.URL+"/stats", nil, http.StatusOK, &stats)
	if stats.PanicsRecovered != 1 {
		t.Errorf("panics_recovered = %d, want 1", stats.PanicsRecovered)
	}
}

// TestMetricsWithoutRegistry: a server composed with no registry (the
// newMux test path) still serves a valid, empty exposition rather
// than failing.
func TestMetricsWithoutRegistry(t *testing.T) {
	ts, _ := startServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) != 0 {
		t.Errorf("nil-registry exposition not empty: %q", body)
	}
}

// TestTraceJSONRoundTrips guards the wire schema: the trace document
// re-marshals without loss of the span fields clients key on.
func TestTraceJSONRoundTrips(t *testing.T) {
	ts, _ := startObsServer(t)
	call(t, "POST", ts.URL+"/databases",
		map[string]any{"name": "w", "workload": chainSpec}, http.StatusCreated, nil)
	var created createQueryResponse
	call(t, "POST", ts.URL+"/queries",
		map[string]any{"database": "w", "mode": "exact"}, http.StatusCreated, &created)
	var page pageResponse
	call(t, "GET", ts.URL+"/queries/"+created.ID+"/next?k=3", nil, http.StatusOK, &page)

	resp, err := http.Get(ts.URL + "/queries/" + created.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	root, _ := doc["root"].(map[string]any)
	if root == nil {
		t.Fatalf("trace document missing root: %v", doc)
	}
	for _, key := range []string{"name", "start_unix_nano", "children"} {
		if _, ok := root[key]; !ok {
			t.Errorf("root span missing %q: %v", key, root)
		}
	}
}
