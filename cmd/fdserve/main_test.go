package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/workload"
)

// startServer spins up the HTTP surface over a fresh service.
func startServer(t *testing.T) (*httptest.Server, *service.Service) {
	t.Helper()
	svc := service.New(service.Config{})
	ts := httptest.NewServer(newMux(context.Background(), svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, svc
}

// call issues a JSON request and decodes the response into out.
func call(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e map[string]any
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s: status %d (want %d): %v", method, url, resp.StatusCode, wantStatus, e)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// chainSpec is the workload used across the tests; its one-shot result
// count is computed in-process as the reference.
var chainSpec = map[string]any{
	"kind": "chain", "relations": 4, "tuples": 10, "domain": 3,
	"null_rate": 0.1, "seed": 7,
}

func chainCount(t *testing.T) int {
	t.Helper()
	db, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 10, Domain: 3, NullRate: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sets, _, err := core.FullDisjunction(db, core.Options{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	return len(sets)
}

// TestServeWalkthrough is the end-to-end session of the acceptance
// criteria: load a workload, page a query to exhaustion in odd-sized
// pages, compare the total against the one-shot API, then repeat the
// query and observe the cache hit via /stats.
func TestServeWalkthrough(t *testing.T) {
	ts, _ := startServer(t)
	want := chainCount(t)

	var info service.DatabaseInfo
	call(t, "POST", ts.URL+"/databases",
		map[string]any{"name": "w", "workload": chainSpec}, http.StatusCreated, &info)
	if info.Relations != 4 || info.Tuples != 40 || info.Fingerprint == "" {
		t.Fatalf("unexpected database info: %+v", info)
	}

	var q createQueryResponse
	call(t, "POST", ts.URL+"/queries",
		map[string]any{"database": "w", "mode": "exact"}, http.StatusCreated, &q)
	if q.Cached {
		t.Fatal("first query reported cached")
	}

	total := 0
	for {
		var page pageResponse
		call(t, "GET", fmt.Sprintf("%s/queries/%s/next?k=7", ts.URL, q.ID), nil, http.StatusOK, &page)
		total += len(page.Results)
		for _, r := range page.Results {
			if r.Set == "" || len(r.Values) == 0 {
				t.Fatalf("malformed result %+v", r)
			}
		}
		if page.Done {
			if page.Served != total {
				t.Fatalf("served %d, accumulated %d", page.Served, total)
			}
			break
		}
	}
	if total != want {
		t.Fatalf("paged total %d, one-shot %d", total, want)
	}

	// The repeated identical query is served from the cache.
	var q2 createQueryResponse
	call(t, "POST", ts.URL+"/queries",
		map[string]any{"database": "w", "mode": "exact"}, http.StatusCreated, &q2)
	if !q2.Cached {
		t.Fatal("repeated query not served from cache")
	}
	var page pageResponse
	call(t, "GET", fmt.Sprintf("%s/queries/%s/next?k=%d", ts.URL, q2.ID, want+10), nil, http.StatusOK, &page)
	if len(page.Results) != want || !page.Done {
		t.Fatalf("cached page returned %d results (done=%v), want %d", len(page.Results), page.Done, want)
	}

	var stats service.Stats
	call(t, "GET", ts.URL+"/stats", nil, http.StatusOK, &stats)
	if stats.CacheHits != 1 || stats.CacheMisses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", stats.CacheHits, stats.CacheMisses)
	}
	if stats.ResultsServed != int64(2*want) {
		t.Fatalf("results served %d, want %d", stats.ResultsServed, 2*want)
	}
}

// TestServeRankedAndApprox exercises the other two modes end to end.
func TestServeRankedAndApprox(t *testing.T) {
	ts, _ := startServer(t)
	call(t, "POST", ts.URL+"/databases", map[string]any{
		"name": "w",
		"workload": map[string]any{
			"kind": "star", "relations": 4, "tuples": 8, "domain": 3, "imp_max": 50, "seed": 3},
	}, http.StatusCreated, nil)

	var q createQueryResponse
	call(t, "POST", ts.URL+"/queries",
		map[string]any{"database": "w", "mode": "ranked", "rank": "fmax"}, http.StatusCreated, &q)
	last := -1.0
	for {
		var page pageResponse
		call(t, "GET", fmt.Sprintf("%s/queries/%s/next?k=5", ts.URL, q.ID), nil, http.StatusOK, &page)
		for _, r := range page.Results {
			if r.Rank == nil {
				t.Fatal("ranked result missing rank")
			}
			if last >= 0 && *r.Rank > last {
				t.Fatalf("ranks not non-increasing: %v after %v", *r.Rank, last)
			}
			last = *r.Rank
		}
		if page.Done {
			break
		}
	}

	call(t, "POST", ts.URL+"/databases", map[string]any{
		"name": "dirty",
		"workload": map[string]any{
			"kind": "dirty", "relations": 3, "tuples": 8, "domain": 3, "error_rate": 0.3, "seed": 5},
	}, http.StatusCreated, nil)
	var qa createQueryResponse
	call(t, "POST", ts.URL+"/queries",
		map[string]any{"database": "dirty", "mode": "approx", "tau": 0.7}, http.StatusCreated, &qa)
	var page pageResponse
	call(t, "GET", fmt.Sprintf("%s/queries/%s/next?k=1000", ts.URL, qa.ID), nil, http.StatusOK, &page)
	if !page.Done || len(page.Results) == 0 {
		t.Fatalf("approx query: done=%v results=%d", page.Done, len(page.Results))
	}

	// Approx-ranked over the wire: the fd.Query JSON encoding carries
	// mode, tau, rank and the k bound in one request.
	var qar createQueryResponse
	call(t, "POST", ts.URL+"/queries",
		map[string]any{"database": "dirty", "mode": "approx-ranked", "tau": 0.6, "rank": "fmax", "k": 4},
		http.StatusCreated, &qar)
	last = -1.0
	total := 0
	for {
		var arPage pageResponse
		call(t, "GET", fmt.Sprintf("%s/queries/%s/next?k=2", ts.URL, qar.ID), nil, http.StatusOK, &arPage)
		for _, r := range arPage.Results {
			if r.Rank == nil {
				t.Fatal("approx-ranked result missing rank")
			}
			if last >= 0 && *r.Rank > last {
				t.Fatalf("approx-ranked ranks not non-increasing: %v after %v", *r.Rank, last)
			}
			last = *r.Rank
			total++
		}
		if arPage.Done {
			break
		}
	}
	if total == 0 || total > 4 {
		t.Fatalf("approx-ranked k=4 served %d results", total)
	}
}

// TestServeUploadedRows loads the paper's two-relation example as
// explicit rows, with a null, and checks the padded rendering.
func TestServeUploadedRows(t *testing.T) {
	ts, _ := startServer(t)
	null := (*string)(nil)
	v := func(s string) *string { return &s }
	call(t, "POST", ts.URL+"/databases", map[string]any{
		"name": "tiny",
		"relations": []map[string]any{
			{"name": "Climates", "attributes": []string{"Country", "Climate"},
				"tuples": []map[string]any{
					{"label": "c1", "values": []*string{v("Canada"), v("diverse")}},
					{"label": "c2", "values": []*string{v("Laos"), null}},
				}},
			{"name": "Hotels", "attributes": []string{"Country", "Hotel"},
				"tuples": []map[string]any{
					{"label": "a1", "values": []*string{v("Canada"), v("Plaza")}},
				}},
		},
	}, http.StatusCreated, nil)

	var q createQueryResponse
	call(t, "POST", ts.URL+"/queries", map[string]any{"database": "tiny"}, http.StatusCreated, &q)
	var page pageResponse
	call(t, "GET", fmt.Sprintf("%s/queries/%s/next?k=100", ts.URL, q.ID), nil, http.StatusOK, &page)
	if !page.Done || len(page.Results) != 2 {
		t.Fatalf("tiny FD: done=%v results=%d, want 2", page.Done, len(page.Results))
	}
	joined := false
	for _, r := range page.Results {
		if r.Set == "{c1, a1}" {
			joined = true
			if got := r.Values["Hotel"]; got == nil || *got != "Plaza" {
				t.Fatalf("joined result values: %v", r.Values)
			}
			if got := r.Values["Climate"]; got == nil || *got != "diverse" {
				t.Fatalf("joined result values: %v", r.Values)
			}
		}
	}
	if !joined {
		t.Fatalf("no joined {c1, a1} result in %+v", page.Results)
	}
}

// TestServeErrors covers the failure surface: malformed loads, unknown
// databases/queries/modes, and closed sessions.
func TestServeErrors(t *testing.T) {
	ts, _ := startServer(t)

	call(t, "POST", ts.URL+"/databases", map[string]any{"name": "x"}, http.StatusBadRequest, nil)
	call(t, "POST", ts.URL+"/databases",
		map[string]any{"name": "x", "workload": map[string]any{"kind": "nope"}},
		http.StatusBadRequest, nil)
	call(t, "POST", ts.URL+"/databases", map[string]any{"name": "w", "workload": chainSpec},
		http.StatusCreated, nil)
	call(t, "POST", ts.URL+"/databases", map[string]any{"name": "w", "workload": chainSpec},
		http.StatusConflict, nil)

	call(t, "POST", ts.URL+"/queries",
		map[string]any{"database": "missing"}, http.StatusNotFound, nil)
	call(t, "POST", ts.URL+"/queries",
		map[string]any{"database": "w", "mode": "ranked", "rank": "nope"}, http.StatusBadRequest, nil)
	call(t, "POST", ts.URL+"/queries",
		map[string]any{"database": "w", "options": map[string]any{"strategy": "nope"}},
		http.StatusBadRequest, nil)

	call(t, "GET", ts.URL+"/queries/q999/next", nil, http.StatusNotFound, nil)
	call(t, "DELETE", ts.URL+"/queries/q999", nil, http.StatusNotFound, nil)

	call(t, "DELETE", ts.URL+"/databases/missing", nil, http.StatusNotFound, nil)
	call(t, "DELETE", ts.URL+"/databases/w", nil, http.StatusNoContent, nil)
	// Dropped: reload under the same name succeeds.
	call(t, "POST", ts.URL+"/databases", map[string]any{"name": "w", "workload": chainSpec},
		http.StatusCreated, nil)

	var q createQueryResponse
	call(t, "POST", ts.URL+"/queries", map[string]any{"database": "w"}, http.StatusCreated, &q)
	call(t, "DELETE", ts.URL+"/queries/"+q.ID, nil, http.StatusNoContent, nil)
	call(t, "GET", fmt.Sprintf("%s/queries/%s/next", ts.URL, q.ID), nil, http.StatusNotFound, nil)

	call(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, nil)
}

// startDurableServer spins up the HTTP surface over a service backed by
// the given data directory.
func startDurableServer(t *testing.T, dir string) (*httptest.Server, *service.Service) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Store: st})
	if _, err := svc.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	ts := httptest.NewServer(newMux(context.Background(), svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, svc
}

func pageAll(t *testing.T, baseURL, id string) int {
	t.Helper()
	total := 0
	for {
		var page pageResponse
		call(t, "GET", fmt.Sprintf("%s/queries/%s/next?k=7", baseURL, id), nil, http.StatusOK, &page)
		total += len(page.Results)
		if page.Done {
			return total
		}
	}
}

// TestServeDurableRestart is the acceptance scenario over the HTTP
// surface: register against -data, restart the whole stack over the
// same directory, and demand the same fingerprint and result count
// with zero re-registration.
func TestServeDurableRestart(t *testing.T) {
	dir := t.TempDir()
	want := chainCount(t)

	ts1, svc1 := startDurableServer(t, dir)
	var info service.DatabaseInfo
	call(t, "POST", ts1.URL+"/databases",
		map[string]any{"name": "w", "workload": chainSpec}, http.StatusCreated, &info)
	var q createQueryResponse
	call(t, "POST", ts1.URL+"/queries", map[string]any{"database": "w"}, http.StatusCreated, &q)
	if got := pageAll(t, ts1.URL, q.ID); got != want {
		t.Fatalf("pre-restart count %d, want %d", got, want)
	}
	ts1.Close()
	svc1.Close()

	ts2, _ := startDurableServer(t, dir)
	var listing listDatabasesResponse
	call(t, "GET", ts2.URL+"/databases", nil, http.StatusOK, &listing)
	listed := listing.Databases
	if len(listed) != 1 || listed[0] != info {
		t.Fatalf("recovered listing %+v, want [%+v]", listed, info)
	}
	if len(listing.Quarantined) != 0 {
		t.Fatalf("clean recovery reported quarantines: %+v", listing.Quarantined)
	}
	var q2 createQueryResponse
	call(t, "POST", ts2.URL+"/queries", map[string]any{"database": "w"}, http.StatusCreated, &q2)
	if got := pageAll(t, ts2.URL, q2.ID); got != want {
		t.Fatalf("post-restart count %d, want %d", got, want)
	}
}

func TestServeAppendRows(t *testing.T) {
	dir := t.TempDir()
	ts, _ := startDurableServer(t, dir)

	call(t, "POST", ts.URL+"/databases",
		map[string]any{"name": "w", "workload": chainSpec}, http.StatusCreated, nil)
	var beforeList listDatabasesResponse
	call(t, "GET", ts.URL+"/databases", nil, http.StatusOK, &beforeList)
	before := beforeList.Databases

	// The chain workload's relations share attributes J0..; fetch the
	// schema indirectly by appending with explicit nulls only.
	v := "fresh"
	var info service.DatabaseInfo
	call(t, "POST", ts.URL+"/databases/w/rows", map[string]any{
		"relation": "R00",
		"tuples":   []map[string]any{{"label": "x1", "values": []*string{&v, nil}}},
	}, http.StatusOK, &info)
	if info.Tuples != before[0].Tuples+1 {
		t.Fatalf("append reported %d tuples, want %d", info.Tuples, before[0].Tuples+1)
	}
	if info.Fingerprint == before[0].Fingerprint {
		t.Fatal("append did not change the fingerprint")
	}

	// Appended rows survive a restart (replayed from the row log).
	var q createQueryResponse
	call(t, "POST", ts.URL+"/queries", map[string]any{"database": "w"}, http.StatusCreated, &q)
	preCount := pageAll(t, ts.URL, q.ID)

	ts2, _ := startDurableServer(t, dir)
	var listing2 listDatabasesResponse
	call(t, "GET", ts2.URL+"/databases", nil, http.StatusOK, &listing2)
	listed := listing2.Databases
	if len(listed) != 1 || listed[0] != info {
		t.Fatalf("restart after append listed %+v, want [%+v]", listed, info)
	}
	var q2 createQueryResponse
	call(t, "POST", ts2.URL+"/queries", map[string]any{"database": "w"}, http.StatusCreated, &q2)
	if got := pageAll(t, ts2.URL, q2.ID); got != preCount {
		t.Fatalf("post-restart count %d, want %d", got, preCount)
	}

	// Error surface: unknown database, unknown relation, bad widths.
	call(t, "POST", ts.URL+"/databases/nope/rows", map[string]any{
		"relation": "R00", "tuples": []map[string]any{}}, http.StatusNotFound, nil)
	call(t, "POST", ts.URL+"/databases/w/rows", map[string]any{
		"relation": "nope", "tuples": []map[string]any{}}, http.StatusNotFound, nil)
	call(t, "POST", ts.URL+"/databases/w/rows", map[string]any{
		"relation": "R00",
		"tuples":   []map[string]any{{"values": []*string{&v}}}}, http.StatusBadRequest, nil)
	call(t, "POST", ts.URL+"/databases/w/rows", map[string]any{
		"relation": "R00", "attributes": []string{"nope"},
		"tuples": []map[string]any{{"values": []*string{&v}}}}, http.StatusBadRequest, nil)
	call(t, "POST", ts.URL+"/databases/w/rows", map[string]any{
		"relation": "R00", "tuples": []map[string]any{}}, http.StatusBadRequest, nil)
}

// TestServeIndexDefaults pins the wire-format amendment: omitting the
// options (or just the index switches) defaults both indexes ON
// server-side, while an explicit false is honoured.
func TestServeIndexDefaults(t *testing.T) {
	ts, _ := startServer(t)
	call(t, "POST", ts.URL+"/databases",
		map[string]any{"name": "w", "workload": chainSpec}, http.StatusCreated, nil)

	drain := func(body map[string]any) {
		t.Helper()
		var q createQueryResponse
		call(t, "POST", ts.URL+"/queries", body, http.StatusCreated, &q)
		for {
			var page pageResponse
			call(t, "GET", fmt.Sprintf("%s/queries/%s/next?k=64", ts.URL, q.ID), nil, http.StatusOK, &page)
			if page.Done {
				return
			}
		}
	}
	engine := func() core.Stats {
		t.Helper()
		var stats service.Stats
		call(t, "GET", ts.URL+"/stats", nil, http.StatusOK, &stats)
		return stats.Engine
	}

	// Explicit false is honoured: no join-index probes recorded.
	drain(map[string]any{"database": "w", "mode": "exact",
		"options": map[string]any{"use_index": false, "use_join_index": false}})
	if probes := engine().IndexProbes; probes != 0 {
		t.Fatalf("explicit use_join_index=false still probed the join index %d times", probes)
	}

	// Omitted options default the indexes on — the pre-Query-API server
	// behaviour a bare {"database","mode"} client relies on.
	drain(map[string]any{"database": "w", "mode": "exact"})
	if probes := engine().IndexProbes; probes == 0 {
		t.Fatal("omitted options ran unindexed: no join-index probes recorded")
	}
}
