package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	fd "repro"
)

// handleFollow streams a follow session as newline-delimited JSON over
// a chunked response: first the base result set (every result of the
// session's database version), then a "live" marker, then one event
// group per append landing on the database — "retract" lines for base
// results the append's delta subsumed, "result" lines for the delta's
// new maximal sets, and a "delta" summary line per append. The stream
// ends with an "end" line when the subscription closes (session
// deleted, database dropped, server shutdown) or when the optional
// ?appends=N bound has been observed; disconnecting the request simply
// abandons it (the session stays open until deleted or evicted).
//
// Events:
//
//	{"event":"result","result":{...}}             one maximal set
//	{"event":"live","total":N}                    base drained, now live
//	{"event":"retract","set":"{a1, b2}"}          no longer maximal
//	{"event":"delta","appends":i,"added":a,"removed":r,"total":N}
//	{"event":"end","total":N}                     subscription over
//	{"event":"error","error":"..."}               enumeration failed
//
// Delta results are rendered over the extended database they are bound
// to; retractions identify results by the same "set" notation their
// "result" line carried. The stream lives at most the server's write
// timeout (10 minutes); clients reconnect by opening a fresh follow
// query — the base drain then serves from the patched result cache.
func (s *server) handleFollow(w http.ResponseWriter, r *http.Request) {
	q, ok := s.svc.Query(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown query %q", r.PathValue("id")))
		return
	}
	if !q.IsFollow() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("query %q is not a follow subscription (start it with \"follow\": true)", q.ID()))
		return
	}
	maxAppends := 0
	if raw := r.URL.Query().Get("appends"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid appends bound %q", raw))
			return
		}
		maxAppends = v
	}
	fl := http.NewResponseController(w)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	// live tracks the stream's current result set: the set pointer for
	// the subsumption check (Set.ContainsAll is universe-independent,
	// so sets from different database versions compare directly) and
	// the rendered notation retract lines identify results by.
	type liveEntry struct {
		set      *fd.TupleSet
		rendered string
	}
	var live []liveEntry

	db, u := q.DB(), q.Universe()
	attrs := u.AllAttributes()
	for {
		page, done, err := q.Next(256)
		if err != nil {
			enc.Encode(map[string]any{"event": "error", "error": err.Error()})
			return
		}
		for _, res := range page {
			rj := renderResult(db, u, attrs, res)
			enc.Encode(map[string]any{"event": "result", "result": rj})
			live = append(live, liveEntry{set: res.Set, rendered: rj.Set})
		}
		if done {
			break
		}
	}
	enc.Encode(map[string]any{"event": "live", "total": len(live)})
	fl.Flush()

	sig := q.FollowSignal()
	appends := 0
	for {
		batches, closed := q.FollowBatches()
		for _, b := range batches {
			appends++
			removed := 0
			kept := make([]liveEntry, 0, len(live))
			for _, le := range live {
				subsumed := false
				for _, res := range b.Results {
					if res.Set.ContainsAll(le.set) {
						subsumed = true
						break
					}
				}
				if subsumed {
					removed++
					enc.Encode(map[string]any{"event": "retract", "set": le.rendered})
					continue
				}
				kept = append(kept, le)
			}
			live = kept
			battrs := b.U.AllAttributes()
			for _, res := range b.Results {
				rj := renderResult(b.DB, b.U, battrs, res)
				enc.Encode(map[string]any{"event": "result", "result": rj})
				live = append(live, liveEntry{set: res.Set, rendered: rj.Set})
			}
			enc.Encode(map[string]any{"event": "delta",
				"appends": appends, "added": len(b.Results), "removed": removed, "total": len(live)})
			fl.Flush()
			if maxAppends > 0 && appends >= maxAppends {
				enc.Encode(map[string]any{"event": "end", "total": len(live)})
				fl.Flush()
				return
			}
		}
		if closed {
			enc.Encode(map[string]any{"event": "end", "total": len(live)})
			fl.Flush()
			return
		}
		select {
		case <-sig:
		case <-r.Context().Done():
			return
		}
	}
}
