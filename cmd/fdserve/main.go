// Command fdserve serves full disjunctions over HTTP: a JSON front end
// to internal/service, the concurrent query-session subsystem with
// pull-based cursors, fingerprint-keyed result caching and bounded
// admission.
//
// Endpoints:
//
//	POST   /databases              load a database (workload spec or rows)
//	GET    /databases              list registered databases (fingerprints)
//	DELETE /databases/{name}       drop a database (for reload/Refresh flows)
//	POST   /databases/{name}/rows  append rows (durable via the row log)
//	POST   /queries                open a query session (fd.Query JSON)
//	GET    /queries/{id}/next?k=   pull the next page of results
//	GET    /queries/{id}/follow    stream a follow session: base results,
//	                               then live deltas as appends land (NDJSON)
//	GET    /queries/{id}/trace     the session's execution trace (span tree)
//	DELETE /queries/{id}           close a session early
//	GET    /stats                  service counters (cache hits, engine stats)
//	GET    /metrics                Prometheus text exposition (docs/OBSERVABILITY.md)
//	GET    /healthz                liveness
//
// With -data <dir> the registry is durable: every registered database
// is persisted as a binary columnar snapshot (docs/SNAPSHOT_FORMAT.md),
// appended rows go to a per-database row log, and a restarted server
// recovers everything before accepting traffic.
//
// The body of POST /queries is {"database": <name>} plus the JSON
// encoding of an fd.Query (docs/QUERY_API.md): mode exact, ranked,
// approx or approx-ranked, the rank/sim names, k, tau, rank_tau and
// the engine options. Every front end shares that one spec — the
// library, this server, fdcli and fdbench parse, validate, cache and
// execute it identically.
//
// A walkthrough lives in the README ("Serving full disjunctions" and
// "Persistence"). Sessions idle past -idle are evicted; the server
// shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	fd "repro"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers    = flag.Int("workers", 0, "concurrent page computations (0 = GOMAXPROCS)")
		engineWk   = flag.Int("engine-workers", 0, "total intra-query enumeration workers across live queries; queries request theirs via the spec's \"workers\" field (0 = GOMAXPROCS, 1 = all queries sequential)")
		cache      = flag.Int("cache", 64, "result-cache capacity in cached result lists (negative disables caching)")
		cacheBytes = flag.Int64("cache-bytes", 64<<20, "result-cache budget in approximate bytes (negative removes the bound)")
		idle       = flag.Duration("idle", 5*time.Minute, "query-session idle eviction timeout")
		pageMax    = flag.Int("page-max", 1024, "maximum results per page")
		dataDir    = flag.String("data", "", "data directory for durable registration (empty = in-memory only)")
		maxBody    = flag.Int64("max-body", defaultMaxBody, "maximum request body size in bytes (oversized uploads get 413)")
		admitWait  = flag.Duration("admission-wait", 2*time.Second, "how long a request may wait for a worker slot before being shed with 503 (0 = wait forever)")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn or error (debug logs every request)")
		slowQuery  = flag.Duration("slow-query", 0, "log a warning with the trace summary for queries slower than this (0 disables)")
		delaySLO   = flag.Duration("delay-slo", 0, "per-result delay envelope: count every inter-result gap above this in fd_delay_slo_breaches_total and log the first breach per session (0 disables)")
		traceHist  = flag.Int("trace-history", 0, "finished query traces kept for GET /queries/{id}/trace (0 = default 64, negative disables)")
		pprofOn    = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	if *idle <= 0 {
		// Mirror the service default here: the janitor ticker below
		// needs a positive interval.
		*idle = 5 * time.Minute
	}

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Free functions (writeJSON) and anything else without a handle log
	// through the default logger; route it to the same sink.
	slog.SetDefault(logger)

	var st *store.Store
	if *dataDir != "" {
		if st, err = store.Open(*dataDir); err != nil {
			logger.Error("open data directory", "dir", *dataDir, "error", err)
			os.Exit(1)
		}
	}

	reg := obs.NewRegistry()
	svc := service.New(service.Config{
		Workers:          *workers,
		EngineWorkers:    *engineWk,
		CacheCapacity:    *cache,
		CacheMaxBytes:    *cacheBytes,
		IdleTimeout:      *idle,
		MaxPageSize:      *pageMax,
		AdmissionTimeout: *admitWait,
		Store:            st,
		Metrics:          reg,
		Logger:           logger.With("component", "service"),
		SlowQuery:        *slowQuery,
		DelaySLO:         *delaySLO,
		TraceHistory:     *traceHist,
	})
	if st != nil {
		infos, err := svc.Recover()
		if err != nil {
			// Healthy databases recovered anyway; corrupt ones were
			// quarantined on disk and the server serves without them.
			logger.Warn("recover", "error", err)
		}
		for _, q := range svc.QuarantinedDatabases() {
			logger.Warn("quarantined database; re-register to serve it again",
				"database", q.Name, "quarantine", q.Label, "dir", st.Dir())
		}
		for _, info := range infos {
			logger.Info("recovered database", "database", info.Name,
				"relations", info.Relations, "tuples", info.Tuples,
				"fingerprint", info.Fingerprint)
		}
	}
	// Sessions carry this context: it outlives any single request and is
	// cancelled only after graceful shutdown has let in-flight pages
	// finish, so an abandoned enumeration can always be aborted from the
	// outside without cutting short a well-behaved drain.
	sessionCtx, cancelSessions := context.WithCancel(context.Background())
	defer cancelSessions()
	hs := newServer(sessionCtx, svc, *maxBody)
	hs.log = logger.With("component", "http")
	hs.reg = reg
	hs.pprof = *pprofOn
	srv := &http.Server{
		Addr:    *addr,
		Handler: hs.handler(),
		// A client that stalls mid-headers, trickles a body forever, or
		// never reads its response must not pin a connection goroutine
		// indefinitely. WriteTimeout is generous: it covers the page
		// computation of GET /queries/{id}/next.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Janitor: sweep idle sessions at a fraction of the timeout.
	go func() {
		tick := time.NewTicker(*idle / 4)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				if n := svc.EvictIdle(); n > 0 {
					logger.Info("evicted idle query sessions", "count", n)
				}
			}
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("fdserve listening", "addr", *addr, "pprof", *pprofOn)

	select {
	case <-ctx.Done():
		logger.Info("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			logger.Error("shutdown", "error", err)
		}
		cancelSessions()
		svc.Close()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve", "error", err)
			os.Exit(1)
		}
	}
}

// buildLogger resolves the -log-format and -log-level flags into a
// slog.Logger writing to stderr.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("invalid -log-format %q (want text or json)", format)
	}
}

// defaultMaxBody bounds request bodies: big enough for bulk uploads,
// small enough that one malicious POST cannot balloon the heap.
const defaultMaxBody = 32 << 20

// newMux wires the HTTP surface onto a service. Query sessions are
// opened under ctx (a server-lifetime context, not a per-request one —
// sessions outlive the request that created them). Split from main so
// tests drive the handlers through httptest.
func newMux(ctx context.Context, svc *service.Service) http.Handler {
	return newServer(ctx, svc, defaultMaxBody).handler()
}

func newServer(ctx context.Context, svc *service.Service, maxBody int64) *server {
	if maxBody <= 0 {
		maxBody = defaultMaxBody
	}
	// Both observability hooks default to off: a nil registry no-ops
	// every metric and the discard logger drops every record, so tests
	// composing handlers directly pay nothing and configure nothing.
	return &server{ctx: ctx, svc: svc, maxBody: maxBody,
		log: slog.New(slog.DiscardHandler)}
}

// routes builds the raw route table; handler wraps it with the
// request-id and panic-recovery middleware. Tests that need to inject
// a panicking route compose the pieces themselves.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /databases", s.handleCreateDatabase)
	mux.HandleFunc("GET /databases", s.handleListDatabases)
	mux.HandleFunc("DELETE /databases/{name}", s.handleDropDatabase)
	mux.HandleFunc("POST /databases/{name}/rows", s.handleAppendRows)
	mux.HandleFunc("POST /queries", s.handleCreateQuery)
	mux.HandleFunc("POST /explain", s.handleExplain)
	mux.HandleFunc("GET /queries/{id}/next", s.handleNext)
	mux.HandleFunc("GET /queries/{id}/follow", s.handleFollow)
	mux.HandleFunc("GET /queries/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /queries/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /queries/{id}", s.handleDeleteQuery)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", obs.Handler(s.reg).ServeHTTP)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *server) handler() http.Handler {
	return s.withRecovery(s.withRequestID(s.routes()))
}

// ctxKeyRequestID keys the per-request id in the request context.
type ctxKeyRequestID struct{}

// requestID returns the id withRequestID assigned, or "" outside the
// middleware (tests composing handlers directly).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID{}).(string)
	return id
}

// statusWriter records the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Unwrap exposes the underlying writer to http.NewResponseController,
// so streaming handlers (GET /queries/{id}/follow) can flush and
// adjust deadlines through the middleware wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// withRequestID assigns each request a sequential id, echoes it as
// X-Request-Id, threads it through the context for downstream log
// records (panic reports), and emits a debug-level access log line.
func (s *server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := strconv.FormatUint(s.reqSeq.Add(1), 10)
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID{}, id))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.log.Debug("request",
			"id", id, "method", r.Method, "path", r.URL.Path,
			"status", sw.status, "duration", time.Since(start))
	})
}

// withRecovery turns a handler panic into a 500 plus a counted,
// logged incident, so one bad request cannot take the server down
// with it. http.ErrAbortHandler passes through — it is net/http's own
// control flow for aborting a response.
func (s *server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler { //nolint:errorlint // sentinel comparison per net/http docs
					panic(rec)
				}
				s.panics.Add(1)
				s.reg.Counter("fd_panics_recovered_total",
					"Handler panics recovered by the HTTP middleware.").Inc()
				s.log.Error("panic serving request",
					"id", requestID(r.Context()), "method", r.Method,
					"path", r.URL.Path, "panic", rec, "stack", string(debug.Stack()))
				// Best effort: if the handler already wrote, this is a
				// trailing fragment the client ignores.
				writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

type server struct {
	// ctx is the base context of every query session this server opens.
	ctx context.Context
	svc *service.Service
	// maxBody caps request body bytes; oversized uploads get 413.
	maxBody int64
	// log receives the HTTP layer's records; never nil (newServer
	// defaults it to a discard logger).
	log *slog.Logger
	// reg backs GET /metrics and the panic counter; nil no-ops both.
	reg *obs.Registry
	// pprof mounts net/http/pprof under /debug/pprof/ when set.
	pprof bool
	// reqSeq numbers requests for X-Request-Id and log correlation.
	reqSeq atomic.Uint64
	// panics counts handler panics recovered by withRecovery, surfaced
	// as panics_recovered in GET /stats.
	panics atomic.Int64
}

// decodeBody decodes the request body as JSON into v under the body
// size cap, writing the HTTP error (413 for an oversized body, 400
// otherwise) itself; the caller just returns on false.
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// writeOverloaded maps service.ErrOverloaded to 503 + Retry-After: the
// request was shed unprocessed and the client should back off briefly.
func writeOverloaded(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, err)
}

// --- request/response shapes -------------------------------------------

// workloadSpec selects one of the internal/workload generators; the
// same (kind, parameters, seed) always produces the same database (and
// therefore the same fingerprint), so generated workloads share cached
// results across reloads and processes.
type workloadSpec struct {
	Kind          string  `json:"kind"` // chain, star, cycle, clique, random, dirty
	Relations     int     `json:"relations"`
	Tuples        int     `json:"tuples"`
	Domain        int     `json:"domain"`
	NullRate      float64 `json:"null_rate"`
	ImpMax        float64 `json:"imp_max"`
	Seed          int64   `json:"seed"`
	ExtraEdgeProb float64 `json:"extra_edge_prob"` // random kind
	ErrorRate     float64 `json:"error_rate"`      // dirty kind
}

// tupleSpec is one uploaded row; a null JSON value is ⊥. Imp defaults
// to 1 when omitted or zero; Prob defaults to 1 when omitted.
type tupleSpec struct {
	Label  string    `json:"label"`
	Values []*string `json:"values"`
	Imp    float64   `json:"imp"`
	Prob   *float64  `json:"prob"`
}

type relationSpec struct {
	Name       string      `json:"name"`
	Attributes []string    `json:"attributes"`
	Tuples     []tupleSpec `json:"tuples"`
}

type createDatabaseRequest struct {
	Name string `json:"name"`
	// Exactly one of Workload and Relations must be set.
	Workload  *workloadSpec  `json:"workload,omitempty"`
	Relations []relationSpec `json:"relations,omitempty"`
}

// createQueryRequest is the database name plus the fd.Query JSON
// encoding, embedded verbatim — the wire format IS the library spec,
// so anything expressible through fd.Open (including approx-ranked
// and the k / rank_tau bounds) is expressible over HTTP. The one
// server-side amendment: Options shadows the Query's options with
// pointer index fields, because the server (unlike the library zero
// value) defaults both indexes ON when a client omits them — served
// queries should not run unindexed by accident.
type createQueryRequest struct {
	Database string `json:"database"`
	fd.Query
	Options queryOptionsRequest `json:"options"`
}

// queryOptionsRequest mirrors fd.QueryOptions with pointers on the
// index switches so an omitted field is distinguishable from an
// explicit false.
type queryOptionsRequest struct {
	UseIndex     *bool  `json:"use_index"`
	UseJoinIndex *bool  `json:"use_join_index"`
	BlockSize    int    `json:"block_size"`
	Strategy     string `json:"strategy"`
	Workers      int    `json:"workers"`
}

// resolve renders the request options as library options, applying the
// server defaults for omitted index switches.
func (o queryOptionsRequest) resolve() fd.QueryOptions {
	opts := fd.QueryOptions{
		UseIndex:     true,
		UseJoinIndex: true,
		BlockSize:    o.BlockSize,
		Strategy:     o.Strategy,
		Workers:      o.Workers,
	}
	if o.UseIndex != nil {
		opts.UseIndex = *o.UseIndex
	}
	if o.UseJoinIndex != nil {
		opts.UseJoinIndex = *o.UseJoinIndex
	}
	return opts
}

type createQueryResponse struct {
	ID     string `json:"id"`
	Cached bool   `json:"cached"`
}

type resultJSON struct {
	// Set is the tuple-set notation of the paper's Table 2, e.g.
	// "{c1, a2}".
	Set  string   `json:"set"`
	Rank *float64 `json:"rank,omitempty"`
	// Values is the padded tuple over the database's full attribute
	// universe; null values are JSON nulls.
	Values map[string]*string `json:"values"`
}

type pageResponse struct {
	Results []resultJSON `json:"results"`
	Done    bool         `json:"done"`
	Served  int          `json:"served"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers ----------------------------------------------------------

func (s *server) handleCreateDatabase(w http.ResponseWriter, r *http.Request) {
	var req createDatabaseRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	var (
		db  *relation.Database
		err error
	)
	switch {
	case req.Workload != nil && req.Relations != nil:
		writeError(w, http.StatusBadRequest, fmt.Errorf("set either workload or relations, not both"))
		return
	case req.Workload != nil:
		db, err = buildWorkload(*req.Workload)
	case req.Relations != nil:
		db, err = buildUploaded(req.Relations)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing workload or relations"))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.svc.AddDatabase(req.Name, db)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func buildWorkload(spec workloadSpec) (*relation.Database, error) {
	cfg := workload.Config{
		Relations:         spec.Relations,
		TuplesPerRelation: spec.Tuples,
		Domain:            spec.Domain,
		NullRate:          spec.NullRate,
		ImpMax:            spec.ImpMax,
		Seed:              spec.Seed,
	}
	switch spec.Kind {
	case "chain":
		return workload.Chain(cfg)
	case "star":
		return workload.Star(cfg)
	case "cycle":
		return workload.Cycle(cfg)
	case "clique":
		return workload.Clique(cfg)
	case "random":
		return workload.Random(cfg, spec.ExtraEdgeProb)
	case "dirty":
		return workload.DirtyChain(workload.DirtyConfig{
			Config: cfg, ErrorRate: spec.ErrorRate, MaxEdits: 2, MinProb: 0.4})
	default:
		return nil, fmt.Errorf("unknown workload kind %q", spec.Kind)
	}
}

func buildUploaded(specs []relationSpec) (*relation.Database, error) {
	rels := make([]*relation.Relation, 0, len(specs))
	for _, rs := range specs {
		attrs := make([]relation.Attribute, len(rs.Attributes))
		for i, a := range rs.Attributes {
			attrs[i] = relation.Attribute(a)
		}
		schema, err := relation.NewSchema(attrs...)
		if err != nil {
			return nil, fmt.Errorf("relation %s: %w", rs.Name, err)
		}
		rel, err := relation.NewRelation(rs.Name, schema)
		if err != nil {
			return nil, err
		}
		for i, ts := range rs.Tuples {
			if len(ts.Values) != len(rs.Attributes) {
				return nil, fmt.Errorf("relation %s tuple %d: %d values for %d attributes",
					rs.Name, i, len(ts.Values), len(rs.Attributes))
			}
			t := relation.Tuple{Label: ts.Label, Imp: ts.Imp, Prob: 1,
				Values: make([]relation.Value, schema.Len())}
			if t.Imp == 0 {
				t.Imp = 1
			}
			if ts.Prob != nil {
				t.Prob = *ts.Prob
			}
			// Uploaded values arrive in the caller's attribute order;
			// the schema sorts attributes, so place each value by name.
			for j, v := range ts.Values {
				if v == nil {
					continue // stays ⊥
				}
				pos, _ := schema.Position(attrs[j])
				t.Values[pos] = relation.V(*v)
			}
			if err := rel.AppendTuple(t); err != nil {
				return nil, fmt.Errorf("relation %s tuple %d: %w", rs.Name, i, err)
			}
		}
		rels = append(rels, rel)
	}
	return relation.NewDatabase(rels...)
}

// listDatabasesResponse is the GET /databases body: the registered
// databases plus any quarantined by recovery, so an operator sees
// casualties in the same place as survivors.
type listDatabasesResponse struct {
	Databases   []service.DatabaseInfo   `json:"databases"`
	Quarantined []service.QuarantineInfo `json:"quarantined,omitempty"`
}

func (s *server) handleListDatabases(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, listDatabasesResponse{
		Databases:   s.svc.ListDatabases(),
		Quarantined: s.svc.QuarantinedDatabases(),
	})
}

// appendRowsRequest appends tuples to one relation of a registered
// database. Attributes, when given, name the order of each tuple's
// values (any subset order of the relation's schema); when omitted the
// values must follow the schema's sorted attribute order.
type appendRowsRequest struct {
	Relation   string      `json:"relation"`
	Attributes []string    `json:"attributes,omitempty"`
	Tuples     []tupleSpec `json:"tuples"`
}

func (s *server) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req appendRowsRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	db, ok := s.svc.Database(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown database %q", name))
		return
	}
	relIdx, ok := db.RelationIndex(req.Relation)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("database %q has no relation %q", name, req.Relation))
		return
	}
	schema := db.Relation(relIdx).Schema()
	attrs := make([]relation.Attribute, 0, schema.Len())
	if req.Attributes == nil {
		attrs = append(attrs, schema.Attributes()...)
	} else {
		for _, a := range req.Attributes {
			attr := relation.Attribute(a)
			if !schema.Has(attr) {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("relation %q has no attribute %q", req.Relation, a))
				return
			}
			attrs = append(attrs, attr)
		}
	}
	tuples := make([]relation.Tuple, 0, len(req.Tuples))
	for i, ts := range req.Tuples {
		if len(ts.Values) != len(attrs) {
			writeError(w, http.StatusBadRequest, fmt.Errorf("tuple %d: %d values for %d attributes",
				i, len(ts.Values), len(attrs)))
			return
		}
		t := relation.Tuple{Label: ts.Label, Imp: ts.Imp, Prob: 1,
			Values: make([]relation.Value, schema.Len())}
		if t.Imp == 0 {
			t.Imp = 1
		}
		if ts.Prob != nil {
			t.Prob = *ts.Prob
		}
		for j, v := range ts.Values {
			if v == nil {
				continue // stays ⊥
			}
			pos, _ := schema.Position(attrs[j])
			t.Values[pos] = relation.V(*v)
		}
		tuples = append(tuples, t)
	}
	info, err := s.svc.AppendRows(name, req.Relation, tuples)
	if err != nil {
		// Classify on the returned error, not the pre-check above: the
		// database can be dropped between the schema lookup and the
		// append, and a durable-log failure after retry exhaustion is
		// the server's fault, not the client's.
		switch {
		case errors.Is(err, service.ErrUnknownDatabase),
			errors.Is(err, service.ErrUnknownRelation):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, service.ErrStorage):
			writeError(w, http.StatusInternalServerError, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *server) handleDropDatabase(w http.ResponseWriter, r *http.Request) {
	if err := s.svc.DropDatabase(r.PathValue("name")); err != nil {
		// An unknown name is the caller's mistake; anything else is an
		// operational failure (e.g. the persisted files could not be
		// deleted — the registration is then still intact).
		if errors.Is(err, service.ErrUnknownDatabase) {
			writeError(w, http.StatusNotFound, err)
		} else {
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleCreateQuery(w http.ResponseWriter, r *http.Request) {
	var req createQueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	spec := req.Query
	spec.Options = req.Options.resolve()
	q, err := s.svc.StartQuery(s.ctx, req.Database, spec)
	if err != nil {
		switch {
		case errors.Is(err, service.ErrUnknownDatabase):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, service.ErrOverloaded):
			writeOverloaded(w, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, createQueryResponse{ID: q.ID(), Cached: q.FromCache()})
}

// handleExplain reports the engine's plan for a query spec — join
// graph, index engagement, execution strategy with the parallel task
// layout, cache key and hit prediction — without opening a session. It
// takes the same body as POST /queries, resolved the same way, so the
// plan describes exactly the session that body would start.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req createQueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	spec := req.Query
	spec.Options = req.Options.resolve()
	rep, err := s.svc.Explain(req.Database, spec)
	if err != nil {
		if errors.Is(err, service.ErrUnknownDatabase) {
			writeError(w, http.StatusNotFound, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleProgress serves the session's live counters: phase, task
// completion, tuples scanned, results emitted, and the delay summary.
// It reads atomics only — a progress poll never waits on the page
// currently computing.
func (s *server) handleProgress(w http.ResponseWriter, r *http.Request) {
	q, ok := s.svc.Query(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown query %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, q.Progress())
}

func (s *server) handleNext(w http.ResponseWriter, r *http.Request) {
	q, ok := s.svc.Query(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown query %q", r.PathValue("id")))
		return
	}
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid page size %q", raw))
			return
		}
		k = v
	}
	page, done, err := q.Next(k)
	if err != nil {
		if errors.Is(err, service.ErrOverloaded) {
			// Shed, not dead: the session is untouched and the identical
			// Next may be retried.
			writeOverloaded(w, err)
			return
		}
		writeError(w, http.StatusGone, err)
		return
	}
	db := q.DB()
	u := q.Universe()
	attrs := u.AllAttributes()
	out := pageResponse{Results: make([]resultJSON, len(page)), Done: done, Served: q.Served()}
	for i, res := range page {
		out.Results[i] = renderResult(db, u, attrs, res)
	}
	writeJSON(w, http.StatusOK, out)
}

// renderResult renders one result over the database and universe it is
// bound to — the session's own for base pages, the extended database's
// for delta results arriving on a follow stream (whose sets reference
// appended tuples the base universe cannot format).
func renderResult(db *relation.Database, u *tupleset.Universe, attrs []relation.Attribute, res service.Result) resultJSON {
	rj := resultJSON{
		Set:    res.Set.Format(db),
		Values: make(map[string]*string, len(attrs)),
	}
	if res.Ranked {
		rank := res.Rank
		rj.Rank = &rank
	}
	padded := u.PadOver(res.Set, attrs)
	for j, a := range padded.Attrs {
		if padded.Values[j].IsNull() {
			rj.Values[string(a)] = nil
			continue
		}
		datum := padded.Values[j].Datum()
		rj.Values[string(a)] = &datum
	}
	return rj
}

// handleTrace serves the span tree of a live or recently finished
// query session — the EXPLAIN-ANALYZE view. Finished traces are kept
// in a bounded history (service.Config.TraceHistory), so a trace may
// age out with a 404 even if the id was once valid.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	d, ok := s.svc.QueryTrace(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no trace for query %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *server) handleDeleteQuery(w http.ResponseWriter, r *http.Request) {
	q, ok := s.svc.Query(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown query %q", r.PathValue("id")))
		return
	}
	q.Close()
	w.WriteHeader(http.StatusNoContent)
}

// statsResponse adds the HTTP layer's own counters to the service
// snapshot.
type statsResponse struct {
	service.Stats
	PanicsRecovered int64 `json:"panics_recovered"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Stats:           s.svc.Stats(),
		PanicsRecovered: s.panics.Load(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Warn("encode response", "error", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
