package main

// Handler error-path tests: malformed and oversized bodies, a
// panicking handler behind the recovery middleware, and admission
// overload surfacing as 503 + Retry-After.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// rawCall posts a raw (possibly invalid) body and returns the response.
func rawCall(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestMalformedBodies(t *testing.T) {
	ts, _ := startServer(t)
	for _, tc := range []struct{ method, path, body string }{
		{"POST", "/databases", `{"name": "x", "workload": `},
		{"POST", "/databases", `not json at all`},
		{"POST", "/queries", `{"database": 42`},
		{"POST", "/databases/w/rows", `[]`},
	} {
		resp := rawCall(t, tc.method, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s %s with body %q: status %d, want 400", tc.method, tc.path, tc.body, resp.StatusCode)
		}
		var e errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Fatalf("%s %s: error body not JSON (%v)", tc.method, tc.path, err)
		}
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	svc := service.New(service.Config{})
	defer svc.Close()
	srv := newServer(context.Background(), svc, 128)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	big := `{"name": "x", "relations": [{"name": "` + strings.Repeat("r", 200) + `"}]}`
	resp := rawCall(t, "POST", ts.URL+"/databases", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	// A body within the cap still works.
	call(t, "POST", ts.URL+"/databases",
		map[string]any{"name": "w", "workload": map[string]any{"kind": "chain",
			"relations": 2, "tuples": 2, "domain": 2}}, http.StatusCreated, nil)
}

func TestPanicRecoveryKeepsServing(t *testing.T) {
	svc := service.New(service.Config{})
	defer svc.Close()
	srv := newServer(context.Background(), svc, defaultMaxBody)
	mux := srv.routes()
	mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("synthetic handler failure")
	})
	ts := httptest.NewServer(srv.withRecovery(mux))
	defer ts.Close()

	resp := rawCall(t, "GET", ts.URL+"/boom", "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("panic response not a JSON error (%v)", err)
	}

	// The incident is counted and the server keeps serving.
	var stats statsResponse
	call(t, "GET", ts.URL+"/stats", nil, http.StatusOK, &stats)
	if stats.PanicsRecovered != 1 {
		t.Fatalf("panics_recovered = %d, want 1", stats.PanicsRecovered)
	}
	call(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, nil)
	call(t, "POST", ts.URL+"/databases",
		map[string]any{"name": "w", "workload": chainSpec}, http.StatusCreated, nil)
	rawCall(t, "GET", ts.URL+"/boom", "")
	call(t, "GET", ts.URL+"/stats", nil, http.StatusOK, &stats)
	if stats.PanicsRecovered != 2 {
		t.Fatalf("panics_recovered = %d, want 2", stats.PanicsRecovered)
	}
}

func TestOverloadSheds503(t *testing.T) {
	// One worker, minimal patience: concurrent heavy pages must shed
	// with 503 + Retry-After instead of queueing without bound.
	svc := service.New(service.Config{Workers: 1, AdmissionTimeout: time.Millisecond})
	defer svc.Close()
	ts := httptest.NewServer(newMux(context.Background(), svc))
	defer ts.Close()

	// A clique workload with a large result set keeps the single worker
	// busy long enough for the concurrent requests to overlap.
	call(t, "POST", ts.URL+"/databases", map[string]any{
		"name": "d", "workload": map[string]any{
			"kind": "clique", "relations": 5, "tuples": 6, "domain": 2, "seed": 3}},
		http.StatusCreated, nil)

	const n = 6
	ids := make([]string, n)
	for i := range ids {
		var q createQueryResponse
		call(t, "POST", ts.URL+"/queries",
			map[string]any{"database": "d", "options": map[string]any{"use_index": true}},
			http.StatusCreated, &q)
		ids[i] = q.ID
	}

	got503 := false
	for round := 0; round < 20 && !got503; round++ {
		var (
			mu       sync.Mutex
			statuses []int
			retries  []string
		)
		var wg sync.WaitGroup
		for _, id := range ids {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				resp, err := http.Get(ts.URL + "/queries/" + id + "/next?k=1024")
				if err != nil {
					return
				}
				defer resp.Body.Close()
				mu.Lock()
				statuses = append(statuses, resp.StatusCode)
				if resp.StatusCode == http.StatusServiceUnavailable {
					retries = append(retries, resp.Header.Get("Retry-After"))
				}
				mu.Unlock()
			}(id)
		}
		wg.Wait()
		okCount := 0
		for _, st := range statuses {
			switch st {
			case http.StatusOK:
				okCount++
			case http.StatusServiceUnavailable:
				got503 = true
			default:
				t.Fatalf("unexpected status %d under load (want 200 or 503)", st)
			}
		}
		if okCount == 0 {
			t.Fatal("no request succeeded under load")
		}
		for _, ra := range retries {
			if ra == "" {
				t.Fatal("503 response missing Retry-After")
			}
		}
	}
	if !got503 {
		t.Fatal("never observed a 503 across 20 concurrent rounds")
	}
	if svc.Stats().AdmissionTimeouts == 0 {
		t.Fatal("AdmissionTimeouts stayed zero despite shed requests")
	}

	// A shed session is still alive: with the load gone its Next works.
	resp := rawCall(t, "GET", ts.URL+"/queries/"+ids[0]+"/next?k=4", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Next after load: status %d, want 200", resp.StatusCode)
	}
}
