// Command fdbench runs the experiment suite E1–E12 that reproduces the
// paper's tables, worked examples and complexity claims, printing
// markdown tables (the source of EXPERIMENTS.md).
//
// Usage:
//
//	fdbench                       # run everything
//	fdbench -e E4,E5              # run selected experiments
//	fdbench -list                 # list experiment ids and titles
//	fdbench -e E9 -json out.json  # also write machine-readable records
//
// -json writes a {"records": [...]} document with one trajectory record
// per selected experiment that supports structured output (wall-clock,
// core.Stats counters, allocation deltas). Committing the file as
// BENCH_<workload>.json keeps the performance history diffable across
// PRs.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		exps      = flag.String("e", "", "comma-separated experiment ids (default: all)")
		list      = flag.Bool("list", false, "list experiments and exit")
		jsonPath  = flag.String("json", "", "write machine-readable trajectory records of the selected experiments to this file")
		appendSel = flag.Bool("append", false, "run the append-maintenance benchmark (delta vs rebuild per append batch); shorthand for -e E12 -json BENCH_append.json")
	)
	flag.Parse()

	registry := bench.Registry()
	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := bench.IDs()
	if *exps != "" {
		ids = strings.Split(*exps, ",")
	}
	if *appendSel {
		ids = []string{"E12"}
		if *jsonPath == "" {
			*jsonPath = "BENCH_append.json"
		}
	}
	trajectories := bench.Trajectories()
	var records []*bench.Record
	for _, id := range ids {
		id = strings.TrimSpace(id)
		exp, ok := registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "fdbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		// With -json, experiments that support structured output run
		// once through the combined runner, which renders the table
		// and the record from the same measurements.
		if traj, ok := trajectories[id]; ok && *jsonPath != "" {
			table, rec, err := traj()
			if err != nil {
				fmt.Fprintf(os.Stderr, "fdbench: %s failed: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println(table.Markdown())
			records = append(records, rec)
			continue
		}
		table, err := exp()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdbench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(table.Markdown())
	}
	if *jsonPath == "" {
		return
	}
	if len(records) == 0 {
		supported := make([]string, 0, len(trajectories))
		for id := range trajectories {
			supported = append(supported, id)
		}
		sort.Strings(supported)
		fmt.Fprintf(os.Stderr, "fdbench: none of the selected experiments has a trajectory (supported: %s)\n",
			strings.Join(supported, ", "))
		os.Exit(2)
	}
	f, err := os.Create(*jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdbench: %v\n", err)
		os.Exit(1)
	}
	if err := bench.WriteRecords(f, records); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "fdbench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "fdbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fdbench: wrote %d trajectory record(s) to %s\n", len(records), *jsonPath)
}
