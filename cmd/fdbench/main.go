// Command fdbench runs the experiment suite E1–E11 that reproduces the
// paper's tables, worked examples and complexity claims, printing
// markdown tables (the source of EXPERIMENTS.md).
//
// Usage:
//
//	fdbench            # run everything
//	fdbench -e E4,E5   # run selected experiments
//	fdbench -list      # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		exps = flag.String("e", "", "comma-separated experiment ids (default: all)")
		list = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	registry := bench.Registry()
	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := bench.IDs()
	if *exps != "" {
		ids = strings.Split(*exps, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		exp, ok := registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "fdbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		table, err := exp()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdbench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(table.Markdown())
	}
}
