// Command quickstart reproduces the paper's running example end to end:
// it builds the three tourist relations of Table 1 with the public API,
// computes their full disjunction, and prints both the tuple-set view
// and the padded-tuple view of Table 2.
package main

import (
	"context"
	"fmt"
	"log"

	fd "repro"
)

func main() {
	climates := fd.MustRelation("Climates", fd.MustSchema("Country", "Climate"))
	climates.MustAppend("c1", row{"Country": "Canada", "Climate": "diverse"}.values())
	climates.MustAppend("c2", row{"Country": "UK", "Climate": "temperate"}.values())
	climates.MustAppend("c3", row{"Country": "Bahamas", "Climate": "tropical"}.values())

	accommodations := fd.MustRelation("Accommodations",
		fd.MustSchema("Country", "City", "Hotel", "Stars"))
	accommodations.MustAppend("a1", row{"Country": "Canada", "City": "Toronto", "Hotel": "Plaza", "Stars": "4"}.values())
	accommodations.MustAppend("a2", row{"Country": "Canada", "City": "London", "Hotel": "Ramada", "Stars": "3"}.values())
	accommodations.MustAppend("a3", row{"Country": "Bahamas", "City": "Nassau", "Hotel": "Hilton"}.values()) // Stars unknown: ⊥

	sites := fd.MustRelation("Sites", fd.MustSchema("Country", "City", "Site"))
	sites.MustAppend("s1", row{"Country": "Canada", "City": "London", "Site": "Air Show"}.values())
	sites.MustAppend("s2", row{"Country": "Canada", "Site": "Mount Logan"}.values()) // City unknown: ⊥
	sites.MustAppend("s3", row{"Country": "UK", "City": "London", "Site": "Buckingham"}.values())
	sites.MustAppend("s4", row{"Country": "UK", "City": "London", "Site": "Hyde Park"}.values())

	db, err := fd.NewDatabase(climates, accommodations, sites)
	if err != nil {
		log.Fatal(err)
	}

	// One declarative spec, one entry point: the same fd.Query also
	// travels over fdserve's HTTP wire and through fdcli's flags.
	rs, err := fd.Open(context.Background(), db, fd.Query{Mode: fd.ModeExact})
	if err != nil {
		log.Fatal(err)
	}
	defer rs.Close()
	var results []*fd.TupleSet
	for r, ok := rs.Next(); ok; r, ok = rs.Next() {
		results = append(results, r.Set)
	}
	if err := rs.Err(); err != nil {
		log.Fatal(err)
	}
	stats := rs.Stats()

	fmt.Println("FD(Climates, Accommodations, Sites) — Table 2 of the paper:")
	fmt.Println()
	attrs, rows := fd.PadAll(db, results)
	header := fmt.Sprintf("%-16s", "tuple set")
	for _, a := range attrs {
		header += fmt.Sprintf(" %-10s", a)
	}
	fmt.Println(header)
	for i, t := range results {
		line := fmt.Sprintf("%-16s", fd.Format(db, t))
		for _, v := range rows[i].Values {
			line += fmt.Sprintf(" %-10s", v)
		}
		fmt.Println(line)
	}
	fmt.Println()
	fmt.Printf("produced %d tuple sets in %d GetNextResult iterations\n",
		len(results), stats.Iterations)
}

// row is sugar for building attribute→value maps from plain strings.
type row map[fd.Attribute]string

func (r row) values() map[fd.Attribute]fd.Value {
	out := make(map[fd.Attribute]fd.Value, len(r))
	for a, s := range r {
		out[a] = fd.V(s)
	}
	return out
}
