// Command streaming demonstrates the incremental (PINC) behaviour that
// distinguishes INCREMENTALFD from its predecessors: on a database
// whose full disjunction has thousands of members, the first answers
// arrive after a tiny fraction of the total work, and the consumer can
// stop whenever it has seen enough.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	fd "repro"
)

func main() {
	db, err := buildDatabase(5, 24)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	opts := fd.QueryOptions{UseIndex: true}

	// First pass: materialise everything, for reference.
	start := time.Now()
	all, stats, err := drain(ctx, db, fd.Query{Options: opts})
	if err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(start)
	fmt.Printf("full disjunction: %d tuple sets in %v (%s)\n\n", len(all), fullTime, stats)

	// Second pass: a K-bounded query stops after k answers — the
	// PINC guarantee makes the prefix cheap.
	for _, k := range []int{1, 10, 100} {
		start = time.Now()
		if _, _, err := drain(ctx, db, fd.Query{K: k, Options: opts}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("first %4d answers: %10v  (%.1f%% of full-run time)\n",
			k, time.Since(start), 100*float64(time.Since(start))/float64(fullTime))
	}

	fmt.Println()
	fmt.Println("first five answers:")
	first, _, err := drain(ctx, db, fd.Query{K: 5, Options: opts})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range first {
		fmt.Printf("  %s\n", fd.Format(db, r.Set))
	}
}

// drain opens q against db and pulls the cursor dry.
func drain(ctx context.Context, db *fd.Database, q fd.Query) ([]fd.Result, fd.Stats, error) {
	rs, err := fd.Open(ctx, db, q)
	if err != nil {
		return nil, fd.Stats{}, err
	}
	defer rs.Close()
	var out []fd.Result
	for r, ok := rs.Next(); ok; r, ok = rs.Next() {
		out = append(out, r)
	}
	return out, rs.Stats(), rs.Err()
}

// buildDatabase constructs a chain of n relations R0(J0,P0), R1(J0,J1,P1),
// ... with m tuples each, joining on shared J attributes; join values
// repeat so the full disjunction is large.
func buildDatabase(n, m int) (*fd.Database, error) {
	rels := make([]*fd.Relation, n)
	for i := 0; i < n; i++ {
		attrs := []fd.Attribute{fd.Attribute(fmt.Sprintf("P%d", i))}
		if i > 0 {
			attrs = append(attrs, fd.Attribute(fmt.Sprintf("J%d", i-1)))
		}
		if i < n-1 {
			attrs = append(attrs, fd.Attribute(fmt.Sprintf("J%d", i)))
		}
		rel, err := fd.NewRelation(fmt.Sprintf("R%d", i), fd.MustSchema(attrs...))
		if err != nil {
			return nil, err
		}
		for t := 0; t < m; t++ {
			vals := map[fd.Attribute]fd.Value{
				fd.Attribute(fmt.Sprintf("P%d", i)): fd.V(fmt.Sprintf("p%d_%d", i, t)),
			}
			if i > 0 {
				vals[fd.Attribute(fmt.Sprintf("J%d", i-1))] = fd.V(fmt.Sprintf("v%d", t%12))
			}
			if i < n-1 {
				vals[fd.Attribute(fmt.Sprintf("J%d", i))] = fd.V(fmt.Sprintf("v%d", (t+i)%12))
			}
			rel.MustAppend(fmt.Sprintf("R%d_t%d", i, t), vals)
		}
		rels[i] = rel
	}
	return fd.NewDatabase(rels...)
}
