// Command integration demonstrates approximate full disjunctions
// (Section 6 of the paper): two product catalogues and a review site
// are integrated although one source misspells names and wrapped tuples
// carry extraction probabilities. Amin with Levenshtein similarity
// recovers matches that exact joins miss, with the threshold τ trading
// recall against confidence.
package main

import (
	"fmt"
	"log"

	fd "repro"
)

func main() {
	// Source 1: a clean catalogue.
	catalog := fd.MustRelation("Catalog", fd.MustSchema("Product", "Brand"))
	add(catalog, "k1", 1.0, map[fd.Attribute]fd.Value{
		"Product": fd.V("ThinkPad X1"), "Brand": fd.V("Lenovo")})
	add(catalog, "k2", 1.0, map[fd.Attribute]fd.Value{
		"Product": fd.V("MacBook Air"), "Brand": fd.V("Apple")})
	add(catalog, "k3", 0.9, map[fd.Attribute]fd.Value{
		"Product": fd.V("ZenBook 14"), "Brand": fd.V("Asus")})

	// Source 2: prices wrapped from a Web shop — names get mangled.
	prices := fd.MustRelation("Prices", fd.MustSchema("Product", "Price"))
	add(prices, "p1", 0.95, map[fd.Attribute]fd.Value{
		"Product": fd.V("ThinkPad X1"), "Price": fd.V("1499")})
	add(prices, "p2", 0.8, map[fd.Attribute]fd.Value{
		"Product": fd.V("MacBok Air"), "Price": fd.V("1099")}) // misspelled!
	add(prices, "p3", 0.9, map[fd.Attribute]fd.Value{
		"Product": fd.V("Zenbook 14"), "Price": fd.V("999")}) // case slip

	// Source 3: reviews, also imperfect.
	reviews := fd.MustRelation("Reviews", fd.MustSchema("Product", "Score"))
	add(reviews, "r1", 0.85, map[fd.Attribute]fd.Value{
		"Product": fd.V("ThinkPadX1"), "Score": fd.V("8.5")}) // missing space
	add(reviews, "r2", 1.0, map[fd.Attribute]fd.Value{
		"Product": fd.V("MacBook Air"), "Score": fd.V("9.0")})

	db, err := fd.NewDatabase(catalog, prices, reviews)
	if err != nil {
		log.Fatal(err)
	}

	// Exact full disjunction: the misspelled tuples stay unmatched.
	exact, _, err := fd.FullDisjunction(db, fd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Exact full disjunction (misspellings break the joins):")
	printSets(db, exact)

	// Approximate full disjunction under Amin + Levenshtein.
	amin := fd.Amin(fd.LevenshteinSim())
	for _, tau := range []float64{0.9, 0.75, 0.5} {
		results, _, err := fd.ApproxFullDisjunction(db, amin, tau)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nApproximate full disjunction, τ = %.2f (%d results):\n", tau, len(results))
		printSets(db, results)
	}
}

func printSets(db *fd.Database, sets []*fd.TupleSet) {
	attrs, rows := fd.PadAll(db, sets)
	for i, t := range sets {
		line := fmt.Sprintf("  %-14s", fd.Format(db, t))
		for j, v := range rows[i].Values {
			line += fmt.Sprintf(" %s=%-12s", attrs[j], v)
		}
		fmt.Println(line)
	}
}

func add(rel *fd.Relation, label string, prob float64, vals map[fd.Attribute]fd.Value) {
	rel.MustAppend(label, vals)
	rel.MutateTuple(rel.Len()-1, func(t *fd.Tuple) { t.Prob = prob })
}
