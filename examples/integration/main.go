// Command integration demonstrates approximate full disjunctions
// (Section 6 of the paper): two product catalogues and a review site
// are integrated although one source misspells names and wrapped tuples
// carry extraction probabilities. Amin with Levenshtein similarity
// recovers matches that exact joins miss, with the threshold τ trading
// recall against confidence.
package main

import (
	"context"
	"fmt"
	"log"

	fd "repro"
)

func main() {
	// Source 1: a clean catalogue.
	catalog := fd.MustRelation("Catalog", fd.MustSchema("Product", "Brand"))
	add(catalog, "k1", 1.0, map[fd.Attribute]fd.Value{
		"Product": fd.V("ThinkPad X1"), "Brand": fd.V("Lenovo")})
	add(catalog, "k2", 1.0, map[fd.Attribute]fd.Value{
		"Product": fd.V("MacBook Air"), "Brand": fd.V("Apple")})
	add(catalog, "k3", 0.9, map[fd.Attribute]fd.Value{
		"Product": fd.V("ZenBook 14"), "Brand": fd.V("Asus")})

	// Source 2: prices wrapped from a Web shop — names get mangled.
	prices := fd.MustRelation("Prices", fd.MustSchema("Product", "Price"))
	add(prices, "p1", 0.95, map[fd.Attribute]fd.Value{
		"Product": fd.V("ThinkPad X1"), "Price": fd.V("1499")})
	add(prices, "p2", 0.8, map[fd.Attribute]fd.Value{
		"Product": fd.V("MacBok Air"), "Price": fd.V("1099")}) // misspelled!
	add(prices, "p3", 0.9, map[fd.Attribute]fd.Value{
		"Product": fd.V("Zenbook 14"), "Price": fd.V("999")}) // case slip

	// Source 3: reviews, also imperfect.
	reviews := fd.MustRelation("Reviews", fd.MustSchema("Product", "Score"))
	add(reviews, "r1", 0.85, map[fd.Attribute]fd.Value{
		"Product": fd.V("ThinkPadX1"), "Score": fd.V("8.5")}) // missing space
	add(reviews, "r2", 1.0, map[fd.Attribute]fd.Value{
		"Product": fd.V("MacBook Air"), "Score": fd.V("9.0")})

	db, err := fd.NewDatabase(catalog, prices, reviews)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()

	// Exact full disjunction: the misspelled tuples stay unmatched.
	exact, err := drain(ctx, db, fd.Query{Mode: fd.ModeExact})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Exact full disjunction (misspellings break the joins):")
	printSets(db, exact)

	// Approximate full disjunction under Amin + Levenshtein — the same
	// query fdserve accepts as {"mode":"approx","tau":0.9}.
	for _, tau := range []float64{0.9, 0.75, 0.5} {
		results, err := drain(ctx, db, fd.Query{Mode: fd.ModeApprox, Tau: tau})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nApproximate full disjunction, τ = %.2f (%d results):\n", tau, len(results))
		printSets(db, results)
	}

	// Approx-ranked: the most probable integrations first, Sections 5
	// and 6 combined in one declarative spec.
	fmt.Println("\nTop-3 approximate integrations by fmax, τ = 0.75:")
	rs, err := fd.Open(ctx, db, fd.Query{Mode: fd.ModeApproxRanked, Tau: 0.75, Rank: "fmax", K: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer rs.Close()
	for r, ok := rs.Next(); ok; r, ok = rs.Next() {
		fmt.Printf("  %-14s rank %.2f\n", fd.Format(db, r.Set), r.Rank)
	}
	if err := rs.Err(); err != nil {
		log.Fatal(err)
	}
}

// drain opens q against db and collects the tuple sets.
func drain(ctx context.Context, db *fd.Database, q fd.Query) ([]*fd.TupleSet, error) {
	rs, err := fd.Open(ctx, db, q)
	if err != nil {
		return nil, err
	}
	defer rs.Close()
	var out []*fd.TupleSet
	for r, ok := rs.Next(); ok; r, ok = rs.Next() {
		out = append(out, r.Set)
	}
	return out, rs.Err()
}

func printSets(db *fd.Database, sets []*fd.TupleSet) {
	attrs, rows := fd.PadAll(db, sets)
	for i, t := range sets {
		line := fmt.Sprintf("  %-14s", fd.Format(db, t))
		for j, v := range rows[i].Values {
			line += fmt.Sprintf(" %s=%-12s", attrs[j], v)
		}
		fmt.Println(line)
	}
}

func add(rel *fd.Relation, label string, prob float64, vals map[fd.Attribute]fd.Value) {
	rel.MustAppend(label, vals)
	rel.MutateTuple(rel.Len()-1, func(t *fd.Tuple) { t.Prob = prob })
}
