// Command topk demonstrates ranked retrieval (Section 5 of the paper):
// the tourist of the introduction prefers tropical over temperate over
// diverse climates and higher-starred hotels, so tuples carry matching
// importances and the top answers arrive first — without computing the
// whole full disjunction.
package main

import (
	"context"
	"fmt"
	"log"

	fd "repro"
)

func main() {
	climates := fd.MustRelation("Climates", fd.MustSchema("Country", "Climate"))
	addWithImp(climates, "c1", 1, map[fd.Attribute]fd.Value{ // diverse: least preferred
		"Country": fd.V("Canada"), "Climate": fd.V("diverse")})
	addWithImp(climates, "c2", 2, map[fd.Attribute]fd.Value{
		"Country": fd.V("UK"), "Climate": fd.V("temperate")})
	addWithImp(climates, "c3", 3, map[fd.Attribute]fd.Value{ // tropical: most preferred
		"Country": fd.V("Bahamas"), "Climate": fd.V("tropical")})

	accommodations := fd.MustRelation("Accommodations",
		fd.MustSchema("Country", "City", "Hotel", "Stars"))
	addWithImp(accommodations, "a1", 4, map[fd.Attribute]fd.Value{
		"Country": fd.V("Canada"), "City": fd.V("Toronto"), "Hotel": fd.V("Plaza"), "Stars": fd.V("4")})
	addWithImp(accommodations, "a2", 3, map[fd.Attribute]fd.Value{
		"Country": fd.V("Canada"), "City": fd.V("London"), "Hotel": fd.V("Ramada"), "Stars": fd.V("3")})
	addWithImp(accommodations, "a3", 1, map[fd.Attribute]fd.Value{ // unknown rating
		"Country": fd.V("Bahamas"), "City": fd.V("Nassau"), "Hotel": fd.V("Hilton")})

	sites := fd.MustRelation("Sites", fd.MustSchema("Country", "City", "Site"))
	for label, vals := range map[string]map[fd.Attribute]fd.Value{
		"s1": {"Country": fd.V("Canada"), "City": fd.V("London"), "Site": fd.V("Air Show")},
		"s2": {"Country": fd.V("Canada"), "Site": fd.V("Mount Logan")},
		"s3": {"Country": fd.V("UK"), "City": fd.V("London"), "Site": fd.V("Buckingham")},
		"s4": {"Country": fd.V("UK"), "City": fd.V("London"), "Site": fd.V("Hyde Park")},
	} {
		addWithImp(sites, label, 1, vals)
	}

	db, err := fd.NewDatabase(climates, accommodations, sites)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()

	fmt.Println("Top-3 destinations under fmax (hotel stars dominate):")
	top, err := drainRanked(ctx, db, fd.Query{Mode: fd.ModeRanked, Rank: "fmax", K: 3})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range top {
		fmt.Printf("  %d. %-14s rank %.0f\n", i+1, fd.Format(db, r.Set), r.Rank)
	}

	fmt.Println()
	fmt.Println("All destinations ranking at least 2 (threshold variant):")
	atLeast, err := drainRanked(ctx, db, fd.Query{Mode: fd.ModeRanked, Rank: "fmax", RankTau: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range atLeast {
		fmt.Printf("  %-14s rank %.0f\n", fd.Format(db, r.Set), r.Rank)
	}

	fmt.Println()
	fmt.Println("Top-3 under the 2-determined pair-sum function (climate+hotel):")
	top2, err := drainRanked(ctx, db, fd.Query{Mode: fd.ModeRanked, Rank: "pairsum", K: 3})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range top2 {
		fmt.Printf("  %d. %-14s rank %.0f\n", i+1, fd.Format(db, r.Set), r.Rank)
	}
}

// drainRanked opens a ranked query and pulls it dry.
func drainRanked(ctx context.Context, db *fd.Database, q fd.Query) ([]fd.Result, error) {
	rs, err := fd.Open(ctx, db, q)
	if err != nil {
		return nil, err
	}
	defer rs.Close()
	var out []fd.Result
	for r, ok := rs.Next(); ok; r, ok = rs.Next() {
		out = append(out, r)
	}
	return out, rs.Err()
}

func addWithImp(rel *fd.Relation, label string, imp float64, vals map[fd.Attribute]fd.Value) {
	rel.MustAppend(label, vals)
	rel.MutateTuple(rel.Len()-1, func(t *fd.Tuple) { t.Imp = imp })
}
