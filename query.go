package fd

import (
	"fmt"
	"runtime"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/rank"
)

// Mode selects the evaluation family of a Query, mapping onto the
// paper's four problems: FD(R), top-(k,f)/(τ,f)-threshold,
// (A,τ)-approximate, and the ranked approximate adaptation sketched at
// the end of Section 6.
type Mode string

// Query modes. The zero value is normalised to ModeExact.
const (
	// ModeExact enumerates FD(R) (INCREMENTALFD).
	ModeExact Mode = "exact"
	// ModeRanked enumerates FD(R) in non-increasing rank order under a
	// named ranking function (PRIORITYINCREMENTALFD); combine with K or
	// RankTau for the top-(k,f) and (τ,f)-threshold problems.
	ModeRanked Mode = "ranked"
	// ModeApprox enumerates AFD(R, Amin, τ) under a named similarity
	// (APPROXINCREMENTALFD).
	ModeApprox Mode = "approx"
	// ModeApproxRanked enumerates AFD(R, Amin, τ) in non-increasing
	// rank order — Sections 5 and 6 combined.
	ModeApproxRanked Mode = "approx-ranked"
)

// TraceFunc observes enumerator state after each GetNextResult call
// (the reproduction hook behind the paper's Table 3).
type TraceFunc = core.TraceFunc

// QueryOptions carries the engine knobs of a Query. The serialisable
// fields travel in the Query's JSON encoding and participate in its
// canonical form (they can change the emission order, which a cached
// result list replays); Pool and Trace are process-local hooks that do
// neither.
type QueryOptions struct {
	// UseIndex enables the §7 hash index over the Complete and
	// Incomplete lists.
	UseIndex bool `json:"use_index,omitempty"`
	// UseJoinIndex enables candidate-only database scans over the
	// equi-join posting index. Approximate modes apply it only when the
	// similarity is exact (a graded similarity admits matches that
	// never equi-join, so candidate scans would lose results).
	UseJoinIndex bool `json:"use_join_index,omitempty"`
	// BlockSize is the simulated page size of database scans; 0 or 1
	// means tuple-at-a-time.
	BlockSize int `json:"block_size,omitempty"`
	// Strategy names the Incomplete initialisation of exact mode:
	// "singletons" (default), "seeded" or "projected" (§7).
	Strategy string `json:"strategy,omitempty"`
	// Workers bounds the intra-query parallelism of the streaming
	// executor: 0 (the default) selects GOMAXPROCS, 1 forces the
	// sequential path, higher values run that many enumeration workers.
	// Only the parallelisable paths use it — exact mode under the
	// restart ("singletons") strategy and the approx modes; the ranked
	// modes are inherently serial (the Fig 3 priority-queue order) and
	// the seeded/projected initialisations feed each pass from the
	// previous one, so there Workers is ignored and normalised away.
	Workers int `json:"workers,omitempty"`
	// Pool, when non-nil, routes simulated page fetches through an LRU
	// buffer pool. Runtime-only: never serialised, never keyed.
	Pool *BufferPool `json:"-"`
	// Trace, when non-nil, snapshots enumerator state per iteration.
	// Runtime-only: never serialised, never keyed.
	Trace TraceFunc `json:"-"`
	// TaskObserver, when non-nil, receives a TaskSpan each time a
	// parallel enumeration task finishes — the observability hook the
	// service layer uses to attach per-task spans to a query trace.
	// Runtime-only like Pool and Trace, but unlike them it does not
	// force the sequential path: it exists to observe the parallel one.
	TaskObserver TaskObserver `json:"-"`
	// Delay, when non-nil, receives the gap between consecutive results
	// of the opened cursor — the measured form of the paper's
	// polynomial-delay guarantee. Runtime-only, and like TaskObserver it
	// observes whichever path runs rather than forcing the sequential
	// one.
	Delay *Delay `json:"-"`
	// Progress, when non-nil, is kept current with the enumeration's
	// live counters (phase, task completion, tuples scanned, results
	// emitted); any goroutine may snapshot it mid-flight. Runtime-only
	// like Delay.
	Progress *Progress `json:"-"`
}

// engine renders the options as core.Options; the strategy name must
// already be validated.
func (o QueryOptions) engine() (core.Options, error) {
	strat, err := ParseInitStrategy(o.Strategy)
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		UseIndex:     o.UseIndex,
		UseJoinIndex: o.UseJoinIndex,
		BlockSize:    o.BlockSize,
		Strategy:     strat,
		Pool:         o.Pool,
		Trace:        o.Trace,
		TaskObserver: o.TaskObserver,
	}, nil
}

// ParseInitStrategy resolves a strategy name from a Query's options;
// the empty name selects InitSingletons.
func ParseInitStrategy(name string) (InitStrategy, error) {
	switch name {
	case "", "singletons":
		return InitSingletons, nil
	case "seeded":
		return InitSeeded, nil
	case "projected":
		return InitProjected, nil
	default:
		return 0, fmt.Errorf("fd: unknown init strategy %q (singletons, seeded, projected)", name)
	}
}

// RankByName resolves a ranking-function name of a Query: "fmax",
// "pairsum" or "triple".
func RankByName(name string) (RankFunc, error) {
	switch name {
	case "fmax":
		return rank.FMax{}, nil
	case "pairsum":
		return rank.PairSum(), nil
	case "triple":
		return rank.PaperTriple(), nil
	default:
		return nil, fmt.Errorf("fd: unknown ranking function %q (fmax, pairsum, triple)", name)
	}
}

// SimByName resolves a similarity name of a Query: "levenshtein"
// (the default when empty) or "exact".
func SimByName(name string) (Sim, error) {
	switch name {
	case "", "levenshtein":
		return approx.LevenshteinSim{}, nil
	case "exact":
		return approx.ExactSim{}, nil
	default:
		return nil, fmt.Errorf("fd: unknown similarity %q (levenshtein, exact)", name)
	}
}

// Query is the declarative specification of one full-disjunction
// computation — the single spec every front end (library, service,
// HTTP, CLI) parses, validates, caches and executes identically. The
// zero Query is a valid exact full enumeration. A Query round-trips
// through JSON (the fdserve wire format embeds it verbatim), and its
// Canonical form keys result caches.
type Query struct {
	// Mode selects the evaluation family; empty means exact.
	Mode Mode `json:"mode,omitempty"`
	// Rank names the ranking function of the ranked modes: fmax,
	// pairsum or triple.
	Rank string `json:"rank,omitempty"`
	// K, when positive, stops the enumeration after K results — the
	// top-(k,f) problem in ranked modes, a first-k prefix otherwise.
	K int `json:"k,omitempty"`
	// Tau is the approximate-join threshold of the approx modes, in
	// (0,1].
	Tau float64 `json:"tau,omitempty"`
	// RankTau, when positive, stops a ranked enumeration at the first
	// result ranking below it — the (τ,f)-threshold problem.
	RankTau float64 `json:"rank_tau,omitempty"`
	// Sim names the similarity of the approx modes: levenshtein
	// (default) or exact.
	Sim string `json:"sim,omitempty"`
	// Follow subscribes the session to incremental maintenance: after
	// the base enumeration drains, the session stays open and receives
	// the delta results of every append to its database
	// (internal/delta) until it is closed. Only the unbounded exact and
	// approx modes can be followed — a ranked order or a K/RankTau
	// bound is a property of a finished enumeration, not of a live one.
	// Follow does not change the computed result set, so it is excluded
	// from the canonical form: a follow query shares its cache entry
	// with the one-shot spelling.
	Follow bool `json:"follow,omitempty"`
	// Options carries the engine knobs.
	Options QueryOptions `json:"options,omitzero"`
}

// normalize resolves defaults (mode, similarity, strategy, block size)
// so that queries meaning the same computation compare equal in
// Canonical.
func (q Query) normalize() Query {
	if q.Mode == "" {
		q.Mode = ModeExact
	}
	if q.Options.Strategy == "" {
		q.Options.Strategy = "singletons"
	}
	if q.Options.BlockSize < 1 {
		q.Options.BlockSize = 1 // 0 and 1 are both tuple-at-a-time
	}
	if (q.Mode == ModeApprox || q.Mode == ModeApproxRanked) && q.Sim == "" {
		q.Sim = "levenshtein"
	}
	if q.Mode != ModeExact {
		// Only the exact driver has per-pass initialisation strategies.
		q.Options.Strategy = "singletons"
	}
	if q.Mode == ModeRanked || q.Mode == ModeApproxRanked ||
		(q.Mode == ModeExact && q.Options.Strategy != "singletons") {
		// Workers is ignored on the inherently sequential paths; zero it
		// so spellings that cannot differ share one canonical key.
		q.Options.Workers = 0
	}
	q.Options.Pool, q.Options.Trace, q.Options.TaskObserver = nil, nil, nil
	q.Options.Delay, q.Options.Progress = nil, nil
	return q
}

// ParallelWorkers reports the worker count Open would actually run q
// with: 1 on the sequential paths (ranked modes, seeded/projected
// strategies, a Trace hook or buffer Pool attached), otherwise the
// requested Workers with 0 resolved to GOMAXPROCS. Admission layers
// (internal/service) use it to budget intra-query parallelism before
// opening the cursor.
func (q Query) ParallelWorkers() int {
	if q.Options.Trace != nil || q.Options.Pool != nil {
		return 1
	}
	n := q.normalize()
	switch n.Mode {
	case ModeRanked, ModeApproxRanked:
		return 1
	}
	if n.Mode == ModeExact && n.Options.Strategy != "singletons" {
		return 1
	}
	w := n.Options.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Validate rejects malformed queries before any session or cursor
// exists: unknown modes, names that do not resolve, thresholds outside
// their domain, parameters that their mode would silently ignore.
func (q Query) Validate() error {
	ranked, approxMode := false, false
	switch q.Mode {
	case "", ModeExact:
	case ModeRanked:
		ranked = true
	case ModeApprox:
		approxMode = true
	case ModeApproxRanked:
		ranked, approxMode = true, true
	default:
		return fmt.Errorf("fd: unknown query mode %q", q.Mode)
	}
	if ranked {
		if _, err := RankByName(q.Rank); err != nil {
			return err
		}
	} else {
		if q.Rank != "" {
			return fmt.Errorf("fd: rank function %q given for non-ranked mode %q", q.Rank, q.Mode)
		}
		if q.RankTau != 0 {
			return fmt.Errorf("fd: rank threshold %v given for non-ranked mode %q", q.RankTau, q.Mode)
		}
	}
	if approxMode {
		if q.Tau <= 0 || q.Tau > 1 {
			return fmt.Errorf("fd: approx threshold %v outside (0,1]", q.Tau)
		}
		if _, err := SimByName(q.Sim); err != nil {
			return err
		}
	} else {
		if q.Tau != 0 {
			return fmt.Errorf("fd: approx threshold %v given for non-approx mode %q", q.Tau, q.Mode)
		}
		if q.Sim != "" {
			return fmt.Errorf("fd: similarity %q given for non-approx mode %q", q.Sim, q.Mode)
		}
	}
	if q.K < 0 {
		return fmt.Errorf("fd: negative k %d", q.K)
	}
	if q.RankTau < 0 {
		return fmt.Errorf("fd: negative rank threshold %v", q.RankTau)
	}
	if q.Options.BlockSize < 0 {
		return fmt.Errorf("fd: negative block size %d", q.Options.BlockSize)
	}
	if q.Options.Workers < 0 {
		return fmt.Errorf("fd: negative workers %d", q.Options.Workers)
	}
	if _, err := ParseInitStrategy(q.Options.Strategy); err != nil {
		return err
	}
	if (ranked || approxMode) && q.Options.Strategy != "" && q.Options.Strategy != "singletons" {
		return fmt.Errorf("fd: init strategy %q given for mode %q (only the exact driver has per-pass initialisation strategies)", q.Options.Strategy, q.Mode)
	}
	if q.Follow {
		if ranked {
			return fmt.Errorf("fd: follow subscription for ranked mode %q (rank order is a property of a finished enumeration)", q.Mode)
		}
		if q.K != 0 || q.RankTau != 0 {
			return fmt.Errorf("fd: follow subscription with a result bound (k=%d, rank_tau=%v)", q.K, q.RankTau)
		}
	}
	return nil
}

// Canonical renders every result-affecting field of the (normalised)
// query in a fixed order. Two valid queries describing the same
// computation produce the same canonical string, so it keys result
// caches together with a database content fingerprint: engine knobs are
// included because they may change the emission order a cached list
// replays, the mode parameters because they change the result sequence
// itself. Runtime-only options (Pool, Trace, TaskObserver) affect
// neither and are excluded.
func (q Query) Canonical() string {
	n := q.normalize()
	return fmt.Sprintf("fdq2|mode=%s|rank=%s|k=%d|tau=%g|ranktau=%g|sim=%s|idx=%t|jidx=%t|blk=%d|strat=%s|wrk=%d",
		n.Mode, n.Rank, n.K, n.Tau, n.RankTau, n.Sim,
		n.Options.UseIndex, n.Options.UseJoinIndex, n.Options.BlockSize, n.Options.Strategy,
		n.Options.Workers)
}
