#!/usr/bin/env bash
# Guards the metrics catalogue of docs/OBSERVABILITY.md: every metric
# name the code can register (the fd_* string literals in internal/obs,
# internal/service and cmd/fdserve, non-test sources) must appear in
# the catalogue table. A metric that ships without documentation is an
# operational trap — dashboards and alerts are written from the doc.
# Run from the repository root (CI does); exits non-zero listing any
# undocumented metric.
set -euo pipefail

doc="docs/OBSERVABILITY.md"
fail=0
emitted="$(grep -rhoE '"fd_[a-z0-9_]+"' \
  internal/obs internal/service cmd/fdserve \
  --include='*.go' --exclude='*_test.go' |
  tr -d '"' | sort -u)"

if [ -z "$emitted" ]; then
  echo "FAIL: found no fd_* metric names in the sources (pattern drift?)" >&2
  exit 1
fi

for name in $emitted; do
  if ! grep -q "\`$name\`" "$doc"; then
    echo "FAIL: metric $name is emitted but not documented in $doc" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "PASS: all $(wc -w <<<"$emitted") emitted metrics are documented in $doc"
