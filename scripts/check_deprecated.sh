#!/usr/bin/env bash
# Guards the deprecation contract of the Query API redesign: every
# released per-mode wrapper in the public package must carry a
# "Deprecated:" marker in its doc comment pointing callers at fd.Open.
# Run from the repository root (CI does); exits non-zero listing any
# wrapper whose marker went missing.
set -euo pipefail

# file:function pairs of the legacy wrappers kept for compatibility.
wrappers="
fd.go:FullDisjunction
fd.go:Stream
fd.go:NewCursor
ranked.go:StreamRanked
ranked.go:NewRankedCursor
ranked.go:TopK
ranked.go:Threshold
approx.go:ApproxFullDisjunction
approx.go:ApproxStream
approx.go:NewApproxCursor
approx.go:ApproxStreamRanked
approx.go:ApproxTopK
approx.go:ApproxThreshold
"

fail=0
for entry in $wrappers; do
  file="${entry%%:*}"
  fn="${entry##*:}"
  if ! grep -q "^func $fn(" "$file"; then
    echo "FAIL: wrapper $fn missing from $file (update scripts/check_deprecated.sh if it moved)" >&2
    fail=1
    continue
  fi
  # The doc comment is the contiguous comment block directly above the
  # declaration; look for the marker within it.
  if ! awk -v fn="$fn" '
      /^\/\// { doc = doc $0 "\n"; next }
      {
        if ($0 ~ "^func " fn "\\(") { print doc; exit }
        doc = ""
      }' "$file" | grep -q "Deprecated:"; then
    echo "FAIL: $file: $fn has no Deprecated: marker in its doc comment" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "PASS: all released wrappers carry Deprecated: markers"
