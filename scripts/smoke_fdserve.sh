#!/usr/bin/env bash
# Smoke-tests the fdserve HTTP service against fdcli: generate a chain
# workload with fdgen, count its full disjunction with fdcli, then load
# the same workload (same generator spec and seed, hence the same
# database) into a running fdserve, page one query to exhaustion, and
# compare the counts. Then repeat the query and check that /stats
# reports a cache hit and that the /metrics Prometheus exposition moved
# the query and cache-hit counters, and fetch the query's span tree
# from /queries/{id}/trace. Finally exercise persistence: register a
# database against -data, SIGTERM the server, restart it over the same
# directory, and assert the recovered database lists the same
# fingerprint and pages the same result count with zero
# re-registration — and that /metrics and the trace endpoint still
# answer after a kill -9 restart. Along the way a follow subscription
# streams the base results, observes an append's delta events live,
# and its final total must match a from-scratch query — before and
# after the kill -9 — while the append/cache-patch counters prove the
# incremental path ran. Uses only curl + grep/sed so it runs in
# minimal containers. Usage: smoke_fdserve.sh [bindir]
set -euo pipefail

bindir="${1:-./bin}"
addr="127.0.0.1:8931"
base="http://$addr"
wl="$(mktemp -d)"
server_pid=""
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$wl"' EXIT

# Reference count via fdgen + fdcli (header line excluded).
"$bindir/fdgen" -shape chain -n 4 -m 12 -domain 4 -nulls 0.1 -seed 7 -out "$wl" >/dev/null
cli_lines="$("$bindir/fdcli" "$wl"/R00.csv "$wl"/R01.csv "$wl"/R02.csv "$wl"/R03.csv | wc -l)"
cli_count="$((cli_lines - 1))"
echo "fdcli count: $cli_count"

"$bindir/fdserve" -addr "$addr" &
server_pid=$!
for _ in $(seq 1 50); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$base/healthz" >/dev/null

curl -fsS -X POST "$base/databases" -d \
  '{"name":"w","workload":{"kind":"chain","relations":4,"tuples":12,"domain":4,"null_rate":0.1,"seed":7}}' \
  >/dev/null

new_query() {
  curl -fsS -X POST "$base/queries" -d '{"database":"w","mode":"exact"}' |
    sed -n 's/.*"id":"\([^"]*\)".*/\1/p'
}

# counter_value <exposition> <series> prints the sample value of one
# Prometheus series (exact match on name + label set), or 0 if absent.
counter_value() {
  local v
  v="$(grep -F "$2 " <<<"$1" | sed -n 's/.* \([0-9][0-9]*\)$/\1/p')"
  echo "${v:-0}"
}

# Baseline /metrics scrape before any query has run.
metrics0="$(curl -fsS "$base/metrics")"
q0="$(counter_value "$metrics0" 'fd_queries_total{db="w",mode="exact"}')"
h0="$(counter_value "$metrics0" 'fd_cache_hits_total')"

page_to_exhaustion() {
  local qid="$1" total=0 page
  while :; do
    page="$(curl -fsS "$base/queries/$qid/next?k=7")"
    total="$((total + $(grep -o '"set":' <<<"$page" | wc -l)))"
    grep -q '"done":true' <<<"$page" && break
  done
  echo "$total"
}

qid="$(new_query)"
serve_count="$(page_to_exhaustion "$qid")"
echo "fdserve paged count: $serve_count"
if [ "$serve_count" != "$cli_count" ]; then
  echo "FAIL: fdserve paged $serve_count results, fdcli printed $cli_count" >&2
  exit 1
fi

# The repeated identical query must come from the result cache.
qid2="$(new_query)"
serve_count2="$(page_to_exhaustion "$qid2")"
if [ "$serve_count2" != "$cli_count" ]; then
  echo "FAIL: cached replay served $serve_count2 results, want $cli_count" >&2
  exit 1
fi
stats="$(curl -fsS "$base/stats")"
hits="$(sed -n 's/.*"cache_hits":\([0-9]*\).*/\1/p' <<<"$stats")"
if [ -z "$hits" ] || [ "$hits" -lt 1 ]; then
  echo "FAIL: no cache hit recorded in stats: $stats" >&2
  exit 1
fi
echo "cache hits: $hits"

# --- observability: /metrics counters moved, trace served ------------
metrics1="$(curl -fsS "$base/metrics")"
if ! grep -q '^# TYPE fd_queries_total counter$' <<<"$metrics1"; then
  echo "FAIL: /metrics exposition has no fd_queries_total TYPE line" >&2
  exit 1
fi
q1="$(counter_value "$metrics1" 'fd_queries_total{db="w",mode="exact"}')"
h1="$(counter_value "$metrics1" 'fd_cache_hits_total')"
if [ "$q1" -le "$q0" ]; then
  echo "FAIL: fd_queries_total{db=\"w\"} did not move ($q0 -> $q1)" >&2
  exit 1
fi
if [ "$h1" -le "$h0" ]; then
  echo "FAIL: fd_cache_hits_total did not move ($h0 -> $h1)" >&2
  exit 1
fi
echo "metrics: fd_queries_total $q0 -> $q1, fd_cache_hits_total $h0 -> $h1"

# The span tree of the drained (finished, history-retained) session.
trace="$(curl -fsS "$base/queries/$qid/trace")"
for span in '"name":"query"' '"name":"open"' '"name":"next"'; do
  if ! grep -q "$span" <<<"$trace"; then
    echo "FAIL: trace of $qid missing $span: $trace" >&2
    exit 1
  fi
done
echo "trace: span tree served for $qid"

# --- parallel execution over the wire (options.workers) --------------
# A workers:4 spec runs the parallel streaming executor behind the same
# paging surface; the paged count must match the sequential one.
pqid="$(curl -fsS -X POST "$base/queries" \
  -d '{"database":"w","mode":"exact","options":{"workers":4}}' |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
if [ -z "$pqid" ]; then
  echo "FAIL: workers:4 query was not accepted" >&2
  exit 1
fi
par_count="$(page_to_exhaustion "$pqid")"
echo "fdserve parallel (workers:4) paged count: $par_count"
if [ "$par_count" != "$cli_count" ]; then
  echo "FAIL: parallel query paged $par_count results, sequential printed $cli_count" >&2
  exit 1
fi

# --- introspection: POST /explain, progress polling, delay metric ----
# The plan for the same workers:4 body must name the parallel strategy
# with a task partition.
plan="$(curl -fsS -X POST "$base/explain" \
  -d '{"database":"w","mode":"exact","options":{"workers":4}}')"
if ! grep -q '"execution":"parallel"' <<<"$plan"; then
  echo "FAIL: workers:4 plan does not name the parallel strategy: $plan" >&2
  exit 1
fi
if ! grep -q '"label":"pass ' <<<"$plan"; then
  echo "FAIL: parallel plan lists no tasks: $plan" >&2
  exit 1
fi
echo "explain: parallel strategy planned for workers:4"

# Progress polled mid-page must be well-formed and monotone in
# results_emitted across pages, ending in phase "done".
iqid="$(curl -fsS -X POST "$base/queries" \
  -d '{"database":"w","mode":"exact","options":{"workers":4}}' |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
prev_emitted=-1
while :; do
  page="$(curl -fsS "$base/queries/$iqid/next?k=7")"
  prog="$(curl -fsS "$base/queries/$iqid/progress")"
  emitted="$(sed -n 's/.*"results_emitted":\([0-9]*\).*/\1/p' <<<"$prog")"
  if [ -z "$emitted" ]; then
    echo "FAIL: progress report has no results_emitted: $prog" >&2
    exit 1
  fi
  if [ "$emitted" -lt "$prev_emitted" ]; then
    echo "FAIL: results_emitted went backwards ($prev_emitted -> $emitted): $prog" >&2
    exit 1
  fi
  prev_emitted="$emitted"
  grep -q '"done":true' <<<"$page" && break
done
prog="$(curl -fsS "$base/queries/$iqid/progress")"
if ! grep -q '"phase":"done"' <<<"$prog"; then
  echo "FAIL: drained query not in phase done: $prog" >&2
  exit 1
fi
echo "progress: monotone results_emitted up to $prev_emitted, phase done"

# The per-result delay histogram of the served enumerations is in the
# exposition.
metrics_delay="$(curl -fsS "$base/metrics")"
if ! grep -q '^fd_result_delay_seconds_count{db="w",mode="exact"' <<<"$metrics_delay"; then
  echo "FAIL: /metrics has no fd_result_delay_seconds series for db w" >&2
  exit 1
fi
echo "metrics: fd_result_delay_seconds series present"

# --- approx-ranked over the wire (fd.Query JSON: mode/tau/rank/k) ----
curl -fsS -X POST "$base/databases" -d \
  '{"name":"d","workload":{"kind":"dirty","relations":3,"tuples":8,"domain":3,"error_rate":0.3,"seed":5}}' \
  >/dev/null
arqid="$(curl -fsS -X POST "$base/queries" \
  -d '{"database":"d","mode":"approx-ranked","tau":0.6,"rank":"fmax","k":6}' |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
if [ -z "$arqid" ]; then
  echo "FAIL: approx-ranked query was not accepted" >&2
  exit 1
fi
ar_total=0
while :; do
  page="$(curl -fsS "$base/queries/$arqid/next?k=2")"
  # The final page can be empty; "|| true" keeps the zero count from
  # tripping pipefail.
  ranks="$(grep -o '"rank":' <<<"$page" | wc -l || true)"
  sets="$(grep -o '"set":' <<<"$page" | wc -l || true)"
  if [ "$ranks" != "$sets" ]; then
    echo "FAIL: approx-ranked page carries $sets results but $ranks ranks: $page" >&2
    exit 1
  fi
  ar_total="$((ar_total + sets))"
  grep -q '"done":true' <<<"$page" && break
done
if [ "$ar_total" -lt 1 ] || [ "$ar_total" -gt 6 ]; then
  echo "FAIL: approx-ranked k=6 paged $ar_total results" >&2
  exit 1
fi
echo "approx-ranked paged count: $ar_total (every result ranked)"

# --- persistence: register with -data, SIGTERM, restart, recover -----
kill "$server_pid" && wait "$server_pid" 2>/dev/null || true
data="$wl/data"

"$bindir/fdserve" -addr "$addr" -data "$data" &
server_pid=$!
for _ in $(seq 1 50); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$base/healthz" >/dev/null

reg="$(curl -fsS -X POST "$base/databases" -d \
  '{"name":"p","workload":{"kind":"chain","relations":4,"tuples":12,"domain":4,"null_rate":0.1,"seed":7}}')"
fp1="$(sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p' <<<"$reg")"
if [ -z "$fp1" ]; then
  echo "FAIL: registration returned no fingerprint: $reg" >&2
  exit 1
fi
qid="$(curl -fsS -X POST "$base/queries" -d '{"database":"p","mode":"exact"}' |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
count1="$(page_to_exhaustion "$qid")"
echo "pre-restart: fingerprint $fp1, $count1 results"
if [ "$count1" != "$cli_count" ]; then
  echo "FAIL: durable server paged $count1 results, fdcli printed $cli_count" >&2
  exit 1
fi

kill -TERM "$server_pid" && wait "$server_pid" 2>/dev/null || true

"$bindir/fdserve" -addr "$addr" -data "$data" &
server_pid=$!
for _ in $(seq 1 50); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$base/healthz" >/dev/null

# Zero re-registration: the database must already be listed, with the
# pre-restart fingerprint.
listing="$(curl -fsS "$base/databases")"
fp2="$(sed -n 's/.*"name":"p"[^}]*"fingerprint":"\([0-9a-f]*\)".*/\1/p' <<<"$listing")"
if [ "$fp2" != "$fp1" ]; then
  echo "FAIL: recovered fingerprint '$fp2' != pre-restart '$fp1' (listing: $listing)" >&2
  exit 1
fi
qid="$(curl -fsS -X POST "$base/queries" -d '{"database":"p","mode":"exact"}' |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
count2="$(page_to_exhaustion "$qid")"
if [ "$count2" != "$count1" ]; then
  echo "FAIL: recovered database paged $count2 results, want $count1" >&2
  exit 1
fi
echo "post-restart: fingerprint $fp2, $count2 results (recovered, no re-registration)"

# --- crash consistency: kill -9 mid-append, restart, old or new ------
# Reference pass, on the running server: append one row to "p" and
# record the post-append fingerprint and paged count. Registration and
# append are deterministic, so a second directory reaches the same two
# states.
fp_pre="$fp1"
count_pre="$count1"

# --- live subscription: follow the query across the append -----------
# A follow query drains the base results, then streams each append's
# delta (retract/result events plus one "delta" summary per append).
# ?appends=1 ends the stream deterministically after one append.
fqid="$(curl -fsS -X POST "$base/queries" -d '{"database":"p","follow":true}' |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
if [ -z "$fqid" ]; then
  echo "FAIL: follow query was not accepted" >&2
  exit 1
fi
follow_out="$wl/follow.ndjson"
curl -fsSN "$base/queries/$fqid/follow?appends=1" >"$follow_out" &
follow_pid=$!
for _ in $(seq 1 50); do
  grep -q '"event":"live"' "$follow_out" 2>/dev/null && break
  sleep 0.2
done
if ! grep -q '"event":"live"' "$follow_out"; then
  echo "FAIL: follow stream never reached the live marker: $(cat "$follow_out" 2>/dev/null)" >&2
  exit 1
fi
base_streamed="$(grep -c '"event":"result"' "$follow_out" || true)"
if [ "$base_streamed" != "$count_pre" ]; then
  echo "FAIL: follow base drain streamed $base_streamed results, want $count_pre" >&2
  exit 1
fi
echo "follow: base drain streamed $base_streamed results, live"

app="$(curl -fsS -X POST "$base/databases/p/rows" -d \
  '{"relation":"R00","tuples":[{"label":"zz","values":["zz1",null]}]}')"
fp_post="$(sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p' <<<"$app")"
if [ -z "$fp_post" ] || [ "$fp_post" = "$fp_pre" ]; then
  echo "FAIL: append returned no new fingerprint: $app" >&2
  exit 1
fi
qid="$(curl -fsS -X POST "$base/queries" -d '{"database":"p","mode":"exact"}' |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
count_post="$(page_to_exhaustion "$qid")"
echo "crash reference: pre $fp_pre/$count_pre, post $fp_post/$count_post"

# The subscription must have observed the append: a "delta" summary,
# then the ?appends=1 "end" whose running total matches the full
# enumeration of the appended database.
wait "$follow_pid" 2>/dev/null || true
for ev in '"event":"delta"' '"event":"end"'; do
  if ! grep -q "$ev" "$follow_out"; then
    echo "FAIL: follow stream missing $ev event: $(cat "$follow_out")" >&2
    exit 1
  fi
done
followed_total="$(sed -n 's/.*"event":"end","total":\([0-9]*\).*/\1/p' "$follow_out")"
if [ "$followed_total" != "$count_post" ]; then
  echo "FAIL: follow stream ended at total $followed_total, full query paged $count_post" >&2
  exit 1
fi
echo "follow: delta observed, final total $followed_total matches the full query"

# The append ran the incremental-maintenance path: append and
# cache-patch counters moved (the cached pre-append result list was
# patched across the fingerprint roll, not invalidated).
metrics_app="$(curl -fsS "$base/metrics")"
ap="$(counter_value "$metrics_app" 'fd_appends_total{db="p"}')"
cp="$(counter_value "$metrics_app" 'fd_cache_patches_total')"
if [ "$ap" -lt 1 ]; then
  echo "FAIL: fd_appends_total{db=\"p\"} = $ap after an append, want >= 1" >&2
  exit 1
fi
if [ "$cp" -lt 1 ]; then
  echo "FAIL: fd_cache_patches_total = $cp after an append over a cached list, want >= 1" >&2
  exit 1
fi
echo "metrics: fd_appends_total{db=\"p\"}=$ap, fd_cache_patches_total=$cp"
kill -TERM "$server_pid" && wait "$server_pid" 2>/dev/null || true

# Crash pass: fresh directory, same registration, then SIGKILL the
# server with the same append in flight. No flushes, no goodbyes.
cdata="$wl/crashdata"
"$bindir/fdserve" -addr "$addr" -data "$cdata" &
server_pid=$!
for _ in $(seq 1 50); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$base/healthz" >/dev/null
curl -fsS -X POST "$base/databases" -d \
  '{"name":"p","workload":{"kind":"chain","relations":4,"tuples":12,"domain":4,"null_rate":0.1,"seed":7}}' \
  >/dev/null
curl -fsS -X POST "$base/databases/p/rows" -d \
  '{"relation":"R00","tuples":[{"label":"zz","values":["zz1",null]}]}' \
  >/dev/null 2>&1 &
append_pid=$!
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
wait "$append_pid" 2>/dev/null || true

"$bindir/fdserve" -addr "$addr" -data "$cdata" &
server_pid=$!
for _ in $(seq 1 50); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$base/healthz" >/dev/null

# The recovered database must be exactly the pre-append or the
# post-append state — matching fingerprint AND matching paged count —
# and nothing may have been quarantined by a clean crash.
listing="$(curl -fsS "$base/databases")"
fp3="$(sed -n 's/.*"name":"p"[^}]*"fingerprint":"\([0-9a-f]*\)".*/\1/p' <<<"$listing")"
case "$fp3" in
  "$fp_pre")  want_count="$count_pre"; state="pre-append" ;;
  "$fp_post") want_count="$count_post"; state="post-append" ;;
  *)
    echo "FAIL: post-crash fingerprint '$fp3' is neither pre '$fp_pre' nor post '$fp_post' (listing: $listing)" >&2
    exit 1 ;;
esac
qid="$(curl -fsS -X POST "$base/queries" -d '{"database":"p","mode":"exact"}' |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
count3="$(page_to_exhaustion "$qid")"
if [ "$count3" != "$want_count" ]; then
  echo "FAIL: post-crash ($state) paged $count3 results, want $want_count" >&2
  exit 1
fi
stats="$(curl -fsS "$base/stats")"
if grep -q '"quarantined_databases"' <<<"$stats"; then
  echo "FAIL: a clean kill -9 quarantined a database: $stats" >&2
  exit 1
fi
echo "post-crash: recovered the complete $state state ($fp3, $count3 results)"

# --- observability survives the kill -9 restart ----------------------
# The fresh process must serve a well-formed exposition whose query
# counter reflects the post-crash query, and the trace endpoint must
# serve that query's span tree.
metrics2="$(curl -fsS "$base/metrics")"
if ! grep -q '^# TYPE fd_queries_total counter$' <<<"$metrics2"; then
  echo "FAIL: post-crash /metrics exposition has no fd_queries_total TYPE line" >&2
  exit 1
fi
qp="$(counter_value "$metrics2" 'fd_queries_total{db="p",mode="exact"}')"
if [ "$qp" -lt 1 ]; then
  echo "FAIL: post-crash fd_queries_total{db=\"p\"} = $qp, want >= 1" >&2
  exit 1
fi
trace="$(curl -fsS "$base/queries/$qid/trace")"
for span in '"name":"query"' '"name":"open"' '"name":"next"'; do
  if ! grep -q "$span" <<<"$trace"; then
    echo "FAIL: post-crash trace of $qid missing $span: $trace" >&2
    exit 1
  fi
done
echo "post-crash observability: metrics (fd_queries_total{db=\"p\"}=$qp) and trace served"

# --- the followed total survives the kill -9 -------------------------
# Bring the recovered database to the post-append state (a no-op when
# the crash already persisted the append) and assert a from-scratch
# query matches the total the live subscription last reported.
if [ "$state" = "pre-append" ]; then
  curl -fsS -X POST "$base/databases/p/rows" -d \
    '{"relation":"R00","tuples":[{"label":"zz","values":["zz1",null]}]}' >/dev/null
fi
qid="$(curl -fsS -X POST "$base/queries" -d '{"database":"p","mode":"exact"}' |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
count4="$(page_to_exhaustion "$qid")"
if [ "$count4" != "$followed_total" ]; then
  echo "FAIL: post-crash full query paged $count4 results, followed total was $followed_total" >&2
  exit 1
fi
echo "post-crash: full query matches the followed total ($count4)"
echo "PASS"
