#!/usr/bin/env bash
# Smoke-tests the fdserve HTTP service against fdcli: generate a chain
# workload with fdgen, count its full disjunction with fdcli, then load
# the same workload (same generator spec and seed, hence the same
# database) into a running fdserve, page one query to exhaustion, and
# compare the counts. Then repeat the query and check that /stats
# reports a cache hit. Finally exercise persistence: register a
# database against -data, SIGTERM the server, restart it over the same
# directory, and assert the recovered database lists the same
# fingerprint and pages the same result count with zero
# re-registration. Uses only curl + grep/sed so it runs in minimal
# containers. Usage: smoke_fdserve.sh [bindir]
set -euo pipefail

bindir="${1:-./bin}"
addr="127.0.0.1:8931"
base="http://$addr"
wl="$(mktemp -d)"
server_pid=""
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$wl"' EXIT

# Reference count via fdgen + fdcli (header line excluded).
"$bindir/fdgen" -shape chain -n 4 -m 12 -domain 4 -nulls 0.1 -seed 7 -out "$wl" >/dev/null
cli_lines="$("$bindir/fdcli" "$wl"/R00.csv "$wl"/R01.csv "$wl"/R02.csv "$wl"/R03.csv | wc -l)"
cli_count="$((cli_lines - 1))"
echo "fdcli count: $cli_count"

"$bindir/fdserve" -addr "$addr" &
server_pid=$!
for _ in $(seq 1 50); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$base/healthz" >/dev/null

curl -fsS -X POST "$base/databases" -d \
  '{"name":"w","workload":{"kind":"chain","relations":4,"tuples":12,"domain":4,"null_rate":0.1,"seed":7}}' \
  >/dev/null

new_query() {
  curl -fsS -X POST "$base/queries" -d '{"database":"w","mode":"exact"}' |
    sed -n 's/.*"id":"\([^"]*\)".*/\1/p'
}

page_to_exhaustion() {
  local qid="$1" total=0 page
  while :; do
    page="$(curl -fsS "$base/queries/$qid/next?k=7")"
    total="$((total + $(grep -o '"set":' <<<"$page" | wc -l)))"
    grep -q '"done":true' <<<"$page" && break
  done
  echo "$total"
}

qid="$(new_query)"
serve_count="$(page_to_exhaustion "$qid")"
echo "fdserve paged count: $serve_count"
if [ "$serve_count" != "$cli_count" ]; then
  echo "FAIL: fdserve paged $serve_count results, fdcli printed $cli_count" >&2
  exit 1
fi

# The repeated identical query must come from the result cache.
qid2="$(new_query)"
serve_count2="$(page_to_exhaustion "$qid2")"
if [ "$serve_count2" != "$cli_count" ]; then
  echo "FAIL: cached replay served $serve_count2 results, want $cli_count" >&2
  exit 1
fi
stats="$(curl -fsS "$base/stats")"
hits="$(sed -n 's/.*"cache_hits":\([0-9]*\).*/\1/p' <<<"$stats")"
if [ -z "$hits" ] || [ "$hits" -lt 1 ]; then
  echo "FAIL: no cache hit recorded in stats: $stats" >&2
  exit 1
fi
echo "cache hits: $hits"

# --- parallel execution over the wire (options.workers) --------------
# A workers:4 spec runs the parallel streaming executor behind the same
# paging surface; the paged count must match the sequential one.
pqid="$(curl -fsS -X POST "$base/queries" \
  -d '{"database":"w","mode":"exact","options":{"workers":4}}' |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
if [ -z "$pqid" ]; then
  echo "FAIL: workers:4 query was not accepted" >&2
  exit 1
fi
par_count="$(page_to_exhaustion "$pqid")"
echo "fdserve parallel (workers:4) paged count: $par_count"
if [ "$par_count" != "$cli_count" ]; then
  echo "FAIL: parallel query paged $par_count results, sequential printed $cli_count" >&2
  exit 1
fi

# --- approx-ranked over the wire (fd.Query JSON: mode/tau/rank/k) ----
curl -fsS -X POST "$base/databases" -d \
  '{"name":"d","workload":{"kind":"dirty","relations":3,"tuples":8,"domain":3,"error_rate":0.3,"seed":5}}' \
  >/dev/null
arqid="$(curl -fsS -X POST "$base/queries" \
  -d '{"database":"d","mode":"approx-ranked","tau":0.6,"rank":"fmax","k":6}' |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
if [ -z "$arqid" ]; then
  echo "FAIL: approx-ranked query was not accepted" >&2
  exit 1
fi
ar_total=0
while :; do
  page="$(curl -fsS "$base/queries/$arqid/next?k=2")"
  # The final page can be empty; "|| true" keeps the zero count from
  # tripping pipefail.
  ranks="$(grep -o '"rank":' <<<"$page" | wc -l || true)"
  sets="$(grep -o '"set":' <<<"$page" | wc -l || true)"
  if [ "$ranks" != "$sets" ]; then
    echo "FAIL: approx-ranked page carries $sets results but $ranks ranks: $page" >&2
    exit 1
  fi
  ar_total="$((ar_total + sets))"
  grep -q '"done":true' <<<"$page" && break
done
if [ "$ar_total" -lt 1 ] || [ "$ar_total" -gt 6 ]; then
  echo "FAIL: approx-ranked k=6 paged $ar_total results" >&2
  exit 1
fi
echo "approx-ranked paged count: $ar_total (every result ranked)"

# --- persistence: register with -data, SIGTERM, restart, recover -----
kill "$server_pid" && wait "$server_pid" 2>/dev/null || true
data="$wl/data"

"$bindir/fdserve" -addr "$addr" -data "$data" &
server_pid=$!
for _ in $(seq 1 50); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$base/healthz" >/dev/null

reg="$(curl -fsS -X POST "$base/databases" -d \
  '{"name":"p","workload":{"kind":"chain","relations":4,"tuples":12,"domain":4,"null_rate":0.1,"seed":7}}')"
fp1="$(sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p' <<<"$reg")"
if [ -z "$fp1" ]; then
  echo "FAIL: registration returned no fingerprint: $reg" >&2
  exit 1
fi
qid="$(curl -fsS -X POST "$base/queries" -d '{"database":"p","mode":"exact"}' |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
count1="$(page_to_exhaustion "$qid")"
echo "pre-restart: fingerprint $fp1, $count1 results"
if [ "$count1" != "$cli_count" ]; then
  echo "FAIL: durable server paged $count1 results, fdcli printed $cli_count" >&2
  exit 1
fi

kill -TERM "$server_pid" && wait "$server_pid" 2>/dev/null || true

"$bindir/fdserve" -addr "$addr" -data "$data" &
server_pid=$!
for _ in $(seq 1 50); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$base/healthz" >/dev/null

# Zero re-registration: the database must already be listed, with the
# pre-restart fingerprint.
listing="$(curl -fsS "$base/databases")"
fp2="$(sed -n 's/.*"name":"p"[^}]*"fingerprint":"\([0-9a-f]*\)".*/\1/p' <<<"$listing")"
if [ "$fp2" != "$fp1" ]; then
  echo "FAIL: recovered fingerprint '$fp2' != pre-restart '$fp1' (listing: $listing)" >&2
  exit 1
fi
qid="$(curl -fsS -X POST "$base/queries" -d '{"database":"p","mode":"exact"}' |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
count2="$(page_to_exhaustion "$qid")"
if [ "$count2" != "$count1" ]; then
  echo "FAIL: recovered database paged $count2 results, want $count1" >&2
  exit 1
fi
echo "post-restart: fingerprint $fp2, $count2 results (recovered, no re-registration)"
echo "PASS"
