#!/usr/bin/env bash
# Fails if any non-test Go file still logs through the legacy log
# package (log.Printf / log.Println / log.Fatal*). Production code logs
# through log/slog with levels and key=value attributes (see
# docs/OBSERVABILITY.md). Tests may use whatever they like, and the
# runnable snippets under examples/ keep the idiomatic `log.Fatal(err)`
# of Go documentation.
set -euo pipefail

cd "$(dirname "$0")/.."

# --include keeps the sweep to Go sources; test files and examples are
# exempt.
hits="$(grep -rn --include='*.go' --exclude='*_test.go' \
  --exclude-dir=examples \
  -E '\blog\.(Printf|Println|Print|Fatalf|Fatalln|Fatal|Panicf|Panicln|Panic)\(' \
  . || true)"

if [ -n "$hits" ]; then
  echo "legacy log package calls in non-test code (use log/slog):" >&2
  echo "$hits" >&2
  exit 1
fi
echo "OK: no legacy log calls outside tests"
