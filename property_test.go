package fd_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	fd "repro"
	"repro/internal/naive"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

// randomConfig derives a small workload configuration from quick's
// random values.
func randomConfig(relations, tuples, domain uint8, nullRate float64, seed int64) workload.Config {
	nr := nullRate - float64(int(nullRate))
	if nr < 0 {
		nr = -nr
	}
	return workload.Config{
		Relations:         2 + int(relations%4),
		TuplesPerRelation: 1 + int(tuples%5),
		Domain:            1 + int(domain%4),
		NullRate:          nr * 0.5,
		Seed:              seed,
	}
}

// TestPropertyFDMatchesOracle drives FullDisjunction against the
// definitional oracle on quick-generated workload configurations across
// all generator shapes and execution options.
func TestPropertyFDMatchesOracle(t *testing.T) {
	shapes := []func(workload.Config) (*fd.Database, error){
		workload.Chain,
		workload.Star,
		func(c workload.Config) (*fd.Database, error) { return workload.Random(c, 0.5) },
	}
	f := func(relations, tuples, domain uint8, nullRate float64, seed int64, shapeSel uint8, useIndex, useJoinIndex bool, strat uint8) bool {
		cfg := randomConfig(relations, tuples, domain, nullRate, seed)
		gen := shapes[int(shapeSel)%len(shapes)]
		db, err := gen(cfg)
		if err != nil {
			return true // star needs ≥2 relations etc.; skip invalid configs
		}
		opts := fd.Options{
			UseIndex:     useIndex,
			UseJoinIndex: useJoinIndex,
			Strategy:     []fd.InitStrategy{fd.InitSingletons, fd.InitSeeded, fd.InitProjected}[int(strat)%3],
		}
		got, _, err := fd.FullDisjunction(db, opts)
		if err != nil {
			t.Logf("FullDisjunction error: %v", err)
			return false
		}
		want := naive.FullDisjunction(db)
		if len(got) != len(want) {
			t.Logf("size mismatch: got %d want %d (cfg %+v)", len(got), len(want), cfg)
			return false
		}
		gotKeys := make([]string, len(got))
		for i, s := range got {
			gotKeys[i] = s.Key()
		}
		wantKeys := make([]string, len(want))
		for i, s := range want {
			wantKeys[i] = s.Key()
		}
		sort.Strings(gotKeys)
		sort.Strings(wantKeys)
		return reflect.DeepEqual(gotKeys, wantKeys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStreamPrefixStable: for every k, stopping the stream at k
// yields k distinct members of the full full disjunction.
func TestPropertyStreamPrefixStable(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		db, err := workload.Chain(workload.Config{
			Relations: 4, TuplesPerRelation: 5, Domain: 3, NullRate: 0.2, Seed: seed})
		if err != nil {
			return true
		}
		full, _, err := fd.FullDisjunction(db, fd.Options{})
		if err != nil {
			return false
		}
		if len(full) == 0 {
			return true
		}
		k := 1 + int(kRaw)%len(full)
		keys := make(map[string]bool, len(full))
		for _, s := range full {
			keys[s.Key()] = true
		}
		var got []*fd.TupleSet
		if _, err := fd.Stream(db, fd.Options{}, func(s *fd.TupleSet) bool {
			got = append(got, s)
			return len(got) < k
		}); err != nil {
			return false
		}
		if len(got) != k {
			return false
		}
		seen := map[string]bool{}
		for _, s := range got {
			if !keys[s.Key()] || seen[s.Key()] {
				return false
			}
			seen[s.Key()] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRankedOrder: StreamRanked emits non-increasing ranks and
// exactly the full disjunction, for random importance assignments.
func TestPropertyRankedOrder(t *testing.T) {
	f := func(seed int64) bool {
		db, err := workload.Star(workload.Config{
			Relations: 4, TuplesPerRelation: 4, Domain: 3, NullRate: 0.1,
			ImpMax: 50, Seed: seed})
		if err != nil {
			return true
		}
		var ranks []float64
		count := 0
		if _, err := fd.StreamRanked(db, fd.FMax(), fd.Options{}, func(r fd.Ranked) bool {
			ranks = append(ranks, r.Rank)
			count++
			return true
		}); err != nil {
			return false
		}
		for i := 1; i < len(ranks); i++ {
			if ranks[i-1] < ranks[i]-1e-9 {
				return false
			}
		}
		want, _, err := fd.FullDisjunction(db, fd.Options{})
		if err != nil {
			return false
		}
		return count == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCSVRoundTrip: writing and re-reading any generated
// relation preserves every value, label, importance and probability.
func TestPropertyCSVRoundTrip(t *testing.T) {
	f := func(seed int64, dirty bool) bool {
		var db *fd.Database
		var err error
		if dirty {
			db, err = workload.DirtyChain(workload.DirtyConfig{
				Config:    workload.Config{Relations: 3, TuplesPerRelation: 6, Domain: 3, NullRate: 0.3, Seed: seed},
				ErrorRate: 0.4, MaxEdits: 2, MinProb: 0.3,
			})
		} else {
			db, err = workload.Chain(workload.Config{
				Relations: 3, TuplesPerRelation: 6, Domain: 3, NullRate: 0.3, ImpMax: 9, Seed: seed})
		}
		if err != nil {
			return true
		}
		for r := 0; r < db.NumRelations(); r++ {
			rel := db.Relation(r)
			var buf bytes.Buffer
			if err := fd.WriteCSV(rel, &buf); err != nil {
				return false
			}
			back, err := fd.ReadCSV(rel.Name(), &buf)
			if err != nil {
				return false
			}
			if back.Len() != rel.Len() || !back.Schema().Equal(rel.Schema()) {
				return false
			}
			for i := 0; i < rel.Len(); i++ {
				a, b := rel.Tuple(i), back.Tuple(i)
				if a.Label != b.Label || a.Imp != b.Imp || a.Prob != b.Prob {
					return false
				}
				for p := range a.Values {
					if a.Values[p] != b.Values[p] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPaddedSubsumptionFree: the padded renderings of a full
// disjunction never strictly subsume one another — the "no redundancy"
// condition in the classical [2] reading of the operator.
func TestPropertyPaddedSubsumptionFree(t *testing.T) {
	f := func(seed int64) bool {
		db, err := workload.Chain(workload.Config{
			Relations: 3, TuplesPerRelation: 5, Domain: 3, NullRate: 0.2, Seed: seed})
		if err != nil {
			return true
		}
		sets, _, err := fd.FullDisjunction(db, fd.Options{})
		if err != nil {
			return false
		}
		_, rows := fd.PadAll(db, sets)
		for i := range rows {
			for j := range rows {
				if i == j {
					continue
				}
				// Strict subsumption between distinct padded rows would
				// contradict maximality of the underlying tuple sets
				// (equal rows may occur for duplicate source tuples).
				if rows[i].Subsumes(rows[j]) && !rows[j].Subsumes(rows[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyApproxContainsExact: with unit probabilities, every exact
// full-disjunction answer is covered by an approximate answer at any
// τ ∈ (0,1] under Amin+Levenshtein (similarity 1 on exact matches).
func TestPropertyApproxContainsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 15; trial++ {
		db, err := workload.Chain(workload.Config{
			Relations: 3, TuplesPerRelation: 4, Domain: 3, NullRate: 0.2,
			Seed: rng.Int63()})
		if err != nil {
			t.Fatal(err)
		}
		tau := 0.05 + rng.Float64()*0.9
		exact, _, err := fd.FullDisjunction(db, fd.Options{})
		if err != nil {
			t.Fatal(err)
		}
		approxSets, _, err := fd.ApproxFullDisjunction(db, fd.Amin(fd.LevenshteinSim()), tau)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range exact {
			covered := false
			for _, a := range approxSets {
				if a.ContainsAll(e) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("trial %d τ=%v: exact answer %s not covered by AFD",
					trial, tau, fd.Format(db, e))
			}
		}
	}
}

// TestPropertyStatsConsistency: iterations equal results per seed
// enumeration (Example 4.1's observation), across random workloads.
func TestPropertyStatsConsistency(t *testing.T) {
	f := func(seed int64, seedRel uint8) bool {
		db, err := workload.Random(workload.Config{
			Relations: 4, TuplesPerRelation: 4, Domain: 3, NullRate: 0.2, Seed: seed}, 0.4)
		if err != nil {
			return true
		}
		i := int(seedRel) % db.NumRelations()
		sets, stats, err := fd.FDi(db, i, fd.Options{})
		if err != nil {
			return false
		}
		return stats.Iterations == len(sets) && stats.MaxResident <= maxInt(len(sets), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestPropertyKeyInjective: distinct tuple sets have distinct keys;
// clones share keys.
func TestPropertyKeyInjective(t *testing.T) {
	db, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 6, Domain: 3, NullRate: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	u := tupleset.NewUniverse(db)
	all := naive.EnumerateConnected(u, func(s *tupleset.Set) bool { return u.JCC(s) })
	seen := make(map[string]*tupleset.Set, len(all))
	for _, s := range all {
		if prev, ok := seen[s.Key()]; ok && !prev.Equal(s) {
			t.Fatalf("key collision: %s vs %s", prev.Format(db), s.Format(db))
		}
		seen[s.Key()] = s
		if s.Clone().Key() != s.Key() {
			t.Fatal("clone changed key")
		}
	}
	if len(seen) != len(all) {
		t.Fatalf("%d keys for %d sets", len(seen), len(all))
	}
}

// TestPropertySignatureOracles: the signature-based predicates —
// ConsistentWith (binding probe), UnionJCC (binding-vector merge +
// bitmask adjacency) and MaximalSubsetWith (bitset component walk) —
// agree with the retained pairwise oracles on randomized chain, star
// and clique databases, across set states the enumerator produces:
// freshly built (valid signature), shrunk or member-replaced (stale,
// rebuilt lazily) and internally inconsistent (conflicted, answered by
// the pairwise fallback).
func TestPropertySignatureOracles(t *testing.T) {
	shapes := map[string]func(workload.Config) (*fd.Database, error){
		"chain":  workload.Chain,
		"star":   workload.Star,
		"clique": workload.Clique,
	}
	for name, gen := range shapes {
		for seed := int64(1); seed <= 5; seed++ {
			db, err := gen(workload.Config{
				Relations: 4, TuplesPerRelation: 5, Domain: 3, NullRate: 0.25, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			u := tupleset.NewUniverse(db)
			rng := rand.New(rand.NewSource(seed * 977))
			var refs []fd.Ref
			db.ForEachRef(func(r fd.Ref) bool { refs = append(refs, r); return true })
			randRef := func() fd.Ref { return refs[rng.Intn(len(refs))] }

			var sets []*fd.TupleSet
			for i := 0; i < 12; i++ {
				// (a) greedy JC extension from a random singleton —
				// valid signatures, the enumerator's steady state.
				s := u.Singleton(randRef())
				for tries := 0; tries < 8; tries++ {
					if ref := randRef(); u.JCCWithTuple(s, ref) {
						s.Add(ref)
					}
				}
				sets = append(sets, s)
				// (b) arbitrary member combinations — frequently
				// inconsistent, exercising the conflicted fallback.
				a := u.NewSet()
				for k := 0; k <= rng.Intn(3); k++ {
					a.Add(randRef())
				}
				if !a.Empty() {
					sets = append(sets, a)
				}
				// (c) shrunk and member-replaced copies — stale
				// signatures rebuilt lazily.
				c := s.Clone()
				c.Remove(rng.Intn(db.NumRelations()))
				if !c.Empty() {
					sets = append(sets, c)
				}
				d := s.Clone()
				d.Add(randRef()) // may replace an existing member
				sets = append(sets, d)
			}

			for _, s := range sets {
				for trial := 0; trial < 12; trial++ {
					ref := randRef()
					if got, want := u.ConsistentWith(s, ref), u.OracleConsistentWith(s, ref); got != want {
						t.Fatalf("%s seed %d: ConsistentWith(%s, %v) = %v, oracle %v",
							name, seed, s.Format(db), ref, got, want)
					}
					got := u.MaximalSubsetWith(s, ref)
					want := u.OracleMaximalSubsetWith(s, ref)
					if !got.Equal(want) {
						t.Fatalf("%s seed %d: MaximalSubsetWith(%s, %v) = %s, oracle %s",
							name, seed, s.Format(db), ref, got.Format(db), want.Format(db))
					}
				}
			}
			for i := range sets {
				for j := range sets {
					a, b := sets[i], sets[j]
					if a.Empty() || b.Empty() {
						continue
					}
					if got, want := u.UnionJCC(a, b), u.OracleUnionJCC(a, b); got != want {
						t.Fatalf("%s seed %d: UnionJCC(%s, %s) = %v, oracle %v",
							name, seed, a.Format(db), b.Format(db), got, want)
					}
				}
			}
		}
	}
}

// TestPropertySignatureCountersMove: an indexed enumeration actually
// runs on the signature fast path (hits accrue) and the lazily built
// discovery candidates account for the rebuilds.
func TestPropertySignatureCountersMove(t *testing.T) {
	db, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 8, Domain: 3, NullRate: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := fd.FullDisjunction(db, fd.Options{UseIndex: true, UseJoinIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SigHits == 0 {
		t.Error("SigHits = 0; the signature fast path never ran")
	}
	if stats.SigRebuilds == 0 {
		t.Error("SigRebuilds = 0; lazily built candidates were never rebuilt")
	}
}

// TestPropertyJoinIndexEquivalence: the candidate-only iteration backed
// by the dictionary-code posting index produces exactly the same full
// disjunction as the full sweep, for every initialisation strategy and
// workload shape, while visiting strictly fewer tuples on selective
// workloads.
func TestPropertyJoinIndexEquivalence(t *testing.T) {
	shapes := map[string]func(workload.Config) (*fd.Database, error){
		"chain":  workload.Chain,
		"star":   workload.Star,
		"clique": workload.Clique,
		"cycle":  workload.Cycle,
	}
	var skippedSomewhere bool
	for name, gen := range shapes {
		for seed := int64(1); seed <= 10; seed++ {
			db, err := gen(workload.Config{
				Relations: 4, TuplesPerRelation: 6, Domain: 4, NullRate: 0.2, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			for _, strat := range []fd.InitStrategy{fd.InitSingletons, fd.InitSeeded, fd.InitProjected} {
				sweep, _, err := fd.FullDisjunction(db, fd.Options{Strategy: strat})
				if err != nil {
					t.Fatal(err)
				}
				indexed, stats, err := fd.FullDisjunction(db, fd.Options{Strategy: strat, UseJoinIndex: true})
				if err != nil {
					t.Fatal(err)
				}
				want := make(map[string]bool, len(sweep))
				for _, s := range sweep {
					want[s.Key()] = true
				}
				if len(indexed) != len(sweep) {
					t.Fatalf("%s seed %d %v: %d results with join index, %d without",
						name, seed, strat, len(indexed), len(sweep))
				}
				for _, s := range indexed {
					if !want[s.Key()] {
						t.Fatalf("%s seed %d %v: join index produced a result the sweep did not: %s",
							name, seed, strat, s.Format(db))
					}
				}
				if stats.TuplesSkipped > 0 {
					skippedSomewhere = true
				}
			}
		}
	}
	if !skippedSomewhere {
		t.Error("candidate iteration never skipped a tuple; the index is not being consulted")
	}
}
