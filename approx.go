package fd

import (
	"context"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/rank"
	"repro/internal/tupleset"
)

// legacyApproxOptions reproduces the engine configuration the approx
// wrappers always ran with before Options were plumbed through the
// approximate family: hash-indexed Complete stores, no join index,
// tuple-at-a-time scans.
func legacyApproxOptions() core.Options { return core.Options{UseIndex: true} }

// Sim supplies pairwise tuple similarities in [0,1] for approximate
// joins (Section 6).
type Sim = approx.Sim

// ApproxJoin is an acceptable approximate join function A: A(T)=0 for
// disconnected T and A is non-increasing on connected supersets.
type ApproxJoin = approx.Join

// ExactSim returns the degenerate similarity: 1 when two tuples are
// join consistent, 0 otherwise. With it, approximate full disjunctions
// collapse to exact ones.
func ExactSim() Sim { return approx.ExactSim{} }

// LevenshteinSim scores tuple pairs by the worst normalised edit
// similarity over shared attributes — the misspelling model motivating
// Section 6. Nulls contribute 0.
func LevenshteinSim() Sim { return approx.LevenshteinSim{} }

// TableSim looks up similarities by tuple-label pair (either order),
// falling back to ExactSim for unlisted pairs. It reconstructs
// annotated examples such as the paper's Fig 4.
func TableSim(entries map[[2]string]float64) Sim { return approx.NewSimTable(entries) }

// Amin builds the paper's Amin approximate join function: the minimum
// over member probabilities and connected-pair similarities. Amin is
// acceptable and efficiently computable (Proposition 6.5).
func Amin(s Sim) ApproxJoin { return &approx.Amin{S: s} }

// Aprod builds the paper's Aprod: the product of connected-pair
// similarities (1 for singletons). Acceptable, but its maximal-subset
// step is not known to be polynomial; this implementation falls back to
// exhaustive search over candidate members (exponential only in the
// number of relations).
func Aprod(s Sim) ApproxJoin { return &approx.Aprod{S: s} }

// ApproxFullDisjunction computes AFD(R, A, τ): the maximal tuple sets T
// with A(T) ≥ τ (Definition 6.2), in incremental polynomial time for
// acceptable, efficiently computable A (Theorem 6.6).
//
// Deprecated: use Open with Query{Mode: ModeApprox, Tau: tau,
// Sim: "<name>"} and drain the Results cursor. ApproxFullDisjunction
// remains for join functions a Query cannot name (Aprod, TableSim).
func ApproxFullDisjunction(db *Database, a ApproxJoin, tau float64) ([]*TupleSet, Stats, error) {
	return approx.FullDisjunction(db, a, tau, legacyApproxOptions())
}

// ApproxStream computes AFD(R, A, τ) incrementally; return false from
// yield to stop early.
//
// Deprecated: use Open with Query{Mode: ModeApprox, Tau: tau,
// Sim: "<name>"} and pull from the Results cursor. ApproxStream
// remains for join functions a Query cannot name (Aprod, TableSim).
func ApproxStream(db *Database, a ApproxJoin, tau float64, yield func(*TupleSet) bool) (Stats, error) {
	return approx.Stream(db, a, tau, legacyApproxOptions(), yield)
}

// ApproxCursor is the pull-based form of ApproxStream: a suspended
// enumeration of AFD(R, A, τ) producing one result per Next call, with
// explicit state and no goroutine.
type ApproxCursor = approx.Cursor

// NewApproxCursor prepares a pull-based enumeration of AFD(R, A, τ); no
// work happens until the first Next call.
//
// Deprecated: use Open with Query{Mode: ModeApprox, Tau: tau,
// Sim: "<name>"}; the Results cursor it returns adds context
// cancellation and engine Options.
func NewApproxCursor(db *Database, a ApproxJoin, tau float64) (*ApproxCursor, error) {
	return approx.NewCursor(context.Background(), db, a, tau, legacyApproxOptions())
}

// ApproxScore evaluates A(T) for a tuple set of db.
func ApproxScore(db *Database, a ApproxJoin, t *TupleSet) float64 {
	return a.Score(tupleset.NewUniverse(db), t)
}

// ApproxStreamRanked combines Sections 5 and 6 (the adaptation the
// paper sketches at the end of Section 6): the members of AFD(R, A, τ)
// stream in non-increasing rank order under a monotonically
// c-determined ranking function.
//
// Deprecated: use Open with Query{Mode: ModeApproxRanked, Tau: tau,
// Rank: "<name>", Sim: "<name>"} and pull from the Results cursor.
func ApproxStreamRanked(db *Database, a ApproxJoin, tau float64, f RankFunc,
	yield func(Ranked) bool) (Stats, error) {
	return rank.ApproxStreamRanked(db, a, tau, f, legacyApproxOptions(), yield)
}

// ApproxTopK returns the k highest-ranking members of the
// (A,τ)-approximate full disjunction, in rank order.
//
// Deprecated: use Open with Query{Mode: ModeApproxRanked, Tau: tau,
// Rank: "<name>", K: k} and drain the Results cursor.
func ApproxTopK(db *Database, a ApproxJoin, tau float64, f RankFunc, k int) ([]Ranked, Stats, error) {
	return rank.ApproxTopK(db, a, tau, f, k, legacyApproxOptions())
}

// ApproxThreshold returns every member of AFD(R, A, τ) ranking at least
// rankTau, in rank order.
//
// Deprecated: use Open with Query{Mode: ModeApproxRanked, Tau: tau,
// Rank: "<name>", RankTau: rankTau} and drain the Results cursor.
func ApproxThreshold(db *Database, a ApproxJoin, tau, rankTau float64, f RankFunc) ([]Ranked, Stats, error) {
	return rank.ApproxThreshold(db, a, tau, rankTau, f, legacyApproxOptions())
}
