package fd_test

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	fd "repro"
	"repro/internal/workload"
)

// drainKeys drains fd.Open(q) and returns the result-key multiset plus
// the cursor's final stats.
func drainKeys(t *testing.T, db *fd.Database, q fd.Query) (map[string]int, fd.Stats) {
	t.Helper()
	rs, err := fd.Open(context.Background(), db, q)
	if err != nil {
		t.Fatalf("Open(%+v): %v", q, err)
	}
	defer rs.Close()
	keys := make(map[string]int)
	n := 0
	for r, ok := rs.Next(); ok; r, ok = rs.Next() {
		keys[r.Set.Key()]++
		n++
	}
	if err := rs.Err(); err != nil {
		t.Fatalf("drain(%+v): %v", q, err)
	}
	stats := rs.Stats()
	if stats.Emitted != n {
		t.Fatalf("Workers=%d: Emitted=%d but %d results delivered", q.Options.Workers, stats.Emitted, n)
	}
	return keys, stats
}

func sameMultiset(t *testing.T, label string, got, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d distinct results, want %d", label, len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("%s: result %s has multiplicity %d, want %d", label, k, got[k], n)
		}
	}
}

// TestPropertyParallelMatchesSequential is the tentpole property:
// across randomized chain/star/clique workloads, exact and approx
// modes, and Workers ∈ {1, 2, GOMAXPROCS}, the parallel streaming
// cursor delivers exactly the sequential cursor's result multiset, and
// its merged counters stay consistent with the sequential run (the
// pass partition does identical work; only block splits may duplicate
// discovery). Run under -race this also exercises the merge path for
// data races.
func TestPropertyParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	shapes := []struct {
		name string
		gen  func(workload.Config) (*fd.Database, error)
	}{
		{"chain", workload.Chain},
		{"star", workload.Star},
		{"clique", workload.Clique},
	}
	workerCounts := []int{2, runtime.GOMAXPROCS(0)}
	for iter := 0; iter < 4; iter++ {
		for _, shape := range shapes {
			cfg := workload.Config{
				Relations:         3 + rng.Intn(2),
				TuplesPerRelation: 5 + rng.Intn(6),
				Domain:            3 + rng.Intn(2),
				NullRate:          0.1,
				ImpMax:            10,
				Seed:              rng.Int63(),
			}
			if shape.name == "clique" {
				cfg.TuplesPerRelation = 3 + rng.Intn(3)
			}
			db, err := shape.gen(cfg)
			if err != nil {
				t.Fatal(err)
			}
			exact := fd.Query{Mode: fd.ModeExact, Options: fd.QueryOptions{
				UseIndex:     rng.Intn(2) == 0,
				UseJoinIndex: rng.Intn(2) == 0,
				Workers:      1,
			}}
			wantKeys, wantStats := drainKeys(t, db, exact)
			for _, w := range workerCounts {
				q := exact
				q.Options.Workers = w
				gotKeys, gotStats := drainKeys(t, db, q)
				label := shape.name + "/exact"
				sameMultiset(t, label, gotKeys, wantKeys)
				if gotStats.JCCChecks < wantStats.JCCChecks || gotStats.JCCChecks > 4*wantStats.JCCChecks {
					t.Fatalf("%s Workers=%d: JCCChecks=%d outside [%d, %d]",
						label, w, gotStats.JCCChecks, wantStats.JCCChecks, 4*wantStats.JCCChecks)
				}
			}
		}

		// Approx: dirty chain, pass-level partition.
		dcfg := workload.DirtyConfig{
			Config:    workload.Config{Relations: 3, TuplesPerRelation: 6 + rng.Intn(4), Domain: 3, Seed: rng.Int63()},
			ErrorRate: 0.3, MaxEdits: 2, MinProb: 0.5,
		}
		db, err := workload.DirtyChain(dcfg)
		if err != nil {
			t.Fatal(err)
		}
		approxQ := fd.Query{Mode: fd.ModeApprox, Tau: 0.6 + 0.1*float64(rng.Intn(3)),
			Options: fd.QueryOptions{UseIndex: true, Workers: 1}}
		wantKeys, wantStats := drainKeys(t, db, approxQ)
		for _, w := range workerCounts {
			q := approxQ
			q.Options.Workers = w
			gotKeys, gotStats := drainKeys(t, db, q)
			sameMultiset(t, "approx", gotKeys, wantKeys)
			if gotStats.JCCChecks != wantStats.JCCChecks {
				t.Fatalf("approx Workers=%d: JCCChecks=%d, want %d (pass partition does identical work)",
					w, gotStats.JCCChecks, wantStats.JCCChecks)
			}
		}
	}

	// One larger chain forces intra-pass block splits (workers > n and
	// ≥ 2×minTaskSeeds tuples per relation): the multiset must survive
	// the finer partition, and the duplicated discovery work stays
	// bounded by the block factor.
	db, err := workload.Chain(workload.Config{
		Relations: 3, TuplesPerRelation: 24, Domain: 4, NullRate: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	seq := fd.Query{Mode: fd.ModeExact, Options: fd.QueryOptions{UseIndex: true, Workers: 1}}
	wantKeys, wantStats := drainKeys(t, db, seq)
	par := seq
	par.Options.Workers = 8
	gotKeys, gotStats := drainKeys(t, db, par)
	sameMultiset(t, "chain/block-split", gotKeys, wantKeys)
	if gotStats.JCCChecks < wantStats.JCCChecks || gotStats.JCCChecks > 4*wantStats.JCCChecks {
		t.Fatalf("block-split: JCCChecks=%d outside [%d, %d]",
			gotStats.JCCChecks, wantStats.JCCChecks, 4*wantStats.JCCChecks)
	}
}

// TestParallelOpenCloseAndCancelLeak is the acceptance criterion for
// goroutine hygiene: a parallel cursor abandoned early by Close, and
// one cancelled mid-stream, both return every worker goroutine to the
// runtime.
func TestParallelOpenCloseAndCancelLeak(t *testing.T) {
	chainDB, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 24, Domain: 4, NullRate: 0.1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	dirty := dirtyDB(t)
	baseline := runtime.NumGoroutine()

	// Early Close, exact and approx.
	for _, q := range []struct {
		db   *fd.Database
		spec fd.Query
	}{
		{chainDB, fd.Query{Mode: fd.ModeExact, Options: fd.QueryOptions{UseIndex: true, Workers: 4}}},
		{dirty, fd.Query{Mode: fd.ModeApprox, Tau: 0.6, Options: fd.QueryOptions{UseIndex: true, Workers: 4}}},
	} {
		rs, err := fd.Open(context.Background(), q.db, q.spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := rs.Next(); !ok {
			t.Fatalf("mode %s: no first result", q.spec.Mode)
		}
		rs.Close()
		if err := rs.Err(); err != nil {
			t.Fatalf("mode %s: voluntary Close set Err: %v", q.spec.Mode, err)
		}
	}

	// Cancellation mid-stream.
	ctx, cancel := context.WithCancel(context.Background())
	rs, err := fd.Open(ctx, chainDB, fd.Query{Mode: fd.ModeExact,
		Options: fd.QueryOptions{UseIndex: true, Workers: 4}})
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if _, ok := rs.Next(); !ok {
		t.Fatal("no first result")
	}
	cancel()
	if _, ok := rs.Next(); ok {
		t.Fatal("Next yielded after cancellation")
	}
	if err := rs.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	rs.Close()

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelKBound checks the K bound composes with the parallel
// cursor: exactly K results, then the pool is torn down.
func TestParallelKBound(t *testing.T) {
	db, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 16, Domain: 4, NullRate: 0.1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	got, _ := drainKeys(t, db, fd.Query{Mode: fd.ModeExact, K: 5,
		Options: fd.QueryOptions{UseIndex: true, Workers: 4}})
	total := 0
	for _, n := range got {
		total += n
	}
	if total != 5 {
		t.Fatalf("K=5 delivered %d results", total)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
