package fd_test

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	fd "repro"
	"repro/internal/workload"
)

// buildTourist constructs Table 1 through the public API only.
func buildTourist(t *testing.T) *fd.Database {
	t.Helper()
	climates := fd.MustRelation("Climates", fd.MustSchema("Country", "Climate"))
	climates.MustAppend("c1", map[fd.Attribute]fd.Value{"Country": fd.V("Canada"), "Climate": fd.V("diverse")})
	climates.MustAppend("c2", map[fd.Attribute]fd.Value{"Country": fd.V("UK"), "Climate": fd.V("temperate")})
	climates.MustAppend("c3", map[fd.Attribute]fd.Value{"Country": fd.V("Bahamas"), "Climate": fd.V("tropical")})
	acc := fd.MustRelation("Accommodations", fd.MustSchema("Country", "City", "Hotel", "Stars"))
	acc.MustAppend("a1", map[fd.Attribute]fd.Value{"Country": fd.V("Canada"), "City": fd.V("Toronto"), "Hotel": fd.V("Plaza"), "Stars": fd.V("4")})
	acc.MustAppend("a2", map[fd.Attribute]fd.Value{"Country": fd.V("Canada"), "City": fd.V("London"), "Hotel": fd.V("Ramada"), "Stars": fd.V("3")})
	acc.MustAppend("a3", map[fd.Attribute]fd.Value{"Country": fd.V("Bahamas"), "City": fd.V("Nassau"), "Hotel": fd.V("Hilton")})
	sites := fd.MustRelation("Sites", fd.MustSchema("Country", "City", "Site"))
	sites.MustAppend("s1", map[fd.Attribute]fd.Value{"Country": fd.V("Canada"), "City": fd.V("London"), "Site": fd.V("Air Show")})
	sites.MustAppend("s2", map[fd.Attribute]fd.Value{"Country": fd.V("Canada"), "Site": fd.V("Mount Logan")})
	sites.MustAppend("s3", map[fd.Attribute]fd.Value{"Country": fd.V("UK"), "City": fd.V("London"), "Site": fd.V("Buckingham")})
	sites.MustAppend("s4", map[fd.Attribute]fd.Value{"Country": fd.V("UK"), "City": fd.V("London"), "Site": fd.V("Hyde Park")})
	db, err := fd.NewDatabase(climates, acc, sites)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIQuickstart(t *testing.T) {
	db := buildTourist(t)
	results, stats, err := fd.FullDisjunction(db, fd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(results))
	for i, s := range results {
		got[i] = fd.Format(db, s)
	}
	sort.Strings(got)
	want := workload.Table2()
	sort.Strings(want)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("FD = %v, want %v", got, want)
	}
	if stats.Emitted != 6 {
		t.Errorf("stats.Emitted = %d", stats.Emitted)
	}
}

func TestPublicAPIPadding(t *testing.T) {
	db := buildTourist(t)
	results, _, err := fd.FullDisjunction(db, fd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	attrs, rows := fd.PadAll(db, results)
	if len(attrs) != 6 {
		t.Fatalf("attribute universe = %v", attrs)
	}
	if len(rows) != len(results) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Single-set padding agrees with PadAll.
	p := fd.Pad(db, results[0])
	if p.Key() != rows[0].Key() {
		t.Error("Pad and PadAll disagree")
	}
}

func TestPublicAPITopKAndThreshold(t *testing.T) {
	db := buildTourist(t)
	// Assign importances through the public Tuple type.
	imp := map[string]float64{"c1": 1, "c2": 2, "c3": 3, "a1": 4, "a2": 3, "a3": 1}
	for r := 0; r < db.NumRelations(); r++ {
		rel := db.Relation(r)
		for i := 0; i < rel.Len(); i++ {
			if v, ok := imp[rel.Tuple(i).Label]; ok {
				rel.MutateTuple(i, func(t *fd.Tuple) { t.Imp = v })
			}
		}
	}
	top, _, err := fd.TopK(db, fd.FMax(), 2, fd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || fd.Format(db, top[0].Set) != "{c1, a1}" {
		t.Errorf("top-2 = %v", top)
	}
	thr, _, err := fd.Threshold(db, fd.FMax(), 4, fd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(thr) != 1 {
		t.Errorf("threshold 4 returned %d results", len(thr))
	}
	// Ranking functions exposed by the facade.
	for _, f := range []fd.RankFunc{fd.FMax(), fd.PairSum(), fd.PaperTriple()} {
		if f.C() < 1 {
			t.Errorf("%s should be c-determined", f.Name())
		}
	}
	if fd.FSum().C() != 0 {
		t.Error("FSum must not be c-determined")
	}
}

func TestPublicAPIApprox(t *testing.T) {
	db, sims := workload.TouristApprox()
	results, _, err := fd.ApproxFullDisjunction(db, fd.Amin(fd.TableSim(sims)), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("approximate FD empty")
	}
	// The misspelled c1 re-joins a2/s1 under the table similarities.
	found := false
	for _, s := range results {
		if fd.Format(db, s) == "{c1, a2, s1}" {
			found = true
		}
	}
	if !found {
		var names []string
		for _, s := range results {
			names = append(names, fd.Format(db, s))
		}
		t.Errorf("expected {c1, a2, s1} among approximate results: %v", names)
	}
	// Score via the facade.
	if got := fd.ApproxScore(db, fd.Amin(fd.TableSim(sims)), results[0]); got < 0.4 {
		t.Errorf("reported result below threshold: %v", got)
	}
}

func TestPublicAPIStreamEarlyStop(t *testing.T) {
	db := buildTourist(t)
	count := 0
	if _, err := fd.Stream(db, fd.Options{}, func(*fd.TupleSet) bool {
		count++
		return count < 2
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("streamed %d", count)
	}
	if _, err := fd.ApproxStream(db, fd.Amin(fd.ExactSim()), 0.5, func(*fd.TupleSet) bool {
		return false
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICSVRoundTrip(t *testing.T) {
	db := buildTourist(t)
	var buf bytes.Buffer
	if err := fd.WriteCSV(db.Relation(0), &buf); err != nil {
		t.Fatal(err)
	}
	back, err := fd.ReadCSV("Climates", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Errorf("round trip lost tuples: %d", back.Len())
	}
}

func TestPublicAPIFDi(t *testing.T) {
	db := buildTourist(t)
	perSeed, _, err := fd.FDi(db, 1, fd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// FD_Accommodations: results containing a hotel tuple.
	if len(perSeed) != 3 {
		t.Errorf("FD_1 has %d results, want 3", len(perSeed))
	}
}
