package fd_test

import (
	"context"
	"testing"

	fd "repro"
	"repro/internal/workload"
)

// openDrain pulls an Open cursor dry and returns the sequence plus
// final stats.
func openDrain(t *testing.T, db *fd.Database, q fd.Query) ([]fd.Result, fd.Stats) {
	t.Helper()
	rs, err := fd.Open(context.Background(), db, q)
	if err != nil {
		t.Fatalf("Open(%+v): %v", q, err)
	}
	defer rs.Close()
	var out []fd.Result
	for r, ok := rs.Next(); ok; r, ok = rs.Next() {
		out = append(out, r)
	}
	if err := rs.Err(); err != nil {
		t.Fatalf("Open(%+v) drain: %v", q, err)
	}
	return out, rs.Stats()
}

// equivDB is a chain workload small enough to drain in every mode but
// large enough that sequences are non-trivial.
func equivDB(t *testing.T) *fd.Database {
	t.Helper()
	db, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 8, Domain: 3, NullRate: 0.1, ImpMax: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// dirtyDB carries misspellings and probabilities for the approx modes.
func dirtyDB(t *testing.T) *fd.Database {
	t.Helper()
	db, err := workload.DirtyChain(workload.DirtyConfig{
		Config:    workload.Config{Relations: 3, TuplesPerRelation: 8, Domain: 3, Seed: 23},
		ErrorRate: 0.3, MaxEdits: 2, MinProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func sameSequence(t *testing.T, label string, got []fd.Result, wantSets []*fd.TupleSet, wantRanks []float64) {
	t.Helper()
	if len(got) != len(wantSets) {
		t.Fatalf("%s: %d results via Open, %d via wrapper", label, len(got), len(wantSets))
	}
	for i := range got {
		if got[i].Set.Key() != wantSets[i].Key() {
			t.Fatalf("%s: sequence differs at %d: %q vs %q", label, i, got[i].Set.Key(), wantSets[i].Key())
		}
		if wantRanks != nil {
			if !got[i].Ranked {
				t.Fatalf("%s: result %d not marked ranked", label, i)
			}
			if got[i].Rank != wantRanks[i] {
				t.Fatalf("%s: rank differs at %d: %v vs %v", label, i, got[i].Rank, wantRanks[i])
			}
		}
	}
}

// TestOpenEquivalentToExactWrappers proves the deprecated exact-mode
// wrappers and their fd.Open forms produce identical sequences and
// stats.
func TestOpenEquivalentToExactWrappers(t *testing.T) {
	db := equivDB(t)
	for _, strategy := range []string{"singletons", "seeded", "projected"} {
		strat, err := fd.ParseInitStrategy(strategy)
		if err != nil {
			t.Fatal(err)
		}
		opts := fd.Options{UseIndex: true, UseJoinIndex: true, Strategy: strat}
		wantSets, wantStats, err := fd.FullDisjunction(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Workers pinned to 1: the wrappers are sequential, and on a
		// multicore box Workers 0 would resolve to a parallel cursor
		// whose arrival order is not the canonical sequence.
		got, gotStats := openDrain(t, db, fd.Query{Mode: fd.ModeExact,
			Options: fd.QueryOptions{UseIndex: true, UseJoinIndex: true, Strategy: strategy, Workers: 1}})
		sameSequence(t, "exact/"+strategy, got, wantSets, nil)
		if gotStats != wantStats {
			t.Errorf("exact/%s stats differ:\n open    %+v\n wrapper %+v", strategy, gotStats, wantStats)
		}
	}

	// K-bounded prefix ≡ Stream with early stop.
	var prefix []*fd.TupleSet
	if _, err := fd.Stream(db, fd.Options{UseIndex: true}, func(s *fd.TupleSet) bool {
		prefix = append(prefix, s)
		return len(prefix) < 5
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := openDrain(t, db, fd.Query{K: 5, Options: fd.QueryOptions{UseIndex: true, Workers: 1}})
	sameSequence(t, "exact/K", got, prefix, nil)
}

// TestOpenEquivalentToRankedWrappers proves StreamRanked / TopK /
// Threshold and their fd.Open forms coincide, ranks included.
func TestOpenEquivalentToRankedWrappers(t *testing.T) {
	db := equivDB(t)
	opts := fd.Options{UseIndex: true}
	qopts := fd.QueryOptions{UseIndex: true}

	var wantSets []*fd.TupleSet
	var wantRanks []float64
	wantStats, err := fd.StreamRanked(db, fd.FMax(), opts, func(r fd.Ranked) bool {
		wantSets = append(wantSets, r.Set)
		wantRanks = append(wantRanks, r.Rank)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	got, gotStats := openDrain(t, db, fd.Query{Mode: fd.ModeRanked, Rank: "fmax", Options: qopts})
	sameSequence(t, "ranked", got, wantSets, wantRanks)
	if gotStats != wantStats {
		t.Errorf("ranked stats differ:\n open    %+v\n wrapper %+v", gotStats, wantStats)
	}

	top, topStats, err := fd.TopK(db, fd.FMax(), 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotTop, gotTopStats := openDrain(t, db, fd.Query{Mode: fd.ModeRanked, Rank: "fmax", K: 4, Options: qopts})
	sameSequence(t, "ranked/K", gotTop, setsOf(top), ranksOf(top))
	if gotTopStats != topStats {
		t.Errorf("top-k stats differ:\n open    %+v\n wrapper %+v", gotTopStats, topStats)
	}

	tau := wantRanks[len(wantRanks)/2]
	thr, thrStats, err := fd.Threshold(db, fd.FMax(), tau, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotThr, gotThrStats := openDrain(t, db, fd.Query{Mode: fd.ModeRanked, Rank: "fmax", RankTau: tau, Options: qopts})
	sameSequence(t, "ranked/RankTau", gotThr, setsOf(thr), ranksOf(thr))
	if gotThrStats != thrStats {
		t.Errorf("threshold stats differ:\n open    %+v\n wrapper %+v", gotThrStats, thrStats)
	}
}

// TestOpenEquivalentToApproxWrappers proves the approx family wrappers
// and their fd.Open forms coincide.
func TestOpenEquivalentToApproxWrappers(t *testing.T) {
	db := dirtyDB(t)
	amin := fd.Amin(fd.LevenshteinSim())

	var wantSets []*fd.TupleSet
	wantStats, err := fd.ApproxStream(db, amin, 0.7, func(s *fd.TupleSet) bool {
		wantSets = append(wantSets, s)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// The wrappers run with the historical engine configuration
	// (hash index on); the equivalent query spells it out.
	// Workers pinned to 1 so the arrival order matches the sequential
	// wrapper on any GOMAXPROCS.
	q := fd.Query{Mode: fd.ModeApprox, Tau: 0.7, Options: fd.QueryOptions{UseIndex: true, Workers: 1}}
	got, gotStats := openDrain(t, db, q)
	sameSequence(t, "approx", got, wantSets, nil)
	if gotStats != wantStats {
		t.Errorf("approx stats differ:\n open    %+v\n wrapper %+v", gotStats, wantStats)
	}

	var wantRanked []fd.Ranked
	wantRankedStats, err := fd.ApproxStreamRanked(db, amin, 0.6, fd.FMax(), func(r fd.Ranked) bool {
		wantRanked = append(wantRanked, r)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	qr := fd.Query{Mode: fd.ModeApproxRanked, Tau: 0.6, Rank: "fmax",
		Options: fd.QueryOptions{UseIndex: true}}
	gotRanked, gotRankedStats := openDrain(t, db, qr)
	sameSequence(t, "approx-ranked", gotRanked, setsOf(wantRanked), ranksOf(wantRanked))
	if gotRankedStats != wantRankedStats {
		t.Errorf("approx-ranked stats differ:\n open    %+v\n wrapper %+v", gotRankedStats, wantRankedStats)
	}

	top, _, err := fd.ApproxTopK(db, amin, 0.6, fd.FMax(), 3)
	if err != nil {
		t.Fatal(err)
	}
	qk := qr
	qk.K = 3
	gotTop, _ := openDrain(t, db, qk)
	sameSequence(t, "approx-ranked/K", gotTop, setsOf(top), ranksOf(top))

	if len(wantRanked) > 1 {
		tau := wantRanked[len(wantRanked)/2].Rank
		thr, _, err := fd.ApproxThreshold(db, amin, 0.6, tau, fd.FMax())
		if err != nil {
			t.Fatal(err)
		}
		qt := qr
		qt.RankTau = tau
		gotThr, _ := openDrain(t, db, qt)
		sameSequence(t, "approx-ranked/RankTau", gotThr, setsOf(thr), ranksOf(thr))
	}
}

func setsOf(rs []fd.Ranked) []*fd.TupleSet {
	out := make([]*fd.TupleSet, len(rs))
	for i, r := range rs {
		out[i] = r.Set
	}
	return out
}

func ranksOf(rs []fd.Ranked) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Rank
	}
	return out
}

// TestOpenRuntimeHooks pins that the runtime-only options — stripped
// from the canonical form by normalisation — still reach execution:
// the trace hook fires per iteration and the buffer pool absorbs page
// fetches.
func TestOpenRuntimeHooks(t *testing.T) {
	db := equivDB(t)
	traced := 0
	pool := fd.NewBufferPool(16)
	_, _ = openDrain(t, db, fd.Query{
		Mode: fd.ModeExact,
		Options: fd.QueryOptions{
			BlockSize: 8,
			Pool:      pool,
			Trace:     func(int, *fd.TupleSet, []*fd.TupleSet, []*fd.TupleSet) { traced++ },
		},
	})
	if traced == 0 {
		t.Error("Trace hook never fired through fd.Open")
	}
	if pool.Hits()+pool.Misses() == 0 {
		t.Error("buffer pool never consulted through fd.Open")
	}
}
