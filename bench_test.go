// Benchmarks, one (or more) per experiment of DESIGN.md's index.
// They regenerate the performance-shaped artifacts of the paper under
// `go test -bench=. -benchmem`; the table-shaped artifacts (E1–E3) run
// as golden tests elsewhere and appear here as micro-benchmarks of the
// same computations.
package fd_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	fd "repro"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/join"
	"repro/internal/naive"
	"repro/internal/rank"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

func chainDB(b *testing.B, n, m int) *fd.Database {
	b.Helper()
	db, err := workload.Chain(workload.Config{
		Relations: n, TuplesPerRelation: m, Domain: 4, NullRate: 0.1, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkE1Tourist measures the paper's running example (Tables 1–2).
func BenchmarkE1Tourist(b *testing.B) {
	db := workload.Tourist()
	for i := 0; i < b.N; i++ {
		if _, _, err := fd.FullDisjunction(db, fd.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Seed measures a single-seed enumeration (Fig 1, the
// computation traced by Table 3).
func BenchmarkE2Seed(b *testing.B) {
	db := workload.Tourist()
	for i := 0; i < b.N; i++ {
		if _, _, err := fd.FDi(db, 0, fd.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3Approx measures the Fig 4 approximate-join evaluation.
func BenchmarkE3Approx(b *testing.B) {
	db, sims := workload.TouristApprox()
	amin := fd.Amin(fd.TableSim(sims))
	for i := 0; i < b.N; i++ {
		if _, _, err := fd.ApproxFullDisjunction(db, amin, 0.4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4Total compares total full-disjunction cost: IncrementalFD
// vs the BatchFD stand-in for [3], across database sizes (Cor 4.9).
func BenchmarkE4Total(b *testing.B) {
	for _, m := range []int{8, 16, 32} {
		db := chainDB(b, 4, m)
		b.Run(fmt.Sprintf("incremental/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := fd.FullDisjunction(db, fd.Options{UseIndex: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("batch/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				batch.FullDisjunction(db)
			}
		})
	}
}

// BenchmarkE5TimeToK measures the PINC claim (Thm 4.10): cost of the
// first k answers.
func BenchmarkE5TimeToK(b *testing.B) {
	db := chainDB(b, 5, 24)
	for _, k := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				count := 0
				_, err := fd.Stream(db, fd.Options{UseIndex: true}, func(*fd.TupleSet) bool {
					count++
					return count < k
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6TopK measures ranked retrieval (Thm 5.5) against
// compute-all-then-sort.
func BenchmarkE6TopK(b *testing.B) {
	db, err := workload.Star(workload.Config{
		Relations: 5, TuplesPerRelation: 20, Domain: 4, NullRate: 0.05, ImpMax: 100, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 10} {
		b.Run(fmt.Sprintf("ranked/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := fd.TopK(db, fd.FMax(), k, fd.Options{UseIndex: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("computeAll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := fd.FullDisjunction(db, fd.Options{UseIndex: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7Hardness contrasts brute-force top-1 fsum (NP-hard
// problem, Prop 5.1) with polynomial top-1 fmax as n grows.
func BenchmarkE7Hardness(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		db, err := workload.Clique(workload.Config{
			Relations: n, TuplesPerRelation: 4, Domain: 2, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		u := tupleset.NewUniverse(db)
		b.Run(fmt.Sprintf("fsumBrute/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				naive.TopK(db, func(s *tupleset.Set) float64 {
					return (rank.FSum{}).Rank(u, s)
				}, 1)
			}
		})
		b.Run(fmt.Sprintf("fmaxRanked/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := fd.TopK(db, fd.FMax(), 1, fd.Options{UseIndex: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8Approx sweeps τ for the approximate full disjunction on a
// dirty workload (Thm 6.6).
func BenchmarkE8Approx(b *testing.B) {
	db, err := workload.DirtyChain(workload.DirtyConfig{
		Config:    workload.Config{Relations: 4, TuplesPerRelation: 12, Domain: 4, Seed: 19},
		ErrorRate: 0.35, MaxEdits: 2, MinProb: 0.4,
	})
	if err != nil {
		b.Fatal(err)
	}
	amin := fd.Amin(fd.LevenshteinSim())
	for _, tau := range []float64{0.9, 0.6, 0.3} {
		b.Run(fmt.Sprintf("amin/tau=%.1f", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := fd.ApproxFullDisjunction(db, amin, tau); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9Ablations measures the §7 engineering options.
func BenchmarkE9Ablations(b *testing.B) {
	db := chainDB(b, 4, 28)
	variants := map[string]fd.Options{
		"noIndex":       {},
		"index":         {UseIndex: true},
		"indexSeeded":   {UseIndex: true, Strategy: fd.InitSeeded},
		"indexProject":  {UseIndex: true, Strategy: fd.InitProjected},
		"indexBlock64":  {UseIndex: true, BlockSize: 64},
		"seededBlock64": {UseIndex: true, Strategy: fd.InitSeeded, BlockSize: 64},
	}
	for name, opts := range variants {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := fd.FullDisjunction(db, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10Outerjoin compares the γ-acyclic outerjoin baseline [2]
// to IncrementalFD on chains.
func BenchmarkE10Outerjoin(b *testing.B) {
	db := chainDB(b, 4, 16)
	b.Run("outerjoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := join.FullDisjunction(db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := fd.FullDisjunction(db, fd.Options{UseIndex: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11Threshold measures the (τ,f)-threshold variant
// (Remark 5.6).
func BenchmarkE11Threshold(b *testing.B) {
	db, err := workload.Star(workload.Config{
		Relations: 5, TuplesPerRelation: 16, Domain: 4, NullRate: 0.05, ImpMax: 100, Seed: 37})
	if err != nil {
		b.Fatal(err)
	}
	for _, tau := range []float64{95, 50} {
		b.Run(fmt.Sprintf("tau=%.0f", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := fd.Threshold(db, fd.FMax(), tau, fd.Options{UseIndex: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJoinConsistent micro-benchmarks the pairwise
// join-consistency predicate — the innermost operation of every
// algorithm in the paper — on a clique workload where every relation
// pair shares an attribute, so each call walks a shared-position list.
// After the dictionary-encoding refactor this is pure int32 compares
// over columnar slices; track it to keep the hot path honest across
// PRs.
func BenchmarkJoinConsistent(b *testing.B) {
	db, err := workload.Clique(workload.Config{
		Relations: 6, TuplesPerRelation: 32, Domain: 4, NullRate: 0.1, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	var refs []fd.Ref
	db.ForEachRef(func(ref fd.Ref) bool {
		refs = append(refs, ref)
		return true
	})
	db.JoinConsistent(refs[0], refs[len(refs)-1]) // encode outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := refs[i%len(refs)]
		c := refs[(i*7+1)%len(refs)]
		db.JoinConsistent(a, c)
	}
}

// BenchmarkUnionJCC micro-benchmarks the set-level union predicate of
// GETNEXTRESULT lines 14–15 on clique results, the companion of
// BenchmarkJoinConsistent at the tuple-set layer.
func BenchmarkUnionJCC(b *testing.B) {
	db, err := workload.Clique(workload.Config{
		Relations: 5, TuplesPerRelation: 8, Domain: 3, NullRate: 0.1, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	u := tupleset.NewUniverse(db)
	sets, _, err := core.FullDisjunction(db, core.Options{UseIndex: true})
	if err != nil {
		b.Fatal(err)
	}
	if len(sets) < 2 {
		b.Fatal("clique workload produced fewer than 2 results")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.UnionJCC(sets[i%len(sets)], sets[(i*13+1)%len(sets)])
	}
}

// BenchmarkJCCWithTuple compares the two implementations of the
// innermost GETNEXTRESULT predicate (line 3 of Fig 2): the
// attribute-binding signature probe (O(arity) code compares) against
// the retained pairwise walk (O(|T|·sharedAttrs) JoinConsistent
// calls). The clique workload makes every relation pair share an
// attribute, so the pairwise walk has real work to do — the regime the
// asymptotic gap describes.
func BenchmarkJCCWithTuple(b *testing.B) {
	db, err := workload.Clique(workload.Config{
		Relations: 8, TuplesPerRelation: 12, Domain: 4, NullRate: 0.1, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	u := tupleset.NewUniverse(db)
	sets, _, err := core.FullDisjunction(db, core.Options{UseIndex: true})
	if err != nil {
		b.Fatal(err)
	}
	big := sets[0]
	for _, s := range sets {
		if s.Len() > big.Len() {
			big = s
		}
	}
	if big.Len() > 1 {
		// Free one relation so candidate tuples exercise the full
		// consistency walk instead of the same-relation early exit.
		big = big.Clone()
		big.Remove(int(big.Refs()[big.Len()-1].Rel))
	}
	// Only tuples of relations absent from the set reach the
	// consistency walk; everything else exits identically in both
	// implementations and would dilute the comparison.
	var refs []fd.Ref
	db.ForEachRef(func(ref fd.Ref) bool {
		if !big.HasRelation(int(ref.Rel)) {
			refs = append(refs, ref)
		}
		return true
	})
	b.Run("signature", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u.JCCWithTuple(big, refs[i%len(refs)])
		}
	})
	b.Run("pairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ref := refs[i%len(refs)]
			_ = u.ConnectedWith(big, ref) && u.OracleConsistentWith(big, ref)
		}
	})
}

// BenchmarkMaximalSubset compares the two implementations of footnote 3
// on maximal chain results: the signature path (binding probe, pooled
// bitset scratch, recycled destination set) against the retained
// boolean-mask oracle.
func BenchmarkMaximalSubset(b *testing.B) {
	db := chainDB(b, 5, 24)
	u := tupleset.NewUniverse(db)
	sets, _, err := core.FullDisjunction(db, core.Options{UseIndex: true})
	if err != nil {
		b.Fatal(err)
	}
	big := sets[0]
	for _, s := range sets {
		if s.Len() > big.Len() {
			big = s
		}
	}
	var refs []fd.Ref
	db.ForEachRef(func(ref fd.Ref) bool {
		refs = append(refs, ref)
		return true
	})
	b.Run("signature", func(b *testing.B) {
		var ctr tupleset.SigCounters
		dst := u.NewSet()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			u.MaximalSubsetInto(dst, big, refs[i%len(refs)], &ctr)
		}
	})
	b.Run("pairwise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			u.OracleMaximalSubsetWith(big, refs[i%len(refs)])
		}
	})
}

// BenchmarkSubstrates micro-benchmarks the hot predicates.
func BenchmarkSubstrates(b *testing.B) {
	db := chainDB(b, 5, 24)
	u := tupleset.NewUniverse(db)
	sets, _, err := core.FullDisjunction(db, core.Options{UseIndex: true})
	if err != nil {
		b.Fatal(err)
	}
	big := sets[0]
	for _, s := range sets {
		if s.Len() > big.Len() {
			big = s
		}
	}
	b.Run("JCC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u.JCC(big)
		}
	})
	b.Run("UnionJCC", func(b *testing.B) {
		other := sets[len(sets)/2]
		for i := 0; i < b.N; i++ {
			u.UnionJCC(big, other)
		}
	})
	b.Run("MaximalSubsetWith", func(b *testing.B) {
		tb := fd.Ref{Rel: int32(db.NumRelations() - 1), Idx: 0}
		for i := 0; i < b.N; i++ {
			u.MaximalSubsetWith(big, tb)
		}
	})
	b.Run("Key", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = big.Key()
		}
	})
}

// BenchmarkObsOverhead quantifies the cost of this PR's observability
// seams on the library hot path. The "off" case is the default one —
// no trace, no task observer — where every instrumented site reduces
// to a nil check (obs's contract), so its numbers should match the
// pre-instrumentation baseline within noise. The "observed" case
// attaches a task observer (the fdserve configuration) for the
// comparison number.
func BenchmarkObsOverhead(b *testing.B) {
	db := chainDB(b, 4, 24)
	drain := func(b *testing.B, q fd.Query) {
		rs, err := fd.Open(context.Background(), db, q)
		if err != nil {
			b.Fatal(err)
		}
		defer rs.Close()
		for {
			if _, ok := rs.Next(); !ok {
				break
			}
		}
		if err := rs.Err(); err != nil {
			b.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4} {
		base := fd.Query{Mode: fd.ModeExact,
			Options: fd.QueryOptions{UseIndex: true, Workers: workers}}
		b.Run(fmt.Sprintf("off/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				drain(b, base)
			}
		})
		b.Run(fmt.Sprintf("observed/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var spans atomic.Int64
			q := base
			q.Options.TaskObserver = func(fd.TaskSpan) { spans.Add(1) }
			for i := 0; i < b.N; i++ {
				drain(b, q)
			}
			_ = spans.Load()
		})
		// The introspected case attaches the full live-progress surface
		// (delay tracker + progress counters, the fdserve session
		// configuration): a few atomics and one clock read per result.
		b.Run(fmt.Sprintf("introspected/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := base
				q.Options.Delay = fd.NewDelay(0)
				q.Options.Progress = &fd.Progress{}
				drain(b, q)
			}
		})
	}
}
