package fd

import (
	"context"
	"fmt"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rank"
)

// Result is one full-disjunction answer: the tuple set, plus its rank
// when the producing query ranks results.
type Result struct {
	// Set is the answer tuple set.
	Set *TupleSet
	// Rank is the result's rank under the query's ranking function.
	Rank float64
	// Ranked reports whether Rank is meaningful (ranked modes only).
	Ranked bool
}

// Results is the unified pull cursor every query mode produces: one
// result per Next call with explicit suspended state. Sequential
// cursors (Workers 1, the ranked modes) hold no goroutines and can
// simply be dropped; a parallel cursor (Workers ≠ 1 on the
// parallelisable paths) holds its worker pool while live, and Close —
// or cancelling ctx, or draining it — stops every worker within one
// enumeration step, so a Closed cursor leaks nothing either way.
//
// A Results cursor is not safe for concurrent use; wrap it (as
// internal/service does) when several goroutines share one
// enumeration.
type Results interface {
	// Next produces the next result, or ok=false when the enumeration
	// is exhausted, closed, cancelled, or failed (check Err).
	Next() (Result, bool)
	// Err returns the error that terminated the enumeration, if any —
	// including ctx.Err() after a cancellation.
	Err() error
	// Stats snapshots the execution counters accumulated so far.
	Stats() Stats
	// Close abandons the enumeration; idempotent.
	Close()
}

// Open is the single execution entry point: it validates q and starts
// its enumeration over db, returning the unified Results cursor. All
// four modes — exact, ranked, approx, approx-ranked — serve through
// the same interface; K and RankTau bounds are enforced here, so a
// drained cursor is exactly the query's declared result sequence.
//
// Cancelling ctx makes an in-flight enumeration stop within one step:
// the pending Next returns ok=false promptly and Err reports
// ctx.Err(). A nil ctx means context.Background().
//
// Ranked modes pay their Fig 3 preprocessing inside Open, so every
// Next afterwards is one priority-queue extraction.
//
// Exact (restart-strategy) and approx queries whose effective Workers
// count exceeds one — the default, since Workers 0 means GOMAXPROCS —
// run on the parallel streaming executor: the result set is identical
// to the sequential path, but arrival order varies run to run (sort by
// canonical key, or set Workers 1, when a reproducible order matters).
func Open(ctx context.Context, db *Database, q Query) (Results, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if db == nil {
		return nil, fmt.Errorf("fd: nil database")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	n := q.normalize()
	opts, err := n.Options.engine()
	if err != nil {
		return nil, err
	}
	// normalize strips the runtime-only hooks (they must not reach the
	// canonical form); they still have to reach execution.
	opts.Pool, opts.Trace, opts.TaskObserver = q.Options.Pool, q.Options.Trace, q.Options.TaskObserver

	// The parallelisable modes route through the streaming executor
	// when the query's effective worker count exceeds one (Workers 0
	// means GOMAXPROCS, so multi-core is the default path); ranked
	// modes and the seeded/projected strategies are inherently
	// sequential and ignore Workers (see QueryOptions.Workers).
	workers := q.ParallelWorkers()

	prog, delay := q.Options.Progress, q.Options.Delay
	if prog != nil {
		prog.SetPhase(obs.PhaseOpen)
		if workers > 1 {
			// The parallel paths run the partitioned layout; publish its
			// task count and count completions through the observer chain
			// (one atomic add per finished task).
			switch n.Mode {
			case ModeExact:
				prog.SetTasksTotal(len(core.ExactLayout(db, workers)))
			case ModeApprox:
				prog.SetTasksTotal(len(core.ApproxLayout(db)))
			}
			inner := opts.TaskObserver
			opts.TaskObserver = func(ts TaskSpan) {
				prog.TaskDone()
				if inner != nil {
					inner(ts)
				}
			}
		}
	}

	var base Results
	switch n.Mode {
	case ModeExact:
		if workers > 1 {
			c, err := core.NewParallelCursor(ctx, db, opts, workers)
			if err != nil {
				return nil, err
			}
			base = exactResults{c}
			break
		}
		c, err := core.NewCursor(ctx, db, opts)
		if err != nil {
			return nil, err
		}
		base = exactResults{c}
	case ModeRanked:
		f, err := RankByName(n.Rank)
		if err != nil {
			return nil, err
		}
		c, err := rank.NewCursor(ctx, db, f, opts)
		if err != nil {
			return nil, err
		}
		base = rankedResults{c}
	case ModeApprox:
		s, err := SimByName(n.Sim)
		if err != nil {
			return nil, err
		}
		if workers > 1 {
			c, err := approx.NewParallelCursor(ctx, db, &approx.Amin{S: s}, n.Tau, opts, workers)
			if err != nil {
				return nil, err
			}
			base = approxResults{c}
			break
		}
		c, err := approx.NewCursor(ctx, db, &approx.Amin{S: s}, n.Tau, opts)
		if err != nil {
			return nil, err
		}
		base = approxResults{c}
	case ModeApproxRanked:
		f, err := RankByName(n.Rank)
		if err != nil {
			return nil, err
		}
		s, err := SimByName(n.Sim)
		if err != nil {
			return nil, err
		}
		c, err := rank.NewApproxCursor(ctx, db, &approx.Amin{S: s}, n.Tau, f, opts)
		if err != nil {
			return nil, err
		}
		base = approxRankedResults{c}
	default:
		return nil, fmt.Errorf("fd: unknown query mode %q", n.Mode)
	}

	if n.K > 0 || n.RankTau > 0 {
		base = &boundedResults{Results: base, remaining: n.K, rankTau: n.RankTau}
	}
	if prog != nil || delay != nil {
		// Outermost wrapper: the observed sequence is exactly what the
		// caller receives, after the K/RankTau bounds.
		base = newObservedResults(base, prog, delay)
	}
	return base, nil
}

// setCursor is the shape every unranked engine cursor shares —
// sequential or parallel, exact or approximate.
type setCursor interface {
	Next() (*TupleSet, bool)
	Err() error
	Stats() Stats
	Close()
}

// exactResults adapts an exact-mode engine cursor to Results.
type exactResults struct{ c setCursor }

func (r exactResults) Next() (Result, bool) {
	t, ok := r.c.Next()
	if !ok {
		return Result{}, false
	}
	return Result{Set: t}, true
}
func (r exactResults) Err() error   { return r.c.Err() }
func (r exactResults) Stats() Stats { return r.c.Stats() }
func (r exactResults) Close()       { r.c.Close() }

// rankedResults adapts rank.Cursor to Results.
type rankedResults struct{ c *rank.Cursor }

func (r rankedResults) Next() (Result, bool) {
	res, ok := r.c.Next()
	if !ok {
		return Result{}, false
	}
	return Result{Set: res.Set, Rank: res.Rank, Ranked: true}, true
}
func (r rankedResults) Err() error   { return r.c.Err() }
func (r rankedResults) Stats() Stats { return r.c.Stats() }
func (r rankedResults) Close()       { r.c.Close() }

// approxResults adapts an approx-mode engine cursor to Results.
type approxResults struct{ c setCursor }

func (r approxResults) Next() (Result, bool) {
	t, ok := r.c.Next()
	if !ok {
		return Result{}, false
	}
	return Result{Set: t}, true
}
func (r approxResults) Err() error   { return r.c.Err() }
func (r approxResults) Stats() Stats { return r.c.Stats() }
func (r approxResults) Close()       { r.c.Close() }

// approxRankedResults adapts rank.ApproxCursor to Results.
type approxRankedResults struct{ c *rank.ApproxCursor }

func (r approxRankedResults) Next() (Result, bool) {
	res, ok := r.c.Next()
	if !ok {
		return Result{}, false
	}
	return Result{Set: res.Set, Rank: res.Rank, Ranked: true}, true
}
func (r approxRankedResults) Err() error   { return r.c.Err() }
func (r approxRankedResults) Stats() Stats { return r.c.Stats() }
func (r approxRankedResults) Close()       { r.c.Close() }

// boundedResults enforces the query's K and RankTau bounds over an
// unbounded cursor. Once a bound trips, the underlying enumeration is
// closed — further results could never be served, so their suspended
// state is released immediately.
type boundedResults struct {
	Results
	remaining int     // K countdown; 0 with a K-bounded query = spent
	rankTau   float64 // stop at the first rank below this (ranked modes)
	done      bool
}

func (b *boundedResults) Next() (Result, bool) {
	if b.done {
		return Result{}, false
	}
	r, ok := b.Results.Next()
	if !ok {
		b.done = true
		return Result{}, false
	}
	if b.rankTau > 0 && r.Rank < b.rankTau {
		b.stop()
		return Result{}, false
	}
	if b.remaining > 0 {
		b.remaining--
		if b.remaining == 0 {
			// The K bound is spent with this result; release the
			// suspended state now rather than on the (possibly never
			// issued) next call.
			b.stop()
			return r, true
		}
	}
	return r, true
}

func (b *boundedResults) stop() {
	b.done = true
	b.Results.Close()
}

// observedResults layers live introspection over a cursor: it records
// the inter-result gap of every Next into a Delay tracker and keeps a
// Progress current (results emitted, tuples scanned, phase). Open adds
// it only when a tracker is attached, so the uninstrumented path pays
// nothing; instrumented, the per-result cost is one clock read, one
// Stats snapshot and a few atomic stores — never per scanned tuple.
type observedResults struct {
	Results
	prog  *obs.Progress
	delay *obs.Delay
	last  time.Time
	done  bool
}

func newObservedResults(base Results, prog *obs.Progress, delay *obs.Delay) *observedResults {
	// The first gap is anchored here, at Open's return: it measures the
	// wait for the first result, the lead term of the delay guarantee.
	prog.SetPhase(obs.PhaseEnumerate)
	return &observedResults{Results: base, prog: prog, delay: delay, last: time.Now()}
}

func (o *observedResults) Next() (Result, bool) {
	r, ok := o.Results.Next()
	if !ok {
		o.finish()
		return r, false
	}
	if o.delay != nil {
		now := time.Now()
		o.delay.Observe(now.Sub(o.last))
		o.last = now
	}
	if o.prog != nil {
		o.prog.AddEmitted(1)
		o.prog.SetScanned(int64(o.Results.Stats().TuplesScanned))
	}
	return r, true
}

func (o *observedResults) Close() {
	o.Results.Close()
	o.finish()
}

func (o *observedResults) finish() {
	if o.done {
		return
	}
	o.done = true
	if o.prog != nil {
		o.prog.SetScanned(int64(o.Results.Stats().TuplesScanned))
		o.prog.SetPhase(obs.PhaseDone)
	}
}
