package fd_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	fd "repro"
)

// cancelQueries enumerates one query per mode; every one must yield at
// least two results on dirtyDB so cancellation lands mid-enumeration.
func cancelQueries() []fd.Query {
	return []fd.Query{
		{Mode: fd.ModeExact, Options: fd.QueryOptions{UseIndex: true}},
		{Mode: fd.ModeRanked, Rank: "fmax", Options: fd.QueryOptions{UseIndex: true}},
		{Mode: fd.ModeApprox, Tau: 0.6, Options: fd.QueryOptions{UseIndex: true}},
		{Mode: fd.ModeApproxRanked, Tau: 0.6, Rank: "fmax", Options: fd.QueryOptions{UseIndex: true}},
	}
}

// TestOpenCancellation is the acceptance criterion for context
// plumbing: cancelling mid-enumeration makes the next step return
// promptly with ctx.Err(), in every mode, and leaks no goroutine.
func TestOpenCancellation(t *testing.T) {
	db := dirtyDB(t)
	before := runtime.NumGoroutine()
	for _, q := range cancelQueries() {
		ctx, cancel := context.WithCancel(context.Background())
		rs, err := fd.Open(ctx, db, q)
		if err != nil {
			cancel()
			t.Fatalf("Open(%+v): %v", q, err)
		}
		if _, ok := rs.Next(); !ok {
			t.Fatalf("mode %s: no first result (workload too small for the test)", q.Mode)
		}
		cancel()
		if r, ok := rs.Next(); ok {
			t.Fatalf("mode %s: Next returned %v after cancellation", q.Mode, r.Set)
		}
		if err := rs.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("mode %s: Err() = %v, want context.Canceled", q.Mode, err)
		}
		// A poisoned cursor stays poisoned.
		if _, ok := rs.Next(); ok {
			t.Fatalf("mode %s: Next yielded after a cancelled step", q.Mode)
		}
		rs.Close()
	}
	// Cursors hold no producer goroutines, so cancellation cannot leak
	// any. Allow the runtime a moment to retire unrelated goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestOpenPreCancelled checks the construction path: a context that is
// already cancelled never produces a result. The ranked modes detect
// it during their preprocessing and fail Open itself; the lazy modes
// fail on the first step.
func TestOpenPreCancelled(t *testing.T) {
	db := dirtyDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, q := range cancelQueries() {
		rs, err := fd.Open(ctx, db, q)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("mode %s: Open error %v, want context.Canceled", q.Mode, err)
			}
			continue
		}
		if _, ok := rs.Next(); ok {
			t.Fatalf("mode %s: cancelled context still produced a result", q.Mode)
		}
		if err := rs.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("mode %s: Err() = %v, want context.Canceled", q.Mode, err)
		}
		rs.Close()
	}
}
