package fd_test

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	fd "repro"
	"repro/internal/workload"
)

// explainDB builds one of the workload shapes used across the Explain
// tests: large enough that parallel layouts have real block splits.
func explainDB(t *testing.T, shape string) *fd.Database {
	t.Helper()
	cfg := workload.Config{
		Relations: 4, TuplesPerRelation: 24, Domain: 4, NullRate: 0.1, ImpMax: 10, Seed: 41}
	var (
		db  *fd.Database
		err error
	)
	switch shape {
	case "chain":
		db, err = workload.Chain(cfg)
	case "star":
		db, err = workload.Star(cfg)
	case "clique":
		cfg.TuplesPerRelation = 6
		db, err = workload.Clique(cfg)
	default:
		t.Fatalf("unknown shape %q", shape)
	}
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExplainJSONRoundTrip is the serialisation acceptance criterion:
// a plan marshals to JSON and unmarshals back to an identical value.
func TestExplainJSONRoundTrip(t *testing.T) {
	db := explainDB(t, "chain")
	for _, q := range []fd.Query{
		{Mode: fd.ModeExact, Options: fd.QueryOptions{UseIndex: true, UseJoinIndex: true, Workers: 4}},
		{Mode: fd.ModeRanked, Rank: "fmax", K: 5, Options: fd.QueryOptions{UseIndex: true}},
		{Mode: fd.ModeApprox, Tau: 0.7, Options: fd.QueryOptions{UseIndex: true, Workers: 4}},
	} {
		plan, err := fd.Explain(db, q)
		if err != nil {
			t.Fatalf("Explain(%+v): %v", q, err)
		}
		doc, err := json.Marshal(plan)
		if err != nil {
			t.Fatal(err)
		}
		var back fd.Plan
		if err := json.Unmarshal(doc, &back); err != nil {
			t.Fatalf("unmarshal plan: %v", err)
		}
		if !reflect.DeepEqual(*plan, back) {
			t.Errorf("mode %s: plan did not survive the JSON round trip:\n%+v\nvs\n%+v",
				q.Mode, *plan, back)
		}
	}
}

// TestExplainStrategyPrediction checks the plan's strategy section
// against the execution it predicts, across the three workload shapes
// and Workers ∈ {1, 4}: a sequential plan carries a reason, a parallel
// plan's task list matches — task for task — the spans an actual run
// reports through the TaskObserver.
func TestExplainStrategyPrediction(t *testing.T) {
	for _, shape := range []string{"chain", "star", "clique"} {
		db := explainDB(t, shape)
		for _, workers := range []int{1, 4} {
			q := fd.Query{Mode: fd.ModeExact, Options: fd.QueryOptions{
				UseIndex: true, Workers: workers}}
			plan, err := fd.Explain(db, q)
			if err != nil {
				t.Fatal(err)
			}
			if workers == 1 {
				if plan.Strategy.Execution != "sequential" || plan.Strategy.Workers != 1 {
					t.Fatalf("%s workers=1: strategy %+v, want sequential", shape, plan.Strategy)
				}
				if plan.Strategy.Reason == "" {
					t.Errorf("%s: sequential plan gives no reason", shape)
				}
				if len(plan.Strategy.Tasks) != 0 {
					t.Errorf("%s: sequential plan lists %d tasks", shape, len(plan.Strategy.Tasks))
				}
				continue
			}
			if plan.Strategy.Execution != "parallel" {
				t.Fatalf("%s workers=4: execution %q, want parallel", shape, plan.Strategy.Execution)
			}
			if plan.Strategy.Workers < 2 || plan.Strategy.Workers > workers {
				t.Errorf("%s: effective workers %d outside [2, %d]", shape, plan.Strategy.Workers, workers)
			}
			if len(plan.Strategy.Tasks) < plan.Strategy.Passes {
				t.Errorf("%s: %d tasks for %d passes", shape, len(plan.Strategy.Tasks), plan.Strategy.Passes)
			}
			seeds := 0
			for _, task := range plan.Strategy.Tasks {
				if task.Seeds != task.SeedHi-task.SeedLo || task.Seeds <= 0 {
					t.Errorf("%s: task %q has seed range [%d, %d) but Seeds=%d",
						shape, task.Label, task.SeedLo, task.SeedHi, task.Seeds)
				}
				seeds += task.Seeds
			}
			if seeds != plan.Database.Tuples {
				t.Errorf("%s: task seed counts sum to %d, want every tuple once (%d)",
					shape, seeds, plan.Database.Tuples)
			}

			// The plan is the execution: a real run reports exactly the
			// planned tasks, label for label.
			var ran atomic.Int64
			planned := make(map[string]bool, len(plan.Strategy.Tasks))
			for _, task := range plan.Strategy.Tasks {
				planned[task.Label] = true
			}
			var unplanned atomic.Int64
			run := q
			run.Options.TaskObserver = func(ts fd.TaskSpan) {
				ran.Add(1)
				if !planned[ts.Label] {
					unplanned.Add(1)
				}
			}
			rs, err := fd.Open(context.Background(), db, run)
			if err != nil {
				t.Fatal(err)
			}
			for _, ok := rs.Next(); ok; _, ok = rs.Next() {
			}
			if err := rs.Err(); err != nil {
				t.Fatal(err)
			}
			rs.Close()
			if int(ran.Load()) != len(plan.Strategy.Tasks) {
				t.Errorf("%s: plan promised %d tasks, execution ran %d",
					shape, len(plan.Strategy.Tasks), ran.Load())
			}
			if unplanned.Load() != 0 {
				t.Errorf("%s: %d executed tasks missing from the plan", shape, unplanned.Load())
			}
		}
	}
}

// TestExplainSequentialReasons checks the plan explains each forced
// sequential path: ranked modes, non-singleton initialisations and the
// per-iteration hooks all override a parallel worker request.
func TestExplainSequentialReasons(t *testing.T) {
	db := explainDB(t, "chain")
	cases := []struct {
		name string
		q    fd.Query
		want string
	}{
		{"ranked", fd.Query{Mode: fd.ModeRanked, Rank: "fmax", K: 3,
			Options: fd.QueryOptions{UseIndex: true, Workers: 4}}, "serial"},
		{"seeded", fd.Query{Mode: fd.ModeExact,
			Options: fd.QueryOptions{UseIndex: true, Strategy: "seeded", Workers: 4}}, "seeded"},
		{"trace-hook", fd.Query{Mode: fd.ModeExact,
			Options: fd.QueryOptions{UseIndex: true, Workers: 4,
				Trace: func(int, *fd.TupleSet, []*fd.TupleSet, []*fd.TupleSet) {}}}, "sequential path"},
		{"one-worker", fd.Query{Mode: fd.ModeExact,
			Options: fd.QueryOptions{UseIndex: true, Workers: 1}}, "one worker"},
	}
	for _, c := range cases {
		plan, err := fd.Explain(db, c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if plan.Strategy.Execution != "sequential" {
			t.Errorf("%s: execution %q, want sequential", c.name, plan.Strategy.Execution)
		}
		if !strings.Contains(plan.Strategy.Reason, c.want) {
			t.Errorf("%s: reason %q does not mention %q", c.name, plan.Strategy.Reason, c.want)
		}
	}
}

// TestExplainIndexAndGraph checks the index gating mirrors execution
// (the join index engages for exact equi-joins, never under a graded
// similarity) and the join-graph classification matches the workload
// shape.
func TestExplainIndexAndGraph(t *testing.T) {
	db := explainDB(t, "chain")

	plan, err := fd.Explain(db, fd.Query{Mode: fd.ModeExact,
		Options: fd.QueryOptions{UseIndex: true, UseJoinIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Index.JoinIndex || plan.Index.PostingLists == 0 || plan.Index.PostingEntries == 0 {
		t.Errorf("exact + joinindex: index section %+v, want engaged with posting stats", plan.Index)
	}
	if !plan.JoinGraph.Connected || !plan.JoinGraph.Chain || !plan.JoinGraph.Tree {
		t.Errorf("chain workload classified %+v", plan.JoinGraph)
	}
	if len(plan.JoinGraph.Components) != 1 || len(plan.JoinGraph.Components[0]) != db.NumRelations() {
		t.Errorf("chain components %v", plan.JoinGraph.Components)
	}

	plan, err = fd.Explain(db, fd.Query{Mode: fd.ModeExact,
		Options: fd.QueryOptions{UseIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Index.JoinIndex || !strings.Contains(plan.Index.JoinIndexReason, "not requested") {
		t.Errorf("join index off: %+v", plan.Index)
	}

	// A graded similarity must not engage the join index even when
	// requested — candidate-only scans would lose non-equi matches.
	plan, err = fd.Explain(db, fd.Query{Mode: fd.ModeApprox, Tau: 0.7,
		Options: fd.QueryOptions{UseIndex: true, UseJoinIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Index.JoinIndex || !strings.Contains(plan.Index.JoinIndexReason, "graded") {
		t.Errorf("approx levenshtein: %+v, want graded-similarity refusal", plan.Index)
	}

	// The same query under an exact similarity engages it.
	plan, err = fd.Explain(db, fd.Query{Mode: fd.ModeApprox, Tau: 0.7, Sim: "exact",
		Options: fd.QueryOptions{UseIndex: true, UseJoinIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Index.JoinIndex {
		t.Errorf("approx exact-sim: %+v, want join index engaged", plan.Index)
	}
}

// TestExplainValidates checks invalid specs are rejected before any
// planning happens.
func TestExplainValidates(t *testing.T) {
	db := explainDB(t, "chain")
	if _, err := fd.Explain(db, fd.Query{Mode: "nonsense"}); err == nil {
		t.Error("invalid mode accepted")
	}
	if _, err := fd.Explain(nil, fd.Query{}); err == nil {
		t.Error("nil database accepted")
	}
}
