package fd

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// randomQuery draws a valid query uniformly over the spec space.
func randomQuery(rng *rand.Rand) Query {
	modes := []Mode{ModeExact, ModeRanked, ModeApprox, ModeApproxRanked}
	ranks := []string{"fmax", "pairsum", "triple"}
	sims := []string{"", "levenshtein", "exact"}
	strategies := []string{"", "singletons", "seeded", "projected"}
	q := Query{
		Mode: modes[rng.Intn(len(modes))],
		K:    rng.Intn(4),
		Options: QueryOptions{
			UseIndex:     rng.Intn(2) == 0,
			UseJoinIndex: rng.Intn(2) == 0,
			BlockSize:    rng.Intn(3),
			Workers:      rng.Intn(3),
		},
	}
	if q.Mode == ModeExact {
		// Only the exact driver has initialisation strategies; any
		// other mode rejects a non-default one.
		q.Options.Strategy = strategies[rng.Intn(len(strategies))]
	} else if rng.Intn(2) == 0 {
		q.Options.Strategy = "singletons"
	}
	if q.Mode == ModeRanked || q.Mode == ModeApproxRanked {
		q.Rank = ranks[rng.Intn(len(ranks))]
		if rng.Intn(2) == 0 {
			q.RankTau = float64(1+rng.Intn(5)) / 2
		}
	}
	if q.Mode == ModeApprox || q.Mode == ModeApproxRanked {
		q.Tau = float64(1+rng.Intn(10)) / 10
		q.Sim = sims[rng.Intn(len(sims))]
	}
	return q
}

// TestPropertyQueryJSONRoundTrip is the spec-stability property of the
// acceptance criteria: every valid query survives a JSON round trip
// unchanged, and round-tripped queries keep their canonical key — the
// wire format can never split or merge cache entries.
func TestPropertyQueryJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		q := randomQuery(rng)
		if err := q.Validate(); err != nil {
			t.Fatalf("randomQuery produced invalid %+v: %v", q, err)
		}
		data, err := json.Marshal(q)
		if err != nil {
			t.Fatalf("marshal %+v: %v", q, err)
		}
		var back Query
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !reflect.DeepEqual(q, back) {
			t.Fatalf("round trip changed the query:\n  in  %+v\n  out %+v\n  via %s", q, back, data)
		}
		if q.Canonical() != back.Canonical() {
			t.Fatalf("round trip changed the canonical key: %q vs %q", q.Canonical(), back.Canonical())
		}
	}
}

// TestQueryCanonicalNormalisation checks that spellings of the same
// computation share one canonical key, and that result-affecting
// differences split keys.
func TestQueryCanonicalNormalisation(t *testing.T) {
	same := [][2]Query{
		{{}, {Mode: ModeExact}},
		{{Mode: ModeExact}, {Mode: ModeExact, Options: QueryOptions{Strategy: "singletons"}}},
		{{Mode: ModeExact}, {Mode: ModeExact, Options: QueryOptions{BlockSize: 1}}},
		{{Mode: ModeApprox, Tau: 0.5}, {Mode: ModeApprox, Tau: 0.5, Sim: "levenshtein"}},
		{{Mode: ModeExact, Options: QueryOptions{Pool: NewBufferPool(4)}}, {Mode: ModeExact}},
		// Workers is meaningless on paths that always run sequentially,
		// so it must not fragment their cache keys.
		{{Mode: ModeRanked, Rank: "fmax", Options: QueryOptions{Workers: 4}}, {Mode: ModeRanked, Rank: "fmax"}},
		{{Mode: ModeApproxRanked, Tau: 0.5, Rank: "fmax", Options: QueryOptions{Workers: 4}},
			{Mode: ModeApproxRanked, Tau: 0.5, Rank: "fmax"}},
		{{Mode: ModeExact, Options: QueryOptions{Strategy: "seeded", Workers: 4}},
			{Mode: ModeExact, Options: QueryOptions{Strategy: "seeded"}}},
	}
	for _, pair := range same {
		if pair[0].Canonical() != pair[1].Canonical() {
			t.Errorf("expected equal canonical keys:\n  %+v -> %q\n  %+v -> %q",
				pair[0], pair[0].Canonical(), pair[1], pair[1].Canonical())
		}
	}
	distinct := []Query{
		{Mode: ModeExact},
		{Mode: ModeExact, K: 3},
		{Mode: ModeExact, Options: QueryOptions{UseIndex: true}},
		{Mode: ModeExact, Options: QueryOptions{UseJoinIndex: true}},
		{Mode: ModeExact, Options: QueryOptions{BlockSize: 4}},
		{Mode: ModeExact, Options: QueryOptions{Strategy: "seeded"}},
		{Mode: ModeRanked, Rank: "fmax"},
		{Mode: ModeRanked, Rank: "pairsum"},
		{Mode: ModeRanked, Rank: "fmax", RankTau: 2},
		{Mode: ModeApprox, Tau: 0.5},
		{Mode: ModeApprox, Tau: 0.7},
		{Mode: ModeApprox, Tau: 0.5, Sim: "exact"},
		{Mode: ModeApproxRanked, Tau: 0.5, Rank: "fmax"},
		// Worker counts change arrival order, so they split keys on the
		// parallel-capable paths.
		{Mode: ModeExact, Options: QueryOptions{Workers: 2}},
		{Mode: ModeExact, Options: QueryOptions{Workers: 4}},
		{Mode: ModeApprox, Tau: 0.5, Options: QueryOptions{Workers: 4}},
	}
	seen := make(map[string]Query, len(distinct))
	for _, q := range distinct {
		key := q.Canonical()
		if prev, ok := seen[key]; ok {
			t.Errorf("queries %+v and %+v share canonical key %q", prev, q, key)
		}
		seen[key] = q
	}
}

// TestQueryValidate covers the rejection surface.
func TestQueryValidate(t *testing.T) {
	bad := []Query{
		{Mode: "nope"},
		{Mode: ModeRanked},                         // no rank function
		{Mode: ModeRanked, Rank: "fsum"},           // not c-determined
		{Mode: ModeApprox},                         // no tau
		{Mode: ModeApprox, Tau: 1.5},               // tau out of range
		{Mode: ModeApprox, Tau: 0.5, Sim: "nope"},  // unknown sim
		{Mode: ModeApproxRanked, Tau: 0.5},         // no rank function
		{Mode: ModeExact, Rank: "fmax"},            // rank on exact
		{Mode: ModeExact, RankTau: 1},              // rank threshold on exact
		{Mode: ModeExact, Tau: 0.5},                // approx tau on exact
		{Mode: ModeExact, Sim: "exact"},            // sim on exact
		{Mode: ModeRanked, Rank: "fmax", Tau: 0.5}, // approx tau on ranked
		{Mode: ModeApprox, Tau: 0.5, RankTau: 1},   // rank threshold on approx
		{Mode: ModeExact, K: -1},                   // negative k
		{Mode: ModeExact, Options: QueryOptions{BlockSize: -1}},
		{Mode: ModeExact, Options: QueryOptions{Strategy: "bogus"}},
		// Only the exact driver has initialisation strategies; a
		// non-default one anywhere else would be silently ignored.
		{Mode: ModeRanked, Rank: "fmax", Options: QueryOptions{Strategy: "seeded"}},
		{Mode: ModeApprox, Tau: 0.5, Options: QueryOptions{Strategy: "projected"}},
		{Mode: ModeExact, Options: QueryOptions{Workers: -1}}, // negative workers
	}
	for _, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", q)
		}
	}
	good := []Query{
		{},
		{Mode: ModeExact, K: 5, Options: QueryOptions{UseIndex: true, Strategy: "projected"}},
		{Mode: ModeRanked, Rank: "triple", RankTau: 0.5},
		{Mode: ModeApprox, Tau: 1},
		{Mode: ModeApproxRanked, Tau: 0.25, Rank: "fmax", K: 2, Sim: "exact"},
		{Mode: ModeExact, Options: QueryOptions{Workers: 8}},
		{Mode: ModeApprox, Tau: 0.5, Options: QueryOptions{Workers: 2}},
		// Workers on a ranked query is accepted and ignored (the Fig 3
		// queue order is inherently serial), not rejected.
		{Mode: ModeRanked, Rank: "fmax", K: 2, Options: QueryOptions{Workers: 8}},
	}
	for _, q := range good {
		if err := q.Validate(); err != nil {
			t.Errorf("Validate rejected %+v: %v", q, err)
		}
	}
}
