package storage

import (
	"testing"
	"testing/quick"
)

func TestFetchHitMiss(t *testing.T) {
	bp := NewBufferPool(2)
	a, b, c := PageID{0, 0}, PageID{0, 1}, PageID{1, 0}

	if bp.Fetch(a) {
		t.Error("first fetch of a must miss")
	}
	if !bp.Fetch(a) {
		t.Error("second fetch of a must hit")
	}
	if bp.Fetch(b) {
		t.Error("first fetch of b must miss")
	}
	// Pool (cap 2) holds {a, b}; fetching c evicts LRU = a.
	if bp.Fetch(c) {
		t.Error("first fetch of c must miss")
	}
	if bp.Fetch(a) {
		t.Error("a must have been evicted")
	}
	if bp.Hits() != 1 || bp.Misses() != 4 {
		t.Errorf("hits=%d misses=%d", bp.Hits(), bp.Misses())
	}
	if bp.Resident() != 2 {
		t.Errorf("resident=%d", bp.Resident())
	}
}

func TestLRUOrderOnHit(t *testing.T) {
	bp := NewBufferPool(2)
	a, b, c := PageID{0, 0}, PageID{0, 1}, PageID{0, 2}
	bp.Fetch(a)
	bp.Fetch(b)
	bp.Fetch(a) // a becomes MRU; LRU is b
	bp.Fetch(c) // evicts b
	if !bp.Fetch(a) {
		t.Error("a should have survived (recently used)")
	}
	if bp.Fetch(b) {
		t.Error("b should have been evicted")
	}
}

func TestCapacityFloorAndReset(t *testing.T) {
	bp := NewBufferPool(0)
	if bp.Capacity() != 1 {
		t.Errorf("capacity = %d, want 1", bp.Capacity())
	}
	bp.Fetch(PageID{0, 0})
	bp.Fetch(PageID{0, 1})
	if bp.Resident() != 1 {
		t.Errorf("resident = %d", bp.Resident())
	}
	bp.Reset()
	if bp.Resident() != 0 || bp.Hits() != 0 || bp.Misses() != 0 {
		t.Error("reset incomplete")
	}
	if bp.HitRate() != 0 {
		t.Error("hit rate after reset must be 0")
	}
}

// TestPoolNeverExceedsCapacity is a quick property: resident pages stay
// within capacity and counters add up, for arbitrary fetch sequences.
func TestPoolNeverExceedsCapacity(t *testing.T) {
	f := func(capRaw uint8, pages []uint8) bool {
		capacity := 1 + int(capRaw%16)
		bp := NewBufferPool(capacity)
		for _, p := range pages {
			bp.Fetch(PageID{Rel: int32(p % 4), Block: int32(p / 4)})
			if bp.Resident() > capacity {
				return false
			}
		}
		return bp.Hits()+bp.Misses() == int64(len(pages))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSequentialScanHitRate: a repeated sequential scan over more pages
// than the pool holds always misses under LRU (the classic sequential
// flooding pattern); a pool at least as large as the scan always hits
// after the first pass.
func TestSequentialScanHitRate(t *testing.T) {
	scan := func(bp *BufferPool, pages int, passes int) {
		for p := 0; p < passes; p++ {
			for i := 0; i < pages; i++ {
				bp.Fetch(PageID{0, int32(i)})
			}
		}
	}
	small := NewBufferPool(4)
	scan(small, 8, 3)
	if small.Hits() != 0 {
		t.Errorf("sequential flooding should never hit: hits=%d", small.Hits())
	}
	big := NewBufferPool(8)
	scan(big, 8, 3)
	if big.Misses() != 8 || big.Hits() != 16 {
		t.Errorf("warm pool: hits=%d misses=%d", big.Hits(), big.Misses())
	}
}
