// Package storage models the I/O layer underneath block-based
// execution (Section 7 of Cohen & Sagiv 2007): relations are divided
// into fixed-size pages of tuples, and scans fetch pages through a
// buffer pool with LRU replacement. Tuple data itself stays in memory —
// the substrate simulates the *cost behaviour* of a paged database
// (which pages would hit the buffer and which would go to disk), which
// is what the block-size and buffer-size experiments measure. This is
// the substitution DESIGN.md documents for "implementing the algorithm
// within a relational database system": same access pattern, simulated
// device.
package storage

import (
	"container/list"
	"fmt"
)

// PageID names one page: a block of consecutive tuples of one relation.
type PageID struct {
	Rel   int32
	Block int32
}

// String renders the id as rel:block.
func (id PageID) String() string { return fmt.Sprintf("%d:%d", id.Rel, id.Block) }

// BufferPool is an LRU page cache. The zero value is unusable; create
// pools with NewBufferPool. Not safe for concurrent use — each
// enumeration owns its pool, mirroring a per-query buffer.
type BufferPool struct {
	capacity int
	frames   map[PageID]*list.Element
	lru      *list.List // front = most recently used; values are PageID
	hits     int64
	misses   int64
}

// NewBufferPool creates a pool holding up to capacity pages. A
// capacity below one page is treated as one (a scan must be able to
// hold the page it is reading).
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		capacity: capacity,
		frames:   make(map[PageID]*list.Element, capacity),
		lru:      list.New(),
	}
}

// Capacity returns the pool size in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Resident returns the number of pages currently buffered.
func (bp *BufferPool) Resident() int { return bp.lru.Len() }

// Hits returns the number of fetches served from the buffer.
func (bp *BufferPool) Hits() int64 { return bp.hits }

// Misses returns the number of fetches that had to "read the device".
func (bp *BufferPool) Misses() int64 { return bp.misses }

// HitRate returns hits/(hits+misses), or 0 before any fetch.
func (bp *BufferPool) HitRate() float64 {
	total := bp.hits + bp.misses
	if total == 0 {
		return 0
	}
	return float64(bp.hits) / float64(total)
}

// Fetch requests a page and reports whether it was already buffered.
// On a miss the page is loaded, evicting the least recently used page
// if the pool is full; either way the page becomes most recently used.
func (bp *BufferPool) Fetch(id PageID) (hit bool) {
	if el, ok := bp.frames[id]; ok {
		bp.hits++
		bp.lru.MoveToFront(el)
		return true
	}
	bp.misses++
	if bp.lru.Len() >= bp.capacity {
		oldest := bp.lru.Back()
		bp.lru.Remove(oldest)
		delete(bp.frames, oldest.Value.(PageID))
	}
	bp.frames[id] = bp.lru.PushFront(id)
	return false
}

// Reset clears the pool contents and counters.
func (bp *BufferPool) Reset() {
	bp.frames = make(map[PageID]*list.Element, bp.capacity)
	bp.lru.Init()
	bp.hits = 0
	bp.misses = 0
}
