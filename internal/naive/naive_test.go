package naive

import (
	"sort"
	"testing"

	"repro/internal/tupleset"
	"repro/internal/workload"
)

func TestOracleTable2(t *testing.T) {
	db := workload.Tourist()
	got := FullDisjunction(db)
	var gotStr []string
	for _, s := range got {
		gotStr = append(gotStr, s.Format(db))
	}
	sort.Strings(gotStr)
	want := workload.Table2()
	sort.Strings(want)
	if len(gotStr) != len(want) {
		t.Fatalf("got %v, want %v", gotStr, want)
	}
	for i := range want {
		if gotStr[i] != want[i] {
			t.Errorf("got %v, want %v", gotStr, want)
			break
		}
	}
}

func TestEnumerateConnectedCountsTourist(t *testing.T) {
	db := workload.Tourist()
	u := tupleset.NewUniverse(db)
	all := EnumerateConnected(u, func(s *tupleset.Set) bool { return u.JCC(s) })
	// Singletons: 10. Pairs: {c1,a1},{c1,a2},{c1,s1},{c1,s2},{a2,s1},
	// {a1,?}: a1 is Toronto; s-tuples in Canada: s1 London (City
	// conflict), s2 null City (blocked) -> none. {c2,s3},{c2,s4},
	// {c3,a3}: 8 pairs. Triples: {c1,a2,s1}: 1. Total 19.
	if len(all) != 19 {
		var names []string
		for _, s := range all {
			names = append(names, s.Format(db))
		}
		sort.Strings(names)
		t.Errorf("enumerated %d JCC sets, want 19: %v", len(all), names)
	}
	// Every enumerated set must be JCC; the enumeration must be
	// duplicate-free.
	seen := make(map[string]bool)
	for _, s := range all {
		if !u.JCC(s) {
			t.Errorf("%s not JCC", s.Format(db))
		}
		if seen[s.Key()] {
			t.Errorf("duplicate %s", s.Format(db))
		}
		seen[s.Key()] = true
	}
}

func TestMaximalSetsAreMaximal(t *testing.T) {
	db, err := workload.Random(workload.Config{
		Relations: 4, TuplesPerRelation: 4, Domain: 3, NullRate: 0.2, Seed: 5}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	fd := FullDisjunction(db)
	for i, a := range fd {
		for j, b := range fd {
			if i != j && b.ContainsAll(a) {
				t.Errorf("oracle produced nested results %s ⊆ %s", a.Format(db), b.Format(db))
			}
		}
	}
}

func TestNaturalJoinNonEmpty(t *testing.T) {
	db := workload.Tourist()
	// The natural join of the tourist relations has exactly one tuple
	// (Example 2.2), so it is non-empty.
	if !NaturalJoinNonEmpty(db) {
		t.Error("tourist natural join must be non-empty")
	}
	// A clique workload where the shared attribute values never match.
	dbEmpty, err := workload.Clique(workload.Config{
		Relations: 3, TuplesPerRelation: 1, Domain: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// With domain 100 and one tuple per relation the chance of a full
	// match is negligible; verify rather than assume.
	fd := FullDisjunction(dbEmpty)
	full := false
	for _, s := range fd {
		if s.Len() == 3 {
			full = true
		}
	}
	if NaturalJoinNonEmpty(dbEmpty) != full {
		t.Error("NaturalJoinNonEmpty disagrees with oracle FD")
	}
}

func TestTopKOrdering(t *testing.T) {
	db := workload.TouristRanked()
	u := tupleset.NewUniverse(db)
	// fmax over the importance assignment of TouristRanked.
	fmax := func(s *tupleset.Set) float64 {
		best := 0.0
		for _, ref := range s.Refs() {
			if imp := db.Imp(ref); imp > best {
				best = imp
			}
		}
		return best
	}
	_ = u
	top := TopK(db, fmax, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if fmax(top[i-1]) < fmax(top[i]) {
			t.Error("TopK not in descending rank order")
		}
	}
	// Highest-ranking result contains a1 (imp 4).
	if got := fmax(top[0]); got != 4 {
		t.Errorf("top rank = %v, want 4", got)
	}
	// k larger than |FD|.
	all := TopK(db, fmax, 100)
	if len(all) != 6 {
		t.Errorf("TopK(100) returned %d", len(all))
	}
}
