// Package naive provides exponential-time reference implementations
// ("oracles") of the definitions in Cohen & Sagiv 2007: the full
// disjunction (Definition 2.1), the approximate full disjunction
// (Definition 6.2), top-k under arbitrary ranking functions, and the
// natural join. They exist to validate the polynomial algorithms on
// small instances in unit and property tests, and to demonstrate the
// NP-hardness result of Proposition 5.1 empirically. They must never be
// used on large inputs.
//
// The oracles deliberately enumerate by full database sweeps (no
// candidate index), but their join-consistency checks go through the
// same columnar dictionary-code predicates as the real algorithms, so
// agreement between oracle and algorithm also exercises the encoding.
package naive

import (
	"sort"

	"repro/internal/relation"
	"repro/internal/tupleset"
)

// Valid is a predicate over connected tuple sets that is downward
// closed on connected subsets: if Valid(T) and T' ⊆ T is connected,
// then Valid(T'). JCC and every acceptable approximate-join threshold
// predicate A(T) ≥ τ have this property, which is what makes one-tuple-
// at-a-time enumeration complete.
type Valid func(*tupleset.Set) bool

// EnumerateConnected returns every connected tuple set T ⊆ Tuples(R)
// with valid(T), by breadth-first extension from singletons. The result
// is deterministic (sorted by canonical key length then key).
func EnumerateConnected(u *tupleset.Universe, valid Valid) []*tupleset.Set {
	seen := make(map[string]*tupleset.Set)
	var frontier []*tupleset.Set
	u.DB.ForEachRef(func(ref relation.Ref) bool {
		s := u.Singleton(ref)
		if valid(s) {
			if _, ok := seen[s.Key()]; !ok {
				seen[s.Key()] = s
				frontier = append(frontier, s)
			}
		}
		return true
	})
	for len(frontier) > 0 {
		var next []*tupleset.Set
		for _, s := range frontier {
			u.DB.ForEachRef(func(ref relation.Ref) bool {
				if s.Has(ref) || s.HasRelation(int(ref.Rel)) {
					return true
				}
				if !u.ConnectedWith(s, ref) {
					return true
				}
				ext := s.Clone().Add(ref)
				if !valid(ext) {
					return true
				}
				if _, ok := seen[ext.Key()]; !ok {
					seen[ext.Key()] = ext
					next = append(next, ext)
				}
				return true
			})
		}
		frontier = next
	}
	out := make([]*tupleset.Set, 0, len(seen))
	for _, s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := out[i].Key(), out[j].Key()
		if len(ki) != len(kj) {
			return len(ki) < len(kj)
		}
		return ki < kj
	})
	return out
}

// MaximalSets returns the maximal sets among the connected valid sets:
// those with no one-tuple valid connected extension. For downward-
// closed predicates this coincides with set-inclusion maximality.
func MaximalSets(u *tupleset.Universe, valid Valid) []*tupleset.Set {
	all := EnumerateConnected(u, valid)
	var out []*tupleset.Set
	for _, s := range all {
		maximal := true
		u.DB.ForEachRef(func(ref relation.Ref) bool {
			if s.Has(ref) || s.HasRelation(int(ref.Rel)) {
				return true
			}
			if !u.ConnectedWith(s, ref) {
				return true
			}
			if valid(s.Clone().Add(ref)) {
				maximal = false
				return false
			}
			return true
		})
		if maximal {
			out = append(out, s)
		}
	}
	return out
}

// FullDisjunction computes FD(R) by brute force (Definition 2.1).
func FullDisjunction(db *relation.Database) []*tupleset.Set {
	u := tupleset.NewUniverse(db)
	return MaximalSets(u, func(s *tupleset.Set) bool { return u.JCC(s) })
}

// ApproxFullDisjunction computes AFD(R, A, τ) by brute force
// (Definition 6.2) for an acceptable approximate-join score function.
func ApproxFullDisjunction(db *relation.Database, score func(*tupleset.Set) float64, tau float64) []*tupleset.Set {
	u := tupleset.NewUniverse(db)
	return MaximalSets(u, func(s *tupleset.Set) bool { return score(s) >= tau })
}

// TopK returns the k highest-ranking tuple sets of FD(R) under rank,
// breaking ties deterministically by canonical key. It works for any
// ranking function — including fsum, for which no polynomial algorithm
// exists unless P=NP (Proposition 5.1) — because it simply materialises
// the whole full disjunction first.
func TopK(db *relation.Database, rank func(*tupleset.Set) float64, k int) []*tupleset.Set {
	fd := FullDisjunction(db)
	sort.Slice(fd, func(i, j int) bool {
		ri, rj := rank(fd[i]), rank(fd[j])
		if ri != rj {
			return ri > rj
		}
		return fd[i].Key() < fd[j].Key()
	})
	if k > len(fd) {
		k = len(fd)
	}
	return fd[:k]
}

// NaturalJoinNonEmpty reports whether the natural join of all relations
// is non-empty, i.e. whether FD(R) contains a tuple set with a tuple
// from every relation. Deciding this is NP-complete in general (Maier,
// Sagiv & Yannakakis), which is the source of the hardness in
// Proposition 5.1.
func NaturalJoinNonEmpty(db *relation.Database) bool {
	for _, s := range FullDisjunction(db) {
		if s.Len() == db.NumRelations() {
			return true
		}
	}
	return false
}
