package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// DirtyConfig extends Config for approximate-join workloads: join
// values are longer strings, a fraction of which receive random edit
// errors (character substitutions), and tuples receive probabilities
// below one — the "wrapped Web source" scenario motivating Section 6.
type DirtyConfig struct {
	Config
	// ErrorRate is the probability that a join value is misspelled.
	ErrorRate float64
	// MaxEdits bounds the number of character edits per misspelling
	// (at least 1 when a misspelling occurs).
	MaxEdits int
	// MinProb is the lower bound of the per-tuple probability range
	// [MinProb, 1].
	MinProb float64
}

// DirtyChain generates a chain-connected database whose join values are
// strings like "value_03" with injected spelling errors, and whose
// tuples carry probabilities in [MinProb, 1]. Pair it with
// approx.LevenshteinSim: clean matches score 1, misspelled matches
// score just below 1, and unrelated values score low.
func DirtyChain(cfg DirtyConfig) (*relation.Database, error) {
	if err := cfg.Config.validate(); err != nil {
		return nil, err
	}
	if cfg.ErrorRate < 0 || cfg.ErrorRate >= 1 {
		return nil, fmt.Errorf("workload: error rate %v outside [0,1)", cfg.ErrorRate)
	}
	if cfg.MaxEdits < 1 {
		cfg.MaxEdits = 1
	}
	if cfg.MinProb <= 0 || cfg.MinProb > 1 {
		cfg.MinProb = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rels := make([]*relation.Relation, cfg.Relations)
	for i := 0; i < cfg.Relations; i++ {
		attrs := []relation.Attribute{relation.Attribute(fmt.Sprintf("P%02d", i))}
		if i > 0 {
			attrs = append(attrs, joinAttr(i-1))
		}
		if i < cfg.Relations-1 {
			attrs = append(attrs, joinAttr(i))
		}
		rels[i] = relation.MustRelation(fmt.Sprintf("R%02d", i), relation.MustSchema(attrs...))
		schema := rels[i].Schema()
		for t := 0; t < cfg.TuplesPerRelation; t++ {
			tuple := relation.Tuple{
				Label:  fmt.Sprintf("R%02d_t%d", i, t),
				Values: make([]relation.Value, schema.Len()),
				Imp:    1,
				Prob:   cfg.MinProb + rng.Float64()*(1-cfg.MinProb),
			}
			for p, a := range schema.Attributes() {
				if a[0] == 'P' {
					tuple.Values[p] = relation.V(fmt.Sprintf("payload_%d_%d", i, t))
					continue
				}
				if cfg.NullRate > 0 && rng.Float64() < cfg.NullRate {
					continue
				}
				v := wordValue(rng.Intn(cfg.Domain))
				if rng.Float64() < cfg.ErrorRate {
					v = misspell(rng, v, 1+rng.Intn(cfg.MaxEdits))
				}
				tuple.Values[p] = relation.V(v)
			}
			if err := rels[i].AppendTuple(tuple); err != nil {
				panic(err) // unreachable: tuple built to match schema
			}
		}
	}
	return relation.NewDatabase(rels...)
}

// wordValue returns the i-th join value: distinct word stems whose
// pairwise Levenshtein similarity is low, so that under LevenshteinSim
// only true matches (possibly misspelled) score high while different
// values stay well below useful thresholds.
func wordValue(i int) string {
	words := []string{
		"albatross", "blueberry", "cathedral", "dragonfly", "evergreen",
		"flamingo", "grapevine", "hurricane", "isotherm", "jacaranda",
		"kingfisher", "lighthouse", "mistletoe", "nightshade", "oleander",
		"periwinkle",
	}
	if i < len(words) {
		return words[i]
	}
	return fmt.Sprintf("%s%d", words[i%len(words)], i/len(words))
}

// misspell applies n random character substitutions to s.
func misspell(rng *rand.Rand, s string, n int) string {
	if len(s) == 0 {
		return s
	}
	b := []byte(s)
	const alphabet = "abcdefghijklmnopqrstuvwxyz"
	for i := 0; i < n; i++ {
		pos := rng.Intn(len(b))
		b[pos] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}
