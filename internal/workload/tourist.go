// Package workload builds the datasets used by tests, examples and
// benchmarks: the paper's running tourist example (Tables 1–2, Fig 4)
// and deterministic synthetic workload generators (chain, star, cycle,
// clique and random schemas, with controllable selectivity, null rate
// and dirtiness).
package workload

import (
	"repro/internal/relation"
)

// Tourist returns the three relations of Table 1 — Climates,
// Accommodations and Sites — as a database, in that order, with the
// tuple labels used throughout the paper (c1..c3, a1..a3, s1..s4).
func Tourist() *relation.Database {
	climates := relation.MustRelation("Climates",
		relation.MustSchema("Country", "Climate"))
	climates.MustAppend("c1", map[relation.Attribute]relation.Value{
		"Country": relation.V("Canada"), "Climate": relation.V("diverse")})
	climates.MustAppend("c2", map[relation.Attribute]relation.Value{
		"Country": relation.V("UK"), "Climate": relation.V("temperate")})
	climates.MustAppend("c3", map[relation.Attribute]relation.Value{
		"Country": relation.V("Bahamas"), "Climate": relation.V("tropical")})

	accommodations := relation.MustRelation("Accommodations",
		relation.MustSchema("Country", "City", "Hotel", "Stars"))
	accommodations.MustAppend("a1", map[relation.Attribute]relation.Value{
		"Country": relation.V("Canada"), "City": relation.V("Toronto"),
		"Hotel": relation.V("Plaza"), "Stars": relation.V("4")})
	accommodations.MustAppend("a2", map[relation.Attribute]relation.Value{
		"Country": relation.V("Canada"), "City": relation.V("London"),
		"Hotel": relation.V("Ramada"), "Stars": relation.V("3")})
	accommodations.MustAppend("a3", map[relation.Attribute]relation.Value{
		"Country": relation.V("Bahamas"), "City": relation.V("Nassau"),
		"Hotel": relation.V("Hilton")}) // Stars is ⊥ in Table 1

	sites := relation.MustRelation("Sites",
		relation.MustSchema("Country", "City", "Site"))
	sites.MustAppend("s1", map[relation.Attribute]relation.Value{
		"Country": relation.V("Canada"), "City": relation.V("London"),
		"Site": relation.V("Air Show")})
	sites.MustAppend("s2", map[relation.Attribute]relation.Value{
		"Country": relation.V("Canada"), // City is ⊥ in Table 1
		"Site":    relation.V("Mount Logan")})
	sites.MustAppend("s3", map[relation.Attribute]relation.Value{
		"Country": relation.V("UK"), "City": relation.V("London"),
		"Site": relation.V("Buckingham")})
	sites.MustAppend("s4", map[relation.Attribute]relation.Value{
		"Country": relation.V("UK"), "City": relation.V("London"),
		"Site": relation.V("Hyde Park")})

	return relation.MustDatabase(climates, accommodations, sites)
}

// Table2 lists the tuple sets of FD(Climates, Accommodations, Sites)
// exactly as the first column of Table 2 presents them, rendered with
// tuple labels.
func Table2() []string {
	return []string{
		"{c1, a1}",
		"{c1, a2, s1}",
		"{c1, s2}",
		"{c2, s3}",
		"{c2, s4}",
		"{c3, a3}",
	}
}

// TouristRanked returns the tourist database with the importance
// assignment motivating Section 1: the tourist prefers tropical to
// temperate and temperate to diverse climates, and higher-starred
// hotels to lower ones. imp(c3)=3, imp(c2)=2, imp(c1)=1; hotel tuples
// carry their star rating; site tuples carry 1.
func TouristRanked() *relation.Database {
	db := Tourist()
	imps := map[string]float64{
		"c1": 1, "c2": 2, "c3": 3,
		"a1": 4, "a2": 3, "a3": 1, // a3's rating is unknown (⊥): lowest
		"s1": 1, "s2": 1, "s3": 1, "s4": 1,
	}
	applyMeta(db, imps, nil)
	return db
}

// TouristApprox returns the tourist database annotated with the sim and
// prob values pinned by Examples 6.1 and 6.3 (the values Fig 4 draws):
// tuple c1 is misspelled "Cannada", sim(c1,a2)=0.8, sim(c1,s2)=0.8,
// sim(a2,s2)=0.5, and probabilities chosen ≥ 0.5 so the minimum in
// Amin({c1,a2,s2}) is attained by a sim edge, giving
// Amin({c1,a2,s2})=0.5 and Aprod({c1,a2,s2})=0.8·0.8·0.5=0.32.
//
// The similarity table is returned alongside the database; entries are
// keyed by the two tuple labels in either order. Pairs absent from the
// table default to exact-match similarity (1 if join consistent, 0
// otherwise) under the SimTable model in package approx.
func TouristApprox() (*relation.Database, map[[2]string]float64) {
	db := Tourist()
	// Misspell c1's Country, as in Example 6.1 (before the first query,
	// so the freeze contract permits the mutation).
	cl := db.Relation(0)
	pos, _ := cl.Schema().Position("Country")
	cl.MutateTuple(0, func(c1 *relation.Tuple) {
		c1.Values[pos] = relation.V("Cannada")
	})

	probs := map[string]float64{
		"c1": 0.9, "c2": 1, "c3": 1,
		"a1": 0.9, "a2": 0.9, "a3": 1,
		"s1": 0.9, "s2": 0.8, "s3": 1, "s4": 1,
	}
	applyMeta(db, nil, probs)

	sims := map[[2]string]float64{
		{"c1", "a1"}: 0.8,
		{"c1", "a2"}: 0.8,
		{"c1", "s1"}: 0.8,
		{"c1", "s2"}: 0.8,
		{"a2", "s1"}: 0.9,
		{"a2", "s2"}: 0.5,
		{"a1", "s2"}: 0.5,
	}
	return db, sims
}

func applyMeta(db *relation.Database, imps, probs map[string]float64) {
	for r := 0; r < db.NumRelations(); r++ {
		rel := db.Relation(r)
		for i := 0; i < rel.Len(); i++ {
			rel.MutateTuple(i, func(t *relation.Tuple) {
				if imps != nil {
					if v, ok := imps[t.Label]; ok {
						t.Imp = v
					}
				}
				if probs != nil {
					if v, ok := probs[t.Label]; ok {
						t.Prob = v
					}
				}
			})
		}
	}
}
