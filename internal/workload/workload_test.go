package workload

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/relation"
)

func TestTouristMatchesTable1(t *testing.T) {
	db := Tourist()
	if db.NumRelations() != 3 {
		t.Fatalf("relations = %d", db.NumRelations())
	}
	names := []string{"Climates", "Accommodations", "Sites"}
	sizes := []int{3, 3, 4}
	for i := range names {
		if db.Relation(i).Name() != names[i] {
			t.Errorf("relation %d = %s", i, db.Relation(i).Name())
		}
		if db.Relation(i).Len() != sizes[i] {
			t.Errorf("%s has %d tuples, want %d", names[i], db.Relation(i).Len(), sizes[i])
		}
	}
	// a3's Stars and s2's City are the two nulls of Table 1.
	stars, _ := db.Relation(1).Value(2, "Stars")
	if !stars.IsNull() {
		t.Error("a3.Stars must be ⊥")
	}
	city, _ := db.Relation(2).Value(1, "City")
	if !city.IsNull() {
		t.Error("s2.City must be ⊥")
	}
	// Exactly two nulls in total.
	nulls := 0
	for r := 0; r < db.NumRelations(); r++ {
		rel := db.Relation(r)
		for i := 0; i < rel.Len(); i++ {
			for _, v := range rel.Tuple(i).Values {
				if v.IsNull() {
					nulls++
				}
			}
		}
	}
	if nulls != 2 {
		t.Errorf("tourist data has %d nulls, want 2", nulls)
	}
	if !graph.NewConnection(db).Connected() {
		t.Error("tourist database must be connected")
	}
}

func TestTouristRankedImportances(t *testing.T) {
	db := TouristRanked()
	want := map[string]float64{"c1": 1, "c2": 2, "c3": 3, "a1": 4, "a2": 3, "a3": 1, "s1": 1}
	db.ForEachRef(func(ref relation.Ref) bool {
		tp := db.Tuple(ref)
		if w, ok := want[tp.Label]; ok && tp.Imp != w {
			t.Errorf("imp(%s) = %v, want %v", tp.Label, tp.Imp, w)
		}
		return true
	})
}

func TestTouristApproxPinnedValues(t *testing.T) {
	db, sims := TouristApprox()
	// c1 is misspelled.
	v, _ := db.Relation(0).Value(0, "Country")
	if v.Datum() != "Cannada" {
		t.Errorf("c1.Country = %v, want Cannada", v)
	}
	// Example 6.1/6.3 pins.
	if sims[[2]string{"c1", "a2"}] != 0.8 || sims[[2]string{"c1", "s2"}] != 0.8 || sims[[2]string{"a2", "s2"}] != 0.5 {
		t.Error("sim table does not match Examples 6.1/6.3")
	}
	// prob(s2)=0.8 per Fig 4 reconstruction.
	if got := db.Relation(2).Tuple(1).Prob; got != 0.8 {
		t.Errorf("prob(s2) = %v", got)
	}
}

func TestGeneratorShapes(t *testing.T) {
	cfg := Config{Relations: 5, TuplesPerRelation: 3, Domain: 4, NullRate: 0.1, Seed: 2}
	chain, err := Chain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.NewConnection(chain).IsChain() {
		t.Error("Chain generator must build a chain")
	}
	star, err := Star(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := graph.NewConnection(star)
	if !c.IsTree() || c.IsChain() {
		t.Error("Star generator must build a non-chain tree")
	}
	cyc, err := Cycle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cc := graph.NewConnection(cyc)
	if !cc.Connected() || cc.IsTree() {
		t.Error("Cycle generator must build a connected non-tree")
	}
	clique, err := Clique(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qc := graph.NewConnection(clique)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if !clique.ConnectedRelations(i, j) {
				t.Errorf("clique relations %d,%d not connected", i, j)
			}
		}
	}
	_ = qc
	rnd, err := Random(cfg, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.NewConnection(rnd).Connected() {
		t.Error("Random generator must build a connected graph")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := Config{Relations: 4, TuplesPerRelation: 5, Domain: 3, NullRate: 0.2, ImpMax: 5, Seed: 77}
	a, err := Chain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != b.Size() {
		t.Fatal("sizes differ")
	}
	for r := 0; r < a.NumRelations(); r++ {
		ra, rb := a.Relation(r), b.Relation(r)
		for i := 0; i < ra.Len(); i++ {
			ta, tb := ra.Tuple(i), rb.Tuple(i)
			if ta.Imp != tb.Imp {
				t.Fatalf("imp differs at %s[%d]", ra.Name(), i)
			}
			for p := range ta.Values {
				if ta.Values[p] != tb.Values[p] {
					t.Fatalf("value differs at %s[%d][%d]", ra.Name(), i, p)
				}
			}
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	bad := []Config{
		{Relations: 0, TuplesPerRelation: 1, Domain: 1},
		{Relations: 1, TuplesPerRelation: 0, Domain: 1},
		{Relations: 1, TuplesPerRelation: 1, Domain: 0},
		{Relations: 1, TuplesPerRelation: 1, Domain: 1, NullRate: 1.0},
	}
	for _, cfg := range bad {
		if _, err := Chain(cfg); err == nil {
			t.Errorf("Chain accepted %+v", cfg)
		}
	}
	if _, err := Star(Config{Relations: 1, TuplesPerRelation: 1, Domain: 1}); err == nil {
		t.Error("Star accepted a single relation")
	}
	if _, err := Cycle(Config{Relations: 2, TuplesPerRelation: 1, Domain: 1}); err == nil {
		t.Error("Cycle accepted two relations")
	}
}

func TestNullRateApplies(t *testing.T) {
	cfg := Config{Relations: 3, TuplesPerRelation: 200, Domain: 2, NullRate: 0.5, Seed: 9}
	db, err := Chain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nulls, joins := 0, 0
	for r := 0; r < db.NumRelations(); r++ {
		rel := db.Relation(r)
		for i := 0; i < rel.Len(); i++ {
			for p, a := range rel.Schema().Attributes() {
				if a[0] != 'J' {
					continue
				}
				joins++
				if rel.Tuple(i).Values[p].IsNull() {
					nulls++
				}
			}
		}
	}
	frac := float64(nulls) / float64(joins)
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("null fraction %v far from 0.5", frac)
	}
}
