package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// Config controls a synthetic workload. All generators are
// deterministic for a fixed Seed.
type Config struct {
	// Relations is n, the number of relations.
	Relations int
	// TuplesPerRelation is the cardinality of each relation.
	TuplesPerRelation int
	// Domain is the number of distinct values per join attribute;
	// smaller domains produce more joinable pairs and larger full
	// disjunctions.
	Domain int
	// NullRate is the probability that a join-attribute value is ⊥.
	NullRate float64
	// ImpMax caps the importance values, drawn uniformly from
	// [1, ImpMax]; zero leaves imp(t)=1 for every tuple.
	ImpMax float64
	// Seed seeds the deterministic generator.
	Seed int64
}

func (c Config) validate() error {
	if c.Relations < 1 {
		return fmt.Errorf("workload: need at least one relation, got %d", c.Relations)
	}
	if c.TuplesPerRelation < 1 {
		return fmt.Errorf("workload: need at least one tuple per relation, got %d", c.TuplesPerRelation)
	}
	if c.Domain < 1 {
		return fmt.Errorf("workload: domain must be positive, got %d", c.Domain)
	}
	if c.NullRate < 0 || c.NullRate >= 1 {
		return fmt.Errorf("workload: null rate %v outside [0,1)", c.NullRate)
	}
	return nil
}

// Chain generates a chain-connected database: Ri has schema
// (J(i-1), Ji, Pi) where J attributes join adjacent relations and Pi is
// a payload private to Ri. Chains are γ-acyclic, so the outerjoin
// baseline applies to them.
func Chain(cfg Config) (*relation.Database, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rels := make([]*relation.Relation, cfg.Relations)
	for i := 0; i < cfg.Relations; i++ {
		attrs := []relation.Attribute{relation.Attribute(fmt.Sprintf("P%02d", i))}
		if i > 0 {
			attrs = append(attrs, joinAttr(i-1))
		}
		if i < cfg.Relations-1 {
			attrs = append(attrs, joinAttr(i))
		}
		rels[i] = relation.MustRelation(fmt.Sprintf("R%02d", i), relation.MustSchema(attrs...))
		fillRelation(rels[i], cfg, rng, i)
	}
	return relation.NewDatabase(rels...)
}

// Star generates a star-connected database: relation R00 is the hub
// with one join attribute per satellite; satellite Ri has (J(i-1), Pi).
// Stars are γ-acyclic.
func Star(cfg Config) (*relation.Database, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Relations < 2 {
		return nil, fmt.Errorf("workload: star needs at least two relations")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rels := make([]*relation.Relation, cfg.Relations)
	hubAttrs := []relation.Attribute{"P00"}
	for i := 1; i < cfg.Relations; i++ {
		hubAttrs = append(hubAttrs, joinAttr(i-1))
	}
	rels[0] = relation.MustRelation("R00", relation.MustSchema(hubAttrs...))
	fillRelation(rels[0], cfg, rng, 0)
	for i := 1; i < cfg.Relations; i++ {
		attrs := []relation.Attribute{
			relation.Attribute(fmt.Sprintf("P%02d", i)), joinAttr(i - 1)}
		rels[i] = relation.MustRelation(fmt.Sprintf("R%02d", i), relation.MustSchema(attrs...))
		fillRelation(rels[i], cfg, rng, i)
	}
	return relation.NewDatabase(rels...)
}

// Cycle generates a cycle-connected database (Ri joins R(i±1 mod n)).
// Cycles of length > 2 are not γ-acyclic, exercising the generality of
// INCREMENTALFD beyond the outerjoin method.
func Cycle(cfg Config) (*relation.Database, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Relations < 3 {
		return nil, fmt.Errorf("workload: cycle needs at least three relations")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rels := make([]*relation.Relation, cfg.Relations)
	for i := 0; i < cfg.Relations; i++ {
		attrs := []relation.Attribute{
			relation.Attribute(fmt.Sprintf("P%02d", i)),
			joinAttr(i),
			joinAttr((i + cfg.Relations - 1) % cfg.Relations),
		}
		rels[i] = relation.MustRelation(fmt.Sprintf("R%02d", i), relation.MustSchema(attrs...))
		fillRelation(rels[i], cfg, rng, i)
	}
	return relation.NewDatabase(rels...)
}

// Clique generates a database whose relations all share one join
// attribute J (every pair connected). With imp(t)=1 for all t, the
// highest fsum tuple set answers natural-join emptiness — the workload
// behind Proposition 5.1's hardness experiment.
func Clique(cfg Config) (*relation.Database, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rels := make([]*relation.Relation, cfg.Relations)
	for i := 0; i < cfg.Relations; i++ {
		attrs := []relation.Attribute{
			relation.Attribute(fmt.Sprintf("P%02d", i)), "J00"}
		rels[i] = relation.MustRelation(fmt.Sprintf("R%02d", i), relation.MustSchema(attrs...))
		fillRelation(rels[i], cfg, rng, i)
	}
	return relation.NewDatabase(rels...)
}

// Random generates a database over a random connected schema graph:
// a random spanning tree plus extra edges added with probability
// extraEdgeProb. Each edge gets its own join attribute.
func Random(cfg Config, extraEdgeProb float64) (*relation.Database, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Relations
	attrsOf := make([][]relation.Attribute, n)
	for i := 0; i < n; i++ {
		attrsOf[i] = []relation.Attribute{relation.Attribute(fmt.Sprintf("P%02d", i))}
	}
	edge := 0
	addEdge := func(a, b int) {
		j := joinAttr(edge)
		edge++
		attrsOf[a] = append(attrsOf[a], j)
		attrsOf[b] = append(attrsOf[b], j)
	}
	// Random spanning tree: attach each vertex to a random earlier one.
	for i := 1; i < n; i++ {
		addEdge(rng.Intn(i), i)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() < extraEdgeProb {
				addEdge(a, b)
			}
		}
	}
	rels := make([]*relation.Relation, n)
	for i := 0; i < n; i++ {
		rels[i] = relation.MustRelation(fmt.Sprintf("R%02d", i), relation.MustSchema(attrsOf[i]...))
		fillRelation(rels[i], cfg, rng, i)
	}
	return relation.NewDatabase(rels...)
}

func joinAttr(i int) relation.Attribute {
	return relation.Attribute(fmt.Sprintf("J%02d", i))
}

// fillRelation populates rel with cfg.TuplesPerRelation random tuples.
// Join attributes (J*) draw from the shared domain with the configured
// null rate; payload attributes (P*) are unique per tuple.
func fillRelation(rel *relation.Relation, cfg Config, rng *rand.Rand, relIdx int) {
	schema := rel.Schema()
	for t := 0; t < cfg.TuplesPerRelation; t++ {
		tuple := relation.Tuple{
			Label:  fmt.Sprintf("%s_t%d", rel.Name(), t),
			Values: make([]relation.Value, schema.Len()),
			Imp:    1,
			Prob:   1,
		}
		for p, a := range schema.Attributes() {
			if a[0] == 'P' {
				tuple.Values[p] = relation.V(fmt.Sprintf("p%d_%d", relIdx, t))
				continue
			}
			if cfg.NullRate > 0 && rng.Float64() < cfg.NullRate {
				continue // stays ⊥
			}
			tuple.Values[p] = relation.V(fmt.Sprintf("v%d", rng.Intn(cfg.Domain)))
		}
		if cfg.ImpMax > 1 {
			tuple.Imp = 1 + rng.Float64()*(cfg.ImpMax-1)
		}
		if err := rel.AppendTuple(tuple); err != nil {
			panic(err) // unreachable: tuple built to match schema
		}
	}
}
