// Package batch implements BatchFD, the behavioural stand-in for the
// full-disjunction algorithm of Kanza & Sagiv [3] that the paper
// improves upon. The pseudocode of [3] is not reproduced in the paper,
// but its two properties that matter for every comparison are:
//
//  1. it emits no tuple until the entire full disjunction has been
//     computed ("The algorithm of [3] does not return any tuples until
//     all processing is complete", §1), and
//  2. its total cost is O(s²n⁵f²), a factor of s·n² above
//     INCREMENTALFD's O(sn³f²) (§4, discussion after Corollary 4.9).
//
// BatchFD therefore (a) materialises all per-seed enumerations with
// unindexed linear-scan lists, (b) recomputes every result once per
// contained tuple instead of filtering early, (c) runs a final
// quadratic subsumption/duplicate sweep over the buffered output, and
// (d) re-verifies each surviving set with a full JCC check — extra
// passes over the input that reproduce the heavier complexity profile.
// See DESIGN.md ("Substitutions") for the calibration argument.
package batch

import (
	"repro/internal/relation"
	"repro/internal/tupleset"
)

// Stats counts the work performed by BatchFD.
type Stats struct {
	// Candidates is the number of tuple sets materialised before the
	// final sweep (including cross-seed duplicates).
	Candidates int
	// JCCChecks counts join-consistency predicate evaluations.
	JCCChecks int64
	// SweepComparisons counts the pairwise comparisons of the final
	// subsumption sweep.
	SweepComparisons int64
}

// FullDisjunction computes FD(R) and returns it only after the whole
// computation finishes — no result is observable earlier, matching the
// non-incremental behaviour of [3].
func FullDisjunction(db *relation.Database) ([]*tupleset.Set, Stats) {
	u := tupleset.NewUniverse(db)
	var stats Stats
	var buffer []*tupleset.Set
	for seed := 0; seed < db.NumRelations(); seed++ {
		buffer = append(buffer, enumerateSeed(u, seed, &stats)...)
	}
	stats.Candidates = len(buffer)

	// Final sweep: drop duplicates and subsumed sets quadratically.
	var out []*tupleset.Set
	for i, s := range buffer {
		keep := true
		for j, t := range buffer {
			if i == j {
				continue
			}
			stats.SweepComparisons++
			if t.ContainsAll(s) && (s.Len() < t.Len() || j < i) {
				keep = false
				break
			}
		}
		if keep {
			// Re-verify with the assumption-free JCC predicate — an
			// extra full pass over the set against the whole database
			// schema, part of the deliberately heavier profile.
			stats.JCCChecks++
			if u.JCC(s) {
				out = append(out, s)
			}
		}
	}
	return out, stats
}

// enumerateSeed produces every maximal JCC set containing a tuple of
// the seed relation, with unindexed lists and no cross-seed reuse.
func enumerateSeed(u *tupleset.Universe, seed int, stats *Stats) []*tupleset.Set {
	db := u.DB
	var incomplete []*tupleset.Set
	rel := db.Relation(seed)
	for i := 0; i < rel.Len(); i++ {
		incomplete = append(incomplete, u.Singleton(relation.Ref{Rel: int32(seed), Idx: int32(i)}))
	}
	var complete []*tupleset.Set
	for len(incomplete) > 0 {
		T := incomplete[0]
		incomplete = incomplete[1:]
		// Maximal extension, re-scanning the whole database each sweep.
		for changed := true; changed; {
			changed = false
			db.ForEachRef(func(ref relation.Ref) bool {
				if T.Has(ref) {
					return true
				}
				stats.JCCChecks++
				if u.JCCWithTuple(T, ref) {
					T.Add(ref)
					changed = true
				}
				return true
			})
		}
		// Candidate discovery with linear scans over both lists.
		db.ForEachRef(func(tb relation.Ref) bool {
			if T.Has(tb) {
				return true
			}
			tPrime := u.MaximalSubsetWith(T, tb)
			stats.JCCChecks++
			if !tPrime.HasRelation(seed) {
				return true
			}
			for _, s := range complete {
				if s.ContainsAll(tPrime) {
					return true
				}
			}
			for k, s := range incomplete {
				stats.JCCChecks++
				if u.UnionJCC(s, tPrime) {
					incomplete[k] = u.Union(s, tPrime)
					return true
				}
			}
			incomplete = append(incomplete, tPrime)
			return true
		})
		complete = append(complete, T)
	}
	return complete
}
