package batch

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/workload"
)

func TestBatchMatchesOracleAndCore(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		db, err := workload.Random(workload.Config{
			Relations: 4, TuplesPerRelation: 4, Domain: 3, NullRate: 0.2, Seed: seed}, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		got, stats := FullDisjunction(db)
		var gotStr []string
		for _, s := range got {
			gotStr = append(gotStr, s.Format(db))
		}
		sort.Strings(gotStr)

		var wantStr []string
		for _, s := range naive.FullDisjunction(db) {
			wantStr = append(wantStr, s.Format(db))
		}
		sort.Strings(wantStr)
		if len(gotStr) != len(wantStr) {
			t.Fatalf("seed %d: batch %v, oracle %v", seed, gotStr, wantStr)
		}
		for i := range wantStr {
			if gotStr[i] != wantStr[i] {
				t.Fatalf("seed %d: batch %v, oracle %v", seed, gotStr, wantStr)
			}
		}
		// The core algorithm agrees too.
		coreSets, _, err := core.FullDisjunction(db, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(coreSets) != len(got) {
			t.Errorf("seed %d: core %d results, batch %d", seed, len(coreSets), len(got))
		}
		// Candidates must exceed output size whenever a result has >1
		// tuple (per-tuple recomputation).
		multi := false
		for _, s := range got {
			if s.Len() > 1 {
				multi = true
			}
		}
		if multi && stats.Candidates <= len(got) {
			t.Errorf("seed %d: candidates %d not above output %d", seed, stats.Candidates, len(got))
		}
	}
}

func TestBatchTourist(t *testing.T) {
	db := workload.Tourist()
	got, stats := FullDisjunction(db)
	if len(got) != 6 {
		t.Fatalf("batch FD has %d results, want 6", len(got))
	}
	// Each result is re-derived once per contained tuple: the six
	// results of Table 2 hold 13 tuples in total.
	if stats.Candidates != 13 {
		t.Errorf("candidates = %d, want 13 (sum of result sizes)", stats.Candidates)
	}
	if stats.SweepComparisons == 0 {
		t.Error("final sweep did not run")
	}
}

func TestBatchDoesMoreWorkThanIncremental(t *testing.T) {
	db, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 8, Domain: 3, NullRate: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, batchStats := FullDisjunction(db)
	_, coreStats, err := core.FullDisjunction(db, core.Options{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if batchStats.JCCChecks <= coreStats.JCCChecks {
		t.Errorf("batch JCC checks %d not above incremental %d",
			batchStats.JCCChecks, coreStats.JCCChecks)
	}
}
