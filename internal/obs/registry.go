// Package obs is the dependency-free observability layer: a
// concurrency-safe metrics registry (counters, gauges, histograms with
// fixed log-scale latency buckets) exposed in Prometheus text format,
// and per-query execution traces — structured span trees carrying
// engine counter deltas — that give an EXPLAIN-ANALYZE view of any
// query (docs/OBSERVABILITY.md catalogues both).
//
// Everything is nil-safe: methods on a nil *Registry, *Counter, *Gauge,
// *Histogram, *Trace or *Span are no-ops, so instrumented hot paths pay
// exactly one nil check when observability is off (the invariant
// BenchmarkObsOverhead guards).
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric types, rendered in the Prometheus # TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Registry is a concurrency-safe collection of metric families. Metrics
// are registered lazily: the first Counter/Gauge/Histogram call with a
// name creates the family, later calls with the same name and label set
// return the same metric. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order, for stable exposition
}

type family struct {
	name, help, typ string
	mu              sync.Mutex
	metrics         map[string]any // key = rendered label pairs
	order           []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, metrics: make(map[string]any)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	return f
}

// get returns the metric of the family with exactly these labels,
// creating it with make on first use.
func (f *family) get(labels []string, make func() any) any {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.metrics[key]
	if !ok {
		m = make()
		f.metrics[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// Counter returns the monotonically increasing counter of that name and
// label pairs (alternating key, value), registering it on first use.
// Nil-safe: a nil registry returns a nil counter whose methods no-op.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, typeCounter)
	return f.get(labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge of that name and label pairs, registering it
// on first use. Nil-safe like Counter.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, typeGauge)
	return f.get(labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram of that name and label pairs,
// registering it on first use with the package's fixed log-scale
// latency buckets (LatencyBuckets). Nil-safe like Counter.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	f := r.family(name, help, typeHistogram)
	return f.get(labels, func() any { return newHistogram() }).(*Histogram)
}

// Counter is a monotonically increasing count. The zero value is ready
// to use; all methods are safe for concurrent use and no-ops on nil.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (which must be non-negative; negative deltas are
// dropped — counters only go up).
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use and no-ops on nil.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// LatencyBuckets are the fixed log-scale histogram bucket upper bounds,
// in seconds: 1µs × 4ⁿ up to ~17s, then +Inf. One fixed ladder for
// every latency histogram keeps exposition size bounded and makes
// histograms of different operations directly comparable.
var LatencyBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6,
	1024e-6, 4096e-6, 16384e-6, 65536e-6,
	262144e-6, 1.048576, 4.194304, 16.777216,
}

// Histogram counts observations into the fixed LatencyBuckets ladder
// plus a +Inf overflow, tracking the running sum and count. All methods
// are safe for concurrent use and no-ops on nil.
type Histogram struct {
	buckets []atomic.Int64 // len(LatencyBuckets)+1; last = +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Int64, len(LatencyBuckets)+1)}
}

// Observe records one observation of v (in seconds for latencies,
// though any non-negative unit works against the same ladder).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(LatencyBuckets, v) // first bound ≥ v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCounts returns the cumulative per-bucket counts (Prometheus
// histogram semantics: entry i counts observations ≤ LatencyBuckets[i],
// the final entry equals Count).
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// renderLabels renders alternating key, value pairs as a canonical
// `{k="v",...}` fragment ("" for no labels). Keys keep caller order —
// callers pass a fixed order per call site, which Prometheus accepts.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text
// format: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string per the Prometheus text format:
// backslash and newline (quotes are legal there).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(v)
}

// formatValue renders a sample value: integral floats print as
// integers, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), families in registration
// order, series in creation order. Safe to call concurrently with
// metric updates; each sample is an atomic read.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		metrics := make([]any, len(keys))
		for i, k := range keys {
			metrics[i] = f.metrics[k]
		}
		f.mu.Unlock()
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		for i, key := range keys {
			if err := writeMetric(w, f.name, key, metrics[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeMetric(w io.Writer, name, key string, m any) error {
	switch v := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, key, v.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, key, v.Value())
		return err
	case *Histogram:
		// The _bucket series re-opens the label set to append le; an
		// unlabelled histogram opens a fresh one.
		open := "{"
		if key != "" {
			open = key[:len(key)-1] + ","
		}
		counts := v.BucketCounts()
		for i, bound := range LatencyBuckets {
			if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"%s\"} %d\n",
				name, open, formatValue(bound), counts[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n",
			name, open, counts[len(counts)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, key, formatValue(v.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, key, v.Count())
		return err
	default:
		return fmt.Errorf("obs: unknown metric type %T", m)
	}
}

// Handler serves the registry in Prometheus text format — the GET
// /metrics endpoint. A nil registry serves an empty (valid) exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
