package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace is one query's execution trace: a span tree recorded while the
// query runs and serialisable as JSON once (or while) it does — the
// EXPLAIN-ANALYZE view behind GET /queries/{id}/trace and fdcli -trace.
//
// Recording is safe for concurrent use (parallel enumeration tasks
// report spans from worker goroutines); a nil *Trace or *Span no-ops
// every method, so tracing can be compiled into a hot path behind one
// nil check.
type Trace struct {
	mu   sync.Mutex
	id   string
	now  func() time.Time
	root *Span
}

// Span is one timed step of a trace. Spans form a tree: a query's root
// span holds validate/cache/admission/open/page children, a page span
// holds the parallel task spans that completed during it, and so on.
// Stats carries the engine counter deltas attributed to the span (the
// core.Stats fields, by name) — summing the "page" spans' deltas of a
// drained query reproduces the cursor's final counters.
type Span struct {
	Name string `json:"name"`
	// Attrs are small key=value annotations (page size, task label…).
	Attrs map[string]string `json:"attrs,omitempty"`
	// StartUnixNano anchors the span on the wall clock; DurationNanos
	// is its measured extent (0 while still open).
	StartUnixNano int64 `json:"start_unix_nano"`
	DurationNanos int64 `json:"duration_nanos"`
	// Stats holds the engine counter deltas attributed to this span.
	Stats map[string]int64 `json:"stats,omitempty"`
	// Children are the sub-spans, in completion-recording order.
	Children []*Span `json:"children,omitempty"`

	t      *Trace // nil after snapshotting
	parent *Span
}

// NewTrace starts a trace identified by id. The clock defaults to
// time.Now; pass now for deterministic tests (nil keeps the default).
func NewTrace(id string, now func() time.Time) *Trace {
	if now == nil {
		now = time.Now
	}
	t := &Trace{id: id, now: now}
	t.root = &Span{Name: "query", StartUnixNano: now().UnixNano(), t: t}
	return t
}

// ID returns the trace id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil on nil), under which callers start
// top-level steps.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Start opens a child span under sp with alternating attr key, value
// pairs. Nil-safe: starting under a nil span returns nil.
func (sp *Span) Start(name string, attrs ...string) *Span {
	if sp == nil || sp.t == nil {
		return nil
	}
	t := sp.t
	child := &Span{Name: name, t: t, parent: sp}
	if len(attrs) > 0 {
		child.Attrs = attrMap(attrs)
	}
	// The clock is read under the lock: injected test clocks need not be
	// concurrency-safe themselves.
	t.mu.Lock()
	child.StartUnixNano = t.now().UnixNano()
	sp.Children = append(sp.Children, child)
	t.mu.Unlock()
	return child
}

// End closes the span, fixing its duration. Idempotent (the first End
// wins); no-op on nil.
func (sp *Span) End() {
	if sp == nil || sp.t == nil {
		return
	}
	t := sp.t
	t.mu.Lock()
	if sp.DurationNanos == 0 {
		sp.DurationNanos = t.now().UnixNano() - sp.StartUnixNano
	}
	t.mu.Unlock()
}

// Record appends an already-completed child span with an explicit
// wall-clock extent — for steps measured elsewhere (a parallel task
// times itself on its worker goroutine; a validate step runs before
// the trace exists). Negative durations clamp to zero. Nil-safe.
func (sp *Span) Record(name string, start time.Time, d time.Duration, stats map[string]int64, attrs ...string) *Span {
	if sp == nil || sp.t == nil {
		return nil
	}
	if d < 0 {
		d = 0
	}
	child := &Span{
		Name:          name,
		StartUnixNano: start.UnixNano(),
		DurationNanos: int64(d),
		Stats:         stats,
		t:             sp.t,
		parent:        sp,
	}
	if len(attrs) > 0 {
		child.Attrs = attrMap(attrs)
	}
	sp.t.mu.Lock()
	sp.Children = append(sp.Children, child)
	sp.t.mu.Unlock()
	return child
}

// SetStats attributes the engine counter deltas to the span, replacing
// any previous attribution. No-op on nil.
func (sp *Span) SetStats(stats map[string]int64) {
	if sp == nil || sp.t == nil {
		return
	}
	sp.t.mu.Lock()
	sp.Stats = stats
	sp.t.mu.Unlock()
}

// SetAttr sets one annotation on the span. No-op on nil.
func (sp *Span) SetAttr(key, value string) {
	if sp == nil || sp.t == nil {
		return
	}
	sp.t.mu.Lock()
	if sp.Attrs == nil {
		sp.Attrs = make(map[string]string, 1)
	}
	sp.Attrs[key] = value
	sp.t.mu.Unlock()
}

func attrMap(attrs []string) map[string]string {
	m := make(map[string]string, len(attrs)/2)
	for i := 0; i+1 < len(attrs); i += 2 {
		m[attrs[i]] = attrs[i+1]
	}
	return m
}

// TraceData is the immutable JSON form of a trace: what GET
// /queries/{id}/trace returns and fdcli -trace prints.
type TraceData struct {
	ID string `json:"id"`
	// Root is a deep copy of the span tree at snapshot time; open spans
	// appear with DurationNanos 0.
	Root *Span `json:"root"`
}

// Snapshot deep-copies the trace for serialisation. Safe to call while
// spans are still being recorded; the copy is detached (its spans
// cannot be extended). Nil-safe: a nil trace snapshots to nil.
func (t *Trace) Snapshot() *TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &TraceData{ID: t.id, Root: copySpan(t.root)}
}

func copySpan(sp *Span) *Span {
	out := &Span{
		Name:          sp.Name,
		StartUnixNano: sp.StartUnixNano,
		DurationNanos: sp.DurationNanos,
	}
	if len(sp.Attrs) > 0 {
		out.Attrs = make(map[string]string, len(sp.Attrs))
		for k, v := range sp.Attrs {
			out.Attrs[k] = v
		}
	}
	if len(sp.Stats) > 0 {
		out.Stats = make(map[string]int64, len(sp.Stats))
		for k, v := range sp.Stats {
			out.Stats[k] = v
		}
	}
	if len(sp.Children) > 0 {
		out.Children = make([]*Span, len(sp.Children))
		for i, c := range sp.Children {
			out.Children[i] = copySpan(c)
		}
	}
	return out
}

// MarshalJSON renders the snapshot; a nil trace renders as null.
func (t *Trace) MarshalJSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	return json.Marshal(t.Snapshot())
}

// Summary renders one line per span name aggregated across the tree —
// count, total duration, and the summed stats — ordered by total
// duration descending. The slow-query log emits it so a slow query is
// diagnosable from the log line alone.
func (d *TraceData) Summary() string {
	if d == nil || d.Root == nil {
		return ""
	}
	type agg struct {
		name  string
		count int
		nanos int64
	}
	byName := map[string]*agg{}
	var walk func(sp *Span)
	var order []string
	walk = func(sp *Span) {
		a, ok := byName[sp.Name]
		if !ok {
			a = &agg{name: sp.Name}
			byName[sp.Name] = a
			order = append(order, sp.Name)
		}
		a.count++
		a.nanos += sp.DurationNanos
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(d.Root)
	aggs := make([]*agg, 0, len(order))
	for _, n := range order {
		aggs = append(aggs, byName[n])
	}
	sort.SliceStable(aggs, func(i, j int) bool { return aggs[i].nanos > aggs[j].nanos })
	parts := make([]string, len(aggs))
	for i, a := range aggs {
		parts[i] = fmt.Sprintf("%s×%d=%s", a.name, a.count, time.Duration(a.nanos))
	}
	return strings.Join(parts, " ")
}

// SumStats sums the Stats deltas of every span with the given name
// across the tree — the check that the per-page deltas of a drained
// query reproduce the cursor's final counters.
func (d *TraceData) SumStats(spanName string) map[string]int64 {
	out := map[string]int64{}
	if d == nil || d.Root == nil {
		return out
	}
	var walk func(sp *Span)
	walk = func(sp *Span) {
		if sp.Name == spanName {
			for k, v := range sp.Stats {
				out[k] += v
			}
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(d.Root)
	return out
}

// FindAll returns every span with the given name, in tree
// (depth-first) order.
func (d *TraceData) FindAll(spanName string) []*Span {
	var out []*Span
	if d == nil || d.Root == nil {
		return out
	}
	var walk func(sp *Span)
	walk = func(sp *Span) {
		if sp.Name == spanName {
			out = append(out, sp)
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(d.Root)
	return out
}
