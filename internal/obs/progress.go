package obs

import "sync/atomic"

// Phase names the execution stage a live enumeration is in.
type Phase int32

// Execution phases, in their usual order. A cache-served query skips
// straight to PhaseCached: no cursor ever exists.
const (
	// PhaseIdle is the zero phase: no work has started.
	PhaseIdle Phase = iota
	// PhaseOpen covers cursor construction — where the ranked modes pay
	// their Fig 3 preprocessing.
	PhaseOpen
	// PhaseEnumerate covers result production.
	PhaseEnumerate
	// PhaseDone means the enumeration is exhausted or closed.
	PhaseDone
	// PhaseCached means results replay from a cache; the counters only
	// move as cached results are served.
	PhaseCached
)

// String returns the phase's wire name.
func (p Phase) String() string {
	switch p {
	case PhaseOpen:
		return "open"
	case PhaseEnumerate:
		return "enumerate"
	case PhaseDone:
		return "done"
	case PhaseCached:
		return "cached"
	default:
		return "idle"
	}
}

// Progress is the set of atomic counters a running enumeration keeps
// current: any goroutine can read a consistent-enough snapshot
// mid-flight without locking the step loop. Writers pay one atomic
// store per update, on the per-result path only — never per scanned
// tuple. All methods no-op on a nil receiver.
type Progress struct {
	phase      atomic.Int32
	tasksTotal atomic.Int64
	tasksDone  atomic.Int64
	scanned    atomic.Int64
	emitted    atomic.Int64
}

// SetPhase records the current execution phase.
func (p *Progress) SetPhase(ph Phase) {
	if p == nil {
		return
	}
	p.phase.Store(int32(ph))
}

// SetTasksTotal records how many partitioned tasks the run consists of
// (0 for unpartitioned, sequential execution).
func (p *Progress) SetTasksTotal(n int) {
	if p == nil {
		return
	}
	p.tasksTotal.Store(int64(n))
}

// TaskDone counts one finished parallel task.
func (p *Progress) TaskDone() {
	if p == nil {
		return
	}
	p.tasksDone.Add(1)
}

// SetScanned records the absolute tuples-scanned total so far.
func (p *Progress) SetScanned(n int64) {
	if p == nil {
		return
	}
	p.scanned.Store(n)
}

// AddEmitted counts n more results produced.
func (p *Progress) AddEmitted(n int64) {
	if p == nil {
		return
	}
	p.emitted.Add(n)
}

// ProgressData is a point-in-time view of a Progress — the
// GET /queries/{id}/progress payload core.
type ProgressData struct {
	// Phase is the current execution phase ("idle", "open",
	// "enumerate", "done", "cached").
	Phase string `json:"phase"`
	// TasksDone / TasksTotal report partitioned-task completion;
	// both 0 when the run is not partitioned.
	TasksDone  int64 `json:"tasks_done"`
	TasksTotal int64 `json:"tasks_total"`
	// TuplesScanned is the engine's tuples-scanned counter, refreshed
	// per emitted result.
	TuplesScanned int64 `json:"tuples_scanned"`
	// ResultsEmitted counts results produced so far.
	ResultsEmitted int64 `json:"results_emitted"`
}

// Snapshot reads the counters. Each field is individually atomic; the
// set is not a single linearisation point, which live progress display
// does not need. Nil yields the zero snapshot.
func (p *Progress) Snapshot() ProgressData {
	if p == nil {
		return ProgressData{Phase: PhaseIdle.String()}
	}
	return ProgressData{
		Phase:          Phase(p.phase.Load()).String(),
		TasksDone:      p.tasksDone.Load(),
		TasksTotal:     p.tasksTotal.Load(),
		TuplesScanned:  p.scanned.Load(),
		ResultsEmitted: p.emitted.Load(),
	}
}
