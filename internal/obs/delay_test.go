package obs

import (
	"sync"
	"testing"
	"time"
)

// TestDelayObserve checks the tracker's arithmetic on known gaps:
// count, max, mean, sum, the conservative ladder quantile and the
// oldest-first ring.
func TestDelayObserve(t *testing.T) {
	d := NewDelay(4)
	gaps := []time.Duration{
		2 * time.Millisecond, 1 * time.Millisecond, 8 * time.Millisecond,
		3 * time.Millisecond, 5 * time.Millisecond,
	}
	for _, g := range gaps {
		d.Observe(g)
	}
	s := d.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.MaxMillis != 8 {
		t.Errorf("MaxMillis = %v, want 8", s.MaxMillis)
	}
	if s.SumMillis != 19 {
		t.Errorf("SumMillis = %v, want 19", s.SumMillis)
	}
	if want := 19.0 / 5; s.MeanMillis != want {
		t.Errorf("MeanMillis = %v, want %v", s.MeanMillis, want)
	}
	// The ladder quantile is the upper bound of the bucket holding the
	// quantile: conservative, so at least the true p99 (= max here) and
	// no more than one ladder step (×4) above it.
	if s.P99Millis < s.MaxMillis || s.P99Millis > 4*s.MaxMillis {
		t.Errorf("P99Millis = %v outside [max, 4·max] = [%v, %v]",
			s.P99Millis, s.MaxMillis, 4*s.MaxMillis)
	}
	// Ring of 4: the first gap fell off; the rest arrive oldest first.
	want := []float64{1, 8, 3, 5}
	if len(s.LastMillis) != len(want) {
		t.Fatalf("LastMillis = %v, want %v", s.LastMillis, want)
	}
	for i := range want {
		if s.LastMillis[i] != want[i] {
			t.Fatalf("LastMillis = %v, want %v", s.LastMillis, want)
		}
	}
}

// TestDelayNegativeClamped: a clock step backwards must not poison the
// summary with negative gaps.
func TestDelayNegativeClamped(t *testing.T) {
	d := NewDelay(0)
	d.Observe(-5 * time.Millisecond)
	s := d.Snapshot()
	if s.Count != 1 || s.SumMillis != 0 || s.MaxMillis != 0 {
		t.Errorf("negative gap recorded as %+v, want clamped to zero", s)
	}
}

// TestDelaySink checks every observation reaches the sink, in seconds,
// in order.
func TestDelaySink(t *testing.T) {
	d := NewDelay(0)
	var got []float64
	d.SetSink(func(sec float64) { got = append(got, sec) })
	d.Observe(10 * time.Millisecond)
	d.Observe(20 * time.Millisecond)
	if len(got) != 2 || got[0] != 0.01 || got[1] != 0.02 {
		t.Errorf("sink saw %v, want [0.01 0.02]", got)
	}
}

// TestDelayNil: the nil-receiver contract of the package.
func TestDelayNil(t *testing.T) {
	var d *Delay
	d.SetSink(func(float64) { t.Error("sink on nil tracker") })
	d.Observe(time.Millisecond)
	if s := d.Snapshot(); s.Count != 0 || s.SumMillis != 0 || s.LastMillis != nil {
		t.Errorf("nil Snapshot = %+v", s)
	}
}

// TestDelayConcurrent hammers Observe and Snapshot from separate
// goroutines; meaningful under -race.
func TestDelayConcurrent(t *testing.T) {
	d := NewDelay(8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = d.Snapshot()
			}
		}
	}()
	for i := 0; i < 1000; i++ {
		d.Observe(time.Duration(i) * time.Microsecond)
	}
	close(stop)
	wg.Wait()
	if s := d.Snapshot(); s.Count != 1000 {
		t.Errorf("Count = %d, want 1000", s.Count)
	}
}

// TestProgressCounters checks phases and counters read back, and that
// the nil receiver no-ops.
func TestProgressCounters(t *testing.T) {
	var p *Progress
	p.SetPhase(PhaseEnumerate) // must not panic
	p.TaskDone()
	if s := p.Snapshot(); s != (ProgressData{Phase: "idle"}) {
		t.Errorf("nil Snapshot = %+v", s)
	}

	p = &Progress{}
	if got := p.Snapshot().Phase; got != "idle" {
		t.Errorf("zero phase = %q, want idle", got)
	}
	p.SetPhase(PhaseOpen)
	p.SetTasksTotal(4)
	p.TaskDone()
	p.TaskDone()
	p.SetScanned(128)
	p.AddEmitted(3)
	p.SetPhase(PhaseEnumerate)
	s := p.Snapshot()
	want := ProgressData{Phase: "enumerate", TasksDone: 2, TasksTotal: 4,
		TuplesScanned: 128, ResultsEmitted: 3}
	if s != want {
		t.Errorf("Snapshot = %+v, want %+v", s, want)
	}
	for ph, name := range map[Phase]string{
		PhaseIdle: "idle", PhaseOpen: "open", PhaseEnumerate: "enumerate",
		PhaseDone: "done", PhaseCached: "cached", Phase(99): "idle",
	} {
		if ph.String() != name {
			t.Errorf("Phase(%d).String() = %q, want %q", ph, ph.String(), name)
		}
	}
}
