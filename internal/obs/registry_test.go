package obs

import (
	"bufio"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrency hammers one counter, one labelled counter
// family, one gauge and one histogram from many goroutines and asserts
// the sums are exact — the registry's concurrency contract, enforced
// under -race by CI.
func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("c_total", "plain counter").Inc()
				r.Counter("lc_total", "labelled counter", "db", fmt.Sprintf("d%d", g%4)).Add(2)
				r.Gauge("g", "gauge").Add(1)
				r.Histogram("h_seconds", "histogram").Observe(0.001)
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c_total", "").Value(); got != goroutines*per {
		t.Errorf("c_total = %d, want %d", got, goroutines*per)
	}
	var labelled int64
	for d := 0; d < 4; d++ {
		labelled += r.Counter("lc_total", "", "db", fmt.Sprintf("d%d", d)).Value()
	}
	if labelled != goroutines*per*2 {
		t.Errorf("lc_total sum = %d, want %d", labelled, goroutines*per*2)
	}
	if got := r.Gauge("g", "").Value(); got != goroutines*per {
		t.Errorf("g = %d, want %d", got, goroutines*per)
	}
	h := r.Histogram("h_seconds", "")
	if h.Count() != goroutines*per {
		t.Errorf("h count = %d, want %d", h.Count(), goroutines*per)
	}
	want := 0.001 * goroutines * per
	if got := h.Sum(); got < want*0.999 || got > want*1.001 {
		t.Errorf("h sum = %g, want ≈ %g", got, want)
	}
}

// TestHistogramBucketBoundaries pins the fixed log-scale ladder's edge
// behaviour: a value exactly on a bound lands in that bound's bucket
// (le semantics), one above lands in the next, and values beyond the
// last bound only count toward +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram()
	h.Observe(LatencyBuckets[0])                         // exactly 1µs → bucket 0
	h.Observe(LatencyBuckets[0] * 1.5)                   // 1.5µs → bucket 1
	h.Observe(0)                                         // below the ladder → bucket 0
	h.Observe(LatencyBuckets[len(LatencyBuckets)-1] + 1) // beyond → +Inf
	counts := h.BucketCounts()
	// Cumulative: bucket 0 holds the two ≤1µs observations.
	if counts[0] != 2 {
		t.Errorf("bucket[0] = %d, want 2", counts[0])
	}
	if counts[1] != 3 {
		t.Errorf("bucket[1] = %d, want 3 (cumulative)", counts[1])
	}
	last := counts[len(counts)-1]
	if last != 4 {
		t.Errorf("+Inf bucket = %d, want 4 (== count)", last)
	}
	if counts[len(counts)-2] != 3 {
		t.Errorf("largest finite bucket = %d, want 3", counts[len(counts)-2])
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	// The ladder must be strictly increasing (SearchFloat64s depends on it).
	for i := 1; i < len(LatencyBuckets); i++ {
		if LatencyBuckets[i] <= LatencyBuckets[i-1] {
			t.Fatalf("LatencyBuckets not strictly increasing at %d", i)
		}
	}
}

// TestPrometheusEscaping pins the text-format escaping rules: label
// values escape backslash, quote and newline; HELP escapes backslash
// and newline.
func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "help with \\ and\nnewline", "db", "we\"ird\\na\nme").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP e_total help with \\ and\nnewline`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `e_total{db="we\"ird\\na\nme"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

// TestNilSafety: every method on nil receivers must no-op — the
// registry-off invariant the instrumented hot paths rely on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x", "").Inc()
	r.Gauge("x", "").Set(1)
	r.Histogram("x", "").Observe(1)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var tr *Trace
	sp := tr.Root().Start("a")
	sp.SetStats(map[string]int64{"x": 1})
	sp.SetAttr("k", "v")
	sp.End()
	if tr.Snapshot() != nil {
		t.Error("nil trace snapshot not nil")
	}
	if tr.ID() != "" {
		t.Error("nil trace id not empty")
	}
}

// TestWritePrometheusParses walks the full exposition line by line and
// checks well-formedness: every non-comment line is `name{labels} value`
// with a parseable value, every series is preceded by its HELP/TYPE
// pair, and histogram series carry _bucket/_sum/_count suffixes.
func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("q_total", "queries", "db", "w", "mode", "exact").Add(3)
	r.Counter("q_total", "queries", "db", "d", "mode", "approx").Add(1)
	r.Gauge("active", "active sessions").Set(2)
	h := r.Histogram("lat_seconds", "latency")
	h.Observe(0.002)
	h.Observe(3e-6)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	typed := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	n := 0
	for sc.Scan() {
		line := sc.Text()
		n++
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[fields[2]] = fields[3]
			continue
		}
		name, value, ok := splitSample(line)
		if !ok {
			t.Fatalf("malformed sample line: %q", line)
		}
		var f float64
		if _, err := fmt.Sscanf(value, "%g", &f); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if _, ok := typed[name]; !ok {
			if _, ok := typed[base]; !ok {
				t.Fatalf("sample %q not preceded by a TYPE line", line)
			}
		}
	}
	if n < 10 {
		t.Fatalf("suspiciously short exposition (%d lines):\n%s", n, b.String())
	}
	if typed["q_total"] != "counter" || typed["active"] != "gauge" || typed["lat_seconds"] != "histogram" {
		t.Errorf("TYPE lines wrong: %v", typed)
	}
	for _, want := range []string{
		`q_total{db="w",mode="exact"} 3`,
		`active 2`,
		`lat_seconds_count 2`,
		`lat_seconds_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

// splitSample splits `name{...} value` or `name value` into the series
// name (with labels stripped) and the value text.
func splitSample(line string) (name, value string, ok bool) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", false
		}
		return line[:i], strings.TrimSpace(line[j+1:]), true
	}
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return "", "", false
	}
	return fields[0], fields[1], true
}

// TestTraceSpanTree exercises the recorder: nested spans, stats
// attribution, concurrent child recording, snapshot detachment, and
// the Summary/SumStats helpers.
func TestTraceSpanTree(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { clock = clock.Add(time.Millisecond); return clock }
	tr := NewTrace("q1", now)
	open := tr.Root().Start("open")
	open.SetStats(map[string]int64{"iterations": 2})
	open.End()
	var wg sync.WaitGroup
	page := tr.Root().Start("next", "k", "7")
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := page.Start("task", "label", fmt.Sprintf("t%d", i))
			sp.SetStats(map[string]int64{"iterations": 1})
			sp.End()
		}(i)
	}
	wg.Wait()
	page.SetStats(map[string]int64{"iterations": 8, "emitted": 8})
	page.End()

	d := tr.Snapshot()
	if d.ID != "q1" {
		t.Errorf("id = %q", d.ID)
	}
	if len(d.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(d.Root.Children))
	}
	if got := len(d.FindAll("task")); got != 8 {
		t.Errorf("task spans = %d, want 8", got)
	}
	if got := d.SumStats("task")["iterations"]; got != 8 {
		t.Errorf("task iterations sum = %d, want 8", got)
	}
	if got := d.SumStats("next")["emitted"]; got != 8 {
		t.Errorf("next emitted sum = %d, want 8", got)
	}
	if d.Root.Children[1].Attrs["k"] != "7" {
		t.Errorf("page attrs = %v", d.Root.Children[1].Attrs)
	}
	for _, sp := range d.FindAll("task") {
		if sp.DurationNanos <= 0 {
			t.Errorf("task span has no duration")
		}
	}
	// Snapshot is detached: extending the copy must not be possible.
	if d.Root.Start("after") != nil {
		t.Error("snapshot span accepted a child")
	}
	sum := d.Summary()
	for _, want := range []string{"task×8", "next×1", "open×1"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary %q missing %q", sum, want)
		}
	}
}
