package obs

import (
	"sort"
	"sync"
	"time"
)

// DefaultDelayRing is the last-N window a Delay keeps when the caller
// does not choose one.
const DefaultDelayRing = 32

// Delay tracks the inter-result gaps of one enumeration — the measured
// form of the paper's polynomial-delay guarantee. Each Observe records
// the gap between two consecutive results into a log-ladder histogram
// (the LatencyBuckets bounds shared with the metrics registry), a
// running maximum and sum, and a bounded ring of the most recent gaps,
// so a snapshot answers "how far apart are results arriving right now,
// at worst, and at the 99th percentile" without retaining the full
// series.
//
// A Delay is safe for concurrent use: the enumeration observes while
// other goroutines snapshot. All methods no-op on a nil receiver, so an
// uninstrumented cursor pays one nil check.
type Delay struct {
	mu      sync.Mutex
	sink    func(seconds float64)
	count   int64
	sum     float64 // seconds
	max     float64 // seconds
	buckets []int64 // len(LatencyBuckets)+1; last = +Inf
	ring    []float64
	next    int
	full    bool
}

// NewDelay creates a tracker keeping the last ring gaps (≤0 selects
// DefaultDelayRing).
func NewDelay(ring int) *Delay {
	if ring <= 0 {
		ring = DefaultDelayRing
	}
	return &Delay{
		buckets: make([]int64, len(LatencyBuckets)+1),
		ring:    make([]float64, 0, ring),
	}
}

// SetSink installs a callback invoked with every observed gap, in
// seconds, after it is recorded — the seam the service layer uses to
// feed a registry histogram and the delay-SLO watchdog. The sink runs
// on the observing goroutine, outside the tracker's lock; it must be
// set before the first Observe.
func (d *Delay) SetSink(fn func(seconds float64)) {
	if d == nil {
		return
	}
	d.sink = fn
}

// Observe records one inter-result gap.
func (d *Delay) Observe(gap time.Duration) {
	if d == nil {
		return
	}
	sec := gap.Seconds()
	if sec < 0 {
		sec = 0
	}
	d.mu.Lock()
	d.count++
	d.sum += sec
	if sec > d.max {
		d.max = sec
	}
	d.buckets[sort.SearchFloat64s(LatencyBuckets, sec)]++
	if len(d.ring) < cap(d.ring) {
		d.ring = append(d.ring, sec)
	} else {
		d.ring[d.next] = sec
		d.full = true
	}
	d.next = (d.next + 1) % cap(d.ring)
	d.mu.Unlock()
	if d.sink != nil {
		d.sink(sec)
	}
}

// DelaySummary is a point-in-time view of a Delay, in milliseconds —
// the unit trace attributes, progress reports and bench records share.
type DelaySummary struct {
	// Count is the number of gaps observed.
	Count int64 `json:"count"`
	// MaxMillis is the largest gap seen — the empirical delay bound.
	MaxMillis float64 `json:"max_ms"`
	// P99Millis is the 99th-percentile gap, read off the log ladder
	// (the upper bound of the bucket holding the quantile, so it is
	// conservative within one ladder step).
	P99Millis float64 `json:"p99_ms"`
	// MeanMillis is the average gap.
	MeanMillis float64 `json:"mean_ms"`
	// SumMillis is the total of all gaps — for a drained tight loop it
	// approximates the enumeration's wall time.
	SumMillis float64 `json:"sum_ms"`
	// LastMillis holds the most recent gaps, oldest first.
	LastMillis []float64 `json:"last_ms,omitempty"`
}

// Snapshot returns the tracker's current summary. Safe to call
// mid-enumeration from any goroutine; nil yields the zero summary.
func (d *Delay) Snapshot() DelaySummary {
	if d == nil {
		return DelaySummary{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := DelaySummary{
		Count:     d.count,
		MaxMillis: d.max * 1e3,
		SumMillis: d.sum * 1e3,
	}
	if d.count > 0 {
		s.MeanMillis = d.sum / float64(d.count) * 1e3
		s.P99Millis = d.quantileLocked(0.99) * 1e3
	}
	if n := len(d.ring); n > 0 {
		s.LastMillis = make([]float64, 0, n)
		start := 0
		if d.full {
			start = d.next
		}
		for i := 0; i < n; i++ {
			s.LastMillis = append(s.LastMillis, d.ring[(start+i)%n]*1e3)
		}
	}
	return s
}

// quantileLocked reads quantile q off the ladder: the upper bound of
// the first bucket whose cumulative count reaches q·count. The +Inf
// bucket reports the running max (the only finite bound available).
func (d *Delay) quantileLocked(q float64) float64 {
	target := int64(q * float64(d.count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range d.buckets {
		cum += c
		if cum >= target {
			if i < len(LatencyBuckets) {
				return LatencyBuckets[i]
			}
			return d.max
		}
	}
	return d.max
}
