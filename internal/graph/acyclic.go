package graph

import (
	"sort"

	"repro/internal/relation"
)

// AlphaAcyclic reports whether the schema hypergraph of db (one
// hyperedge per relation, vertices are attributes) is α-acyclic,
// decided with the GYO reduction:
//
//	repeat until no rule applies:
//	  (1) delete a vertex that occurs in exactly one hyperedge ("ear"
//	      vertex);
//	  (2) delete a hyperedge contained in another hyperedge.
//
// The hypergraph is α-acyclic iff the reduction empties it.
//
// The Rajaraman–Ullman outerjoin method requires the stronger property
// of γ-acyclicity; γ-acyclic ⟹ α-acyclic, so a negative answer here
// rules the baseline out, while a positive answer plus a tree-shaped
// connection graph covers the chain and star workloads we benchmark.
func AlphaAcyclic(db *relation.Database) bool {
	n := db.NumRelations()
	// edges[i] is the live attribute set of relation i (nil = deleted).
	edges := make([]map[relation.Attribute]bool, n)
	for i := 0; i < n; i++ {
		set := make(map[relation.Attribute]bool)
		for _, a := range db.Relation(i).Schema().Attributes() {
			set[a] = true
		}
		edges[i] = set
	}
	live := n
	for {
		changed := false
		// Rule 1: remove attributes occurring in at most one live edge.
		occ := make(map[relation.Attribute]int)
		for _, e := range edges {
			for a := range e {
				occ[a]++
			}
		}
		for i, e := range edges {
			if e == nil {
				continue
			}
			for a := range e {
				if occ[a] <= 1 {
					delete(edges[i], a)
					changed = true
				}
			}
		}
		// Rule 2: remove edges contained in another live edge (empty
		// edges are contained in any edge and are removed too).
		for i, e := range edges {
			if e == nil {
				continue
			}
			if len(e) == 0 {
				edges[i] = nil
				live--
				changed = true
				continue
			}
			for j, f := range edges {
				if i == j || f == nil {
					continue
				}
				if containsAll(f, e) && (len(f) > len(e) || i < j) {
					// Tie-break i<j so two identical edges delete only
					// one of the pair per pass.
					edges[i] = nil
					live--
					changed = true
					break
				}
			}
		}
		if live <= 1 {
			return true
		}
		if !changed {
			return false
		}
	}
}

func containsAll(outer, inner map[relation.Attribute]bool) bool {
	if len(inner) > len(outer) {
		return false
	}
	for a := range inner {
		if !outer[a] {
			return false
		}
	}
	return true
}

// BergeAcyclic reports whether the schema hypergraph of db is
// Berge-acyclic: its bipartite incidence graph (attributes on one side,
// relations on the other, an edge when the relation's schema mentions
// the attribute) contains no cycle. Berge-acyclicity is the strictest
// level of Fagin's acyclicity hierarchy — Berge ⟹ γ ⟹ β ⟹ α — so it is
// a sound (sufficient) gate for methods that require γ-acyclicity, such
// as the Rajaraman–Ullman outerjoin sequence, and unlike γ-acyclicity
// it has a trivially correct decision procedure.
//
// Attributes occurring in a single relation cannot lie on a cycle and
// are skipped, so payload columns do not affect the answer.
func BergeAcyclic(db *relation.Database) bool {
	n := db.NumRelations()
	// Union-find over relation vertices; each shared attribute links
	// all its relations in a star. A cycle exists iff some attribute
	// edge closes a loop — i.e. union finds the two endpoints already
	// connected — or an attribute pair is shared twice (multi-edge).
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, rels := range AttributeOccurrences(db) {
		if len(rels) < 2 {
			continue
		}
		// The attribute vertex with degree d contributes d-1 tree edges
		// in the incidence graph; it closes a cycle iff two of its
		// relations are already connected (through other attributes or
		// through this attribute's earlier links).
		for _, r := range rels[1:] {
			a, b := find(rels[0]), find(r)
			if a == b {
				return false
			}
			parent[a] = b
		}
	}
	return true
}

// AttributeOccurrences returns, for every attribute in the database,
// the sorted list of relations whose schema mentions it. Useful for
// diagnostics and for workload validation in tests.
func AttributeOccurrences(db *relation.Database) map[relation.Attribute][]int {
	occ := make(map[relation.Attribute][]int)
	for i := 0; i < db.NumRelations(); i++ {
		for _, a := range db.Relation(i).Schema().Attributes() {
			occ[a] = append(occ[a], i)
		}
	}
	for a := range occ {
		sort.Ints(occ[a])
	}
	return occ
}
