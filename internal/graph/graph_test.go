package graph

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/workload"
)

func chainDB(t *testing.T, n int) *relation.Database {
	t.Helper()
	db, err := workload.Chain(workload.Config{
		Relations: n, TuplesPerRelation: 1, Domain: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func starDB(t *testing.T, n int) *relation.Database {
	t.Helper()
	db, err := workload.Star(workload.Config{
		Relations: n, TuplesPerRelation: 1, Domain: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func cycleDB(t *testing.T, n int) *relation.Database {
	t.Helper()
	db, err := workload.Cycle(workload.Config{
		Relations: n, TuplesPerRelation: 1, Domain: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestConnectedTourist(t *testing.T) {
	c := NewConnection(workload.Tourist())
	if !c.Connected() {
		t.Error("tourist database must be connected")
	}
	if c.N() != 3 {
		t.Errorf("N = %d", c.N())
	}
	// All three relations share Country: a triangle.
	if c.IsTree() || c.IsChain() {
		t.Error("tourist connection graph is a triangle, not a tree")
	}
}

func TestShapes(t *testing.T) {
	chain := NewConnection(chainDB(t, 5))
	if !chain.Connected() || !chain.IsTree() || !chain.IsChain() {
		t.Error("chain must be a connected chain tree")
	}
	star := NewConnection(starDB(t, 5))
	if !star.Connected() || !star.IsTree() {
		t.Error("star must be a connected tree")
	}
	if star.IsChain() {
		t.Error("a 5-relation star is not a chain")
	}
	cycle := NewConnection(cycleDB(t, 5))
	if !cycle.Connected() {
		t.Error("cycle must be connected")
	}
	if cycle.IsTree() || cycle.IsChain() {
		t.Error("cycle is not a tree")
	}
}

func TestDisconnected(t *testing.T) {
	r1 := relation.MustRelation("R1", relation.MustSchema("A"))
	r1.MustAppend("", map[relation.Attribute]relation.Value{"A": relation.V("1")})
	r2 := relation.MustRelation("R2", relation.MustSchema("B"))
	r2.MustAppend("", map[relation.Attribute]relation.Value{"B": relation.V("1")})
	c := NewConnection(relation.MustDatabase(r1, r2))
	if c.Connected() {
		t.Error("disjoint relations must not be connected")
	}
	comps := c.Components()
	if len(comps) != 2 {
		t.Errorf("components = %v", comps)
	}
}

func TestComponentOf(t *testing.T) {
	// Chain 0-1-2-3-4 with member mask {0,1,3,4}: component of 0 is
	// {0,1}; component of 3 is {3,4}.
	c := NewConnection(chainDB(t, 5))
	members := []bool{true, true, false, true, true}
	comp := c.ComponentOf(0, members)
	want := []bool{true, true, false, false, false}
	for i := range want {
		if comp[i] != want[i] {
			t.Errorf("ComponentOf(0)[%d] = %v, want %v", i, comp[i], want[i])
		}
	}
	comp = c.ComponentOf(3, members)
	want = []bool{false, false, false, true, true}
	for i := range want {
		if comp[i] != want[i] {
			t.Errorf("ComponentOf(3)[%d] = %v, want %v", i, comp[i], want[i])
		}
	}
	// Start not a member: empty component.
	comp = c.ComponentOf(2, members)
	for i, in := range comp {
		if in {
			t.Errorf("non-member start: vertex %d included", i)
		}
	}
}

func TestSubsetConnected(t *testing.T) {
	c := NewConnection(chainDB(t, 5))
	cases := []struct {
		mask []bool
		want bool
	}{
		{[]bool{true, true, true, false, false}, true},
		{[]bool{true, false, true, false, false}, false},
		{[]bool{false, false, false, false, true}, true},
		{[]bool{false, false, false, false, false}, false},
	}
	for _, cse := range cases {
		if got := c.SubsetConnected(cse.mask); got != cse.want {
			t.Errorf("SubsetConnected(%v) = %v, want %v", cse.mask, got, cse.want)
		}
	}
}

func TestTreeOrder(t *testing.T) {
	c := NewConnection(starDB(t, 4))
	order, ok := c.TreeOrder(0)
	if !ok {
		t.Fatal("star must have a tree order")
	}
	if len(order) != 4 || order[0] != 0 {
		t.Errorf("order = %v", order)
	}
	seen := map[int]bool{order[0]: true}
	for _, v := range order[1:] {
		joined := false
		for _, nb := range c.Adjacent(v) {
			if seen[nb] {
				joined = true
			}
		}
		if !joined {
			t.Errorf("vertex %d appears before any neighbour", v)
		}
		seen[v] = true
	}
	cyc := NewConnection(cycleDB(t, 4))
	if _, ok := cyc.TreeOrder(0); ok {
		t.Error("cycle must not have a tree order")
	}
}

func TestAlphaAcyclic(t *testing.T) {
	if !AlphaAcyclic(chainDB(t, 6)) {
		t.Error("chain must be α-acyclic")
	}
	if !AlphaAcyclic(starDB(t, 6)) {
		t.Error("star must be α-acyclic")
	}
	if AlphaAcyclic(cycleDB(t, 4)) {
		t.Error("a 4-cycle with private join attributes is α-cyclic")
	}
	// The tourist schema is α-acyclic: Accommodations ⊇-dominates the
	// ear vertices and the shared Country/City attributes reduce away.
	if !AlphaAcyclic(workload.Tourist()) {
		t.Error("tourist schema must be α-acyclic")
	}
	// A single relation is trivially acyclic.
	r := relation.MustRelation("R", relation.MustSchema("A"))
	r.MustAppend("", map[relation.Attribute]relation.Value{"A": relation.V("1")})
	if !AlphaAcyclic(relation.MustDatabase(r)) {
		t.Error("single relation must be acyclic")
	}
}

func TestBergeAcyclic(t *testing.T) {
	if !BergeAcyclic(chainDB(t, 6)) {
		t.Error("chain must be Berge-acyclic")
	}
	if !BergeAcyclic(starDB(t, 6)) {
		t.Error("star must be Berge-acyclic")
	}
	if BergeAcyclic(cycleDB(t, 4)) {
		t.Error("cycle must not be Berge-acyclic")
	}
	// The tourist triangle: Country in three relations plus City in
	// two creates an incidence cycle (Accommodations–Country–Sites–
	// City–Accommodations).
	if BergeAcyclic(workload.Tourist()) {
		t.Error("tourist schema must not be Berge-acyclic")
	}
	// One attribute shared by many relations is a star in the
	// incidence graph: Berge-acyclic even though the connection graph
	// is a clique.
	clique, err := workload.Clique(workload.Config{
		Relations: 4, TuplesPerRelation: 1, Domain: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !BergeAcyclic(clique) {
		t.Error("single-attribute clique must be Berge-acyclic")
	}
	// Two relations sharing two attributes form a multi-edge: cyclic.
	r1 := relation.MustRelation("R1", relation.MustSchema("A", "B"))
	r1.MustAppend("", map[relation.Attribute]relation.Value{"A": relation.V("1")})
	r2 := relation.MustRelation("R2", relation.MustSchema("A", "B"))
	r2.MustAppend("", map[relation.Attribute]relation.Value{"A": relation.V("1")})
	if BergeAcyclic(relation.MustDatabase(r1, r2)) {
		t.Error("double-shared pair must not be Berge-acyclic")
	}
	// Berge ⟹ α on every workload we generate.
	for _, db := range []*relation.Database{chainDB(t, 5), starDB(t, 5), clique} {
		if BergeAcyclic(db) && !AlphaAcyclic(db) {
			t.Error("Berge-acyclic database reported α-cyclic (hierarchy violated)")
		}
	}
}

func TestBFSOrder(t *testing.T) {
	c := NewConnection(cycleDB(t, 5))
	order := c.BFSOrder(0)
	if len(order) != 5 || order[0] != 0 {
		t.Fatalf("order = %v", order)
	}
	seen := map[int]bool{0: true}
	for _, v := range order[1:] {
		adjacentToSeen := false
		for _, nb := range c.Adjacent(v) {
			if seen[nb] {
				adjacentToSeen = true
			}
		}
		if !adjacentToSeen {
			t.Errorf("vertex %d not adjacent to any earlier vertex", v)
		}
		seen[v] = true
	}
}

func TestAttributeOccurrences(t *testing.T) {
	occ := AttributeOccurrences(workload.Tourist())
	if got := occ["Country"]; len(got) != 3 {
		t.Errorf("Country occurs in %v", got)
	}
	if got := occ["Climate"]; len(got) != 1 || got[0] != 0 {
		t.Errorf("Climate occurs in %v", got)
	}
	if got := occ["City"]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("City occurs in %v", got)
	}
}
