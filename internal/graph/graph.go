// Package graph provides connectivity analysis over the relation
// connection graph of a database: the graph with one vertex per
// relation and an edge between two relations iff their schemas share an
// attribute (Section 2 of Cohen & Sagiv 2007).
//
// The package also implements the GYO reduction for hypergraph
// α-acyclicity and shape detection (trees, chains, stars), which the
// Rajaraman–Ullman outerjoin baseline needs: that baseline is only
// applicable to γ-acyclic schemas, and γ-acyclicity implies
// α-acyclicity (γ ⊂ α).
package graph

import (
	"math/bits"

	"repro/internal/relation"
)

// Connection is an adjacency view over the relations of a database.
// Besides the neighbour lists it precomputes per-vertex adjacency
// bitmasks ([]uint64 words), the representation the signature-based
// tuple-set predicates operate on.
type Connection struct {
	n     int
	words int
	adj   [][]int
	// adjBits[i] is the neighbour set of vertex i as bit words.
	adjBits [][]uint64
}

// NewConnection builds the connection graph of db.
func NewConnection(db *relation.Database) *Connection {
	n := db.NumRelations()
	words := (n + 63) / 64
	adj := make([][]int, n)
	adjBits := make([][]uint64, n)
	flat := make([]uint64, n*words)
	for i := 0; i < n; i++ {
		adj[i] = db.Adjacent(i)
		adjBits[i] = flat[i*words : (i+1)*words : (i+1)*words]
		for _, j := range adj[i] {
			adjBits[i][j/64] |= 1 << (uint(j) % 64)
		}
	}
	return &Connection{n: n, words: words, adj: adj, adjBits: adjBits}
}

// N returns the number of vertices (relations).
func (c *Connection) N() int { return c.n }

// Words returns the number of uint64 words of a vertex bitmask.
func (c *Connection) Words() int { return c.words }

// Adjacent returns the neighbours of vertex i.
func (c *Connection) Adjacent(i int) []int { return c.adj[i] }

// AdjacentBits returns the neighbour set of vertex i as bit words. The
// returned slice must not be modified.
func (c *Connection) AdjacentBits(i int) []uint64 { return c.adjBits[i] }

// TouchesBits reports whether vertex i is adjacent to any member of the
// given vertex bitmask.
func (c *Connection) TouchesBits(i int, members []uint64) bool {
	for w, word := range c.adjBits[i] {
		if word&members[w] != 0 {
			return true
		}
	}
	return false
}

// ComponentOfBitsInto computes the connected component containing start
// of the subgraph induced by the members bitmask, writing the result
// into out (which must have Words() entries; it is overwritten). start
// must be a member, otherwise out is left all-zero. It is the bitset
// counterpart of ComponentOf and allocates nothing.
func (c *Connection) ComponentOfBitsInto(out, members []uint64, start int) {
	for w := range out {
		out[w] = 0
	}
	if members[start/64]&(1<<(uint(start)%64)) == 0 {
		return
	}
	out[start/64] |= 1 << (uint(start) % 64)
	// Fixpoint propagation: every round ORs the adjacency masks of the
	// reached vertices, restricted to members, until nothing new is
	// added. Rounds are bounded by the graph diameter and relation
	// counts are small, so the quadratic worst case is irrelevant next
	// to the zero-allocation property this loop buys.
	if c.words == 1 {
		// ≤64 vertices: the whole walk runs on registers.
		reached, mem := out[0], members[0]
		for {
			next := reached
			word := reached
			for word != 0 {
				v := bits.TrailingZeros64(word)
				word &= word - 1
				next |= c.adjBits[v][0] & mem
			}
			if next == reached {
				out[0] = reached
				return
			}
			reached = next
		}
	}
	for changed := true; changed; {
		changed = false
		for w := 0; w < c.words; w++ {
			word := out[w]
			for word != 0 {
				v := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				for aw, amask := range c.adjBits[v] {
					add := amask & members[aw] &^ out[aw]
					if add != 0 {
						out[aw] |= add
						changed = true
					}
				}
			}
		}
	}
}

// SubsetConnectedBits reports whether the subgraph induced by the
// members bitmask is connected (and non-empty) — the bitset counterpart
// of SubsetConnected. scratch, when non-nil with Words() entries, is
// used as working storage so hot callers can avoid the allocation.
func (c *Connection) SubsetConnectedBits(members, scratch []uint64) bool {
	first := -1
	total := 0
	for w, word := range members {
		if word != 0 {
			if first < 0 {
				first = w*64 + bits.TrailingZeros64(word)
			}
			total += bits.OnesCount64(word)
		}
	}
	if total == 0 {
		return false
	}
	if scratch == nil {
		scratch = make([]uint64, c.words)
	}
	c.ComponentOfBitsInto(scratch, members, first)
	count := 0
	for _, word := range scratch {
		count += bits.OnesCount64(word)
	}
	return count == total
}

// Connected reports whether the whole graph is connected. A set of
// relations must be connected for its full disjunction to combine all
// of them (Section 2).
func (c *Connection) Connected() bool {
	if c.n == 0 {
		return false
	}
	seen := make([]bool, c.n)
	count := c.bfs(0, nil, seen)
	return count == c.n
}

// ComponentOf returns the vertices of the connected component of the
// subgraph induced by members that contains start. members[i] reports
// whether vertex i participates; start must be a member. The result is
// returned as a boolean inclusion vector aligned with members.
//
// This is the operation of footnote 3: after dropping tuples that are
// not join consistent with tb, keep the tuples whose relations lie in
// the connected component of tb's relation.
func (c *Connection) ComponentOf(start int, members []bool) []bool {
	inComp := make([]bool, c.n)
	if !members[start] {
		return inComp
	}
	queue := []int{start}
	inComp[start] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range c.adj[v] {
			if members[w] && !inComp[w] {
				inComp[w] = true
				queue = append(queue, w)
			}
		}
	}
	return inComp
}

// SubsetConnected reports whether the subgraph induced by the member
// vertices is connected (and non-empty). This is the connectivity half
// of the JCC predicate.
func (c *Connection) SubsetConnected(members []bool) bool {
	first := -1
	total := 0
	for i, m := range members {
		if m {
			total++
			if first < 0 {
				first = i
			}
		}
	}
	if total == 0 {
		return false
	}
	comp := c.ComponentOf(first, members)
	count := 0
	for _, in := range comp {
		if in {
			count++
		}
	}
	return count == total
}

// Components returns the connected components of the whole graph, each
// as a sorted list of vertex indices.
func (c *Connection) Components() [][]int {
	seen := make([]bool, c.n)
	var comps [][]int
	for i := 0; i < c.n; i++ {
		if seen[i] {
			continue
		}
		var comp []int
		c.bfs(i, &comp, seen)
		comps = append(comps, comp)
	}
	return comps
}

func (c *Connection) bfs(start int, out *[]int, seen []bool) int {
	queue := []int{start}
	seen[start] = true
	count := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		count++
		if out != nil {
			*out = append(*out, v)
		}
		for _, w := range c.adj[v] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return count
}

// IsTree reports whether the connection graph is a tree: connected with
// exactly n-1 edges. Chains and stars — the γ-acyclic workloads used by
// the outerjoin baseline — are trees.
func (c *Connection) IsTree() bool {
	if !c.Connected() {
		return false
	}
	edges := 0
	for _, nb := range c.adj {
		edges += len(nb)
	}
	edges /= 2
	return edges == c.n-1
}

// IsChain reports whether the connection graph is a simple path
// visiting every relation.
func (c *Connection) IsChain() bool {
	if !c.IsTree() {
		return false
	}
	deg2 := 0
	for _, nb := range c.adj {
		switch len(nb) {
		case 0:
			return c.n == 1
		case 1:
		case 2:
			deg2++
		default:
			return false
		}
	}
	return c.n <= 2 || deg2 == c.n-2
}

// TreeOrder returns a parent-first ordering of the vertices of a tree
// connection graph rooted at root, suitable for a left-deep sequence of
// outerjoins (each relation after the first joins an already-joined
// neighbour). ok is false when the graph is not a tree.
func (c *Connection) TreeOrder(root int) (order []int, ok bool) {
	if !c.IsTree() {
		return nil, false
	}
	seen := make([]bool, c.n)
	c.bfs(root, &order, seen)
	return order, true
}

// BFSOrder returns a breadth-first ordering of the connected component
// of root: every vertex after the first is adjacent to an earlier one.
// Unlike TreeOrder it accepts any graph.
func (c *Connection) BFSOrder(root int) []int {
	var order []int
	seen := make([]bool, c.n)
	c.bfs(root, &order, seen)
	return order
}
