package service

import "container/list"

// resultCache is an LRU cache of fully-materialised result lists, keyed
// by database fingerprint + canonical query spec. Only queries drained
// to exhaustion enter the cache (a partial page sequence never
// represents the full disjunction), so a hit can serve any page of a
// repeated query without touching the enumerators.
//
// The cache is not safe for concurrent use on its own; Service guards
// it with its mutex.
type resultCache struct {
	capacity int
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
}

type cacheEntry struct {
	key     string
	results []Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the cached result list for key, marking it most recently
// used.
func (c *resultCache) get(key string) ([]Result, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).results, true
}

// put inserts (or refreshes) the result list for key, evicting the
// least recently used entry when over capacity.
func (c *resultCache) put(key string, results []Result) {
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).results = results
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, results: results})
	c.entries[key] = el
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached result lists.
func (c *resultCache) len() int { return c.ll.Len() }
