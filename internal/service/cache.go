package service

import (
	"container/list"
	"strings"

	fd "repro"
)

// resultCache is an LRU cache of fully-materialised result lists, keyed
// by database fingerprint + canonical query spec. Only queries drained
// to exhaustion enter the cache (a partial page sequence never
// represents the full disjunction), so a hit can serve any page of a
// repeated query without touching the enumerators.
//
// Eviction is bounded two ways: by entry count (capacity) and by the
// approximate heap bytes of the cached result lists (maxBytes), so one
// huge result list cannot pin unbounded memory behind a small entry
// count. An entry larger than the whole byte budget is never retained.
//
// The cache is not safe for concurrent use on its own; Service guards
// it with its mutex.
type resultCache struct {
	capacity int
	maxBytes int64
	total    int64      // approximate bytes across all entries
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
}

type cacheEntry struct {
	key     string
	results []Result
	bytes   int64
	// spec is the query spec the list was drained under; the append
	// path uses it to tell which delta family (exact, or one (τ, sim)
	// approximate family) can patch the entry across a fingerprint
	// transition.
	spec fd.Query
}

func newResultCache(capacity int, maxBytes int64) *resultCache {
	return &resultCache{
		capacity: capacity,
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the cached result list for key, marking it most recently
// used.
func (c *resultCache) get(key string) ([]Result, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).results, true
}

// put inserts (or refreshes) the result list for key, then evicts least
// recently used entries until both the entry-count and byte bounds
// hold, returning how many entries were evicted.
func (c *resultCache) put(key string, spec fd.Query, results []Result) int {
	if c.capacity <= 0 {
		return 0
	}
	bytes := approxResultsBytes(results)
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.total += bytes - e.bytes
		e.results, e.bytes, e.spec = results, bytes, spec
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, results: results, bytes: bytes, spec: spec})
		c.entries[key] = el
		c.total += bytes
	}
	evicted := 0
	for c.ll.Len() > 0 &&
		(c.ll.Len() > c.capacity || (c.maxBytes > 0 && c.total > c.maxBytes)) {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*cacheEntry)
		delete(c.entries, e.key)
		c.total -= e.bytes
		evicted++
	}
	return evicted
}

// withPrefix snapshots the entries whose key starts with prefix (the
// fingerprint half of a cache key), without promoting them. The append
// path iterates the snapshot while removing and re-inserting entries.
func (c *resultCache) withPrefix(prefix string) []*cacheEntry {
	var out []*cacheEntry
	for key, el := range c.entries {
		if strings.HasPrefix(key, prefix) {
			out = append(out, el.Value.(*cacheEntry))
		}
	}
	return out
}

// remove drops the entry for key, adjusting the byte accounting;
// reports whether an entry was present.
func (c *resultCache) remove(key string) bool {
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	e := el.Value.(*cacheEntry)
	delete(c.entries, key)
	c.total -= e.bytes
	return true
}

// peek reports whether key is cached, without promoting it — the
// prediction probe of Service.Explain must not disturb the LRU order
// an actual query would see.
func (c *resultCache) peek(key string) bool {
	_, ok := c.entries[key]
	return ok
}

// len returns the number of cached result lists.
func (c *resultCache) len() int { return c.ll.Len() }

// bytes returns the approximate heap bytes of all cached result lists.
func (c *resultCache) bytes() int64 { return c.total }

// approxResultsBytes estimates the heap footprint of one cached result
// list: the slice backing plus, per result, the Result struct and its
// tuple set.
func approxResultsBytes(rs []Result) int64 {
	n := int64(64)
	for i := range rs {
		n += 32
		if rs[i].Set != nil {
			n += int64(rs[i].Set.ApproxBytes())
		}
	}
	return n
}
