package service

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	fd "repro"
	"repro/internal/relation"
	"repro/internal/store"
)

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDurableRegistryRecovers is the restart scenario of the acceptance
// criteria at the service level: register databases against a store,
// tear the service down, bring a second service up over the same store,
// and demand the same names, fingerprints and query results.
func TestDurableRegistryRecovers(t *testing.T) {
	st := openStore(t)

	svc := New(Config{Store: st})
	info1, err := svc.AddDatabase("alpha", testDB(t, "chain", 31))
	if err != nil {
		t.Fatal(err)
	}
	info2, err := svc.AddDatabase("beta", testDB(t, "star", 32))
	if err != nil {
		t.Fatal(err)
	}
	q, err := svc.StartQuery(context.Background(), "alpha", fd.Query{Options: fd.QueryOptions{UseIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	want := keysOf(drain(t, q, 5))
	svc.Close()

	svc2 := New(Config{Store: st})
	infos, err := svc2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer svc2.Close()
	if len(infos) != 2 {
		t.Fatalf("recovered %d databases, want 2", len(infos))
	}
	listed := svc2.ListDatabases()
	if len(listed) != 2 || listed[0] != info1 || listed[1] != info2 {
		t.Fatalf("ListDatabases = %+v, want [%+v %+v]", listed, info1, info2)
	}
	q2, err := svc2.StartQuery(context.Background(), "alpha", fd.Query{Options: fd.QueryOptions{UseIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	got := keysOf(drain(t, q2, 5))
	if len(got) != len(want) {
		t.Fatalf("recovered query returned %d distinct sets, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("recovered query multiset differs at %q: %d vs %d", k, got[k], n)
		}
	}
}

func TestDropDatabaseDeletesPersistedFiles(t *testing.T) {
	st := openStore(t)
	svc := New(Config{Store: st})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", testDB(t, "chain", 33)); err != nil {
		t.Fatal(err)
	}
	names, err := st.List()
	if err != nil || len(names) != 1 {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := svc.DropDatabase("w"); err != nil {
		t.Fatal(err)
	}
	names, err = st.List()
	if err != nil || len(names) != 0 {
		t.Fatalf("List after drop = %v, %v", names, err)
	}
}

// TestRecoverSkipsCorruptDatabase: one bad snapshot must not block
// recovery of the healthy ones.
func TestRecoverSkipsCorruptDatabase(t *testing.T) {
	st := openStore(t)
	svc := New(Config{Store: st})
	if _, err := svc.AddDatabase("good", testDB(t, "chain", 34)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddDatabase("bad", testDB(t, "chain", 35)); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	// Corrupt "bad"'s snapshot on disk.
	matches, err := filepath.Glob(filepath.Join(st.Dir(), "bad*"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("glob: %v %v", matches, err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x20
	if err := os.WriteFile(matches[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	svc2 := New(Config{Store: st})
	defer svc2.Close()
	infos, err := svc2.Recover()
	if err == nil {
		t.Fatal("recover over a corrupt snapshot reported no error")
	}
	if len(infos) != 1 || infos[0].Name != "good" {
		t.Fatalf("recovered %+v, want just \"good\"", infos)
	}
}

// TestAppendRowsDurable: AppendRows must be visible to new queries,
// leave old sessions untouched, reach the durable row log, and survive
// recovery (which compacts the log into the snapshot).
func TestAppendRowsDurable(t *testing.T) {
	st := openStore(t)
	svc := New(Config{Store: st})
	db := testDB(t, "chain", 36)
	relName := db.Relation(0).Name()
	width := db.Relation(0).Schema().Len()
	before := db.NumTuples()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}

	// An old session keeps paging the pre-append database.
	oldQ, err := svc.StartQuery(context.Background(), "w", fd.Query{Options: fd.QueryOptions{UseIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	oldWant := keysOf(drain(t, oldQ, 3))

	row := relation.Tuple{Label: "fresh", Values: make([]relation.Value, width), Imp: 1, Prob: 1}
	row.Values[0] = relation.V("fresh-datum")
	info, err := svc.AppendRows("w", relName, []relation.Tuple{row})
	if err != nil {
		t.Fatal(err)
	}
	if info.Tuples != before+1 {
		t.Fatalf("append reported %d tuples, want %d", info.Tuples, before+1)
	}
	got, ok := svc.Database("w")
	if !ok || got.NumTuples() != before+1 {
		t.Fatalf("registry not swapped: %v tuples", got.NumTuples())
	}
	if got == db {
		t.Fatal("append mutated the registered database in place")
	}
	if db.NumTuples() != before {
		t.Fatalf("old database gained tuples: %d", db.NumTuples())
	}

	// The old session's enumeration (started pre-append) is unaffected.
	oldQ2, err := svc.StartQuery(context.Background(), "w", fd.Query{Options: fd.QueryOptions{UseIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	newGot := keysOf(drain(t, oldQ2, 3))
	if len(newGot) == len(oldWant) {
		t.Log("note: appended row did not change |FD| (possible but unusual)")
	}
	svc.Close()

	// Restart: the log replays, then compacts.
	svc2 := New(Config{Store: st})
	defer svc2.Close()
	infos, err := svc2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(infos) != 1 || infos[0] != info {
		t.Fatalf("recovered %+v, want [%+v]", infos, info)
	}
	rec, _ := svc2.Database("w")
	if rec.NumTuples() != before+1 {
		t.Fatalf("recovered database has %d tuples, want %d", rec.NumTuples(), before+1)
	}
}

func TestAppendRowsValidation(t *testing.T) {
	svc := New(Config{}) // no store: append still works, in memory only
	defer svc.Close()
	db := testDB(t, "chain", 37)
	relName := db.Relation(0).Name()
	width := db.Relation(0).Schema().Len()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AppendRows("w", relName, nil); err == nil {
		t.Fatal("empty append accepted")
	}
	if _, err := svc.AppendRows("nope", relName, make([]relation.Tuple, 1)); err == nil {
		t.Fatal("unknown database accepted")
	}
	if _, err := svc.AppendRows("w", "nope", make([]relation.Tuple, 1)); err == nil {
		t.Fatal("unknown relation accepted")
	}
	bad := relation.Tuple{Values: make([]relation.Value, width+1), Imp: 1, Prob: 1}
	if _, err := svc.AppendRows("w", relName, []relation.Tuple{bad}); err == nil {
		t.Fatal("wrong-width row accepted")
	}
	good := relation.Tuple{Values: make([]relation.Value, width), Imp: 1, Prob: 1}
	if _, err := svc.AppendRows("w", relName, []relation.Tuple{good}); err != nil {
		t.Fatalf("in-memory append: %v", err)
	}
}

// TestCacheByteEviction: the result cache must evict by approximate
// bytes, not just entry count, and surface the byte gauge in Stats.
func TestCacheByteEviction(t *testing.T) {
	db := testDB(t, "chain", 38)
	svc := New(Config{CacheCapacity: 64, CacheMaxBytes: 1}) // 1 byte: nothing fits
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	q, err := svc.StartQuery(context.Background(), "w", fd.Query{Options: fd.QueryOptions{UseIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, q, 7)
	st := svc.Stats()
	if st.CacheEntries != 0 || st.CacheBytes != 0 {
		t.Fatalf("cache retained %d entries / %d bytes under a 1-byte budget",
			st.CacheEntries, st.CacheBytes)
	}

	// With a roomy budget the drained list is cached and the gauge is
	// positive; a repeat query hits.
	svc2 := New(Config{CacheCapacity: 64, CacheMaxBytes: 1 << 20})
	defer svc2.Close()
	if _, err := svc2.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	q2, err := svc2.StartQuery(context.Background(), "w", fd.Query{Options: fd.QueryOptions{UseIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, q2, 7)
	st2 := svc2.Stats()
	if st2.CacheEntries != 1 || st2.CacheBytes <= 0 {
		t.Fatalf("cache entries %d bytes %d, want 1 entry with positive bytes",
			st2.CacheEntries, st2.CacheBytes)
	}
	q3, err := svc2.StartQuery(context.Background(), "w", fd.Query{Options: fd.QueryOptions{UseIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !q3.FromCache() {
		t.Fatal("repeat query missed the cache")
	}
}
