package service

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	fd "repro"
	"repro/internal/core"
	"repro/internal/obs"
)

// sumSpanStats folds the stats of every open/next/close span of a
// trace into one core.Stats — the additive counters a drained cursor's
// final Stats() must equal. Task spans are excluded: parallel tasks'
// counters are already folded into the cursor snapshots the page
// deltas telescope over, so adding them would double-count.
func sumSpanStats(d *obs.TraceData) core.Stats {
	total := map[string]int64{}
	for _, name := range []string{"open", "next", "close"} {
		for k, v := range d.SumStats(name) {
			total[k] += v
		}
	}
	return core.Stats{
		Iterations:    int(total["iterations"]),
		Emitted:       int(total["emitted"]),
		JCCChecks:     total["jcc_checks"],
		TuplesScanned: total["tuples_scanned"],
		ListScans:     total["list_scans"],
		PageReads:     total["page_reads"],
		IndexProbes:   total["index_probes"],
		TuplesSkipped: total["tuples_skipped"],
		SigHits:       total["sig_hits"],
		SigRebuilds:   total["sig_rebuilds"],
	}
}

// statsEqualAdditive compares every additive counter (MaxResident is a
// high-water mark and not attributable to spans).
func statsEqualAdditive(a, b core.Stats) bool {
	a.MaxResident, b.MaxResident = 0, 0
	return a == b
}

// TestTraceStatsSumToFinal is the acceptance criterion: the per-span
// core.Stats deltas of a drained query's trace sum to the cursor's
// final Stats() — sequentially and on the parallel executor.
func TestTraceStatsSumToFinal(t *testing.T) {
	db := testDB(t, "chain", 23)
	for _, workers := range []int{1, 4} {
		// EngineWorkers is provisioned explicitly: on a small machine the
		// default budget (GOMAXPROCS) would degrade the query to
		// sequential and the parallel assertions below would be vacuous.
		svc := New(Config{CacheCapacity: -1, EngineWorkers: workers})
		defer svc.Close()
		if _, err := svc.AddDatabase("w", db); err != nil {
			t.Fatal(err)
		}
		spec := fd.Query{Mode: fd.ModeExact, Options: fd.QueryOptions{
			UseIndex: true, Workers: workers}}
		q, err := svc.StartQuery(context.Background(), "w", spec)
		if err != nil {
			t.Fatal(err)
		}
		drain(t, q, 3)
		final := svc.Stats().Engine // folded at drain; the only session
		d, ok := svc.QueryTrace(q.ID())
		if !ok {
			t.Fatalf("workers=%d: no trace for live session %s", workers, q.ID())
		}
		got := sumSpanStats(d)
		if !statsEqualAdditive(got, final) {
			t.Errorf("workers=%d: span stats sum %v != final %v", workers, got, final)
		}
		if len(d.FindAll("next")) == 0 || len(d.FindAll("open")) != 1 {
			t.Errorf("workers=%d: missing spans: %s", workers, d.Summary())
		}
		if workers > 1 && len(d.FindAll("task")) == 0 {
			t.Errorf("workers=%d: no parallel task spans recorded", workers)
		}
		// The trace survives the session: close it and fetch again.
		q.Close()
		d2, ok := svc.QueryTrace(q.ID())
		if !ok {
			t.Fatalf("workers=%d: trace lost after close", workers)
		}
		if !statsEqualAdditive(sumSpanStats(d2), final) {
			t.Errorf("workers=%d: finished-trace stats drifted", workers)
		}
	}
}

// TestTraceOfClosedPartialSession: a session closed mid-enumeration
// gets a terminal "close" span carrying the unattributed counters, so
// the sum property holds for abandoned queries too.
func TestTraceOfClosedPartialSession(t *testing.T) {
	db := testDB(t, "chain", 29)
	svc := New(Config{CacheCapacity: -1})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	q, err := svc.StartQuery(context.Background(), "w", fd.Query{Mode: fd.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Next(2); err != nil {
		t.Fatal(err)
	}
	q.Close()
	final := svc.Stats().Engine
	d, ok := svc.QueryTrace(q.ID())
	if !ok {
		t.Fatal("no trace after close")
	}
	if len(d.FindAll("close")) != 1 {
		t.Fatalf("expected one close span: %s", d.Summary())
	}
	if got := sumSpanStats(d); !statsEqualAdditive(got, final) {
		t.Errorf("span stats sum %v != final %v", got, final)
	}
}

// TestTraceHistoryBounded: the finished-trace FIFO drops the oldest
// trace beyond TraceHistory.
func TestTraceHistoryBounded(t *testing.T) {
	db := testDB(t, "chain", 31)
	svc := New(Config{TraceHistory: 2, CacheCapacity: -1})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		q, err := svc.StartQuery(context.Background(), "w", fd.Query{Mode: fd.ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		drain(t, q, 100)
		q.Close()
		ids = append(ids, q.ID())
	}
	if _, ok := svc.QueryTrace(ids[0]); ok {
		t.Errorf("oldest trace %s not evicted at history 2", ids[0])
	}
	for _, id := range ids[1:] {
		if _, ok := svc.QueryTrace(id); !ok {
			t.Errorf("trace %s missing from history", id)
		}
	}
}

// TestServiceMetrics drives a query twice (miss, then cache hit) and
// asserts the registry exposition moved the query, cache and
// result-row counters with the right labels.
func TestServiceMetrics(t *testing.T) {
	db := testDB(t, "chain", 37)
	reg := obs.NewRegistry()
	svc := New(Config{Metrics: reg})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		q, err := svc.StartQuery(context.Background(), "w", fd.Query{Mode: fd.ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		drain(t, q, 4)
		q.Close()
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`fd_queries_total{db="w",mode="exact"} 2`,
		`fd_cache_hits_total 1`,
		`fd_cache_misses_total 1`,
		`fd_active_queries 0`,
		`fd_queries_finished_total 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.Contains(out, `fd_results_served_total{db="w"}`) {
		t.Errorf("exposition missing per-db results counter:\n%s", out)
	}
	if reg.Histogram("fd_admission_wait_seconds", "").Count() == 0 {
		t.Error("admission wait histogram never observed")
	}
}

// TestSlowQueryLog: with an injected clock every step takes 1ms, so a
// sub-millisecond threshold must trip the slow-query warning and emit
// the trace summary.
func TestSlowQueryLog(t *testing.T) {
	db := testDB(t, "chain", 41)
	var buf bytes.Buffer
	var mu timeMutexClock
	svc := New(Config{
		SlowQuery: time.Microsecond,
		Logger:    slog.New(slog.NewTextHandler(&buf, nil)),
		Now:       mu.now,
	})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	q, err := svc.StartQuery(context.Background(), "w", fd.Query{Mode: fd.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, q, 100)
	out := buf.String()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "next×") {
		t.Errorf("slow-query warning with trace summary not logged:\n%s", out)
	}
}

// timeMutexClock is a concurrency-safe injected clock advancing 1ms
// per reading (Config.Now is read from several goroutines).
type timeMutexClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *timeMutexClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.t.IsZero() {
		c.t = time.Unix(1000, 0)
	}
	c.t = c.t.Add(time.Millisecond)
	return c.t
}
