package service

import (
	"fmt"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/rank"
	"repro/internal/relation"
	"repro/internal/tupleset"
)

// Result is one full-disjunction answer produced by a query: the tuple
// set plus its rank when the query mode ranks results.
type Result struct {
	Set  *tupleset.Set
	Rank float64
	// Ranked reports whether Rank is meaningful (ranked mode only).
	Ranked bool
}

// engineCursor unifies the three pull-based enumerator cursors (exact,
// ranked, approximate) behind one face the query session pages through.
type engineCursor interface {
	next() (Result, bool)
	stats() core.Stats
	err() error
	close()
}

// exactCursor adapts core.Cursor.
type exactCursor struct{ c *core.Cursor }

func (a exactCursor) next() (Result, bool) {
	t, ok := a.c.Next()
	if !ok {
		return Result{}, false
	}
	return Result{Set: t}, true
}
func (a exactCursor) stats() core.Stats { return a.c.Stats() }
func (a exactCursor) err() error        { return a.c.Err() }
func (a exactCursor) close()            { a.c.Close() }

// rankedCursor adapts rank.Cursor.
type rankedCursor struct{ c *rank.Cursor }

func (a rankedCursor) next() (Result, bool) {
	r, ok := a.c.Next()
	if !ok {
		return Result{}, false
	}
	return Result{Set: r.Set, Rank: r.Rank, Ranked: true}, true
}
func (a rankedCursor) stats() core.Stats { return a.c.Stats() }
func (a rankedCursor) err() error        { return a.c.Err() }
func (a rankedCursor) close()            { a.c.Close() }

// approxCursor adapts approx.Cursor.
type approxCursor struct{ c *approx.Cursor }

func (a approxCursor) next() (Result, bool) {
	t, ok := a.c.Next()
	if !ok {
		return Result{}, false
	}
	return Result{Set: t}, true
}
func (a approxCursor) stats() core.Stats { return a.c.Stats() }
func (a approxCursor) err() error        { return a.c.Err() }
func (a approxCursor) close()            { a.c.Close() }

// newEngineCursor builds the enumerator cursor a validated spec asks
// for. Construction may be expensive (the ranked mode runs the Fig 3
// preprocessing), so Service acquires a worker slot around it.
func newEngineCursor(db *relation.Database, spec QuerySpec) (engineCursor, error) {
	switch spec.Mode {
	case ModeExact:
		c, err := core.NewCursor(db, spec.engineOptions())
		if err != nil {
			return nil, err
		}
		return exactCursor{c}, nil
	case ModeRanked:
		f, err := rankFunc(spec.Rank)
		if err != nil {
			return nil, err
		}
		c, err := rank.NewCursor(db, f, spec.engineOptions())
		if err != nil {
			return nil, err
		}
		return rankedCursor{c}, nil
	case ModeApprox:
		sim, err := simFunc(spec.Sim)
		if err != nil {
			return nil, err
		}
		c, err := approx.NewCursor(db, &approx.Amin{S: sim}, spec.Tau)
		if err != nil {
			return nil, err
		}
		return approxCursor{c}, nil
	default:
		return nil, fmt.Errorf("service: unknown query mode %q", spec.Mode)
	}
}

// rankFunc resolves a ranking-function name.
func rankFunc(name string) (rank.Func, error) {
	switch name {
	case "fmax":
		return rank.FMax{}, nil
	case "pairsum":
		return rank.PairSum(), nil
	case "triple":
		return rank.PaperTriple(), nil
	default:
		return nil, fmt.Errorf("service: unknown ranking function %q (fmax, pairsum, triple)", name)
	}
}

// simFunc resolves a similarity name; empty selects Levenshtein, the
// misspelling model motivating Section 6.
func simFunc(name string) (approx.Sim, error) {
	switch name {
	case "", "levenshtein":
		return approx.LevenshteinSim{}, nil
	case "exact":
		return approx.ExactSim{}, nil
	default:
		return nil, fmt.Errorf("service: unknown similarity %q (levenshtein, exact)", name)
	}
}
