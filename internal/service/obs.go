package service

import (
	"time"

	"repro/internal/obs"
)

// metrics pre-resolves the service's fixed metric handles from the
// configured registry. With no registry every handle is nil and each
// instrumented site pays exactly one nil check (the obs package's
// nil-safety contract); per-database series are resolved per call
// through reg, which is likewise nil-safe.
type metrics struct {
	reg *obs.Registry

	admissionWait     *obs.Histogram
	admissionTimeouts *obs.Counter
	queriesRejected   *obs.Counter
	queriesFinished   *obs.Counter
	queriesEvicted    *obs.Counter
	activeQueries     *obs.Gauge

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	cacheEntries   *obs.Gauge
	cacheBytes     *obs.Gauge

	storeRetries  *obs.Counter
	quarantines   *obs.Counter
	slowQueries   *obs.Counter
	delayBreaches *obs.Counter

	appendLatency *obs.Histogram
	cachePatches  *obs.Counter
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		reg: reg,
		admissionWait: reg.Histogram("fd_admission_wait_seconds",
			"Time spent waiting for an admission worker slot."),
		admissionTimeouts: reg.Counter("fd_admission_timeouts_total",
			"Requests shed because no worker slot freed up within the admission timeout."),
		queriesRejected: reg.Counter("fd_queries_rejected_total",
			"Query specs rejected by validation."),
		queriesFinished: reg.Counter("fd_queries_finished_total",
			"Query sessions finished (drained or closed)."),
		queriesEvicted: reg.Counter("fd_queries_evicted_total",
			"Query sessions evicted after exceeding the idle timeout."),
		activeQueries: reg.Gauge("fd_active_queries",
			"Currently open query sessions."),
		cacheHits: reg.Counter("fd_cache_hits_total",
			"Queries served from the result cache."),
		cacheMisses: reg.Counter("fd_cache_misses_total",
			"Queries that had to open an enumeration cursor."),
		cacheEvictions: reg.Counter("fd_cache_evictions_total",
			"Result lists evicted from the cache by the entry or byte bound."),
		cacheEntries: reg.Gauge("fd_cache_entries",
			"Result lists currently cached."),
		cacheBytes: reg.Gauge("fd_cache_bytes",
			"Approximate heap bytes pinned by the result cache."),
		storeRetries: reg.Counter("fd_store_retries_total",
			"Transient store failures that were retried during persistence."),
		quarantines: reg.Counter("fd_quarantines_total",
			"Databases quarantined during recovery because their files failed to load."),
		slowQueries: reg.Counter("fd_slow_queries_total",
			"Completed queries whose wall time exceeded the slow-query threshold."),
		delayBreaches: reg.Counter("fd_delay_slo_breaches_total",
			"Inter-result gaps that exceeded the configured delay SLO."),
		appendLatency: reg.Histogram("fd_append_seconds",
			"Append maintenance latency: extend, durable log, delta enumeration, cache patch, registry swap."),
		cachePatches: reg.Counter("fd_cache_patches_total",
			"Cached result lists patched in place across an append instead of invalidated."),
	}
}

// appends returns the per-database applied-append-batch counter.
func (m metrics) appends(db string) *obs.Counter {
	return m.reg.Counter("fd_appends_total",
		"Append batches applied through incremental maintenance, by database.", "db", db)
}

// appendDeltaResults returns the per-database delta-result counter: the
// new maximal sets append maintenance produced.
func (m metrics) appendDeltaResults(db string) *obs.Counter {
	return m.reg.Counter("fd_append_delta_results_total",
		"Delta results produced by incremental append maintenance, by database.", "db", db)
}

// resultDelay returns the per-database, per-mode inter-result delay
// histogram — the measured form of the paper's polynomial-delay
// guarantee. Sessions resolve their series once at start; the
// per-result path only observes.
func (m metrics) resultDelay(db, mode string) *obs.Histogram {
	return m.reg.Histogram("fd_result_delay_seconds",
		"Gap between consecutive results of one enumeration, by database and mode.",
		"db", db, "mode", mode)
}

// queries returns the per-database, per-mode query counter.
func (m metrics) queries(db, mode string) *obs.Counter {
	return m.reg.Counter("fd_queries_total",
		"Query sessions started, by database and mode.", "db", db, "mode", mode)
}

// results returns the per-database served-result-rows counter.
func (m metrics) results(db string) *obs.Counter {
	return m.reg.Counter("fd_results_served_total",
		"Result rows served to clients, by database.", "db", db)
}

// storeOp wires a Store's Instrument seam into the registry: one
// latency histogram and one error counter per operation kind.
func (m metrics) storeOp(op string, d time.Duration, err error) {
	m.reg.Histogram("fd_store_op_seconds",
		"Store operation latency, by operation.", "op", op).Observe(d.Seconds())
	if err != nil {
		m.reg.Counter("fd_store_op_errors_total",
			"Store operations that returned an error, by operation.", "op", op).Inc()
	}
}

// syncCache refreshes the cache occupancy gauges; callers hold the
// service lock (cache state is guarded by it).
func (m metrics) syncCache(c *resultCache) {
	m.cacheEntries.Set(int64(c.len()))
	m.cacheBytes.Set(c.bytes())
}
