package service

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"

	fd "repro"
	"repro/internal/obs"
)

// TestDelaySLOBreach proves the watchdog path: a 1ns SLO makes every
// real inter-result gap a breach, so the breach counter moves, the
// first breach logs a warning with the trace summary, and the
// per-session delay histogram records every gap.
func TestDelaySLOBreach(t *testing.T) {
	db := testDB(t, "chain", 43)
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	svc := New(Config{
		DelaySLO: time.Nanosecond,
		Metrics:  reg,
		Logger:   slog.New(slog.NewTextHandler(&buf, nil)),
	})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	q, err := svc.StartQuery(context.Background(), "w", fd.Query{Mode: fd.ModeExact,
		Options: fd.QueryOptions{UseIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	results := drain(t, q, 50)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	breaches := reg.Counter("fd_delay_slo_breaches_total", "").Value()
	if breaches != int64(len(results)) {
		t.Errorf("%d breaches counted for %d results under a 1ns SLO", breaches, len(results))
	}
	out := buf.String()
	if !strings.Contains(out, "delay SLO breach") {
		t.Errorf("no breach warning logged:\n%s", out)
	}
	if strings.Count(out, "delay SLO breach") != 1 {
		t.Errorf("breach warning logged more than once per session:\n%s", out)
	}
	if h := reg.Histogram("fd_result_delay_seconds", "", "db", "w", "mode", "exact"); h.Count() != int64(len(results)) {
		t.Errorf("delay histogram holds %d observations for %d results", h.Count(), len(results))
	}

	// The delay summary reached the trace root as attributes.
	d, ok := svc.QueryTrace(q.ID())
	if !ok {
		t.Fatal("no trace")
	}
	if !strings.Contains(d.Summary(), "delay_max_ms") {
		// Summary may not include attrs; check the root span directly.
		if d.Root == nil || d.Root.Attrs["delay_max_ms"] == "" {
			t.Errorf("trace root missing delay_max_ms attribute")
		}
	}
}

// TestDelaySLODisabled: with the watchdog off (the default), the same
// drain counts no breaches and logs nothing.
func TestDelaySLODisabled(t *testing.T) {
	db := testDB(t, "chain", 43)
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	svc := New(Config{Metrics: reg, Logger: slog.New(slog.NewTextHandler(&buf, nil))})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	q, err := svc.StartQuery(context.Background(), "w", fd.Query{})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, q, 50)
	if n := reg.Counter("fd_delay_slo_breaches_total", "").Value(); n != 0 {
		t.Errorf("%d breaches counted with the watchdog disabled", n)
	}
	if strings.Contains(buf.String(), "delay SLO breach") {
		t.Errorf("breach logged with the watchdog disabled:\n%s", buf.String())
	}
}

// TestServiceExplain checks the service plan report: unknown databases
// fail typed, the plan carries the session cache key, and the cache-hit
// prediction flips once an identical query drains — without the probe
// itself promoting (or fabricating) an entry.
func TestServiceExplain(t *testing.T) {
	db := testDB(t, "chain", 47)
	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Explain("nope", fd.Query{}); !errors.Is(err, ErrUnknownDatabase) {
		t.Fatalf("unknown db: %v", err)
	}
	spec := fd.Query{Mode: fd.ModeExact, Options: fd.QueryOptions{UseIndex: true}}
	rep, err := svc.Explain("w", spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHitPredicted {
		t.Error("hit predicted on a cold cache")
	}
	if rep.Plan == nil || rep.Strategy.Execution == "" {
		t.Fatalf("degenerate plan: %+v", rep)
	}

	q, err := svc.StartQuery(context.Background(), "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, q, 100)
	rep, err = svc.Explain("w", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CacheHitPredicted {
		t.Error("no hit predicted after an identical drain")
	}
	// The prediction comes true.
	q2, err := svc.StartQuery(context.Background(), "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !q2.FromCache() {
		t.Error("predicted hit did not materialise")
	}
	// A different spec still predicts a miss.
	other := spec
	other.K = 3
	rep, err = svc.Explain("w", other)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHitPredicted {
		t.Error("hit predicted for a different canonical query")
	}
}

// TestSessionProgress pages a query and checks the live report between
// pages: counters monotone, phase transitions honest, and cached
// replay sessions reporting phase "cached" with moving counters.
func TestSessionProgress(t *testing.T) {
	db := testDB(t, "chain", 53)
	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	spec := fd.Query{Mode: fd.ModeExact, Options: fd.QueryOptions{UseIndex: true}}
	q, err := svc.StartQuery(context.Background(), "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	if p := q.Progress(); p.ID != q.ID() || p.DB != "w" || p.Mode != "exact" || p.FromCache {
		t.Fatalf("initial report wrong: %+v", p)
	}
	var last int64
	total := 0
	for {
		page, done, err := q.Next(3)
		if err != nil {
			t.Fatal(err)
		}
		total += len(page)
		p := q.Progress()
		if p.ResultsEmitted < last {
			t.Fatalf("ResultsEmitted went backwards: %d after %d", p.ResultsEmitted, last)
		}
		last = p.ResultsEmitted
		if done {
			break
		}
	}
	p := q.Progress()
	if p.Phase != "done" {
		t.Errorf("drained phase %q, want done", p.Phase)
	}
	if p.ResultsEmitted != int64(total) {
		t.Errorf("ResultsEmitted=%d, %d results paged", p.ResultsEmitted, total)
	}
	if p.Delay.Count != int64(total) {
		t.Errorf("delay count %d for %d results", p.Delay.Count, total)
	}

	// The cached replay: phase "cached", counters still monotone.
	q2, err := svc.StartQuery(context.Background(), "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !q2.FromCache() {
		t.Fatal("second session missed the cache")
	}
	if got := q2.Progress().Phase; got != "cached" {
		t.Errorf("cached session phase %q, want cached", got)
	}
	cachedTotal := 0
	for {
		page, done, err := q2.Next(4)
		if err != nil {
			t.Fatal(err)
		}
		cachedTotal += len(page)
		if p := q2.Progress(); p.ResultsEmitted != int64(cachedTotal) {
			t.Errorf("cached ResultsEmitted=%d after %d served", p.ResultsEmitted, cachedTotal)
		}
		if done {
			break
		}
	}
	if got := q2.Progress().Phase; got != "done" {
		t.Errorf("drained cached session phase %q, want done", got)
	}
}
