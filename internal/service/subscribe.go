package service

import (
	"sync"

	"repro/internal/relation"
	"repro/internal/tupleset"
)

// FollowBatch is one append's delta as delivered to a follow
// subscription: the new maximal result sets the batch created, plus
// the extended database and rendering universe they are bound to —
// the subscriber's base session still holds the pre-append database,
// whose universe cannot render sets that reference appended tuples.
//
// Retraction is implicit: an earlier result strictly contained in a
// batch member is no longer maximal. Set.ContainsAll is universe-
// independent, so subscribers compare batch sets against results from
// any earlier database version directly.
type FollowBatch struct {
	Results []Result
	DB      *relation.Database
	U       *tupleset.Universe
}

// subscription is one live follow attachment of a query session: a
// queue of delta batches pushed by AppendRows and drained by the
// session's front end, with a level-triggered signal channel. A batch
// is pushed per append even when its delta is empty, so subscribers
// observe every append landing.
type subscription struct {
	id  string
	fam familyKey

	mu     sync.Mutex
	queue  []FollowBatch
	closed bool
	// ch carries the level-triggered "queue changed or closed" signal;
	// capacity 1, so pushes never block on a slow subscriber.
	ch chan struct{}
}

func newSubscription(id string, fam familyKey) *subscription {
	return &subscription{id: id, fam: fam, ch: make(chan struct{}, 1)}
}

func (sub *subscription) signal() {
	select {
	case sub.ch <- struct{}{}:
	default:
	}
}

// push enqueues one delta batch; no-op after close.
func (sub *subscription) push(b FollowBatch) {
	sub.mu.Lock()
	if sub.closed {
		sub.mu.Unlock()
		return
	}
	sub.queue = append(sub.queue, b)
	sub.mu.Unlock()
	sub.signal()
}

// close marks the subscription dead and wakes any waiter; batches
// already queued stay drainable.
func (sub *subscription) close() {
	sub.mu.Lock()
	sub.closed = true
	sub.mu.Unlock()
	sub.signal()
}

// drain removes and returns every queued batch, and reports whether
// the subscription has been closed.
func (sub *subscription) drain() ([]FollowBatch, bool) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	q := sub.queue
	sub.queue = nil
	return q, sub.closed
}

// IsFollow reports whether the session carries a live-maintenance
// subscription (the spec asked for Follow).
func (q *Query) IsFollow() bool { return q.sub != nil }

// FollowSignal returns the channel signalled whenever delta batches
// arrive or the subscription closes; nil for non-follow sessions. The
// signal is level-triggered with capacity one: after a receive, drain
// with FollowBatches until empty.
func (q *Query) FollowSignal() <-chan struct{} {
	if q.sub == nil {
		return nil
	}
	return q.sub.ch
}

// FollowBatches drains the delta batches queued since the last call,
// and reports whether the subscription is over (session closed, its
// database dropped, or the service shut down). Never blocks.
func (q *Query) FollowBatches() ([]FollowBatch, bool) {
	if q.sub == nil {
		return nil, true
	}
	return q.sub.drain()
}

// registerFollowLocked attaches a follow subscription for q; callers
// hold s.mu and have validated the spec (Validate admits Follow only
// on specs familyOf accepts).
func (s *Service) registerFollowLocked(q *Query) {
	fam, ok := familyOf(q.spec)
	if !ok {
		return
	}
	q.sub = newSubscription(q.id, fam)
	if s.subs == nil {
		s.subs = make(map[string]map[string]*subscription)
	}
	if s.subs[q.dbName] == nil {
		s.subs[q.dbName] = make(map[string]*subscription)
	}
	s.subs[q.dbName][q.id] = q.sub
}

// dropFollow detaches and closes q's subscription, if any; idempotent.
func (s *Service) dropFollow(q *Query) {
	if q.sub == nil {
		return
	}
	s.mu.Lock()
	if m := s.subs[q.dbName]; m != nil {
		delete(m, q.id)
		if len(m) == 0 {
			delete(s.subs, q.dbName)
		}
	}
	s.mu.Unlock()
	q.sub.close()
}

// closeSubsLocked closes and forgets every subscription on database
// name (all databases when name is empty); callers hold s.mu. The
// closes themselves are lock-ordering safe: subscription locks are
// leaves.
func (s *Service) closeSubsLocked(name string) {
	for db, m := range s.subs {
		if name != "" && db != name {
			continue
		}
		for _, sub := range m {
			sub.close()
		}
		delete(s.subs, db)
	}
}
