package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	fd "repro"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/rank"
	"repro/internal/relation"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

// testDB builds one of the randomized workload shapes.
func testDB(t *testing.T, shape string, seed int64) *relation.Database {
	t.Helper()
	cfg := workload.Config{
		Relations: 4, TuplesPerRelation: 8, Domain: 3, NullRate: 0.1, ImpMax: 10, Seed: seed}
	var (
		db  *relation.Database
		err error
	)
	switch shape {
	case "chain":
		db, err = workload.Chain(cfg)
	case "star":
		db, err = workload.Star(cfg)
	case "clique":
		cfg.TuplesPerRelation = 5
		db, err = workload.Clique(cfg)
	default:
		t.Fatalf("unknown shape %q", shape)
	}
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// keysOf renders a result list as a sorted multiset of canonical keys.
func keysOf(results []Result) map[string]int {
	out := make(map[string]int)
	for _, r := range results {
		out[r.Set.Key()]++
	}
	return out
}

// drain pages q to exhaustion with the given page size.
func drain(t *testing.T, q *Query, k int) []Result {
	t.Helper()
	var out []Result
	for {
		page, done, err := q.Next(k)
		if err != nil {
			t.Fatalf("Next(%d): %v", k, err)
		}
		out = append(out, page...)
		if done {
			return out
		}
	}
}

// TestPagingMatchesOneShot checks the acceptance criterion: a
// cursor-paged query returns exactly the one-shot result set, for every
// page size and mode.
func TestPagingMatchesOneShot(t *testing.T) {
	db := testDB(t, "chain", 11)
	oneShot, _, err := core.FullDisjunction(db, core.Options{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	var oneShotResults []Result
	for _, s := range oneShot {
		oneShotResults = append(oneShotResults, Result{Set: s})
	}
	want := keysOf(oneShotResults)

	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 7, 1000} {
		q, err := svc.StartQuery(context.Background(), "w", fd.Query{Options: fd.QueryOptions{UseIndex: true}})
		if err != nil {
			t.Fatal(err)
		}
		got := keysOf(drain(t, q, k))
		if len(got) != len(want) {
			t.Fatalf("page size %d: %d distinct results, want %d", k, len(got), len(want))
		}
		for key, n := range want {
			if got[key] != n {
				t.Fatalf("page size %d: result multiset differs at %q", k, key)
			}
		}
	}
}

// TestRankedPagingOrder checks that ranked pages arrive in the same
// order as StreamRanked, ranks included.
func TestRankedPagingOrder(t *testing.T) {
	db := testDB(t, "star", 13)
	var want []rank.Result
	if _, err := rank.StreamRanked(db, rank.FMax{}, core.Options{UseIndex: true},
		func(r rank.Result) bool {
			want = append(want, r)
			return true
		}); err != nil {
		t.Fatal(err)
	}

	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	q, err := svc.StartQuery(context.Background(), "w", fd.Query{Mode: fd.ModeRanked, Rank: "fmax", Options: fd.QueryOptions{UseIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, q, 4)
	if len(got) != len(want) {
		t.Fatalf("ranked paging returned %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Ranked {
			t.Fatalf("result %d not marked ranked", i)
		}
		if got[i].Rank != want[i].Rank || got[i].Set.Key() != want[i].Set.Key() {
			t.Fatalf("ranked result %d differs: got (%q, %v), want (%q, %v)",
				i, got[i].Set.Key(), got[i].Rank, want[i].Set.Key(), want[i].Rank)
		}
	}
}

// TestApproxPaging checks the approx mode against the one-shot
// approximate full disjunction.
func TestApproxPaging(t *testing.T) {
	db, err := workload.DirtyChain(workload.DirtyConfig{
		Config:    workload.Config{Relations: 3, TuplesPerRelation: 8, Domain: 3, Seed: 17},
		ErrorRate: 0.3, MaxEdits: 2, MinProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	q, err := svc.StartQuery(context.Background(), "w", fd.Query{Mode: fd.ModeApprox, Tau: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	got := keysOf(drain(t, q, 5))

	// One-shot reference through the same Amin+Levenshtein engine.
	ref, err := svc.StartQuery(context.Background(), "w", fd.Query{Mode: fd.ModeApprox, Tau: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	want := keysOf(drain(t, ref, 1<<20))
	if len(got) != len(want) {
		t.Fatalf("approx paging returned %d distinct results, want %d", len(got), len(want))
	}
}

// TestResultCache checks that a repeated identical query is served from
// the cache: the hit counter moves, the session reports FromCache, no
// engine work happens, and the replayed pages are identical.
func TestResultCache(t *testing.T) {
	db := testDB(t, "chain", 19)
	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	spec := fd.Query{Options: fd.QueryOptions{UseIndex: true, UseJoinIndex: true}}

	q1, err := svc.StartQuery(context.Background(), "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	first := drain(t, q1, 3)
	st := svc.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 1 || st.CacheEntries != 1 {
		t.Fatalf("after first drain: hits=%d misses=%d entries=%d, want 0/1/1",
			st.CacheHits, st.CacheMisses, st.CacheEntries)
	}
	engineBefore := st.Engine

	q2, err := svc.StartQuery(context.Background(), "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !q2.FromCache() {
		t.Fatal("repeated query not served from cache")
	}
	second := drain(t, q2, 5)
	st = svc.Stats()
	if st.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.CacheHits)
	}
	if st.Engine != engineBefore {
		t.Error("cache-served query performed engine work")
	}
	if len(first) != len(second) {
		t.Fatalf("cached replay length %d, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i].Set.Key() != second[i].Set.Key() {
			t.Fatalf("cached replay differs at %d", i)
		}
	}

	// A different spec must not hit the cache.
	q3, err := svc.StartQuery(context.Background(), "w", fd.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if q3.FromCache() {
		t.Error("differing spec served from cache")
	}
}

// TestCacheSharedAcrossIdenticalDatabases checks the fingerprint
// keying: two identically-generated databases share cached results.
func TestCacheSharedAcrossIdenticalDatabases(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.AddDatabase("a", testDB(t, "chain", 23)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddDatabase("b", testDB(t, "chain", 23)); err != nil {
		t.Fatal(err)
	}
	qa, err := svc.StartQuery(context.Background(), "a", fd.Query{Options: fd.QueryOptions{UseIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, qa, 10)
	qb, err := svc.StartQuery(context.Background(), "b", fd.Query{Options: fd.QueryOptions{UseIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !qb.FromCache() {
		t.Error("identically-fingerprinted database did not share the cache")
	}
}

// TestEmptyResultCacheReplay guards the nil-slice regression: a query
// whose full disjunction is empty must cache and replay cleanly.
func TestEmptyResultCacheReplay(t *testing.T) {
	// One relation with zero tuples: FD is empty.
	rel := relation.MustRelation("R", relation.MustSchema("A"))
	db, err := relation.NewDatabase(rel)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.AddDatabase("empty", db); err != nil {
		t.Fatal(err)
	}
	spec := fd.Query{}

	q1, err := svc.StartQuery(context.Background(), "empty", spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, q1, 3); len(got) != 0 {
		t.Fatalf("empty FD returned %d results", len(got))
	}

	q2, err := svc.StartQuery(context.Background(), "empty", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !q2.FromCache() {
		t.Fatal("empty result list not cached")
	}
	page, done, err := q2.Next(3)
	if err != nil {
		t.Fatalf("replaying an empty cached list: %v", err)
	}
	if len(page) != 0 || !done {
		t.Fatalf("empty replay: %d results, done=%v", len(page), done)
	}
}

// TestDropRefreshReload covers the mutable-workload flow: drop the
// database, Refresh+mutate it, re-register it, and check that the new
// content is served (not a stale cached list keyed by the old
// fingerprint).
func TestDropRefreshReload(t *testing.T) {
	db := testDB(t, "chain", 61)
	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	spec := fd.Query{Options: fd.QueryOptions{UseIndex: true}}
	q1, err := svc.StartQuery(context.Background(), "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	before := len(drain(t, q1, 100))

	if err := svc.DropDatabase("w"); err != nil {
		t.Fatal(err)
	}
	if err := svc.DropDatabase("w"); err == nil {
		t.Fatal("double drop succeeded")
	}
	db.Refresh()
	// Append a private-payload tuple joining nothing: |FD| grows by 1.
	last := db.NumRelations() - 1
	rel := db.Relation(last)
	vals := make([]relation.Value, rel.Schema().Len())
	for p, a := range rel.Schema().Attributes() {
		if a[0] == 'P' {
			vals[p] = relation.V("fresh")
		}
	}
	if err := rel.AppendTuple(relation.Tuple{Label: "fresh", Values: vals, Imp: 1, Prob: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}

	q2, err := svc.StartQuery(context.Background(), "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	if q2.FromCache() {
		t.Fatal("mutated database served from the stale cache")
	}
	after := len(drain(t, q2, 100))
	if after != before+1 {
		t.Fatalf("|FD| after append = %d, want %d", after, before+1)
	}
}

// TestCacheDisabledAndCapped checks the two cache safety valves: a
// negative capacity disables caching entirely, and a result list longer
// than CacheMaxResults is never cached (nor retained in memory).
func TestCacheDisabledAndCapped(t *testing.T) {
	db := testDB(t, "chain", 67)
	spec := fd.Query{Options: fd.QueryOptions{UseIndex: true}}

	off := New(Config{CacheCapacity: -1})
	defer off.Close()
	if _, err := off.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	q1, err := off.StartQuery(context.Background(), "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, q1, 10)
	if st := off.Stats(); st.CacheEntries != 0 {
		t.Fatalf("caching disabled but %d entries cached", st.CacheEntries)
	}
	q2, err := off.StartQuery(context.Background(), "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	if q2.FromCache() {
		t.Fatal("caching disabled but repeat query served from cache")
	}

	capped := New(Config{CacheMaxResults: 2})
	defer capped.Close()
	if _, err := capped.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	q3, err := capped.StartQuery(context.Background(), "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(drain(t, q3, 10)); n <= 2 {
		t.Fatalf("workload too small to exercise the cap: %d results", n)
	}
	if st := capped.Stats(); st.CacheEntries != 0 {
		t.Fatalf("over-cap result list cached (%d entries)", st.CacheEntries)
	}
}

// TestAddDatabaseRejectionDoesNotFreeze guards the registration order:
// a rejected AddDatabase must leave the database mutable.
func TestAddDatabaseRejectionDoesNotFreeze(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", testDB(t, "chain", 71)); err != nil {
		t.Fatal(err)
	}
	fresh := testDB(t, "chain", 73)
	if _, err := svc.AddDatabase("w", fresh); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if fresh.Frozen() {
		t.Fatal("rejected registration froze the database")
	}
	fresh.Relation(0).MutateTuple(0, func(tp *relation.Tuple) { tp.Imp = 2 })
}

// TestIdleEviction checks the idle-timeout sweep with a fake clock.
func TestIdleEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	svc := New(Config{IdleTimeout: time.Minute, Now: clock})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", testDB(t, "chain", 29)); err != nil {
		t.Fatal(err)
	}
	q, err := svc.StartQuery(context.Background(), "w", fd.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Next(1); err != nil {
		t.Fatal(err)
	}

	advance(30 * time.Second)
	if n := svc.EvictIdle(); n != 0 {
		t.Fatalf("evicted %d sessions before the deadline", n)
	}
	advance(2 * time.Minute)
	if n := svc.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d sessions after the deadline, want 1", n)
	}
	if _, ok := svc.Query(q.ID()); ok {
		t.Error("evicted session still registered")
	}
	if _, _, err := q.Next(1); err == nil {
		t.Error("paging an evicted session should fail")
	}
	if st := svc.Stats(); st.QueriesEvicted != 1 {
		t.Errorf("QueriesEvicted = %d, want 1", st.QueriesEvicted)
	}
}

// TestPropertyConcurrentSessions is the concurrent-service property
// test of the acceptance criteria: N goroutines page interleaved
// cursors over shared databases and must reproduce the one-shot result
// sets exactly, under randomized chain/star/clique workloads. Run in CI
// under -race.
func TestPropertyConcurrentSessions(t *testing.T) {
	shapes := []string{"chain", "star", "clique"}
	svc := New(Config{Workers: 4, CacheCapacity: 2}) // small cache: exercise eviction
	defer svc.Close()

	want := make(map[string]map[string]int)
	for i, shape := range shapes {
		db := testDB(t, shape, int64(41+i))
		name := fmt.Sprintf("db-%s", shape)
		if _, err := svc.AddDatabase(name, db); err != nil {
			t.Fatal(err)
		}
		oneShot, _, err := core.FullDisjunction(db, core.Options{UseIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		keys := make(map[string]int)
		for _, s := range oneShot {
			keys[s.Key()]++
		}
		want[name] = keys
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for round := 0; round < 3; round++ {
				name := fmt.Sprintf("db-%s", shapes[rng.Intn(len(shapes))])
				q, err := svc.StartQuery(context.Background(), name, fd.Query{
					Options: fd.QueryOptions{UseIndex: true, UseJoinIndex: rng.Intn(2) == 0},
				})
				if err != nil {
					errs <- err
					return
				}
				got := make(map[string]int)
				for {
					page, done, err := q.Next(1 + rng.Intn(5))
					if err != nil {
						errs <- err
						return
					}
					for _, r := range page {
						got[r.Set.Key()]++
					}
					if done {
						break
					}
				}
				wantKeys := want[name]
				if len(got) != len(wantKeys) {
					errs <- fmt.Errorf("worker %d %s: %d distinct results, want %d",
						w, name, len(got), len(wantKeys))
					return
				}
				for key, n := range wantKeys {
					if got[key] != n {
						errs <- fmt.Errorf("worker %d %s: multiset differs at %q", w, name, key)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.ResultsServed == 0 || st.QueriesStarted != workers*3 {
		t.Errorf("unexpected stats after concurrent run: %+v", st)
	}
}

// TestAdmissionSingleWorker checks that a one-slot pool still serves
// concurrent sessions correctly (they serialise instead of failing).
func TestAdmissionSingleWorker(t *testing.T) {
	db := testDB(t, "chain", 47)
	oneShot, _, err := core.FullDisjunction(db, core.Options{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Workers: 1, CacheCapacity: 1})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	counts := make([]int, 4)
	for w := range counts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Distinct specs so nobody is served from cache.
			q, err := svc.StartQuery(context.Background(), "w", fd.Query{
				Options: fd.QueryOptions{UseIndex: true, BlockSize: w + 1}})
			if err != nil {
				return
			}
			for {
				page, done, err := q.Next(2)
				if err != nil {
					return
				}
				counts[w] += len(page)
				if done {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, n := range counts {
		if n != len(oneShot) {
			t.Errorf("worker %d saw %d results, want %d", w, n, len(oneShot))
		}
	}
}

// TestStartQueryValidation covers spec validation failures.
func TestStartQueryValidation(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", testDB(t, "chain", 53)); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		db string
		q  fd.Query
	}{
		{"w", fd.Query{Mode: "nope"}},
		{"w", fd.Query{Mode: fd.ModeRanked, Rank: "fsum"}},
		{"w", fd.Query{Mode: fd.ModeApprox, Tau: 0}},
		{"w", fd.Query{Mode: fd.ModeApprox, Tau: 1.5}},
		{"w", fd.Query{Mode: fd.ModeApprox, Tau: 0.5, Sim: "nope"}},
		{"w", fd.Query{Mode: fd.ModeApproxRanked, Tau: 0.5}}, // no rank function
		{"missing", fd.Query{}},
		{"w", fd.Query{Options: fd.QueryOptions{Strategy: "bogus"}}},
	}
	for _, c := range bad {
		if _, err := svc.StartQuery(context.Background(), c.db, c.q); err == nil {
			t.Errorf("query %+v on %q unexpectedly accepted", c.q, c.db)
		}
	}
}

// TestPadAcrossUniverses guards the cache-sharing subtlety: a cached
// tuple set produced against database A renders correctly through the
// universe of an identically-fingerprinted database B.
func TestPadAcrossUniverses(t *testing.T) {
	a, b := testDB(t, "chain", 59), testDB(t, "chain", 59)
	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.AddDatabase("a", a); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddDatabase("b", b); err != nil {
		t.Fatal(err)
	}
	qa, err := svc.StartQuery(context.Background(), "a", fd.Query{})
	if err != nil {
		t.Fatal(err)
	}
	resA := drain(t, qa, 10)
	qb, err := svc.StartQuery(context.Background(), "b", fd.Query{})
	if err != nil {
		t.Fatal(err)
	}
	resB := drain(t, qb, 10)
	if !qb.FromCache() {
		t.Fatal("expected cache hit")
	}
	ua, ub := tupleset.NewUniverse(a), tupleset.NewUniverse(b)
	attrs := ub.AllAttributes()
	for i := range resA {
		pa := ua.PadOver(resA[i].Set, attrs)
		pb := ub.PadOver(resB[i].Set, attrs)
		if pa.Key() != pb.Key() {
			t.Fatalf("padded rendering differs at %d", i)
		}
	}
}

// TestApproxRankedPaging is the approx-ranked serving path (previously
// unexposed): pages arrive in the order and with the ranks of
// rank.ApproxStreamRanked.
func TestApproxRankedPaging(t *testing.T) {
	db, err := workload.DirtyChain(workload.DirtyConfig{
		Config:    workload.Config{Relations: 3, TuplesPerRelation: 8, Domain: 3, Seed: 71},
		ErrorRate: 0.3, MaxEdits: 2, MinProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []rank.Result
	if _, err := rank.ApproxStreamRanked(db, &approx.Amin{S: approx.LevenshteinSim{}}, 0.6,
		rank.FMax{}, core.Options{UseIndex: true}, func(r rank.Result) bool {
			want = append(want, r)
			return true
		}); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("workload yields no approx-ranked results")
	}

	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", db); err != nil {
		t.Fatal(err)
	}
	q, err := svc.StartQuery(context.Background(), "w", fd.Query{
		Mode: fd.ModeApproxRanked, Tau: 0.6, Rank: "fmax",
		Options: fd.QueryOptions{UseIndex: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, q, 3)
	if len(got) != len(want) {
		t.Fatalf("approx-ranked paging returned %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Ranked {
			t.Fatalf("result %d not marked ranked", i)
		}
		if got[i].Rank != want[i].Rank || got[i].Set.Key() != want[i].Set.Key() {
			t.Fatalf("approx-ranked result %d differs: got (%q, %v), want (%q, %v)",
				i, got[i].Set.Key(), got[i].Rank, want[i].Set.Key(), want[i].Rank)
		}
	}
	// The repeat query replays from the cache, keyed by Canonical().
	q2, err := svc.StartQuery(context.Background(), "w", fd.Query{
		Mode: fd.ModeApproxRanked, Tau: 0.6, Rank: "fmax",
		Options: fd.QueryOptions{UseIndex: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !q2.FromCache() {
		t.Error("repeated approx-ranked query not served from cache")
	}
}

// TestSessionContextCancellation checks that cancelling the context a
// session was started under aborts its in-flight enumeration: the next
// page fails with ctx.Err() and the session counts as done.
func TestSessionContextCancellation(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", testDB(t, "chain", 83)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	q, err := svc.StartQuery(ctx, "w", fd.Query{Options: fd.QueryOptions{UseIndex: true}})
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if _, done, err := q.Next(1); err != nil || done {
		t.Fatalf("first page: done=%v err=%v", done, err)
	}
	cancel()
	_, done, err := q.Next(1)
	if !done {
		t.Fatal("cancelled session reported more results pending")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("page after cancel: err=%v, want context.Canceled", err)
	}
}

// TestEngineWorkerPool checks the shared intra-query worker budget: a
// parallel query takes extra workers from the pool (never more than
// EngineWorkers−1), a concurrent parallel query degrades toward
// sequential, a parallel query still costs one admission slot, and the
// slots come back when the session ends.
func TestEngineWorkerPool(t *testing.T) {
	svc := New(Config{Workers: 4, EngineWorkers: 3, CacheCapacity: -1})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", testDB(t, "chain", 41)); err != nil {
		t.Fatal(err)
	}
	spec := fd.Query{Options: fd.QueryOptions{UseIndex: true, Workers: 8}}

	q1, err := svc.StartQuery(context.Background(), "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	if q1.engineSlots != 2 {
		t.Fatalf("first query holds %d extra workers, want 2 (EngineWorkers-1)", q1.engineSlots)
	}
	q2, err := svc.StartQuery(context.Background(), "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	if q2.engineSlots != 0 {
		t.Fatalf("second query holds %d extra workers, want 0 (budget exhausted)", q2.engineSlots)
	}

	want := drain(t, q2, 7) // sequential-degraded still enumerates fully
	q1.Close()
	if q1.engineSlots != 0 {
		t.Fatalf("closed query still holds %d extra workers", q1.engineSlots)
	}

	q3, err := svc.StartQuery(context.Background(), "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	if q3.engineSlots != 2 {
		t.Fatalf("post-release query holds %d extra workers, want 2", q3.engineSlots)
	}
	got := drain(t, q3, 7)
	a, b := keysOf(want), keysOf(got)
	if len(a) != len(b) {
		t.Fatalf("parallel and degraded runs differ: %d vs %d results", len(b), len(a))
	}
	for k, n := range a {
		if b[k] != n {
			t.Fatalf("result multiplicity differs at %s: %d vs %d", k, b[k], n)
		}
	}
}

// TestEngineWorkerPoolSequentialSpec checks that sequential specs
// (ranked mode, explicit Workers 1) never touch the engine budget.
func TestEngineWorkerPoolSequentialSpec(t *testing.T) {
	svc := New(Config{Workers: 2, EngineWorkers: 4, CacheCapacity: -1})
	defer svc.Close()
	if _, err := svc.AddDatabase("w", testDB(t, "chain", 43)); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []fd.Query{
		{Options: fd.QueryOptions{Workers: 1}},
		{Mode: fd.ModeRanked, Rank: "fmax", K: 3, Options: fd.QueryOptions{Workers: 8}},
	} {
		q, err := svc.StartQuery(context.Background(), "w", spec)
		if err != nil {
			t.Fatal(err)
		}
		if q.engineSlots != 0 {
			t.Fatalf("spec %+v holds %d extra workers, want 0", spec, q.engineSlots)
		}
		q.Close()
	}
}
