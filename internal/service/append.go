package service

import (
	"errors"
	"fmt"
	"strings"
	"time"

	fd "repro"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/relation"
	"repro/internal/tupleset"
)

// ErrUnknownRelation marks appends addressing a relation the database
// does not have; front ends turn it into 404 alongside
// ErrUnknownDatabase.
var ErrUnknownRelation = errors.New("unknown relation")

// ErrStorage marks appends whose durable log write failed after retry
// exhaustion: the rows were NOT applied (memory and disk still agree),
// but the failure is operational, not the client's — front ends turn
// it into 500 rather than 400.
var ErrStorage = errors.New("storage failure")

// familyKey identifies one delta family: the exact full disjunction,
// or one (τ, sim) approximate family. Every unbounded, unranked query
// spec over a database maps to exactly one family, and one delta
// enumeration per family patches every cached list and feeds every
// subscription of that family.
type familyKey struct {
	mode fd.Mode
	tau  float64
	sim  string
}

// familyOf maps a query spec to its delta family. Only unbounded
// exact and approx specs are patchable: a ranked order is a property
// of the finished enumeration (a delta cannot splice it), and a K or
// RankTau bound makes the cached list a prefix the delta algebra does
// not describe.
func familyOf(spec fd.Query) (familyKey, bool) {
	if spec.K != 0 || spec.RankTau != 0 {
		return familyKey{}, false
	}
	switch spec.Mode {
	case "", fd.ModeExact:
		return familyKey{mode: fd.ModeExact}, true
	case fd.ModeApprox:
		sim := spec.Sim
		if sim == "" {
			sim = "levenshtein"
		}
		return familyKey{mode: fd.ModeApprox, tau: spec.Tau, sim: sim}, true
	}
	return familyKey{}, false
}

// familyDelta enumerates the delta of one family over the extended
// entry: the maximal sets of the new database whose relation-relIdx
// member is an appended tuple.
func familyDelta(ne *dbEntry, relIdx, firstNew int, fam familyKey) (*delta.Delta, error) {
	if fam.mode == fd.ModeApprox {
		s, err := fd.SimByName(fam.sim)
		if err != nil {
			return nil, err
		}
		// No join index: a graded similarity admits matches that never
		// equi-join, so candidate-only scans would lose results.
		return delta.Approx(ne.db, relIdx, firstNew, &approx.Amin{S: s}, fam.tau,
			core.Options{UseIndex: true})
	}
	// The delta runs are maintenance work, not client queries, so they
	// use the fastest safe engine configuration rather than any one
	// spec's knobs — the produced result set is configuration-
	// independent.
	return delta.Exact(ne.u, relIdx, firstNew, core.Options{UseIndex: true, UseJoinIndex: true})
}

// deltaResults renders a delta's added sets as service Results.
func deltaResults(d *delta.Delta) []Result {
	out := make([]Result, len(d.Added))
	for i, a := range d.Added {
		out[i] = Result{Set: a}
	}
	return out
}

// patchResults rewrites one drained result list across an append: old
// results a delta set subsumes are dropped, the delta's sets are
// appended. The input list is shared with live sessions and is never
// mutated; the returned slice is fresh.
func patchResults(old []Result, d *delta.Delta) (patched []Result, removed int) {
	patched = make([]Result, 0, len(old)+len(d.Added))
	for _, r := range old {
		if r.Set != nil && d.Subsumes(r.Set) {
			removed++
			continue
		}
		patched = append(patched, r)
	}
	return append(patched, deltaResults(d)...), removed
}

// AppendRows appends tuples to relation relName of the registered
// database dbName through incremental maintenance: the registered
// database is extended in place (relation.Database.Extend — the
// existing columns, dictionary and join-index postings are shared, not
// rebuilt), the result-set delta of the batch is enumerated per query
// family that needs it, drained result-cache entries are patched
// across the fingerprint transition instead of orphaned, and live
// follow subscriptions receive the delta. Sessions opened before the
// swap keep enumerating the pre-append database.
//
// With a configured Store the rows are appended to the database's
// durable row log first (no snapshot rewrite), so a restart replays
// them; a log failure leaves disk, registry and cache unchanged and
// is reported wrapped in ErrStorage.
func (s *Service) AppendRows(dbName, relName string, tuples []relation.Tuple) (DatabaseInfo, error) {
	if len(tuples) == 0 {
		return DatabaseInfo{}, fmt.Errorf("service: no rows to append")
	}
	start := time.Now()
	s.appendMu.Lock()
	defer s.appendMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return DatabaseInfo{}, fmt.Errorf("service: closed")
	}
	entry, ok := s.dbs[dbName]
	if !ok {
		s.mu.Unlock()
		return DatabaseInfo{}, fmt.Errorf("service: %w %q", ErrUnknownDatabase, dbName)
	}
	// Families that will need a delta: one per patchable cached list
	// under the pre-append fingerprint, one per live subscription. The
	// registered database is frozen, so Fingerprint here is a cache
	// read.
	oldFP := entry.db.Fingerprint()
	oldPrefix := fmt.Sprintf("%016x|", oldFP)
	fams := make(map[familyKey]*delta.Delta)
	for _, ce := range s.cache.withPrefix(oldPrefix) {
		if fam, ok := familyOf(ce.spec); ok {
			fams[fam] = nil
		}
	}
	for _, sub := range s.subs[dbName] {
		fams[sub.fam] = nil
	}
	s.mu.Unlock()

	old := entry.db
	relIdx, ok := old.RelationIndex(relName)
	if !ok {
		return DatabaseInfo{}, fmt.Errorf("service: %w: database %q has no relation %q",
			ErrUnknownRelation, dbName, relName)
	}
	firstNew := old.Relation(relIdx).Len()
	ext, err := old.Extend(relIdx, tuples)
	if err != nil {
		return DatabaseInfo{}, err
	}
	newFP := ext.Fingerprint()

	// Durability first: if the log write fails, nothing was swapped.
	// The append is bound to the snapshot fingerprint of the entry we
	// extended, so a drop + re-register racing this call fails the log
	// write (the replacement snapshot carries a different fingerprint)
	// instead of durably logging rows the caller will be told failed.
	if s.cfg.Store != nil {
		err := s.retryStore(func() error {
			return s.cfg.Store.Append(dbName, relName, tuples, entry.snapFP)
		})
		if err != nil {
			if !retryable(err) {
				// Permanent: the caller's database is gone or replaced
				// mid-call, not a storage fault.
				return DatabaseInfo{}, err
			}
			return DatabaseInfo{}, fmt.Errorf("service: appending rows to %q: %w: %w",
				dbName, ErrStorage, err)
		}
	}

	ne := &dbEntry{name: dbName, db: ext, u: tupleset.NewUniverse(ext), snapFP: entry.snapFP}

	// Enumerate the needed deltas outside the registry lock — this is
	// the expensive part, and it only reads the frozen extended
	// database.
	added := 0
	for fam := range fams {
		d, err := familyDelta(ne, relIdx, firstNew, fam)
		if err != nil {
			// Leave the family's delta nil: its cache entries are dropped
			// and its subscriptions closed below — degraded, never wrong.
			s.cfg.Logger.Warn("delta enumeration failed; falling back to invalidation",
				"db", dbName, "mode", string(fam.mode), "error", err)
			continue
		}
		fams[fam] = d
		added += len(d.Added)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return DatabaseInfo{}, fmt.Errorf("service: closed")
	}
	if cur, ok := s.dbs[dbName]; !ok || cur != entry {
		// Dropped while we extended. The drop deleted the snapshot and
		// log; a drop + re-register instead fails the fingerprint-bound
		// log write above. Disk is consistent either way.
		s.mu.Unlock()
		return DatabaseInfo{}, fmt.Errorf("service: database %q dropped during append", dbName)
	}
	s.dbs[dbName] = ne
	patched, evicted := s.patchCacheLocked(dbName, oldFP, newFP, fams)
	s.cacheEvictions += int64(evicted)
	// A follow query that started after the family scan is in
	// s.subs now; its family may have no delta yet — enumerate it
	// inline (appends are serialised and the run only reads the frozen
	// extended database, so holding the lock bounds only this rare
	// race window).
	for id, sub := range s.subs[dbName] {
		d := fams[sub.fam]
		if d == nil {
			var err error
			d, err = familyDelta(ne, relIdx, firstNew, sub.fam)
			if err != nil {
				s.cfg.Logger.Warn("delta enumeration failed; closing subscription",
					"db", dbName, "query", id, "error", err)
				delete(s.subs[dbName], id)
				sub.close()
				continue
			}
			fams[sub.fam] = d
			added += len(d.Added)
		}
		sub.push(FollowBatch{Results: deltaResults(d), DB: ne.db, U: ne.u})
	}
	s.met.syncCache(s.cache)
	s.mu.Unlock()

	s.met.appends(dbName).Inc()
	s.met.appendDeltaResults(dbName).Add(int64(added))
	s.met.cachePatches.Add(int64(patched))
	s.met.cacheEvictions.Add(int64(evicted))
	s.met.appendLatency.Observe(time.Since(start).Seconds())
	s.cfg.Logger.Info("append applied incrementally",
		"db", dbName, "relation", relName, "rows", len(tuples),
		"delta_results", added, "cache_patched", patched,
		"fingerprint", fmt.Sprintf("%016x", newFP))
	return DatabaseInfo{
		Name:        dbName,
		Relations:   ext.NumRelations(),
		Tuples:      ext.NumTuples(),
		Fingerprint: fmt.Sprintf("%016x", newFP),
	}, nil
}

// patchCacheLocked rewrites the result-cache entries of the appended
// database across its fingerprint transition: every patchable entry
// under the old fingerprint is re-inserted under the new one with its
// list patched by the family's delta; non-patchable entries (ranked or
// bounded specs, or a family whose delta failed) are dropped. Entries
// under the old fingerprint survive untouched only when another
// registered database still carries that content — the key is by
// content, and those lists remain correct for it. Callers hold s.mu.
func (s *Service) patchCacheLocked(dbName string, oldFP, newFP uint64, fams map[familyKey]*delta.Delta) (patched, evicted int) {
	oldPrefix := fmt.Sprintf("%016x|", oldFP)
	newPrefix := fmt.Sprintf("%016x|", newFP)
	shared := false
	for _, e := range s.dbs {
		if e.name != dbName && e.db.Fingerprint() == oldFP {
			shared = true
			break
		}
	}
	for _, ce := range s.cache.withPrefix(oldPrefix) {
		fam, ok := familyOf(ce.spec)
		var d *delta.Delta
		if ok {
			d = fams[fam]
		}
		if d == nil {
			if !shared {
				s.cache.remove(ce.key)
			}
			continue
		}
		results, _ := patchResults(ce.results, d)
		key := newPrefix + strings.TrimPrefix(ce.key, oldPrefix)
		evicted += s.cache.put(key, ce.spec, results)
		if !shared {
			s.cache.remove(ce.key)
		}
		patched++
	}
	return patched, evicted
}
