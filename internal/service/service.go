// Package service turns the enumerator cursors into a multi-tenant
// query service: a registry of named, frozen databases; per-client
// query sessions paged through pull-based cursors with idle-timeout
// eviction; a result cache keyed by database fingerprint and canonical
// query spec; and admission control through a bounded worker pool
// shared across sessions. cmd/fdserve exposes it over HTTP.
//
// The paper's headline property — results arrive one at a time with
// polynomial delay (PINC) — is exactly the shape of a paginated "next k
// results" service: a page of k answers costs time polynomial in the
// database and k, independent of how many answers remain.
package service

import (
	"context"
	"errors"
	"fmt"
	iofs "io/fs"
	"log/slog"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	fd "repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/tupleset"
)

// Result is one full-disjunction answer produced by a query session:
// the unified result shape of the fd.Results cursor (the tuple set
// plus its rank in ranked modes).
type Result = fd.Result

// Config tunes a Service. The zero value selects sensible defaults.
type Config struct {
	// Workers bounds the number of concurrently computing pages (and
	// cursor constructions) across all sessions; ≤0 selects GOMAXPROCS.
	Workers int
	// EngineWorkers bounds intra-query parallelism: the total
	// enumeration workers the streaming executor may run across all
	// live queries. Every admitted query carries one implicit worker;
	// queries whose spec asks for more (QueryOptions.Workers) are
	// granted extra workers best-effort from the shared remainder of
	// EngineWorkers−1, so parallel queries never multiply admission —
	// a parallel query still consumes exactly one admission slot.
	// ≤0 selects GOMAXPROCS; 1 forces every query sequential.
	EngineWorkers int
	// CacheCapacity bounds the result cache in entries (cached result
	// lists); 0 selects 64, negative disables result caching.
	CacheCapacity int
	// CacheMaxResults bounds the length of one cacheable result list;
	// sessions that drain more results than this are not cached (the
	// accumulation buffer is dropped at the cap, keeping a huge paged
	// enumeration from pinning its whole output in server memory).
	// 0 selects 65536, negative removes the bound.
	CacheMaxResults int
	// CacheMaxBytes bounds the result cache by the approximate heap
	// bytes of the cached result lists, so a few huge lists cannot pin
	// unbounded memory within the entry-count bound. 0 selects 64 MiB,
	// negative removes the byte bound.
	CacheMaxBytes int64
	// Store, when non-nil, makes the database registry durable:
	// AddDatabase persists a snapshot, DropDatabase deletes it, and
	// Recover reloads every stored database (replaying and compacting
	// row logs) after a restart.
	Store *store.Store
	// IdleTimeout is the idle eviction horizon for query sessions; ≤0
	// selects 5 minutes.
	IdleTimeout time.Duration
	// MaxPageSize caps the k of one Next call; ≤0 selects 1024.
	MaxPageSize int
	// AdmissionTimeout bounds how long StartQuery and Next wait for a
	// worker slot before shedding the request with ErrOverloaded (the
	// front end turns it into 503 + Retry-After). 0 waits forever —
	// the pre-timeout behaviour; negative sheds immediately.
	AdmissionTimeout time.Duration
	// RetryAttempts is the total number of tries a transient store
	// failure gets during persistence (AddDatabase, AppendRows, the
	// recovery compaction); 0 selects 3, negative disables retrying.
	// Permanent failures — fingerprint mismatch, missing files — are
	// never retried.
	RetryAttempts int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt and capped at 8× the base; 0 selects 10ms.
	RetryBackoff time.Duration
	// Now supplies the clock, for tests; nil selects time.Now.
	Now func() time.Time
	// Sleep suspends between retries, for tests; nil selects time.Sleep.
	Sleep func(time.Duration)
	// Metrics, when non-nil, receives every service-level signal —
	// admission waits and timeouts, cache traffic, store operation
	// latencies, quarantines, per-database query and result counts —
	// for exposition at GET /metrics. Nil turns every instrumented
	// site into a single nil check.
	Metrics *obs.Registry
	// Logger receives the service's structured log output (recovery,
	// quarantine, slow queries); nil discards it.
	Logger *slog.Logger
	// SlowQuery, when positive, logs a warning with the trace summary
	// for every completed query whose wall time exceeded it.
	SlowQuery time.Duration
	// DelaySLO, when positive, is the per-result delay envelope: the
	// gap between consecutive results a healthy enumeration must stay
	// under (the operational form of the paper's polynomial-delay
	// guarantee). Every breach increments fd_delay_slo_breaches_total;
	// the first breach of a session also logs a warning carrying the
	// trace summary. Zero disables the watchdog.
	DelaySLO time.Duration
	// TraceHistory bounds how many finished query traces stay
	// retrievable via QueryTrace after their session closed; 0 selects
	// 64, negative retains none.
	TraceHistory int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = runtime.GOMAXPROCS(0)
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 64
	}
	if c.CacheMaxResults == 0 {
		c.CacheMaxResults = 65536
	}
	if c.CacheMaxBytes == 0 {
		c.CacheMaxBytes = 64 << 20
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.MaxPageSize <= 0 {
		c.MaxPageSize = 1024
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 3
	}
	if c.RetryAttempts < 0 {
		c.RetryAttempts = 1
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.TraceHistory == 0 {
		c.TraceHistory = 64
	}
	return c
}

// Stats is a snapshot of the service's counters, surfaced by fdserve's
// GET /stats.
type Stats struct {
	Databases      int   `json:"databases"`
	ActiveQueries  int   `json:"active_queries"`
	QueriesStarted int64 `json:"queries_started"`
	QueriesDone    int64 `json:"queries_finished"`
	QueriesEvicted int64 `json:"queries_evicted"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEntries   int   `json:"cache_entries"`
	CacheBytes     int64 `json:"cache_bytes"`
	// CacheEvictions counts result lists evicted by the cache's entry
	// or byte bound.
	CacheEvictions int64 `json:"cache_evictions"`
	ResultsServed  int64 `json:"results_served"`
	// StoreRetries counts transient store failures that were retried
	// during persistence (whether or not the retry then succeeded).
	StoreRetries int64 `json:"store_retries"`
	// AdmissionTimeouts counts requests shed with ErrOverloaded because
	// no worker slot freed up within AdmissionTimeout.
	AdmissionTimeouts int64 `json:"admission_timeouts"`
	// QuarantinedDatabases lists databases whose files Recover moved
	// aside as corrupt (plus quarantines found on disk from earlier
	// runs); the service keeps serving everything else.
	QuarantinedDatabases []QuarantineInfo `json:"quarantined_databases,omitempty"`
	// Engine aggregates the core.Stats of every finished or closed
	// query session (in-flight sessions contribute at close).
	Engine core.Stats `json:"engine"`
}

// QuarantineInfo describes one quarantined database: the name it was
// registered under, the label its files now carry on disk, and the
// load error that condemned it (empty for quarantines inherited from
// an earlier run).
type QuarantineInfo struct {
	Name  string `json:"name"`
	Label string `json:"label"`
	Error string `json:"error,omitempty"`
}

// ErrUnknownDatabase marks lookups of names that are not registered;
// front ends use it to tell "no such database" (404) apart from an
// operational failure.
var ErrUnknownDatabase = errors.New("unknown database")

// ErrOverloaded marks requests shed because every worker slot stayed
// busy for the whole AdmissionTimeout; front ends turn it into 503 +
// Retry-After. The request had no effect and may be retried.
var ErrOverloaded = errors.New("service overloaded")

// dbEntry is one registered database with a shared rendering universe
// (safe across goroutines: the database is frozen and emitted sets
// carry valid signatures, so padding only reads).
type dbEntry struct {
	name string
	db   *relation.Database
	u    *tupleset.Universe
	// snapFP is the fingerprint of the on-disk snapshot backing this
	// registration (zero without a Store). AppendRows carries it across
	// registry swaps — the snapshot does not change on append, only the
	// row log grows — and Store.Append verifies it, so an append racing
	// a drop + re-register can never durably log rows against the
	// replacement snapshot.
	snapFP uint64
}

// Service is the concurrent query-session subsystem. All methods are
// safe for concurrent use.
type Service struct {
	cfg Config
	// sem is the admission semaphore: one slot per concurrently
	// computing page or cursor construction, shared across sessions.
	sem chan struct{}
	// engineSem is the shared intra-query worker budget: capacity
	// EngineWorkers−1 (each admitted query brings its own first
	// worker). StartQuery takes extra slots non-blockingly — parallelism
	// degrades, admission never deadlocks — and the session returns
	// them when its cursor is closed or drained.
	engineSem chan struct{}

	// appendMu serialises AppendRows end to end (rebuild, log write,
	// registry swap), so concurrent appends to one database cannot
	// leave the in-memory registry and the durable row log disagreeing.
	appendMu sync.Mutex

	mu      sync.Mutex
	dbs     map[string]*dbEntry
	queries map[string]*Query
	cache   *resultCache
	// subs holds the live follow subscriptions, by database name then
	// session id; AppendRows pushes each append's delta batch to every
	// family-matched subscription of the appended database.
	subs   map[string]map[string]*subscription
	seq    uint64
	closed bool

	queriesStarted    int64
	queriesDone       int64
	queriesEvicted    int64
	cacheHits         int64
	cacheMisses       int64
	cacheEvictions    int64
	resultsServed     int64
	storeRetries      int64
	admissionTimeouts int64
	quarantined       []QuarantineInfo
	engine            core.Stats

	met metrics
	// finishedTraces retains the execution traces of closed sessions
	// (bounded FIFO of TraceHistory entries), so GET /queries/{id}/trace
	// keeps answering after the session is gone.
	finishedTraces map[string]*obs.TraceData
	finishedOrder  []string
}

// New builds a Service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:            cfg,
		sem:            make(chan struct{}, cfg.Workers),
		engineSem:      make(chan struct{}, cfg.EngineWorkers-1),
		dbs:            make(map[string]*dbEntry),
		queries:        make(map[string]*Query),
		subs:           make(map[string]map[string]*subscription),
		cache:          newResultCache(cfg.CacheCapacity, cfg.CacheMaxBytes),
		met:            newMetrics(cfg.Metrics),
		finishedTraces: make(map[string]*obs.TraceData),
	}
	if cfg.Store != nil && cfg.Metrics != nil {
		cfg.Store.Instrument(s.met.storeOp)
	}
	return s
}

// acquire takes one admission slot, waiting at most AdmissionTimeout
// (forever when the timeout is zero). On timeout the request is shed
// with ErrOverloaded instead of queueing without bound. The wait is
// observed into the admission-wait histogram either way.
func (s *Service) acquire() error {
	start := time.Now()
	defer func() { s.met.admissionWait.Observe(time.Since(start).Seconds()) }()
	if s.cfg.AdmissionTimeout == 0 {
		s.sem <- struct{}{}
		return nil
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.cfg.AdmissionTimeout < 0 {
		return s.shed()
	}
	t := time.NewTimer(s.cfg.AdmissionTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-t.C:
		return s.shed()
	}
}

func (s *Service) shed() error {
	s.mu.Lock()
	s.admissionTimeouts++
	s.mu.Unlock()
	s.met.admissionTimeouts.Inc()
	return fmt.Errorf("service: %w: all %d workers busy for %v",
		ErrOverloaded, s.cfg.Workers, s.cfg.AdmissionTimeout)
}

func (s *Service) release() { <-s.sem }

// retryStore runs one persistence operation with capped exponential
// backoff: transient failures (a flaky disk, a full-but-recovering
// volume) get up to RetryAttempts tries, while permanent failures —
// a snapshot fingerprint mismatch, files that no longer exist — fail
// immediately, since retrying cannot change them.
func (s *Service) retryStore(op func() error) error {
	backoff := s.cfg.RetryBackoff
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || attempt >= s.cfg.RetryAttempts || !retryable(err) {
			return err
		}
		s.mu.Lock()
		s.storeRetries++
		s.mu.Unlock()
		s.met.storeRetries.Inc()
		s.cfg.Logger.Warn("retrying store operation",
			"attempt", attempt, "backoff", backoff, "error", err)
		s.cfg.Sleep(backoff)
		if backoff < s.cfg.RetryBackoff<<3 {
			backoff *= 2
		}
	}
}

func retryable(err error) bool {
	return !errors.Is(err, store.ErrFingerprintMismatch) && !errors.Is(err, iofs.ErrNotExist)
}

// DatabaseInfo describes a registered database.
type DatabaseInfo struct {
	Name        string `json:"name"`
	Relations   int    `json:"relations"`
	Tuples      int    `json:"tuples"`
	Fingerprint string `json:"fingerprint"`
}

// AddDatabase registers db under name, freezing it (queries and cached
// results assume immutable content; for a mutable workload, DropDatabase
// it, Refresh and mutate the database, then register it again). Names
// are unique. With a configured Store the registration is durable: a
// snapshot is persisted before AddDatabase returns, and a persistence
// failure unregisters the database again.
func (s *Service) AddDatabase(name string, db *relation.Database) (DatabaseInfo, error) {
	return s.addDatabase(name, db, true)
}

func (s *Service) addDatabase(name string, db *relation.Database, persist bool) (DatabaseInfo, error) {
	if name == "" {
		return DatabaseInfo{}, fmt.Errorf("service: empty database name")
	}
	if db == nil {
		return DatabaseInfo{}, fmt.Errorf("service: nil database")
	}
	// Validate before fingerprinting: computing the fingerprint freezes
	// db, which must not happen on a rejected registration.
	check := func() error {
		if s.closed {
			return fmt.Errorf("service: closed")
		}
		if _, ok := s.dbs[name]; ok {
			return fmt.Errorf("service: database %q already registered", name)
		}
		return nil
	}
	s.mu.Lock()
	if err := check(); err != nil {
		s.mu.Unlock()
		return DatabaseInfo{}, err
	}
	s.mu.Unlock()
	fp := db.Fingerprint() // freezes; outside the lock
	s.mu.Lock()
	if err := check(); err != nil { // re-check: the lock was dropped
		s.mu.Unlock()
		return DatabaseInfo{}, err
	}
	s.dbs[name] = &dbEntry{name: name, db: db, u: tupleset.NewUniverse(db), snapFP: fp}
	s.mu.Unlock()

	if persist && s.cfg.Store != nil {
		// Snapshot IO happens outside the registry lock; a failure rolls
		// the registration back so memory and disk agree.
		if err := s.retryStore(func() error { return s.cfg.Store.Save(name, db) }); err != nil {
			s.mu.Lock()
			delete(s.dbs, name)
			s.mu.Unlock()
			return DatabaseInfo{}, fmt.Errorf("service: persisting database %q: %w", name, err)
		}
	}
	return DatabaseInfo{
		Name:        name,
		Relations:   db.NumRelations(),
		Tuples:      db.NumTuples(),
		Fingerprint: fmt.Sprintf("%016x", fp),
	}, nil
}

// DropDatabase removes the registered database of that name, deleting
// its persisted snapshot and row log when a Store is configured. The
// files go first: if their deletion fails the registration stays, so
// the in-memory registry never disagrees with what the next restart
// would recover. Open sessions against the database keep running (they
// hold the entry), and cached result lists stay — they are keyed by
// content fingerprint, so they remain correct for any re-registration
// with the same content.
func (s *Service) DropDatabase(name string) error {
	s.mu.Lock()
	if _, ok := s.dbs[name]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("service: %w %q", ErrUnknownDatabase, name)
	}
	s.mu.Unlock()
	if s.cfg.Store != nil {
		if err := s.cfg.Store.Delete(name); err != nil {
			return err
		}
	}
	s.mu.Lock()
	delete(s.dbs, name)
	// Follow subscriptions watch a name; the name is gone, so end the
	// streams (the base sessions keep paging — they hold the entry).
	s.closeSubsLocked(name)
	s.mu.Unlock()
	return nil
}

// Recover loads every database in the configured Store and registers
// it, so a restarted server resumes serving exactly what it served
// before. Row logs are replayed and immediately compacted back into
// their snapshots. A database that fails to load (corrupt snapshot,
// torn log) is quarantined — its files are renamed aside on disk, so
// the next recovery does not trip over it again — and reported both in
// the joined error and in Stats.QuarantinedDatabases; the rest recover
// and the service serves them. Recover returns nil infos and nil error
// when no Store is configured.
func (s *Service) Recover() ([]DatabaseInfo, error) {
	if s.cfg.Store == nil {
		return nil, nil
	}
	// Start from what is already quarantined on disk, so repeated
	// recoveries (and restarts) keep reporting earlier casualties
	// without re-quarantining anything.
	var quarantined []QuarantineInfo
	if prior, err := s.cfg.Store.ListQuarantined(); err == nil {
		for _, q := range prior {
			quarantined = append(quarantined, QuarantineInfo{Name: q.Name, Label: q.Label})
		}
	}
	names, err := s.cfg.Store.List()
	if err != nil {
		return nil, fmt.Errorf("service: recover: %w", err)
	}
	var infos []DatabaseInfo
	var errs []error
	for _, name := range names {
		db, replayed, err := s.cfg.Store.Load(name)
		if err != nil {
			info := QuarantineInfo{Name: name, Error: err.Error()}
			label, qerr := s.cfg.Store.Quarantine(name)
			if qerr != nil {
				errs = append(errs, errors.Join(err, qerr))
			} else {
				info.Label = label
				errs = append(errs, fmt.Errorf("service: recover: quarantined %q as %s: %w", name, label, err))
			}
			s.met.quarantines.Inc()
			s.cfg.Logger.Warn("quarantined database during recovery",
				"db", name, "label", info.Label, "error", err)
			quarantined = append(quarantined, info)
			continue
		}
		if replayed {
			// Fold the row log back into the snapshot now, so the next
			// restart loads one flat file with no replay.
			if err := s.retryStore(func() error { return s.cfg.Store.Save(name, db) }); err != nil {
				errs = append(errs, fmt.Errorf("service: compacting %q: %w", name, err))
				s.cfg.Logger.Error("compacting replayed row log failed", "db", name, "error", err)
				continue
			}
			s.cfg.Logger.Info("compacted row log into snapshot", "db", name)
		}
		info, err := s.addDatabase(name, db, false)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		infos = append(infos, info)
	}
	s.mu.Lock()
	s.quarantined = quarantined
	s.mu.Unlock()
	return infos, errors.Join(errs...)
}

// QuarantinedDatabases lists the databases quarantined by Recover (and
// quarantines inherited from earlier runs), sorted by label.
func (s *Service) QuarantinedDatabases() []QuarantineInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QuarantineInfo, len(s.quarantined))
	copy(out, s.quarantined)
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// ListDatabases describes every registered database, sorted by name.
func (s *Service) ListDatabases() []DatabaseInfo {
	s.mu.Lock()
	entries := make([]*dbEntry, 0, len(s.dbs))
	for _, e := range s.dbs {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	infos := make([]DatabaseInfo, len(entries))
	for i, e := range entries {
		// Fingerprint is cached on the frozen database; no recompute.
		infos[i] = DatabaseInfo{
			Name:        e.name,
			Relations:   e.db.NumRelations(),
			Tuples:      e.db.NumTuples(),
			Fingerprint: fmt.Sprintf("%016x", e.db.Fingerprint()),
		}
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Database returns the registered database of that name.
func (s *Service) Database(name string) (*relation.Database, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.dbs[name]
	if !ok {
		return nil, false
	}
	return e.db, true
}

// ExplainReport is POST /explain's payload: the engine's plan plus the
// service's cache-hit prediction for it.
type ExplainReport struct {
	*fd.Plan
	// CacheHitPredicted reports whether a session started now would
	// serve from the result cache: a previous session drained the same
	// canonical query over an identically-fingerprinted database and
	// its result list is still resident.
	CacheHitPredicted bool `json:"cache_hit_predicted"`
}

// Explain reports the plan of spec against the registered database
// dbName without opening a session: fd.Explain's engine plan plus a
// cache-hit prediction against the live result cache. The probe does
// not promote the cache entry — predicting a hit must not manufacture
// one's LRU standing.
func (s *Service) Explain(dbName string, spec fd.Query) (*ExplainReport, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: closed")
	}
	entry, ok := s.dbs[dbName]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("service: %w %q", ErrUnknownDatabase, dbName)
	}
	plan, err := fd.Explain(entry.db, spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	hit := s.cache.peek(plan.CacheKey)
	s.mu.Unlock()
	return &ExplainReport{Plan: plan, CacheHitPredicted: hit}, nil
}

// StartQuery opens a query session for the declarative spec q against
// the registered database dbName. When an identical query (by
// fd.Query.Canonical) on an identically-fingerprinted database has
// been drained before, the session serves pages from the result cache
// without touching the enumerators; otherwise it opens the fd.Results
// cursor (inside a worker slot — construction can carry the ranked
// modes' preprocessing).
//
// The session carries ctx: cancelling it aborts an in-flight page
// computation within one enumeration step and poisons the session with
// ctx.Err(). Pass a context that outlives the session (a server
// lifetime context, not a per-request one) — sessions are closed
// explicitly via Close, idle eviction, or Service.Close, each of which
// also cancels the session's derived context. A nil ctx means
// context.Background().
func (s *Service) StartQuery(ctx context.Context, dbName string, spec fd.Query) (*Query, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	vStart := s.cfg.Now()
	if err := spec.Validate(); err != nil {
		s.met.queriesRejected.Inc()
		return nil, err
	}
	vEnd := s.cfg.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: closed")
	}
	entry, ok := s.dbs[dbName]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: %w %q", ErrUnknownDatabase, dbName)
	}
	s.mu.Unlock()
	// Read the fingerprint live (cached by the database, invalidated by
	// Refresh) so a Refresh+mutate between queries can never replay a
	// stale cached result list.
	fp := entry.db.Fingerprint()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: closed")
	}
	key := fmt.Sprintf("%016x|%s", fp, spec.Canonical())
	s.seq++
	id := fmt.Sprintf("q%d", s.seq)
	qctx, cancel := context.WithCancel(ctx)
	q := &Query{id: id, svc: s, spec: spec, dbName: dbName, key: key, db: entry,
		cancel: cancel, uncacheable: s.cfg.CacheCapacity < 0,
		trace: obs.NewTrace(id, s.cfg.Now), started: s.cfg.Now(),
		progress: &obs.Progress{}, delay: obs.NewDelay(0)}
	q.delayHist = s.met.resultDelay(dbName, q.mode())
	q.delay.SetSink(q.observeDelay)
	q.trace.Root().Record("validate", vStart, vEnd.Sub(vStart), nil)
	q.touch(s.cfg.Now())

	cStart := s.cfg.Now()
	cached, hit := s.cache.get(key)
	q.trace.Root().Record("cache", cStart, s.cfg.Now().Sub(cStart), nil,
		"hit", strconv.FormatBool(hit))
	if hit {
		s.cacheHits++
		s.queriesStarted++
		q.cached, q.fromCache = cached, true
		q.progress.SetPhase(obs.PhaseCached)
		s.queries[id] = q
		if spec.Follow {
			s.registerFollowLocked(q)
		}
		s.met.activeQueries.Set(int64(len(s.queries)))
		s.mu.Unlock()
		s.met.cacheHits.Inc()
		s.met.queries(dbName, q.mode()).Inc()
		return q, nil
	}
	s.mu.Unlock()

	// Intra-query parallelism: grant extra enumeration workers from the
	// shared engine budget, non-blockingly — a busy service degrades a
	// parallel query toward sequential instead of queueing it. The
	// granted count overrides the spec handed to the executor only; the
	// cache key above keeps the client's requested spec.
	run := spec
	grantedWorkers := 1
	if want := spec.ParallelWorkers(); want > 1 {
		granted := 1
		for granted < want {
			select {
			case s.engineSem <- struct{}{}:
				granted++
				continue
			default:
			}
			break
		}
		run.Options.Workers = granted
		q.engineSlots = granted - 1
		grantedWorkers = granted
	}
	// Parallel tasks report completion spans from worker goroutines;
	// attach them under the page span being computed (or the root, for
	// tasks outliving their page) without taking the session lock —
	// Close holds it while waiting for those very workers.
	run.Options.TaskObserver = func(ts fd.TaskSpan) {
		sp := q.pageSpan.Load()
		if sp == nil {
			sp = q.trace.Root()
		}
		sp.Record("task", ts.Start, ts.End.Sub(ts.Start), ts.Stats.Map(),
			"label", ts.Label)
	}
	// Live introspection: fd.Open keeps the progress counters current
	// and routes every inter-result gap through the delay tracker (whose
	// sink feeds the metrics histogram and the SLO watchdog).
	run.Options.Progress, run.Options.Delay = q.progress, q.delay

	adStart := s.cfg.Now()
	if err := s.acquire(); err != nil {
		q.releaseEngine()
		cancel()
		return nil, err
	}
	q.trace.Root().Record("admission", adStart, s.cfg.Now().Sub(adStart), nil)
	oStart := s.cfg.Now()
	cur, err := fd.Open(qctx, entry.db, run)
	s.release()
	if err != nil {
		q.releaseEngine()
		cancel()
		return nil, err
	}
	// The open span carries the cursor's construction-time counters
	// (ranked modes pay their preprocessing inside Open); page spans
	// then carry telescoping deltas, so the trace's span stats sum to
	// the cursor's final Stats().
	q.lastStats = cur.Stats()
	q.trace.Root().Record("open", oStart, s.cfg.Now().Sub(oStart), q.lastStats.Map(),
		"workers", strconv.Itoa(grantedWorkers))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		cur.Close()
		cancel()
		return nil, fmt.Errorf("service: closed")
	}
	s.cacheMisses++
	s.queriesStarted++
	q.cur = cur
	s.queries[id] = q
	if spec.Follow {
		s.registerFollowLocked(q)
	}
	s.met.activeQueries.Set(int64(len(s.queries)))
	s.met.cacheMisses.Inc()
	s.met.queries(dbName, q.mode()).Inc()
	return q, nil
}

// QueryTrace returns the execution trace of the session with that id:
// a live snapshot while the session is open, the final trace from the
// bounded finished history after it closed.
func (s *Service) QueryTrace(id string) (*obs.TraceData, bool) {
	s.mu.Lock()
	q, live := s.queries[id]
	d, ok := s.finishedTraces[id]
	s.mu.Unlock()
	if live {
		return q.trace.Snapshot(), true
	}
	return d, ok
}

// retainTrace adds a closed session's final trace to the bounded FIFO
// history QueryTrace serves from.
func (s *Service) retainTrace(d *obs.TraceData) {
	if d == nil || s.cfg.TraceHistory < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.finishedTraces[d.ID]; !ok {
		s.finishedOrder = append(s.finishedOrder, d.ID)
	}
	s.finishedTraces[d.ID] = d
	for len(s.finishedOrder) > s.cfg.TraceHistory {
		old := s.finishedOrder[0]
		s.finishedOrder = s.finishedOrder[1:]
		delete(s.finishedTraces, old)
	}
}

// Query returns the open session with the given id.
func (s *Service) Query(id string) (*Query, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queries[id]
	return q, ok
}

// EvictIdle closes every session idle for longer than the configured
// timeout and returns how many were evicted. fdserve runs it on a
// timer; it is also safe to call inline.
func (s *Service) EvictIdle() int {
	deadline := s.cfg.Now().Add(-s.cfg.IdleTimeout).UnixNano()
	s.mu.Lock()
	var expired []*Query
	for id, q := range s.queries {
		if q.busy.Load() > 0 {
			continue // a page is computing or queued: in use, not idle
		}
		if q.lastUsed.Load() < deadline {
			expired = append(expired, q)
			delete(s.queries, id)
		}
	}
	s.queriesEvicted += int64(len(expired))
	s.met.activeQueries.Set(int64(len(s.queries)))
	s.mu.Unlock()
	s.met.queriesEvicted.Add(int64(len(expired)))
	for _, q := range expired {
		q.shut()
		s.cfg.Logger.Info("evicted idle query session", "id", q.id, "db", q.dbName)
	}
	return len(expired)
}

// Stats snapshots the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Databases:            len(s.dbs),
		ActiveQueries:        len(s.queries),
		QueriesStarted:       s.queriesStarted,
		QueriesDone:          s.queriesDone,
		QueriesEvicted:       s.queriesEvicted,
		CacheHits:            s.cacheHits,
		CacheMisses:          s.cacheMisses,
		CacheEvictions:       s.cacheEvictions,
		CacheEntries:         s.cache.len(),
		CacheBytes:           s.cache.bytes(),
		ResultsServed:        s.resultsServed,
		StoreRetries:         s.storeRetries,
		AdmissionTimeouts:    s.admissionTimeouts,
		QuarantinedDatabases: append([]QuarantineInfo(nil), s.quarantined...),
		Engine:               s.engine,
	}
}

// Close shuts the service: every open session is closed and further
// calls fail. Safe to call more than once.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	open := make([]*Query, 0, len(s.queries))
	for id, q := range s.queries {
		open = append(open, q)
		delete(s.queries, id)
	}
	s.closeSubsLocked("")
	s.met.activeQueries.Set(0)
	s.mu.Unlock()
	for _, q := range open {
		q.shut()
	}
	s.cfg.Logger.Info("service closed", "sessions_closed", len(open))
}

// Query is one open query session: a suspended enumeration paged with
// Next(k). Sessions are safe for concurrent use; pages are serialised
// per session.
type Query struct {
	id     string
	svc    *Service
	spec   fd.Query
	dbName string
	key    string
	db     *dbEntry
	// cancel releases the session's derived context, aborting any
	// in-flight enumeration step; called on Close, eviction and
	// Service.Close.
	cancel context.CancelFunc

	// lastUsed is the unix-nano time of the last page, read without
	// the session lock by the eviction sweep.
	lastUsed atomic.Int64
	// busy counts in-flight Next calls; the eviction sweep skips busy
	// sessions (a page queued on the worker semaphore longer than the
	// idle timeout is in use, not idle).
	busy atomic.Int32

	// trace records the session's execution spans; started anchors the
	// slow-query wall time.
	trace   *obs.Trace
	started time.Time
	// pageSpan points at the page span currently being computed, so
	// the parallel executor's TaskObserver (running on worker
	// goroutines) attaches task spans to the right page without taking
	// the session lock — shut holds it while Close waits for those
	// very workers.
	pageSpan atomic.Pointer[obs.Span]
	// progress and delay are the session's live-introspection trackers:
	// progress carries the atomic counters GET /queries/{id}/progress
	// reads mid-flight, delay the inter-result gaps feeding
	// fd_result_delay_seconds and the delay-SLO watchdog. Both are set
	// once at StartQuery, before the session is published.
	progress *obs.Progress
	delay    *obs.Delay
	// delayHist is the pre-resolved fd_result_delay_seconds series for
	// this session's (db, mode), so the per-result sink does no registry
	// lookups; nil without a registry.
	delayHist *obs.Histogram
	// sloLogged makes the delay-SLO warning once-per-session (every
	// breach still counts in fd_delay_slo_breaches_total).
	sloLogged atomic.Bool

	mu        sync.Mutex
	cur       fd.Results // nil when serving from cache
	cached    []Result   // cache-hit source (shared, read-only)
	fromCache bool
	gathered  []Result // miss: accumulated for the cache insert
	// uncacheable marks sessions whose output must not (caching
	// disabled) or can no longer (over CacheMaxResults) be cached.
	uncacheable bool
	// engineSlots counts extra intra-query workers held from the
	// service's shared engine budget, returned when the cursor ends.
	engineSlots int
	// sub is the session's live-maintenance subscription (specs with
	// Follow); set once at StartQuery, before the session is published.
	sub *subscription
	// lastStats is the previous cursor Stats() snapshot; page spans
	// carry the telescoping difference from it, so the trace's span
	// stats sum to the final counters.
	lastStats fd.Stats
	served    int
	done      bool
	closed    bool
}

// mode names the session's evaluation mode for metric labels (the
// spec's mode with the zero value resolved).
func (q *Query) mode() string {
	if q.spec.Mode == "" {
		return string(fd.ModeExact)
	}
	return string(q.spec.Mode)
}

// finish accounts one completed (drained) enumeration: the finished
// counter, the delay figures stamped onto the trace, and the
// slow-query log when the session's wall time exceeded the configured
// threshold — the warning carries the trace summary and the delay
// figures, so a slow query is diagnosable from the log line alone.
func (q *Query) finish(dur time.Duration) {
	q.svc.met.queriesFinished.Inc()
	d := q.stampDelay()
	if sq := q.svc.cfg.SlowQuery; sq > 0 && dur >= sq {
		q.svc.met.slowQueries.Inc()
		q.svc.cfg.Logger.Warn("slow query",
			"id", q.id, "db", q.dbName, "mode", q.mode(),
			"duration", dur, "served", q.served,
			"delay_max_ms", d.MaxMillis, "delay_p99_ms", d.P99Millis,
			"trace", q.trace.Snapshot().Summary())
	}
}

// stampDelay writes the session's delay summary onto the trace root as
// delay_max_ms / delay_p99_ms attributes (once observations exist), so
// trace consumers see the measured delay bound next to the span tree.
func (q *Query) stampDelay() obs.DelaySummary {
	d := q.delay.Snapshot()
	if d.Count > 0 {
		q.trace.Root().SetAttr("delay_max_ms", strconv.FormatFloat(d.MaxMillis, 'g', 6, 64))
		q.trace.Root().SetAttr("delay_p99_ms", strconv.FormatFloat(d.P99Millis, 'g', 6, 64))
	}
	return d
}

// observeDelay is the session's delay-tracker sink, invoked once per
// produced result with the inter-result gap: it feeds the
// fd_result_delay_seconds histogram and enforces the delay SLO —
// every breach counts, the first one per session also logs a warning
// with the trace summary.
func (q *Query) observeDelay(sec float64) {
	q.delayHist.Observe(sec)
	slo := q.svc.cfg.DelaySLO
	if slo <= 0 || sec <= slo.Seconds() {
		return
	}
	q.svc.met.delayBreaches.Inc()
	if q.sloLogged.CompareAndSwap(false, true) {
		q.svc.cfg.Logger.Warn("delay SLO breach",
			"id", q.id, "db", q.dbName, "mode", q.mode(),
			"slo", slo, "gap", time.Duration(sec*float64(time.Second)).Round(time.Microsecond),
			"trace", q.trace.Snapshot().Summary())
	}
}

// ProgressReport is the live view of one session: the enumeration's
// atomic progress counters plus the delay summary, readable mid-page
// without taking the session lock. fdserve serves it at
// GET /queries/{id}/progress.
type ProgressReport struct {
	ID        string `json:"id"`
	DB        string `json:"db"`
	Mode      string `json:"mode"`
	FromCache bool   `json:"from_cache"`
	obs.ProgressData
	Delay obs.DelaySummary `json:"delay"`
}

// Progress snapshots the session's live counters. It never blocks on
// the session lock, so it answers truthfully mid-page — the point of
// the endpoint.
func (q *Query) Progress() ProgressReport {
	return ProgressReport{
		ID:           q.id,
		DB:           q.dbName,
		Mode:         q.mode(),
		FromCache:    q.fromCache,
		ProgressData: q.progress.Snapshot(),
		Delay:        q.delay.Snapshot(),
	}
}

// releaseEngine returns the session's extra intra-query workers to the
// shared budget. Idempotent; called once the cursor is closed.
func (q *Query) releaseEngine() {
	for ; q.engineSlots > 0; q.engineSlots-- {
		<-q.svc.engineSem
	}
}

// ID returns the session id.
func (q *Query) ID() string { return q.id }

// Spec returns the query's declarative spec.
func (q *Query) Spec() fd.Query { return q.spec }

// DatabaseName returns the name the queried database is registered
// under.
func (q *Query) DatabaseName() string { return q.dbName }

// DB returns the database the query runs against.
func (q *Query) DB() *relation.Database { return q.db.db }

// Universe returns the database's shared rendering universe, so
// front ends pad results without rebuilding attribute layouts per page.
func (q *Query) Universe() *tupleset.Universe { return q.db.u }

// FromCache reports whether the session serves from the result cache.
func (q *Query) FromCache() bool { return q.fromCache }

// Trace snapshots the session's execution trace so far.
func (q *Query) Trace() *obs.TraceData { return q.trace.Snapshot() }

// Served returns how many results the session has handed out.
func (q *Query) Served() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.served
}

func (q *Query) touch(now time.Time) { q.lastUsed.Store(now.UnixNano()) }

// Next returns the next page of up to k results (k is clamped to
// [1, MaxPageSize]) and reports whether the enumeration is complete.
// A page against a live cursor occupies one worker slot for its
// duration — the admission control bounding concurrent engine work.
func (q *Query) Next(k int) ([]Result, bool, error) {
	if k < 1 {
		k = 1
	}
	if limit := q.svc.cfg.MaxPageSize; k > limit {
		k = limit
	}
	q.busy.Add(1)
	defer q.busy.Add(-1)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, true, fmt.Errorf("service: query %s closed", q.id)
	}
	q.touch(q.svc.cfg.Now())
	defer func() { q.touch(q.svc.cfg.Now()) }()

	if q.fromCache {
		pStart := q.svc.cfg.Now()
		end := q.served + k
		if end > len(q.cached) {
			end = len(q.cached)
		}
		out := q.cached[q.served:end]
		q.served = end
		q.progress.AddEmitted(int64(len(out)))
		done := q.served == len(q.cached)
		if done && !q.done {
			q.done = true
			q.progress.SetPhase(obs.PhaseDone)
			q.svc.mu.Lock()
			q.svc.queriesDone++
			q.svc.mu.Unlock()
			// No cursor holds the derived context, but its cancel func
			// stays registered on the parent until called — release it
			// on drain, as the cursor path does, so long-lived servers
			// don't accumulate one registration per cache hit.
			q.cancel()
			q.finish(q.svc.cfg.Now().Sub(q.started))
		}
		q.svc.mu.Lock()
		q.svc.resultsServed += int64(len(out))
		q.svc.mu.Unlock()
		q.svc.met.results(q.dbName).Add(int64(len(out)))
		// Cached pages do no engine work; the span carries only the
		// emission count.
		q.trace.Root().Record("next", pStart, q.svc.cfg.Now().Sub(pStart),
			map[string]int64{"emitted": int64(len(out))},
			"k", strconv.Itoa(k), "cached", "true")
		return out, done, nil
	}
	if q.done {
		return nil, true, nil
	}

	page := q.trace.Root().Start("next", "k", strconv.Itoa(k))
	q.pageSpan.Store(page)
	adStart := q.svc.cfg.Now()
	if err := q.svc.acquire(); err != nil {
		// Shed, not failed: the session stays usable and the client may
		// retry the identical Next.
		q.pageSpan.Store(nil)
		page.SetAttr("outcome", "shed")
		page.End()
		return nil, false, err
	}
	page.Record("admission", adStart, q.svc.cfg.Now().Sub(adStart), nil)
	out := make([]Result, 0, k)
	for len(out) < k {
		r, ok := q.cur.Next()
		if !ok {
			break
		}
		out = append(out, r)
		if !q.uncacheable {
			q.gathered = append(q.gathered, r)
			if limit := q.svc.cfg.CacheMaxResults; limit > 0 && len(q.gathered) > limit {
				// Too large to cache: drop the accumulation so a huge
				// enumeration doesn't pin its whole output in memory.
				q.uncacheable = true
				q.gathered = nil
			}
		}
	}
	q.svc.release()
	q.served += len(out)

	if len(out) == k {
		stats := q.cur.Stats()
		q.pageSpan.Store(nil)
		page.SetStats(stats.Sub(q.lastStats).Map())
		page.End()
		q.lastStats = stats
		q.svc.mu.Lock()
		q.svc.resultsServed += int64(len(out))
		q.svc.mu.Unlock()
		q.svc.met.results(q.dbName).Add(int64(len(out)))
		return out, false, nil
	}

	// Exhausted (or failed/cancelled): fold engine stats, and on clean
	// exhaustion publish the drained list to the result cache. Close
	// before the stats snapshot — a parallel cursor folds its last
	// in-flight workers' counters as Close waits for them (their task
	// spans attach to this page, which is why pageSpan clears only
	// after the Close).
	err := q.cur.Err()
	q.done = true
	q.cur.Close()
	stats := q.cur.Stats()
	q.pageSpan.Store(nil)
	page.SetStats(stats.Sub(q.lastStats).Map())
	page.End()
	q.lastStats = stats
	q.releaseEngine()
	evicted := 0
	q.svc.mu.Lock()
	q.svc.resultsServed += int64(len(out))
	q.svc.engine.Add(stats)
	q.svc.queriesDone++
	if err == nil && !q.uncacheable && !q.svc.closed {
		evicted = q.svc.cache.put(q.key, q.spec, q.gathered)
		q.svc.cacheEvictions += int64(evicted)
	}
	q.svc.met.syncCache(q.svc.cache)
	q.svc.mu.Unlock()
	q.svc.met.cacheEvictions.Add(int64(evicted))
	q.svc.met.results(q.dbName).Add(int64(len(out)))
	q.cur = nil
	q.gathered = nil
	// The enumeration is over; release the session's derived context
	// now instead of waiting for Close or eviction.
	q.cancel()
	q.finish(q.svc.cfg.Now().Sub(q.started))
	return out, true, err
}

// Close ends the session early, releasing it from the registry. Closing
// an exhausted or already-closed session is a no-op.
func (q *Query) Close() {
	q.svc.mu.Lock()
	delete(q.svc.queries, q.id)
	q.svc.met.activeQueries.Set(int64(len(q.svc.queries)))
	q.svc.mu.Unlock()
	q.shut()
}

// shut closes the session state without touching the registry (the
// caller has already removed it). The session's final trace — with a
// terminal "close" span carrying any engine counters not yet
// attributed to a page — moves to the finished-trace history, so
// QueryTrace keeps answering for recently closed sessions.
func (q *Query) shut() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.svc.dropFollow(q)
	if q.cancel != nil {
		q.cancel()
	}
	if q.cur != nil {
		// Close before the stats snapshot: a parallel cursor folds its
		// in-flight workers' counters as Close waits for them to exit
		// (their task spans record while pageSpan is still current).
		cStart := q.svc.cfg.Now()
		q.cur.Close()
		stats := q.cur.Stats()
		q.pageSpan.Store(nil)
		q.trace.Root().Record("close", cStart, q.svc.cfg.Now().Sub(cStart),
			stats.Sub(q.lastStats).Map())
		q.lastStats = stats
		q.cur = nil
		q.svc.mu.Lock()
		q.svc.engine.Add(stats)
		if !q.done {
			q.svc.queriesDone++
		}
		q.svc.mu.Unlock()
		if !q.done {
			q.svc.met.queriesFinished.Inc()
		}
		q.releaseEngine()
	} else if !q.done && q.cached != nil {
		q.svc.mu.Lock()
		q.svc.queriesDone++
		q.svc.mu.Unlock()
		q.svc.met.queriesFinished.Inc()
	}
	if !q.done {
		// Early close: the drain path stamped already (via finish).
		q.stampDelay()
		q.progress.SetPhase(obs.PhaseDone)
	}
	q.trace.Root().End()
	q.svc.retainTrace(q.trace.Snapshot())
}
