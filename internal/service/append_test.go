package service

import (
	"context"
	"errors"
	"testing"
	"time"

	fd "repro"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/store/faultfs"
)

// scratchKeys enumerates db from scratch and returns the result
// multiset as canonical keys.
func scratchKeys(t *testing.T, db *relation.Database) map[string]int {
	t.Helper()
	sets, _, err := core.FullDisjunction(db, core.Options{UseIndex: true, UseJoinIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int)
	for _, s := range sets {
		out[s.Key()]++
	}
	return out
}

func sameKeys(t *testing.T, label string, got, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d distinct results, want %d", label, len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("%s: result %q appears %d times, want %d", label, k, got[k], n)
		}
	}
}

// TestAppendPatchesCache: an append must patch the drained result
// cache across the fingerprint transition — the repeat query serves
// from cache AND sees the post-append result set.
func TestAppendPatchesCache(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	db := testDB(t, "chain", 5)
	if _, err := svc.AddDatabase("d", db); err != nil {
		t.Fatal(err)
	}
	oldFP := db.Fingerprint()
	q1, err := svc.StartQuery(context.Background(), "d", fd.Query{})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, q1, 7)
	if svc.Stats().CacheEntries != 1 {
		t.Fatalf("cache entries = %d, want 1", svc.Stats().CacheEntries)
	}

	donor := testDB(t, "chain", 6)
	batch := []relation.Tuple{*donor.Relation(0).Tuple(0), *donor.Relation(0).Tuple(1)}
	info, err := svc.AppendRows("d", db.Relation(0).Name(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if info.Tuples != db.NumTuples()+2 {
		t.Fatalf("post-append tuples = %d, want %d", info.Tuples, db.NumTuples()+2)
	}
	newDB, _ := svc.Database("d")
	if newDB.Fingerprint() == oldFP {
		t.Fatal("fingerprint did not roll across the append")
	}

	// The patched entry is keyed by the new fingerprint; the old key is
	// gone (no other database carries the old content).
	if got := svc.Stats().CacheEntries; got != 1 {
		t.Fatalf("cache entries after append = %d, want 1 (patched, not duplicated)", got)
	}
	q2, err := svc.StartQuery(context.Background(), "d", fd.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if !q2.FromCache() {
		t.Fatal("append invalidated the result cache instead of patching it")
	}
	sameKeys(t, "patched cache", keysOf(drain(t, q2, 7)), scratchKeys(t, newDB))
}

// TestAppendDropsUnpatchableCacheEntries: ranked and bounded lists
// cannot be patched by a delta; an append must drop them rather than
// leave them reachable.
func TestAppendDropsUnpatchableCacheEntries(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	db := testDB(t, "chain", 5)
	if _, err := svc.AddDatabase("d", db); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []fd.Query{
		{Mode: fd.ModeRanked, Rank: "fmax"},
		{K: 2},
	} {
		q, err := svc.StartQuery(context.Background(), "d", spec)
		if err != nil {
			t.Fatal(err)
		}
		drain(t, q, 7)
	}
	if got := svc.Stats().CacheEntries; got != 2 {
		t.Fatalf("cache entries = %d, want 2", got)
	}
	donor := testDB(t, "chain", 6)
	if _, err := svc.AppendRows("d", db.Relation(0).Name(),
		[]relation.Tuple{*donor.Relation(0).Tuple(0)}); err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().CacheEntries; got != 0 {
		t.Fatalf("cache entries after append = %d, want 0 (unpatchable lists dropped)", got)
	}
}

// TestFollowSubscription: a follow session receives each append's
// delta, and patching the followed base with the delivered batches
// reproduces the post-append full disjunction.
func TestFollowSubscription(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	db := testDB(t, "chain", 7)
	if _, err := svc.AddDatabase("d", db); err != nil {
		t.Fatal(err)
	}
	q, err := svc.StartQuery(context.Background(), "d", fd.Query{Follow: true})
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsFollow() {
		t.Fatal("session is not a follow subscription")
	}
	live := drain(t, q, 5)

	donor := testDB(t, "chain", 8)
	relName := db.Relation(1).Name()
	batch := []relation.Tuple{*donor.Relation(1).Tuple(0), *donor.Relation(1).Tuple(1)}
	if _, err := svc.AppendRows("d", relName, batch); err != nil {
		t.Fatal(err)
	}
	select {
	case <-q.FollowSignal():
	case <-time.After(5 * time.Second):
		t.Fatal("no follow signal after append")
	}
	batches, closed := q.FollowBatches()
	if closed {
		t.Fatal("subscription closed by append")
	}
	if len(batches) != 1 {
		t.Fatalf("delivered %d batches, want 1", len(batches))
	}
	b := batches[0]
	kept := live[:0:0]
	for _, r := range live {
		subsumed := false
		for _, a := range b.Results {
			if a.Set.ContainsAll(r.Set) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			kept = append(kept, r)
		}
	}
	live = append(kept, b.Results...)
	newDB, _ := svc.Database("d")
	sameKeys(t, "followed", keysOf(live), scratchKeys(t, newDB))

	// Closing the session ends the subscription; later appends deliver
	// nothing to it.
	q.Close()
	if _, closed := q.FollowBatches(); !closed {
		t.Fatal("subscription still open after Close")
	}
	if _, err := svc.AppendRows("d", relName,
		[]relation.Tuple{*donor.Relation(1).Tuple(2)}); err != nil {
		t.Fatal(err)
	}
	if batches, _ := q.FollowBatches(); len(batches) != 0 {
		t.Fatalf("closed subscription received %d batches", len(batches))
	}
}

// TestFollowValidation: follow composes only with unbounded exact and
// approx specs.
func TestFollowValidation(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.AddDatabase("d", testDB(t, "chain", 7)); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []fd.Query{
		{Mode: fd.ModeRanked, Rank: "fmax", Follow: true},
		{K: 3, Follow: true},
	} {
		if _, err := svc.StartQuery(context.Background(), "d", spec); err == nil {
			t.Fatalf("spec %+v: follow accepted, want validation error", spec)
		}
	}
}

// TestAppendErrorClassification: the append path must expose typed
// errors — unknown names for 404s, storage exhaustion for 500s — so
// the front end classifies on the returned error, not its pre-checks.
func TestAppendErrorClassification(t *testing.T) {
	db := testDB(t, "chain", 9)
	batch := appendBatch(db, "x")

	svc := New(Config{})
	if _, err := svc.AppendRows("nope", "R00", batch); !errors.Is(err, ErrUnknownDatabase) {
		t.Fatalf("unknown database: err = %v, want ErrUnknownDatabase", err)
	}
	if _, err := svc.AddDatabase("d", db); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AppendRows("d", "nope", batch); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("unknown relation: err = %v, want ErrUnknownRelation", err)
	}
	svc.Close()

	// Persistent store faults exhaust the retries and surface wrapped
	// in ErrStorage (an operational failure), with the root cause still
	// reachable.
	fsys := faultfs.New()
	st, err := store.OpenFS("data", fsys)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := New(Config{
		Store:        st,
		RetryBackoff: time.Millisecond,
		Sleep:        func(time.Duration) { fsys.ArmAfter(1, faultfs.FailOp) },
	})
	defer svc2.Close()
	db2 := testDB(t, "chain", 9)
	if _, err := svc2.AddDatabase("d", db2); err != nil {
		t.Fatal(err)
	}
	fsys.ArmAfter(1, faultfs.FailOp)
	_, err = svc2.AppendRows("d", db2.Relation(0).Name(), appendBatch(db2, "y"))
	if !errors.Is(err, ErrStorage) {
		t.Fatalf("persistent store fault: err = %v, want ErrStorage", err)
	}
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("root cause lost: err = %v, want ErrInjected in the chain", err)
	}
}
