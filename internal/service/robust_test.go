package service

// Graceful-degradation tests: recovery quarantine, transient-error
// retry, and bounded-admission load shedding. The fault-injection side
// uses internal/store/faultfs through the store's FS seam; the
// quarantine side corrupts real files in a temp dir, as an operator
// incident would.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	fd "repro"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/store/faultfs"
)

func TestRecoverQuarantinesCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("good", testDB(t, "chain", 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("bad", testDB(t, "chain", 2)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the second snapshot in place: flip its magic.
	if err := os.WriteFile(filepath.Join(dir, "bad.fdb"), []byte("garbage, not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	svc := New(Config{Store: st})
	defer svc.Close()
	infos, err := svc.Recover()
	if err == nil {
		t.Fatal("Recover over a corrupt snapshot reported no error")
	}
	if len(infos) != 1 || infos[0].Name != "good" {
		t.Fatalf("recovered %v, want just [good]", infos)
	}
	if got := svc.ListDatabases(); len(got) != 1 || got[0].Name != "good" {
		t.Fatalf("serving %v, want just [good]", got)
	}

	qs := svc.QuarantinedDatabases()
	if len(qs) != 1 {
		t.Fatalf("QuarantinedDatabases = %v, want one entry", qs)
	}
	if qs[0].Name != "bad" || qs[0].Label != "bad.corrupt-1" || qs[0].Error == "" {
		t.Fatalf("quarantine entry = %+v, want name bad, label bad.corrupt-1, non-empty error", qs[0])
	}
	if got := svc.Stats().QuarantinedDatabases; len(got) != 1 || got[0] != qs[0] {
		t.Fatalf("Stats.QuarantinedDatabases = %v, want %v", got, qs)
	}
	// The corrupt bytes moved aside on disk — not deleted, not in place.
	if _, err := os.Stat(filepath.Join(dir, "bad.fdb")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("bad.fdb still in place after quarantine (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.fdb.corrupt-1")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}

	// Quarantine-loop regression: a second recovery (fresh service, same
	// store) must find nothing new to quarantine — the moved-aside files
	// are reported, with no error of their own, and nothing re-fails.
	svc2 := New(Config{Store: st})
	defer svc2.Close()
	if _, err := svc2.Recover(); err != nil {
		t.Fatalf("second Recover still failing: %v", err)
	}
	qs2 := svc2.QuarantinedDatabases()
	if len(qs2) != 1 || qs2[0].Label != "bad.corrupt-1" || qs2[0].Error != "" {
		t.Fatalf("second recovery quarantine list = %+v, want the inherited entry only", qs2)
	}
	// The name is reusable after quarantine.
	if _, err := svc2.AddDatabase("bad", testDB(t, "chain", 3)); err != nil {
		t.Fatalf("re-registering a quarantined name: %v", err)
	}
}

// appendBatch builds one appendable tuple for relation 0 of db.
func appendBatch(db *relation.Database, label string) []relation.Tuple {
	width := db.Relation(0).Schema().Len()
	return []relation.Tuple{{Label: label, Values: make([]relation.Value, width), Imp: 1, Prob: 1}}
}

func TestAppendRowsRetriesTransientFaults(t *testing.T) {
	fsys := faultfs.New()
	st, err := store.OpenFS("data", fsys)
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	svc := New(Config{
		Store:        st,
		RetryBackoff: 7 * time.Millisecond,
		Sleep:        func(d time.Duration) { slept = append(slept, d) },
	})
	defer svc.Close()
	db := testDB(t, "chain", 1)
	if _, err := svc.AddDatabase("d", db); err != nil {
		t.Fatal(err)
	}
	relName := db.Relation(0).Name()

	// One transient failure on the next store operation (the snapshot
	// open inside Append): the retry must land the rows.
	fsys.ArmAfter(1, faultfs.FailOp)
	info, err := svc.AppendRows("d", relName, appendBatch(db, "r1"))
	if err != nil {
		t.Fatalf("AppendRows with one transient fault: %v", err)
	}
	if !fsys.Fired() {
		t.Fatal("fault never fired")
	}
	if info.Tuples != db.NumTuples()+1 {
		t.Fatalf("after retried append: %d tuples, want %d", info.Tuples, db.NumTuples()+1)
	}
	if got := svc.Stats().StoreRetries; got != 1 {
		t.Fatalf("StoreRetries = %d, want 1", got)
	}
	if len(slept) != 1 || slept[0] != 7*time.Millisecond {
		t.Fatalf("backoff sleeps = %v, want [7ms]", slept)
	}

	// A persistent fault: re-arm inside Sleep so every attempt fails on
	// its first store operation. The default three attempts sleep with
	// doubling backoff, then surface the injected error; nothing is
	// appended.
	slept = nil
	fsys.ArmAfter(1, faultfs.FailOp)
	svc.cfg.Sleep = func(d time.Duration) {
		slept = append(slept, d)
		fsys.ArmAfter(1, faultfs.FailOp)
	}
	if _, err := svc.AppendRows("d", relName, appendBatch(db, "r2")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("AppendRows under persistent faults: err = %v, want ErrInjected", err)
	}
	if len(slept) != 2 || slept[0] != 7*time.Millisecond || slept[1] != 14*time.Millisecond {
		t.Fatalf("backoff sleeps = %v, want [7ms 14ms]", slept)
	}
	if got := svc.Stats().StoreRetries; got != 3 {
		t.Fatalf("StoreRetries = %d, want 3 (1 + 2 from the failed append)", got)
	}
}

func TestPermanentStoreErrorsNotRetried(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	svc := New(Config{Store: st, Sleep: func(d time.Duration) { slept = append(slept, d) }})
	defer svc.Close()
	db := testDB(t, "chain", 1)
	if _, err := svc.AddDatabase("d", db); err != nil {
		t.Fatal(err)
	}
	// Replace the snapshot behind the service's back: the append's
	// fingerprint check now fails permanently.
	if err := st.Save("d", testDB(t, "chain", 2)); err != nil {
		t.Fatal(err)
	}
	_, err = svc.AppendRows("d", db.Relation(0).Name(), appendBatch(db, "x"))
	if !errors.Is(err, store.ErrFingerprintMismatch) {
		t.Fatalf("err = %v, want ErrFingerprintMismatch", err)
	}
	if len(slept) != 0 {
		t.Fatalf("a permanent error was retried (%d sleeps)", len(slept))
	}
	if got := svc.Stats().StoreRetries; got != 0 {
		t.Fatalf("StoreRetries = %d, want 0", got)
	}
}

func TestAdmissionTimeoutShedsLoad(t *testing.T) {
	svc := New(Config{Workers: 1, AdmissionTimeout: 2 * time.Millisecond})
	defer svc.Close()
	if _, err := svc.AddDatabase("d", testDB(t, "chain", 1)); err != nil {
		t.Fatal(err)
	}
	q, err := svc.StartQuery(context.Background(), "d", fd.Query{})
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the only worker slot directly, then both StartQuery and
	// Next must shed within the timeout instead of queueing.
	svc.sem <- struct{}{}
	if _, err := svc.StartQuery(context.Background(), "d", fd.Query{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("StartQuery under load: err = %v, want ErrOverloaded", err)
	}
	if _, _, err := q.Next(4); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Next under load: err = %v, want ErrOverloaded", err)
	}
	if got := svc.Stats().AdmissionTimeouts; got != 2 {
		t.Fatalf("AdmissionTimeouts = %d, want 2", got)
	}

	// Shedding is not failure: once the slot frees, the same session
	// pages normally.
	<-svc.sem
	if _, _, err := q.Next(4); err != nil {
		t.Fatalf("Next after load cleared: %v", err)
	}
}

// TestNoGoroutineLeakUnderFaults drives the service through faulted
// and shed requests and asserts the goroutine count settles back —
// the regression check the CI fault-injection job runs under -race.
func TestNoGoroutineLeakUnderFaults(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		fsys := faultfs.New()
		st, err := store.OpenFS("data", fsys)
		if err != nil {
			t.Fatal(err)
		}
		svc := New(Config{Workers: 2, AdmissionTimeout: time.Millisecond, Store: st,
			Sleep: func(time.Duration) {}})
		defer svc.Close()
		db := testDB(t, "chain", 1)
		if _, err := svc.AddDatabase("d", db); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if i%3 == 0 {
				fsys.ArmAfter(1, faultfs.FailOp)
			}
			_, _ = svc.AppendRows("d", db.Relation(0).Name(), appendBatch(db, "x"))
			q, err := svc.StartQuery(context.Background(), "d", fd.Query{})
			if err != nil {
				continue
			}
			_, _, _ = q.Next(8)
			q.Close()
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
