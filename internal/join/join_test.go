package join

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

func mkRel(t *testing.T, name string, attrs []relation.Attribute, rows ...map[relation.Attribute]relation.Value) *relation.Relation {
	t.Helper()
	r := relation.MustRelation(name, relation.MustSchema(attrs...))
	for _, row := range rows {
		r.MustAppend("", row)
	}
	return r
}

func v(s string) relation.Value { return relation.V(s) }

// mkDB wraps relations into a database so their values receive
// dictionary codes.
func mkDB(t *testing.T, rels ...*relation.Relation) *relation.Database {
	t.Helper()
	db, err := relation.NewDatabase(rels...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// key builds the expected binary row key for the given datums ("" = ⊥)
// using the database dictionary — the test-side mirror of rowKey.
func key(t *testing.T, db *relation.Database, datums ...string) string {
	t.Helper()
	row := make([]int32, len(datums))
	for i, s := range datums {
		if s == "" {
			continue
		}
		c, ok := db.Dict().Code(s)
		if !ok {
			t.Fatalf("datum %q not in dictionary", s)
		}
		row[i] = c
	}
	return rowKey(row)
}

func TestNaturalJoinBasics(t *testing.T) {
	db := mkDB(t,
		mkRel(t, "A", []relation.Attribute{"X", "Y"},
			map[relation.Attribute]relation.Value{"X": v("1"), "Y": v("2")},
			map[relation.Attribute]relation.Value{"X": v("3"), "Y": v("4")},
		),
		mkRel(t, "B", []relation.Attribute{"Y", "Z"},
			map[relation.Attribute]relation.Value{"Y": v("2"), "Z": v("9")},
			map[relation.Attribute]relation.Value{"Y": v("7"), "Z": v("8")},
		))
	j := NaturalJoin(FromRelation(db, 0), FromRelation(db, 1))
	if j.Len() != 1 {
		t.Fatalf("join size = %d, want 1", j.Len())
	}
	want := []relation.Attribute{"X", "Y", "Z"}
	if !reflect.DeepEqual(j.Attrs, want) {
		t.Errorf("attrs = %v", j.Attrs)
	}
	if got := j.Render(0); !reflect.DeepEqual(got, []string{"1", "2", "9"}) {
		t.Errorf("row = %v", got)
	}
}

func TestNaturalJoinNullNeverMatches(t *testing.T) {
	db := mkDB(t,
		mkRel(t, "A", []relation.Attribute{"X", "Y"},
			map[relation.Attribute]relation.Value{"X": v("1")}, // Y = ⊥
		),
		mkRel(t, "B", []relation.Attribute{"Y", "Z"},
			map[relation.Attribute]relation.Value{"Z": v("9")}, // Y = ⊥
		))
	if j := NaturalJoin(FromRelation(db, 0), FromRelation(db, 1)); j.Len() != 0 {
		t.Errorf("⊥ = ⊥ must not match; join has %d rows", j.Len())
	}
}

func TestFullOuterJoinPreservesDangling(t *testing.T) {
	db := mkDB(t,
		mkRel(t, "A", []relation.Attribute{"X", "Y"},
			map[relation.Attribute]relation.Value{"X": v("1"), "Y": v("2")},
			map[relation.Attribute]relation.Value{"X": v("5"), "Y": v("6")},
		),
		mkRel(t, "B", []relation.Attribute{"Y", "Z"},
			map[relation.Attribute]relation.Value{"Y": v("2"), "Z": v("9")},
			map[relation.Attribute]relation.Value{"Y": v("7"), "Z": v("8")},
		))
	j := FullOuterJoin(FromRelation(db, 0), FromRelation(db, 1))
	if j.Len() != 3 { // 1 match + 1 dangling left + 1 dangling right
		t.Fatalf("outerjoin size = %d, want 3: %s", j.Len(), j)
	}
	keys := j.Keys()
	wantKeys := []string{
		key(t, db, "1", "2", "9"),
		key(t, db, "5", "6", ""),
		key(t, db, "", "7", "8"),
	}
	sort.Strings(wantKeys)
	if !reflect.DeepEqual(keys, wantKeys) {
		t.Errorf("keys = %q, want %q", keys, wantKeys)
	}
}

func TestRemoveSubsumed(t *testing.T) {
	// Codes stand in for values directly; no dictionary needed.
	p := &PaddedRelation{
		Attrs: []relation.Attribute{"X", "Y"},
		Rows: [][]int32{
			{1, 2},
			{1, relation.NullCode}, // subsumed by the first row
			{relation.NullCode, 3}, // kept
			{1, 2},                 // duplicate: one copy kept
			{relation.NullCode, 3}, // duplicate
		},
	}
	out := RemoveSubsumed(p)
	if len(out.Rows) != 2 {
		t.Fatalf("kept %d rows, want 2: %s", len(out.Rows), out)
	}
}

// TestOuterjoinMatchesIncrementalFD is the E10 equivalence: on
// γ-acyclic (chain and star) workloads the outerjoin sequence and
// INCREMENTALFD produce the same set of padded result tuples.
func TestOuterjoinMatchesIncrementalFD(t *testing.T) {
	gens := map[string]func(workload.Config) (*relation.Database, error){
		"chain": workload.Chain,
		"star":  workload.Star,
		// A clique sharing one attribute has a triangle connection
		// graph but a Berge-acyclic (hence γ-acyclic) hypergraph, so
		// the outerjoin method still applies.
		"clique1attr": workload.Clique,
	}
	for name, gen := range gens {
		for seed := int64(1); seed <= 8; seed++ {
			db, err := gen(workload.Config{
				Relations: 4, TuplesPerRelation: 5, Domain: 3, NullRate: 0.2, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			byJoin, err := FullDisjunction(db)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			sets, _, err := core.FullDisjunction(db, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			u := tupleset.NewUniverse(db)
			attrs := u.AllAttributes()
			seen := make(map[string]bool)
			var byCore []string
			for _, s := range sets {
				k := u.PadOver(s, attrs).Key()
				if !seen[k] {
					seen[k] = true
					byCore = append(byCore, k)
				}
			}
			sort.Strings(byCore)
			if !reflect.DeepEqual(byJoin.Keys(), byCore) {
				t.Errorf("%s seed %d: outerjoin FD and IncrementalFD disagree\n join: %q\n core: %q",
					name, seed, byJoin.Keys(), byCore)
			}
		}
	}
}

func TestFullDisjunctionRejectsNonTree(t *testing.T) {
	db, err := workload.Cycle(workload.Config{
		Relations: 4, TuplesPerRelation: 2, Domain: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FullDisjunction(db); err == nil {
		t.Error("cycle schema accepted by the outerjoin method")
	}
	// The tourist schema is a triangle: also rejected, even though the
	// hypergraph is α-acyclic, because our baseline requires a tree
	// connection graph.
	if _, err := FullDisjunction(workload.Tourist()); err == nil {
		t.Error("triangle connection graph accepted")
	}
}

func TestKeysCollapseDuplicates(t *testing.T) {
	p := &PaddedRelation{
		Attrs: []relation.Attribute{"X"},
		Rows:  [][]int32{{1}, {1}, {2}},
	}
	if got := p.Keys(); len(got) != 2 {
		t.Errorf("keys = %v", got)
	}
}
