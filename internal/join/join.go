// Package join implements the padded-tuple relational algebra behind
// the Rajaraman–Ullman baseline [2]: natural join and full outerjoin
// with null-rejecting join conditions, subsumption removal (minimal
// union), and the outerjoin-sequence computation of a full disjunction
// for γ-acyclic schemas — here applied to tree-connected schemas such
// as the chain and star workloads, which are γ-acyclic.
//
// Rows are held as dictionary-code slices over the database's value
// dictionary, so every join condition, subsumption test and row key is
// computed by integer comparison; the dictionary is consulted only when
// rendering text.
//
// This is the comparator the paper positions INCREMENTALFD against in
// the introduction: applicable only to a restricted class of schemas,
// and inherently non-incremental (every outerjoin materialises fully
// before the next can run).
package join

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/relation"
)

// PaddedRelation is a relation over an explicit attribute list whose
// rows may be padded with nulls. It is the intermediate representation
// of the outerjoin pipeline. Rows hold dictionary codes
// (relation.NullCode = ⊥) resolved against Dict.
type PaddedRelation struct {
	Attrs []relation.Attribute // sorted
	Dict  *relation.Dict       // decodes Rows for rendering
	Rows  [][]int32
}

// FromRelation lifts base relation rel of db into padded form, copying
// the database's code columns into row-major order.
func FromRelation(db *relation.Database, rel int) *PaddedRelation {
	r := db.Relation(rel)
	attrs := r.Schema().Attributes()
	out := &PaddedRelation{
		Attrs: append([]relation.Attribute(nil), attrs...),
		Dict:  db.Dict(),
	}
	cols := make([][]int32, len(attrs))
	for p := range attrs {
		cols[p] = db.Col(rel, p)
	}
	for i := 0; i < r.Len(); i++ {
		row := make([]int32, len(attrs))
		for p := range attrs {
			row[p] = cols[p][i]
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Len returns the number of rows.
func (p *PaddedRelation) Len() int { return len(p.Rows) }

// sharedPositions returns aligned positions of the attributes common to
// a and b.
func sharedPositions(a, b *PaddedRelation) (pa, pb []int) {
	i, j := 0, 0
	for i < len(a.Attrs) && j < len(b.Attrs) {
		switch {
		case a.Attrs[i] == b.Attrs[j]:
			pa = append(pa, i)
			pb = append(pb, j)
			i++
			j++
		case a.Attrs[i] < b.Attrs[j]:
			i++
		default:
			j++
		}
	}
	return pa, pb
}

// unionAttrs returns the sorted union of the attribute lists and the
// projection maps from each input into the union.
func unionAttrs(a, b *PaddedRelation) (attrs []relation.Attribute, mapA, mapB []int) {
	seen := make(map[relation.Attribute]bool, len(a.Attrs)+len(b.Attrs))
	for _, x := range a.Attrs {
		if !seen[x] {
			seen[x] = true
			attrs = append(attrs, x)
		}
	}
	for _, x := range b.Attrs {
		if !seen[x] {
			seen[x] = true
			attrs = append(attrs, x)
		}
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
	pos := make(map[relation.Attribute]int, len(attrs))
	for i, x := range attrs {
		pos[x] = i
	}
	mapA = make([]int, len(a.Attrs))
	for i, x := range a.Attrs {
		mapA[i] = pos[x]
	}
	mapB = make([]int, len(b.Attrs))
	for i, x := range b.Attrs {
		mapB[i] = pos[x]
	}
	return attrs, mapA, mapB
}

// joinable reports whether rows ra and rb agree (non-null code
// equality) on every shared attribute. This matches the
// join-consistency semantics of the full disjunction: a null never
// matches anything.
func joinable(ra, rb []int32, pa, pb []int) bool {
	for k := range pa {
		va := ra[pa[k]]
		if va == relation.NullCode || va != rb[pb[k]] {
			return false
		}
	}
	return true
}

// NaturalJoin computes a ⋈ b with null-rejecting equality on shared
// attributes. Relations with no shared attribute produce the Cartesian
// product, as usual.
func NaturalJoin(a, b *PaddedRelation) *PaddedRelation {
	attrs, mapA, mapB := unionAttrs(a, b)
	pa, pb := sharedPositions(a, b)
	out := &PaddedRelation{Attrs: attrs, Dict: a.dict(b)}
	for _, ra := range a.Rows {
		for _, rb := range b.Rows {
			if !joinable(ra, rb, pa, pb) {
				continue
			}
			out.Rows = append(out.Rows, combine(len(attrs), ra, mapA, rb, mapB))
		}
	}
	return out
}

// dict picks the dictionary shared by the two operands (either may be a
// hand-built relation without one).
func (p *PaddedRelation) dict(q *PaddedRelation) *relation.Dict {
	if p.Dict != nil {
		return p.Dict
	}
	return q.Dict
}

// FullOuterJoin computes a ⟗ b: matching combinations plus dangling
// rows of both sides padded with nulls.
func FullOuterJoin(a, b *PaddedRelation) *PaddedRelation {
	attrs, mapA, mapB := unionAttrs(a, b)
	pa, pb := sharedPositions(a, b)
	out := &PaddedRelation{Attrs: attrs, Dict: a.dict(b)}
	matchedB := make([]bool, len(b.Rows))
	for _, ra := range a.Rows {
		matched := false
		for bi, rb := range b.Rows {
			if !joinable(ra, rb, pa, pb) {
				continue
			}
			matched = true
			matchedB[bi] = true
			out.Rows = append(out.Rows, combine(len(attrs), ra, mapA, rb, mapB))
		}
		if !matched {
			out.Rows = append(out.Rows, combine(len(attrs), ra, mapA, nil, nil))
		}
	}
	for bi, rb := range b.Rows {
		if !matchedB[bi] {
			out.Rows = append(out.Rows, combine(len(attrs), nil, nil, rb, mapB))
		}
	}
	return out
}

func combine(width int, ra []int32, mapA []int, rb []int32, mapB []int) []int32 {
	row := make([]int32, width)
	for i, c := range ra {
		row[mapA[i]] = c
	}
	for i, c := range rb {
		// On shared attributes both sides agree (joinable) except that
		// one side may carry ⊥ where... it cannot: joinable demands
		// non-null equality on shared attributes, so overwriting is
		// safe; for dangling rows the other side is absent entirely.
		if row[mapB[i]] == relation.NullCode {
			row[mapB[i]] = c
		}
	}
	return row
}

// RemoveSubsumed deletes rows subsumed by another row (minimal union):
// row q is removed when a different row p has every non-null value of
// q, with ties (duplicate rows) keeping one copy.
func RemoveSubsumed(p *PaddedRelation) *PaddedRelation {
	out := &PaddedRelation{Attrs: p.Attrs, Dict: p.Dict}
	for i, q := range p.Rows {
		subsumed := false
		for j, r := range p.Rows {
			if i == j {
				continue
			}
			if rowSubsumes(r, q) && (!rowSubsumes(q, r) || j < i) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out.Rows = append(out.Rows, q)
		}
	}
	return out
}

func rowSubsumes(p, q []int32) bool {
	for i := range q {
		if q[i] == relation.NullCode {
			continue
		}
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// FullDisjunction computes the full disjunction of a Berge-acyclic,
// connected database as a sequence of full outerjoins along a
// breadth-first order of the connection graph, removing subsumed rows
// after every join. The method of [2] requires γ-acyclicity;
// Berge-acyclicity is a decidable sufficient condition (Berge ⟹ γ), and
// it covers the chain, star and single-attribute-clique workloads the
// benchmarks exercise. Cyclic schemas — including the tourist triangle
// of Table 1, whose Country/City sharing makes the incidence graph
// cyclic — are rejected; INCREMENTALFD has no such restriction, which
// is exactly the generality gap §1 of the paper highlights.
func FullDisjunction(db *relation.Database) (*PaddedRelation, error) {
	conn := graph.NewConnection(db)
	if !conn.Connected() {
		return nil, fmt.Errorf("join: relations are not connected; the outerjoin method does not apply")
	}
	if !graph.BergeAcyclic(db) {
		return nil, fmt.Errorf("join: schema is not Berge-acyclic; the outerjoin method does not apply")
	}
	order := conn.BFSOrder(0)
	acc := FromRelation(db, order[0])
	for _, r := range order[1:] {
		acc = RemoveSubsumed(FullOuterJoin(acc, FromRelation(db, r)))
	}
	return RemoveSubsumed(acc), nil
}

// Keys returns the canonical row keys of p, sorted, for comparison with
// the padded rendering of a tuple-set full disjunction (the binary code
// encoding of tupleset.Padded.Key). Duplicate rows collapse to one key,
// matching the set semantics of [2].
func (p *PaddedRelation) Keys() []string {
	seen := make(map[string]bool, len(p.Rows))
	var out []string
	for _, row := range p.Rows {
		k := rowKey(row)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// rowKey encodes a code row in the canonical binary format shared with
// tupleset.Padded.Key, so the E10 cross-algorithm comparison compares
// like with like.
func rowKey(row []int32) string {
	return relation.CodeKey(row)
}

// Render decodes row i into datum strings, using relation.NullToken for
// ⊥ — the human-readable counterpart of the binary row keys. Hand-built
// relations without a dictionary render raw codes as #n.
func (p *PaddedRelation) Render(i int) []string {
	out := make([]string, len(p.Rows[i]))
	for j, c := range p.Rows[i] {
		switch {
		case c == relation.NullCode:
			out[j] = relation.NullToken
		case p.Dict == nil:
			out[j] = fmt.Sprintf("#%d", c)
		default:
			out[j] = p.Dict.Datum(c)
		}
	}
	return out
}

// String renders the relation as an ASCII table.
func (p *PaddedRelation) String() string {
	s := fmt.Sprintf("%v\n", p.Attrs)
	for i := range p.Rows {
		s += strings.Join(p.Render(i), ", ") + "\n"
	}
	return s
}
