// Package join implements the padded-tuple relational algebra behind
// the Rajaraman–Ullman baseline [2]: natural join and full outerjoin
// with null-rejecting join conditions, subsumption removal (minimal
// union), and the outerjoin-sequence computation of a full disjunction
// for γ-acyclic schemas — here applied to tree-connected schemas such
// as the chain and star workloads, which are γ-acyclic.
//
// This is the comparator the paper positions INCREMENTALFD against in
// the introduction: applicable only to a restricted class of schemas,
// and inherently non-incremental (every outerjoin materialises fully
// before the next can run).
package join

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/relation"
)

// PaddedRelation is a relation over an explicit attribute list whose
// rows may be padded with nulls. It is the intermediate representation
// of the outerjoin pipeline.
type PaddedRelation struct {
	Attrs []relation.Attribute // sorted
	Rows  [][]relation.Value
}

// FromRelation lifts a base relation into padded form.
func FromRelation(r *relation.Relation) *PaddedRelation {
	attrs := r.Schema().Attributes()
	out := &PaddedRelation{Attrs: append([]relation.Attribute(nil), attrs...)}
	for i := 0; i < r.Len(); i++ {
		row := make([]relation.Value, len(attrs))
		copy(row, r.Tuple(i).Values)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Len returns the number of rows.
func (p *PaddedRelation) Len() int { return len(p.Rows) }

// position returns the index of attribute a in p.Attrs, or -1.
func (p *PaddedRelation) position(a relation.Attribute) int {
	lo, hi := 0, len(p.Attrs)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.Attrs[mid] < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.Attrs) && p.Attrs[lo] == a {
		return lo
	}
	return -1
}

// sharedPositions returns aligned positions of the attributes common to
// a and b.
func sharedPositions(a, b *PaddedRelation) (pa, pb []int) {
	i, j := 0, 0
	for i < len(a.Attrs) && j < len(b.Attrs) {
		switch {
		case a.Attrs[i] == b.Attrs[j]:
			pa = append(pa, i)
			pb = append(pb, j)
			i++
			j++
		case a.Attrs[i] < b.Attrs[j]:
			i++
		default:
			j++
		}
	}
	return pa, pb
}

// unionAttrs returns the sorted union of the attribute lists and the
// projection maps from each input into the union.
func unionAttrs(a, b *PaddedRelation) (attrs []relation.Attribute, mapA, mapB []int) {
	seen := make(map[relation.Attribute]bool, len(a.Attrs)+len(b.Attrs))
	for _, x := range a.Attrs {
		if !seen[x] {
			seen[x] = true
			attrs = append(attrs, x)
		}
	}
	for _, x := range b.Attrs {
		if !seen[x] {
			seen[x] = true
			attrs = append(attrs, x)
		}
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
	pos := make(map[relation.Attribute]int, len(attrs))
	for i, x := range attrs {
		pos[x] = i
	}
	mapA = make([]int, len(a.Attrs))
	for i, x := range a.Attrs {
		mapA[i] = pos[x]
	}
	mapB = make([]int, len(b.Attrs))
	for i, x := range b.Attrs {
		mapB[i] = pos[x]
	}
	return attrs, mapA, mapB
}

// joinable reports whether rows ra and rb agree (non-null equality) on
// every shared attribute. This matches the join-consistency semantics
// of the full disjunction: a null never matches anything.
func joinable(ra, rb []relation.Value, pa, pb []int) bool {
	for k := range pa {
		if !ra[pa[k]].JoinsWith(rb[pb[k]]) {
			return false
		}
	}
	return true
}

// NaturalJoin computes a ⋈ b with null-rejecting equality on shared
// attributes. Relations with no shared attribute produce the Cartesian
// product, as usual.
func NaturalJoin(a, b *PaddedRelation) *PaddedRelation {
	attrs, mapA, mapB := unionAttrs(a, b)
	pa, pb := sharedPositions(a, b)
	out := &PaddedRelation{Attrs: attrs}
	for _, ra := range a.Rows {
		for _, rb := range b.Rows {
			if !joinable(ra, rb, pa, pb) {
				continue
			}
			out.Rows = append(out.Rows, combine(len(attrs), ra, mapA, rb, mapB))
		}
	}
	return out
}

// FullOuterJoin computes a ⟗ b: matching combinations plus dangling
// rows of both sides padded with nulls.
func FullOuterJoin(a, b *PaddedRelation) *PaddedRelation {
	attrs, mapA, mapB := unionAttrs(a, b)
	pa, pb := sharedPositions(a, b)
	out := &PaddedRelation{Attrs: attrs}
	matchedB := make([]bool, len(b.Rows))
	for _, ra := range a.Rows {
		matched := false
		for bi, rb := range b.Rows {
			if !joinable(ra, rb, pa, pb) {
				continue
			}
			matched = true
			matchedB[bi] = true
			out.Rows = append(out.Rows, combine(len(attrs), ra, mapA, rb, mapB))
		}
		if !matched {
			out.Rows = append(out.Rows, combine(len(attrs), ra, mapA, nil, nil))
		}
	}
	for bi, rb := range b.Rows {
		if !matchedB[bi] {
			out.Rows = append(out.Rows, combine(len(attrs), nil, nil, rb, mapB))
		}
	}
	return out
}

func combine(width int, ra []relation.Value, mapA []int, rb []relation.Value, mapB []int) []relation.Value {
	row := make([]relation.Value, width)
	for i, v := range ra {
		row[mapA[i]] = v
	}
	for i, v := range rb {
		// On shared attributes both sides agree (joinable) except that
		// one side may carry ⊥ where... it cannot: joinable demands
		// non-null equality on shared attributes, so overwriting is
		// safe; for dangling rows the other side is absent entirely.
		if row[mapB[i]].IsNull() {
			row[mapB[i]] = v
		}
	}
	return row
}

// RemoveSubsumed deletes rows subsumed by another row (minimal union):
// row q is removed when a different row p has every non-null value of
// q, with ties (duplicate rows) keeping one copy.
func RemoveSubsumed(p *PaddedRelation) *PaddedRelation {
	out := &PaddedRelation{Attrs: p.Attrs}
	for i, q := range p.Rows {
		subsumed := false
		for j, r := range p.Rows {
			if i == j {
				continue
			}
			if rowSubsumes(r, q) && (!rowSubsumes(q, r) || j < i) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out.Rows = append(out.Rows, q)
		}
	}
	return out
}

func rowSubsumes(p, q []relation.Value) bool {
	for i := range q {
		if q[i].IsNull() {
			continue
		}
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// FullDisjunction computes the full disjunction of a Berge-acyclic,
// connected database as a sequence of full outerjoins along a
// breadth-first order of the connection graph, removing subsumed rows
// after every join. The method of [2] requires γ-acyclicity;
// Berge-acyclicity is a decidable sufficient condition (Berge ⟹ γ), and
// it covers the chain, star and single-attribute-clique workloads the
// benchmarks exercise. Cyclic schemas — including the tourist triangle
// of Table 1, whose Country/City sharing makes the incidence graph
// cyclic — are rejected; INCREMENTALFD has no such restriction, which
// is exactly the generality gap §1 of the paper highlights.
func FullDisjunction(db *relation.Database) (*PaddedRelation, error) {
	conn := graph.NewConnection(db)
	if !conn.Connected() {
		return nil, fmt.Errorf("join: relations are not connected; the outerjoin method does not apply")
	}
	if !graph.BergeAcyclic(db) {
		return nil, fmt.Errorf("join: schema is not Berge-acyclic; the outerjoin method does not apply")
	}
	order := conn.BFSOrder(0)
	acc := FromRelation(db.Relation(order[0]))
	for _, r := range order[1:] {
		acc = RemoveSubsumed(FullOuterJoin(acc, FromRelation(db.Relation(r))))
	}
	return RemoveSubsumed(acc), nil
}

// Keys returns the canonical row keys of p, sorted, for comparison with
// the padded rendering of a tuple-set full disjunction. Duplicate rows
// collapse to one key, matching the set semantics of [2].
func (p *PaddedRelation) Keys() []string {
	seen := make(map[string]bool, len(p.Rows))
	var out []string
	for _, row := range p.Rows {
		k := rowKey(row)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func rowKey(row []relation.Value) string {
	key := ""
	for i, v := range row {
		if i > 0 {
			key += "\x1f"
		}
		if v.IsNull() {
			key += relation.NullToken
		} else {
			key += v.Datum()
		}
	}
	return key
}

// String renders the relation as an ASCII table.
func (p *PaddedRelation) String() string {
	s := fmt.Sprintf("%v\n", p.Attrs)
	for _, row := range p.Rows {
		for i, v := range row {
			if i > 0 {
				s += ", "
			}
			s += v.String()
		}
		s += "\n"
	}
	return s
}
