package tupleset

import (
	"strings"

	"repro/internal/relation"
)

// Padded is the classical rendering of a tuple set: the natural join of
// its member tuples over the union of their schemas, padded with nulls
// (the last six columns of Table 2 in the paper). Two padded tuples
// over the same attribute list are comparable by subsumption, which is
// how the Rajaraman–Ullman definition of a full disjunction removes
// redundancy.
//
// Padded tuples are assembled from the database's columnar code mirror:
// Codes carries the dictionary code per attribute (relation.NullCode
// for ⊥) and is the representation comparisons and keys work on; Values
// is the decoded rendering kept for display and for callers that want
// real text.
type Padded struct {
	Attrs  []relation.Attribute // sorted
	Values []relation.Value     // aligned with Attrs
	Codes  []int32              // aligned with Attrs; nil only for hand-built values
}

// padCodes fills the padded tuple of a join-consistent set s over the
// global attribute universe, as dictionary codes. For every attribute
// the value is the (unique, by join consistency) non-null code any
// member carries for it, or NullCode when the only members mentioning
// the attribute hold ⊥ there. A valid binding signature IS that vector,
// so for signature-carrying sets this is a straight copy.
func (u *Universe) padCodes(s *Set) []int32 {
	u.ensureLayout()
	codes := make([]int32, len(u.allAttrs))
	if u.sigReady(s, nil) {
		for g := range codes {
			// Zero bindings are unmentioned, negative bindings are ⊥
			// tags; both pad to NullCode.
			if b := s.binding[g]; b > relation.NullCode {
				codes[g] = b
			}
		}
		return codes
	}
	for r, idx := range s.members {
		if idx == none {
			continue
		}
		for p, g := range u.proj[r] {
			if codes[g] == relation.NullCode {
				codes[g] = u.DB.Col(r, p)[idx]
			}
		}
	}
	return codes
}

// Pad materialises the padded tuple of a join-consistent set s over the
// sorted union of its members' schemas.
func (u *Universe) Pad(s *Set) Padded {
	u.ensureLayout()
	codes := u.padCodes(s)
	mentioned := make([]bool, len(u.allAttrs))
	width := 0
	for r, idx := range s.members {
		if idx == none {
			continue
		}
		for _, g := range u.proj[r] {
			if !mentioned[g] {
				mentioned[g] = true
				width++
			}
		}
	}
	out := Padded{
		Attrs:  make([]relation.Attribute, 0, width),
		Values: make([]relation.Value, 0, width),
		Codes:  make([]int32, 0, width),
	}
	dict := u.DB.Dict()
	for g, in := range mentioned {
		if !in {
			continue
		}
		out.Attrs = append(out.Attrs, u.allAttrs[g])
		out.Codes = append(out.Codes, codes[g])
		out.Values = append(out.Values, dict.Lookup(codes[g]))
	}
	return out
}

// PadOver is like Pad but places the values on a caller-supplied
// attribute universe, padding attributes absent from the set's schema
// with nulls. All results of one full disjunction rendered with PadOver
// over the global attribute list are directly comparable.
func (u *Universe) PadOver(s *Set, attrs []relation.Attribute) Padded {
	u.ensureLayout()
	codes := u.padCodes(s)
	out := Padded{
		Attrs:  attrs,
		Values: make([]relation.Value, len(attrs)),
		Codes:  make([]int32, len(attrs)),
	}
	dict := u.DB.Dict()
	for i, a := range attrs {
		if g, ok := u.attrPos[a]; ok {
			out.Codes[i] = codes[g]
		}
		out.Values[i] = dict.Lookup(out.Codes[i])
	}
	return out
}

// AllAttributes returns the sorted union of all attributes in the
// database.
func (u *Universe) AllAttributes() []relation.Attribute {
	u.ensureLayout()
	return u.allAttrs
}

// Subsumes reports whether p subsumes q: over the same attribute list,
// every non-null value of q appears identically in p. Equal padded
// tuples subsume each other. When both sides carry codes the test is
// pure integer comparison.
func (p Padded) Subsumes(q Padded) bool {
	if len(p.Attrs) != len(q.Attrs) {
		return false
	}
	if p.Codes != nil && q.Codes != nil {
		for i := range q.Codes {
			if q.Codes[i] == relation.NullCode {
				continue
			}
			if p.Codes[i] != q.Codes[i] {
				return false
			}
		}
		return true
	}
	for i := range q.Values {
		if q.Values[i].IsNull() {
			continue
		}
		if p.Values[i] != q.Values[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical key for the padded tuple: a compact binary
// encoding of the code vector (4 bytes per attribute). Keys of padded
// tuples over the same database and attribute list are equal iff the
// tuples are equal; no datum strings are materialised.
func (p Padded) Key() string {
	if p.Codes == nil {
		// Hand-built padded tuples (tests) fall back to datum rendering.
		parts := make([]string, len(p.Values))
		for i, v := range p.Values {
			if v.IsNull() {
				parts[i] = relation.NullToken
			} else {
				parts[i] = v.Datum()
			}
		}
		return strings.Join(parts, "\x1f")
	}
	return relation.CodeKey(p.Codes)
}

// String renders the padded tuple as (v1, v2, ...).
func (p Padded) String() string {
	parts := make([]string, len(p.Values))
	for i, v := range p.Values {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
