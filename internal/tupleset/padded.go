package tupleset

import (
	"sort"
	"strings"

	"repro/internal/relation"
)

// Padded is the classical rendering of a tuple set: the natural join of
// its member tuples over the union of their schemas, padded with nulls
// (the last six columns of Table 2 in the paper). Two padded tuples
// over the same attribute list are comparable by subsumption, which is
// how the Rajaraman–Ullman definition of a full disjunction removes
// redundancy.
type Padded struct {
	Attrs  []relation.Attribute // sorted
	Values []relation.Value     // aligned with Attrs
}

// Pad materialises the padded tuple of a join-consistent set s. For
// every attribute of the union schema the value is the (unique, by join
// consistency) non-null value any member carries for it, or null when
// the only members mentioning the attribute hold null there.
func (u *Universe) Pad(s *Set) Padded {
	vals := make(map[relation.Attribute]relation.Value)
	for r, idx := range s.members {
		if idx == none {
			continue
		}
		rel := u.DB.Relation(r)
		t := rel.Tuple(int(idx))
		for p, a := range rel.Schema().Attributes() {
			v := t.Values[p]
			if old, seen := vals[a]; !seen || old.IsNull() {
				vals[a] = v
			}
		}
	}
	attrs := make([]relation.Attribute, 0, len(vals))
	for a := range vals {
		attrs = append(attrs, a)
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
	out := Padded{Attrs: attrs, Values: make([]relation.Value, len(attrs))}
	for i, a := range attrs {
		out.Values[i] = vals[a]
	}
	return out
}

// PadOver is like Pad but places the values on a caller-supplied
// attribute universe, padding attributes absent from the set's schema
// with nulls. All results of one full disjunction rendered with PadOver
// over the global attribute list are directly comparable.
func (u *Universe) PadOver(s *Set, attrs []relation.Attribute) Padded {
	p := u.Pad(s)
	out := Padded{Attrs: attrs, Values: make([]relation.Value, len(attrs))}
	j := 0
	for i, a := range attrs {
		for j < len(p.Attrs) && p.Attrs[j] < a {
			j++
		}
		if j < len(p.Attrs) && p.Attrs[j] == a {
			out.Values[i] = p.Values[j]
		}
	}
	return out
}

// AllAttributes returns the sorted union of all attributes in the
// database.
func (u *Universe) AllAttributes() []relation.Attribute {
	seen := make(map[relation.Attribute]bool)
	var out []relation.Attribute
	for i := 0; i < u.DB.NumRelations(); i++ {
		for _, a := range u.DB.Relation(i).Schema().Attributes() {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subsumes reports whether p subsumes q: over the same attribute list,
// every non-null value of q appears identically in p. Equal padded
// tuples subsume each other.
func (p Padded) Subsumes(q Padded) bool {
	if len(p.Attrs) != len(q.Attrs) {
		return false
	}
	for i := range q.Values {
		if q.Values[i].IsNull() {
			continue
		}
		if p.Values[i] != q.Values[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical key for the padded tuple.
func (p Padded) Key() string {
	parts := make([]string, len(p.Values))
	for i, v := range p.Values {
		if v.IsNull() {
			parts[i] = relation.NullToken
		} else {
			parts[i] = v.Datum()
		}
	}
	return strings.Join(parts, "\x1f")
}

// String renders the padded tuple as (v1, v2, ...).
func (p Padded) String() string {
	parts := make([]string, len(p.Values))
	for i, v := range p.Values {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
