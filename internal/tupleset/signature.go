package tupleset

import (
	"repro/internal/relation"
)

// SigCounters instruments the signature machinery. Callers on a hot
// path (the enumerator core) pass a pointer so hits and rebuilds land
// in their Stats; nil is accepted everywhere and counts nothing.
// Counters are plain ints — every Set is owned by one goroutine, and
// each caller supplies its own counter block. The block also carries
// the bitmask scratch of MaximalSubsetWith, so a counter-passing caller
// bypasses the shared sync.Pool entirely.
type SigCounters struct {
	// Hits counts predicate evaluations answered entirely by the
	// signature fast path (no pairwise tuple comparisons).
	Hits int64
	// Rebuilds counts lazy signature rebuilds of stale sets.
	Rebuilds int64

	work *sigScratch
}

func (c *SigCounters) hit() {
	if c != nil {
		c.Hits++
	}
}

// bindMember merges the referenced tuple's attribute bindings into the
// signature of s, assuming s.sig == sigValid. A binding conflict — the
// new tuple disagrees with an existing binding, or meets or carries ⊥
// on a jointly mentioned attribute — proves the grown set is not
// pairwise join consistent and demotes the signature to sigConflict.
//
// A ⊥ mention is recorded as ^rel (negative, unique per relation): a
// join-consistent set can have at most one member mentioning an
// attribute it holds ⊥ at, so tagging the mention with its relation
// lets UnionJCC distinguish "the shared member holds ⊥ here" (fine)
// from "two distinct members hold ⊥ here" (inconsistent) with the same
// single compare that handles real codes.
func (s *Set) bindMember(ref relation.Ref) {
	u := s.u
	u.ensureCols()
	cols := u.cols[ref.Rel]
	for p, g := range u.proj[ref.Rel] {
		c := cols[p][ref.Idx]
		if c == relation.NullCode {
			c = ^ref.Rel
		}
		switch b := s.binding[g]; b {
		case 0:
			s.binding[g] = c
		case c:
			// Same non-null code (a ⊥ tag can never repeat here: the
			// tagging relation would already hold a member).
		default:
			s.sig = sigConflict
			return
		}
	}
}

// rebuildSig recomputes the signature of a stale set from scratch in
// O(|T|·arity). It leaves the set either sigValid (members pairwise
// join consistent, bindings exact) or sigConflict.
func (u *Universe) rebuildSig(s *Set, ctr *SigCounters) {
	if ctr != nil {
		ctr.Rebuilds++
	}
	for g := range s.binding {
		s.binding[g] = 0
	}
	s.sig = sigValid
	for r, idx := range s.members {
		if idx == none {
			continue
		}
		s.bindMember(relation.Ref{Rel: int32(r), Idx: idx})
		if s.sig == sigConflict {
			return
		}
	}
}

// sigReady brings the signature of s up to date if possible and reports
// whether it may be used (sigValid).
func (u *Universe) sigReady(s *Set, ctr *SigCounters) bool {
	if s.sig == sigStale {
		u.rebuildSig(s, ctr)
	}
	return s.sig == sigValid
}

// SigValid reports whether s currently carries a valid signature (no
// rebuild is attempted; see EnsureSig).
func (s *Set) SigValid() bool { return s.sig == sigValid }

// EnsureSig rebuilds a stale signature and reports whether the
// signature may be used. Hot callers hoist this out of candidate loops
// and then call the *Valid predicate variants directly.
func (u *Universe) EnsureSig(s *Set, ctr *SigCounters) bool {
	return u.sigReady(s, ctr)
}

// bindingConsistent reports whether ref's codes agree with the valid
// signature of s on every attribute both mention — the O(arity)
// equivalent of the pairwise consistency walk. It must only be called
// while s.sig == sigValid and ref's relation is absent from s. A ⊥ on
// either side of a jointly mentioned attribute fails: ref's ⊥ fails the
// NullCode test, a member's ⊥ is stored as a negative tag no real code
// equals.
func (u *Universe) bindingConsistent(s *Set, ref relation.Ref) bool {
	u.ensureCols()
	cols := u.cols[ref.Rel]
	for p, g := range u.proj[ref.Rel] {
		b := s.binding[g]
		if b == 0 {
			continue
		}
		c := cols[p][ref.Idx]
		if c == relation.NullCode || b != c {
			return false
		}
	}
	return true
}

// sigScratch is the pooled working storage of MaximalSubsetWith: a
// member bitmask and a component bitmask, one word set per universe.
type sigScratch struct {
	mask []uint64
	comp []uint64
}

func (u *Universe) newScratch() *sigScratch {
	u.ensureLayout()
	words := make([]uint64, 2*u.relWords)
	return &sigScratch{
		mask: words[:u.relWords:u.relWords],
		comp: words[u.relWords:],
	}
}

// scratch returns working storage for one predicate evaluation: the
// counter block's private scratch when one is supplied (no
// synchronisation — the block is goroutine-local), the shared pool
// otherwise. pooled reports which, so the caller knows whether to give
// it back.
func (u *Universe) scratch(ctr *SigCounters) (sc *sigScratch, pooled bool) {
	if ctr != nil {
		if ctr.work == nil {
			ctr.work = u.newScratch()
		}
		return ctr.work, false
	}
	if v := u.scratchPool.Get(); v != nil {
		return v.(*sigScratch), true
	}
	return u.newScratch(), true
}

func (u *Universe) releaseScratch(sc *sigScratch) {
	u.scratchPool.Put(sc)
}
