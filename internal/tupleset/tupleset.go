// Package tupleset implements tuple sets — the objects a full
// disjunction is made of — together with the join-consistency and
// connectivity predicates of Section 2 of Cohen & Sagiv 2007 and the
// maximal-subset operation of footnote 3.
//
// A tuple set contains at most one tuple per relation (a set with two
// tuples of one relation can never be connected in the paper's sense),
// so a Set is represented as a fixed-width vector with one optional
// tuple index per relation. This gives O(1) per-relation membership,
// O(n) iteration and cheap canonical keys, while the pairwise
// join-consistency walk over precomputed shared-attribute positions
// plays the role of the paper's sorted attribute-triple merge.
package tupleset

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/relation"
)

// none marks an absent member.
const none = int32(-1)

// Set is a tuple set: at most one tuple per relation of a fixed
// database. The zero Set is not usable; create Sets through a Universe.
type Set struct {
	members []int32 // tuple index per relation, none = absent
	count   int
}

// Universe ties Sets to a database and its connection graph and hosts
// every predicate that needs schema information.
type Universe struct {
	DB   *relation.Database
	Conn *graph.Connection

	// Lazily built padding layout over the global attribute universe:
	// allAttrs is the sorted union of all schema attributes, attrPos
	// its inverse, and proj[rel][schemaPos] the global position of each
	// relation column. Built once; the universe may be shared across
	// goroutines (the parallel driver does).
	layoutOnce sync.Once
	allAttrs   []relation.Attribute
	attrPos    map[relation.Attribute]int
	proj       [][]int
}

// NewUniverse builds the Universe of db.
func NewUniverse(db *relation.Database) *Universe {
	return &Universe{DB: db, Conn: graph.NewConnection(db)}
}

// ensureLayout builds the padding layout on first use.
func (u *Universe) ensureLayout() {
	u.layoutOnce.Do(func() {
		seen := make(map[relation.Attribute]bool)
		var attrs []relation.Attribute
		for i := 0; i < u.DB.NumRelations(); i++ {
			for _, a := range u.DB.Relation(i).Schema().Attributes() {
				if !seen[a] {
					seen[a] = true
					attrs = append(attrs, a)
				}
			}
		}
		sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
		pos := make(map[relation.Attribute]int, len(attrs))
		for i, a := range attrs {
			pos[a] = i
		}
		proj := make([][]int, u.DB.NumRelations())
		for r := range proj {
			schema := u.DB.Relation(r).Schema()
			proj[r] = make([]int, schema.Len())
			for p, a := range schema.Attributes() {
				proj[r][p] = pos[a]
			}
		}
		u.allAttrs = attrs
		u.attrPos = pos
		u.proj = proj
	})
}

// NewSet returns an empty tuple set over the universe.
func (u *Universe) NewSet() *Set {
	m := make([]int32, u.DB.NumRelations())
	for i := range m {
		m[i] = none
	}
	return &Set{members: m}
}

// Singleton returns the tuple set {t} for the referenced tuple.
func (u *Universe) Singleton(ref relation.Ref) *Set {
	s := u.NewSet()
	s.members[ref.Rel] = ref.Idx
	s.count = 1
	return s
}

// FromRefs builds a tuple set containing exactly the given tuples.
// It panics if two refs name tuples of the same relation.
func (u *Universe) FromRefs(refs ...relation.Ref) *Set {
	s := u.NewSet()
	for _, r := range refs {
		if s.members[r.Rel] != none {
			panic("tupleset: two tuples from one relation")
		}
		s.members[r.Rel] = r.Idx
		s.count++
	}
	return s
}

// Len returns the number of tuples in the set.
func (s *Set) Len() int { return s.count }

// Empty reports whether the set has no members.
func (s *Set) Empty() bool { return s.count == 0 }

// Member returns the tuple of relation rel contained in s, if any.
func (s *Set) Member(rel int) (relation.Ref, bool) {
	if idx := s.members[rel]; idx != none {
		return relation.Ref{Rel: int32(rel), Idx: idx}, true
	}
	return relation.Ref{}, false
}

// Has reports whether s contains the referenced tuple.
func (s *Set) Has(ref relation.Ref) bool {
	return s.members[ref.Rel] == ref.Idx
}

// HasRelation reports whether s contains some tuple of relation rel.
func (s *Set) HasRelation(rel int) bool { return s.members[rel] != none }

// Refs returns the members in relation order.
func (s *Set) Refs() []relation.Ref {
	out := make([]relation.Ref, 0, s.count)
	for r, idx := range s.members {
		if idx != none {
			out = append(out, relation.Ref{Rel: int32(r), Idx: idx})
		}
	}
	return out
}

// RelationMask returns the inclusion vector of relations present in s.
// The returned slice is fresh and may be modified by the caller.
func (s *Set) RelationMask() []bool {
	mask := make([]bool, len(s.members))
	for r, idx := range s.members {
		if idx != none {
			mask[r] = true
		}
	}
	return mask
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	m := make([]int32, len(s.members))
	copy(m, s.members)
	return &Set{members: m, count: s.count}
}

// Add inserts the referenced tuple into s, replacing any previous tuple
// of the same relation. It returns s for chaining.
func (s *Set) Add(ref relation.Ref) *Set {
	if s.members[ref.Rel] == none {
		s.count++
	}
	s.members[ref.Rel] = ref.Idx
	return s
}

// Remove deletes the tuple of relation rel from s, if present.
func (s *Set) Remove(rel int) {
	if s.members[rel] != none {
		s.members[rel] = none
		s.count--
	}
}

// ContainsAll reports whether every member of other is a member of s
// (other ⊆ s).
func (s *Set) ContainsAll(other *Set) bool {
	if other.count > s.count {
		return false
	}
	for r, idx := range other.members {
		if idx != none && s.members[r] != idx {
			return false
		}
	}
	return true
}

// Equal reports whether s and other contain exactly the same tuples.
func (s *Set) Equal(other *Set) bool {
	return s.count == other.count && s.ContainsAll(other)
}

// Key returns a canonical string key for the set, usable as a map key.
// Two sets over the same universe have equal keys iff they are equal.
func (s *Set) Key() string {
	// Compact binary encoding: 4 bytes per relation slot.
	var b strings.Builder
	b.Grow(4 * len(s.members))
	for _, idx := range s.members {
		v := uint32(idx)
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v >> 16))
		b.WriteByte(byte(v >> 24))
	}
	return b.String()
}

// Format renders the set as {label, label, ...} using tuple labels,
// matching the notation of Tables 2 and 3 in the paper. Members are
// listed in relation order.
func (s *Set) Format(db *relation.Database) string {
	parts := make([]string, 0, s.count)
	for r, idx := range s.members {
		if idx != none {
			parts = append(parts, db.Label(relation.Ref{Rel: int32(r), Idx: idx}))
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// SortKey returns a human-oriented sort key (the Format string), useful
// for deterministic test output.
func (s *Set) SortKey(db *relation.Database) string { return s.Format(db) }

// SortSets orders sets deterministically by their Format rendering.
func SortSets(db *relation.Database, sets []*Set) {
	sort.Slice(sets, func(i, j int) bool {
		return sets[i].Format(db) < sets[j].Format(db)
	})
}
