// Package tupleset implements tuple sets — the objects a full
// disjunction is made of — together with the join-consistency and
// connectivity predicates of Section 2 of Cohen & Sagiv 2007 and the
// maximal-subset operation of footnote 3.
//
// A tuple set contains at most one tuple per relation (a set with two
// tuples of one relation can never be connected in the paper's sense),
// so a Set is represented as a fixed-width vector with one optional
// tuple index per relation, mirrored by a relation bitmask. On top of
// that every Set carries an incrementally maintained attribute-binding
// signature (see signature.go): the dictionary code each global
// attribute is bound to by the set's members. The signature turns the
// hot predicates into O(arity) code compares and word-wise bit
// operations; the pairwise walks survive as oracles (Oracle*) for
// property tests and as fallbacks for sets whose signature is stale or
// conflicted.
package tupleset

import (
	"math/bits"
	"sort"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/relation"
)

// none marks an absent member.
const none = int32(-1)

// Signature validity states. A valid signature means the members are
// pairwise join consistent and attrBits/binding exactly describe their
// merged attribute bindings. A stale signature must be rebuilt before
// use (cheap, O(|T|·arity)); a conflicted one means the members are
// known not to be pairwise consistent, so only the pairwise fallbacks
// can answer questions about the set.
const (
	sigValid uint8 = iota
	sigStale
	sigConflict
)

// Set is a tuple set: at most one tuple per relation of a fixed
// database. The zero Set is not usable; create Sets through a Universe.
type Set struct {
	u       *Universe
	members []int32 // tuple index per relation, none = absent
	count   int
	// relBits is the relation-membership bitmask, always exact.
	relBits []uint64
	// binding[g] describes what the members bind global attribute g to,
	// meaningful only while sig == sigValid:
	//
	//	0   — no member's schema mentions g
	//	c≥1 — every mentioning member carries dictionary code c
	//	^r  — the single mentioning member (of relation r) holds ⊥
	//
	// Zero is unambiguous because ⊥ mentions are tagged negative and
	// real codes start at 1, so the merge test of UnionJCC is one flat
	// compare per attribute.
	binding []int32
	sig     uint8
}

// Universe ties Sets to a database and its connection graph and hosts
// every predicate that needs schema information.
type Universe struct {
	DB   *relation.Database
	Conn *graph.Connection

	// Lazily built padding layout over the global attribute universe:
	// allAttrs is the sorted union of all schema attributes, attrPos
	// its inverse, and proj[rel][schemaPos] the global position of each
	// relation column. Built once; the universe may be shared across
	// goroutines (the parallel driver does).
	layoutOnce sync.Once
	allAttrs   []relation.Attribute
	attrPos    map[relation.Attribute]int
	proj       [][]int
	relWords   int

	// Lazily cached code columns (cols[rel][pos][idx]), fetched from the
	// database mirror once so the signature maintenance in Add avoids
	// the per-call ensureEncoded check. Building this freezes the
	// database.
	colsOnce sync.Once
	cols     [][][]int32

	// setPool recycles Sets (NewSet draws from it, ReleaseSet returns
	// to it); scratchPool recycles the bitmask scratch of
	// MaximalSubsetWith.
	setPool     sync.Pool
	scratchPool sync.Pool
}

// NewUniverse builds the Universe of db.
func NewUniverse(db *relation.Database) *Universe {
	return &Universe{DB: db, Conn: graph.NewConnection(db)}
}

// ensureLayout builds the padding layout on first use.
func (u *Universe) ensureLayout() {
	u.layoutOnce.Do(func() {
		seen := make(map[relation.Attribute]bool)
		var attrs []relation.Attribute
		for i := 0; i < u.DB.NumRelations(); i++ {
			for _, a := range u.DB.Relation(i).Schema().Attributes() {
				if !seen[a] {
					seen[a] = true
					attrs = append(attrs, a)
				}
			}
		}
		sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
		pos := make(map[relation.Attribute]int, len(attrs))
		for i, a := range attrs {
			pos[a] = i
		}
		proj := make([][]int, u.DB.NumRelations())
		for r := range proj {
			schema := u.DB.Relation(r).Schema()
			proj[r] = make([]int, schema.Len())
			for p, a := range schema.Attributes() {
				proj[r][p] = pos[a]
			}
		}
		u.allAttrs = attrs
		u.attrPos = pos
		u.proj = proj
		u.relWords = (u.DB.NumRelations() + 63) / 64
	})
}

// ensureCols caches the database's code columns (and the attribute
// layout they are indexed by). The first call freezes the database (the
// columnar mirror is built if it does not exist yet).
func (u *Universe) ensureCols() {
	u.ensureLayout()
	u.colsOnce.Do(func() {
		n := u.DB.NumRelations()
		cols := make([][][]int32, n)
		for r := 0; r < n; r++ {
			width := u.DB.Relation(r).Schema().Len()
			cols[r] = make([][]int32, width)
			for p := 0; p < width; p++ {
				cols[r][p] = u.DB.Col(r, p)
			}
		}
		u.cols = cols
	})
}

// NewSet returns an empty tuple set over the universe. It draws from
// the universe's set pool; pass Sets that are provably unreferenced
// back with ReleaseSet to recycle them.
func (u *Universe) NewSet() *Set {
	u.ensureLayout()
	if v := u.setPool.Get(); v != nil {
		s := v.(*Set)
		s.reset()
		return s
	}
	n := u.DB.NumRelations()
	ints := make([]int32, n+len(u.allAttrs))
	s := &Set{
		u:       u,
		members: ints[:n:n],
		binding: ints[n:],
		relBits: make([]uint64, u.relWords),
	}
	for i := range s.members {
		s.members[i] = none
	}
	return s
}

// reset returns s to the empty state with a valid (empty) signature.
func (s *Set) reset() {
	for i := range s.members {
		s.members[i] = none
	}
	s.count = 0
	for w := range s.relBits {
		s.relBits[w] = 0
	}
	for g := range s.binding {
		s.binding[g] = 0
	}
	s.sig = sigValid
}

// ReleaseSet returns a Set to the universe's pool for reuse. The caller
// must guarantee no other reference to s exists; the enumerator uses
// this for the maximal-subset candidates it discards.
func (u *Universe) ReleaseSet(s *Set) {
	if s == nil || s.u != u {
		return
	}
	u.setPool.Put(s)
}

// Singleton returns the tuple set {t} for the referenced tuple.
func (u *Universe) Singleton(ref relation.Ref) *Set {
	s := u.NewSet()
	s.Add(ref)
	return s
}

// FromRefs builds a tuple set containing exactly the given tuples.
// It panics if two refs name tuples of the same relation.
func (u *Universe) FromRefs(refs ...relation.Ref) *Set {
	s := u.NewSet()
	for _, r := range refs {
		if s.members[r.Rel] != none {
			panic("tupleset: two tuples from one relation")
		}
		s.Add(r)
	}
	return s
}

// Len returns the number of tuples in the set.
func (s *Set) Len() int { return s.count }

// ApproxBytes estimates the heap footprint of the set in bytes: the
// struct itself plus its members vector, relation bitmask and binding
// vector. internal/service charges cached result lists against its
// byte budget with it; the estimate ignores allocator rounding but
// scales with the real cost.
func (s *Set) ApproxBytes() int {
	return 96 + 4*len(s.members) + 8*len(s.relBits) + 4*len(s.binding)
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool { return s.count == 0 }

// Member returns the tuple of relation rel contained in s, if any.
func (s *Set) Member(rel int) (relation.Ref, bool) {
	if idx := s.members[rel]; idx != none {
		return relation.Ref{Rel: int32(rel), Idx: idx}, true
	}
	return relation.Ref{}, false
}

// Has reports whether s contains the referenced tuple.
func (s *Set) Has(ref relation.Ref) bool {
	return s.members[ref.Rel] == ref.Idx
}

// HasRelation reports whether s contains some tuple of relation rel.
func (s *Set) HasRelation(rel int) bool { return s.members[rel] != none }

// Refs returns the members in relation order.
func (s *Set) Refs() []relation.Ref {
	out := make([]relation.Ref, 0, s.count)
	for w, word := range s.relBits {
		for word != 0 {
			r := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			out = append(out, relation.Ref{Rel: int32(r), Idx: s.members[r]})
		}
	}
	return out
}

// RelationBits returns the inclusion bitmask of relations present in s
// as 64-bit words. The returned slice is the set's live mask and must
// not be modified.
func (s *Set) RelationBits() []uint64 { return s.relBits }

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	out := s.u.NewSet()
	copy(out.members, s.members)
	out.count = s.count
	copy(out.relBits, s.relBits)
	copy(out.binding, s.binding)
	out.sig = s.sig
	return out
}

// Add inserts the referenced tuple into s, replacing any previous tuple
// of the same relation, and maintains the binding signature
// incrementally (O(arity)). It returns s for chaining.
func (s *Set) Add(ref relation.Ref) *Set {
	prev := s.members[ref.Rel]
	if prev == ref.Idx {
		return s
	}
	if prev == none {
		s.count++
		s.relBits[ref.Rel/64] |= 1 << (uint(ref.Rel) % 64)
		if s.sig == sigValid {
			s.bindMember(ref)
		}
	} else {
		// Replacement drops bindings we cannot un-count incrementally.
		s.sig = sigStale
	}
	s.members[ref.Rel] = ref.Idx
	return s
}

// Remove deletes the tuple of relation rel from s, if present.
func (s *Set) Remove(rel int) {
	if s.members[rel] == none {
		return
	}
	s.members[rel] = none
	s.count--
	s.relBits[rel/64] &^= 1 << (uint(rel) % 64)
	if s.count == 0 {
		for g := range s.binding {
			s.binding[g] = 0
		}
		s.sig = sigValid
		return
	}
	s.sig = sigStale
}

// ContainsAll reports whether every member of other is a member of s
// (other ⊆ s). The relation bitmask rejects non-subsets in one word
// operation per 64 relations; candidates that survive compare tuple
// indices with a flat, branch-predictable member walk.
func (s *Set) ContainsAll(other *Set) bool {
	if other.count > s.count {
		return false
	}
	if len(other.relBits) > 1 {
		// With ≤64 relations the flat member walk below is already a
		// handful of compares; the word filter pays for itself only on
		// wide schemas.
		for w, word := range other.relBits {
			if word&^s.relBits[w] != 0 {
				return false
			}
		}
	}
	for r, idx := range other.members {
		if idx != none && s.members[r] != idx {
			return false
		}
	}
	return true
}

// Equal reports whether s and other contain exactly the same tuples.
func (s *Set) Equal(other *Set) bool {
	return s.count == other.count && s.ContainsAll(other)
}

// Key returns a canonical string key for the set, usable as a map key.
// Two sets over the same universe have equal keys iff they are equal.
func (s *Set) Key() string {
	// Compact binary encoding: 4 bytes per relation slot.
	var b strings.Builder
	b.Grow(4 * len(s.members))
	for _, idx := range s.members {
		v := uint32(idx)
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v >> 16))
		b.WriteByte(byte(v >> 24))
	}
	return b.String()
}

// Format renders the set as {label, label, ...} using tuple labels,
// matching the notation of Tables 2 and 3 in the paper. Members are
// listed in relation order.
func (s *Set) Format(db *relation.Database) string {
	parts := make([]string, 0, s.count)
	for r, idx := range s.members {
		if idx != none {
			parts = append(parts, db.Label(relation.Ref{Rel: int32(r), Idx: idx}))
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// SortKey returns a human-oriented sort key (the Format string), useful
// for deterministic test output.
func (s *Set) SortKey(db *relation.Database) string { return s.Format(db) }

// SortSets orders sets deterministically by their Format rendering.
func SortSets(db *relation.Database, sets []*Set) {
	sort.Slice(sets, func(i, j int) bool {
		return sets[i].Format(db) < sets[j].Format(db)
	})
}
