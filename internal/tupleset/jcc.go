package tupleset

import (
	"math/bits"

	"repro/internal/relation"
)

// ConsistentWith reports whether the referenced tuple is pairwise join
// consistent with every member of s. A tuple of a relation already
// represented in s is consistent only if it is that very member (a set
// may not hold two tuples of one relation).
//
// With a valid binding signature the answer costs O(arity): ref's codes
// are compared against the set-wide attribute bindings. Stale
// signatures are rebuilt lazily; conflicted sets (not pairwise
// consistent, so no signature can describe them) fall back to the
// pairwise oracle, which is always exact.
func (u *Universe) ConsistentWith(s *Set, ref relation.Ref) bool {
	return u.consistentWith(s, ref, nil)
}

func (u *Universe) consistentWith(s *Set, ref relation.Ref, ctr *SigCounters) bool {
	if idx := s.members[ref.Rel]; idx != none {
		return idx == ref.Idx
	}
	// Common case first, without the function-call detour of sigReady:
	// sets on the enumeration hot path are built by Add and stay valid.
	if s.sig == sigValid || u.sigReady(s, ctr) {
		if ctr != nil {
			ctr.Hits++
		}
		return u.bindingConsistent(s, ref)
	}
	return u.OracleConsistentWith(s, ref)
}

// OracleConsistentWith is the pairwise reference implementation of
// ConsistentWith: one JoinConsistent walk per member. It is retained as
// the property-test oracle and as the fallback for sets whose members
// are not pairwise consistent.
func (u *Universe) OracleConsistentWith(s *Set, ref relation.Ref) bool {
	if idx := s.members[ref.Rel]; idx != none {
		return idx == ref.Idx
	}
	for r, idx := range s.members {
		if idx == none {
			continue
		}
		if !u.DB.JoinConsistent(relation.Ref{Rel: int32(r), Idx: idx}, ref) {
			return false
		}
	}
	return true
}

// ConnectedWith reports whether s ∪ {ref} induces a connected set of
// relations, assuming s itself is connected (the invariant every
// algorithm in the paper maintains). An empty s is extended by any
// tuple; otherwise ref's relation must already be present or adjacent
// to a present relation — a word-wise test against the relation
// bitmask.
func (u *Universe) ConnectedWith(s *Set, ref relation.Ref) bool {
	if s.count == 0 {
		return true
	}
	if s.members[ref.Rel] != none {
		return true
	}
	return u.Conn.TouchesBits(int(ref.Rel), s.relBits)
}

// JCCWithTuple reports whether s ∪ {ref} is join consistent and
// connected, assuming s is connected. This is the predicate of line 3
// of GETNEXTRESULT (Fig 2).
func (u *Universe) JCCWithTuple(s *Set, ref relation.Ref) bool {
	return u.JCCWithTupleCounted(s, ref, nil)
}

// JCCWithTupleCounted is JCCWithTuple with signature instrumentation.
func (u *Universe) JCCWithTupleCounted(s *Set, ref relation.Ref, ctr *SigCounters) bool {
	return u.ConnectedWith(s, ref) && u.consistentWith(s, ref, ctr)
}

// Connected performs the full connectivity check of Section 2: the
// relations present in s induce a connected subgraph of the connection
// graph. Unlike ConnectedWith it makes no assumption about s.
func (u *Universe) Connected(s *Set) bool {
	if s.count == 0 {
		return false
	}
	sc, pooled := u.scratch(nil)
	ok := u.Conn.SubsetConnectedBits(s.relBits, sc.comp)
	if pooled {
		u.releaseScratch(sc)
	}
	return ok
}

// JCC performs the full join-consistent-and-connected check of
// Section 2 with no assumptions and no reliance on the signature: every
// pair of members is join consistent and the members' relations are
// connected. Intended for oracles, property tests and validation; the
// algorithms use the incremental variants above.
func (u *Universe) JCC(s *Set) bool {
	if s.count == 0 {
		return false
	}
	refs := s.Refs()
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			if !u.DB.JoinConsistent(refs[i], refs[j]) {
				return false
			}
		}
	}
	return u.Connected(s)
}

// UnionJCC reports whether a ∪ b is join consistent and connected,
// assuming a and b are each JCC. Following the paper's analysis
// (proof of Theorem 4.8), under that assumption the union is JCC iff
//
//   - no two members disagree (pairwise join consistency across the two
//     sets, including the no-two-tuples-per-relation rule), and
//   - the two sets overlap in a relation or contain a connected pair of
//     relations (so the union of two connected subgraphs is connected).
//
// With valid signatures on both sides this is a single merge of the two
// binding vectors plus a bitmask adjacency test.
func (u *Universe) UnionJCC(a, b *Set) bool {
	return u.UnionJCCCounted(a, b, nil)
}

// UnionJCCCounted is UnionJCC with signature instrumentation.
func (u *Universe) UnionJCCCounted(a, b *Set, ctr *SigCounters) bool {
	if (a.sig == sigValid || u.sigReady(a, ctr)) &&
		(b.sig == sigValid || u.sigReady(b, ctr)) {
		if ctr != nil {
			ctr.Hits++
		}
		return u.UnionJCCValid(a, b)
	}
	return u.OracleUnionJCC(a, b)
}

// UnionJCCValid evaluates UnionJCC over two valid signatures. Both
// signatures MUST be valid (EnsureSig); hot callers hoist that check
// out of their candidate loops and call this directly.
func (u *Universe) UnionJCCValid(a, b *Set) bool {
	// Merge the binding vectors with one flat sweep — the most frequent
	// rejector, so it runs first: an attribute mentioned on both sides
	// (both values non-zero) must carry the same value — the same
	// non-null code, or the same ⊥ tag (meaning the single member
	// mentioning it with ⊥ is shared; the member walk below proves the
	// shared member identical).
	bBind := b.binding[:len(a.binding)]
	for g, ba := range a.binding {
		if bb := bBind[g]; ba != 0 && bb != 0 && ba != bb {
			return false
		}
	}
	// Shared relations must hold the identical tuple — two distinct
	// tuples of one relation can never coexist, and equal bindings do
	// not imply equal tuples (duplicate rows share all values). Any
	// shared relation also makes the union connected.
	touching := false
	for w, word := range b.relBits {
		common := a.relBits[w] & word
		for common != 0 {
			r := w*64 + bits.TrailingZeros64(common)
			common &= common - 1
			if a.members[r] != b.members[r] {
				return false
			}
			touching = true
		}
	}
	if touching {
		return true
	}
	// No shared relation: some relation of b must be adjacent to one
	// of a.
	for w, word := range b.relBits {
		for word != 0 {
			r := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			if u.Conn.TouchesBits(r, a.relBits) {
				return true
			}
		}
	}
	return false
}

// OracleUnionJCC is the pairwise reference implementation of UnionJCC,
// retained as the property-test oracle and the fallback for stale or
// conflicted signatures.
func (u *Universe) OracleUnionJCC(a, b *Set) bool {
	touching := false
	for r, idxB := range b.members {
		if idxB == none {
			continue
		}
		idxA := a.members[r]
		if idxA != none {
			if idxA != idxB {
				return false // two distinct tuples of one relation
			}
			touching = true
			continue
		}
		refB := relation.Ref{Rel: int32(r), Idx: idxB}
		for ra, idxA := range a.members {
			if idxA == none {
				continue
			}
			refA := relation.Ref{Rel: int32(ra), Idx: idxA}
			if !u.DB.JoinConsistent(refA, refB) {
				return false
			}
			if !touching && u.DB.ConnectedRelations(ra, r) {
				touching = true
			}
		}
	}
	return touching
}

// Union returns a ∪ b as a fresh set. It panics if a and b hold
// distinct tuples of the same relation; check UnionJCC first.
func (u *Universe) Union(a, b *Set) *Set {
	out := a.Clone()
	u.UnionInto(out, b)
	return out
}

// UnionInto adds every member of b to dst in place — the
// allocation-free form of Union for callers that own dst exclusively
// (the Incomplete queue's absorb merge). It panics if dst and b hold
// distinct tuples of the same relation; check UnionJCC first.
func (u *Universe) UnionInto(dst, b *Set) {
	for w, word := range b.relBits {
		for word != 0 {
			r := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			idx := b.members[r]
			if have := dst.members[r]; have != none {
				if have != idx {
					panic("tupleset: union of sets with conflicting members")
				}
				continue
			}
			dst.Add(relation.Ref{Rel: int32(r), Idx: idx})
		}
	}
}

// MaximalSubsetWith implements footnote 3 of the paper: the unique
// maximal subset T' of s ∪ {tb} that contains tb and is join consistent
// and connected. It is computed exactly as the footnote prescribes:
//
//  1. remove every member t' of s such that {t', tb} is not join
//     consistent (in particular any member from tb's relation), then
//  2. keep the tuples whose relations lie in the connected component of
//     tb's relation.
//
// The returned set is drawn from the universe's pool; callers that
// discard it may hand it back with ReleaseSet. When s has a valid
// signature and tb is consistent with the whole set (an O(arity)
// binding probe), step 1 removes nothing and the answer is a single
// bitset component walk.
func (u *Universe) MaximalSubsetWith(s *Set, tb relation.Ref) *Set {
	return u.MaximalSubsetWithCounted(s, tb, nil)
}

// MaximalSubsetWithCounted is MaximalSubsetWith with signature
// instrumentation.
func (u *Universe) MaximalSubsetWithCounted(s *Set, tb relation.Ref, ctr *SigCounters) *Set {
	out := u.NewSet()
	u.MaximalSubsetInto(out, s, tb, ctr)
	return out
}

// MaximalSubsetInto computes MaximalSubsetWith into dst, overwriting
// its previous contents. The enumerator core reuses one dst across the
// whole discovery scan — most candidates are rejected by cheap
// membership probes, so recycling the buffer removes an allocation per
// database tuple — and only allocates when a candidate is actually
// kept.
func (u *Universe) MaximalSubsetInto(dst *Set, s *Set, tb relation.Ref, ctr *SigCounters) {
	sc, pooled := u.scratch(ctr)
	if pooled {
		defer u.releaseScratch(sc)
	}
	if s.sig == sigValid || u.sigReady(s, ctr) {
		if mem := s.members[tb.Rel]; mem == tb.Idx ||
			(mem == none && u.bindingConsistent(s, tb)) {
			// No member is dropped by step 1: the component of tb's
			// relation over s's relations plus tb's is the answer.
			ctr.hit()
			copy(sc.mask, s.relBits)
			sc.mask[tb.Rel/64] |= 1 << (uint(tb.Rel) % 64)
			u.componentInto(dst, s, tb, sc)
			return
		}
	}
	// Step 1: pairwise join consistency with tb.
	for w := range sc.mask {
		sc.mask[w] = 0
	}
	for r, idx := range s.members {
		if idx == none || int32(r) == tb.Rel {
			// A same-relation member is always removed (unless it is tb
			// itself, which the bit below restores).
			continue
		}
		if u.DB.JoinConsistent(relation.Ref{Rel: int32(r), Idx: idx}, tb) {
			sc.mask[r/64] |= 1 << (uint(r) % 64)
		}
	}
	sc.mask[tb.Rel/64] |= 1 << (uint(tb.Rel) % 64)
	u.componentInto(dst, s, tb, sc)
}

// componentInto fills dst with the tuple set of the connected component
// of tb's relation within sc.mask, taking member indices from s (and tb
// for its own relation). dst's signature is left stale on purpose: most
// discovery candidates are discarded by cheap membership checks before
// any signature-consuming predicate runs, so bindings are built lazily
// on first use instead of eagerly per candidate.
func (u *Universe) componentInto(dst *Set, s *Set, tb relation.Ref, sc *sigScratch) {
	// Step 2: connected component of tb's relation.
	u.Conn.ComponentOfBitsInto(sc.comp, sc.mask, int(tb.Rel))
	// Clear only dst's previous members (cheaper than a full reset when
	// dst is the enumerator's recycled buffer).
	for w, word := range dst.relBits {
		for word != 0 {
			r := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			dst.members[r] = none
		}
	}
	dst.count = 0
	for w, word := range sc.comp {
		dst.relBits[w] = word
		for word != 0 {
			r := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			if int32(r) == tb.Rel {
				dst.members[r] = tb.Idx
			} else {
				dst.members[r] = s.members[r]
			}
			dst.count++
		}
	}
	dst.sig = sigStale // bindings not built; rebuilt on first use
}

// OracleMaximalSubsetWith is the reference implementation of
// MaximalSubsetWith over boolean masks, retained as the property-test
// oracle. It allocates freely and never consults the signature.
func (u *Universe) OracleMaximalSubsetWith(s *Set, tb relation.Ref) *Set {
	mask := make([]bool, len(s.members))
	for r, idx := range s.members {
		if idx == none {
			continue
		}
		if int32(r) == tb.Rel {
			continue
		}
		if u.DB.JoinConsistent(relation.Ref{Rel: int32(r), Idx: idx}, tb) {
			mask[r] = true
		}
	}
	mask[tb.Rel] = true
	comp := u.Conn.ComponentOf(int(tb.Rel), mask)
	out := u.NewSet()
	for r := range comp {
		if !comp[r] {
			continue
		}
		if int32(r) == tb.Rel {
			out.Add(tb)
		} else {
			out.Add(relation.Ref{Rel: int32(r), Idx: s.members[r]})
		}
	}
	return out
}
