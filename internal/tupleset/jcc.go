package tupleset

import (
	"repro/internal/relation"
)

// ConsistentWith reports whether the referenced tuple is pairwise join
// consistent with every member of s. A tuple of a relation already
// represented in s is consistent only if it is that very member (a set
// may not hold two tuples of one relation).
func (u *Universe) ConsistentWith(s *Set, ref relation.Ref) bool {
	if idx := s.members[ref.Rel]; idx != none {
		return idx == ref.Idx
	}
	for r, idx := range s.members {
		if idx == none {
			continue
		}
		if !u.DB.JoinConsistent(relation.Ref{Rel: int32(r), Idx: idx}, ref) {
			return false
		}
	}
	return true
}

// ConnectedWith reports whether s ∪ {ref} induces a connected set of
// relations, assuming s itself is connected (the invariant every
// algorithm in the paper maintains). An empty s is extended by any
// tuple; otherwise ref's relation must already be present or adjacent
// to a present relation.
func (u *Universe) ConnectedWith(s *Set, ref relation.Ref) bool {
	if s.count == 0 {
		return true
	}
	if s.members[ref.Rel] != none {
		return true
	}
	for _, nb := range u.Conn.Adjacent(int(ref.Rel)) {
		if s.members[nb] != none {
			return true
		}
	}
	return false
}

// JCCWithTuple reports whether s ∪ {ref} is join consistent and
// connected, assuming s is connected. This is the predicate of line 3
// of GETNEXTRESULT (Fig 2).
func (u *Universe) JCCWithTuple(s *Set, ref relation.Ref) bool {
	return u.ConnectedWith(s, ref) && u.ConsistentWith(s, ref)
}

// Connected performs the full connectivity check of Section 2: the
// relations present in s induce a connected subgraph of the connection
// graph. Unlike ConnectedWith it makes no assumption about s.
func (u *Universe) Connected(s *Set) bool {
	if s.count == 0 {
		return false
	}
	return u.Conn.SubsetConnected(s.RelationMask())
}

// JCC performs the full join-consistent-and-connected check of
// Section 2 with no assumptions: every pair of members is join
// consistent and the members' relations are connected. Intended for
// oracles, property tests and validation; the algorithms use the
// incremental variants above.
func (u *Universe) JCC(s *Set) bool {
	if s.count == 0 {
		return false
	}
	refs := s.Refs()
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			if !u.DB.JoinConsistent(refs[i], refs[j]) {
				return false
			}
		}
	}
	return u.Connected(s)
}

// UnionJCC reports whether a ∪ b is join consistent and connected,
// assuming a and b are each JCC. Following the paper's analysis
// (proof of Theorem 4.8), under that assumption the union is JCC iff
//
//   - no two members disagree (pairwise join consistency across the two
//     sets, including the no-two-tuples-per-relation rule), and
//   - the two sets overlap in a relation or contain a connected pair of
//     relations (so the union of two connected subgraphs is connected).
func (u *Universe) UnionJCC(a, b *Set) bool {
	touching := false
	for r, idxB := range b.members {
		if idxB == none {
			continue
		}
		idxA := a.members[r]
		if idxA != none {
			if idxA != idxB {
				return false // two distinct tuples of one relation
			}
			touching = true
			continue
		}
		refB := relation.Ref{Rel: int32(r), Idx: idxB}
		for ra, idxA := range a.members {
			if idxA == none {
				continue
			}
			refA := relation.Ref{Rel: int32(ra), Idx: idxA}
			if !u.DB.JoinConsistent(refA, refB) {
				return false
			}
			if !touching && u.DB.ConnectedRelations(ra, r) {
				touching = true
			}
		}
	}
	return touching
}

// Union returns a ∪ b as a fresh set. It panics if a and b hold
// distinct tuples of the same relation; check UnionJCC first.
func (u *Universe) Union(a, b *Set) *Set {
	out := a.Clone()
	for r, idx := range b.members {
		if idx == none {
			continue
		}
		if out.members[r] != none && out.members[r] != idx {
			panic("tupleset: union of sets with conflicting members")
		}
		if out.members[r] == none {
			out.members[r] = idx
			out.count++
		}
	}
	return out
}

// MaximalSubsetWith implements footnote 3 of the paper: the unique
// maximal subset T' of s ∪ {tb} that contains tb and is join consistent
// and connected. It is computed exactly as the footnote prescribes:
//
//  1. remove every member t' of s such that {t', tb} is not join
//     consistent (in particular any member from tb's relation), then
//  2. keep the tuples whose relations lie in the connected component of
//     tb's relation.
func (u *Universe) MaximalSubsetWith(s *Set, tb relation.Ref) *Set {
	// Step 1: pairwise join consistency with tb.
	mask := make([]bool, len(s.members))
	for r, idx := range s.members {
		if idx == none {
			continue
		}
		if int32(r) == tb.Rel {
			continue // same-relation member always removed (unless it is tb itself, handled below)
		}
		if u.DB.JoinConsistent(relation.Ref{Rel: int32(r), Idx: idx}, tb) {
			mask[r] = true
		}
	}
	if s.members[tb.Rel] == tb.Idx {
		// tb already in s; it survives trivially.
	}
	mask[tb.Rel] = true
	// Step 2: connected component of tb's relation.
	comp := u.Conn.ComponentOf(int(tb.Rel), mask)
	out := u.NewSet()
	for r := range comp {
		if !comp[r] {
			continue
		}
		if int32(r) == tb.Rel {
			out.members[r] = tb.Idx
		} else {
			out.members[r] = s.members[r]
		}
		out.count++
	}
	return out
}
