package tupleset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/workload"
)

// touristRefs resolves the paper's tuple labels to refs.
func touristRefs(t *testing.T, db *relation.Database) map[string]relation.Ref {
	t.Helper()
	out := make(map[string]relation.Ref)
	db.ForEachRef(func(ref relation.Ref) bool {
		out[db.Label(ref)] = ref
		return true
	})
	return out
}

func TestSetBasics(t *testing.T) {
	db := workload.Tourist()
	u := NewUniverse(db)
	refs := touristRefs(t, db)

	s := u.Singleton(refs["c1"])
	if s.Len() != 1 || !s.Has(refs["c1"]) || s.Empty() {
		t.Error("singleton malformed")
	}
	s.Add(refs["a1"])
	if s.Len() != 2 || !s.HasRelation(1) {
		t.Error("Add failed")
	}
	if got := s.Format(db); got != "{c1, a1}" {
		t.Errorf("Format = %q", got)
	}
	member, ok := s.Member(1)
	if !ok || member != refs["a1"] {
		t.Errorf("Member(1) = %v,%v", member, ok)
	}
	if _, ok := s.Member(2); ok {
		t.Error("Member(2) should be absent")
	}
	clone := s.Clone()
	clone.Add(refs["s1"])
	if s.Len() != 2 {
		t.Error("Clone must be independent")
	}
	clone.Remove(2)
	if clone.Len() != 2 || clone.HasRelation(2) {
		t.Error("Remove failed")
	}
	clone.Remove(2) // removing absent member is a no-op
	if clone.Len() != 2 {
		t.Error("double Remove changed count")
	}
}

func TestSetContainsEqualKey(t *testing.T) {
	db := workload.Tourist()
	u := NewUniverse(db)
	refs := touristRefs(t, db)

	small := u.FromRefs(refs["c1"], refs["a2"])
	big := u.FromRefs(refs["c1"], refs["a2"], refs["s1"])
	other := u.FromRefs(refs["c1"], refs["a1"])

	if !big.ContainsAll(small) {
		t.Error("big must contain small")
	}
	if small.ContainsAll(big) {
		t.Error("small must not contain big")
	}
	if big.ContainsAll(other) {
		t.Error("big must not contain {c1,a1}")
	}
	if !big.Equal(big.Clone()) || small.Equal(big) {
		t.Error("Equal misbehaves")
	}
	if big.Key() == small.Key() || big.Key() != big.Clone().Key() {
		t.Error("Key must be canonical")
	}
	if small.SortKey(db) != small.Format(db) {
		t.Error("SortKey must equal Format")
	}
}

func TestFromRefsPanicsOnConflict(t *testing.T) {
	db := workload.Tourist()
	u := NewUniverse(db)
	refs := touristRefs(t, db)
	defer func() {
		if recover() == nil {
			t.Error("FromRefs with two tuples of one relation must panic")
		}
	}()
	u.FromRefs(refs["c1"], refs["c2"])
}

func TestJCCTouristExamples(t *testing.T) {
	db := workload.Tourist()
	u := NewUniverse(db)
	refs := touristRefs(t, db)

	// From Example 2.2: {c1, s2} is JCC but cannot absorb a2 because s2
	// has a null City.
	c1s2 := u.FromRefs(refs["c1"], refs["s2"])
	if !u.JCC(c1s2) {
		t.Error("{c1,s2} must be JCC")
	}
	if u.JCCWithTuple(c1s2, refs["a2"]) {
		t.Error("{c1,s2} must not join a2 (null City in s2)")
	}
	if u.ConsistentWith(c1s2, refs["a2"]) {
		t.Error("a2 inconsistent with s2 on City")
	}
	// {c1, a2, s1} is the natural-join tuple set of Table 2.
	full := u.FromRefs(refs["c1"], refs["a2"], refs["s1"])
	if !u.JCC(full) {
		t.Error("{c1,a2,s1} must be JCC")
	}
	// Two tuples of one relation are never a valid set.
	bad := u.NewSet().Add(refs["c1"])
	if u.ConsistentWith(bad, refs["c2"]) {
		t.Error("c2 must be inconsistent with {c1} (same relation)")
	}
	// Empty set is not JCC and not connected.
	if u.JCC(u.NewSet()) || u.Connected(u.NewSet()) {
		t.Error("empty set must not be JCC")
	}
	// Singletons are JCC.
	if !u.JCC(u.Singleton(refs["a3"])) {
		t.Error("singleton must be JCC")
	}
}

func TestMaximalSubsetWithTouristTrace(t *testing.T) {
	db := workload.Tourist()
	u := NewUniverse(db)
	refs := touristRefs(t, db)

	// Example 4.1: from T = {c1, a1}, reaching a2 yields T' = {c1, a2};
	// reaching s1 yields {c1, s1}; reaching a3 yields {a3} (no Climates
	// tuple); reaching s3 yields {s3}.
	T := u.FromRefs(refs["c1"], refs["a1"])
	cases := []struct {
		tb   string
		want string
	}{
		{"a2", "{c1, a2}"},
		{"s1", "{c1, s1}"},
		{"a3", "{a3}"},
		{"s3", "{s3}"},
		{"s2", "{c1, s2}"},
	}
	for _, c := range cases {
		got := u.MaximalSubsetWith(T, refs[c.tb]).Format(db)
		if got != c.want {
			t.Errorf("MaximalSubsetWith(T, %s) = %s, want %s", c.tb, got, c.want)
		}
	}
}

func TestMaximalSubsetDropsDisconnected(t *testing.T) {
	// Chain R0-R1-R2: dropping the middle tuple must also drop the far
	// tuple (connected component of tb).
	r0 := relation.MustRelation("R0", relation.MustSchema("A", "B"))
	r0.MustAppend("x0", map[relation.Attribute]relation.Value{"A": relation.V("a"), "B": relation.V("b")})
	r1 := relation.MustRelation("R1", relation.MustSchema("B", "C"))
	r1.MustAppend("y0", map[relation.Attribute]relation.Value{"B": relation.V("b"), "C": relation.V("c")})
	r2 := relation.MustRelation("R2", relation.MustSchema("C", "D"))
	r2.MustAppend("z0", map[relation.Attribute]relation.Value{"C": relation.V("c"), "D": relation.V("d")})
	r2.MustAppend("z1", map[relation.Attribute]relation.Value{"C": relation.V("X"), "D": relation.V("d")})
	db := relation.MustDatabase(r0, r1, r2)
	u := NewUniverse(db)

	T := u.FromRefs(relation.Ref{Rel: 0, Idx: 0}, relation.Ref{Rel: 1, Idx: 0}, relation.Ref{Rel: 2, Idx: 0})
	// tb = z1 conflicts with y0 on C and replaces z0; x0 stays connected
	// through... nothing: y0 is dropped (inconsistent), so x0 must drop
	// too (R0 not adjacent to R2).
	got := u.MaximalSubsetWith(T, relation.Ref{Rel: 2, Idx: 1})
	if got.Format(db) != "{z1}" {
		t.Errorf("got %s, want {z1}", got.Format(db))
	}
	// tb already a member: identity.
	same := u.MaximalSubsetWith(T, relation.Ref{Rel: 1, Idx: 0})
	if !same.Equal(T) {
		t.Errorf("got %s, want T itself", same.Format(db))
	}
}

func TestUnionJCC(t *testing.T) {
	db := workload.Tourist()
	u := NewUniverse(db)
	refs := touristRefs(t, db)

	a := u.FromRefs(refs["c1"], refs["a2"])
	b := u.FromRefs(refs["c1"], refs["s1"])
	if !u.UnionJCC(a, b) {
		t.Error("{c1,a2} ∪ {c1,s1} must be JCC")
	}
	un := u.Union(a, b)
	if un.Format(db) != "{c1, a2, s1}" {
		t.Errorf("union = %s", un.Format(db))
	}
	// Conflicting members of one relation.
	c := u.FromRefs(refs["c2"], refs["s3"])
	if u.UnionJCC(a, c) {
		t.Error("sets with different Climates tuples must not merge")
	}
	// Join-inconsistent across sets: {c1,s2} (null City) with {a2}.
	d := u.FromRefs(refs["c1"], refs["s2"])
	e := u.FromRefs(refs["a2"], refs["c1"])
	if u.UnionJCC(d, e) {
		t.Error("s2 and a2 are join inconsistent (null City)")
	}
}

func TestUnionPanicsOnConflict(t *testing.T) {
	db := workload.Tourist()
	u := NewUniverse(db)
	refs := touristRefs(t, db)
	defer func() {
		if recover() == nil {
			t.Error("Union with conflicting members must panic")
		}
	}()
	u.Union(u.Singleton(refs["c1"]), u.Singleton(refs["c2"]))
}

// TestUnionJCCMatchesFullCheck property-tests UnionJCC (which assumes
// its arguments are JCC) against the assumption-free JCC predicate on
// random JCC pairs.
func TestUnionJCCMatchesFullCheck(t *testing.T) {
	db, err := workload.Random(workload.Config{
		Relations: 4, TuplesPerRelation: 5, Domain: 3, NullRate: 0.2, Seed: 17}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniverse(db)
	rng := rand.New(rand.NewSource(99))

	randomJCC := func() *Set {
		for {
			s := u.NewSet()
			// Random greedy growth.
			db.ForEachRef(func(ref relation.Ref) bool {
				if rng.Intn(2) == 0 && u.JCCWithTuple(s, ref) {
					s.Add(ref)
				}
				return true
			})
			if s.Len() > 0 {
				return s
			}
		}
	}
	for trial := 0; trial < 300; trial++ {
		a, b := randomJCC(), randomJCC()
		got := u.UnionJCC(a, b)
		// Reference: build union unless relation conflict, then full JCC.
		conflict := false
		for r := 0; r < db.NumRelations(); r++ {
			ra, okA := a.Member(r)
			rb, okB := b.Member(r)
			if okA && okB && ra != rb {
				conflict = true
			}
		}
		want := false
		if !conflict {
			want = u.JCC(u.Union(a, b))
		}
		if got != want {
			t.Fatalf("UnionJCC(%s, %s) = %v, want %v", a.Format(db), b.Format(db), got, want)
		}
	}
}

// TestMaximalSubsetProperties property-tests footnote 3's
// characterisation: T' contains tb, T' ⊆ T ∪ {tb}, T' is JCC, and no
// tuple of T ∪ {tb} outside T' can be added while keeping T' JCC
// (maximality), using testing/quick to drive tuple choices.
func TestMaximalSubsetProperties(t *testing.T) {
	db, err := workload.Random(workload.Config{
		Relations: 4, TuplesPerRelation: 4, Domain: 3, NullRate: 0.25, Seed: 23}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniverse(db)
	total := db.NumTuples()

	refAt := func(k int) relation.Ref {
		k = ((k % total) + total) % total
		var out relation.Ref
		i := 0
		db.ForEachRef(func(ref relation.Ref) bool {
			if i == k {
				out = ref
				return false
			}
			i++
			return true
		})
		return out
	}

	f := func(seedK int, grow []bool, tbK int) bool {
		// Build a JCC set T greedily from a seed tuple.
		T := u.Singleton(refAt(seedK))
		gi := 0
		db.ForEachRef(func(ref relation.Ref) bool {
			take := gi < len(grow) && grow[gi]
			gi++
			if take && !T.Has(ref) && u.JCCWithTuple(T, ref) {
				T.Add(ref)
			}
			return true
		})
		tb := refAt(tbK)
		tp := u.MaximalSubsetWith(T, tb)
		if !tp.Has(tb) {
			return false
		}
		if !u.JCC(tp) {
			return false
		}
		// T' ⊆ T ∪ {tb}.
		for _, ref := range tp.Refs() {
			if ref != tb && !T.Has(ref) {
				return false
			}
		}
		// Maximality: no other tuple of T ∪ {tb} extends T'.
		for _, ref := range T.Refs() {
			if tp.Has(ref) || tp.HasRelation(int(ref.Rel)) {
				continue
			}
			if u.JCCWithTuple(tp, ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPaddedTourist(t *testing.T) {
	db := workload.Tourist()
	u := NewUniverse(db)
	refs := touristRefs(t, db)

	// Row 2 of Table 2: {c1, a2, s1} joins to
	// (Canada, London, diverse, Ramada, 3, Air Show).
	s := u.FromRefs(refs["c1"], refs["a2"], refs["s1"])
	p := u.PadOver(s, u.AllAttributes())
	want := map[relation.Attribute]string{
		"Country": "Canada", "City": "London", "Climate": "diverse",
		"Hotel": "Ramada", "Stars": "3", "Site": "Air Show",
	}
	for i, a := range p.Attrs {
		if w, ok := want[a]; ok {
			if p.Values[i].Datum() != w {
				t.Errorf("%s = %v, want %s", a, p.Values[i], w)
			}
		}
	}
	// Row 3 of Table 2: {c1, s2} has ⊥ City, Hotel, Stars.
	s2 := u.FromRefs(refs["c1"], refs["s2"])
	p2 := u.PadOver(s2, u.AllAttributes())
	for i, a := range p2.Attrs {
		switch a {
		case "City", "Hotel", "Stars":
			if !p2.Values[i].IsNull() {
				t.Errorf("%s should be ⊥, got %v", a, p2.Values[i])
			}
		case "Site":
			if p2.Values[i].Datum() != "Mount Logan" {
				t.Errorf("Site = %v", p2.Values[i])
			}
		}
	}
	// Subsumption: row {c1,a2,s1} subsumes the padded {c1,s1}... over
	// the same attribute universe.
	small := u.PadOver(u.FromRefs(refs["c1"], refs["s1"]), u.AllAttributes())
	if !p.Subsumes(small) {
		t.Error("{c1,a2,s1} must subsume {c1,s1}")
	}
	if small.Subsumes(p) {
		t.Error("{c1,s1} must not subsume {c1,a2,s1}")
	}
	if p.Key() == p2.Key() {
		t.Error("distinct padded tuples share a key")
	}
	if p.String() == "" || p2.String() == "" {
		t.Error("String must render")
	}
}

func TestSortSetsDeterministic(t *testing.T) {
	db := workload.Tourist()
	u := NewUniverse(db)
	refs := touristRefs(t, db)
	a := u.FromRefs(refs["c2"], refs["s3"])
	b := u.FromRefs(refs["c1"], refs["a1"])
	c := u.FromRefs(refs["c1"], refs["a2"], refs["s1"])
	sets := []*Set{a, b, c}
	SortSets(db, sets)
	got := []string{sets[0].Format(db), sets[1].Format(db), sets[2].Format(db)}
	want := []string{"{c1, a1}", "{c1, a2, s1}", "{c2, s3}"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sorted = %v", got)
	}
}

func TestRelationBitsAndRefs(t *testing.T) {
	db := workload.Tourist()
	u := NewUniverse(db)
	refs := touristRefs(t, db)
	s := u.FromRefs(refs["c2"], refs["s3"])
	bits := s.RelationBits()
	if len(bits) != 1 || bits[0] != 0b101 {
		t.Errorf("relation bits = %b", bits)
	}
	rs := s.Refs()
	if len(rs) != 2 || rs[0] != refs["c2"] || rs[1] != refs["s3"] {
		t.Errorf("refs = %v", rs)
	}
}
