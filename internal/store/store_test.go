package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	fd "repro"
	"repro/internal/relation"
	"repro/internal/workload"
)

func testDB(t *testing.T, seed int64) *relation.Database {
	t.Helper()
	db, err := workload.Chain(workload.Config{
		Relations: 3, TuplesPerRelation: 8, Domain: 3, NullRate: 0.1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestStoreSaveLoadListDelete(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t, 1)
	if err := st.Save("alpha", db); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("beta/with slash", testDB(t, 2)); err != nil {
		t.Fatal(err)
	}

	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"alpha", "beta/with slash"}; !equalStrings(names, want) {
		t.Fatalf("List = %v, want %v", names, want)
	}

	got, replayed, err := st.Load("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if replayed {
		t.Fatal("fresh snapshot reported a log replay")
	}
	if got.Fingerprint() != db.Fingerprint() {
		t.Fatalf("fingerprint %016x, want %016x", got.Fingerprint(), db.Fingerprint())
	}

	if err := st.Delete("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("alpha"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	if _, _, err := st.Load("alpha"); err == nil {
		t.Fatal("loading a deleted database succeeded")
	}
	names, _ = st.List()
	if want := []string{"beta/with slash"}; !equalStrings(names, want) {
		t.Fatalf("List after delete = %v, want %v", names, want)
	}
}

func TestStoreAppendReplayAndCompact(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t, 3)
	relName := db.Relation(0).Name()
	width := db.Relation(0).Schema().Len()
	if err := st.Save("w", db); err != nil {
		t.Fatal(err)
	}

	rows := []relation.Tuple{
		{Label: "x1", Values: append([]relation.Value{relation.V("zz")},
			make([]relation.Value, width-1)...), Imp: 1, Prob: 1},
		{Label: "x2", Values: make([]relation.Value, width), Imp: 2, Prob: 0.5},
	}
	if err := st.Append("w", relName, rows, db.Fingerprint()); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("w", relName, rows[:1], db.Fingerprint()); err != nil {
		t.Fatal(err) // second batch extends the existing log
	}
	if err := st.Append("w", relName, rows[:1], db.Fingerprint()^1); err == nil {
		t.Fatal("append against a mismatched snapshot fingerprint succeeded")
	}

	loaded, replayed, err := st.Load("w")
	if err != nil {
		t.Fatal(err)
	}
	if !replayed {
		t.Fatal("log replay not reported")
	}
	idx, _ := loaded.RelationIndex(relName)
	if got, want := loaded.Relation(idx).Len(), db.Relation(0).Len()+3; got != want {
		t.Fatalf("replayed relation has %d tuples, want %d", got, want)
	}
	last := loaded.Relation(idx).Tuple(loaded.Relation(idx).Len() - 1)
	if last.Label != "x1" || last.Values[0] != relation.V("zz") {
		t.Fatalf("replayed tuple mismatch: %+v", last)
	}
	replayedFP := loaded.Fingerprint()
	if replayedFP == db.Fingerprint() {
		t.Fatal("replay did not change the fingerprint")
	}

	compacted, err := st.Compact("w")
	if err != nil {
		t.Fatal(err)
	}
	if !compacted {
		t.Fatal("compaction reported nothing to do")
	}
	if _, err := os.Stat(st.logPath("w")); !os.IsNotExist(err) {
		t.Fatal("log survived compaction")
	}
	again, replayed, err := st.Load("w")
	if err != nil {
		t.Fatal(err)
	}
	if replayed {
		t.Fatal("compacted snapshot still reports a replay")
	}
	if again.Fingerprint() != replayedFP {
		t.Fatalf("compaction changed content: %016x vs %016x", again.Fingerprint(), replayedFP)
	}
	if c, err := st.Compact("w"); err != nil || c {
		t.Fatalf("second compaction = (%v, %v), want (false, nil)", c, err)
	}
}

func TestStoreLoadRejectsTruncatedLog(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t, 4)
	relName := db.Relation(0).Name()
	width := db.Relation(0).Schema().Len()
	if err := st.Save("w", db); err != nil {
		t.Fatal(err)
	}
	row := relation.Tuple{Label: "x", Values: make([]relation.Value, width), Imp: 1, Prob: 1}
	if err := st.Append("w", relName, []relation.Tuple{row, row}, db.Fingerprint()); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(st.logPath("w"))
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append tears the tail: every proper prefix past the
	// header must fail the load loudly, not silently drop rows.
	for _, cut := range []int{len(raw) - 1, len(raw) - 5, logHeaderLen + 3} {
		if err := os.WriteFile(st.logPath("w"), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := st.Load("w"); err == nil {
			t.Fatalf("load with log truncated to %d of %d bytes succeeded", cut, len(raw))
		}
	}
	// Corrupt one payload byte: the record checksum must catch it.
	bad := append([]byte(nil), raw...)
	bad[logHeaderLen+6] ^= 0x01
	if err := os.WriteFile(st.logPath("w"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load("w"); err == nil {
		t.Fatal("load with corrupt log record succeeded")
	}
}

func TestStoreLoadRejectsLogSnapshotMismatch(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t, 5)
	width := db.Relation(0).Schema().Len()
	if err := st.Save("w", db); err != nil {
		t.Fatal(err)
	}
	// A log bound to a different snapshot fingerprint must be refused.
	row := relation.Tuple{Values: make([]relation.Value, width), Imp: 1, Prob: 1}
	if err := appendLog(st.fs, st.logPath("w"), db.Fingerprint()^1, db.Relation(0).Name(),
		[]relation.Tuple{row}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load("w"); err == nil {
		t.Fatal("load with mismatched log fingerprint succeeded")
	}
}

// TestStoreCompactionCrashWindows simulates the two crash points of a
// log-folding Save: after the snapshot rename but before the log
// removal (marker fp == new snapshot fp → the log is already folded
// in, load must drop it and succeed), and before the rename (marker fp
// != snapshot fp → old snapshot + log are intact, load must replay).
func TestStoreCompactionCrashWindows(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t, 8)
	relName := db.Relation(0).Name()
	width := db.Relation(0).Schema().Len()
	if err := st.Save("w", db); err != nil {
		t.Fatal(err)
	}
	row := relation.Tuple{Label: "x", Values: make([]relation.Value, width), Imp: 1, Prob: 1}
	if err := st.Append("w", relName, []relation.Tuple{row}, db.Fingerprint()); err != nil {
		t.Fatal(err)
	}
	appendedDB, replayed, err := st.Load("w")
	if err != nil || !replayed {
		t.Fatalf("Load = (%v, %v)", replayed, err)
	}
	appendedFP := appendedDB.Fingerprint()
	logRaw, err := os.ReadFile(st.logPath("w"))
	if err != nil {
		t.Fatal(err)
	}

	// Crash after the rename: new snapshot on disk, stale log, marker
	// recording the new snapshot's fingerprint.
	if err := st.Save("w", appendedDB); err != nil { // writes the folded snapshot, removes the log
		t.Fatal(err)
	}
	if err := os.WriteFile(st.logPath("w"), logRaw, 0o644); err != nil { // resurrect the stale log
		t.Fatal(err)
	}
	if err := st.writeMarker("w", appendedFP); err != nil {
		t.Fatal(err)
	}
	got, replayed, err := st.Load("w")
	if err != nil {
		t.Fatalf("load after interrupted compaction (post-rename): %v", err)
	}
	if replayed {
		t.Fatal("stale folded log was replayed")
	}
	if got.Fingerprint() != appendedFP {
		t.Fatalf("fingerprint %016x, want %016x", got.Fingerprint(), appendedFP)
	}
	if _, err := os.Stat(st.logPath("w")); !os.IsNotExist(err) {
		t.Fatal("stale log not cleaned up")
	}
	if _, err := os.Stat(st.markerPath("w")); !os.IsNotExist(err) {
		t.Fatal("marker not cleaned up")
	}

	// Crash before the rename: old snapshot + live log + marker whose
	// fingerprint matches neither — replay must proceed normally.
	if err := st.Save("w", db); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.logPath("w"), logRaw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.writeMarker("w", appendedFP); err != nil {
		t.Fatal(err)
	}
	got, replayed, err = st.Load("w")
	if err != nil {
		t.Fatalf("load after interrupted compaction (pre-rename): %v", err)
	}
	if !replayed {
		t.Fatal("live log was not replayed")
	}
	if got.Fingerprint() != appendedFP {
		t.Fatalf("fingerprint %016x, want %016x", got.Fingerprint(), appendedFP)
	}
	if _, err := os.Stat(st.markerPath("w")); !os.IsNotExist(err) {
		t.Fatal("marker not cleaned up after pre-rename recovery")
	}
}

func TestStoreLoadRejectsCorruptSnapshot(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("w", testDB(t, 6)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(st.snapshotPath("w"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(st.snapshotPath("w"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load("w"); err == nil {
		t.Fatal("load of corrupt snapshot succeeded")
	}
}

func TestStoreSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("w", testDB(t, 7)); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, tmpPrefix+"*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}

// TestPropertySnapshotRoundTrip checks the tentpole contract on random
// chain/star/clique databases: save→load preserves the fingerprint, and
// the exact, ranked and approximate cursor enumerations are
// multiset-equal between the original and the loaded database.
func TestPropertySnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	shapes := []struct {
		name string
		gen  func(workload.Config) (*relation.Database, error)
	}{
		{"chain", workload.Chain},
		{"star", workload.Star},
		{"clique", workload.Clique},
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 6; trial++ {
		shape := shapes[trial%len(shapes)]
		cfg := workload.Config{
			Relations:         2 + rng.Intn(3),
			TuplesPerRelation: 3 + rng.Intn(6),
			Domain:            2 + rng.Intn(3),
			NullRate:          rng.Float64() * 0.3,
			ImpMax:            1 + rng.Float64()*3,
			Seed:              rng.Int63(),
		}
		db, err := shape.gen(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Save("p", db); err != nil {
			t.Fatalf("%s trial %d: %v", shape.name, trial, err)
		}
		loaded, _, err := st.Load("p")
		if err != nil {
			t.Fatalf("%s trial %d: %v", shape.name, trial, err)
		}
		if loaded.Fingerprint() != db.Fingerprint() {
			t.Fatalf("%s trial %d: fingerprint %016x, want %016x",
				shape.name, trial, loaded.Fingerprint(), db.Fingerprint())
		}
		for _, mode := range []string{"exact", "ranked", "approx"} {
			want := enumerate(t, db, mode)
			got := enumerate(t, loaded, mode)
			if !equalStrings(got, want) {
				t.Fatalf("%s trial %d mode %s: loaded results differ\n got %v\nwant %v",
					shape.name, trial, mode, got, want)
			}
		}
	}
}

// enumerate drains one cursor family and returns a sorted multiset
// rendering of the results (padded rows plus rank when ranked).
func enumerate(t *testing.T, db *relation.Database, mode string) []string {
	t.Helper()
	var sets []*fd.TupleSet
	var ranks []float64
	switch mode {
	case "exact":
		cur, err := fd.NewCursor(db, fd.Options{UseIndex: true, UseJoinIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		for {
			s, ok := cur.Next()
			if !ok {
				break
			}
			sets = append(sets, s)
		}
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
	case "ranked":
		cur, err := fd.NewRankedCursor(db, fd.FMax(), fd.Options{UseIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		for {
			r, ok := cur.Next()
			if !ok {
				break
			}
			sets = append(sets, r.Set)
			ranks = append(ranks, r.Rank)
		}
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
	case "approx":
		cur, err := fd.NewApproxCursor(db, fd.Amin(fd.LevenshteinSim()), 0.8)
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		for {
			s, ok := cur.Next()
			if !ok {
				break
			}
			sets = append(sets, s)
		}
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown mode %s", mode)
	}

	attrs, rows := fd.PadAll(db, sets)
	out := make([]string, len(sets))
	for i := range sets {
		s := fd.Format(db, sets[i])
		for j := range attrs {
			s += "|" + rows[i].Values[j].String()
		}
		if ranks != nil {
			s += fmt.Sprintf("|rank=%.9g", ranks[i])
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStoreQuarantine(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t, 11)
	relName := db.Relation(0).Name()
	width := db.Relation(0).Schema().Len()
	if err := st.Save("bad db", db); err != nil {
		t.Fatal(err)
	}
	row := relation.Tuple{Label: "x", Values: make([]relation.Value, width), Imp: 1, Prob: 1}
	if err := st.Append("bad db", relName, []relation.Tuple{row}, db.Fingerprint()); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("ok", testDB(t, 12)); err != nil {
		t.Fatal(err)
	}

	label, err := st.Quarantine("bad db")
	if err != nil {
		t.Fatal(err)
	}
	if want := "bad%20db.corrupt-1"; label != want {
		t.Fatalf("label %q, want %q", label, want)
	}
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"ok"}; !equalStrings(names, want) {
		t.Fatalf("List after quarantine = %v, want %v", names, want)
	}
	q, err := st.ListQuarantined()
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || q[0].Name != "bad db" || q[0].Label != label {
		t.Fatalf("ListQuarantined = %+v, want [{bad db %s}]", q, label)
	}
	// The quarantined files stay on disk for forensics.
	if _, err := os.Stat(st.snapshotPath("bad db") + ".corrupt-1"); err != nil {
		t.Fatalf("quarantined snapshot missing: %v", err)
	}
	if _, err := os.Stat(st.logPath("bad db") + ".corrupt-1"); err != nil {
		t.Fatalf("quarantined log missing: %v", err)
	}

	// The name is reusable, and a second quarantine picks the next N.
	if err := st.Save("bad db", db); err != nil {
		t.Fatal(err)
	}
	label2, err := st.Quarantine("bad db")
	if err != nil {
		t.Fatal(err)
	}
	if want := "bad%20db.corrupt-2"; label2 != want {
		t.Fatalf("second label %q, want %q", label2, want)
	}
	if _, err := st.Quarantine("bad db"); err == nil {
		t.Fatal("quarantining a name with no files succeeded")
	}
}
