// Crash-consistency property harness: runs every store mutation
// (Save, Append, Compact, Delete) on the fault-injecting filesystem in
// internal/store/faultfs and enumerates every fault point —
//
//   - crash at each operation × every metadata-journal prefix,
//   - a one-shot I/O error at each operation (with a retry afterwards),
//   - a torn write at each write operation,
//   - dropped (lying) fsyncs from each sync operation on,
//
// asserting the old-state-or-new-state property: the store, reopened
// after the fault, loads either the complete pre-operation state or the
// complete post-operation state. Corrupt loads and silent row loss are
// failures everywhere; a *loud* load error is tolerated only under
// dropped fsyncs, where no store can promise more than detection (see
// docs/FAILURE_MODEL.md).
//
// The harness lives in package store_test so it can use faultfs, which
// itself imports store for the FS interface.
//
// FD_FAULT_BUDGET caps the total number of enumerated fault points
// (0 or unset = exhaustive); when the cap bites, the skipped count is
// logged so a bounded CI run never silently masquerades as exhaustive.
package store_test

import (
	"errors"
	iofs "io/fs"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/store/faultfs"
	"repro/internal/workload"
)

const crashDir = "data"

// dbState is the harness's view of one stored database: comparable, so
// "old or new, nothing else" is two == checks.
type dbState struct {
	present bool
	fp      uint64
	rows    int
}

// observeState reopens the store on fsys and loads name, classifying
// the outcome: absent, present (fingerprint + row count), or a loud
// load error. Load's own marker cleanup runs as part of observation,
// exactly as a real recovery would.
func observeState(fsys *faultfs.FS, name string) (dbState, error) {
	st, err := store.OpenFS(crashDir, fsys)
	if err != nil {
		return dbState{}, err
	}
	db, _, err := st.Load(name)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return dbState{}, nil
		}
		return dbState{}, err
	}
	return dbState{present: true, fp: db.Fingerprint(), rows: db.NumTuples()}, nil
}

// pointBudget doles out fault points under FD_FAULT_BUDGET.
type pointBudget struct {
	limit   int // 0 = unlimited
	spent   int
	skipped int
}

func newBudget(t *testing.T) *pointBudget {
	b := &pointBudget{}
	if v := os.Getenv("FD_FAULT_BUDGET"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("FD_FAULT_BUDGET=%q: %v", v, err)
		}
		b.limit = n
	}
	return b
}

func (b *pointBudget) take() bool {
	if b.limit > 0 && b.spent >= b.limit {
		b.skipped++
		return false
	}
	b.spent++
	return true
}

func (b *pointBudget) report(t *testing.T) {
	if b.skipped > 0 {
		t.Logf("FD_FAULT_BUDGET=%d: enumerated %d fault points, skipped %d (run unbudgeted for the exhaustive sweep)",
			b.limit, b.spent, b.skipped)
	}
}

// crashScenario is one store mutation under test: setup builds the
// durable pre-state, op is the mutation whose every fault point gets
// enumerated. op must be written so that re-running it after a failure
// is the caller's legitimate retry.
type crashScenario struct {
	name  string
	setup func(st *store.Store) error
	op    func(st *store.Store) error
}

func chainDB(t *testing.T, seed int64) *relation.Database {
	t.Helper()
	db, err := workload.Chain(workload.Config{
		Relations: 3, TuplesPerRelation: 8, Domain: 3, NullRate: 0.1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCrashConsistency(t *testing.T) {
	dbA := chainDB(t, 1)
	dbB := chainDB(t, 2)
	dbRecovery := chainDB(t, 3)
	relName := dbA.Relation(0).Name()
	width := dbA.Relation(0).Schema().Len()
	batch := []relation.Tuple{
		{Label: "c1", Values: make([]relation.Value, width), Imp: 1, Prob: 1},
		{Label: "c2", Values: make([]relation.Value, width), Imp: 2, Prob: 0.5},
	}
	const name = "db"

	scenarios := []crashScenario{
		{
			name:  "save-fresh",
			setup: func(st *store.Store) error { return nil },
			op:    func(st *store.Store) error { return st.Save(name, dbA) },
		},
		{
			name:  "save-overwrite",
			setup: func(st *store.Store) error { return st.Save(name, dbA) },
			op:    func(st *store.Store) error { return st.Save(name, dbB) },
		},
		{
			name:  "append-fresh-log",
			setup: func(st *store.Store) error { return st.Save(name, dbA) },
			op: func(st *store.Store) error {
				return st.Append(name, relName, batch, dbA.Fingerprint())
			},
		},
		{
			name: "append-existing-log",
			setup: func(st *store.Store) error {
				if err := st.Save(name, dbA); err != nil {
					return err
				}
				return st.Append(name, relName, batch[:1], dbA.Fingerprint())
			},
			op: func(st *store.Store) error {
				return st.Append(name, relName, batch, dbA.Fingerprint())
			},
		},
		{
			name: "compact",
			setup: func(st *store.Store) error {
				if err := st.Save(name, dbA); err != nil {
					return err
				}
				return st.Append(name, relName, batch, dbA.Fingerprint())
			},
			op: func(st *store.Store) error {
				_, err := st.Compact(name)
				return err
			},
		},
		{
			name: "save-over-log",
			setup: func(st *store.Store) error {
				if err := st.Save(name, dbA); err != nil {
					return err
				}
				return st.Append(name, relName, batch, dbA.Fingerprint())
			},
			op: func(st *store.Store) error { return st.Save(name, dbB) },
		},
		{
			name: "delete",
			setup: func(st *store.Store) error {
				if err := st.Save(name, dbA); err != nil {
					return err
				}
				return st.Append(name, relName, batch, dbA.Fingerprint())
			},
			op: func(st *store.Store) error { return st.Delete(name) },
		},
	}

	budget := newBudget(t)
	defer budget.report(t)

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			runOp := func(fsys *faultfs.FS) error {
				st, err := store.OpenFS(crashDir, fsys)
				if err != nil {
					return err
				}
				return sc.op(st)
			}
			mustObserve := func(fsys *faultfs.FS, context string) dbState {
				t.Helper()
				s, err := observeState(fsys, name)
				if err != nil {
					t.Fatalf("%s: corrupt load: %v", context, err)
				}
				return s
			}

			// Build the durable pre-state: run setup fault-free, then
			// reboot applying the whole journal so volatile == durable.
			base := faultfs.New()
			st, err := store.OpenFS(crashDir, base)
			if err != nil {
				t.Fatal(err)
			}
			if err := sc.setup(st); err != nil {
				t.Fatalf("setup: %v", err)
			}
			base.CrashNow()
			base.Reboot(base.PendingMeta())
			old := mustObserve(base.Clone(), "pre-state")

			// Dry run: the fault-free op yields the new state and the
			// operation trace whose every index becomes a fault point.
			dry := base.Clone()
			startOps := dry.OpCount()
			if err := runOp(dry); err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			opTrace := dry.Trace()[startOps:]
			T := len(opTrace)
			next := mustObserve(dry.Clone(), "post-state")
			if old == next {
				// Still a valid sweep (compact observes identically through
				// Load), but say so rather than pretend two-sidedness.
				t.Logf("old and new states observe identically (%+v)", old)
			}

			okState := func(s dbState) bool { return s == old || s == next }

			// --- durability of a reported success ---------------------
			// Once the op has returned nil, a crash loses nothing: every
			// journal prefix must reboot into the new state — this is the
			// check that catches a missing directory fsync, where the op
			// claims success while its dentry is still only journalled.
			{
				c := dry.Clone()
				c.CrashNow()
				for p := 0; p <= c.PendingMeta(); p++ {
					r := c.Clone()
					r.Reboot(p)
					ctx := "crash after success, journal prefix " + strconv.Itoa(p)
					if got := mustObserve(r, ctx); got != next {
						t.Fatalf("%s: state %+v, want %+v (reported success was not durable)", ctx, got, next)
					}
				}
			}

			// checkRecovery asserts the rebooted store still accepts a
			// fresh Save — a crash must never wedge the data directory.
			checkRecovery := func(fsys *faultfs.FS, context string) {
				t.Helper()
				rst, err := store.OpenFS(crashDir, fsys)
				if err != nil {
					t.Fatalf("%s: reopening store: %v", context, err)
				}
				if err := rst.Save(name, dbRecovery); err != nil {
					t.Fatalf("%s: save after recovery: %v", context, err)
				}
				want := dbState{present: true, fp: dbRecovery.Fingerprint(), rows: dbRecovery.NumTuples()}
				if got := mustObserve(fsys, context+": post-recovery"); got != want {
					t.Fatalf("%s: post-recovery state %+v, want %+v", context, got, want)
				}
			}

			// --- crash at every op × every journal prefix -------------
			for i := 1; i <= T; i++ {
				if !budget.take() {
					continue
				}
				c := base.Clone()
				c.ArmAfter(i, faultfs.Crash)
				_ = runOp(c) // the error (if any surfaces) is the crash itself
				if !c.Fired() {
					t.Fatalf("crash point %d (%s) never fired", i, opTrace[i-1])
				}
				nPend := c.PendingMeta()
				for p := 0; p <= nPend; p++ {
					r := c.Clone()
					r.Reboot(p)
					ctx := "crash at op " + strconv.Itoa(i) + " (" + opTrace[i-1] + "), journal prefix " + strconv.Itoa(p)
					got := mustObserve(r, ctx)
					if !okState(got) {
						t.Fatalf("%s: state %+v, want old %+v or new %+v", ctx, got, old, next)
					}
					checkRecovery(r, ctx)
				}
			}

			// --- one-shot I/O error at every op, then retry -----------
			// --- plus a torn write at every write op ------------------
			for i := 1; i <= T; i++ {
				modes := []faultfs.Mode{faultfs.FailOp}
				if strings.HasPrefix(opTrace[i-1], "write ") {
					modes = append(modes, faultfs.TornWrite)
				}
				for _, mode := range modes {
					if !budget.take() {
						continue
					}
					c := base.Clone()
					c.ArmAfter(i, mode)
					opErr := runOp(c)
					if !c.Fired() {
						t.Fatalf("fault point %d (%s) never fired", i, opTrace[i-1])
					}
					c.Disarm()
					ctx := "injected fault at op " + strconv.Itoa(i) + " (" + opTrace[i-1] + ")"
					got := mustObserve(c.Clone(), ctx)
					if opErr == nil {
						// The fault was on a best-effort path: the op claimed
						// success, so the new state must hold in full.
						if got != next {
							t.Fatalf("%s: op reported success but state %+v, want %+v", ctx, got, next)
						}
						continue
					}
					if !okState(got) {
						t.Fatalf("%s: state %+v, want old %+v or new %+v", ctx, got, old, next)
					}
					// A reported failure persisted nothing it can't persist
					// again: the caller's retry must land the new state
					// exactly (no duplicated appends, no wedged files).
					if err := runOp(c); err != nil {
						t.Fatalf("%s: retry failed: %v", ctx, err)
					}
					if got := mustObserve(c.Clone(), ctx+": post-retry"); got != next {
						t.Fatalf("%s: post-retry state %+v, want %+v", ctx, got, next)
					}
				}
			}

			// --- lying fsyncs from every sync op on -------------------
			for i := 1; i <= T; i++ {
				kind := opTrace[i-1]
				if !strings.HasPrefix(kind, "sync ") && !strings.HasPrefix(kind, "syncdir ") {
					continue
				}
				if !budget.take() {
					continue
				}
				c := base.Clone()
				c.ArmAfter(i, faultfs.DropSync)
				if err := runOp(c); err != nil {
					t.Fatalf("op failed under dropped syncs (they lie, they don't error): %v", err)
				}
				c.CrashNow()
				nPend := c.PendingMeta()
				for p := 0; p <= nPend; p++ {
					r := c.Clone()
					r.Reboot(p)
					ctx := "dropped syncs from op " + strconv.Itoa(i) + " (" + kind + "), journal prefix " + strconv.Itoa(p)
					got, err := observeState(r, name)
					if err != nil {
						// Loud detection (checksum, truncated header, bad
						// magic) is the best any store can do on a lying
						// disk; silent wrong answers below are not.
						continue
					}
					if !okState(got) {
						t.Fatalf("%s: SILENT corruption: state %+v, want old %+v, new %+v, or a loud error",
							ctx, got, old, next)
					}
				}
			}
		})
	}
}
