package store

// The append-only row log. A log file extends one specific snapshot:
// its header records the snapshot's fingerprint, and each record is one
// appended tuple, individually length-prefixed and CRC32-checksummed.
//
//	header  magic "FDLG" | version u16 | snapshot fingerprint u64 | crc32
//	record  length u32 | payload | crc32(payload)
//	payload relation lenstr | label lenstr | nvals u32 |
//	        nvals × (null flag u8 [| datum lenstr]) | imp f64 | prob f64
//
// A torn or corrupt record — including a truncated tail from a crash
// mid-append — fails the load loudly; recovery policy is to re-register
// the database (or delete the log), never to silently drop rows.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/relation"
)

const (
	logMagic     = "FDLG"
	logVersion   = 1
	logHeaderLen = 4 + 2 + 8 + 4

	// maxLogRecordLen caps a record's declared length before allocation,
	// mirroring the snapshot section cap.
	maxLogRecordLen = 1 << 26
)

// logRecord is one replayable append.
type logRecord struct {
	rel   string
	tuple relation.Tuple
}

// appendLog appends one record per tuple to the log at path, creating
// the file (with a header binding it to fingerprint fp) when absent.
// The file is fsynced before returning, so a reported append is
// durable; a reported failure truncates the file back to its
// pre-append size, so a failed (and possibly retried) append never
// leaves a torn record for later appends to bury.
func appendLog(fsys FS, path string, fp uint64, relName string, tuples []relation.Tuple) (err error) {
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("store: appending log: %w", err)
	}
	defer f.Close()
	start, err := f.Size()
	if err != nil {
		return fmt.Errorf("store: appending log: %w", err)
	}
	defer func() {
		if err != nil {
			// Roll the partial batch back (best effort: if the truncate
			// also fails, the next load reports the torn tail loudly).
			_ = f.Truncate(start)
		}
	}()
	bw := bufio.NewWriter(f)
	if start == 0 {
		var hdr [logHeaderLen]byte
		copy(hdr[0:4], logMagic)
		binary.LittleEndian.PutUint16(hdr[4:6], logVersion)
		binary.LittleEndian.PutUint64(hdr[6:14], fp)
		binary.LittleEndian.PutUint32(hdr[14:18], crc32.ChecksumIEEE(hdr[:14]))
		if _, err = bw.Write(hdr[:]); err != nil {
			return fmt.Errorf("store: appending log: %w", err)
		}
	}
	var buf bytes.Buffer
	for i := range tuples {
		buf.Reset()
		encodeLogPayload(&buf, relName, &tuples[i])
		if buf.Len() > maxLogRecordLen {
			err = fmt.Errorf("store: log record of %d bytes exceeds cap %d", buf.Len(), maxLogRecordLen)
			return err
		}
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(buf.Len()))
		if _, err = bw.Write(n[:]); err != nil {
			return fmt.Errorf("store: appending log: %w", err)
		}
		if _, err = bw.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("store: appending log: %w", err)
		}
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf.Bytes()))
		if _, err = bw.Write(crc[:]); err != nil {
			return fmt.Errorf("store: appending log: %w", err)
		}
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("store: appending log: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("store: appending log: %w", err)
	}
	return nil
}

func encodeLogPayload(buf *bytes.Buffer, relName string, t *relation.Tuple) {
	wstr := func(s string) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		buf.Write(n[:])
		buf.WriteString(s)
	}
	w64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	wstr(relName)
	wstr(t.Label)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(t.Values)))
	buf.Write(n[:])
	for _, v := range t.Values {
		if v.IsNull() {
			buf.WriteByte(0)
			continue
		}
		buf.WriteByte(1)
		wstr(v.Datum())
	}
	w64(math.Float64bits(t.Imp))
	w64(math.Float64bits(t.Prob))
}

// readLog reads the row log at path, returning its records and the
// fingerprint of the snapshot it extends. A missing or empty file
// yields no records; any malformed byte — bad magic, unknown version,
// checksum mismatch, or a truncated record — is a loud error.
func readLog(fsys FS, path string) ([]logRecord, uint64, error) {
	f, err := fsys.Open(path)
	if notExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("store: reading log: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)

	var hdr [logHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, nil // zero-length file: created but never written
		}
		return nil, 0, fmt.Errorf("store: log header truncated: %w", err)
	}
	if string(hdr[0:4]) != logMagic {
		return nil, 0, fmt.Errorf("store: not a row log (bad magic %q)", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != logVersion {
		return nil, 0, fmt.Errorf("store: unsupported row-log version %d (supported: %d)", v, logVersion)
	}
	if got, want := crc32.ChecksumIEEE(hdr[:14]), binary.LittleEndian.Uint32(hdr[14:18]); got != want {
		return nil, 0, fmt.Errorf("store: row-log header checksum mismatch")
	}
	fp := binary.LittleEndian.Uint64(hdr[6:14])

	var recs []logRecord
	for i := 0; ; i++ {
		var n [4]byte
		if _, err := io.ReadFull(br, n[:]); err != nil {
			if err == io.EOF {
				return recs, fp, nil
			}
			return nil, 0, fmt.Errorf("store: log record %d truncated: %w", i, err)
		}
		size := binary.LittleEndian.Uint32(n[:])
		if size > maxLogRecordLen {
			return nil, 0, fmt.Errorf("store: log record %d declares %d bytes (cap %d)", i, size, maxLogRecordLen)
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, 0, fmt.Errorf("store: log record %d truncated: %w", i, err)
		}
		var crc [4]byte
		if _, err := io.ReadFull(br, crc[:]); err != nil {
			return nil, 0, fmt.Errorf("store: log record %d truncated: %w", i, err)
		}
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crc[:]); got != want {
			return nil, 0, fmt.Errorf("store: log record %d checksum mismatch", i)
		}
		rec, err := decodeLogPayload(payload)
		if err != nil {
			return nil, 0, fmt.Errorf("store: log record %d: %w", i, err)
		}
		recs = append(recs, rec)
	}
}

func decodeLogPayload(payload []byte) (logRecord, error) {
	off := 0
	fail := fmt.Errorf("malformed payload")
	ru32 := func() (uint32, bool) {
		if len(payload)-off < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(payload[off:])
		off += 4
		return v, true
	}
	rstr := func() (string, bool) {
		n, ok := ru32()
		if !ok || len(payload)-off < int(n) {
			return "", false
		}
		s := string(payload[off : off+int(n)])
		off += int(n)
		return s, true
	}
	rf64 := func() (float64, bool) {
		if len(payload)-off < 8 {
			return 0, false
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
		return v, true
	}

	var rec logRecord
	var ok bool
	if rec.rel, ok = rstr(); !ok {
		return rec, fail
	}
	if rec.tuple.Label, ok = rstr(); !ok {
		return rec, fail
	}
	nvals, ok := ru32()
	if !ok || int(nvals) > len(payload) {
		return rec, fail
	}
	rec.tuple.Values = make([]relation.Value, nvals)
	for i := range rec.tuple.Values {
		if len(payload)-off < 1 {
			return rec, fail
		}
		flag := payload[off]
		off++
		switch flag {
		case 0:
			// stays ⊥
		case 1:
			s, ok := rstr()
			if !ok {
				return rec, fail
			}
			rec.tuple.Values[i] = relation.V(s)
		default:
			return rec, fmt.Errorf("unknown value flag %d", flag)
		}
	}
	if rec.tuple.Imp, ok = rf64(); !ok {
		return rec, fail
	}
	if rec.tuple.Prob, ok = rf64(); !ok {
		return rec, fail
	}
	if off != len(payload) {
		return rec, fmt.Errorf("trailing bytes in payload")
	}
	return rec, nil
}
