package store

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/relation"
	"repro/internal/workload"
)

// The benchmarks compare the two ways of bringing the E9 chain workload
// (the repo's standing benchmark database) back into memory: parsing
// the CSV text and re-encoding the columnar mirror, versus loading the
// binary snapshot, which adopts the dictionary and code columns
// directly. Both paths end at a computed Fingerprint, i.e. a fully
// encoded, query-ready database.

func e9Database(b *testing.B) *relation.Database {
	b.Helper()
	db, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 28, Domain: 4, NullRate: 0.1, Seed: 23})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkLoadE9Snapshot(b *testing.B) {
	db := e9Database(b)
	var snap bytes.Buffer
	if err := db.WriteSnapshot(&snap); err != nil {
		b.Fatal(err)
	}
	raw := snap.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, err := relation.ReadSnapshot(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		_ = loaded.Fingerprint()
	}
}

func BenchmarkLoadE9CSV(b *testing.B) {
	db := e9Database(b)
	texts := make([][]byte, db.NumRelations())
	names := make([]string, db.NumRelations())
	var total int64
	for i := 0; i < db.NumRelations(); i++ {
		var buf bytes.Buffer
		if err := relation.WriteCSV(db.Relation(i), &buf); err != nil {
			b.Fatal(err)
		}
		texts[i] = buf.Bytes()
		names[i] = db.Relation(i).Name()
		total += int64(buf.Len())
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rels := make([]*relation.Relation, len(texts))
		for j := range texts {
			rel, err := relation.ReadCSV(names[j], bytes.NewReader(texts[j]))
			if err != nil {
				b.Fatal(err)
			}
			rels[j] = rel
		}
		loaded, err := relation.NewDatabase(rels...)
		if err != nil {
			b.Fatal(err)
		}
		_ = loaded.Fingerprint()
	}
}

// BenchmarkLoadSnapshotScaling shows the gap widening with database
// size: snapshot load is O(cells) with no interning, CSV ingest pays
// parsing plus dictionary hashing per cell.
func BenchmarkLoadSnapshotScaling(b *testing.B) {
	for _, m := range []int{100, 1000} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			db, err := workload.Chain(workload.Config{
				Relations: 4, TuplesPerRelation: m, Domain: 8, NullRate: 0.1, Seed: 23})
			if err != nil {
				b.Fatal(err)
			}
			var snap bytes.Buffer
			if err := db.WriteSnapshot(&snap); err != nil {
				b.Fatal(err)
			}
			raw := snap.Bytes()
			b.SetBytes(int64(len(raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loaded, err := relation.ReadSnapshot(bytes.NewReader(raw))
				if err != nil {
					b.Fatal(err)
				}
				_ = loaded.Fingerprint()
			}
		})
	}
}
