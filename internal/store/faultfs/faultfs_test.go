package faultfs

import (
	"errors"
	"io"
	iofs "io/fs"
	"strings"
	"testing"
)

// readAll drains a file handle through the store.File interface.
func readAll(t *testing.T, f *FS, name string) string {
	t.Helper()
	h, err := f.Open(name)
	if err != nil {
		t.Fatalf("Open(%q): %v", name, err)
	}
	defer h.Close()
	b, err := io.ReadAll(h)
	if err != nil {
		t.Fatalf("ReadAll(%q): %v", name, err)
	}
	return string(b)
}

func mustWrite(t *testing.T, f *FS, name, content string) {
	t.Helper()
	h, err := f.Create(name)
	if err != nil {
		t.Fatalf("Create(%q): %v", name, err)
	}
	if _, err := h.Write([]byte(content)); err != nil {
		t.Fatalf("Write(%q): %v", name, err)
	}
	if err := h.Sync(); err != nil {
		t.Fatalf("Sync(%q): %v", name, err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close(%q): %v", name, err)
	}
}

func TestVolatileVersusDurable(t *testing.T) {
	f := New()
	mustWrite(t, f, "d/a", "hello")
	if err := f.SyncDir("d"); err != nil {
		t.Fatal(err)
	}

	// Overwrite without syncing: the volatile view sees the new bytes,
	// the durable image still holds the old ones.
	h, err := f.OpenAppend("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	h.Close()
	if got := readAll(t, f, "d/a"); got != "hello world" {
		t.Fatalf("volatile content = %q, want %q", got, "hello world")
	}

	f.CrashNow()
	if _, err := f.Open("d/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Open after crash: err = %v, want ErrCrashed", err)
	}
	f.Reboot(f.PendingMeta())
	if got := readAll(t, f, "d/a"); got != "hello" {
		t.Fatalf("post-crash content = %q, want %q (unsynced append must vanish)", got, "hello")
	}
}

func TestCreateNotDurableWithoutSyncDir(t *testing.T) {
	f := New()
	mustWrite(t, f, "d/a", "x") // file fsynced, dentry only journalled

	// Reboot applying no journal prefix: the create never committed, so
	// the file must be gone despite the file-level fsync.
	c := f.Clone()
	c.CrashNow()
	c.Reboot(0)
	if _, err := c.Open("d/a"); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("Open after reboot(0): err = %v, want not-exist", err)
	}

	// Reboot applying the whole journal: create committed, content durable.
	f.CrashNow()
	f.Reboot(f.PendingMeta())
	if got := readAll(t, f, "d/a"); got != "x" {
		t.Fatalf("post-reboot content = %q, want %q", got, "x")
	}
}

func TestRenameJournalPrefixes(t *testing.T) {
	// rename a -> b with both states enumerable at the crash boundary.
	f := New()
	mustWrite(t, f, "d/a", "v1")
	if err := f.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, "d/tmp", "v2")
	if err := f.Rename("d/tmp", "d/a"); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, f, "d/a"); got != "v2" {
		t.Fatalf("volatile rename target = %q, want v2", got)
	}
	n := f.PendingMeta()
	if n != 2 { // create d/tmp, rename d/tmp -> d/a
		t.Fatalf("PendingMeta = %d, want 2", n)
	}
	for p := 0; p <= n; p++ {
		c := f.Clone()
		c.CrashNow()
		c.Reboot(p)
		got := readAll(t, c, "d/a")
		want := "v1"
		if p == 2 {
			want = "v2"
		}
		if got != want {
			t.Fatalf("prefix %d: d/a = %q, want %q", p, got, want)
		}
	}
}

func TestFailOp(t *testing.T) {
	f := New()
	mustWrite(t, f, "d/a", "keep")
	f.SyncDir("d")

	f.ArmAfter(1, FailOp)
	if _, err := f.Create("d/b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Create under FailOp: err = %v, want ErrInjected", err)
	}
	if !f.Fired() {
		t.Fatal("fault did not report fired")
	}
	// One-shot: the next operation succeeds, and the failed create had
	// no effect on the namespace.
	names, err := f.ReadDir("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("ReadDir = %v, want [a]", names)
	}
}

func TestTornWrite(t *testing.T) {
	f := New()
	h, err := f.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	f.ArmAfter(1, TornWrite)
	n, err := h.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v, want ErrInjected", err)
	}
	if n != 4 {
		t.Fatalf("torn write wrote %d bytes, want 4", n)
	}
	h.Close()
	if got := readAll(t, f, "d/a"); got != "abcd" {
		t.Fatalf("content after torn write = %q, want %q", got, "abcd")
	}
}

func TestDropSync(t *testing.T) {
	f := New()
	mustWrite(t, f, "d/a", "old")
	f.SyncDir("d")

	f.ArmAfter(2, DropSync) // arm on the write's following sync
	h, err := f.OpenAppend("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("+new")); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatalf("lying sync must report success, got %v", err)
	}
	h.Close()

	f.CrashNow()
	f.Reboot(f.PendingMeta())
	if got := readAll(t, f, "d/a"); got != "old" {
		t.Fatalf("post-crash content = %q, want %q (sync was dropped)", got, "old")
	}
}

func TestCrashAtOp(t *testing.T) {
	f := New()
	mustWrite(t, f, "d/a", "x")
	f.SyncDir("d")
	f.ArmAfter(1, Crash)
	if _, err := f.Create("d/b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Create at crash point: err = %v, want ErrCrashed", err)
	}
	if _, err := f.Stat("d/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Stat after crash: err = %v, want ErrCrashed", err)
	}
	f.Reboot(f.PendingMeta())
	if got := readAll(t, f, "d/a"); got != "x" {
		t.Fatalf("post-reboot content = %q, want %q", got, "x")
	}
}

func TestStaleHandleAfterReboot(t *testing.T) {
	f := New()
	h, err := f.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	f.CrashNow()
	f.Reboot(f.PendingMeta())
	if _, err := h.Write([]byte("late")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write on stale handle: err = %v, want ErrCrashed", err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("closing a stale handle must be silent, got %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := New()
	mustWrite(t, f, "d/a", "base")
	f.SyncDir("d")
	c := f.Clone()
	mustWrite(t, c, "d/a", "fork")
	if got := readAll(t, f, "d/a"); got != "base" {
		t.Fatalf("original mutated by clone write: %q", got)
	}
	if got := readAll(t, c, "d/a"); got != "fork" {
		t.Fatalf("clone content = %q, want fork", got)
	}
	// The clone preserves inode identity between dir and journal, so a
	// pending create committed after the clone still lands the same
	// content.
	f2 := New()
	h, _ := f2.Create("d/x")
	h.Write([]byte("pend"))
	h.Sync()
	h.Close()
	c2 := f2.Clone()
	c2.CrashNow()
	c2.Reboot(c2.PendingMeta())
	if got := readAll(t, c2, "d/x"); got != "pend" {
		t.Fatalf("cloned pending create lost content: %q", got)
	}
}

func TestTraceAndOpCount(t *testing.T) {
	f := New()
	mustWrite(t, f, "d/a", "x")
	tr := f.Trace()
	if len(tr) != f.OpCount() {
		t.Fatalf("trace length %d != op count %d", len(tr), f.OpCount())
	}
	var writes int
	for _, e := range tr {
		if strings.HasPrefix(e, "write ") {
			writes++
		}
	}
	if writes != 1 {
		t.Fatalf("trace records %d writes, want 1: %v", writes, tr)
	}
}
