// Package faultfs is an in-memory, fault-injecting implementation of
// store.FS for crash-consistency testing. It models a journaling
// filesystem conservatively:
//
//   - File content lives in two layers: the volatile buffer every
//     read and write sees, and the durable image that only advances
//     when the file is fsynced.
//   - Directory operations (create, rename, remove) are journalled:
//     they apply to the volatile directory immediately but become
//     durable only when SyncDir commits the journal — or, at a crash,
//     when the journal's own commit interval happens to have flushed a
//     prefix of them (metadata journals commit on their own cadence,
//     fsync or not). Reboot therefore takes the length of the
//     journal prefix to apply, and a harness enumerates every prefix.
//
// Faults are armed with ArmAfter: fail the Nth operation outright,
// tear the Nth write (apply a prefix of the bytes, then error), drop
// every fsync from the Nth operation on (they report success but
// persist nothing), or crash at the Nth operation (it and everything
// after fail until Reboot). Clone forks the whole filesystem state, so
// a harness can build one scenario and replay it under every fault
// point without re-running the setup.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"sort"
	"strings"
	"sync"

	"repro/internal/store"
)

// Mode selects what happens at the armed operation.
type Mode int

const (
	// FailOp makes the operation return ErrInjected with no effect.
	FailOp Mode = iota
	// TornWrite makes the operation — which must be a write — apply
	// only a prefix of its bytes, then return ErrInjected. On any
	// other operation it degrades to FailOp.
	TornWrite
	// DropSync makes this and every later Sync/SyncDir report success
	// while persisting nothing — the lying-disk fault class.
	DropSync
	// Crash makes the operation and every one after it fail with
	// ErrCrashed until Reboot; the durable state is frozen as it was.
	Crash
)

// ErrInjected is the error returned by an operation that an armed
// FailOp or TornWrite fault hit.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation between a crash and the
// next Reboot, and by handles opened before the reboot afterwards.
var ErrCrashed = errors.New("faultfs: crashed (reboot required)")

// inode is one file: the volatile content and the last-fsynced image.
type inode struct {
	data    []byte
	durable []byte
}

// metaOp is one journalled directory operation.
type metaOp struct {
	kind string // "create", "rename", "remove"
	a, b string
	ino  *inode // create only
}

// FS implements store.FS. All methods are safe for concurrent use.
type FS struct {
	mu      sync.Mutex
	dir     map[string]*inode // volatile directory
	pdir    map[string]*inode // durable directory image
	pending []metaOp          // journalled dir ops since the last commit

	ops     int      // operations executed so far
	trace   []string // one "<kind> <path>" entry per operation
	faultAt int      // 1-based op index to fault; 0 = disarmed
	mode    Mode
	fired   bool
	drop    bool // DropSync engaged: all syncs lie from here on
	crashed bool
	gen     int // bumped by Reboot; stale handles fail
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{dir: make(map[string]*inode), pdir: make(map[string]*inode)}
}

// Clone forks the filesystem: an independent deep copy sharing no
// state, including the fault plan and operation counter.
func (f *FS) Clone() *FS {
	f.mu.Lock()
	defer f.mu.Unlock()
	seen := make(map[*inode]*inode)
	dup := func(ino *inode) *inode {
		if ino == nil {
			return nil
		}
		if d, ok := seen[ino]; ok {
			return d
		}
		d := &inode{data: append([]byte(nil), ino.data...), durable: append([]byte(nil), ino.durable...)}
		seen[ino] = d
		return d
	}
	c := &FS{
		dir:     make(map[string]*inode, len(f.dir)),
		pdir:    make(map[string]*inode, len(f.pdir)),
		pending: make([]metaOp, len(f.pending)),
		ops:     f.ops,
		trace:   append([]string(nil), f.trace...),
		faultAt: f.faultAt,
		mode:    f.mode,
		fired:   f.fired,
		drop:    f.drop,
		crashed: f.crashed,
		gen:     f.gen,
	}
	for name, ino := range f.dir {
		c.dir[name] = dup(ino)
	}
	for name, ino := range f.pdir {
		c.pdir[name] = dup(ino)
	}
	for i, op := range f.pending {
		op.ino = dup(op.ino)
		c.pending[i] = op
	}
	return c
}

// ArmAfter arms one fault at the n-th operation from now (1-based):
// the next operation is n=1. Mode DropSync stays engaged from that
// operation on.
func (f *FS) ArmAfter(n int, mode Mode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faultAt = f.ops + n
	f.mode = mode
	f.fired = false
}

// Disarm clears any armed fault (DropSync, once engaged, stays).
func (f *FS) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faultAt = 0
}

// Fired reports whether the armed fault has hit.
func (f *FS) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// OpCount returns how many operations have executed.
func (f *FS) OpCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Trace returns one "<kind> <path>" entry per executed operation.
func (f *FS) Trace() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.trace...)
}

// CrashNow crashes the filesystem immediately: durable state freezes
// and every operation fails with ErrCrashed until Reboot.
func (f *FS) CrashNow() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
}

// PendingMeta returns how many journalled directory operations have
// not been committed — the range of Reboot prefixes worth enumerating.
func (f *FS) PendingMeta() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending)
}

// Reboot simulates the machine coming back up: the volatile state is
// discarded and rebuilt from the durable image, after applying the
// first metaPrefix journalled directory operations (a metadata journal
// may have committed any prefix of them by itself before the crash —
// in order, never reordered). Open handles from before the reboot
// fail; faults are disarmed; dropped-sync mode is cleared.
func (f *FS) Reboot(metaPrefix int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if metaPrefix < 0 || metaPrefix > len(f.pending) {
		panic(fmt.Sprintf("faultfs: Reboot prefix %d out of range [0, %d]", metaPrefix, len(f.pending)))
	}
	for _, op := range f.pending[:metaPrefix] {
		f.applyMeta(op)
	}
	f.pending = nil
	dir := make(map[string]*inode, len(f.pdir))
	for name, ino := range f.pdir {
		fresh := &inode{
			data:    append([]byte(nil), ino.durable...),
			durable: append([]byte(nil), ino.durable...),
		}
		dir[name] = fresh
	}
	f.dir = dir
	f.pdir = make(map[string]*inode, len(dir))
	for name, ino := range dir {
		f.pdir[name] = ino
	}
	f.crashed = false
	f.faultAt = 0
	f.fired = false
	f.drop = false
	f.gen++
}

// applyMeta commits one journalled directory operation to the durable
// directory image; called with mu held.
func (f *FS) applyMeta(op metaOp) {
	switch op.kind {
	case "create":
		f.pdir[op.a] = op.ino
	case "rename":
		if ino, ok := f.pdir[op.a]; ok {
			f.pdir[op.b] = ino
			delete(f.pdir, op.a)
		}
	case "remove":
		delete(f.pdir, op.a)
	}
}

// step counts one operation and resolves its fault verdict; called
// with mu held. It returns the mode to apply (TornWrite only ever
// reaches Write; elsewhere it degrades to FailOp) and the error for
// faulted non-write operations.
func (f *FS) step(kind, path string, isWrite, isSync bool) (Mode, error) {
	if f.crashed {
		return 0, fmt.Errorf("%s %s: %w", kind, path, ErrCrashed)
	}
	f.ops++
	f.trace = append(f.trace, kind+" "+path)
	if f.faultAt == f.ops {
		f.fired = true
		switch f.mode {
		case Crash:
			f.crashed = true
			return 0, fmt.Errorf("%s %s: %w", kind, path, ErrCrashed)
		case DropSync:
			f.drop = true
		case TornWrite:
			if isWrite {
				return TornWrite, nil
			}
			return 0, fmt.Errorf("%s %s: %w", kind, path, ErrInjected)
		case FailOp:
			return 0, fmt.Errorf("%s %s: %w", kind, path, ErrInjected)
		}
	}
	if isSync && f.drop {
		return DropSync, nil
	}
	return 0, nil
}

func pathErr(op, path string, err error) error {
	return &iofs.PathError{Op: op, Path: path, Err: err}
}

// --- store.FS ----------------------------------------------------------

// MkdirAll is a no-op beyond fault accounting: the namespace is flat
// and paths are plain map keys.
func (f *FS) MkdirAll(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, err := f.step("mkdir", dir, false, false)
	return err
}

func (f *FS) Create(name string) (store.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.step("create", name, false, false); err != nil {
		return nil, err
	}
	// A new inode replaces any volatile entry; the durable directory
	// keeps pointing at the old inode until the journal commits, which
	// is exactly how truncate-by-create behaves across a crash.
	ino := &inode{}
	f.dir[name] = ino
	f.pending = append(f.pending, metaOp{kind: "create", a: name, ino: ino})
	return &file{fs: f, ino: ino, name: name, gen: f.gen, writable: true}, nil
}

func (f *FS) Open(name string) (store.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.step("open", name, false, false); err != nil {
		return nil, err
	}
	ino, ok := f.dir[name]
	if !ok {
		return nil, pathErr("open", name, iofs.ErrNotExist)
	}
	return &file{fs: f, ino: ino, name: name, gen: f.gen}, nil
}

func (f *FS) OpenAppend(name string) (store.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.step("append-open", name, false, false); err != nil {
		return nil, err
	}
	ino, ok := f.dir[name]
	if !ok {
		ino = &inode{}
		f.dir[name] = ino
		f.pending = append(f.pending, metaOp{kind: "create", a: name, ino: ino})
	}
	return &file{fs: f, ino: ino, name: name, gen: f.gen, writable: true}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.step("rename", oldpath+" -> "+newpath, false, false); err != nil {
		return err
	}
	ino, ok := f.dir[oldpath]
	if !ok {
		return pathErr("rename", oldpath, iofs.ErrNotExist)
	}
	f.dir[newpath] = ino
	delete(f.dir, oldpath)
	f.pending = append(f.pending, metaOp{kind: "rename", a: oldpath, b: newpath})
	return nil
}

func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.step("remove", name, false, false); err != nil {
		return err
	}
	if _, ok := f.dir[name]; !ok {
		return pathErr("remove", name, iofs.ErrNotExist)
	}
	delete(f.dir, name)
	f.pending = append(f.pending, metaOp{kind: "remove", a: name})
	return nil
}

func (f *FS) Stat(name string) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.step("stat", name, false, false); err != nil {
		return 0, err
	}
	ino, ok := f.dir[name]
	if !ok {
		return 0, pathErr("stat", name, iofs.ErrNotExist)
	}
	return int64(len(ino.data)), nil
}

func (f *FS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := f.step("readdir", dir, false, false); err != nil {
		return nil, err
	}
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for name := range f.dir {
		if rest := strings.TrimPrefix(name, prefix); rest != name && !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (f *FS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	mode, err := f.step("syncdir", dir, false, true)
	if err != nil {
		return err
	}
	if mode == DropSync {
		return nil
	}
	for _, op := range f.pending {
		f.applyMeta(op)
	}
	f.pending = nil
	return nil
}

// --- store.File --------------------------------------------------------

type file struct {
	fs       *FS
	ino      *inode
	name     string
	gen      int
	rpos     int
	writable bool
	closed   bool
}

// check guards every file operation; called with fs.mu held.
func (fl *file) check(op string) error {
	if fl.gen != fl.fs.gen {
		return pathErr(op, fl.name, ErrCrashed)
	}
	if fl.closed {
		return pathErr(op, fl.name, iofs.ErrClosed)
	}
	return nil
}

func (fl *file) Read(p []byte) (int, error) {
	fl.fs.mu.Lock()
	defer fl.fs.mu.Unlock()
	if err := fl.check("read"); err != nil {
		return 0, err
	}
	if _, err := fl.fs.step("read", fl.name, false, false); err != nil {
		return 0, err
	}
	if fl.rpos >= len(fl.ino.data) {
		return 0, io.EOF
	}
	n := copy(p, fl.ino.data[fl.rpos:])
	fl.rpos += n
	return n, nil
}

func (fl *file) Write(p []byte) (int, error) {
	fl.fs.mu.Lock()
	defer fl.fs.mu.Unlock()
	if err := fl.check("write"); err != nil {
		return 0, err
	}
	if !fl.writable {
		return 0, pathErr("write", fl.name, iofs.ErrPermission)
	}
	mode, err := fl.fs.step("write", fl.name, true, false)
	if err != nil {
		return 0, err
	}
	if mode == TornWrite {
		n := len(p) / 2
		fl.ino.data = append(fl.ino.data, p[:n]...)
		return n, fmt.Errorf("write %s: %w", fl.name, ErrInjected)
	}
	fl.ino.data = append(fl.ino.data, p...)
	return len(p), nil
}

func (fl *file) Sync() error {
	fl.fs.mu.Lock()
	defer fl.fs.mu.Unlock()
	if err := fl.check("sync"); err != nil {
		return err
	}
	mode, err := fl.fs.step("sync", fl.name, false, true)
	if err != nil {
		return err
	}
	if mode == DropSync {
		return nil
	}
	fl.ino.durable = append([]byte(nil), fl.ino.data...)
	return nil
}

func (fl *file) Truncate(size int64) error {
	fl.fs.mu.Lock()
	defer fl.fs.mu.Unlock()
	if err := fl.check("truncate"); err != nil {
		return err
	}
	if _, err := fl.fs.step("truncate", fl.name, false, false); err != nil {
		return err
	}
	if size < 0 || size > int64(len(fl.ino.data)) {
		return pathErr("truncate", fl.name, errors.New("size out of range"))
	}
	fl.ino.data = fl.ino.data[:size]
	return nil
}

func (fl *file) Size() (int64, error) {
	fl.fs.mu.Lock()
	defer fl.fs.mu.Unlock()
	if err := fl.check("size"); err != nil {
		return 0, err
	}
	if _, err := fl.fs.step("size", fl.name, false, false); err != nil {
		return 0, err
	}
	return int64(len(fl.ino.data)), nil
}

func (fl *file) Close() error {
	fl.fs.mu.Lock()
	defer fl.fs.mu.Unlock()
	if fl.closed {
		return nil
	}
	fl.closed = true
	if fl.gen != fl.fs.gen || fl.fs.crashed {
		// Closing a stale or post-crash handle: nothing to flush, the
		// close itself cannot matter.
		return nil
	}
	if _, err := fl.fs.step("close", fl.name, false, false); err != nil {
		return err
	}
	return nil
}
