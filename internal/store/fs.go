package store

// The FS seam: every byte the store reads or writes goes through this
// interface, so tests can substitute a hostile filesystem (see
// internal/store/faultfs) that fails the Nth operation, tears a write,
// drops fsyncs, or freezes its durable state to simulate a crash. The
// crash-consistency harness in crash_test.go enumerates fault points
// through this seam; docs/FAILURE_MODEL.md states the guarantees it
// checks.

import (
	"errors"
	"io"
	iofs "io/fs"
	"os"
	"syscall"
)

// File is one open store file. Writes are sequential (the store only
// ever creates-and-writes or appends); Truncate is used to roll a
// failed append back to its pre-append size.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync makes the file's current content durable.
	Sync() error
	// Truncate shrinks the file to size bytes.
	Truncate(size int64) error
	// Size returns the file's current length in bytes.
	Size() (int64, error)
}

// FS is the filesystem surface the store runs on. Path arguments are
// the store's own (dir-prefixed) paths; a missing file is reported
// with an error matching io/fs.ErrNotExist. The os-backed default is
// OSFS.
type FS interface {
	// MkdirAll creates the store directory (and parents).
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// OpenAppend opens name for appending, creating it when absent.
	// Note a freshly created file's directory entry is only durable
	// after SyncDir.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Stat returns the size of name.
	Stat(name string) (int64, error)
	// ReadDir lists the file names (directories excluded) in dir.
	ReadDir(dir string) ([]string, error)
	// SyncDir makes dir's entries (renames, removals, creations)
	// durable.
	SyncDir(dir string) error
}

// OSFS returns the operating-system filesystem, the FS used by Open.
func OSFS() FS { return osFS{} }

type osFS struct{}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.File.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Stat(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems refuse directory fsync; that refusal is a
		// property of the mount, not a transient failure.
		if errors.Is(err, syscall.EINVAL) {
			return nil
		}
		return err
	}
	return nil
}

// readFile reads the whole of name through fsys.
func readFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// notExist reports whether err means the file is absent.
func notExist(err error) bool { return errors.Is(err, iofs.ErrNotExist) }
