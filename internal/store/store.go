// Package store is the on-disk columnar snapshot store: it persists
// registered databases as versioned binary snapshot files (the format
// of relation.WriteSnapshot, see docs/SNAPSHOT_FORMAT.md) plus an
// append-only row log per database, so appends made after a Refresh are
// durable without rewriting the whole snapshot. Compaction folds the
// log back into the snapshot.
//
// Crash safety: snapshots are written to a temporary file, fsynced and
// renamed into place, so a crash mid-save leaves the previous snapshot
// intact; every snapshot section and every log record is CRC32-
// checksummed and the snapshot embeds the database fingerprint, so a
// torn or corrupt file fails loudly at load instead of serving wrong
// answers. The row log additionally records the fingerprint of the
// snapshot it extends, so a log can never be replayed onto the wrong
// (e.g. freshly re-registered) snapshot.
package store

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/relation"
)

const (
	snapshotExt = ".fdb"
	logExt      = ".fdlog"
	markerExt   = ".compact"
	tmpPrefix   = ".snapshot-"
)

// Store manages the snapshot and log files of a data directory. All
// methods are safe for concurrent use; mutating operations on the same
// store are serialised.
type Store struct {
	dir string
	mu  sync.Mutex
}

// Open opens (creating if necessary) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Database names are path-escaped into file names, so any registrable
// name round-trips through the filesystem.
func (s *Store) snapshotPath(name string) string {
	return filepath.Join(s.dir, url.PathEscape(name)+snapshotExt)
}

func (s *Store) logPath(name string) string {
	return filepath.Join(s.dir, url.PathEscape(name)+logExt)
}

// markerPath names the compaction marker: it exists only inside a
// Save that is folding a row log away, and records the fingerprint of
// the snapshot that replaces the log. A crash between the snapshot
// rename and the log removal leaves the marker behind, letting the
// next load tell "interrupted compaction, the log is already folded
// in" apart from a genuinely mismatched log.
func (s *Store) markerPath(name string) string {
	return filepath.Join(s.dir, url.PathEscape(name)+markerExt)
}

// List returns the names of all stored databases, sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), snapshotExt) || strings.HasPrefix(e.Name(), tmpPrefix) {
			continue
		}
		name, err := url.PathUnescape(strings.TrimSuffix(e.Name(), snapshotExt))
		if err != nil {
			return nil, fmt.Errorf("store: undecodable snapshot file %q: %w", e.Name(), err)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Save writes a full snapshot of db under name, atomically replacing
// any previous snapshot, and truncates the row log (the snapshot now
// holds everything the log held).
func (s *Store) Save(name string, db *relation.Database) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.save(name, db)
}

func (s *Store) save(name string, db *relation.Database) error {
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: save %q: %w", name, err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if err := db.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("store: save %q: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: save %q: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: save %q: %w", name, err)
	}
	// When this save folds an existing row log away, drop a compaction
	// marker carrying the new snapshot's fingerprint first. If the
	// process dies between the snapshot rename and the log removal, the
	// next load finds marker fp == snapshot fp and knows the log is
	// already folded in (it deletes it) instead of refusing the
	// fingerprint mismatch forever.
	hasLog := false
	if _, err := os.Stat(s.logPath(name)); err == nil {
		hasLog = true
		if err := s.writeMarker(name, db.Fingerprint()); err != nil {
			return fmt.Errorf("store: save %q: %w", name, err)
		}
	}
	if err := os.Rename(tmp.Name(), s.snapshotPath(name)); err != nil {
		return fmt.Errorf("store: save %q: %w", name, err)
	}
	if err := os.Remove(s.logPath(name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: save %q: truncating log: %w", name, err)
	}
	if hasLog {
		if err := os.Remove(s.markerPath(name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: save %q: removing marker: %w", name, err)
		}
	}
	s.syncDir()
	return nil
}

// writeMarker atomically writes the compaction marker for name: the
// hex fingerprint of the snapshot that replaces the current row log.
func (s *Store) writeMarker(name string, fp uint64) error {
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := fmt.Fprintf(tmp, "%016x\n", fp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), s.markerPath(name))
}

// readMarker reads the compaction marker if present, returning the
// recorded fingerprint. A malformed marker is a loud error.
func (s *Store) readMarker(name string) (fp uint64, exists bool, err error) {
	raw, err := os.ReadFile(s.markerPath(name))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("store: reading compaction marker: %w", err)
	}
	if _, err := fmt.Sscanf(string(raw), "%x", &fp); err != nil {
		return 0, false, fmt.Errorf("store: malformed compaction marker %q", raw)
	}
	return fp, true, nil
}

// syncDir fsyncs the store directory so renames and removals are
// durable; best effort (some filesystems refuse directory fsync).
func (s *Store) syncDir() {
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Load reads the stored database of that name: the snapshot is loaded
// (adopting its columnar mirror directly, no re-encoding) and any row
// log is replayed through a Refresh. It reports whether log records
// were replayed — a true return means the caller should Compact (or
// Save) to fold the log back into the snapshot. Corrupt or truncated
// snapshots and logs fail loudly.
func (s *Store) Load(name string) (*relation.Database, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.load(name)
}

func (s *Store) load(name string) (*relation.Database, bool, error) {
	f, err := os.Open(s.snapshotPath(name))
	if err != nil {
		return nil, false, fmt.Errorf("store: load %q: %w", name, err)
	}
	db, err := relation.ReadSnapshot(f)
	f.Close()
	if err != nil {
		return nil, false, fmt.Errorf("store: load %q: %w", name, err)
	}

	// A leftover compaction marker means a Save crashed mid-cleanup.
	// Marker fp == snapshot fp: the rename landed, the log's content is
	// already inside this snapshot — finish the cleanup. Otherwise the
	// crash hit before the rename: old snapshot and log are both
	// intact, so drop the marker and replay normally.
	if mfp, exists, err := s.readMarker(name); err != nil {
		return nil, false, fmt.Errorf("store: load %q: %w", name, err)
	} else if exists {
		if mfp == db.Fingerprint() {
			if err := os.Remove(s.logPath(name)); err != nil && !os.IsNotExist(err) {
				return nil, false, fmt.Errorf("store: load %q: clearing folded log: %w", name, err)
			}
		}
		if err := os.Remove(s.markerPath(name)); err != nil && !os.IsNotExist(err) {
			return nil, false, fmt.Errorf("store: load %q: clearing marker: %w", name, err)
		}
		s.syncDir()
	}

	recs, fp, err := readLog(s.logPath(name))
	if err != nil {
		return nil, false, fmt.Errorf("store: load %q: %w", name, err)
	}
	if len(recs) == 0 {
		return db, false, nil
	}
	if snapFP := db.Fingerprint(); fp != snapFP {
		return nil, false, fmt.Errorf("store: load %q: row log extends snapshot %016x, found snapshot %016x",
			name, fp, snapFP)
	}
	db.Refresh()
	for i, rec := range recs {
		idx, ok := db.RelationIndex(rec.rel)
		if !ok {
			return nil, false, fmt.Errorf("store: load %q: log record %d names unknown relation %q", name, i, rec.rel)
		}
		if err := db.Relation(idx).AppendTuple(rec.tuple); err != nil {
			return nil, false, fmt.Errorf("store: load %q: log record %d: %w", name, i, err)
		}
	}
	// Refresh again so Size/NumTuples count the replayed rows (the
	// mirror is already discarded; the recount is the only effect).
	db.Refresh()
	return db, true, nil
}

// Append durably appends tuples to relation relName of the stored
// database, writing row-log records instead of rewriting the snapshot.
// The log is created bound to the current snapshot's fingerprint,
// which must equal expectFP — the fingerprint of the snapshot the
// caller believes it is extending. The check turns "the database was
// dropped and re-registered under this name while the append was in
// flight" into an error instead of rows durably logged against the
// wrong snapshot.
func (s *Store) Append(name, relName string, tuples []relation.Tuple, expectFP uint64) error {
	if len(tuples) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	sf, err := os.Open(s.snapshotPath(name))
	if err != nil {
		return fmt.Errorf("store: append %q: %w", name, err)
	}
	fp, err := relation.ReadSnapshotFingerprint(sf)
	sf.Close()
	if err != nil {
		return fmt.Errorf("store: append %q: %w", name, err)
	}
	if fp != expectFP {
		return fmt.Errorf("store: append %q: snapshot fingerprint %016x is not the expected %016x (database replaced?)",
			name, fp, expectFP)
	}
	return appendLog(s.logPath(name), fp, relName, tuples)
}

// Compact folds the row log back into the snapshot: when a log exists,
// the database is loaded (snapshot + replay) and saved as one fresh
// snapshot, and the log is truncated. It reports whether anything was
// compacted.
func (s *Store) Compact(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(s.logPath(name)); os.IsNotExist(err) {
		return false, nil
	}
	db, replayed, err := s.load(name)
	if err != nil {
		return false, fmt.Errorf("store: compact %q: %w", name, err)
	}
	if !replayed {
		// An empty (header-only) log: just drop it.
		if err := os.Remove(s.logPath(name)); err != nil && !os.IsNotExist(err) {
			return false, fmt.Errorf("store: compact %q: %w", name, err)
		}
		return false, nil
	}
	if err := s.save(name, db); err != nil {
		return false, fmt.Errorf("store: compact %q: %w", name, err)
	}
	return true, nil
}

// Delete removes the stored snapshot, log and compaction marker of
// that name. Deleting a name that was never stored is not an error.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(s.snapshotPath(name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %q: %w", name, err)
	}
	if err := os.Remove(s.logPath(name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %q: %w", name, err)
	}
	if err := os.Remove(s.markerPath(name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %q: %w", name, err)
	}
	s.syncDir()
	return nil
}
