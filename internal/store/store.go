// Package store is the on-disk columnar snapshot store: it persists
// registered databases as versioned binary snapshot files (the format
// of relation.WriteSnapshot, see docs/SNAPSHOT_FORMAT.md) plus an
// append-only row log per database, so appends made after a Refresh are
// durable without rewriting the whole snapshot. Compaction folds the
// log back into the snapshot.
//
// Crash safety: snapshots are written to a temporary file, fsynced and
// renamed into place, so a crash mid-save leaves the previous snapshot
// intact; every snapshot section and every log record is CRC32-
// checksummed and the snapshot embeds the database fingerprint, so a
// torn or corrupt file fails loudly at load instead of serving wrong
// answers. The row log additionally records the fingerprint of the
// snapshot it extends, so a log can never be replayed onto the wrong
// (e.g. freshly re-registered) snapshot.
package store

import (
	"errors"
	"fmt"
	"net/url"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/relation"
)

const (
	snapshotExt = ".fdb"
	logExt      = ".fdlog"
	markerExt   = ".compact"
	tmpPrefix   = ".snapshot-"
	// corruptInfix marks quarantined files: Quarantine renames
	// "<name>.fdb" to "<name>.fdb.corrupt-N" (and likewise the log and
	// marker), so a corrupt database stops re-failing every recovery
	// while its bytes stay on disk for forensics.
	corruptInfix = ".corrupt-"
)

// ErrFingerprintMismatch marks an Append whose expected snapshot
// fingerprint does not match the snapshot on disk (the database was
// replaced under this name). It is a permanent error: callers must not
// retry it.
var ErrFingerprintMismatch = errors.New("snapshot fingerprint mismatch")

// Store manages the snapshot and log files of a data directory. All
// methods are safe for concurrent use; mutating operations on the same
// store are serialised.
type Store struct {
	dir string
	fs  FS
	mu  sync.Mutex
	// tmpSeq names temporary files uniquely within this store; only
	// touched under mu.
	tmpSeq uint64
	// obs, when set, observes each public operation's latency and
	// outcome; read and written under mu.
	obs func(op string, d time.Duration, err error)
}

// Instrument installs an observer invoked once per public mutating or
// loading operation (op is "save", "load", "append", "compact" or
// "delete") with the operation's wall-clock duration and outcome. One
// observer at most; nil uninstalls. The observer runs with the store's
// lock held — keep it cheap and never call back into the store.
func (s *Store) Instrument(obs func(op string, d time.Duration, err error)) {
	s.mu.Lock()
	s.obs = obs
	s.mu.Unlock()
}

// observe reports one finished operation to the installed observer.
// Called via defer with mu held; start is captured at defer time.
func (s *Store) observe(op string, start time.Time, errp *error) {
	if s.obs != nil {
		s.obs(op, time.Since(start), *errp)
	}
}

// Open opens (creating if necessary) a store rooted at dir on the
// operating-system filesystem.
func Open(dir string) (*Store, error) { return OpenFS(dir, OSFS()) }

// OpenFS opens a store rooted at dir on an arbitrary filesystem —
// the seam the fault-injection harness uses to run the store on
// faultfs.
func OpenFS(dir string, fsys FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	if fsys == nil {
		return nil, fmt.Errorf("store: nil filesystem")
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, fs: fsys}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Database names are path-escaped into file names, so any registrable
// name round-trips through the filesystem.
func (s *Store) snapshotPath(name string) string {
	return filepath.Join(s.dir, url.PathEscape(name)+snapshotExt)
}

func (s *Store) logPath(name string) string {
	return filepath.Join(s.dir, url.PathEscape(name)+logExt)
}

// markerPath names the compaction marker: it exists only inside a
// Save that is folding a row log away, and records the fingerprint of
// the snapshot that replaces the log. A crash between the snapshot
// rename and the log removal leaves the marker behind, letting the
// next load tell "interrupted compaction, the log is already folded
// in" apart from a genuinely mismatched log.
func (s *Store) markerPath(name string) string {
	return filepath.Join(s.dir, url.PathEscape(name)+markerExt)
}

// List returns the names of all stored databases, sorted. Quarantined
// databases (see Quarantine) are excluded — their files no longer end
// in the snapshot extension.
func (s *Store) List() ([]string, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !strings.HasSuffix(e, snapshotExt) || strings.HasPrefix(e, tmpPrefix) {
			continue
		}
		name, err := url.PathUnescape(strings.TrimSuffix(e, snapshotExt))
		if err != nil {
			return nil, fmt.Errorf("store: undecodable snapshot file %q: %w", e, err)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Save writes a full snapshot of db under name, atomically replacing
// any previous snapshot, and truncates the row log (the snapshot now
// holds everything the log held).
func (s *Store) Save(name string, db *relation.Database) (err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.observe("save", time.Now(), &err)
	return s.save(name, db)
}

func (s *Store) save(name string, db *relation.Database) error {
	tmpName := s.tmpName()
	tmp, err := s.fs.Create(tmpName)
	if err != nil {
		return fmt.Errorf("store: save %q: %w", name, err)
	}
	defer s.fs.Remove(tmpName) // no-op after the rename succeeds
	if err := db.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("store: save %q: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: save %q: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: save %q: %w", name, err)
	}
	// When this save folds an existing row log away, drop a compaction
	// marker carrying the new snapshot's fingerprint first. If the
	// process dies between the snapshot rename and the log removal, the
	// next load finds marker fp == snapshot fp and knows the log is
	// already folded in (it deletes it) instead of refusing the
	// fingerprint mismatch forever.
	hasLog := false
	if _, err := s.fs.Stat(s.logPath(name)); err == nil {
		hasLog = true
		if err := s.writeMarker(name, db.Fingerprint()); err != nil {
			return fmt.Errorf("store: save %q: %w", name, err)
		}
	}
	if err := s.fs.Rename(tmpName, s.snapshotPath(name)); err != nil {
		return fmt.Errorf("store: save %q: %w", name, err)
	}
	if err := s.fs.Remove(s.logPath(name)); err != nil && !notExist(err) {
		return fmt.Errorf("store: save %q: truncating log: %w", name, err)
	}
	if hasLog {
		if err := s.fs.Remove(s.markerPath(name)); err != nil && !notExist(err) {
			return fmt.Errorf("store: save %q: removing marker: %w", name, err)
		}
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("store: save %q: syncing directory: %w", name, err)
	}
	return nil
}

// tmpName names a fresh temporary file; called with mu held.
func (s *Store) tmpName() string {
	s.tmpSeq++
	return filepath.Join(s.dir, fmt.Sprintf("%s%d", tmpPrefix, s.tmpSeq))
}

// writeMarker atomically writes the compaction marker for name: the
// hex fingerprint of the snapshot that replaces the current row log.
func (s *Store) writeMarker(name string, fp uint64) error {
	tmpName := s.tmpName()
	tmp, err := s.fs.Create(tmpName)
	if err != nil {
		return err
	}
	defer s.fs.Remove(tmpName)
	if _, err := fmt.Fprintf(tmp, "%016x\n", fp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return s.fs.Rename(tmpName, s.markerPath(name))
}

// readMarker reads the compaction marker if present, returning the
// recorded fingerprint. A malformed marker is a loud error.
func (s *Store) readMarker(name string) (fp uint64, exists bool, err error) {
	raw, err := readFile(s.fs, s.markerPath(name))
	if notExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("store: reading compaction marker: %w", err)
	}
	if _, err := fmt.Sscanf(string(raw), "%x", &fp); err != nil {
		return 0, false, fmt.Errorf("store: malformed compaction marker %q", raw)
	}
	return fp, true, nil
}

// syncDir fsyncs the store directory, best effort — used on cleanup
// paths whose durability the next recovery re-establishes anyway.
func (s *Store) syncDir() { _ = s.fs.SyncDir(s.dir) }

// Load reads the stored database of that name: the snapshot is loaded
// (adopting its columnar mirror directly, no re-encoding) and any row
// log is replayed through a Refresh. It reports whether log records
// were replayed — a true return means the caller should Compact (or
// Save) to fold the log back into the snapshot. Corrupt or truncated
// snapshots and logs fail loudly.
func (s *Store) Load(name string) (db *relation.Database, replayed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.observe("load", time.Now(), &err)
	return s.load(name)
}

func (s *Store) load(name string) (*relation.Database, bool, error) {
	f, err := s.fs.Open(s.snapshotPath(name))
	if err != nil {
		return nil, false, fmt.Errorf("store: load %q: %w", name, err)
	}
	db, err := relation.ReadSnapshot(f)
	f.Close()
	if err != nil {
		return nil, false, fmt.Errorf("store: load %q: %w", name, err)
	}

	// A leftover compaction marker means a Save crashed mid-cleanup.
	// Marker fp == snapshot fp: the rename landed, the log's content is
	// already inside this snapshot — finish the cleanup. Otherwise the
	// crash hit before the rename: old snapshot and log are both
	// intact, so drop the marker and replay normally.
	if mfp, exists, err := s.readMarker(name); err != nil {
		return nil, false, fmt.Errorf("store: load %q: %w", name, err)
	} else if exists {
		if mfp == db.Fingerprint() {
			if err := s.fs.Remove(s.logPath(name)); err != nil && !notExist(err) {
				return nil, false, fmt.Errorf("store: load %q: clearing folded log: %w", name, err)
			}
		}
		if err := s.fs.Remove(s.markerPath(name)); err != nil && !notExist(err) {
			return nil, false, fmt.Errorf("store: load %q: clearing marker: %w", name, err)
		}
		s.syncDir()
	}

	recs, fp, err := readLog(s.fs, s.logPath(name))
	if err != nil {
		return nil, false, fmt.Errorf("store: load %q: %w", name, err)
	}
	if len(recs) == 0 {
		return db, false, nil
	}
	if snapFP := db.Fingerprint(); fp != snapFP {
		return nil, false, fmt.Errorf("store: load %q: row log extends snapshot %016x, found snapshot %016x",
			name, fp, snapFP)
	}
	db.Refresh()
	for i, rec := range recs {
		idx, ok := db.RelationIndex(rec.rel)
		if !ok {
			return nil, false, fmt.Errorf("store: load %q: log record %d names unknown relation %q", name, i, rec.rel)
		}
		if err := db.Relation(idx).AppendTuple(rec.tuple); err != nil {
			return nil, false, fmt.Errorf("store: load %q: log record %d: %w", name, i, err)
		}
	}
	// Refresh again so Size/NumTuples count the replayed rows (the
	// mirror is already discarded; the recount is the only effect).
	db.Refresh()
	return db, true, nil
}

// Append durably appends tuples to relation relName of the stored
// database, writing row-log records instead of rewriting the snapshot.
// The log is created bound to the current snapshot's fingerprint,
// which must equal expectFP — the fingerprint of the snapshot the
// caller believes it is extending. The check turns "the database was
// dropped and re-registered under this name while the append was in
// flight" into an error instead of rows durably logged against the
// wrong snapshot.
func (s *Store) Append(name, relName string, tuples []relation.Tuple, expectFP uint64) (err error) {
	if len(tuples) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.observe("append", time.Now(), &err)

	sf, err := s.fs.Open(s.snapshotPath(name))
	if err != nil {
		return fmt.Errorf("store: append %q: %w", name, err)
	}
	fp, err := relation.ReadSnapshotFingerprint(sf)
	sf.Close()
	if err != nil {
		return fmt.Errorf("store: append %q: %w", name, err)
	}
	if fp != expectFP {
		return fmt.Errorf("store: append %q: %w: snapshot is %016x, expected %016x (database replaced?)",
			name, ErrFingerprintMismatch, fp, expectFP)
	}
	// Is this append creating the log file? Then its directory entry
	// must be fsynced below — a file fsync alone does not make a fresh
	// dentry durable, and a crash would silently lose the whole log
	// (found by the crash harness).
	_, statErr := s.fs.Stat(s.logPath(name))
	created := notExist(statErr)
	if err := appendLog(s.fs, s.logPath(name), fp, relName, tuples); err != nil {
		return err
	}
	if created {
		if err := s.fs.SyncDir(s.dir); err != nil {
			// Roll the fresh log back (its dentry never became durable
			// anyway), so a reported failure means no rows persisted and
			// the caller may retry without double-appending.
			_ = s.fs.Remove(s.logPath(name))
			return fmt.Errorf("store: append %q: syncing directory: %w", name, err)
		}
	}
	return nil
}

// Compact folds the row log back into the snapshot: when a log exists,
// the database is loaded (snapshot + replay) and saved as one fresh
// snapshot, and the log is truncated. It reports whether anything was
// compacted.
func (s *Store) Compact(name string) (compacted bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.observe("compact", time.Now(), &err)
	if _, err := s.fs.Stat(s.logPath(name)); notExist(err) {
		return false, nil
	}
	db, replayed, err := s.load(name)
	if err != nil {
		return false, fmt.Errorf("store: compact %q: %w", name, err)
	}
	if !replayed {
		// An empty (header-only) log: just drop it.
		if err := s.fs.Remove(s.logPath(name)); err != nil && !notExist(err) {
			return false, fmt.Errorf("store: compact %q: %w", name, err)
		}
		return false, nil
	}
	if err := s.save(name, db); err != nil {
		return false, fmt.Errorf("store: compact %q: %w", name, err)
	}
	return true, nil
}

// Delete removes the stored snapshot, log and compaction marker of
// that name. Deleting a name that was never stored is not an error.
func (s *Store) Delete(name string) (err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.observe("delete", time.Now(), &err)
	// The snapshot goes first: it is the file that makes the name
	// exist (List keys on it), so a crash mid-delete leaves either the
	// full database or orphaned log/marker files a later Save of the
	// same name overwrites harmlessly.
	if err := s.fs.Remove(s.snapshotPath(name)); err != nil && !notExist(err) {
		return fmt.Errorf("store: delete %q: %w", name, err)
	}
	if err := s.fs.Remove(s.logPath(name)); err != nil && !notExist(err) {
		return fmt.Errorf("store: delete %q: %w", name, err)
	}
	if err := s.fs.Remove(s.markerPath(name)); err != nil && !notExist(err) {
		return fmt.Errorf("store: delete %q: %w", name, err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("store: delete %q: syncing directory: %w", name, err)
	}
	return nil
}

// Quarantine moves the files of name aside — "<file>.corrupt-N" for
// the first free N — so a database whose load keeps failing stops
// breaking every recovery while its bytes remain on disk for
// inspection. It returns the quarantine label "<name>.corrupt-N".
// Quarantining a name with no files is an error.
func (s *Store) Quarantine(name string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	esc := url.PathEscape(name)
	paths := []string{s.snapshotPath(name), s.logPath(name), s.markerPath(name)}
	for n := 1; ; n++ {
		suffix := fmt.Sprintf("%s%d", corruptInfix, n)
		taken := false
		for _, p := range paths {
			if _, err := s.fs.Stat(p + suffix); !notExist(err) {
				taken = true
				break
			}
		}
		if taken {
			continue
		}
		moved := 0
		for _, p := range paths {
			if _, err := s.fs.Stat(p); notExist(err) {
				continue
			}
			if err := s.fs.Rename(p, p+suffix); err != nil {
				return "", fmt.Errorf("store: quarantine %q: %w", name, err)
			}
			moved++
		}
		if moved == 0 {
			return "", fmt.Errorf("store: quarantine %q: no files to quarantine", name)
		}
		if err := s.fs.SyncDir(s.dir); err != nil {
			return "", fmt.Errorf("store: quarantine %q: syncing directory: %w", name, err)
		}
		return fmt.Sprintf("%s%s%d", esc, corruptInfix, n), nil
	}
}

// Quarantined is one quarantined database: the original name and the
// quarantine label its files carry.
type Quarantined struct {
	Name  string
	Label string
}

// ListQuarantined returns every quarantined database in the store,
// sorted by label.
func (s *Store) ListQuarantined() ([]Quarantined, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []Quarantined
	for _, e := range entries {
		// Quarantined snapshots look like "<escaped>.fdb.corrupt-N";
		// one entry per database (the log and marker share the label).
		idx := strings.Index(e, snapshotExt+corruptInfix)
		if idx < 0 {
			continue
		}
		esc := e[:idx]
		name, err := url.PathUnescape(esc)
		if err != nil {
			return nil, fmt.Errorf("store: undecodable quarantined file %q: %w", e, err)
		}
		out = append(out, Quarantined{
			Name:  name,
			Label: esc + strings.TrimPrefix(e[idx:], snapshotExt),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out, nil
}
