package approx

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tupleset"
)

// NewParallelCursor starts a parallel streaming enumeration of
// AFD(R, A, τ) on a pool of at most workers goroutines (≤0 selects
// GOMAXPROCS). The per-relation passes of APPROXINCREMENTALFD are
// independent — each builds AFDi(R, A, τ) from scratch — so they are
// the partition; as in the sequential Cursor, a result is owned by the
// pass of its minimal relation. A shared buffer Pool is rejected
// rather than raced over.
//
// The returned cursor has the core.ParallelCursor contract: merged
// stream, nondeterministic arrival order, workers stopped within one
// step by ctx or Close.
func NewParallelCursor(ctx context.Context, db *relation.Database, a Join, tau float64, opts core.Options, workers int) (*core.ParallelCursor, error) {
	if a == nil {
		return nil, fmt.Errorf("approx: nil approximate join function")
	}
	if tau <= 0 || tau > 1 {
		return nil, fmt.Errorf("approx: threshold %v outside (0,1]", tau)
	}
	if opts.Pool != nil {
		return nil, fmt.Errorf("approx: parallel execution does not support a shared buffer pool")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The partition comes from the same layout fd.Explain reports, so
	// the plan's task list matches what actually runs.
	layout := core.ApproxLayout(db)
	tasks := make([]core.Task, len(layout))
	for i, m := range layout {
		pass := m.Pass
		tasks[i] = core.Task{
			Label: m.Label,
			Open: func() (core.TaskEnumerator, error) {
				return NewEnumerator(db, pass, a, tau, opts)
			},
			Owns: func(t *tupleset.Set) bool { return minRel(t) == pass },
		}
	}
	return core.NewTaskCursor(ctx, tasks, workers, opts.TaskObserver), nil
}
