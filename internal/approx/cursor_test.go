package approx

import (
	"context"

	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

func cursorDB(t *testing.T) *relation.Database {
	t.Helper()
	db, err := workload.DirtyChain(workload.DirtyConfig{
		Config:    workload.Config{Relations: 3, TuplesPerRelation: 8, Domain: 3, Seed: 43},
		ErrorRate: 0.3, MaxEdits: 2, MinProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestCursorMatchesStream checks that the pull-based approximate cursor
// reproduces Stream exactly.
func TestCursorMatchesStream(t *testing.T) {
	db := cursorDB(t)
	a := &Amin{S: LevenshteinSim{}}
	const tau = 0.7

	var want []string
	wantStats, err := Stream(db, a, tau, core.Options{UseIndex: true}, func(s *tupleset.Set) bool {
		want = append(want, s.Key())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewCursor(context.Background(), db, a, tau, core.Options{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		s, ok := c.Next()
		if !ok {
			break
		}
		got = append(got, s.Key())
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor emitted %d results, Stream %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sequence diverges at %d", i)
		}
	}
	if cs := c.Stats(); cs != wantStats {
		t.Errorf("cursor stats %+v, Stream stats %+v", cs, wantStats)
	}
	c.Close()
}

// TestCursorValidation mirrors the Stream argument checks.
func TestCursorValidation(t *testing.T) {
	db := cursorDB(t)
	if _, err := NewCursor(context.Background(), db, nil, 0.5, core.Options{}); err == nil {
		t.Error("NewCursor accepted a nil join function")
	}
	if _, err := NewCursor(context.Background(), db, &Amin{S: ExactSim{}}, 0, core.Options{}); err == nil {
		t.Error("NewCursor accepted τ=0")
	}
	if _, err := NewCursor(context.Background(), db, &Amin{S: ExactSim{}}, 1.5, core.Options{}); err == nil {
		t.Error("NewCursor accepted τ>1")
	}
}

// TestApproxCursorNoGoroutineLeak asserts that abandoning approximate
// enumerations mid-flight leaks no goroutine.
func TestApproxCursorNoGoroutineLeak(t *testing.T) {
	db := cursorDB(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		c, err := NewCursor(context.Background(), db, &Amin{S: LevenshteinSim{}}, 0.7, core.Options{UseIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		c.Next()
		c.Close()
		if _, ok := c.Next(); ok {
			t.Fatal("Next after Close emitted a result")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
