package approx

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/relation"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

func refsByLabel(db *relation.Database) map[string]relation.Ref {
	out := map[string]relation.Ref{}
	db.ForEachRef(func(r relation.Ref) bool { out[db.Label(r)] = r; return true })
	return out
}

// TestExample61 pins the values of Example 6.1 / Fig 4:
// Amin({c1,a2,s2}) = 0.5 and Aprod({c1,a2,s2}) = 0.32.
func TestExample61(t *testing.T) {
	db, sims := workload.TouristApprox()
	u := tupleset.NewUniverse(db)
	refs := refsByLabel(db)
	sim := NewSimTable(sims)

	t1 := u.FromRefs(refs["c1"], refs["a2"], refs["s2"])
	amin := &Amin{S: sim}
	if got := amin.Score(u, t1); got != 0.5 {
		t.Errorf("Amin(T1) = %v, want 0.5", got)
	}
	aprod := &Aprod{S: sim}
	if got := aprod.Score(u, t1); math.Abs(got-0.32) > 1e-12 {
		t.Errorf("Aprod(T1) = %v, want 0.32", got)
	}
	// Singletons: Amin gives prob, Aprod gives 1.
	s2 := u.Singleton(refs["s2"])
	if got := amin.Score(u, s2); got != 0.8 {
		t.Errorf("Amin({s2}) = %v, want prob(s2)=0.8", got)
	}
	if got := aprod.Score(u, s2); got != 1 {
		t.Errorf("Aprod({s2}) = %v, want 1", got)
	}
}

// TestDisconnectedScoresZero checks acceptability condition (i) on a
// database whose schema has two relations with no shared attribute
// reachable only through a middle relation.
func TestDisconnectedScoresZero(t *testing.T) {
	db, err := workload.Chain(workload.Config{
		Relations: 3, TuplesPerRelation: 2, Domain: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	u := tupleset.NewUniverse(db)
	// R0 and R2 are not adjacent in a 3-chain.
	disc := u.FromRefs(relation.Ref{Rel: 0, Idx: 0}, relation.Ref{Rel: 2, Idx: 0})
	for _, j := range []Join{&Amin{S: ExactSim{}}, &Aprod{S: ExactSim{}}} {
		if got := j.Score(u, disc); got != 0 {
			t.Errorf("%s(disconnected) = %v, want 0", j.Name(), got)
		}
	}
}

// TestExample63 reproduces the maximal-subset split of Example 6.3:
// T = {c1, s1, a2}, tb = s2, τ = 0.4. Amin yields the single subset
// {c1, s2, a2}; Aprod yields {c1, s2} and {s2, a2}.
func TestExample63(t *testing.T) {
	db, sims := workload.TouristApprox()
	u := tupleset.NewUniverse(db)
	refs := refsByLabel(db)
	sim := NewSimTable(sims)
	T := u.FromRefs(refs["c1"], refs["s1"], refs["a2"])
	tb := refs["s2"]
	const tau = 0.4

	amin := &Amin{S: sim}
	gotMin := amin.MaximalSubsets(u, T, tb, tau)
	if len(gotMin) != 1 || gotMin[0].Format(db) != "{c1, a2, s2}" {
		var names []string
		for _, s := range gotMin {
			names = append(names, s.Format(db))
		}
		t.Errorf("Amin maximal subsets = %v, want [{c1, a2, s2}]", names)
	}
	if got := amin.Score(u, gotMin[0]); got != 0.5 {
		t.Errorf("Amin(T') = %v, want 0.5", got)
	}

	aprod := &Aprod{S: sim}
	gotProd := aprod.MaximalSubsets(u, T, tb, tau)
	var names []string
	for _, s := range gotProd {
		names = append(names, s.Format(db))
	}
	sort.Strings(names)
	want := []string{"{a2, s2}", "{c1, s2}"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Errorf("Aprod maximal subsets = %v, want %v", names, want)
	}
	// The full replacement {c1,a2,s2} fails Aprod: 0.32 < 0.4.
	full := u.FromRefs(refs["c1"], refs["a2"], refs["s2"])
	if aprod.Score(u, full) >= tau {
		t.Error("Aprod({c1,a2,s2}) must be below τ=0.4")
	}
}

// TestAcceptability property-checks condition (ii): growing a connected
// set never raises the score, for both Amin and Aprod under random sim
// tables.
func TestAcceptability(t *testing.T) {
	db, err := workload.DirtyChain(workload.DirtyConfig{
		Config:    workload.Config{Relations: 4, TuplesPerRelation: 4, Domain: 3, Seed: 31},
		ErrorRate: 0.3, MaxEdits: 2, MinProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := tupleset.NewUniverse(db)
	joins := []Join{&Amin{S: LevenshteinSim{}}, &Aprod{S: LevenshteinSim{}}}
	rng := rand.New(rand.NewSource(4))

	f := func(seedIdx int, grow []bool) bool {
		total := db.NumTuples()
		k := ((seedIdx % total) + total) % total
		var start relation.Ref
		i := 0
		db.ForEachRef(func(r relation.Ref) bool {
			if i == k {
				start = r
				return false
			}
			i++
			return true
		})
		s := u.Singleton(start)
		prev := map[string]float64{}
		for _, j := range joins {
			prev[j.Name()] = j.Score(u, s)
		}
		gi := 0
		okAll := true
		db.ForEachRef(func(r relation.Ref) bool {
			take := (gi < len(grow) && grow[gi]) || rng.Intn(3) == 0
			gi++
			if !take || s.HasRelation(int(r.Rel)) || !u.ConnectedWith(s, r) {
				return true
			}
			s = s.Clone().Add(r)
			for _, j := range joins {
				cur := j.Score(u, s)
				if cur > prev[j.Name()]+1e-12 {
					okAll = false
					return false
				}
				prev[j.Name()] = cur
			}
			return true
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAminMatchesOracle cross-checks APPROXINCREMENTALFD with Amin
// against the brute-force AFD oracle over thresholds and workloads.
func TestAminMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		db, err := workload.DirtyChain(workload.DirtyConfig{
			Config:    workload.Config{Relations: 4, TuplesPerRelation: 4, Domain: 3, NullRate: 0.1, Seed: seed},
			ErrorRate: 0.3, MaxEdits: 2, MinProb: 0.4,
		})
		if err != nil {
			t.Fatal(err)
		}
		u := tupleset.NewUniverse(db)
		amin := &Amin{S: LevenshteinSim{}}
		score := func(s *tupleset.Set) float64 { return amin.Score(u, s) }
		for _, tau := range []float64{0.3, 0.5, 0.8, 0.95} {
			got, _, err := FullDisjunction(db, amin, tau, core.Options{UseIndex: true})
			if err != nil {
				t.Fatal(err)
			}
			want := naive.ApproxFullDisjunction(db, score, tau)
			gotStr := make([]string, 0, len(got))
			for _, s := range got {
				gotStr = append(gotStr, s.Format(db))
			}
			wantStr := make([]string, 0, len(want))
			for _, s := range want {
				wantStr = append(wantStr, s.Format(db))
			}
			sort.Strings(gotStr)
			sort.Strings(wantStr)
			if len(gotStr) != len(wantStr) {
				t.Fatalf("seed %d τ=%v: got %d results %v, oracle %d %v",
					seed, tau, len(gotStr), gotStr, len(wantStr), wantStr)
			}
			for i := range wantStr {
				if gotStr[i] != wantStr[i] {
					t.Fatalf("seed %d τ=%v mismatch:\n got  %v\n want %v", seed, tau, gotStr, wantStr)
				}
			}
		}
	}
}

// TestAprodMatchesOracle does the same for Aprod (via the generic
// maximal-subset fallback).
func TestAprodMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		db, err := workload.DirtyChain(workload.DirtyConfig{
			Config:    workload.Config{Relations: 3, TuplesPerRelation: 4, Domain: 3, Seed: seed},
			ErrorRate: 0.3, MaxEdits: 1, MinProb: 0.6,
		})
		if err != nil {
			t.Fatal(err)
		}
		u := tupleset.NewUniverse(db)
		aprod := &Aprod{S: LevenshteinSim{}}
		score := func(s *tupleset.Set) float64 { return aprod.Score(u, s) }
		for _, tau := range []float64{0.5, 0.8} {
			got, _, err := FullDisjunction(db, aprod, tau, core.Options{UseIndex: true})
			if err != nil {
				t.Fatal(err)
			}
			want := naive.ApproxFullDisjunction(db, score, tau)
			if len(got) != len(want) {
				t.Fatalf("seed %d τ=%v: got %d results, oracle %d", seed, tau, len(got), len(want))
			}
			wantKeys := map[string]bool{}
			for _, s := range want {
				wantKeys[s.Key()] = true
			}
			for _, s := range got {
				if !wantKeys[s.Key()] {
					t.Errorf("seed %d τ=%v: spurious result %s", seed, tau, s.Format(db))
				}
			}
		}
	}
}

// TestExactSimDegeneratesToFD: with ExactSim and unit probabilities the
// approximate full disjunction equals the exact one for every τ.
func TestExactSimDegeneratesToFD(t *testing.T) {
	db := workload.Tourist()
	amin := &Amin{S: ExactSim{}}
	for _, tau := range []float64{0.2, 0.7, 1.0} {
		got, _, err := FullDisjunction(db, amin, tau, core.Options{UseIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := core.FullDisjunction(db, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("τ=%v: approx %d results, exact %d", tau, len(got), len(want))
		}
		wantKeys := map[string]bool{}
		for _, s := range want {
			wantKeys[s.Key()] = true
		}
		for _, s := range got {
			if !wantKeys[s.Key()] {
				t.Errorf("τ=%v: unexpected %s", tau, s.Format(db))
			}
		}
	}
}

// TestThresholdMonotonicity: lowering τ can only grow the covered JCC
// sets; output size is monotone in the number of qualifying sets.
func TestThresholdMonotonicity(t *testing.T) {
	db, err := workload.DirtyChain(workload.DirtyConfig{
		Config:    workload.Config{Relations: 4, TuplesPerRelation: 5, Domain: 3, Seed: 12},
		ErrorRate: 0.4, MaxEdits: 2, MinProb: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	amin := &Amin{S: LevenshteinSim{}}
	u := tupleset.NewUniverse(db)
	prevCovered := -1
	for _, tau := range []float64{0.95, 0.8, 0.6, 0.4, 0.2} {
		out, _, err := FullDisjunction(db, amin, tau, core.Options{UseIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		// Count qualifying sets via the oracle enumeration.
		covered := len(naive.EnumerateConnected(u, func(s *tupleset.Set) bool {
			return amin.Score(u, s) >= tau
		}))
		if prevCovered >= 0 && covered < prevCovered {
			t.Errorf("τ=%v: qualifying sets shrank from %d to %d", tau, prevCovered, covered)
		}
		prevCovered = covered
		// Every result must meet the threshold and be maximal.
		for _, s := range out {
			if amin.Score(u, s) < tau {
				t.Errorf("τ=%v: result %s below threshold", tau, s.Format(db))
			}
		}
		for i, a := range out {
			for j, b := range out {
				if i != j && b.ContainsAll(a) {
					t.Errorf("τ=%v: %s ⊆ %s", tau, a.Format(db), b.Format(db))
				}
			}
		}
	}
}

func TestEnumeratorValidation(t *testing.T) {
	db := workload.Tourist()
	amin := &Amin{S: ExactSim{}}
	if _, err := NewEnumerator(db, -1, amin, 0.5, core.Options{UseIndex: true}); err == nil {
		t.Error("negative seed accepted")
	}
	if _, err := NewEnumerator(db, 9, amin, 0.5, core.Options{UseIndex: true}); err == nil {
		t.Error("out-of-range seed accepted")
	}
	if _, err := NewEnumerator(db, 0, nil, 0.5, core.Options{UseIndex: true}); err == nil {
		t.Error("nil join accepted")
	}
	if _, err := NewEnumerator(db, 0, amin, 0, core.Options{UseIndex: true}); err == nil {
		t.Error("zero τ accepted")
	}
	if _, err := NewEnumerator(db, 0, amin, 1.5, core.Options{UseIndex: true}); err == nil {
		t.Error("τ>1 accepted")
	}
	if !amin.EfficientlyComputable() {
		t.Error("Amin must report efficient computability (Prop 6.5)")
	}
	if (&Aprod{S: ExactSim{}}).EfficientlyComputable() {
		t.Error("Aprod must not claim efficient computability")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"Canada", "Cannada", 1},
		{"same", "same", 0},
		{"abc", "cba", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Symmetry property.
	f := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Triangle-ish sanity: distance ≤ max(len).
	g := func(a, b string) bool {
		d := Levenshtein(a, b)
		m := len(a)
		if len(b) > m {
			m = len(b)
		}
		return d <= m
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSimMisspelledCountry(t *testing.T) {
	db, _ := workload.TouristApprox() // c1.Country = "Cannada"
	refs := refsByLabel(db)
	sim := LevenshteinSim{}
	// c1 vs a1 share Country: Cannada vs Canada -> 1 - 1/7 ≈ 0.857.
	got := sim.Sim(db, refs["c1"], refs["a1"])
	if math.Abs(got-(1-1.0/7)) > 1e-9 {
		t.Errorf("sim(c1,a1) = %v, want %v", got, 1-1.0/7)
	}
	// a2 vs s2 share Country (match) and City (⊥ in s2): min = 0.
	if got := sim.Sim(db, refs["a2"], refs["s2"]); got != 0 {
		t.Errorf("sim(a2,s2) = %v, want 0 (null City)", got)
	}
	// c2 vs s3: exact matches on Country: 1.
	if got := sim.Sim(db, refs["c2"], refs["s3"]); got != 1 {
		t.Errorf("sim(c2,s3) = %v, want 1", got)
	}
}

func TestSimTableFallback(t *testing.T) {
	db, sims := workload.TouristApprox()
	refs := refsByLabel(db)
	table := NewSimTable(sims)
	// Table entry, both orientations.
	if table.Sim(db, refs["c1"], refs["a2"]) != 0.8 || table.Sim(db, refs["a2"], refs["c1"]) != 0.8 {
		t.Error("table lookup not symmetric")
	}
	// Fallback to exact: c2/s3 join consistent -> 1.
	if table.Sim(db, refs["c2"], refs["s3"]) != 1 {
		t.Error("fallback should be exact-match similarity")
	}
	// Fallback negative: c2/s1 disagree on Country -> 0.
	if table.Sim(db, refs["c2"], refs["s1"]) != 0 {
		t.Error("fallback should reject inconsistent pairs")
	}
}
