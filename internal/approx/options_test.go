package approx

import (
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

// cleanDB builds a chain workload with exact join values and
// probabilities at 1, so Amin over ExactSim mirrors the exact engine.
func cleanDB(t *testing.T, seed int64) *relation.Database {
	t.Helper()
	db, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 8, Domain: 3, NullRate: 0.1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func multiset(sets []*tupleset.Set) map[string]int {
	out := make(map[string]int, len(sets))
	for _, s := range sets {
		out[s.Key()]++
	}
	return out
}

// TestApproxJoinIndexEngages is the satellite acceptance check for
// Options plumbing: with an equi-compatible join function, enabling
// UseJoinIndex actually routes approximate scans through the posting
// index — the probe and skip counters move and fewer tuples are
// scanned — while the produced AFD stays set-identical.
func TestApproxJoinIndexEngages(t *testing.T) {
	for _, seed := range []int64{3, 17, 29} {
		db := cleanDB(t, seed)
		amin := &Amin{S: ExactSim{}}
		if !EquiCompatible(amin) {
			t.Fatal("Amin over ExactSim must be equi-compatible")
		}
		plain, plainStats, err := FullDisjunction(db, amin, 0.5, core.Options{UseIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		indexed, idxStats, err := FullDisjunction(db, amin, 0.5,
			core.Options{UseIndex: true, UseJoinIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		got, want := multiset(indexed), multiset(plain)
		if len(got) != len(want) {
			t.Fatalf("seed %d: join index changed the AFD: %d vs %d results", seed, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("seed %d: join index changed the AFD at %q", seed, k)
			}
		}
		if idxStats.IndexProbes == 0 {
			t.Errorf("seed %d: UseJoinIndex set but no index probes recorded", seed)
		}
		if idxStats.TuplesSkipped == 0 {
			t.Errorf("seed %d: UseJoinIndex set but no tuples skipped", seed)
		}
		if idxStats.TuplesScanned >= plainStats.TuplesScanned {
			t.Errorf("seed %d: candidate scans visited %d tuples, sweep %d — no reduction",
				seed, idxStats.TuplesScanned, plainStats.TuplesScanned)
		}
	}
}

// TestApproxJoinIndexGatedForGradedSim checks the safety side of the
// gate: under a graded similarity the candidate index would lose
// matches that never equi-join, so UseJoinIndex must be ignored.
func TestApproxJoinIndexGatedForGradedSim(t *testing.T) {
	db, err := workload.DirtyChain(workload.DirtyConfig{
		Config:    workload.Config{Relations: 3, TuplesPerRelation: 8, Domain: 3, Seed: 31},
		ErrorRate: 0.3, MaxEdits: 2, MinProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	amin := &Amin{S: LevenshteinSim{}}
	if EquiCompatible(amin) {
		t.Fatal("Amin over LevenshteinSim must not be equi-compatible")
	}
	plain, _, err := FullDisjunction(db, amin, 0.6, core.Options{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	gated, gatedStats, err := FullDisjunction(db, amin, 0.6,
		core.Options{UseIndex: true, UseJoinIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if gatedStats.IndexProbes != 0 {
		t.Errorf("graded similarity still probed the join index %d times", gatedStats.IndexProbes)
	}
	got, want := multiset(gated), multiset(plain)
	if len(got) != len(want) {
		t.Fatalf("gating changed the AFD: %d vs %d results", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("gating changed the AFD at %q", k)
		}
	}
}

// TestApproxBlockAndPoolAccounting checks that the block size and the
// buffer pool now reach approximate scans: larger blocks read fewer
// simulated pages, and a warm pool absorbs repeat fetches.
func TestApproxBlockAndPoolAccounting(t *testing.T) {
	db := cleanDB(t, 7)
	amin := &Amin{S: ExactSim{}}
	_, tupleAtATime, err := FullDisjunction(db, amin, 0.5, core.Options{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if tupleAtATime.PageReads == 0 {
		t.Fatal("approx scans record no page reads at all")
	}
	_, blocked, err := FullDisjunction(db, amin, 0.5, core.Options{UseIndex: true, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if blocked.PageReads >= tupleAtATime.PageReads {
		t.Errorf("block size 4 read %d pages, tuple-at-a-time %d — no reduction",
			blocked.PageReads, tupleAtATime.PageReads)
	}
	pool := storage.NewBufferPool(1024)
	_, pooled, err := FullDisjunction(db, amin, 0.5,
		core.Options{UseIndex: true, BlockSize: 4, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if pooled.PageReads >= blocked.PageReads {
		t.Errorf("warm buffer pool read %d pages, poolless run %d — no hits",
			pooled.PageReads, blocked.PageReads)
	}
}
