package approx

import (
	"repro/internal/relation"
	"repro/internal/tupleset"
)

// Join is an approximate join function A (Section 6). Implementations
// must be acceptable:
//
//	(i)  A(T) = 0 whenever T is not connected;
//	(ii) T ⊆ T' connected ⟹ A(T) ≥ A(T') (monotone non-increasing).
type Join interface {
	// Name identifies the function in reports.
	Name() string
	// Score computes A(T) ∈ [0, 1].
	Score(u *tupleset.Universe, t *tupleset.Set) float64
	// MaximalSubsets returns every maximal tuple set T' ⊆ T ∪ {tb} that
	// contains tb and has A(T') ≥ τ, under the precondition A(T) ≥ τ
	// (line 8 of APPROXGETNEXTRESULT, Definition 6.4). A member of T
	// from tb's relation is treated as conflicting and excluded first.
	MaximalSubsets(u *tupleset.Universe, t *tupleset.Set, tb relation.Ref, tau float64) []*tupleset.Set
	// EfficientlyComputable reports whether MaximalSubsets runs in
	// polynomial time (Definition 6.4). Amin is (Proposition 6.5);
	// Aprod is not known to be.
	EfficientlyComputable() bool
}

// connectedPairs calls fn for every pair of members whose relations are
// connected.
func connectedPairs(u *tupleset.Universe, t *tupleset.Set, fn func(a, b relation.Ref)) {
	refs := t.Refs()
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			if u.DB.ConnectedRelations(int(refs[i].Rel), int(refs[j].Rel)) {
				fn(refs[i], refs[j])
			}
		}
	}
}

// Amin is the paper's Amin (Example 6.1): 0 when T is not connected,
// prob(t) for a singleton {t}, and otherwise the minimum over all
// member probabilities and all similarities of connected member pairs.
// Amin is acceptable and efficiently computable (Proposition 6.5).
type Amin struct {
	S Sim
}

// Name implements Join.
func (a *Amin) Name() string { return "Amin" }

// EfficientlyComputable implements Join.
func (a *Amin) EfficientlyComputable() bool { return true }

// Score implements Join.
func (a *Amin) Score(u *tupleset.Universe, t *tupleset.Set) float64 {
	if !u.Connected(t) {
		return 0
	}
	minV := 1.0
	for _, ref := range t.Refs() {
		if p := u.DB.Prob(ref); p < minV {
			minV = p
		}
	}
	if t.Len() == 1 {
		return minV // prob(t) for singletons
	}
	connectedPairs(u, t, func(x, y relation.Ref) {
		if s := a.S.Sim(u.DB, x, y); s < minV {
			minV = s
		}
	})
	return minV
}

// MaximalSubsets implements Join per the constructive proof of
// Proposition 6.5.
func (a *Amin) MaximalSubsets(u *tupleset.Universe, t *tupleset.Set, tb relation.Ref, tau float64) []*tupleset.Set {
	// Drop a conflicting member of tb's relation, if any.
	base := t
	if idx, ok := t.Member(int(tb.Rel)); ok {
		if idx == tb {
			return nil // tb already in T: nothing new
		}
		base = t.Clone()
		base.Remove(int(tb.Rel))
	}
	// Case 1: the whole union qualifies.
	whole := base.Clone().Add(tb)
	if a.Score(u, whole) >= tau {
		return []*tupleset.Set{whole}
	}
	// Case 2: tb alone is below threshold: no subset containing tb
	// qualifies (probabilities only shrink the minimum).
	if u.DB.Prob(tb) < tau {
		return nil
	}
	// Case 3: remove every member connected to tb with sim < τ, then
	// keep the connected component of tb. The survivors qualify: pairs
	// within T carry sims ≥ τ (A(T) ≥ τ), pairs with tb survived the
	// filter, and probs within T are ≥ τ.
	words := u.Conn.Words()
	mask := make([]uint64, 2*words)
	comp := mask[words:]
	mask = mask[:words:words]
	for _, ref := range base.Refs() {
		if !u.DB.ConnectedRelations(int(ref.Rel), int(tb.Rel)) ||
			a.S.Sim(u.DB, ref, tb) >= tau {
			mask[ref.Rel/64] |= 1 << (uint(ref.Rel) % 64)
		}
	}
	mask[tb.Rel/64] |= 1 << (uint(tb.Rel) % 64)
	u.Conn.ComponentOfBitsInto(comp, mask, int(tb.Rel))
	out := u.NewSet().Add(tb)
	for _, ref := range base.Refs() {
		if comp[ref.Rel/64]&(1<<(uint(ref.Rel)%64)) != 0 {
			out.Add(ref)
		}
	}
	return []*tupleset.Set{out}
}

// Aprod is the paper's Aprod (Example 6.1): 0 when T is not connected,
// 1 for singletons, and otherwise the product of the similarities of
// all connected member pairs. Aprod is acceptable but not known to be
// efficiently computable; MaximalSubsets falls back to exhaustive
// subset search over T ∪ {tb} (|T| ≤ n, so this is exponential only in
// the number of relations — exactly the caveat the paper attaches to
// line 8).
type Aprod struct {
	S Sim
}

// Name implements Join.
func (a *Aprod) Name() string { return "Aprod" }

// EfficientlyComputable implements Join.
func (a *Aprod) EfficientlyComputable() bool { return false }

// Score implements Join.
func (a *Aprod) Score(u *tupleset.Universe, t *tupleset.Set) float64 {
	if !u.Connected(t) {
		return 0
	}
	if t.Len() == 1 {
		return 1
	}
	prod := 1.0
	connectedPairs(u, t, func(x, y relation.Ref) {
		prod *= a.S.Sim(u.DB, x, y)
	})
	return prod
}

// MaximalSubsets implements Join by generic search: it enumerates the
// connected subsets of T ∪ {tb} that contain tb and score at least τ
// (growing one tuple at a time — complete because Aprod is acceptable)
// and keeps the maximal ones.
func (a *Aprod) MaximalSubsets(u *tupleset.Universe, t *tupleset.Set, tb relation.Ref, tau float64) []*tupleset.Set {
	return genericMaximalSubsets(u, a, t, tb, tau)
}

// genericMaximalSubsets is the assumption-free fallback for any
// acceptable Join.
func genericMaximalSubsets(u *tupleset.Universe, a Join, t *tupleset.Set, tb relation.Ref, tau float64) []*tupleset.Set {
	if idx, ok := t.Member(int(tb.Rel)); ok && idx == tb {
		return nil
	}
	candidates := make([]relation.Ref, 0, t.Len())
	for _, ref := range t.Refs() {
		if ref.Rel == tb.Rel { // conflicting member excluded
			continue
		}
		candidates = append(candidates, ref)
	}
	seed := u.Singleton(tb)
	if a.Score(u, seed) < tau {
		return nil
	}
	seen := map[string]*tupleset.Set{seed.Key(): seed}
	frontier := []*tupleset.Set{seed}
	for len(frontier) > 0 {
		var next []*tupleset.Set
		for _, s := range frontier {
			for _, ref := range candidates {
				if s.HasRelation(int(ref.Rel)) || !u.ConnectedWith(s, ref) {
					continue
				}
				ext := s.Clone().Add(ref)
				if a.Score(u, ext) < tau {
					continue
				}
				if _, ok := seen[ext.Key()]; !ok {
					seen[ext.Key()] = ext
					next = append(next, ext)
				}
			}
		}
		frontier = next
	}
	var out []*tupleset.Set
	for _, s := range seen {
		maximal := true
		for _, ref := range candidates {
			if s.HasRelation(int(ref.Rel)) || !u.ConnectedWith(s, ref) {
				continue
			}
			if a.Score(u, s.Clone().Add(ref)) >= tau {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, s)
		}
	}
	tupleset.SortSets(u.DB, out)
	return out
}
