package approx

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tupleset"
)

// EquiCompatible reports whether the qualifying-set predicate of a
// (A(T) ≥ τ for τ > 0) implies pairwise exact join consistency of every
// connected member pair — the property that makes the equi-join
// candidate index exhaustive for a's extension and discovery walks.
// It holds for Amin and Aprod over ExactSim, where every connected-pair
// similarity is 1 exactly when the pair joins; a graded similarity
// (Levenshtein, a table) admits extensions that never equi-match, so
// candidate-only scans would miss results.
func EquiCompatible(a Join) bool {
	switch j := a.(type) {
	case *Amin:
		_, ok := j.S.(ExactSim)
		return ok
	case *Aprod:
		_, ok := j.S.(ExactSim)
		return ok
	}
	return false
}

// ScanOptions adjusts opts for scanning under a: the equi-join
// candidate index stays enabled only when a is equi-compatible, so an
// approximate enumeration can never silently lose results to
// candidate-only scans.
func ScanOptions(a Join, opts core.Options) core.Options {
	if !EquiCompatible(a) {
		opts.UseJoinIndex = false
	}
	return opts
}

// Enumerator incrementally produces AFDi(R, A, τ) — the tuple sets of
// the (A,τ)-approximate full disjunction that contain a tuple of the
// seed relation — one result per Next call (APPROXINCREMENTALFD and
// APPROXGETNEXTRESULT, Figs 5–6).
type Enumerator struct {
	u          *tupleset.Universe
	seed       int
	a          Join
	tau        float64
	stats      core.Stats
	scan       *core.Scanner
	incomplete []*tupleset.Set
	complete   *core.CompleteStore
	// minIdx is the delta-mode anchor floor (see core.Enumerator):
	// NewDeltaEnumerator restricts the enumeration to results whose
	// seed-relation member is an appended tuple. Zero enumerates all of
	// AFDi(R, A, τ).
	minIdx int32
}

// NewEnumerator prepares the enumeration. Incomplete is initialised
// with {t} for every seed-relation tuple t with A({t}) ≥ τ (Fig 5,
// line 3 — the starred initialisation change). Database scans honour
// the engine knobs of opts: block size, buffer pool, hash index for
// the Complete store, and — when a is equi-compatible — candidate-only
// scans over the equi-join posting index.
func NewEnumerator(db *relation.Database, seed int, a Join, tau float64, opts core.Options) (*Enumerator, error) {
	if seed < 0 || seed >= db.NumRelations() {
		return nil, fmt.Errorf("approx: seed relation %d out of range [0,%d)", seed, db.NumRelations())
	}
	if a == nil {
		return nil, fmt.Errorf("approx: nil approximate join function")
	}
	if tau <= 0 || tau > 1 {
		return nil, fmt.Errorf("approx: threshold %v outside (0,1]", tau)
	}
	u := tupleset.NewUniverse(db)
	e := &Enumerator{u: u, seed: seed, a: a, tau: tau,
		// Always hash-indexed (pre-Options behaviour): UseIndex governs
		// the §7 lists of the exact engine, not the dup-check store.
		complete: core.NewCompleteStore(u, true)}
	e.scan = core.NewScanner(db, ScanOptions(a, opts), 0, &e.stats)
	rel := db.Relation(seed)
	for i := 0; i < rel.Len(); i++ {
		s := u.Singleton(relation.Ref{Rel: int32(seed), Idx: int32(i)})
		e.stats.JCCChecks++
		if a.Score(u, s) >= tau {
			e.incomplete = append(e.incomplete, s)
		}
	}
	return e, nil
}

// NewDeltaEnumerator prepares the delta enumeration of an append under
// an approximate join: db is the extended database, whose relation
// seed received appended tuples at indices firstNew..Len-1, and the
// enumeration produces exactly the members of AFD(R, A, τ) that
// contain an appended tuple. The argument mirrors core's
// NewDeltaEnumerator: a qualifying set holds at most one seed-relation
// tuple, its anchor is invariant under extension and TryAbsorb merges
// (two seed-relation tuples always conflict), so seeding with the
// qualifying appended singletons and flooring discovered anchors at
// firstNew restricts Fig 5/6 to the new anchors without disturbing
// their maximality or uniqueness guarantees.
func NewDeltaEnumerator(db *relation.Database, seed, firstNew int, a Join, tau float64, opts core.Options) (*Enumerator, error) {
	if seed < 0 || seed >= db.NumRelations() {
		return nil, fmt.Errorf("approx: seed relation %d out of range [0,%d)", seed, db.NumRelations())
	}
	if a == nil {
		return nil, fmt.Errorf("approx: nil approximate join function")
	}
	if tau <= 0 || tau > 1 {
		return nil, fmt.Errorf("approx: threshold %v outside (0,1]", tau)
	}
	rel := db.Relation(seed)
	if firstNew < 0 || firstNew > rel.Len() {
		return nil, fmt.Errorf("approx: delta first-new index %d out of range [0,%d]", firstNew, rel.Len())
	}
	u := tupleset.NewUniverse(db)
	e := &Enumerator{u: u, seed: seed, a: a, tau: tau, minIdx: int32(firstNew),
		complete: core.NewCompleteStore(u, true)}
	e.scan = core.NewScanner(db, ScanOptions(a, opts), 0, &e.stats)
	for i := firstNew; i < rel.Len(); i++ {
		s := u.Singleton(relation.Ref{Rel: int32(seed), Idx: int32(i)})
		e.stats.JCCChecks++
		if a.Score(u, s) >= tau {
			e.incomplete = append(e.incomplete, s)
		}
	}
	return e, nil
}

// Stats returns the accumulated counters.
func (e *Enumerator) Stats() core.Stats { return e.stats }

// Next produces the next result of AFDi(R, A, τ), or ok=false when the
// enumeration is done.
func (e *Enumerator) Next() (*tupleset.Set, bool) {
	if len(e.incomplete) == 0 {
		return nil, false
	}
	// Line 1: remove a tuple set from Incomplete.
	T := e.incomplete[0]
	e.incomplete = e.incomplete[1:]
	e.stats.Iterations++

	result := getNextResult(e.u, e.seed, e.a, e.tau, e.scan, e.minIdx, T, (*fifoPool)(e), e.complete, &e.stats)

	e.complete.Add(result)
	e.stats.Emitted++
	if resident := len(e.incomplete) + e.complete.Len(); resident > e.stats.MaxResident {
		e.stats.MaxResident = resident
	}
	return result, true
}

// Pool abstracts the Incomplete container of APPROXGETNEXTRESULT: the
// FIFO of Fig 5 or a priority queue for the ranked adaptation the paper
// sketches at the end of Section 6.
type Pool interface {
	// TryAbsorb merges t into a stored set S when A(S ∪ t) ≥ τ
	// (lines 14–15, starred); anchor is t's seed-relation tuple.
	TryAbsorb(t *tupleset.Set, anchor relation.Ref, stats *core.Stats) bool
	// Push appends a new tuple set (line 18).
	Push(t *tupleset.Set)
}

// fifoPool adapts Enumerator's slice-backed Incomplete list to Pool.
type fifoPool Enumerator

func (p *fifoPool) Push(t *tupleset.Set) { p.incomplete = append(p.incomplete, t) }

func (p *fifoPool) TryAbsorb(t *tupleset.Set, anchor relation.Ref, stats *core.Stats) bool {
	e := (*Enumerator)(p)
	for i, s := range e.incomplete {
		member, ok := s.Member(e.seed)
		if !ok || member != anchor {
			continue
		}
		stats.ListScans++
		merged, ok := TryMerge(e.u, e.a, e.tau, s, t, stats)
		if ok {
			e.incomplete[i] = merged
			return true
		}
	}
	return false
}

// TryMerge attempts the starred line-14 merge: it returns S ∪ t when
// the union is conflict-free and scores at least τ.
func TryMerge(u *tupleset.Universe, a Join, tau float64, s, t *tupleset.Set, stats *core.Stats) (*tupleset.Set, bool) {
	if conflicts(s, t) {
		return nil, false
	}
	stats.JCCChecks++
	union := u.Union(s, t)
	if a.Score(u, union) >= tau {
		return union, true
	}
	return nil, false
}

// GetNextResult is APPROXGETNEXTRESULT (Fig 6) minus the pop of line 1,
// which the caller performs. T is extended into the result and
// returned; newly discovered candidate subsets land in pool. Database
// scans honour opts (block size, buffer pool, join index gated on a's
// equi-compatibility).
func GetNextResult(u *tupleset.Universe, seed int, a Join, tau float64, opts core.Options,
	T *tupleset.Set, pool Pool, complete *core.CompleteStore, stats *core.Stats) *tupleset.Set {
	scan := core.NewScanner(u.DB, ScanOptions(a, opts), 0, stats)
	return getNextResult(u, seed, a, tau, scan, 0, T, pool, complete, stats)
}

// getNextResult additionally takes minIdx, the delta-mode anchor floor:
// a discovered candidate whose seed-relation tuple has index < minIdx
// is dropped at line 9 exactly as one with no seed tuple is. With
// minIdx = 0 this is APPROXGETNEXTRESULT verbatim.
func getNextResult(u *tupleset.Universe, seed int, a Join, tau float64, scan *core.Scanner,
	minIdx int32, T *tupleset.Set, pool Pool, complete *core.CompleteStore, stats *core.Stats) *tupleset.Set {

	// Lines 2–6 (starred): extend T maximally under A(T ∪ {tg}) ≥ τ.
	// With the join index (equi-compatible a only) each sweep visits the
	// equi-match candidates of the current members; a tuple reachable
	// only through a member added mid-sweep becomes a candidate in the
	// next sweep, so the fixpoint is still maximal.
	for changed := true; changed; {
		changed = false
		scan.ForEachExtension(T, func(ref relation.Ref) bool {
			if T.Has(ref) || T.HasRelation(int(ref.Rel)) {
				return true
			}
			if !u.ConnectedWith(T, ref) {
				return true
			}
			ext := T.Clone().Add(ref)
			stats.JCCChecks++
			if a.Score(u, ext) >= tau {
				T = ext
				changed = true
			}
			return true
		})
	}

	// Lines 7–18 (starred): candidate discovery over every maximal
	// qualifying subset of T ∪ {tb} containing tb.
	scan.ForEachDiscovery(T, seed, func(tb relation.Ref) bool {
		if T.Has(tb) {
			return true
		}
		for _, tPrime := range a.MaximalSubsets(u, T, tb, tau) {
			stats.JCCChecks++
			anchor, hasSeed := tPrime.Member(seed)
			if !hasSeed || anchor.Idx < minIdx {
				continue // line 9: T' lacks a (delta-mode: new) tuple of Ri
			}
			if complete.ContainsSuperset(tPrime, anchor, stats) {
				continue // line 11
			}
			if pool.TryAbsorb(tPrime, anchor, stats) {
				continue // lines 14–15 (starred predicate)
			}
			pool.Push(tPrime) // line 18
		}
		return true
	})
	return T
}

func conflicts(a, b *tupleset.Set) bool {
	for _, ref := range b.Refs() {
		if m, ok := a.Member(int(ref.Rel)); ok && m != ref {
			return true
		}
	}
	return false
}

// All drains the enumeration.
func (e *Enumerator) All() []*tupleset.Set {
	var out []*tupleset.Set
	for {
		t, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// AFDi computes AFDi(R, A, τ) to completion.
func AFDi(db *relation.Database, seed int, a Join, tau float64, opts core.Options) ([]*tupleset.Set, core.Stats, error) {
	e, err := NewEnumerator(db, seed, a, tau, opts)
	if err != nil {
		return nil, core.Stats{}, err
	}
	out := e.All()
	return out, e.Stats(), nil
}

// Cursor is the pull-based form of Stream: a suspended enumeration of
// AFD(R, A, τ) producing one result per Next call. The suspended state
// is explicit — the current per-relation pass and its Enumerator — so a
// cursor holds no goroutine and abandoning one with Close leaks
// nothing.
//
// A Cursor is not safe for concurrent use.
type Cursor struct {
	ctx    context.Context
	db     *relation.Database
	a      Join
	tau    float64
	opts   core.Options
	total  core.Stats
	pass   int
	e      *Enumerator
	err    error
	closed bool
}

// NewCursor prepares a pull-based enumeration of AFD(R, A, τ). No work
// happens until the first Next call. Cancelling ctx makes the next
// step fail promptly: Next returns ok=false within one
// APPROXGETNEXTRESULT iteration and Err reports ctx.Err(). A nil ctx
// means context.Background().
func NewCursor(ctx context.Context, db *relation.Database, a Join, tau float64, opts core.Options) (*Cursor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if a == nil {
		return nil, fmt.Errorf("approx: nil approximate join function")
	}
	if tau <= 0 || tau > 1 {
		return nil, fmt.Errorf("approx: threshold %v outside (0,1]", tau)
	}
	return &Cursor{ctx: ctx, db: db, a: a, tau: tau, opts: opts}, nil
}

// Next produces the next member of AFD(R, A, τ), or ok=false when the
// enumeration is exhausted, closed, cancelled, or failed (check Err).
// A result is emitted once, by the pass of its minimal relation.
func (c *Cursor) Next() (*tupleset.Set, bool) {
	if c.closed || c.err != nil {
		return nil, false
	}
	for {
		if err := c.ctx.Err(); err != nil {
			c.err = err
			return nil, false
		}
		if c.e == nil {
			if c.pass >= c.db.NumRelations() {
				return nil, false
			}
			e, err := NewEnumerator(c.db, c.pass, c.a, c.tau, c.opts)
			if err != nil {
				c.err = err
				return nil, false
			}
			c.e = e
		}
		t, ok := c.e.Next()
		if !ok {
			c.foldPass()
			c.pass++
			continue
		}
		if minRel(t) != c.pass {
			continue // already emitted by an earlier pass
		}
		c.total.Emitted++
		return t, true
	}
}

// foldPass folds the in-flight enumerator's counters into the total;
// Emitted is zeroed because the cursor counts emissions itself.
func (c *Cursor) foldPass() {
	if c.e == nil {
		return
	}
	s := c.e.Stats()
	s.Emitted = 0
	c.total.Add(s)
	c.e = nil
}

// Stats returns a snapshot of the counters accumulated so far,
// including the in-flight pass.
func (c *Cursor) Stats() core.Stats {
	s := c.total
	if c.e != nil {
		es := c.e.Stats()
		es.Emitted = 0
		s.Add(es)
	}
	return s
}

// Err returns the error that terminated the enumeration, if any.
func (c *Cursor) Err() error { return c.err }

// Close abandons the enumeration; idempotent, leaks nothing.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.foldPass()
	c.closed = true
}

// Stream computes the whole AFD(R, A, τ) incrementally, yielding each
// result once (a result is emitted by the pass of its minimal
// relation). Enumeration stops early when yield returns false. It is
// the push-style rendering of a Cursor.
func Stream(db *relation.Database, a Join, tau float64, opts core.Options, yield func(*tupleset.Set) bool) (core.Stats, error) {
	c, err := NewCursor(context.Background(), db, a, tau, opts)
	if err != nil {
		return core.Stats{}, err
	}
	defer c.Close()
	for {
		t, ok := c.Next()
		if !ok {
			return c.Stats(), c.Err()
		}
		if !yield(t) {
			return c.Stats(), nil
		}
	}
}

func minRel(t *tupleset.Set) int {
	for _, ref := range t.Refs() {
		return int(ref.Rel)
	}
	return -1
}

// FullDisjunction computes AFD(R, A, τ) to completion.
func FullDisjunction(db *relation.Database, a Join, tau float64, opts core.Options) ([]*tupleset.Set, core.Stats, error) {
	var out []*tupleset.Set
	stats, err := Stream(db, a, tau, opts, func(t *tupleset.Set) bool {
		out = append(out, t)
		return true
	})
	return out, stats, err
}
