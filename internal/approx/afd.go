package approx

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tupleset"
)

// Enumerator incrementally produces AFDi(R, A, τ) — the tuple sets of
// the (A,τ)-approximate full disjunction that contain a tuple of the
// seed relation — one result per Next call (APPROXINCREMENTALFD and
// APPROXGETNEXTRESULT, Figs 5–6).
type Enumerator struct {
	u          *tupleset.Universe
	seed       int
	a          Join
	tau        float64
	stats      core.Stats
	incomplete []*tupleset.Set
	complete   *core.CompleteStore
}

// NewEnumerator prepares the enumeration. Incomplete is initialised
// with {t} for every seed-relation tuple t with A({t}) ≥ τ (Fig 5,
// line 3 — the starred initialisation change).
func NewEnumerator(db *relation.Database, seed int, a Join, tau float64) (*Enumerator, error) {
	if seed < 0 || seed >= db.NumRelations() {
		return nil, fmt.Errorf("approx: seed relation %d out of range [0,%d)", seed, db.NumRelations())
	}
	if a == nil {
		return nil, fmt.Errorf("approx: nil approximate join function")
	}
	if tau <= 0 || tau > 1 {
		return nil, fmt.Errorf("approx: threshold %v outside (0,1]", tau)
	}
	u := tupleset.NewUniverse(db)
	e := &Enumerator{u: u, seed: seed, a: a, tau: tau, complete: core.NewCompleteStore(u, true)}
	rel := db.Relation(seed)
	for i := 0; i < rel.Len(); i++ {
		s := u.Singleton(relation.Ref{Rel: int32(seed), Idx: int32(i)})
		e.stats.JCCChecks++
		if a.Score(u, s) >= tau {
			e.incomplete = append(e.incomplete, s)
		}
	}
	return e, nil
}

// Stats returns the accumulated counters.
func (e *Enumerator) Stats() core.Stats { return e.stats }

// Next produces the next result of AFDi(R, A, τ), or ok=false when the
// enumeration is done.
func (e *Enumerator) Next() (*tupleset.Set, bool) {
	if len(e.incomplete) == 0 {
		return nil, false
	}
	// Line 1: remove a tuple set from Incomplete.
	T := e.incomplete[0]
	e.incomplete = e.incomplete[1:]
	e.stats.Iterations++

	result := GetNextResult(e.u, e.seed, e.a, e.tau, T, (*fifoPool)(e), e.complete, &e.stats)

	e.complete.Add(result)
	e.stats.Emitted++
	if resident := len(e.incomplete) + e.complete.Len(); resident > e.stats.MaxResident {
		e.stats.MaxResident = resident
	}
	return result, true
}

// Pool abstracts the Incomplete container of APPROXGETNEXTRESULT: the
// FIFO of Fig 5 or a priority queue for the ranked adaptation the paper
// sketches at the end of Section 6.
type Pool interface {
	// TryAbsorb merges t into a stored set S when A(S ∪ t) ≥ τ
	// (lines 14–15, starred); anchor is t's seed-relation tuple.
	TryAbsorb(t *tupleset.Set, anchor relation.Ref, stats *core.Stats) bool
	// Push appends a new tuple set (line 18).
	Push(t *tupleset.Set)
}

// fifoPool adapts Enumerator's slice-backed Incomplete list to Pool.
type fifoPool Enumerator

func (p *fifoPool) Push(t *tupleset.Set) { p.incomplete = append(p.incomplete, t) }

func (p *fifoPool) TryAbsorb(t *tupleset.Set, anchor relation.Ref, stats *core.Stats) bool {
	e := (*Enumerator)(p)
	for i, s := range e.incomplete {
		member, ok := s.Member(e.seed)
		if !ok || member != anchor {
			continue
		}
		stats.ListScans++
		merged, ok := TryMerge(e.u, e.a, e.tau, s, t, stats)
		if ok {
			e.incomplete[i] = merged
			return true
		}
	}
	return false
}

// TryMerge attempts the starred line-14 merge: it returns S ∪ t when
// the union is conflict-free and scores at least τ.
func TryMerge(u *tupleset.Universe, a Join, tau float64, s, t *tupleset.Set, stats *core.Stats) (*tupleset.Set, bool) {
	if conflicts(s, t) {
		return nil, false
	}
	stats.JCCChecks++
	union := u.Union(s, t)
	if a.Score(u, union) >= tau {
		return union, true
	}
	return nil, false
}

// GetNextResult is APPROXGETNEXTRESULT (Fig 6) minus the pop of line 1,
// which the caller performs. T is extended into the result and
// returned; newly discovered candidate subsets land in pool.
func GetNextResult(u *tupleset.Universe, seed int, a Join, tau float64, T *tupleset.Set,
	pool Pool, complete *core.CompleteStore, stats *core.Stats) *tupleset.Set {

	// Lines 2–6 (starred): extend T maximally under A(T ∪ {tg}) ≥ τ.
	for changed := true; changed; {
		changed = false
		u.DB.ForEachRef(func(ref relation.Ref) bool {
			stats.TuplesScanned++
			if T.Has(ref) || T.HasRelation(int(ref.Rel)) {
				return true
			}
			if !u.ConnectedWith(T, ref) {
				return true
			}
			ext := T.Clone().Add(ref)
			stats.JCCChecks++
			if a.Score(u, ext) >= tau {
				T = ext
				changed = true
			}
			return true
		})
	}

	// Lines 7–18 (starred): candidate discovery over every maximal
	// qualifying subset of T ∪ {tb} containing tb.
	u.DB.ForEachRef(func(tb relation.Ref) bool {
		stats.TuplesScanned++
		if T.Has(tb) {
			return true
		}
		for _, tPrime := range a.MaximalSubsets(u, T, tb, tau) {
			stats.JCCChecks++
			anchor, hasSeed := tPrime.Member(seed)
			if !hasSeed {
				continue // line 9: T' lacks a tuple of Ri
			}
			if complete.ContainsSuperset(tPrime, anchor, stats) {
				continue // line 11
			}
			if pool.TryAbsorb(tPrime, anchor, stats) {
				continue // lines 14–15 (starred predicate)
			}
			pool.Push(tPrime) // line 18
		}
		return true
	})
	return T
}

func conflicts(a, b *tupleset.Set) bool {
	for _, ref := range b.Refs() {
		if m, ok := a.Member(int(ref.Rel)); ok && m != ref {
			return true
		}
	}
	return false
}

// All drains the enumeration.
func (e *Enumerator) All() []*tupleset.Set {
	var out []*tupleset.Set
	for {
		t, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// AFDi computes AFDi(R, A, τ) to completion.
func AFDi(db *relation.Database, seed int, a Join, tau float64) ([]*tupleset.Set, core.Stats, error) {
	e, err := NewEnumerator(db, seed, a, tau)
	if err != nil {
		return nil, core.Stats{}, err
	}
	out := e.All()
	return out, e.Stats(), nil
}

// Cursor is the pull-based form of Stream: a suspended enumeration of
// AFD(R, A, τ) producing one result per Next call. The suspended state
// is explicit — the current per-relation pass and its Enumerator — so a
// cursor holds no goroutine and abandoning one with Close leaks
// nothing.
//
// A Cursor is not safe for concurrent use.
type Cursor struct {
	db     *relation.Database
	a      Join
	tau    float64
	total  core.Stats
	pass   int
	e      *Enumerator
	err    error
	closed bool
}

// NewCursor prepares a pull-based enumeration of AFD(R, A, τ). No work
// happens until the first Next call.
func NewCursor(db *relation.Database, a Join, tau float64) (*Cursor, error) {
	if a == nil {
		return nil, fmt.Errorf("approx: nil approximate join function")
	}
	if tau <= 0 || tau > 1 {
		return nil, fmt.Errorf("approx: threshold %v outside (0,1]", tau)
	}
	return &Cursor{db: db, a: a, tau: tau}, nil
}

// Next produces the next member of AFD(R, A, τ), or ok=false when the
// enumeration is exhausted, closed, or failed (check Err). A result is
// emitted once, by the pass of its minimal relation.
func (c *Cursor) Next() (*tupleset.Set, bool) {
	if c.closed || c.err != nil {
		return nil, false
	}
	for {
		if c.e == nil {
			if c.pass >= c.db.NumRelations() {
				return nil, false
			}
			e, err := NewEnumerator(c.db, c.pass, c.a, c.tau)
			if err != nil {
				c.err = err
				return nil, false
			}
			c.e = e
		}
		t, ok := c.e.Next()
		if !ok {
			c.foldPass()
			c.pass++
			continue
		}
		if minRel(t) != c.pass {
			continue // already emitted by an earlier pass
		}
		c.total.Emitted++
		return t, true
	}
}

// foldPass folds the in-flight enumerator's counters into the total;
// Emitted is zeroed because the cursor counts emissions itself.
func (c *Cursor) foldPass() {
	if c.e == nil {
		return
	}
	s := c.e.Stats()
	s.Emitted = 0
	c.total.Add(s)
	c.e = nil
}

// Stats returns a snapshot of the counters accumulated so far,
// including the in-flight pass.
func (c *Cursor) Stats() core.Stats {
	s := c.total
	if c.e != nil {
		es := c.e.Stats()
		es.Emitted = 0
		s.Add(es)
	}
	return s
}

// Err returns the error that terminated the enumeration, if any.
func (c *Cursor) Err() error { return c.err }

// Close abandons the enumeration; idempotent, leaks nothing.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.foldPass()
	c.closed = true
}

// Stream computes the whole AFD(R, A, τ) incrementally, yielding each
// result once (a result is emitted by the pass of its minimal
// relation). Enumeration stops early when yield returns false. It is
// the push-style rendering of a Cursor.
func Stream(db *relation.Database, a Join, tau float64, yield func(*tupleset.Set) bool) (core.Stats, error) {
	c, err := NewCursor(db, a, tau)
	if err != nil {
		return core.Stats{}, err
	}
	defer c.Close()
	for {
		t, ok := c.Next()
		if !ok {
			return c.Stats(), c.Err()
		}
		if !yield(t) {
			return c.Stats(), nil
		}
	}
}

func minRel(t *tupleset.Set) int {
	for _, ref := range t.Refs() {
		return int(ref.Rel)
	}
	return -1
}

// FullDisjunction computes AFD(R, A, τ) to completion.
func FullDisjunction(db *relation.Database, a Join, tau float64) ([]*tupleset.Set, core.Stats, error) {
	var out []*tupleset.Set
	stats, err := Stream(db, a, tau, func(t *tupleset.Set) bool {
		out = append(out, t)
		return true
	})
	return out, stats, err
}
