// Package approx implements Section 6 of Cohen & Sagiv 2007:
// approximate join functions built from per-tuple probabilities and
// pairwise similarities, the acceptable/efficiently-computable classes,
// and APPROXINCREMENTALFD (Figs 5–6), which emits the (A,τ)-approximate
// full disjunction in incremental polynomial time (Theorem 6.6).
package approx

import (
	"repro/internal/relation"
)

// Sim supplies the symmetric similarity sim(t, t') between pairs of
// tuples from connected relations, with values in [0, 1]. The paper
// leaves the construction of sim open (edit distance, tf-idf, ...);
// this package ships three models.
type Sim interface {
	// Sim returns the similarity of the two referenced tuples. Callers
	// only invoke it for tuples of connected (distinct) relations.
	Sim(db *relation.Database, a, b relation.Ref) float64
}

// ExactSim degrades similarity to exact join consistency: 1 when the
// tuples join, 0 otherwise. Under ExactSim with any τ > 0 the
// approximate full disjunction collapses to the exact one (modulo
// probabilities), which the tests exploit.
type ExactSim struct{}

// Sim implements Sim.
func (ExactSim) Sim(db *relation.Database, a, b relation.Ref) float64 {
	if db.JoinConsistent(a, b) {
		return 1
	}
	return 0
}

// SimTable looks similarities up by tuple label pair, falling back to
// ExactSim for pairs absent from the table. It reconstructs Fig 4 of
// the paper, whose edges annotate specific labelled pairs.
type SimTable struct {
	table map[[2]string]float64
}

// NewSimTable builds a table; entries may be given in either label
// order.
func NewSimTable(entries map[[2]string]float64) *SimTable {
	t := &SimTable{table: make(map[[2]string]float64, 2*len(entries))}
	for k, v := range entries {
		t.table[k] = v
		t.table[[2]string{k[1], k[0]}] = v
	}
	return t
}

// Sim implements Sim.
func (t *SimTable) Sim(db *relation.Database, a, b relation.Ref) float64 {
	la, lb := db.Tuple(a).Label, db.Tuple(b).Label
	if v, ok := t.table[[2]string{la, lb}]; ok {
		return v
	}
	return (ExactSim{}).Sim(db, a, b)
}

// LevenshteinSim scores a pair of tuples by the worst normalised edit
// similarity over their shared attributes: sim = min over shared A of
// 1 − dist(a[A], b[A]) / max(|a[A]|, |b[A]|). A null on a shared
// attribute contributes 0 (nothing approximately matches the unknown),
// matching the exact semantics in the limit. This is the
// "sound-alike/misspelling" model motivating Section 6.
//
// Similarity is the one consumer that genuinely needs text, so it reads
// dictionary codes first — null and exact-match cases resolve with
// integer compares — and decodes real datums through Dict.Lookup only
// when an edit distance must actually be computed.
type LevenshteinSim struct{}

// Sim implements Sim.
func (LevenshteinSim) Sim(db *relation.Database, a, b relation.Ref) float64 {
	pairs := db.SharedPositions(int(a.Rel), int(b.Rel))
	if len(pairs) == 0 {
		return 0
	}
	dict := db.Dict()
	minSim := 1.0
	for _, p := range pairs {
		ca, cb := db.Code(a, p.P1), db.Code(b, p.P2)
		s := codeSim(dict, ca, cb)
		if s < minSim {
			minSim = s
		}
	}
	return minSim
}

func codeSim(dict *relation.Dict, ca, cb int32) float64 {
	if ca == relation.NullCode || cb == relation.NullCode {
		return 0
	}
	if ca == cb {
		return 1
	}
	sa, sb := dict.Datum(ca), dict.Datum(cb)
	maxLen := len(sa)
	if len(sb) > maxLen {
		maxLen = len(sb)
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(sa, sb))/float64(maxLen)
}

// Levenshtein computes the classic edit distance (insert, delete,
// substitute, unit costs) between two strings, byte-wise.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // delete
			if v := cur[j-1] + 1; v < m { // insert
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitute
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
