package rank

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/relation"
	"repro/internal/tupleset"
)

// Result pairs a tuple set of the full disjunction with its rank.
type Result struct {
	Set  *tupleset.Set
	Rank float64
}

// Cursor is the pull-based form of StreamRanked: a suspended
// PRIORITYINCREMENTALFD enumeration producing one result per Next call,
// in non-increasing rank order. The suspended state is explicit (the
// per-relation priority queues and the Complete store), so a cursor
// holds no goroutine and abandoning one with Close leaks nothing.
//
// A Cursor is not safe for concurrent use.
type Cursor struct {
	ctx      context.Context
	u        *tupleset.Universe
	f        Func
	opts     core.Options
	queues   []*priorityQueue
	complete *core.CompleteStore
	stats    core.Stats
	err      error
	closed   bool
}

// NewCursor prepares a pull-based ranked enumeration. The Fig 3
// initialisation (lines 1–8: enumerate the JCC connected tuple sets of
// size ≤ c and merge each queue to a fixpoint) happens here, so the
// constructor carries the polynomial preprocessing cost of Lemma 5.3
// and every Next call is one queue extraction. Cancelling ctx aborts
// the preprocessing between queue merges and makes a later Next fail
// within one queue extraction with Err() == ctx.Err(). A nil ctx means
// context.Background().
func NewCursor(ctx context.Context, db *relation.Database, f Func, opts core.Options) (*Cursor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := Validate(f); err != nil {
		return nil, err
	}
	u := tupleset.NewUniverse(db)
	n := db.NumRelations()
	c := f.C()
	cur := &Cursor{ctx: ctx, u: u, f: f, opts: opts}

	// Lines 1–4: enumerate every JCC connected tuple set of size ≤ c
	// and distribute it to the queue of each relation it touches.
	small := naive.EnumerateConnected(u, func(s *tupleset.Set) bool {
		return s.Len() <= c && u.JCC(s)
	})
	perSeed := make([][]*tupleset.Set, n)
	for _, s := range small {
		for _, ref := range s.Refs() {
			perSeed[ref.Rel] = append(perSeed[ref.Rel], s.Clone())
		}
	}

	// Lines 5–8: merge mergeable pairs within each queue to a fixpoint,
	// establishing initialisation condition (iii) of Lemma 5.2.
	cur.queues = make([]*priorityQueue, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		merged := mergeFixpoint(u, perSeed[i], &cur.stats)
		cur.queues[i] = newPriorityQueue(u, i, f)
		for _, s := range merged {
			cur.queues[i].Push(s)
		}
	}
	// The duplicate-check store is always hash-indexed (as it was before
	// Options reached this family): UseIndex governs the §7 lists of the
	// exact engine, not this internal structure, and an unindexed store
	// degrades every emission to a linear ContainsSuperset scan.
	cur.complete = core.NewCompleteStore(u, true)
	return cur, nil
}

// Next produces the next result in rank order, or ok=false when the
// enumeration is exhausted, closed, or failed (check Err). It performs
// one iteration of Fig 3 lines 9–18: extract from the queue whose top
// ranks highest, extend it to a result, and emit it unless it was
// already printed via another queue.
func (c *Cursor) Next() (Result, bool) {
	if c.closed || c.err != nil {
		return Result{}, false
	}
	for {
		// One check per queue extraction: a cancelled enumeration stops
		// within one step of Fig 3's while loop.
		if err := c.ctx.Err(); err != nil {
			c.err = err
			return Result{}, false
		}
		best := -1
		var bestRank float64
		var bestKey string
		for i, q := range c.queues {
			top, r, ok := q.Top()
			if !ok {
				continue
			}
			if best < 0 || r > bestRank || (r == bestRank && top.Key() < bestKey) {
				best, bestRank, bestKey = i, r, top.Key()
			}
		}
		if best < 0 {
			return Result{}, false // all queues empty: FD exhausted
		}
		T, _ := c.queues[best].PopSet()
		result := core.GetNextResult(c.u, best, c.opts, 0, T, c.queues[best], c.complete, &c.stats)
		c.stats.Iterations++
		anchor, ok := result.Member(best)
		if !ok {
			c.err = fmt.Errorf("rank: internal error: result lacks seed tuple")
			return Result{}, false
		}
		if c.complete.ContainsSuperset(result, anchor, &c.stats) {
			continue // line 17: already printed via another queue
		}
		c.complete.Add(result)
		c.stats.Emitted++
		return Result{Set: result, Rank: c.f.Rank(c.u, result)}, true
	}
}

// Stats returns the counters accumulated so far.
func (c *Cursor) Stats() core.Stats { return c.stats }

// Err returns the error that terminated the enumeration, if any.
func (c *Cursor) Err() error { return c.err }

// Close abandons the enumeration; idempotent, leaks nothing.
func (c *Cursor) Close() { c.closed = true }

// StreamRanked implements PRIORITYINCREMENTALFD (Fig 3): it yields the
// tuple sets of FD(R) in non-increasing rank order under the
// monotonically c-determined ranking function f, stopping early when
// yield returns false. Lemma 5.4 guarantees the order; Lemma 5.3
// guarantees that the first k results cost time polynomial in the input
// and k. It is the push-style rendering of a Cursor.
func StreamRanked(db *relation.Database, f Func, opts core.Options, yield func(Result) bool) (core.Stats, error) {
	c, err := NewCursor(context.Background(), db, f, opts)
	if err != nil {
		return core.Stats{}, err
	}
	defer c.Close()
	for {
		r, ok := c.Next()
		if !ok {
			return c.Stats(), c.Err()
		}
		if !yield(r) {
			return c.Stats(), nil
		}
	}
}

// mergeFixpoint repeatedly replaces mergeable pairs by their union
// until no pair can merge (Fig 3, lines 5–8). Containment pairs merge
// too (the union is the larger set), so the result is containment-free.
func mergeFixpoint(u *tupleset.Universe, sets []*tupleset.Set, stats *core.Stats) []*tupleset.Set {
	var sig tupleset.SigCounters
	defer stats.AddSig(&sig)
	out := append([]*tupleset.Set(nil), sets...)
	for {
		merged := false
	scan:
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				stats.JCCChecks++
				if u.UnionJCCCounted(out[i], out[j], &sig) {
					union := u.Union(out[i], out[j])
					out[i] = union
					out = append(out[:j], out[j+1:]...)
					merged = true
					break scan
				}
			}
		}
		if !merged {
			return out
		}
	}
}

// TopK solves the top-(k,f) full-disjunction problem (Theorem 5.5):
// the k highest-ranking tuple sets of FD(R), in rank order.
func TopK(db *relation.Database, f Func, k int, opts core.Options) ([]Result, core.Stats, error) {
	if k < 0 {
		return nil, core.Stats{}, fmt.Errorf("rank: negative k")
	}
	if k == 0 {
		return nil, core.Stats{}, nil
	}
	var out []Result
	stats, err := StreamRanked(db, f, opts, func(r Result) bool {
		out = append(out, r)
		return len(out) < k
	})
	return out, stats, err
}

// Threshold solves the (τ,f)-threshold full-disjunction problem
// (Remark 5.6): every tuple set T of FD(R) with f(T) ≥ τ, in rank
// order. Because results stream in non-increasing rank order, the
// enumeration stops at the first result below the threshold.
func Threshold(db *relation.Database, f Func, tau float64, opts core.Options) ([]Result, core.Stats, error) {
	var out []Result
	stats, err := StreamRanked(db, f, opts, func(r Result) bool {
		if r.Rank < tau {
			return false
		}
		out = append(out, r)
		return true
	})
	return out, stats, err
}
