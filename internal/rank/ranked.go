package rank

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/relation"
	"repro/internal/tupleset"
)

// Result pairs a tuple set of the full disjunction with its rank.
type Result struct {
	Set  *tupleset.Set
	Rank float64
}

// StreamRanked implements PRIORITYINCREMENTALFD (Fig 3): it yields the
// tuple sets of FD(R) in non-increasing rank order under the
// monotonically c-determined ranking function f, stopping early when
// yield returns false. Lemma 5.4 guarantees the order; Lemma 5.3
// guarantees that the first k results cost time polynomial in the input
// and k.
func StreamRanked(db *relation.Database, f Func, opts core.Options, yield func(Result) bool) (core.Stats, error) {
	var stats core.Stats
	if err := Validate(f); err != nil {
		return stats, err
	}
	u := tupleset.NewUniverse(db)
	n := db.NumRelations()
	c := f.C()

	// Lines 1–4: enumerate every JCC connected tuple set of size ≤ c
	// and distribute it to the queue of each relation it touches.
	small := naive.EnumerateConnected(u, func(s *tupleset.Set) bool {
		return s.Len() <= c && u.JCC(s)
	})
	perSeed := make([][]*tupleset.Set, n)
	for _, s := range small {
		for _, ref := range s.Refs() {
			perSeed[ref.Rel] = append(perSeed[ref.Rel], s.Clone())
		}
	}

	// Lines 5–8: merge mergeable pairs within each queue to a fixpoint,
	// establishing initialisation condition (iii) of Lemma 5.2.
	queues := make([]*priorityQueue, n)
	for i := 0; i < n; i++ {
		merged := mergeFixpoint(u, perSeed[i], &stats)
		queues[i] = newPriorityQueue(u, i, f)
		for _, s := range merged {
			queues[i].Push(s)
		}
	}

	complete := core.NewCompleteStore(u, true)

	// Lines 9–18: repeatedly extract from the queue whose top ranks
	// highest, extend it to a result, and print it unless it was
	// already printed via another queue.
	for {
		best := -1
		var bestRank float64
		var bestKey string
		for i, q := range queues {
			top, r, ok := q.Top()
			if !ok {
				continue
			}
			if best < 0 || r > bestRank || (r == bestRank && top.Key() < bestKey) {
				best, bestRank, bestKey = i, r, top.Key()
			}
		}
		if best < 0 {
			return stats, nil // all queues empty: FD exhausted
		}
		T, _ := queues[best].PopSet()
		result := core.GetNextResult(u, best, opts, 0, T, queues[best], complete, &stats)
		stats.Iterations++
		anchor, ok := result.Member(best)
		if !ok {
			return stats, fmt.Errorf("rank: internal error: result lacks seed tuple")
		}
		if complete.ContainsSuperset(result, anchor, &stats) {
			continue // line 17: already printed via another queue
		}
		complete.Add(result)
		stats.Emitted++
		if !yield(Result{Set: result, Rank: f.Rank(u, result)}) {
			return stats, nil
		}
	}
}

// mergeFixpoint repeatedly replaces mergeable pairs by their union
// until no pair can merge (Fig 3, lines 5–8). Containment pairs merge
// too (the union is the larger set), so the result is containment-free.
func mergeFixpoint(u *tupleset.Universe, sets []*tupleset.Set, stats *core.Stats) []*tupleset.Set {
	var sig tupleset.SigCounters
	defer stats.AddSig(&sig)
	out := append([]*tupleset.Set(nil), sets...)
	for {
		merged := false
	scan:
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				stats.JCCChecks++
				if u.UnionJCCCounted(out[i], out[j], &sig) {
					union := u.Union(out[i], out[j])
					out[i] = union
					out = append(out[:j], out[j+1:]...)
					merged = true
					break scan
				}
			}
		}
		if !merged {
			return out
		}
	}
}

// TopK solves the top-(k,f) full-disjunction problem (Theorem 5.5):
// the k highest-ranking tuple sets of FD(R), in rank order.
func TopK(db *relation.Database, f Func, k int, opts core.Options) ([]Result, core.Stats, error) {
	if k < 0 {
		return nil, core.Stats{}, fmt.Errorf("rank: negative k")
	}
	if k == 0 {
		return nil, core.Stats{}, nil
	}
	var out []Result
	stats, err := StreamRanked(db, f, opts, func(r Result) bool {
		out = append(out, r)
		return len(out) < k
	})
	return out, stats, err
}

// Threshold solves the (τ,f)-threshold full-disjunction problem
// (Remark 5.6): every tuple set T of FD(R) with f(T) ≥ τ, in rank
// order. Because results stream in non-increasing rank order, the
// enumeration stops at the first result below the threshold.
func Threshold(db *relation.Database, f Func, tau float64, opts core.Options) ([]Result, core.Stats, error) {
	var out []Result
	stats, err := StreamRanked(db, f, opts, func(r Result) bool {
		if r.Rank < tau {
			return false
		}
		out = append(out, r)
		return true
	})
	return out, stats, err
}
