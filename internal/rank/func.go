// Package rank implements Section 5 of Cohen & Sagiv 2007: ranking
// functions over tuple sets, the monotonically c-determined class, and
// PRIORITYINCREMENTALFD (Fig 3), which returns the answers of a full
// disjunction in ranking order — solving the top-(k,f) full-disjunction
// problem in polynomial time in the input and k (Theorem 5.5) — plus
// the (τ,f)-threshold variant of Remark 5.6.
package rank

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/tupleset"
)

// Func is a ranking function f over tuple sets. Every tuple carries an
// importance imp(t) (relation.Tuple.Imp); f combines the importances of
// a set's members into a single score.
type Func interface {
	// Name identifies the function in reports.
	Name() string
	// Rank computes f(T). It must run in polynomial time in |T|.
	Rank(u *tupleset.Universe, t *tupleset.Set) float64
	// C returns the determinacy bound c when f is monotonically
	// c-determined, or 0 when it is not (such functions cannot be used
	// with PriorityIncrementalFD; top-(1, fsum) is already NP-hard,
	// Proposition 5.1).
	C() int
}

// FMax is the paper's fmax: the maximum importance of any member.
// It is monotonically 1-determined.
type FMax struct{}

// Name implements Func.
func (FMax) Name() string { return "fmax" }

// C implements Func: fmax is 1-determined.
func (FMax) C() int { return 1 }

// Rank implements Func.
func (FMax) Rank(u *tupleset.Universe, t *tupleset.Set) float64 {
	best := 0.0
	for _, ref := range t.Refs() {
		if imp := u.DB.Imp(ref); imp > best {
			best = imp
		}
	}
	return best
}

// FSum is the paper's fsum: the sum of member importances. It is NOT
// c-determined for any constant c; Proposition 5.1 proves top-(1,fsum)
// NP-hard. It exists for the brute-force comparisons of experiment E7.
type FSum struct{}

// Name implements Func.
func (FSum) Name() string { return "fsum" }

// C implements Func: fsum is not c-determined.
func (FSum) C() int { return 0 }

// Rank implements Func.
func (FSum) Rank(u *tupleset.Universe, t *tupleset.Set) float64 {
	sum := 0.0
	for _, ref := range t.Refs() {
		sum += u.DB.Imp(ref)
	}
	return sum
}

// MaxOverConnected is the general monotonically c-determined family the
// paper sketches: f(T) = max over connected subsets S ⊆ T with |S| ≤ c
// of Score(S). With non-negative monotone Score this is monotonically
// c-determined: the maximising subset witnesses c-determinacy, and
// growing T can only add candidate subsets.
//
// The paper's 3-determined example max{imp(t1) + imp(t2)·imp(t3)} is
// expressible with c=3 and an appropriate Score.
type MaxOverConnected struct {
	// CBound is c.
	CBound int
	// Label names the instance.
	Label string
	// Score evaluates one connected subset of size ≤ c. It must be
	// order-insensitive over the subset's members.
	Score func(u *tupleset.Universe, members []relation.Ref) float64
}

// Name implements Func.
func (m *MaxOverConnected) Name() string { return m.Label }

// C implements Func.
func (m *MaxOverConnected) C() int { return m.CBound }

// Rank implements Func: the maximum of Score over connected subsets of
// size at most c, computed by DFS extension (a result holds at most n
// tuples, so this is O(n^c) subset evaluations).
func (m *MaxOverConnected) Rank(u *tupleset.Universe, t *tupleset.Set) float64 {
	refs := t.Refs()
	best := 0.0
	first := true
	var rec func(chosen []relation.Ref, start int)
	rec = func(chosen []relation.Ref, start int) {
		if len(chosen) > 0 {
			if connectedRefs(u, chosen) {
				s := m.Score(u, chosen)
				if first || s > best {
					best = s
					first = false
				}
			}
		}
		if len(chosen) == m.CBound {
			return
		}
		for i := start; i < len(refs); i++ {
			rec(append(chosen, refs[i]), i+1)
		}
	}
	rec(nil, 0)
	return best
}

func connectedRefs(u *tupleset.Universe, refs []relation.Ref) bool {
	if len(refs) == 1 {
		return true
	}
	mask := make([]uint64, u.Conn.Words())
	for _, r := range refs {
		mask[r.Rel/64] |= 1 << (uint(r.Rel) % 64)
	}
	return u.Conn.SubsetConnectedBits(mask, nil)
}

// PairSum is a ready-made monotonically 2-determined instance:
// f(T) = max over connected pairs (and singletons) of the sum of
// importances.
func PairSum() *MaxOverConnected {
	return &MaxOverConnected{
		CBound: 2,
		Label:  "fpairsum",
		Score: func(u *tupleset.Universe, members []relation.Ref) float64 {
			sum := 0.0
			for _, r := range members {
				sum += u.DB.Imp(r)
			}
			return sum
		},
	}
}

// PaperTriple is the paper's 3-determined example:
// f(T) = max{imp(t1) + imp(t2)·imp(t3) | {t1,t2,t3} ⊆ T connected}.
// Subsets of size 1 and 2 score with missing factors treated as the
// best completion available, degenerating to imp sums; the function
// remains monotone because scores never decrease when tuples are
// added.
func PaperTriple() *MaxOverConnected {
	return &MaxOverConnected{
		CBound: 3,
		Label:  "ftriple",
		Score: func(u *tupleset.Universe, members []relation.Ref) float64 {
			imps := make([]float64, len(members))
			for i, r := range members {
				imps[i] = u.DB.Imp(r)
			}
			switch len(imps) {
			case 1:
				return imps[0]
			case 2:
				a, b := imps[0], imps[1]
				if b > a {
					a, b = b, a
				}
				return a + b // t3 missing: product term degenerates
			default:
				// Best assignment of the three members to the roles
				// t1 + t2*t3.
				best := 0.0
				for i := 0; i < 3; i++ {
					j, k := (i+1)%3, (i+2)%3
					if v := imps[i] + imps[j]*imps[k]; v > best {
						best = v
					}
				}
				return best
			}
		},
	}
}

// Validate checks that f can drive PriorityIncrementalFD.
func Validate(f Func) error {
	if f == nil {
		return fmt.Errorf("rank: nil ranking function")
	}
	if f.C() < 1 {
		return fmt.Errorf("rank: %s is not monotonically c-determined; "+
			"ranked enumeration is intractable for it (cf. Proposition 5.1)", f.Name())
	}
	return nil
}
