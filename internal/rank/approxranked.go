package rank

import (
	"fmt"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/relation"
	"repro/internal/tupleset"
)

// ApproxStreamRanked implements the adaptation the paper sketches at
// the end of Section 6: APPROXINCREMENTALFD reorganised in the spirit
// of PRIORITYINCREMENTALFD, emitting the members of AFD(R, A, τ) in
// non-increasing order of a monotonically c-determined ranking
// function f. Return false from yield to stop early.
//
// The initialisation enumerates the connected tuple sets of size ≤ c
// with A(S) ≥ τ (the approximate analogue of Fig 3 lines 2–4 — valid
// because A is acceptable, so qualifying sets are closed under
// connected subsets), distributes them to per-relation priority queues,
// and merges mergeable pairs under the A-threshold predicate.
func ApproxStreamRanked(db *relation.Database, a approx.Join, tau float64, f Func,
	yield func(Result) bool) (core.Stats, error) {

	var stats core.Stats
	if err := Validate(f); err != nil {
		return stats, err
	}
	if a == nil {
		return stats, fmt.Errorf("rank: nil approximate join function")
	}
	if tau <= 0 || tau > 1 {
		return stats, fmt.Errorf("rank: threshold %v outside (0,1]", tau)
	}
	u := tupleset.NewUniverse(db)
	n := db.NumRelations()
	c := f.C()

	small := naive.EnumerateConnected(u, func(s *tupleset.Set) bool {
		return s.Len() <= c && a.Score(u, s) >= tau
	})
	perSeed := make([][]*tupleset.Set, n)
	for _, s := range small {
		for _, ref := range s.Refs() {
			perSeed[ref.Rel] = append(perSeed[ref.Rel], s.Clone())
		}
	}

	queues := make([]*priorityQueue, n)
	for i := 0; i < n; i++ {
		merged := approxMergeFixpoint(u, a, tau, perSeed[i], &stats)
		queues[i] = newPriorityQueue(u, i, f)
		queues[i].merge = func(existing, incoming *tupleset.Set, st *core.Stats) (*tupleset.Set, bool) {
			return approx.TryMerge(u, a, tau, existing, incoming, st)
		}
		for _, s := range merged {
			queues[i].Push(s)
		}
	}

	complete := core.NewCompleteStore(u, true)
	for {
		best := -1
		var bestRank float64
		var bestKey string
		for i, q := range queues {
			top, r, ok := q.Top()
			if !ok {
				continue
			}
			if best < 0 || r > bestRank || (r == bestRank && top.Key() < bestKey) {
				best, bestRank, bestKey = i, r, top.Key()
			}
		}
		if best < 0 {
			return stats, nil
		}
		T, _ := queues[best].PopSet()
		result := approx.GetNextResult(u, best, a, tau, T, queues[best], complete, &stats)
		stats.Iterations++
		anchor, ok := result.Member(best)
		if !ok {
			return stats, fmt.Errorf("rank: internal error: result lacks seed tuple")
		}
		if complete.ContainsSuperset(result, anchor, &stats) {
			continue
		}
		complete.Add(result)
		stats.Emitted++
		if !yield(Result{Set: result, Rank: f.Rank(u, result)}) {
			return stats, nil
		}
	}
}

// approxMergeFixpoint is the approximate analogue of mergeFixpoint:
// pairs merge when the union is conflict-free and scores ≥ τ.
func approxMergeFixpoint(u *tupleset.Universe, a approx.Join, tau float64,
	sets []*tupleset.Set, stats *core.Stats) []*tupleset.Set {
	out := append([]*tupleset.Set(nil), sets...)
	for {
		merged := false
	scan:
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if union, ok := approx.TryMerge(u, a, tau, out[i], out[j], stats); ok {
					out[i] = union
					out = append(out[:j], out[j+1:]...)
					merged = true
					break scan
				}
			}
		}
		if !merged {
			return out
		}
	}
}

// ApproxTopK returns the k highest-ranking members of the
// (A,τ)-approximate full disjunction, in rank order.
func ApproxTopK(db *relation.Database, a approx.Join, tau float64, f Func, k int) ([]Result, core.Stats, error) {
	if k < 0 {
		return nil, core.Stats{}, fmt.Errorf("rank: negative k")
	}
	if k == 0 {
		return nil, core.Stats{}, nil
	}
	var out []Result
	stats, err := ApproxStreamRanked(db, a, tau, f, func(r Result) bool {
		out = append(out, r)
		return len(out) < k
	})
	return out, stats, err
}

// ApproxThreshold returns every member of AFD(R, A, τ) whose rank is at
// least rankTau, in rank order.
func ApproxThreshold(db *relation.Database, a approx.Join, tau, rankTau float64, f Func) ([]Result, core.Stats, error) {
	var out []Result
	stats, err := ApproxStreamRanked(db, a, tau, f, func(r Result) bool {
		if r.Rank < rankTau {
			return false
		}
		out = append(out, r)
		return true
	})
	return out, stats, err
}
