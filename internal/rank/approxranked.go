package rank

import (
	"context"
	"fmt"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/relation"
	"repro/internal/tupleset"
)

// ApproxCursor is the pull-based form of ApproxStreamRanked: a
// suspended enumeration of AFD(R, A, τ) in non-increasing rank order
// under a monotonically c-determined ranking function — the adaptation
// the paper sketches at the end of Section 6, reorganised in the spirit
// of PRIORITYINCREMENTALFD. Like the other cursor families it holds
// explicit state (the per-relation priority queues and the Complete
// store) and no goroutine, so internal/service can page it.
//
// An ApproxCursor is not safe for concurrent use.
type ApproxCursor struct {
	ctx      context.Context
	u        *tupleset.Universe
	a        approx.Join
	tau      float64
	f        Func
	opts     core.Options
	queues   []*priorityQueue
	complete *core.CompleteStore
	stats    core.Stats
	err      error
	closed   bool
}

// NewApproxCursor prepares a pull-based ranked approximate enumeration.
// The initialisation enumerates the connected tuple sets of size ≤ c
// with A(S) ≥ τ (the approximate analogue of Fig 3 lines 2–4 — valid
// because A is acceptable, so qualifying sets are closed under
// connected subsets), distributes them to per-relation priority queues,
// and merges mergeable pairs under the A-threshold predicate. Database
// scans honour opts (block size, buffer pool, join index gated on a's
// equi-compatibility). Cancelling ctx aborts the preprocessing between
// queue merges and makes a later Next fail within one queue extraction
// with Err() == ctx.Err(). A nil ctx means context.Background().
func NewApproxCursor(ctx context.Context, db *relation.Database, a approx.Join, tau float64,
	f Func, opts core.Options) (*ApproxCursor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := Validate(f); err != nil {
		return nil, err
	}
	if a == nil {
		return nil, fmt.Errorf("rank: nil approximate join function")
	}
	if tau <= 0 || tau > 1 {
		return nil, fmt.Errorf("rank: threshold %v outside (0,1]", tau)
	}
	u := tupleset.NewUniverse(db)
	n := db.NumRelations()
	c := f.C()
	cur := &ApproxCursor{ctx: ctx, u: u, a: a, tau: tau, f: f, opts: opts}

	small := naive.EnumerateConnected(u, func(s *tupleset.Set) bool {
		return s.Len() <= c && a.Score(u, s) >= tau
	})
	perSeed := make([][]*tupleset.Set, n)
	for _, s := range small {
		for _, ref := range s.Refs() {
			perSeed[ref.Rel] = append(perSeed[ref.Rel], s.Clone())
		}
	}

	cur.queues = make([]*priorityQueue, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		merged := approxMergeFixpoint(u, a, tau, perSeed[i], &cur.stats)
		cur.queues[i] = newPriorityQueue(u, i, f)
		cur.queues[i].merge = func(existing, incoming *tupleset.Set, st *core.Stats) (*tupleset.Set, bool) {
			return approx.TryMerge(u, a, tau, existing, incoming, st)
		}
		for _, s := range merged {
			cur.queues[i].Push(s)
		}
	}
	// The duplicate-check store is always hash-indexed (as it was before
	// Options reached this family): UseIndex governs the §7 lists of the
	// exact engine, not this internal structure, and an unindexed store
	// degrades every emission to a linear ContainsSuperset scan.
	cur.complete = core.NewCompleteStore(u, true)
	return cur, nil
}

// Next produces the next result in rank order, or ok=false when the
// enumeration is exhausted, closed, cancelled, or failed (check Err).
func (c *ApproxCursor) Next() (Result, bool) {
	if c.closed || c.err != nil {
		return Result{}, false
	}
	for {
		if err := c.ctx.Err(); err != nil {
			c.err = err
			return Result{}, false
		}
		best := -1
		var bestRank float64
		var bestKey string
		for i, q := range c.queues {
			top, r, ok := q.Top()
			if !ok {
				continue
			}
			if best < 0 || r > bestRank || (r == bestRank && top.Key() < bestKey) {
				best, bestRank, bestKey = i, r, top.Key()
			}
		}
		if best < 0 {
			return Result{}, false // all queues empty: AFD exhausted
		}
		T, _ := c.queues[best].PopSet()
		result := approx.GetNextResult(c.u, best, c.a, c.tau, c.opts, T, c.queues[best], c.complete, &c.stats)
		c.stats.Iterations++
		anchor, ok := result.Member(best)
		if !ok {
			c.err = fmt.Errorf("rank: internal error: result lacks seed tuple")
			return Result{}, false
		}
		if c.complete.ContainsSuperset(result, anchor, &c.stats) {
			continue // already printed via another queue
		}
		c.complete.Add(result)
		c.stats.Emitted++
		return Result{Set: result, Rank: c.f.Rank(c.u, result)}, true
	}
}

// Stats returns the counters accumulated so far.
func (c *ApproxCursor) Stats() core.Stats { return c.stats }

// Err returns the error that terminated the enumeration, if any.
func (c *ApproxCursor) Err() error { return c.err }

// Close abandons the enumeration; idempotent, leaks nothing.
func (c *ApproxCursor) Close() { c.closed = true }

// ApproxStreamRanked streams the members of AFD(R, A, τ) in
// non-increasing rank order under a monotonically c-determined ranking
// function f. Return false from yield to stop early. It is the
// push-style rendering of an ApproxCursor.
func ApproxStreamRanked(db *relation.Database, a approx.Join, tau float64, f Func,
	opts core.Options, yield func(Result) bool) (core.Stats, error) {
	c, err := NewApproxCursor(context.Background(), db, a, tau, f, opts)
	if err != nil {
		return core.Stats{}, err
	}
	defer c.Close()
	for {
		r, ok := c.Next()
		if !ok {
			return c.Stats(), c.Err()
		}
		if !yield(r) {
			return c.Stats(), nil
		}
	}
}

// approxMergeFixpoint is the approximate analogue of mergeFixpoint:
// pairs merge when the union is conflict-free and scores ≥ τ.
func approxMergeFixpoint(u *tupleset.Universe, a approx.Join, tau float64,
	sets []*tupleset.Set, stats *core.Stats) []*tupleset.Set {
	out := append([]*tupleset.Set(nil), sets...)
	for {
		merged := false
	scan:
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if union, ok := approx.TryMerge(u, a, tau, out[i], out[j], stats); ok {
					out[i] = union
					out = append(out[:j], out[j+1:]...)
					merged = true
					break scan
				}
			}
		}
		if !merged {
			return out
		}
	}
}

// ApproxTopK returns the k highest-ranking members of the
// (A,τ)-approximate full disjunction, in rank order.
func ApproxTopK(db *relation.Database, a approx.Join, tau float64, f Func, k int,
	opts core.Options) ([]Result, core.Stats, error) {
	if k < 0 {
		return nil, core.Stats{}, fmt.Errorf("rank: negative k")
	}
	if k == 0 {
		return nil, core.Stats{}, nil
	}
	var out []Result
	stats, err := ApproxStreamRanked(db, a, tau, f, opts, func(r Result) bool {
		out = append(out, r)
		return len(out) < k
	})
	return out, stats, err
}

// ApproxThreshold returns every member of AFD(R, A, τ) whose rank is at
// least rankTau, in rank order.
func ApproxThreshold(db *relation.Database, a approx.Join, tau, rankTau float64, f Func,
	opts core.Options) ([]Result, core.Stats, error) {
	var out []Result
	stats, err := ApproxStreamRanked(db, a, tau, f, opts, func(r Result) bool {
		if r.Rank < rankTau {
			return false
		}
		out = append(out, r)
		return true
	})
	return out, stats, err
}
