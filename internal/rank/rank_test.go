package rank

import (
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/relation"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

func TestFMaxAndFSum(t *testing.T) {
	db := workload.TouristRanked()
	u := tupleset.NewUniverse(db)
	var refs = map[string]relation.Ref{}
	db.ForEachRef(func(r relation.Ref) bool { refs[db.Label(r)] = r; return true })

	s := u.FromRefs(refs["c1"], refs["a2"], refs["s1"]) // imps 1, 3, 1
	if got := (FMax{}).Rank(u, s); got != 3 {
		t.Errorf("fmax = %v, want 3", got)
	}
	if got := (FSum{}).Rank(u, s); got != 5 {
		t.Errorf("fsum = %v, want 5", got)
	}
	if (FMax{}).C() != 1 || (FSum{}).C() != 0 {
		t.Error("determinacy bounds wrong")
	}
	if Validate(FMax{}) != nil {
		t.Error("fmax must validate")
	}
	if Validate(FSum{}) == nil {
		t.Error("fsum must not validate (Proposition 5.1)")
	}
	if Validate(nil) == nil {
		t.Error("nil must not validate")
	}
}

func TestMaxOverConnectedMonotone(t *testing.T) {
	db := workload.TouristRanked()
	u := tupleset.NewUniverse(db)
	var refs = map[string]relation.Ref{}
	db.ForEachRef(func(r relation.Ref) bool { refs[db.Label(r)] = r; return true })

	for _, f := range []Func{PairSum(), PaperTriple(), FMax{}} {
		small := u.FromRefs(refs["c1"], refs["a2"])
		big := u.FromRefs(refs["c1"], refs["a2"], refs["s1"])
		if f.Rank(u, small) > f.Rank(u, big) {
			t.Errorf("%s not monotone: f(small)=%v > f(big)=%v",
				f.Name(), f.Rank(u, small), f.Rank(u, big))
		}
	}
	// PairSum picks the best connected pair: c1(1)+a2(3) = 4.
	s := u.FromRefs(refs["c1"], refs["a2"], refs["s1"])
	if got := PairSum().Rank(u, s); got != 4 {
		t.Errorf("fpairsum = %v, want 4", got)
	}
}

// TestRankedOrderTourist checks the Section 1 motivation: with climate
// preferences tropical > temperate > diverse, the ranked stream emits
// the Bahamas result first.
func TestRankedOrderTourist(t *testing.T) {
	db := workload.TouristRanked()
	got, _, err := TopK(db, FMax{}, 6, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("got %d results", len(got))
	}
	// Ranks must be non-increasing (Lemma 5.4).
	for i := 1; i < len(got); i++ {
		if got[i-1].Rank < got[i].Rank {
			t.Errorf("rank order violated at %d: %v < %v", i, got[i-1].Rank, got[i].Rank)
		}
	}
	// imp(a1)=4 puts {c1,a1} on top.
	if got[0].Set.Format(db) != "{c1, a1}" || got[0].Rank != 4 {
		t.Errorf("top = %s rank %v", got[0].Set.Format(db), got[0].Rank)
	}
}

// TestTopKMatchesBruteForce cross-validates PriorityIncrementalFD
// against the oracle for fmax and fpairsum on random workloads.
func TestTopKMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		db, err := workload.Random(workload.Config{
			Relations: 4, TuplesPerRelation: 4, Domain: 3,
			NullRate: 0.2, ImpMax: 10, Seed: seed}, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		u := tupleset.NewUniverse(db)
		for _, f := range []Func{FMax{}, PairSum(), PaperTriple()} {
			rankOf := func(s *tupleset.Set) float64 { return f.Rank(u, s) }
			for _, k := range []int{1, 3, 100} {
				got, _, err := TopK(db, f, k, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				want := naive.TopK(db, rankOf, k)
				if len(got) != len(want) {
					t.Fatalf("seed %d %s k=%d: got %d results, oracle %d",
						seed, f.Name(), k, len(got), len(want))
				}
				// Ranks must agree position-wise (sets may differ on
				// ties, which are broken arbitrarily per the paper).
				for i := range got {
					if math.Abs(got[i].Rank-rankOf(want[i])) > 1e-9 {
						t.Errorf("seed %d %s k=%d pos %d: rank %v, oracle %v",
							seed, f.Name(), k, i, got[i].Rank, rankOf(want[i]))
					}
				}
			}
		}
	}
}

// TestRankedStreamIsWholeFD verifies that draining the ranked stream
// yields exactly FD(R).
func TestRankedStreamIsWholeFD(t *testing.T) {
	db, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 5, Domain: 3,
		NullRate: 0.2, ImpMax: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	_, err = StreamRanked(db, PairSum(), core.Options{}, func(r Result) bool {
		got = append(got, r.Set.Format(db))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, s := range naive.FullDisjunction(db) {
		want = append(want, s.Format(db))
	}
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranked stream differs from FD:\n got  %v\n want %v", got, want)
		}
	}
}

func TestThreshold(t *testing.T) {
	db := workload.TouristRanked()
	got, _, err := Threshold(db, FMax{}, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Results with fmax ≥ 3: {c1,a1} (4), {c1,a2,s1} (3), {c3,a3} (3).
	if len(got) != 3 {
		var names []string
		for _, r := range got {
			names = append(names, r.Set.Format(db))
		}
		t.Fatalf("threshold returned %d results: %v", len(got), names)
	}
	for _, r := range got {
		if r.Rank < 3 {
			t.Errorf("result %s below threshold: %v", r.Set.Format(db), r.Rank)
		}
	}
	// τ above every rank: nothing.
	none, _, err := Threshold(db, FMax{}, 100, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("τ=100 returned %d results", len(none))
	}
}

func TestTopKEdgeCases(t *testing.T) {
	db := workload.TouristRanked()
	if got, _, err := TopK(db, FMax{}, 0, core.Options{}); err != nil || len(got) != 0 {
		t.Errorf("k=0: %v, %v", got, err)
	}
	if _, _, err := TopK(db, FMax{}, -1, core.Options{}); err == nil {
		t.Error("negative k accepted")
	}
	if _, _, err := TopK(db, FSum{}, 1, core.Options{}); err == nil {
		t.Error("fsum accepted by ranked enumeration")
	}
	// k beyond |FD|: all six results.
	got, _, err := TopK(db, FMax{}, 50, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Errorf("k=50 returned %d", len(got))
	}
	// No duplicates despite multi-queue generation.
	seen := map[string]bool{}
	for _, r := range got {
		if seen[r.Set.Key()] {
			t.Errorf("duplicate %s", r.Set.Format(db))
		}
		seen[r.Set.Key()] = true
	}
}

// TestProposition51 demonstrates the hardness construction: with
// imp(t)=1 for all tuples, the top-(1,fsum) answer has n tuples iff the
// natural join is non-empty.
func TestProposition51(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		db, err := workload.Clique(workload.Config{
			Relations: 4, TuplesPerRelation: 3, Domain: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		u := tupleset.NewUniverse(db)
		fsum := func(s *tupleset.Set) float64 { return (FSum{}).Rank(u, s) }
		top := naive.TopK(db, fsum, 1)
		if len(top) != 1 {
			t.Fatal("empty FD")
		}
		gotFull := top[0].Len() == db.NumRelations()
		wantFull := naive.NaturalJoinNonEmpty(db)
		if gotFull != wantFull {
			t.Errorf("seed %d: top-1 fsum fullness %v, join non-emptiness %v",
				seed, gotFull, wantFull)
		}
	}
}
