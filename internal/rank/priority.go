package rank

import (
	"container/heap"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tupleset"
)

// item is one entry of a priority queue.
type item struct {
	set  *tupleset.Set
	rank float64
	pos  int // index within the heap, maintained by heap.Interface
}

// itemHeap is the raw max-heap storage (container/heap plumbing).
type itemHeap []*item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].rank != h[j].rank {
		return h[i].rank > h[j].rank // max-heap
	}
	// Deterministic tie-break for reproducible output.
	return h[i].set.Key() < h[j].set.Key()
}
func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *itemHeap) Push(x any) {
	it := x.(*item)
	it.pos = len(*h)
	*h = append(*h, it)
}
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// mergeFunc attempts to merge an incoming candidate into a stored set;
// it returns the union and true on success. The exact variant uses the
// JCC predicate; the approximate variant (Section 6, closing remark)
// uses A(S ∪ T') ≥ τ.
type mergeFunc func(existing, incoming *tupleset.Set, stats *core.Stats) (*tupleset.Set, bool)

// priorityQueue is the Incompletei of Fig 3: a max-heap of tuple sets
// ordered by rank, supporting the merge of GETNEXTRESULT lines 14–15
// (which may raise a stored set's rank and re-heapify it). It
// implements core.Pool.
type priorityQueue struct {
	u     *tupleset.Universe
	seed  int
	f     Func
	h     itemHeap
	merge mergeFunc
}

var _ core.Pool = (*priorityQueue)(nil)

func newPriorityQueue(u *tupleset.Universe, seed int, f Func) *priorityQueue {
	q := &priorityQueue{u: u, seed: seed, f: f}
	q.merge = func(existing, incoming *tupleset.Set, stats *core.Stats) (*tupleset.Set, bool) {
		stats.JCCChecks++
		var sig tupleset.SigCounters
		defer stats.AddSig(&sig)
		if q.u.UnionJCCCounted(existing, incoming, &sig) {
			return q.u.Union(existing, incoming), true
		}
		return nil, false
	}
	return q
}

// Len returns the number of queued sets.
func (q *priorityQueue) Len() int { return len(q.h) }

// Push implements core.Pool (line 18): insert a tuple set with its
// rank.
func (q *priorityQueue) Push(s *tupleset.Set) {
	heap.Push(&q.h, &item{set: s, rank: q.f.Rank(q.u, s)})
}

// Top returns the highest-ranking set without removing it.
func (q *priorityQueue) Top() (*tupleset.Set, float64, bool) {
	if len(q.h) == 0 {
		return nil, 0, false
	}
	return q.h[0].set, q.h[0].rank, true
}

// PopSet removes and returns the highest-ranking set.
func (q *priorityQueue) PopSet() (*tupleset.Set, bool) {
	if len(q.h) == 0 {
		return nil, false
	}
	return heap.Pop(&q.h).(*item).set, true
}

// Items exposes the queued sets (for the initialisation merge loop).
func (q *priorityQueue) Items() []*item { return q.h }

// RemoveAt deletes the item at heap position pos.
func (q *priorityQueue) RemoveAt(pos int) { heap.Remove(&q.h, pos) }

// ReplaceSet swaps the tuple set of an item and re-heapifies.
func (q *priorityQueue) ReplaceSet(it *item, s *tupleset.Set) {
	it.set = s
	it.rank = q.f.Rank(q.u, s)
	heap.Fix(&q.h, it.pos)
}

// TryAbsorb implements core.Pool: lines 14–15 of GETNEXTRESULT. A merge
// can only raise the stored set's rank (f is monotone on connected
// supersets), so the heap is fixed up after the union.
func (q *priorityQueue) TryAbsorb(t *tupleset.Set, anchor relation.Ref, stats *core.Stats) bool {
	for _, it := range q.h {
		member, ok := it.set.Member(q.seed)
		if !ok || member != anchor {
			continue // different seed tuple: the union would be invalid
		}
		stats.ListScans++
		if union, ok := q.merge(it.set, t, stats); ok {
			q.ReplaceSet(it, union)
			return true
		}
	}
	return false
}
