package rank

import (
	"math"
	"sort"
	"testing"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/relation"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

// TestApproxRankedMatchesBruteForce cross-checks the ranked
// approximate enumeration against sorting the brute-force AFD oracle.
func TestApproxRankedMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		db, err := workload.DirtyChain(workload.DirtyConfig{
			Config: workload.Config{Relations: 4, TuplesPerRelation: 4, Domain: 3,
				ImpMax: 10, Seed: seed},
			ErrorRate: 0.3, MaxEdits: 2, MinProb: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		u := tupleset.NewUniverse(db)
		amin := &approx.Amin{S: approx.LevenshteinSim{}}
		f := FMax{}
		for _, tau := range []float64{0.4, 0.7} {
			var got []Result
			if _, err := ApproxStreamRanked(db, amin, tau, f, core.Options{UseIndex: true}, func(r Result) bool {
				got = append(got, r)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			want := naive.ApproxFullDisjunction(db, func(s *tupleset.Set) float64 {
				return amin.Score(u, s)
			}, tau)
			if len(got) != len(want) {
				t.Fatalf("seed %d τ=%v: got %d results, oracle %d", seed, tau, len(got), len(want))
			}
			// Same sets.
			wantKeys := map[string]bool{}
			for _, s := range want {
				wantKeys[s.Key()] = true
			}
			for _, r := range got {
				if !wantKeys[r.Set.Key()] {
					t.Errorf("seed %d τ=%v: spurious %s", seed, tau, r.Set.Format(db))
				}
			}
			// Rank order non-increasing and rank sequence matches the
			// sorted oracle ranks.
			wantRanks := make([]float64, len(want))
			for i, s := range want {
				wantRanks[i] = f.Rank(u, s)
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(wantRanks)))
			for i, r := range got {
				if i > 0 && got[i-1].Rank < r.Rank {
					t.Errorf("seed %d τ=%v: order violated at %d", seed, tau, i)
				}
				if math.Abs(r.Rank-wantRanks[i]) > 1e-9 {
					t.Errorf("seed %d τ=%v pos %d: rank %v, oracle %v", seed, tau, i, r.Rank, wantRanks[i])
				}
			}
		}
	}
}

func TestApproxTopKAndThreshold(t *testing.T) {
	db, sims := workload.TouristApprox()
	// Give the tourist tuples importances so ranking is non-trivial.
	imp := map[string]float64{"c1": 1, "c2": 2, "c3": 3, "a1": 4, "a2": 3, "a3": 1}
	for r := 0; r < db.NumRelations(); r++ {
		rel := db.Relation(r)
		for i := 0; i < rel.Len(); i++ {
			if v, ok := imp[rel.Tuple(i).Label]; ok {
				rel.MutateTuple(i, func(t *relation.Tuple) { t.Imp = v })
			}
		}
	}
	amin := &approx.Amin{S: approx.NewSimTable(sims)}

	top, _, err := ApproxTopK(db, amin, 0.4, FMax{}, 2, core.Options{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("top-2 returned %d", len(top))
	}
	if top[0].Rank < top[1].Rank {
		t.Error("order violated")
	}
	// The {c1,a1} pairing survives approximately (sim(c1,a1)=0.8 ≥ 0.4)
	// and carries the best rank 4.
	if top[0].Rank != 4 {
		t.Errorf("top rank = %v, want 4", top[0].Rank)
	}

	thr, _, err := ApproxThreshold(db, amin, 0.4, 3, FMax{}, core.Options{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range thr {
		if r.Rank < 3 {
			t.Errorf("threshold result below 3: %v", r.Rank)
		}
	}

	// Validation paths.
	if _, _, err := ApproxTopK(db, amin, 0, FMax{}, 1, core.Options{UseIndex: true}); err == nil {
		t.Error("τ=0 accepted")
	}
	if _, _, err := ApproxTopK(db, nil, 0.5, FMax{}, 1, core.Options{UseIndex: true}); err == nil {
		t.Error("nil join accepted")
	}
	if _, _, err := ApproxTopK(db, amin, 0.5, FSum{}, 1, core.Options{UseIndex: true}); err == nil {
		t.Error("fsum accepted")
	}
	if got, _, err := ApproxTopK(db, amin, 0.5, FMax{}, 0, core.Options{UseIndex: true}); err != nil || len(got) != 0 {
		t.Error("k=0 misbehaves")
	}
	if _, _, err := ApproxTopK(db, amin, 0.5, FMax{}, -1, core.Options{UseIndex: true}); err == nil {
		t.Error("negative k accepted")
	}
}
