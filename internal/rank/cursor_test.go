package rank

import (
	"context"

	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/workload"
)

func cursorDB(t *testing.T) *relation.Database {
	t.Helper()
	db, err := workload.Star(workload.Config{
		Relations: 4, TuplesPerRelation: 8, Domain: 3, NullRate: 0.05, ImpMax: 20, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestCursorMatchesStreamRanked checks that the pull-based ranked
// cursor reproduces StreamRanked exactly: same sets, same ranks, same
// order, same counters.
func TestCursorMatchesStreamRanked(t *testing.T) {
	db := cursorDB(t)
	for _, f := range []Func{FMax{}, PairSum()} {
		opts := core.Options{UseIndex: true}
		var want []Result
		wantStats, err := StreamRanked(db, f, opts, func(r Result) bool {
			want = append(want, r)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}

		c, err := NewCursor(context.Background(), db, f, opts)
		if err != nil {
			t.Fatal(err)
		}
		var got []Result
		for {
			r, ok := c.Next()
			if !ok {
				break
			}
			got = append(got, r)
		}
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: cursor emitted %d, StreamRanked %d", f.Name(), len(got), len(want))
		}
		for i := range got {
			if got[i].Rank != want[i].Rank || got[i].Set.Key() != want[i].Set.Key() {
				t.Fatalf("%s: sequence diverges at %d", f.Name(), i)
			}
		}
		if cs := c.Stats(); cs != wantStats {
			t.Errorf("%s: cursor stats %+v, StreamRanked stats %+v", f.Name(), cs, wantStats)
		}
		c.Close()
	}
}

// TestCursorRejectsNonDetermined mirrors the StreamRanked validation.
func TestCursorRejectsNonDetermined(t *testing.T) {
	if _, err := NewCursor(context.Background(), cursorDB(t), FSum{}, core.Options{}); err == nil {
		t.Fatal("NewCursor accepted a non-c-determined function")
	}
}

// TestRankedCursorNoGoroutineLeak asserts that abandoning ranked
// enumerations mid-flight leaks no goroutine.
func TestRankedCursorNoGoroutineLeak(t *testing.T) {
	db := cursorDB(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		c, err := NewCursor(context.Background(), db, FMax{}, core.Options{UseIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		c.Next()
		c.Close()
		if _, ok := c.Next(); ok {
			t.Fatal("Next after Close emitted a result")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
