package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/workload"
)

// Metric is one measured variant of a trajectory record: wall-clock,
// the algorithm counters of core.Stats, and allocation deltas sampled
// around the run (testing.Benchmark-style, via runtime.MemStats).
type Metric struct {
	Name       string  `json:"name"`
	WallMillis float64 `json:"wall_ms"`
	Results    int     `json:"results"`
	// Workers is the enumeration worker count of the variant: 1 for
	// the sequential driver, the pool size for parallel variants.
	Workers       int    `json:"workers"`
	JCCChecks     int64  `json:"jcc_checks"`
	SigHits       int64  `json:"sig_hits"`
	SigRebuilds   int64  `json:"sig_rebuilds"`
	TuplesScanned int64  `json:"tuples_scanned"`
	TuplesSkipped int64  `json:"tuples_skipped"`
	IndexProbes   int64  `json:"index_probes"`
	ListScans     int64  `json:"list_scans"`
	PageReads     int64  `json:"page_reads"`
	Mallocs       uint64 `json:"mallocs"`
	BytesAlloc    uint64 `json:"bytes_alloc"`
	// DelayMaxMillis and DelayP99Millis summarise the inter-result gaps
	// of the enumerate phase — the measured form of the paper's
	// polynomial-delay guarantee, from the same obs.Delay tracker the
	// service exports as fd_result_delay_seconds.
	DelayMaxMillis float64 `json:"delay_max_ms"`
	DelayP99Millis float64 `json:"delay_p99_ms"`
	// Phases breaks WallMillis into the trace-span phases of the run:
	// init (cursor construction), enumerate (the Next loop) and drain
	// (error check, close, canonical sort). Recorded from the same span
	// machinery GET /queries/{id}/trace serves.
	Phases map[string]float64 `json:"phase_ms,omitempty"`
}

// Record is one machine-readable benchmark trajectory: the per-variant
// metrics of one workload, tagged with the Go version so numbers are
// comparable across PRs (the file is committed as BENCH_<workload>.json
// and appended to, diffed or plotted by later sessions).
type Record struct {
	Workload string `json:"workload"`
	Title    string `json:"title"`
	Go       string `json:"go"`
	// GoMaxProcs and NumCPU describe the box the record was measured
	// on, so a flat parallel speedup curve on a single-core machine
	// reads as the hardware's fault, not the executor's.
	GoMaxProcs int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Variants   []Metric `json:"variants"`
}

// Trajectories maps experiment ids to runners that produce the
// rendered table AND the machine-readable record from one measured run
// (so the two artifacts of one fdbench invocation never disagree).
// Experiments without a structured form are simply absent.
func Trajectories() map[string]func() (*Table, *Record, error) {
	return map[string]func() (*Table, *Record, error){
		"E9":  E9Both,
		"E12": E12Both,
	}
}

// WriteRecords writes records as an indented JSON document
// {"records": [...]}.
func WriteRecords(w io.Writer, records []*Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Records []*Record `json:"records"`
	}{records})
}

// measure runs fn once and captures wall-clock plus allocation deltas.
func measure(fn func()) (time.Duration, uint64, uint64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return wall, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// E9Both measures the E9 ablation ladder once and renders both
// artifacts from the same run: the markdown table (including the
// buffer-pool sweep) and the structured trajectory record.
func E9Both() (*Table, *Record, error) {
	rec := &Record{
		Workload:   "e9",
		Title:      "Section 7 ablations (chain workload)",
		Go:         runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	t, err := e9Table(rec)
	if err != nil {
		return nil, nil, err
	}
	return t, rec, nil
}

// e9DB builds the chain workload shared by E9Ablations and
// E9Trajectory.
func e9DB() (*relation.Database, error) {
	return workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 28, Domain: 4, NullRate: 0.1, Seed: 23})
}

// e9Variant is one rung of the E9 ablation ladder. A variant with
// workers > 1 runs the parallel streaming executor (restart strategy)
// with that pool size instead of the sequential driver.
type e9Variant struct {
	name    string
	opts    core.Options
	workers int
}

// e9Variants returns the §7 ablation ladder in presentation order,
// ending with the parallel speedup curve of the streaming executor.
func e9Variants() []e9Variant {
	parallel := core.Options{UseIndex: true, UseJoinIndex: true}
	return []e9Variant{
		{name: "tuple-at-a-time, no index, restart init", opts: core.Options{}},
		{name: "+ hash index", opts: core.Options{UseIndex: true}},
		{name: "+ join-candidate index (dictionary codes)", opts: core.Options{UseIndex: true, UseJoinIndex: true}},
		{name: "+ seeded init (§7 opt 2)", opts: core.Options{UseIndex: true, UseJoinIndex: true, Strategy: core.InitSeeded}},
		{name: "+ projected init (§7 opt 3)", opts: core.Options{UseIndex: true, UseJoinIndex: true, Strategy: core.InitProjected}},
		{name: "+ blocks of 8", opts: core.Options{UseIndex: true, UseJoinIndex: true, Strategy: core.InitSeeded, BlockSize: 8}},
		{name: "+ blocks of 64", opts: core.Options{UseIndex: true, UseJoinIndex: true, Strategy: core.InitSeeded, BlockSize: 64}},
		{name: "parallel ×2 (restart init, streaming executor)", opts: parallel, workers: 2},
		{name: "parallel ×4 (restart init, streaming executor)", opts: parallel, workers: 4},
		{name: "parallel ×8 (restart init, streaming executor)", opts: parallel, workers: 8},
	}
}
