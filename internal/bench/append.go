package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/relation"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

// appendBatchSpec is one rung of the E12 append sequence: relation rel
// of the E9 database gains the tuples.
type appendBatchSpec struct {
	rel    int
	tuples []relation.Tuple
}

// e12Batches plans the append sequence: eight batches of four tuples,
// rotating over the relations, drawn from a donor chain database of
// the same shape but a different seed (so the appended values join the
// existing chain the way organic growth would).
func e12Batches() ([]appendBatchSpec, error) {
	donor, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 28, Domain: 4, NullRate: 0.1, Seed: 24})
	if err != nil {
		return nil, err
	}
	used := make([]int, donor.NumRelations())
	batches := make([]appendBatchSpec, 0, 8)
	for i := 0; i < 8; i++ {
		rel := i % donor.NumRelations()
		b := appendBatchSpec{rel: rel}
		for j := 0; j < 4; j++ {
			b.tuples = append(b.tuples, *donor.Relation(rel).Tuple(used[rel]))
			used[rel]++
		}
		batches = append(batches, b)
	}
	return batches, nil
}

// rebuildWith is the pre-incremental maintenance path: copy every
// relation tuple by tuple, append the batch, and index the result from
// scratch.
func rebuildWith(db *relation.Database, relIdx int, tuples []relation.Tuple) (*relation.Database, error) {
	rels := make([]*relation.Relation, db.NumRelations())
	for i := range rels {
		src := db.Relation(i)
		rel, err := relation.NewRelation(src.Name(), src.Schema())
		if err != nil {
			return nil, err
		}
		for j := 0; j < src.Len(); j++ {
			if err := rel.AppendTuple(*src.Tuple(j)); err != nil {
				return nil, err
			}
		}
		rels[i] = rel
	}
	for _, t := range tuples {
		if err := rels[relIdx].AppendTuple(t); err != nil {
			return nil, err
		}
	}
	return relation.NewDatabase(rels...)
}

func sortedSetKeys(sets []*tupleset.Set) []string {
	keys := make([]string, len(sets))
	for i, s := range sets {
		keys[i] = s.Key()
	}
	sort.Strings(keys)
	return keys
}

// E12Append renders the append-maintenance benchmark table.
func E12Append() (*Table, error) {
	t, _, err := E12Both()
	return t, err
}

// E12Both measures delta maintenance against rebuild-and-recompute on
// the E9 chain database across a fixed append sequence, rendering the
// markdown table and the BENCH_append.json trajectory record from the
// same run. Both variants maintain the full result list per append —
// the incremental one by patching it with the batch's delta, the
// rebuild one by enumerating the grown database from scratch — and the
// harness fails if their final result multisets ever diverge.
func E12Both() (*Table, *Record, error) {
	opts := core.Options{UseIndex: true, UseJoinIndex: true}
	batches, err := e12Batches()
	if err != nil {
		return nil, nil, err
	}
	rec := &Record{
		Workload:   "append",
		Title:      "Incremental append maintenance vs rebuild (E9 chain workload)",
		Go:         runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	t := &Table{
		ID:     "E12",
		Title:  rec.Title,
		Header: []string{"variant", "ms total", "ms/append", "JCC checks", "tuples scanned", "|FD|"},
		Notes: []string{fmt.Sprintf("%d appends of %d tuples each; the incremental variant extends "+
			"the frozen database in place and enumerates only the batch-anchored delta, the rebuild "+
			"variant re-copies every relation and re-enumerates the full disjunction.",
			len(batches), len(batches[0].tuples))},
	}

	// Incremental: extend in place, enumerate the delta, patch the
	// maintained list.
	db, err := e9DB()
	if err != nil {
		return nil, nil, err
	}
	results, _, err := core.FullDisjunction(db, opts)
	if err != nil {
		return nil, nil, err
	}
	var incStats core.Stats
	incWall, incMallocs, incBytes := measure(func() {
		for _, b := range batches {
			ext, d, aerr := delta.Append(db, b.rel, b.tuples, opts)
			if aerr != nil {
				err = aerr
				return
			}
			results, _ = d.Patch(results)
			incStats.Add(d.Stats)
			db = ext
		}
	})
	if err != nil {
		return nil, nil, err
	}

	// Rebuild: the old AppendRows path — copy, re-index, re-enumerate.
	rdb, err := e9DB()
	if err != nil {
		return nil, nil, err
	}
	var rebuilt []*tupleset.Set
	var rebStats core.Stats
	rebWall, rebMallocs, rebBytes := measure(func() {
		for _, b := range batches {
			next, rerr := rebuildWith(rdb, b.rel, b.tuples)
			if rerr != nil {
				err = rerr
				return
			}
			rdb = next
			var stats core.Stats
			rebuilt, stats, rerr = core.FullDisjunction(rdb, opts)
			if rerr != nil {
				err = rerr
				return
			}
			rebStats.Add(stats)
		}
	})
	if err != nil {
		return nil, nil, err
	}

	ik, rk := sortedSetKeys(results), sortedSetKeys(rebuilt)
	if len(ik) != len(rk) {
		return nil, nil, fmt.Errorf("E12: incremental maintained %d results, rebuild %d", len(ik), len(rk))
	}
	for i := range ik {
		if ik[i] != rk[i] {
			return nil, nil, fmt.Errorf("E12: result multisets diverge at %d: %q vs %q", i, ik[i], rk[i])
		}
	}
	if got, want := db.Fingerprint(), rdb.Fingerprint(); got != want {
		return nil, nil, fmt.Errorf("E12: rolled fingerprint %016x != rebuilt %016x", got, want)
	}

	perAppend := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / 1000 / float64(len(batches))
	}
	for _, v := range []struct {
		name            string
		wall            time.Duration
		stats           core.Stats
		mallocs, bytes  uint64
		resultsAtTheEnd int
	}{
		{"incremental (extend + delta + patch)", incWall, incStats, incMallocs, incBytes, len(results)},
		{"rebuild (copy + re-index + re-enumerate)", rebWall, rebStats, rebMallocs, rebBytes, len(rebuilt)},
	} {
		rec.Variants = append(rec.Variants, Metric{
			Name:          v.name,
			WallMillis:    float64(v.wall.Microseconds()) / 1000,
			Results:       v.resultsAtTheEnd,
			Workers:       1,
			JCCChecks:     v.stats.JCCChecks,
			SigHits:       v.stats.SigHits,
			SigRebuilds:   v.stats.SigRebuilds,
			TuplesScanned: v.stats.TuplesScanned,
			TuplesSkipped: v.stats.TuplesSkipped,
			IndexProbes:   v.stats.IndexProbes,
			ListScans:     v.stats.ListScans,
			PageReads:     v.stats.PageReads,
			Mallocs:       v.mallocs,
			BytesAlloc:    v.bytes,
			Phases:        map[string]float64{"per_append_ms": perAppend(v.wall)},
		})
		t.Rows = append(t.Rows, []string{
			v.name,
			msec(v.wall),
			fmt.Sprintf("%.3f", perAppend(v.wall)),
			fmt.Sprintf("%d", v.stats.JCCChecks),
			fmt.Sprintf("%d", v.stats.TuplesScanned),
			fmt.Sprintf("%d", v.resultsAtTheEnd),
		})
	}
	return t, rec, nil
}
