package bench

import (
	"fmt"

	fd "repro"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/rank"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

// E4TotalRuntime compares the total cost of INCREMENTALFD (Cor 4.9,
// O(sn³f²)) against the BatchFD stand-in for [3] (O(s²n⁵f²)) as the
// database grows. The claim under test is the shape: the baseline's
// cost grows with an extra polynomial factor, so the ratio widens.
func E4TotalRuntime() (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Total runtime vs database size — IncrementalFD vs BatchFD ([3] stand-in)",
		Header: []string{"tuples/rel", "s (size)", "|FD|", "incremental ms", "batch ms",
			"batch/incr", "incr JCC checks", "batch JCC checks"},
	}
	for _, m := range []int{8, 16, 24, 32} {
		db, err := workload.Chain(workload.Config{
			Relations: 4, TuplesPerRelation: m, Domain: 4, NullRate: 0.1, Seed: 11})
		if err != nil {
			return nil, err
		}
		var sets []*tupleset.Set
		var incrStats core.Stats
		incrTime := timeIt(func() {
			sets, incrStats, err = core.FullDisjunction(db, core.Options{UseIndex: true})
		})
		if err != nil {
			return nil, err
		}
		var batchSets []*tupleset.Set
		var batchStats batch.Stats
		batchTime := timeIt(func() {
			batchSets, batchStats = batch.FullDisjunction(db)
		})
		if len(batchSets) != len(sets) {
			return nil, fmt.Errorf("E4: output mismatch: %d vs %d", len(sets), len(batchSets))
		}
		ratio := float64(batchTime) / float64(incrTime)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", db.Size()),
			fmt.Sprintf("%d", len(sets)),
			msec(incrTime),
			msec(batchTime),
			fmt.Sprintf("%.1fx", ratio),
			fmt.Sprintf("%d", incrStats.JCCChecks),
			fmt.Sprintf("%d", batchStats.JCCChecks),
		})
	}
	t.Notes = append(t.Notes,
		"Expected shape (paper §4): both polynomial in s and f, with the batch baseline "+
			"carrying an extra s·n²-order factor, so its column grows faster and the ratio widens.")
	return t, nil
}

// E5TimeToK measures the PINC claim (Thm 4.10 / Cor 4.11): the time to
// the k-th answer grows polynomially in k for IncrementalFD, while the
// batch baseline pays its full cost before the first answer.
func E5TimeToK() (*Table, error) {
	db, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 24, Domain: 4, NullRate: 0.1, Seed: 7})
	if err != nil {
		return nil, err
	}
	// Batch: a single run, all answers at the end.
	var batchTime time.Duration
	var batchSets int
	batchTime = timeIt(func() {
		sets, _ := batch.FullDisjunction(db)
		batchSets = len(sets)
	})
	t := &Table{
		ID:    "E5",
		Title: "Time to k-th answer — incremental vs batch (batch emits nothing early)",
		Header: []string{"k", "incremental ms", "batch ms (any k)",
			"incremental fraction of batch"},
	}
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64, batchSets} {
		if k > batchSets {
			k = batchSets
		}
		var incTime time.Duration
		count := 0
		incTime = timeIt(func() {
			_, err = core.Stream(db, core.Options{UseIndex: true}, func(*tupleset.Set) bool {
				count++
				return count < k
			})
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			msec(incTime),
			msec(batchTime),
			fmt.Sprintf("%.1f%%", 100*float64(incTime)/float64(batchTime)),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"|FD| = %d. Expected shape: the incremental column starts near zero and approaches "+
			"the batch column as k → |FD|; the batch column is flat because [3]-style evaluation "+
			"cannot emit anything before finishing.", batchSets))
	return t, nil
}

// E6TopK measures ranked retrieval (Thm 5.5): top-k via
// PriorityIncrementalFD vs computing the whole full disjunction and
// sorting.
func E6TopK() (*Table, error) {
	db, err := workload.Star(workload.Config{
		Relations: 5, TuplesPerRelation: 20, Domain: 4, NullRate: 0.05, ImpMax: 100, Seed: 13})
	if err != nil {
		return nil, err
	}
	u := tupleset.NewUniverse(db)
	f := rank.FMax{}

	// Baseline: materialise FD, then sort by rank.
	var allTime time.Duration
	var fdSize int
	allTime = timeIt(func() {
		sets, _, e := core.FullDisjunction(db, core.Options{UseIndex: true})
		if e != nil {
			err = e
			return
		}
		fdSize = len(sets)
		// Sorting cost is negligible; include rank evaluation.
		for _, s := range sets {
			_ = f.Rank(u, s)
		}
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E6",
		Title:  "Top-(k, fmax) — PriorityIncrementalFD vs compute-all-then-sort",
		Header: []string{"k", "ranked ms", "compute-all ms", "ranked fraction"},
	}
	for _, k := range []int{1, 5, 10, 25, 50} {
		var rankedTime time.Duration
		rankedTime = timeIt(func() {
			_, _, err = runQuery(db, fd.Query{Mode: fd.ModeRanked, Rank: "fmax", K: k,
				Options: fd.QueryOptions{UseIndex: true}})
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			msec(rankedTime),
			msec(allTime),
			fmt.Sprintf("%.1f%%", 100*float64(rankedTime)/float64(allTime)),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"|FD| = %d. Expected shape: ranked retrieval costs grow with k and stay below "+
			"materialise-everything for k ≪ |FD|; answers additionally arrive in rank order, "+
			"which the baseline only achieves after the final sort.", fdSize))
	return t, nil
}

// E7Hardness illustrates Proposition 5.1: top-(1,fsum) needs the whole
// (exponential-time) brute-force enumeration, while top-(1,fmax) runs
// via PriorityIncrementalFD in polynomial time. The brute-force column
// grows explosively with n on clique schemas.
func E7Hardness() (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "Top-1 under fsum (NP-hard, brute force) vs fmax (ranked enumeration)",
		Header: []string{"relations n", "JCC sets enumerated", "fsum brute ms",
			"fmax ranked ms", "top-1 fsum = n tuples?"},
	}
	for _, n := range []int{3, 4, 5, 6, 7} {
		db, err := workload.Clique(workload.Config{
			Relations: n, TuplesPerRelation: 4, Domain: 2, ImpMax: 1, Seed: 5})
		if err != nil {
			return nil, err
		}
		u := tupleset.NewUniverse(db)
		fsum := rank.FSum{}
		var enumerated int
		var bruteTop *tupleset.Set
		bruteTime := timeIt(func() {
			enumerated = len(naive.EnumerateConnected(u, func(s *tupleset.Set) bool { return u.JCC(s) }))
			top := naive.TopK(db, func(s *tupleset.Set) float64 { return fsum.Rank(u, s) }, 1)
			bruteTop = top[0]
		})
		var rankedTime time.Duration
		var err2 error
		rankedTime = timeIt(func() {
			_, _, err2 = runQuery(db, fd.Query{Mode: fd.ModeRanked, Rank: "fmax", K: 1,
				Options: fd.QueryOptions{UseIndex: true}})
		})
		if err2 != nil {
			return nil, err2
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", enumerated),
			msec(bruteTime),
			msec(rankedTime),
			fmt.Sprintf("%v", bruteTop.Len() == n),
		})
	}
	t.Notes = append(t.Notes,
		"Expected shape (Prop 5.1): with imp(t)=1, the top-1 fsum answer decides natural-join "+
			"emptiness, so no c-determined shortcut exists; the brute-force column (and the number "+
			"of JCC sets) grows exponentially in n while the fmax column stays flat.")
	return t, nil
}
