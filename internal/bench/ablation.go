package bench

import (
	"context"
	"fmt"
	"time"

	fd "repro"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/join"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

// E8ApproxSweep sweeps the threshold τ of the approximate full
// disjunction on a dirty chain workload, for Amin (efficiently
// computable) and Aprod (generic fallback).
func E8ApproxSweep() (*Table, error) {
	db, err := workload.DirtyChain(workload.DirtyConfig{
		Config:    workload.Config{Relations: 4, TuplesPerRelation: 12, Domain: 4, Seed: 19},
		ErrorRate: 0.35, MaxEdits: 2, MinProb: 0.4,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E8",
		Title: "Approximate full disjunction vs threshold τ (dirty chain, Levenshtein sim)",
		Header: []string{"τ", "Amin |AFD|", "Amin ms", "Amin multi-tuple results",
			"Aprod |AFD|", "Aprod ms"},
	}
	for _, tau := range []float64{0.95, 0.9, 0.8, 0.7, 0.6, 0.5} {
		var aminSets []fd.Result
		aminTime := timeIt(func() {
			aminSets, _, err = runQuery(db, fd.Query{Mode: fd.ModeApprox, Tau: tau,
				Options: fd.QueryOptions{UseIndex: true}})
		})
		if err != nil {
			return nil, err
		}
		multi := 0
		for _, r := range aminSets {
			if r.Set.Len() > 1 {
				multi++
			}
		}
		aprod := &approx.Aprod{S: approx.LevenshteinSim{}}
		var aprodSets []*tupleset.Set
		aprodTime := timeIt(func() {
			aprodSets, _, err = approx.FullDisjunction(db, aprod, tau, core.Options{UseIndex: true})
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", tau),
			fmt.Sprintf("%d", len(aminSets)),
			msec(aminTime),
			fmt.Sprintf("%d", multi),
			fmt.Sprintf("%d", len(aprodSets)),
			msec(aprodTime),
		})
	}
	t.Notes = append(t.Notes,
		"Expected shape (§6): lowering τ admits more approximate matches, so multi-tuple results "+
			"grow as τ falls (misspelled joins are recovered) and the result count reflects the "+
			"merge/coverage balance. Runtime stays polynomial for Amin at every τ (Thm 6.6).")
	return t, nil
}

// E9Ablations measures the §7 engineering choices: the hash index, the
// three Incomplete initialisation strategies, and block-based
// execution.
func E9Ablations() (*Table, error) {
	return e9Table(nil)
}

// e9Cursor is the streaming surface both E9 drivers share, so one
// phased drain covers the sequential cursor and the parallel executor.
type e9Cursor interface {
	Next() (*tupleset.Set, bool)
	Stats() core.Stats
	Err() error
	Close()
}

// drainPhased runs one E9 rung to exhaustion under an execution trace:
// "init" (cursor construction), "enumerate" (the Next loop) and
// "drain" (error check, close, and — for parallel rungs — the
// canonical sort that makes their deliverable comparable) are recorded
// as spans, and the per-phase times are read back from the snapshot.
// The -json phases therefore come from the same span machinery a
// served query's GET /queries/{id}/trace uses, not a parallel set of
// stopwatches. The enumerate loop also feeds an obs.Delay tracker, so
// each rung carries its measured inter-result delay profile.
func drainPhased(db *relation.Database, v e9Variant) ([]*tupleset.Set, core.Stats, map[string]float64, obs.DelaySummary, error) {
	tr := obs.NewTrace("e9", nil)
	root := tr.Root()
	sp := root.Start("init")
	var (
		c   e9Cursor
		err error
	)
	if v.workers > 1 {
		c, err = core.NewParallelCursor(context.Background(), db, v.opts, v.workers)
	} else {
		c, err = core.NewCursor(context.Background(), db, v.opts)
	}
	sp.End()
	if err != nil {
		return nil, core.Stats{}, nil, obs.DelaySummary{}, err
	}
	delay := obs.NewDelay(0)
	sp = root.Start("enumerate")
	var out []*tupleset.Set
	last := time.Now()
	for {
		t, ok := c.Next()
		if !ok {
			break
		}
		now := time.Now()
		delay.Observe(now.Sub(last))
		last = now
		out = append(out, t)
	}
	sp.End()
	sp = root.Start("drain")
	err = c.Err()
	stats := c.Stats()
	c.Close()
	if err == nil && v.workers > 1 {
		tupleset.SortSets(db, out)
	}
	sp.End()
	root.End()
	if err != nil {
		return nil, stats, nil, obs.DelaySummary{}, err
	}
	return out, stats, phaseMillis(tr.Snapshot()), delay.Snapshot(), nil
}

// phaseMillis folds the trace's phase spans into name → milliseconds.
func phaseMillis(d *obs.TraceData) map[string]float64 {
	out := make(map[string]float64, 3)
	for _, name := range []string{"init", "enumerate", "drain"} {
		for _, sp := range d.FindAll(name) {
			out[name] += float64(sp.DurationNanos) / 1e6
		}
	}
	return out
}

// e9Table runs the E9 ablation ladder and the buffer-pool sweep,
// rendering the markdown table. When rec is non-nil, the ladder's
// measurements (wall-clock, counters, allocation deltas) are also
// appended to it, so one run feeds both artifacts.
func e9Table(rec *Record) (*Table, error) {
	db, err := e9DB()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E9",
		Title:  "Section 7 ablations (chain workload)",
		Header: []string{"variant", "ms", "JCC checks", "sig hits", "tuples scanned", "tuples skipped", "list scans", "page reads", "|FD|"},
	}
	var baseline int
	for i, v := range e9Variants() {
		var sets []*tupleset.Set
		var stats core.Stats
		var phases map[string]float64
		var delays obs.DelaySummary
		d, mallocs, bytes := measure(func() {
			sets, stats, phases, delays, err = drainPhased(db, v)
		})
		if err != nil {
			return nil, err
		}
		if i == 0 {
			baseline = len(sets)
		} else if len(sets) != baseline {
			return nil, fmt.Errorf("E9: variant %q changed the output: %d vs %d", v.name, len(sets), baseline)
		}
		workers := v.workers
		if workers < 1 {
			workers = 1
		}
		if rec != nil {
			rec.Variants = append(rec.Variants, Metric{
				Name:           v.name,
				WallMillis:     float64(d.Microseconds()) / 1000,
				Results:        len(sets),
				Workers:        workers,
				JCCChecks:      stats.JCCChecks,
				SigHits:        stats.SigHits,
				SigRebuilds:    stats.SigRebuilds,
				TuplesScanned:  stats.TuplesScanned,
				TuplesSkipped:  stats.TuplesSkipped,
				IndexProbes:    stats.IndexProbes,
				ListScans:      stats.ListScans,
				PageReads:      stats.PageReads,
				Mallocs:        mallocs,
				BytesAlloc:     bytes,
				DelayMaxMillis: delays.MaxMillis,
				DelayP99Millis: delays.P99Millis,
				Phases:         phases,
			})
		}
		t.Rows = append(t.Rows, []string{
			v.name,
			msec(d),
			fmt.Sprintf("%d", stats.JCCChecks),
			fmt.Sprintf("%d", stats.SigHits),
			fmt.Sprintf("%d", stats.TuplesScanned),
			fmt.Sprintf("%d", stats.TuplesSkipped),
			fmt.Sprintf("%d", stats.ListScans),
			fmt.Sprintf("%d", stats.PageReads),
			fmt.Sprintf("%d", len(sets)),
		})
	}
	// Buffer-pool sweep: page reads (= misses) vs pool capacity, on top
	// of the fastest variant.
	const block = 8
	totalPages := 0
	for i := 0; i < db.NumRelations(); i++ {
		totalPages += (db.Relation(i).Len() + block - 1) / block
	}
	for _, capacity := range []int{1, totalPages / 2, totalPages} {
		pool := storage.NewBufferPool(capacity)
		opts := core.Options{UseIndex: true, UseJoinIndex: true, Strategy: core.InitSeeded, BlockSize: block, Pool: pool}
		var stats core.Stats
		d := timeIt(func() {
			_, stats, err = core.FullDisjunction(db, opts)
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("+ buffer pool of %d/%d pages (hit rate %.0f%%)",
				capacity, totalPages, 100*pool.HitRate()),
			msec(d),
			fmt.Sprintf("%d", stats.JCCChecks),
			fmt.Sprintf("%d", stats.SigHits),
			fmt.Sprintf("%d", stats.TuplesScanned),
			fmt.Sprintf("%d", stats.TuplesSkipped),
			fmt.Sprintf("%d", stats.ListScans),
			fmt.Sprintf("%d", stats.PageReads),
			fmt.Sprintf("%d", baseline),
		})
	}
	t.Notes = append(t.Notes,
		"Expected shape (§7): the hash index collapses the list-scan column; the dictionary-code "+
			"join-candidate index replaces full sweeps by equi-match candidates (tuples skipped ≫ "+
			"tuples scanned) and cuts JCC checks accordingly; the seeded/projected initialisations "+
			"cut repeated work across per-relation passes; larger blocks divide the simulated page "+
			"reads, and a buffer pool sized to the database turns repeated scans into hits (page "+
			"reads = cold misses only). The output is identical for every variant.")
	return t, nil
}

// E10Outerjoin compares the Rajaraman–Ullman outerjoin sequence [2]
// against INCREMENTALFD on γ-acyclic chain workloads — the only
// terrain where [2] applies at all.
func E10Outerjoin() (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "γ-acyclic chains — outerjoin sequence [2] vs IncrementalFD",
		Header: []string{"tuples/rel", "|FD| (padded)", "outerjoin ms", "incremental ms",
			"outputs equal"},
	}
	for _, m := range []int{8, 16, 24, 32} {
		db, err := workload.Chain(workload.Config{
			Relations: 4, TuplesPerRelation: m, Domain: 4, NullRate: 0.1, Seed: 29})
		if err != nil {
			return nil, err
		}
		var padded *join.PaddedRelation
		ojTime := timeIt(func() {
			padded, err = join.FullDisjunction(db)
		})
		if err != nil {
			return nil, err
		}
		var sets []*tupleset.Set
		incTime := timeIt(func() {
			sets, _, err = core.FullDisjunction(db, core.Options{UseIndex: true})
		})
		if err != nil {
			return nil, err
		}
		u := tupleset.NewUniverse(db)
		attrs := u.AllAttributes()
		coreKeys := map[string]bool{}
		for _, s := range sets {
			coreKeys[u.PadOver(s, attrs).Key()] = true
		}
		equal := len(coreKeys) == len(padded.Keys())
		if equal {
			for _, k := range padded.Keys() {
				if !coreKeys[k] {
					equal = false
					break
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", len(padded.Keys())),
			msec(ojTime),
			msec(incTime),
			fmt.Sprintf("%v", equal),
		})
	}
	t.Notes = append(t.Notes,
		"Expected shape (§1, [2]): the outerjoin sequence is competitive on small γ-acyclic inputs "+
			"but materialises every intermediate result (no incrementality) and is inapplicable to "+
			"cyclic schemas such as the tourist triangle, where IncrementalFD still runs.")
	return t, nil
}

// E11Threshold sweeps the (τ,f)-threshold variant of Remark 5.6.
func E11Threshold() (*Table, error) {
	db, err := workload.Star(workload.Config{
		Relations: 5, TuplesPerRelation: 16, Domain: 4, NullRate: 0.05, ImpMax: 100, Seed: 37})
	if err != nil {
		return nil, err
	}
	full, _, err := core.FullDisjunction(db, core.Options{UseIndex: true})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E11",
		Title:  "Threshold full disjunction (Remark 5.6) — results with fmax ≥ τ",
		Header: []string{"τ", "results", "fraction of |FD|", "ms"},
	}
	for _, tau := range []float64{95, 90, 75, 50, 25, 1} {
		var got []fd.Result
		d := timeIt(func() {
			got, _, err = runQuery(db, fd.Query{Mode: fd.ModeRanked, Rank: "fmax", RankTau: tau,
				Options: fd.QueryOptions{UseIndex: true}})
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", tau),
			fmt.Sprintf("%d", len(got)),
			fmt.Sprintf("%.0f%%", 100*float64(len(got))/float64(len(full))),
			msec(d),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"|FD| = %d. Expected shape: higher thresholds return fewer results in less time; the "+
			"enumeration stops at the first below-threshold answer thanks to the ranking order "+
			"guarantee (Lemma 5.4).", len(full)))
	return t, nil
}
