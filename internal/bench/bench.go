// Package bench is the experiment harness behind EXPERIMENTS.md and
// cmd/fdbench: each experiment E1–E12 regenerates one artifact of the
// paper (a table, a worked example, or a complexity/behaviour claim)
// and reports it as a formatted table. Wall-clock numbers are
// laptop-scale; the claims under test are shapes (who wins, how costs
// grow), which the instrumentation counters capture robustly.
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	fd "repro"
	"repro/internal/relation"
)

// runQuery drains a declarative query against db through fd.Open — the
// same execution path the service and the CLIs use — so benchmarks of
// query-shaped workloads measure the production API, not a private
// re-encoding of it.
func runQuery(db *relation.Database, q fd.Query) ([]fd.Result, fd.Stats, error) {
	rs, err := fd.Open(context.Background(), db, q)
	if err != nil {
		return nil, fd.Stats{}, err
	}
	defer rs.Close()
	var out []fd.Result
	for {
		r, ok := rs.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out, rs.Stats(), rs.Err()
}

// Table is one experiment's result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Markdown renders the table as GitHub-flavoured markdown. Pipes inside
// cells (e.g. the |FD| notation) are escaped so columns stay aligned.
func (t *Table) Markdown() string {
	esc := func(cells []string) []string {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		return out
	}
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(esc(t.Header), " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(esc(row), " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

// Experiment runs one experiment.
type Experiment func() (*Table, error)

// Registry maps experiment ids to their runners.
func Registry() map[string]Experiment {
	return map[string]Experiment{
		"E1":  E1Tourist,
		"E2":  E2Trace,
		"E3":  E3ApproxExample,
		"E4":  E4TotalRuntime,
		"E5":  E5TimeToK,
		"E6":  E6TopK,
		"E7":  E7Hardness,
		"E8":  E8ApproxSweep,
		"E9":  E9Ablations,
		"E10": E10Outerjoin,
		"E11": E11Threshold,
		"E12": E12Append,
	}
}

// IDs returns the experiment ids in order.
func IDs() []string {
	ids := make([]string, 0)
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// E1 < E2 < ... < E10 < E11 (numeric suffix).
		var a, b int
		fmt.Sscanf(ids[i], "E%d", &a)
		fmt.Sscanf(ids[j], "E%d", &b)
		return a < b
	})
	return ids
}

// RunAll executes every experiment in order and returns the tables.
func RunAll() ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		t, err := Registry()[id]()
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// msec formats a duration in milliseconds with three significant
// decimals.
func msec(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

// timeIt measures fn.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
