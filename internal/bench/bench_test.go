package bench

import (
	"strings"
	"testing"
)

// The fast, deterministic experiments run as golden smoke tests; the
// scaling experiments (E4–E11) are exercised via cmd/fdbench and the
// root benchmarks because their runtimes are benchmark-scale.

func TestE1GoldenTable2(t *testing.T) {
	table, err := E1Tourist()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("E1 produced %d rows, want 6", len(table.Rows))
	}
	wantSets := []string{"{c1, a1}", "{c1, a2, s1}", "{c1, s2}", "{c2, s3}", "{c2, s4}", "{c3, a3}"}
	for i, row := range table.Rows {
		if row[0] != wantSets[i] {
			t.Errorf("row %d = %s, want %s", i, row[0], wantSets[i])
		}
	}
	md := table.Markdown()
	if !strings.Contains(md, "| {c1, a2, s1} | London | diverse | Canada | Ramada | Air Show | 3 |") {
		t.Errorf("markdown rendering broken:\n%s", md)
	}
}

func TestE2GoldenTable3(t *testing.T) {
	table, err := E2Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("E2 produced %d iterations, want 6", len(table.Rows))
	}
	// Iteration 1 column of Table 3.
	if table.Rows[0][2] != "{c1, a2, s1}; {c1, s2}; {c2}; {c3}" {
		t.Errorf("iteration 1 Incomplete = %s", table.Rows[0][2])
	}
	// Final Complete holds all six results.
	last := table.Rows[5][3]
	if !strings.Contains(last, "{c3, a3}") || strings.Count(last, "{") != 6 {
		t.Errorf("final Complete = %s", last)
	}
}

func TestE3GoldenApprox(t *testing.T) {
	table, err := E3ApproxExample()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"Amin({c1,a2,s2})":  "0.50",
		"Aprod({c1,a2,s2})": "0.32",
	}
	for _, row := range table.Rows {
		if w, ok := want[row[0]]; ok && row[2] != w {
			t.Errorf("%s = %s, want %s", row[0], row[2], w)
		}
	}
	// The Aprod split must contain both subsets.
	found := false
	for _, row := range table.Rows {
		if strings.HasPrefix(row[0], "Aprod maximal") {
			found = true
			if !strings.Contains(row[2], "{c1, s2}") || !strings.Contains(row[2], "{a2, s2}") {
				t.Errorf("Aprod split = %s", row[2])
			}
		}
	}
	if !found {
		t.Error("Aprod maximal-subset row missing")
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 12 {
		t.Fatalf("registry has %d experiments, want 12: %v", len(ids), ids)
	}
	if ids[0] != "E1" || ids[9] != "E10" || ids[10] != "E11" || ids[11] != "E12" {
		t.Errorf("ordering wrong: %v", ids)
	}
	for _, id := range ids {
		if Registry()[id] == nil {
			t.Errorf("experiment %s missing", id)
		}
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "t",
		Header: []string{"|FD|"},
		Rows:   [][]string{{"a|b"}},
	}
	md := tab.Markdown()
	if !strings.Contains(md, `\|FD\|`) || !strings.Contains(md, `a\|b`) {
		t.Errorf("pipes not escaped:\n%s", md)
	}
}
