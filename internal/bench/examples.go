package bench

import (
	"fmt"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

// E1Tourist regenerates Table 2: the full disjunction of the tourist
// relations, with the padded-tuple rendering.
func E1Tourist() (*Table, error) {
	db := workload.Tourist()
	results, stats, err := core.FullDisjunction(db, core.Options{})
	if err != nil {
		return nil, err
	}
	u := tupleset.NewUniverse(db)
	attrs := u.AllAttributes()
	t := &Table{
		ID:     "E1",
		Title:  "Table 2 — FD(Climates, Accommodations, Sites)",
		Header: []string{"tuple set"},
	}
	for _, a := range attrs {
		t.Header = append(t.Header, string(a))
	}
	tupleset.SortSets(db, results)
	for _, s := range results {
		row := []string{s.Format(db)}
		for _, v := range u.PadOver(s, attrs).Values {
			row = append(row, v.String())
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d tuple sets; paper's Table 2 lists the same six. Stats: %s.", len(results), stats))
	return t, nil
}

// E2Trace regenerates Table 3: the Incomplete/Complete lists after each
// iteration of INCREMENTALFD({Climates,Accommodations,Sites}, 1).
func E2Trace() (*Table, error) {
	db := workload.Tourist()
	u := tupleset.NewUniverse(db)
	t := &Table{
		ID:     "E2",
		Title:  "Table 3 — trace of IncrementalFD(R, 1)",
		Header: []string{"iteration", "printed", "Incomplete", "Complete"},
	}
	opts := core.Options{Trace: func(iter int, printed *tupleset.Set, inc, comp []*tupleset.Set) {
		incStr := make([]string, len(inc))
		for i, s := range inc {
			incStr[i] = s.Format(db)
		}
		compStr := make([]string, len(comp))
		for i, s := range comp {
			compStr[i] = s.Format(db)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", iter),
			printed.Format(db),
			joinList(incStr),
			joinList(compStr),
		})
	}}
	e, err := core.NewEnumerator(u, 0, opts)
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := e.Next(); !ok {
			break
		}
	}
	t.Notes = append(t.Notes,
		"Matches Table 3 of the paper column for column (list discipline: pop front, new sets grouped at the front).")
	return t, nil
}

func joinList(parts []string) string {
	if len(parts) == 0 {
		return "∅"
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += "; " + p
	}
	return out
}

// E3ApproxExample regenerates the Fig 4 / Example 6.1 / Example 6.3
// values: Amin and Aprod scores and the maximal-subset split at τ=0.4.
func E3ApproxExample() (*Table, error) {
	db, sims := workload.TouristApprox()
	u := tupleset.NewUniverse(db)
	sim := approx.NewSimTable(sims)
	amin := &approx.Amin{S: sim}
	aprod := &approx.Aprod{S: sim}

	var c1, a2, s1, s2 = refOf(db, "c1"), refOf(db, "a2"), refOf(db, "s1"), refOf(db, "s2")

	t1 := u.FromRefs(c1, a2, s2)
	T := u.FromRefs(c1, s1, a2)

	t := &Table{
		ID:     "E3",
		Title:  "Fig 4 / Examples 6.1 & 6.3 — approximate join functions",
		Header: []string{"quantity", "paper", "measured"},
	}
	t.Rows = append(t.Rows,
		[]string{"Amin({c1,a2,s2})", "0.5", fmt.Sprintf("%.2f", amin.Score(u, t1))},
		[]string{"Aprod({c1,a2,s2})", "0.32", fmt.Sprintf("%.2f", aprod.Score(u, t1))},
	)
	gotMin := amin.MaximalSubsets(u, T, s2, 0.4)
	gotProd := aprod.MaximalSubsets(u, T, s2, 0.4)
	t.Rows = append(t.Rows,
		[]string{"Amin maximal subsets (T={c1,s1,a2}, tb=s2, τ=0.4)", "{c1,s2,a2}", formatSetList(db, gotMin)},
		[]string{"Aprod maximal subsets (same)", "{c1,s2} and {s2,a2}", formatSetList(db, gotProd)},
	)
	return t, nil
}

func formatSetList(db *relation.Database, sets []*tupleset.Set) string {
	names := make([]string, len(sets))
	for i, s := range sets {
		names[i] = s.Format(db)
	}
	return joinList(names)
}

// refOf resolves a tuple label to its Ref; it panics on unknown labels
// (the tourist labels are fixed).
func refOf(db *relation.Database, label string) relation.Ref {
	var out relation.Ref
	found := false
	db.ForEachRef(func(ref relation.Ref) bool {
		if db.Label(ref) == label {
			out = ref
			found = true
			return false
		}
		return true
	})
	if !found {
		panic("bench: unknown tuple label " + label)
	}
	return out
}
