package relation

// JoinIndex is the equi-join candidate index of a Database: for every
// relation and attribute position, a posting map from dictionary code to
// the ascending list of tuple indices carrying that code in that column.
//
// Together with the shared-attribute position pairs the database already
// precomputes, this turns "which tuples of relation j can possibly be
// join consistent with tuple t of relation i?" into a single map lookup:
// take t's code on the first shared position and read the posting list
// of the opposite column. NullCode never appears in a posting list — a
// null joins with nothing.
type JoinIndex struct {
	// postings[rel][pos] maps code → tuple indices (ascending).
	postings [][]map[int32][]int32
}

// buildJoinIndex constructs the index from the columnar code mirror.
func buildJoinIndex(cols [][][]int32) *JoinIndex {
	ix := &JoinIndex{postings: make([][]map[int32][]int32, len(cols))}
	for r, relCols := range cols {
		ix.postings[r] = make([]map[int32][]int32, len(relCols))
		for p, col := range relCols {
			m := make(map[int32][]int32)
			for idx, code := range col {
				if code == NullCode {
					continue
				}
				m[code] = append(m[code], int32(idx))
			}
			ix.postings[r][p] = m
		}
	}
	return ix
}

// extend derives the index of a database whose relation relIdx grew by
// appended tuples (Database.Extend): every other relation's posting
// maps are shared by pointer with the base index, and relIdx's maps are
// rebuilt with the new tuples' codes posted. Appended tuples take the
// highest indices, so posting lists stay ascending by construction.
// Posting slices that gain entries are reallocated rather than appended
// in place — the base index's slices may have spare capacity, and a
// shared-array write would corrupt the parent database under readers.
func (ix *JoinIndex) extend(relIdx int, relCols [][]int32, firstNew int) *JoinIndex {
	nd := &JoinIndex{postings: make([][]map[int32][]int32, len(ix.postings))}
	copy(nd.postings, ix.postings)
	maps := make([]map[int32][]int32, len(relCols))
	for p, col := range relCols {
		old := ix.postings[relIdx][p]
		m := make(map[int32][]int32, len(old)+1)
		for code, refs := range old {
			m[code] = refs
		}
		for idx := firstNew; idx < len(col); idx++ {
			code := col[idx]
			if code == NullCode {
				continue
			}
			refs := m[code]
			grown := make([]int32, len(refs), len(refs)+1)
			copy(grown, refs)
			m[code] = append(grown, int32(idx))
		}
		maps[p] = m
	}
	nd.postings[relIdx] = maps
	return nd
}

// Counts reports the index's size: the number of posting lists (one
// per distinct non-null code per column) and the total tuple
// references posted across all of them — the statistics fd.Explain
// reports for an engaged join index.
func (ix *JoinIndex) Counts() (lists, entries int) {
	for _, rel := range ix.postings {
		for _, m := range rel {
			lists += len(m)
			for _, refs := range m {
				entries += len(refs)
			}
		}
	}
	return lists, entries
}

// Postings returns the tuple indices of relation rel whose value at
// schema position pos has the given code, in ascending order. The
// returned slice is shared and must not be modified. NullCode and codes
// absent from the column yield nil.
func (ix *JoinIndex) Postings(rel, pos int, code int32) []int32 {
	if code == NullCode {
		return nil
	}
	return ix.postings[rel][pos][code]
}
