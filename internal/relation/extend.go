package relation

import "fmt"

// Extend returns a new frozen Database equal to db with tuples appended
// to relation relIdx, built incrementally: O(batch) fresh encoding work
// plus O(relations + |R_relIdx|) pointer/header copies, instead of the
// O(database) rebuild-and-reencode a from-scratch construction costs.
//
// The derived database shares memory with db wherever content is
// unchanged — the connection graph, every other relation and its code
// columns, the dictionary's base maps, and every other relation's
// join-index posting maps — and db itself is never written: readers of
// db (live cursors, cached tuple sets) remain valid concurrently with
// and after the call. Per-relation state of relIdx is copy-on-write:
//
//   - the relation is a fresh frozen Relation whose tuple slice is the
//     old tuples (header-copied) plus the batch;
//   - the code columns are reallocated from one new flat array, the old
//     prefix copied, the batch interned through a dictionary overlay
//     (Dict.derive) that assigns codes above the shared base so every
//     existing code — and every tuple-set binding holding one — keeps
//     its meaning;
//   - the join index is derived with only relIdx's posting maps copied
//     (JoinIndex.extend);
//   - the content fingerprint is rolled: relIdx's fingerprint chain is
//     continued over the batch (fpChainTuple) and recombined, so the
//     result equals the fingerprint a from-scratch build of the same
//     content would compute.
//
// Extend freezes db first (it reads the mirror and the chain states).
// Validation mirrors AppendTuple: value count must match the schema
// width and Prob must lie in [0,1]. The batch must be non-empty — an
// empty extension would mint a second Database with db's fingerprint
// for no reason.
func (db *Database) Extend(relIdx int, tuples []Tuple) (*Database, error) {
	if relIdx < 0 || relIdx >= len(db.rels) {
		return nil, fmt.Errorf("relation: extend: relation index %d out of range [0,%d)", relIdx, len(db.rels))
	}
	base := db.rels[relIdx]
	if len(tuples) == 0 {
		return nil, fmt.Errorf("relation: extend %s: empty tuple batch", base.name)
	}
	width := base.schema.Len()
	for i := range tuples {
		t := &tuples[i]
		if len(t.Values) != width {
			return nil, fmt.Errorf("relation: extend %s: tuple %d has %d values, schema has %d attributes",
				base.name, i, len(t.Values), width)
		}
		if t.Prob < 0 || t.Prob > 1 {
			return nil, fmt.Errorf("relation: extend %s: tuple %d probability %v outside [0,1]",
				base.name, i, t.Prob)
		}
	}
	db.Fingerprint() // freeze, encode, and materialise the chain states

	firstNew := base.Len()
	m := firstNew + len(tuples)

	nt := make([]Tuple, m)
	copy(nt, base.tuples)
	copy(nt[firstNew:], tuples)
	rel := &Relation{name: base.name, schema: base.schema, tuples: nt, frozen: true}

	rels := make([]*Relation, len(db.rels))
	copy(rels, db.rels)
	rels[relIdx] = rel

	dict := db.dict.derive()
	flat := make([]int32, width*m)
	relCols := make([][]int32, width)
	for p := range relCols {
		relCols[p] = flat[p*m : (p+1)*m : (p+1)*m]
		copy(relCols[p], db.cols[relIdx][p])
	}
	imp := make([]float64, m)
	prob := make([]float64, m)
	copy(imp, db.imps[relIdx])
	copy(prob, db.probs[relIdx])
	for i := firstNew; i < m; i++ {
		t := &nt[i]
		for p, v := range t.Values {
			relCols[p][i] = dict.intern(v)
		}
		imp[i] = t.Imp
		prob[i] = t.Prob
	}

	cols := make([][][]int32, len(db.cols))
	copy(cols, db.cols)
	cols[relIdx] = relCols
	imps := make([][]float64, len(db.imps))
	copy(imps, db.imps)
	imps[relIdx] = imp
	probs := make([][]float64, len(db.probs))
	copy(probs, db.probs)
	probs[relIdx] = prob

	relFPs := make([]uint64, len(db.relFPs))
	copy(relFPs, db.relFPs)
	h := relFPs[relIdx]
	for i := firstNew; i < m; i++ {
		h = fpChainTuple(h, &nt[i])
	}
	relFPs[relIdx] = h

	nd := &Database{
		rels:   rels,
		shared: db.shared,
		adj:    db.adj,
		size:   db.size + len(tuples)*(1+width),
		tuples: db.tuples + len(tuples),
		dict:   dict,
		cols:   cols,
		imps:   imps,
		probs:  probs,
		index:  db.index.extend(relIdx, relCols, firstNew),
		relFPs: relFPs,
		fp:     combineFP(rels, relFPs),
	}
	// The encoding and fingerprint above are preset; burn the Onces so
	// the lazy paths never recompute (and never re-freeze) them.
	nd.encodeOnce.Do(func() {})
	nd.fpOnce.Do(func() {})
	return nd, nil
}
