package relation

import (
	"fmt"
	"sync"
)

// Ref identifies a tuple globally within a Database: relation index Rel
// and tuple index Idx within that relation.
type Ref struct {
	Rel int32
	Idx int32
}

// String renders the reference using the tuple's label when available.
func (ref Ref) String() string { return fmt.Sprintf("(%d,%d)", ref.Rel, ref.Idx) }

// PosPair names a pair of value positions: P1 in the schema of the
// first relation and P2 in the schema of the second, both referring to
// the same shared attribute.
type PosPair struct {
	P1, P2 int
}

// Database is an immutable collection of relations R1..Rn together with
// the precomputed structures the algorithms need:
//
//   - the connection graph over relations (two relations are connected
//     iff their schemas share an attribute, Section 2), and
//   - for each connected pair, the list of shared attribute positions,
//     which makes pairwise join-consistency a linear walk.
//
// Build a Database with NewDatabase. Tuple values and metadata may
// still be adjusted between NewDatabase and the database's first query
// (the tourist workloads misspell a country that way) through
// Relation.MutateTuple; the first query — or an explicit Freeze call —
// freezes the database by encoding it into the columnar dictionary
// mirror. From that point on MutateTuple panics and appends return an
// error, so a late mutation fails loudly instead of being silently
// invisible to the algorithms. Relations themselves (schemas, tuple
// counts) must not change once added.
type Database struct {
	rels []*Relation
	// shared[i][j] lists the shared attribute positions between
	// relations i and j; empty iff i and j are not connected (or i==j).
	shared [][][]PosPair
	// adj[i] lists the relations connected to relation i.
	adj [][]int
	// size is the total database size s (sum of relation sizes).
	size int
	// tuples is the total number of tuples across all relations.
	tuples int

	// The columnar value layer: a database-wide dictionary interning
	// every distinct non-null datum, the relations' values mirrored
	// column-major as code slices, flat importance/probability columns,
	// and the equi-join posting index over the code columns.
	//
	// The mirror is built lazily on first query (encodeOnce) rather
	// than in NewDatabase: callers are allowed to adjust tuple values
	// and metadata between NewDatabase and the first query (the tourist
	// workloads misspell a country that way); after the first query the
	// relations must not be mutated at all.
	encodeOnce sync.Once
	dict       *Dict
	// cols[rel][pos][idx] is the dictionary code of tuple idx of
	// relation rel at schema position pos.
	cols  [][][]int32
	imps  [][]float64
	probs [][]float64
	index *JoinIndex

	// fpOnce/fp cache the content fingerprint of the frozen database
	// (see Fingerprint); Refresh resets them with the mirror. relFPs
	// holds the per-relation fingerprint chain states the combined fp
	// is derived from — Extend rolls one chain forward over an appended
	// batch instead of rehashing the database.
	fpOnce sync.Once
	fp     uint64
	relFPs []uint64
}

// NewDatabase builds a database over the given relations. Relation
// names must be unique. The paper additionally assumes the relation set
// is connected for the full disjunction to be a single problem; that is
// the caller's concern (see graph.Connected) — NewDatabase itself only
// precomputes structure.
func NewDatabase(rels ...*Relation) (*Database, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("relation: database must contain at least one relation")
	}
	names := make(map[string]bool, len(rels))
	for _, r := range rels {
		if r == nil {
			return nil, fmt.Errorf("relation: nil relation in database")
		}
		if names[r.Name()] {
			return nil, fmt.Errorf("relation: duplicate relation name %q", r.Name())
		}
		names[r.Name()] = true
	}
	n := len(rels)
	db := &Database{
		rels:   rels,
		shared: make([][][]PosPair, n),
		adj:    make([][]int, n),
	}
	for i := 0; i < n; i++ {
		db.shared[i] = make([][]PosPair, n)
		db.size += rels[i].Size()
		db.tuples += rels[i].Len()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			common := rels[i].Schema().Shared(rels[j].Schema())
			if len(common) == 0 {
				continue
			}
			pairs := make([]PosPair, 0, len(common))
			for _, a := range common {
				p1, _ := rels[i].Schema().Position(a)
				p2, _ := rels[j].Schema().Position(a)
				pairs = append(pairs, PosPair{P1: p1, P2: p2})
			}
			db.shared[i][j] = pairs
			rev := make([]PosPair, len(pairs))
			for k, p := range pairs {
				rev[k] = PosPair{P1: p.P2, P2: p.P1}
			}
			db.shared[j][i] = rev
			db.adj[i] = append(db.adj[i], j)
			db.adj[j] = append(db.adj[j], i)
		}
	}
	return db, nil
}

// MustDatabase is like NewDatabase but panics on error.
func MustDatabase(rels ...*Relation) *Database {
	db, err := NewDatabase(rels...)
	if err != nil {
		panic(err)
	}
	return db
}

// NumRelations returns n, the number of relations.
func (db *Database) NumRelations() int { return len(db.rels) }

// Relation returns the i-th relation.
func (db *Database) Relation(i int) *Relation { return db.rels[i] }

// Relations returns the underlying relation slice; callers must not
// modify it.
func (db *Database) Relations() []*Relation { return db.rels }

// RelationIndex returns the index of the relation with the given name.
func (db *Database) RelationIndex(name string) (int, bool) {
	for i, r := range db.rels {
		if r.Name() == name {
			return i, true
		}
	}
	return 0, false
}

// Size returns the total database size s used in the paper's complexity
// bounds (tuple count plus cell count over all relations).
func (db *Database) Size() int { return db.size }

// NumTuples returns the total number of tuples across all relations.
func (db *Database) NumTuples() int { return db.tuples }

// Tuple resolves a Ref to the tuple it names.
func (db *Database) Tuple(ref Ref) *Tuple {
	return db.rels[ref.Rel].Tuple(int(ref.Idx))
}

// Label returns a human-readable name for the referenced tuple: its
// label if set, otherwise Relation[index].
func (db *Database) Label(ref Ref) string {
	t := db.Tuple(ref)
	if t.Label != "" {
		return t.Label
	}
	return fmt.Sprintf("%s[%d]", db.rels[ref.Rel].Name(), ref.Idx)
}

// SharedPositions returns the shared attribute position pairs between
// relations i and j (empty when the relations are not connected).
func (db *Database) SharedPositions(i, j int) []PosPair { return db.shared[i][j] }

// ConnectedRelations reports whether relations i and j share an
// attribute.
func (db *Database) ConnectedRelations(i, j int) bool {
	return i != j && len(db.shared[i][j]) > 0
}

// Adjacent returns the indices of relations connected to relation i.
// The returned slice must not be modified.
func (db *Database) Adjacent(i int) []int { return db.adj[i] }

// Freeze makes the database immutable and builds the columnar mirror
// now. It is implied by the first query; calling it explicitly is
// useful to pin the freeze point in programs that interleave loading
// and querying. Freeze is idempotent and safe for concurrent use.
func (db *Database) Freeze() { db.ensureEncoded() }

// Frozen reports whether the database has been frozen (first query or
// explicit Freeze). Tuple mutation panics and appends fail once this
// returns true.
func (db *Database) Frozen() bool {
	return len(db.rels) > 0 && db.rels[0].Frozen()
}

// Refresh unfreezes the database: it discards the columnar mirror, the
// dictionary, the join index and the fingerprint, and lifts the freeze
// on every relation, so mutable workloads can adjust or append tuples
// between queries. The next query (or Freeze call) rebuilds everything
// from the then-current tuples; the database's Size and NumTuples are
// recomputed here so appends made since construction are reflected.
//
// Refresh must not race queries: the caller is responsible for
// quiescing readers first, exactly as with the mutation contract.
// Universes, cursors and cached results created before a Refresh are
// bound to the discarded mirror and must not be used afterwards.
func (db *Database) Refresh() {
	for _, rel := range db.rels {
		rel.unfreeze()
	}
	db.encodeOnce = sync.Once{}
	db.dict = nil
	db.cols = nil
	db.imps = nil
	db.probs = nil
	db.index = nil
	db.fpOnce = sync.Once{}
	db.fp = 0
	db.relFPs = nil
	db.size, db.tuples = 0, 0
	for _, rel := range db.rels {
		db.size += rel.Size()
		db.tuples += rel.Len()
	}
}

// ensureEncoded builds the columnar value layer on first use: the
// dictionary, the per-relation code columns, the flat imp/prob columns
// and the equi-join posting index. It freezes every relation first, so
// a mutation racing the first query trips the freeze check instead of
// tearing the mirror. It is safe for concurrent use (the parallel
// driver shares one Database across goroutines).
func (db *Database) ensureEncoded() {
	db.encodeOnce.Do(func() {
		for _, rel := range db.rels {
			rel.freeze()
		}
		dict := newDictBuilder()
		n := len(db.rels)
		cols := make([][][]int32, n)
		imps := make([][]float64, n)
		probs := make([][]float64, n)
		for r, rel := range db.rels {
			width := rel.Schema().Len()
			m := rel.Len()
			relCols := make([][]int32, width)
			flat := make([]int32, width*m) // one backing array per relation
			for p := range relCols {
				relCols[p] = flat[p*m : (p+1)*m : (p+1)*m]
			}
			imp := make([]float64, m)
			prob := make([]float64, m)
			for i := 0; i < m; i++ {
				t := rel.Tuple(i)
				for p, v := range t.Values {
					relCols[p][i] = dict.intern(v)
				}
				imp[i] = t.Imp
				prob[i] = t.Prob
			}
			cols[r] = relCols
			imps[r] = imp
			probs[r] = prob
		}
		db.dict = dict
		db.cols = cols
		db.imps = imps
		db.probs = probs
		db.index = buildJoinIndex(cols)
	})
}

// Dict returns the database's value dictionary, encoding the database
// first if needed.
func (db *Database) Dict() *Dict {
	db.ensureEncoded()
	return db.dict
}

// Index returns the equi-join candidate index, encoding the database
// first if needed.
func (db *Database) Index() *JoinIndex {
	db.ensureEncoded()
	return db.index
}

// Col returns the code column of relation rel at schema position pos:
// one code per tuple, NullCode for ⊥. The slice must not be modified.
func (db *Database) Col(rel, pos int) []int32 {
	db.ensureEncoded()
	return db.cols[rel][pos]
}

// Code returns the dictionary code of the referenced tuple's value at
// schema position pos.
func (db *Database) Code(ref Ref, pos int) int32 {
	db.ensureEncoded()
	return db.cols[ref.Rel][pos][ref.Idx]
}

// Imp returns the importance imp(t) of the referenced tuple from the
// flat columnar mirror (Section 5 ranking functions read this in their
// hot loops).
func (db *Database) Imp(ref Ref) float64 {
	db.ensureEncoded()
	return db.imps[ref.Rel][ref.Idx]
}

// Prob returns the probability prob(t) of the referenced tuple from the
// flat columnar mirror (Section 6 approximate joins read this in their
// hot loops).
func (db *Database) Prob(ref Ref) float64 {
	db.ensureEncoded()
	return db.probs[ref.Rel][ref.Idx]
}

// JoinConsistent reports whether the two referenced tuples are join
// consistent: for every attribute shared by their schemas the values
// are equal and non-null. Tuples of the same relation are never join
// consistent (they share their whole schema, and a tuple set may not
// contain two tuples of one relation); a tuple is vacuously consistent
// with itself.
//
// The predicate is evaluated over the columnar code mirror: per shared
// attribute it is two int32 loads and an integer compare, with no Tuple
// materialisation and no string comparison.
func (db *Database) JoinConsistent(a, b Ref) bool {
	if a.Rel == b.Rel {
		return a.Idx == b.Idx
	}
	db.ensureEncoded()
	ca := db.cols[a.Rel]
	cb := db.cols[b.Rel]
	for _, p := range db.shared[a.Rel][b.Rel] {
		va := ca[p.P1][a.Idx]
		if va == NullCode || va != cb[p.P2][b.Idx] {
			return false
		}
	}
	return true
}

// ForEachRef calls fn for every tuple in the database in deterministic
// order (relation order, then tuple order). It is the "foreach tuple in
// the database" loop of GETNEXTRESULT.
func (db *Database) ForEachRef(fn func(Ref) bool) {
	for r := range db.rels {
		for i := 0; i < db.rels[r].Len(); i++ {
			if !fn(Ref{Rel: int32(r), Idx: int32(i)}) {
				return
			}
		}
	}
}
