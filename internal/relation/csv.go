package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV layout: the first row is the header. Ordinary columns name
// attributes. Three optional metadata columns are recognised:
//
//	#label  tuple label (Table 1 uses c1, a2, ...)
//	#imp    importance imp(t), parsed as float (default 1)
//	#prob   probability prob(t), parsed as float in [0,1] (default 1)
//
// An empty cell or the NullToken ⊥ denotes the null value.
const (
	labelColumn = "#label"
	impColumn   = "#imp"
	probColumn  = "#prob"
)

// ReadCSV reads a relation named name from r in the layout above.
func ReadCSV(name string, r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation %s: reading csv: %w", name, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("relation %s: empty csv (missing header)", name)
	}
	header := rows[0]
	labelCol, impCol, probCol := -1, -1, -1
	var attrs []Attribute
	attrCols := make([]int, 0, len(header))
	for i, h := range header {
		switch h {
		case labelColumn:
			labelCol = i
		case impColumn:
			impCol = i
		case probColumn:
			probCol = i
		default:
			attrs = append(attrs, Attribute(h))
			attrCols = append(attrCols, i)
		}
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, fmt.Errorf("relation %s: %w", name, err)
	}
	rel, err := NewRelation(name, schema)
	if err != nil {
		return nil, err
	}
	for rowIdx, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("relation %s: row %d has %d fields, header has %d",
				name, rowIdx+2, len(row), len(header))
		}
		t := Tuple{Imp: 1, Prob: 1, Values: make([]Value, schema.Len())}
		for k, col := range attrCols {
			cell := row[col]
			if cell == "" || cell == NullToken {
				continue // stays Null
			}
			pos, _ := schema.Position(attrs[k])
			t.Values[pos] = V(cell)
		}
		if labelCol >= 0 {
			t.Label = row[labelCol]
		}
		if impCol >= 0 && row[impCol] != "" {
			imp, err := strconv.ParseFloat(row[impCol], 64)
			if err != nil {
				return nil, fmt.Errorf("relation %s: row %d: bad imp %q: %w", name, rowIdx+2, row[impCol], err)
			}
			t.Imp = imp
		}
		if probCol >= 0 && row[probCol] != "" {
			p, err := strconv.ParseFloat(row[probCol], 64)
			if err != nil {
				return nil, fmt.Errorf("relation %s: row %d: bad prob %q: %w", name, rowIdx+2, row[probCol], err)
			}
			t.Prob = p
		}
		if err := rel.AppendTuple(t); err != nil {
			return nil, fmt.Errorf("row %d: %w", rowIdx+2, err)
		}
	}
	return rel, nil
}

// WriteCSV writes rel to w in the layout accepted by ReadCSV, including
// the #label, #imp and #prob metadata columns.
func WriteCSV(rel *Relation, w io.Writer) error {
	cw := csv.NewWriter(w)
	schema := rel.Schema()
	header := make([]string, 0, schema.Len()+3)
	header = append(header, labelColumn, impColumn, probColumn)
	for _, a := range schema.Attributes() {
		header = append(header, string(a))
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("relation %s: writing csv header: %w", rel.Name(), err)
	}
	row := make([]string, len(header))
	for i := 0; i < rel.Len(); i++ {
		t := rel.Tuple(i)
		row[0] = t.Label
		row[1] = strconv.FormatFloat(t.Imp, 'g', -1, 64)
		row[2] = strconv.FormatFloat(t.Prob, 'g', -1, 64)
		for j, v := range t.Values {
			if v.IsNull() {
				row[3+j] = NullToken
			} else {
				row[3+j] = v.Datum()
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("relation %s: writing csv row %d: %w", rel.Name(), i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
