package relation

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"
)

// snapshotTestDatabase builds a small database exercising the format's
// corners: nulls, labels, an empty-string datum (non-null), shared and
// private attributes, and non-default imp/prob metadata.
func snapshotTestDatabase(t *testing.T) *Database {
	t.Helper()
	r1 := MustRelation("Climates", MustSchema("Country", "Climate"))
	r1.MustAppend("c1", map[Attribute]Value{"Country": V("Canada"), "Climate": V("cold")})
	r1.MustAppend("c2", map[Attribute]Value{"Country": V("Cuba")})
	if err := r1.AppendTuple(Tuple{Label: "c3", Values: []Value{V(""), Null}, Imp: 2.5, Prob: 0.75}); err != nil {
		t.Fatal(err)
	}
	r2 := MustRelation("Sites", MustSchema("Country", "Site"))
	r2.MustAppend("s1", map[Attribute]Value{"Country": V("Canada"), "Site": V("falls")})
	r2.MustAppend("s2", map[Attribute]Value{"Site": V("beach")})
	return MustDatabase(r1, r2)
}

func writeSnapshotBytes(t *testing.T, db *Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := snapshotTestDatabase(t)
	raw := writeSnapshotBytes(t, db)

	got, err := ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if !got.Frozen() {
		t.Fatal("loaded database is not frozen")
	}
	if got.Fingerprint() != db.Fingerprint() {
		t.Fatalf("fingerprint mismatch: wrote %016x, loaded %016x", db.Fingerprint(), got.Fingerprint())
	}
	if got.NumRelations() != db.NumRelations() || got.NumTuples() != db.NumTuples() || got.Size() != db.Size() {
		t.Fatalf("shape mismatch: got %d rels %d tuples size %d", got.NumRelations(), got.NumTuples(), got.Size())
	}
	for r := 0; r < db.NumRelations(); r++ {
		want, have := db.Relation(r), got.Relation(r)
		if want.Name() != have.Name() || !want.Schema().Equal(have.Schema()) || want.Len() != have.Len() {
			t.Fatalf("relation %d metadata mismatch", r)
		}
		for i := 0; i < want.Len(); i++ {
			wt, ht := want.Tuple(i), have.Tuple(i)
			if wt.Label != ht.Label || wt.Imp != ht.Imp || wt.Prob != ht.Prob {
				t.Fatalf("relation %d tuple %d metadata mismatch: %+v vs %+v", r, i, wt, ht)
			}
			for p := range wt.Values {
				if wt.Values[p] != ht.Values[p] {
					t.Fatalf("relation %d tuple %d value %d: %v vs %v", r, i, p, wt.Values[p], ht.Values[p])
				}
			}
		}
	}
	// The dictionary and columns are adopted verbatim: codes must agree.
	for r := 0; r < db.NumRelations(); r++ {
		for p := 0; p < db.Relation(r).Schema().Len(); p++ {
			wantCol, haveCol := db.Col(r, p), got.Col(r, p)
			for i := range wantCol {
				if wantCol[i] != haveCol[i] {
					t.Fatalf("relation %d col %d idx %d: code %d vs %d", r, p, i, wantCol[i], haveCol[i])
				}
			}
		}
	}
	// A snapshot write is deterministic: same content, same bytes.
	if !bytes.Equal(raw, writeSnapshotBytes(t, got)) {
		t.Fatal("re-written snapshot differs from the original bytes")
	}
}

func TestSnapshotLoadedDatabaseSupportsRefresh(t *testing.T) {
	db := snapshotTestDatabase(t)
	got, err := ReadSnapshot(bytes.NewReader(writeSnapshotBytes(t, db)))
	if err != nil {
		t.Fatal(err)
	}
	got.Refresh()
	if got.Frozen() {
		t.Fatal("still frozen after Refresh")
	}
	if err := got.Relation(0).Append("c4", map[Attribute]Value{"Country": V("Chile")}); err != nil {
		t.Fatalf("append after Refresh: %v", err)
	}
	if got.Fingerprint() == db.Fingerprint() {
		t.Fatal("fingerprint unchanged after append")
	}
}

func TestSnapshotRejectsEveryByteFlip(t *testing.T) {
	raw := writeSnapshotBytes(t, snapshotTestDatabase(t))
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flip of byte %d of %d accepted", i, len(raw))
		}
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	raw := writeSnapshotBytes(t, snapshotTestDatabase(t))
	for n := 0; n < len(raw); n += 7 {
		if _, err := ReadSnapshot(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(raw))
		}
	}
	if _, err := ReadSnapshot(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Fatal("truncation by one byte accepted")
	}
	if _, err := ReadSnapshot(bytes.NewReader(append(append([]byte(nil), raw...), 0))); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestSnapshotRejectsBadMagicAndVersion(t *testing.T) {
	raw := writeSnapshotBytes(t, snapshotTestDatabase(t))

	bad := append([]byte(nil), raw...)
	copy(bad[0:4], "NOPE")
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}

	bad = append([]byte(nil), raw...)
	binary.LittleEndian.PutUint16(bad[4:6], snapVersion+1)
	binary.LittleEndian.PutUint32(bad[14:18], crc32.ChecksumIEEE(bad[:14]))
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: %v", err)
	}
}

func TestSnapshotRejectsFingerprintMismatch(t *testing.T) {
	raw := writeSnapshotBytes(t, snapshotTestDatabase(t))
	// Tamper with the stored fingerprint and repair the header checksum,
	// so only the end-to-end fingerprint verification can catch it.
	bad := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(bad[6:14], binary.LittleEndian.Uint64(bad[6:14])^1)
	binary.LittleEndian.PutUint32(bad[14:18], crc32.ChecksumIEEE(bad[:14]))
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint tamper: %v", err)
	}
}

func TestReadSnapshotFingerprint(t *testing.T) {
	db := snapshotTestDatabase(t)
	raw := writeSnapshotBytes(t, db)
	fp, err := ReadSnapshotFingerprint(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if fp != db.Fingerprint() {
		t.Fatalf("header fingerprint %016x, want %016x", fp, db.Fingerprint())
	}
}
