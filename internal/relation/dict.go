package relation

import "strings"

// NullCode is the dictionary code of the null value ⊥. It is never
// assigned to a datum, so an equality test between two codes implements
// the join-consistency predicate t1[A] = t2[A] ≠ ⊥ as
//
//	c1 != NullCode && c1 == c2
//
// with no string comparison.
const NullCode int32 = 0

// Dict is a database-wide value dictionary: every distinct non-null
// datum appearing in any relation of a Database is interned once and
// assigned a dense positive int32 code. Code 0 (NullCode) is reserved
// for ⊥. The dictionary is immutable once the database is encoded; all
// hot-path comparisons happen on codes, and the dictionary is consulted
// only when real text is needed (rendering, CSV output, similarity).
type Dict struct {
	codes  map[string]int32
	datums []string // datums[c-1] is the datum of code c ≥ 1
}

// newDictBuilder returns an empty mutable dictionary, used only while a
// Database encodes itself.
func newDictBuilder() *Dict {
	return &Dict{codes: make(map[string]int32)}
}

// intern returns the code of v, assigning a fresh one on first sight.
// The null value always maps to NullCode.
func (d *Dict) intern(v Value) int32 {
	if v.IsNull() {
		return NullCode
	}
	if c, ok := d.codes[v.datum]; ok {
		return c
	}
	d.datums = append(d.datums, v.datum)
	c := int32(len(d.datums)) // codes start at 1; 0 is ⊥
	d.codes[v.datum] = c
	return c
}

// Len returns the number of distinct non-null datums interned.
func (d *Dict) Len() int { return len(d.datums) }

// Code returns the code of datum s and whether s occurs in the
// database. The empty string is an ordinary datum (V("") is non-null)
// and receives a regular positive code; ⊥ is not addressable by string.
func (d *Dict) Code(s string) (int32, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// Lookup decodes a code back into a Value. NullCode decodes to Null.
func (d *Dict) Lookup(c int32) Value {
	if c == NullCode {
		return Null
	}
	return V(d.datums[c-1])
}

// Datum returns the string carried by code c; it returns the empty
// string for NullCode (mirroring Value.Datum for the null value).
func (d *Dict) Datum(c int32) string {
	if c == NullCode {
		return ""
	}
	return d.datums[c-1]
}

// CodeKey encodes a code row as a compact binary string, 4 bytes per
// code, little endian. It is the canonical key format shared by the
// padded-tuple renderings across packages (tupleset.Padded.Key and the
// outerjoin baseline's row keys): keys built over the same database and
// attribute list are equal iff the code rows are equal.
func CodeKey(codes []int32) string {
	var b strings.Builder
	b.Grow(4 * len(codes))
	for _, c := range codes {
		v := uint32(c)
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v >> 16))
		b.WriteByte(byte(v >> 24))
	}
	return b.String()
}
