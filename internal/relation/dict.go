package relation

import "strings"

// NullCode is the dictionary code of the null value ⊥. It is never
// assigned to a datum, so an equality test between two codes implements
// the join-consistency predicate t1[A] = t2[A] ≠ ⊥ as
//
//	c1 != NullCode && c1 == c2
//
// with no string comparison.
const NullCode int32 = 0

// Dict is a database-wide value dictionary: every distinct non-null
// datum appearing in any relation of a Database is interned once and
// assigned a dense positive int32 code. Code 0 (NullCode) is reserved
// for ⊥. The dictionary is immutable once the database is encoded; all
// hot-path comparisons happen on codes, and the dictionary is consulted
// only when real text is needed (rendering, CSV output, similarity).
type Dict struct {
	codes  map[string]int32
	datums []string // datums[c-1] is the datum of code c ≥ 1

	// The overlay of a derived dictionary (Database.Extend): datums
	// first seen in appended tuples take codes above len(datums) and
	// live here, so the base maps — shared by pointer with the parent
	// database — are never written and every base code keeps its
	// meaning. extraCodes is non-nil iff the dictionary is derived.
	extraCodes  map[string]int32
	extraDatums []string // extraDatums[c-len(datums)-1] for derived codes
}

// newDictBuilder returns an empty mutable dictionary, used only while a
// Database encodes itself.
func newDictBuilder() *Dict {
	return &Dict{codes: make(map[string]int32)}
}

// intern returns the code of v, assigning a fresh one on first sight.
// The null value always maps to NullCode. A derived dictionary assigns
// fresh codes into its overlay and leaves the shared base untouched.
func (d *Dict) intern(v Value) int32 {
	if v.IsNull() {
		return NullCode
	}
	if c, ok := d.codes[v.datum]; ok {
		return c
	}
	if d.extraCodes != nil {
		if c, ok := d.extraCodes[v.datum]; ok {
			return c
		}
		d.extraDatums = append(d.extraDatums, v.datum)
		c := int32(len(d.datums) + len(d.extraDatums))
		d.extraCodes[v.datum] = c
		return c
	}
	d.datums = append(d.datums, v.datum)
	c := int32(len(d.datums)) // codes start at 1; 0 is ⊥
	d.codes[v.datum] = c
	return c
}

// derive returns a mutable overlay over a frozen dictionary: the base
// maps are shared (and must no longer be written), an existing overlay
// is copied so the parent's derived codes stay stable, and fresh
// interns land in the copy. Database.Extend uses this to intern a batch
// of appended tuples without perturbing any code the parent database —
// or a tuple-set binding computed against it — already holds.
func (d *Dict) derive() *Dict {
	nd := &Dict{
		codes:       d.codes,
		datums:      d.datums,
		extraCodes:  make(map[string]int32, len(d.extraCodes)),
		extraDatums: append([]string(nil), d.extraDatums...),
	}
	for s, c := range d.extraCodes {
		nd.extraCodes[s] = c
	}
	return nd
}

// Len returns the number of distinct non-null datums interned.
func (d *Dict) Len() int { return len(d.datums) + len(d.extraDatums) }

// Code returns the code of datum s and whether s occurs in the
// database. The empty string is an ordinary datum (V("") is non-null)
// and receives a regular positive code; ⊥ is not addressable by string.
func (d *Dict) Code(s string) (int32, bool) {
	if c, ok := d.codes[s]; ok {
		return c, true
	}
	c, ok := d.extraCodes[s]
	return c, ok
}

// Lookup decodes a code back into a Value. NullCode decodes to Null.
func (d *Dict) Lookup(c int32) Value {
	if c == NullCode {
		return Null
	}
	return V(d.Datum(c))
}

// Datum returns the string carried by code c; it returns the empty
// string for NullCode (mirroring Value.Datum for the null value).
func (d *Dict) Datum(c int32) string {
	if c == NullCode {
		return ""
	}
	if int(c) <= len(d.datums) {
		return d.datums[c-1]
	}
	return d.extraDatums[int(c)-len(d.datums)-1]
}

// CodeKey encodes a code row as a compact binary string, 4 bytes per
// code, little endian. It is the canonical key format shared by the
// padded-tuple renderings across packages (tupleset.Padded.Key and the
// outerjoin baseline's row keys): keys built over the same database and
// attribute list are equal iff the code rows are equal.
func CodeKey(codes []int32) string {
	var b strings.Builder
	b.Grow(4 * len(codes))
	for _, c := range codes {
		v := uint32(c)
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v >> 16))
		b.WriteByte(byte(v >> 24))
	}
	return b.String()
}
