// Package relation implements the data model underlying full
// disjunctions: attribute values with SQL-style nulls, schemas, tuples,
// relations, and databases of connected relations.
//
// The model follows Section 2 of Cohen & Sagiv, "An incremental
// algorithm for computing ranked full disjunctions" (JCSS 73, 2007).
// Unlike the classical definition of Rajaraman & Ullman, source
// relations are allowed to contain null values; a null never joins with
// anything, including another null.
package relation

import "fmt"

// NullToken is the textual representation of the null value used by the
// CSV codec and by String methods. It mirrors the ⊥ symbol of the paper.
const NullToken = "⊥"

// Value is a single attribute value. The zero Value is null.
//
// Values are comparable with == and may be used as map keys. Two values
// are equal iff both are non-null and carry the same string datum;
// notably a null value does not equal another null value for the
// purposes of join consistency (JoinsWith).
type Value struct {
	datum string
	valid bool
}

// Null is the null value ⊥.
var Null = Value{}

// V returns a non-null value carrying the datum s.
func V(s string) Value { return Value{datum: s, valid: true} }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return !v.valid }

// Datum returns the string carried by v. It returns the empty string
// for the null value; use IsNull to distinguish an empty datum from ⊥.
func (v Value) Datum() string { return v.datum }

// JoinsWith reports whether v and w are join consistent: both non-null
// and equal. This is the predicate behind the paper's requirement
// t1[A] = t2[A] ≠ ⊥ for every shared attribute A.
func (v Value) JoinsWith(w Value) bool {
	return v.valid && w.valid && v.datum == w.datum
}

// String renders the value, using NullToken for ⊥.
func (v Value) String() string {
	if !v.valid {
		return NullToken
	}
	return v.datum
}

// GoString implements fmt.GoStringer for debugging output.
func (v Value) GoString() string {
	if !v.valid {
		return "relation.Null"
	}
	return fmt.Sprintf("relation.V(%q)", v.datum)
}
