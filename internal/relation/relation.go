package relation

import (
	"fmt"
	"strings"
	"sync"
)

// Tuple is a row of a relation. Values are aligned with the relation's
// schema in sorted attribute order. Imp is the tuple's importance score
// used by ranking functions (Section 5); Prob is its probability of
// being correct, used by approximate join functions (Section 6). Both
// default to 1.
//
// Values, Imp and Prob may be adjusted after the relation has been
// added to a Database, but only until the database freezes (its first
// query, or an explicit Database.Freeze): at that point the database
// snapshots every tuple into its columnar dictionary mirror (see
// Database). Mutate tuples through Relation.MutateTuple, which enforces
// the contract by panicking after the freeze; writing through a
// retained *Tuple bypasses the check and the write is silently
// invisible to the algorithms.
type Tuple struct {
	// Label is an optional human-readable identifier such as "c1" in
	// Table 1 of the paper. It plays no role in the algorithms.
	Label string
	// Values holds one value per schema attribute, in schema order.
	Values []Value
	// Imp is the importance imp(t) of the tuple (Section 5).
	Imp float64
	// Prob is the probability prob(t) that the tuple is correct
	// (Section 6). Must lie in [0, 1].
	Prob float64
}

// Relation is a named relation: a schema plus a sequence of tuples.
// Tuple values and metadata may be adjusted through MutateTuple until
// the owning Database freezes; appending tuples is likewise rejected
// after the freeze.
type Relation struct {
	name   string
	schema *Schema
	tuples []Tuple
	// mu orders mutations against the freeze and against each other:
	// MutateTuple and the appenders hold it exclusively while they
	// write, as does freeze(), so a mutation racing the database's
	// first query either completes before the mirror is encoded or
	// panics — never tears the encoding.
	mu     sync.RWMutex
	frozen bool
}

// NewRelation creates an empty relation with the given name and schema.
func NewRelation(name string, schema *Schema) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: relation name must be non-empty")
	}
	if schema == nil {
		return nil, fmt.Errorf("relation %s: nil schema", name)
	}
	return &Relation{name: name, schema: schema}, nil
}

// MustRelation is like NewRelation but panics on error.
func MustRelation(name string, schema *Schema) *Relation {
	r, err := NewRelation(name, schema)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples in the relation.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuple returns the i-th tuple. The returned pointer stays valid while
// the relation is alive; callers must not mutate through it — use
// MutateTuple, which enforces the freeze contract.
func (r *Relation) Tuple(i int) *Tuple { return &r.tuples[i] }

// Frozen reports whether the relation belongs to a frozen Database (see
// Database.Freeze).
func (r *Relation) Frozen() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.frozen
}

// freeze marks the relation immutable; called by Database.Freeze. The
// lock waits out any in-flight MutateTuple/append, so the mirror
// encoding that follows never observes a torn write.
func (r *Relation) freeze() {
	r.mu.Lock()
	r.frozen = true
	r.mu.Unlock()
}

// unfreeze lifts the freeze again; called by Database.Refresh when the
// columnar mirror is discarded for a rebuild.
func (r *Relation) unfreeze() {
	r.mu.Lock()
	r.frozen = false
	r.mu.Unlock()
}

// MutateTuple adjusts the i-th tuple through fn. It is the supported
// mutation path: it panics once the owning Database has frozen (built
// its columnar mirror at the first query or an explicit Freeze), where
// a write through a retained *Tuple would be silently ignored by every
// predicate. The freeze check and the write happen under one lock, so
// a mutation racing the first query either lands before the mirror is
// encoded or panics.
func (r *Relation) MutateTuple(i int, fn func(*Tuple)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.frozen {
		panic(fmt.Sprintf("relation %s: tuple mutation after the database froze", r.name))
	}
	fn(&r.tuples[i])
}

// Append adds a tuple given as an attribute→value map. Attributes
// missing from the map become null. Unknown attributes are an error.
// The tuple receives Imp=1 and Prob=1; use AppendTuple for full control.
func (r *Relation) Append(label string, vals map[Attribute]Value) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.frozen {
		return fmt.Errorf("relation %s: append after the database froze", r.name)
	}
	row := make([]Value, r.schema.Len())
	for a, v := range vals {
		i, ok := r.schema.Position(a)
		if !ok {
			return fmt.Errorf("relation %s: unknown attribute %q", r.name, a)
		}
		row[i] = v
	}
	r.tuples = append(r.tuples, Tuple{Label: label, Values: row, Imp: 1, Prob: 1})
	return nil
}

// AppendTuple adds a fully specified tuple. The number of values must
// match the schema width and Prob must lie in [0, 1].
func (r *Relation) AppendTuple(t Tuple) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.frozen {
		return fmt.Errorf("relation %s: append after the database froze", r.name)
	}
	if len(t.Values) != r.schema.Len() {
		return fmt.Errorf("relation %s: tuple has %d values, schema has %d attributes",
			r.name, len(t.Values), r.schema.Len())
	}
	if t.Prob < 0 || t.Prob > 1 {
		return fmt.Errorf("relation %s: tuple probability %v outside [0,1]", r.name, t.Prob)
	}
	r.tuples = append(r.tuples, t)
	return nil
}

// MustAppend is like Append but panics on error; for tests and examples.
func (r *Relation) MustAppend(label string, vals map[Attribute]Value) {
	if err := r.Append(label, vals); err != nil {
		panic(err)
	}
}

// Value returns tuple i's value for attribute a, and whether the schema
// contains a.
func (r *Relation) Value(i int, a Attribute) (Value, bool) {
	p, ok := r.schema.Position(a)
	if !ok {
		return Null, false
	}
	return r.tuples[i].Values[p], true
}

// Size returns the total size of the relation in the paper's sense: the
// number of (attribute, value) cells plus tuple overhead. It is the s
// contribution of this relation in the complexity bounds.
func (r *Relation) Size() int {
	return len(r.tuples) * (1 + r.schema.Len())
}

// String renders the relation as a small ASCII table, useful in tests
// and examples.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s\n", r.name, r.schema)
	for i := range r.tuples {
		t := &r.tuples[i]
		parts := make([]string, len(t.Values))
		for j, v := range t.Values {
			parts[j] = v.String()
		}
		if t.Label != "" {
			fmt.Fprintf(&b, "  %s: %s\n", t.Label, strings.Join(parts, ", "))
		} else {
			fmt.Fprintf(&b, "  %s\n", strings.Join(parts, ", "))
		}
	}
	return b.String()
}
