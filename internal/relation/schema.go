package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute is the name of a column. Attribute identity is global: two
// relations that mention the same attribute name are connected in the
// sense of Section 2 of the paper.
type Attribute string

// Schema is an ordered set of attributes. The paper stores, for each
// relation, the numerical position each attribute would occupy if the
// attributes were sorted; Schema keeps the attributes sorted and exposes
// that position index directly (Position).
type Schema struct {
	attrs []Attribute       // sorted ascending
	pos   map[Attribute]int // attribute -> index in attrs
}

// NewSchema builds a schema from the given attributes. The attribute
// order given by the caller is irrelevant: attributes are stored in
// sorted order, matching the paper's sorted-triple representation.
// It returns an error if attrs is empty or contains duplicates.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: schema must have at least one attribute")
	}
	sorted := make([]Attribute, len(attrs))
	copy(sorted, attrs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pos := make(map[Attribute]int, len(sorted))
	for i, a := range sorted {
		if a == "" {
			return nil, fmt.Errorf("relation: empty attribute name")
		}
		if _, dup := pos[a]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q", a)
		}
		pos[a] = i
	}
	return &Schema{attrs: sorted, pos: pos}, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// statically known schemas in tests and examples.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes in the schema.
func (s *Schema) Len() int { return len(s.attrs) }

// Attributes returns the attributes in sorted order. The returned slice
// must not be modified.
func (s *Schema) Attributes() []Attribute { return s.attrs }

// At returns the attribute at position i in sorted order.
func (s *Schema) At(i int) Attribute { return s.attrs[i] }

// Position returns the index of a within the sorted attribute list and
// whether the schema contains a.
func (s *Schema) Position(a Attribute) (int, bool) {
	i, ok := s.pos[a]
	return i, ok
}

// Has reports whether the schema contains attribute a.
func (s *Schema) Has(a Attribute) bool {
	_, ok := s.pos[a]
	return ok
}

// Shared returns the attributes common to s and t, in sorted order.
func (s *Schema) Shared(t *Schema) []Attribute {
	var out []Attribute
	// Merge walk over two sorted lists.
	i, j := 0, 0
	for i < len(s.attrs) && j < len(t.attrs) {
		switch {
		case s.attrs[i] == t.attrs[j]:
			out = append(out, s.attrs[i])
			i++
			j++
		case s.attrs[i] < t.attrs[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Connected reports whether s and t share at least one attribute, i.e.
// whether relations with these schemas are connected (Section 2).
func (s *Schema) Connected(t *Schema) bool {
	i, j := 0, 0
	for i < len(s.attrs) && j < len(t.attrs) {
		switch {
		case s.attrs[i] == t.attrs[j]:
			return true
		case s.attrs[i] < t.attrs[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Equal reports whether s and t contain exactly the same attributes.
func (s *Schema) Equal(t *Schema) bool {
	if len(s.attrs) != len(t.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != t.attrs[i] {
			return false
		}
	}
	return true
}

// Union returns a schema over the union of the attributes of s and t.
func (s *Schema) Union(t *Schema) *Schema {
	seen := make(map[Attribute]bool, len(s.attrs)+len(t.attrs))
	var all []Attribute
	for _, a := range s.attrs {
		if !seen[a] {
			seen[a] = true
			all = append(all, a)
		}
	}
	for _, a := range t.attrs {
		if !seen[a] {
			seen[a] = true
			all = append(all, a)
		}
	}
	u, err := NewSchema(all...)
	if err != nil {
		// Unreachable: the union of two valid schemas is valid.
		panic(err)
	}
	return u
}

// String renders the schema as (A, B, C).
func (s *Schema) String() string {
	parts := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		parts[i] = string(a)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
