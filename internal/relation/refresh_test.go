package relation

import "testing"

// refreshDB builds a tiny two-relation database for the Refresh and
// Fingerprint tests.
func refreshDB(t *testing.T) *Database {
	t.Helper()
	r1 := MustRelation("R1", MustSchema("A", "B"))
	r1.MustAppend("t1", map[Attribute]Value{"A": V("a"), "B": V("b")})
	r2 := MustRelation("R2", MustSchema("B", "C"))
	r2.MustAppend("t2", map[Attribute]Value{"B": V("b"), "C": V("c")})
	db, err := NewDatabase(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestRefreshRoundTrip covers the mutate→query→Refresh→mutate→query
// cycle: a query freezes the database, Refresh lifts the freeze, and
// the next query sees the post-Refresh mutation.
func TestRefreshRoundTrip(t *testing.T) {
	db := refreshDB(t)

	// First query freezes: t1 and t2 join on B=b.
	if !db.JoinConsistent(Ref{Rel: 0, Idx: 0}, Ref{Rel: 1, Idx: 0}) {
		t.Fatal("expected t1 and t2 join consistent before mutation")
	}
	if !db.Frozen() {
		t.Fatal("first query should freeze the database")
	}

	// Frozen: mutation must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MutateTuple after freeze did not panic")
			}
		}()
		db.Relation(0).MutateTuple(0, func(tp *Tuple) { tp.Values[1] = V("x") })
	}()

	// Refresh unfreezes; the mutation lands and the mirror rebuilds.
	db.Refresh()
	if db.Frozen() {
		t.Fatal("Refresh should unfreeze the database")
	}
	db.Relation(0).MutateTuple(0, func(tp *Tuple) { tp.Values[1] = V("x") })
	if db.JoinConsistent(Ref{Rel: 0, Idx: 0}, Ref{Rel: 1, Idx: 0}) {
		t.Error("post-Refresh mutation invisible to the rebuilt mirror")
	}
	if _, ok := db.Dict().Code("x"); !ok {
		t.Error("rebuilt dictionary lacks the mutated datum")
	}
}

// TestRefreshAllowsAppends checks that appends rejected on a frozen
// database succeed after Refresh and that Size/NumTuples are
// recomputed.
func TestRefreshAllowsAppends(t *testing.T) {
	db := refreshDB(t)
	db.Freeze()
	if err := db.Relation(1).Append("t3", map[Attribute]Value{"B": V("b")}); err == nil {
		t.Fatal("append on a frozen database should fail")
	}

	db.Refresh()
	if err := db.Relation(1).Append("t3", map[Attribute]Value{"B": V("b")}); err != nil {
		t.Fatalf("append after Refresh: %v", err)
	}
	db.Refresh() // recompute totals over the appended tuple
	if got := db.NumTuples(); got != 3 {
		t.Errorf("NumTuples after append+Refresh = %d, want 3", got)
	}
	// The appended tuple participates in queries.
	if !db.JoinConsistent(Ref{Rel: 0, Idx: 0}, Ref{Rel: 1, Idx: 1}) {
		t.Error("appended tuple not join consistent with t1")
	}
}

// TestFingerprintDeterministic checks that identically-loaded databases
// fingerprint equally and that any content difference — values, labels,
// imps — changes the fingerprint.
func TestFingerprintDeterministic(t *testing.T) {
	a, b := refreshDB(t), refreshDB(t)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identically-loaded databases should share a fingerprint")
	}

	value := refreshDB(t)
	value.Relation(0).MutateTuple(0, func(tp *Tuple) { tp.Values[0] = V("z") })
	if value.Fingerprint() == a.Fingerprint() {
		t.Error("value change did not alter the fingerprint")
	}

	label := refreshDB(t)
	label.Relation(0).MutateTuple(0, func(tp *Tuple) { tp.Label = "other" })
	if label.Fingerprint() == a.Fingerprint() {
		t.Error("label change did not alter the fingerprint")
	}

	imp := refreshDB(t)
	imp.Relation(0).MutateTuple(0, func(tp *Tuple) { tp.Imp = 7 })
	if imp.Fingerprint() == a.Fingerprint() {
		t.Error("importance change did not alter the fingerprint")
	}
}

// TestFingerprintRefresh checks that Refresh invalidates the cached
// fingerprint: after a mutation the fingerprint differs, and after
// mutating back it matches again.
func TestFingerprintRefresh(t *testing.T) {
	db := refreshDB(t)
	before := db.Fingerprint()

	db.Refresh()
	db.Relation(0).MutateTuple(0, func(tp *Tuple) { tp.Values[1] = V("x") })
	if got := db.Fingerprint(); got == before {
		t.Error("fingerprint unchanged after Refresh+mutation")
	}

	db.Refresh()
	db.Relation(0).MutateTuple(0, func(tp *Tuple) { tp.Values[1] = V("b") })
	if got := db.Fingerprint(); got != before {
		t.Error("fingerprint not restored after mutating back")
	}
}
