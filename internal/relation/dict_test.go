package relation_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/workload"
)

// mkRelation builds a small relation exercising nulls, duplicate datums
// and the empty-string datum.
func mkRelation(t *testing.T) *relation.Relation {
	t.Helper()
	r := relation.MustRelation("R", relation.MustSchema("A", "B"))
	r.MustAppend("t1", map[relation.Attribute]relation.Value{"A": relation.V("x"), "B": relation.V("y")})
	r.MustAppend("t2", map[relation.Attribute]relation.Value{"A": relation.V("x")}) // B = ⊥
	r.MustAppend("t3", map[relation.Attribute]relation.Value{"B": relation.V("x")}) // A = ⊥, duplicate datum across columns
	return r
}

// TestDictInternsOnce: duplicate datums receive one code, nulls map to
// NullCode, and every cell round-trips through the dictionary.
func TestDictInternsOnce(t *testing.T) {
	db := relation.MustDatabase(mkRelation(t))
	dict := db.Dict()
	// Datums are {"x", "y"}: "x" appears three times but is interned once.
	if dict.Len() != 2 {
		t.Fatalf("dict.Len() = %d, want 2", dict.Len())
	}
	rel := db.Relation(0)
	for i := 0; i < rel.Len(); i++ {
		for p := 0; p < rel.Schema().Len(); p++ {
			want := rel.Tuple(i).Values[p]
			code := db.Code(relation.Ref{Rel: 0, Idx: int32(i)}, p)
			if got := dict.Lookup(code); got != want {
				t.Errorf("tuple %d pos %d: code %d decodes to %#v, want %#v", i, p, code, got, want)
			}
			if want.IsNull() != (code == relation.NullCode) {
				t.Errorf("tuple %d pos %d: null/code mismatch (code %d, value %#v)", i, p, code, want)
			}
		}
	}
	// The same datum in different columns carries the same code.
	cx := db.Code(relation.Ref{Rel: 0, Idx: 0}, 0) // t1.A = "x"
	bx := db.Code(relation.Ref{Rel: 0, Idx: 2}, 1) // t3.B = "x"
	if cx != bx {
		t.Errorf("datum \"x\" has codes %d and %d in different columns", cx, bx)
	}
}

// TestDictEmptyStringVsNull: V("") is an ordinary non-null datum with a
// positive code, distinct from ⊥ in memory. The CSV codec, however,
// reads an empty cell as ⊥, so an empty-string datum does not survive a
// CSV round-trip — pinned here as documented codec behaviour.
func TestDictEmptyStringVsNull(t *testing.T) {
	r := relation.MustRelation("E", relation.MustSchema("A", "B"))
	r.MustAppend("", map[relation.Attribute]relation.Value{"A": relation.V("")}) // A = "", B = ⊥
	db := relation.MustDatabase(r)
	dict := db.Dict()
	empty := db.Code(relation.Ref{}, 0)
	null := db.Code(relation.Ref{}, 1)
	if empty == relation.NullCode {
		t.Error("V(\"\") received NullCode; empty string must stay distinct from ⊥")
	}
	if null != relation.NullCode {
		t.Errorf("⊥ received code %d, want NullCode", null)
	}
	if v := dict.Lookup(empty); v.IsNull() || v.Datum() != "" {
		t.Errorf("code %d decodes to %#v, want V(\"\")", empty, v)
	}
	if c, ok := dict.Code(""); !ok || c != empty {
		t.Errorf("Dict.Code(\"\") = %d, %v; want %d, true", c, ok, empty)
	}

	var buf bytes.Buffer
	if err := relation.WriteCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := relation.ReadCSV("E", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Tuple(0).Values[0].IsNull() {
		t.Error("CSV round-trip: empty-string datum should collapse to ⊥ (empty cell)")
	}
}

// TestDictRoundTripCSV: writing a relation to CSV, reading it back and
// re-encoding yields a dictionary that decodes every cell to the same
// value, with duplicates still interned once.
func TestDictRoundTripCSV(t *testing.T) {
	orig := relation.MustDatabase(mkRelation(t))
	var buf bytes.Buffer
	if err := relation.WriteCSV(orig.Relation(0), &buf); err != nil {
		t.Fatal(err)
	}
	back, err := relation.ReadCSV("R", &buf)
	if err != nil {
		t.Fatal(err)
	}
	db2 := relation.MustDatabase(back)
	if got, want := db2.Dict().Len(), orig.Dict().Len(); got != want {
		t.Fatalf("round-trip dictionary has %d datums, want %d", got, want)
	}
	rel := orig.Relation(0)
	for i := 0; i < rel.Len(); i++ {
		for p := 0; p < rel.Schema().Len(); p++ {
			ref := relation.Ref{Rel: 0, Idx: int32(i)}
			a := orig.Dict().Lookup(orig.Code(ref, p))
			b := db2.Dict().Lookup(db2.Code(ref, p))
			if a != b {
				t.Errorf("tuple %d pos %d: %#v != %#v after round-trip", i, p, a, b)
			}
		}
	}
}

// TestPostingsMatchColumns: for every column, the posting lists of the
// join index partition exactly the non-null tuple indices, ascending.
func TestPostingsMatchColumns(t *testing.T) {
	db, err := workload.Random(workload.Config{
		Relations: 4, TuplesPerRelation: 8, Domain: 3, NullRate: 0.25, Seed: 7}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ix := db.Index()
	for r := 0; r < db.NumRelations(); r++ {
		rel := db.Relation(r)
		for p := 0; p < rel.Schema().Len(); p++ {
			col := db.Col(r, p)
			counted := 0
			seenCodes := map[int32]bool{}
			for _, code := range col {
				if code == relation.NullCode || seenCodes[code] {
					continue
				}
				seenCodes[code] = true
				idxs := ix.Postings(r, p, code)
				last := int32(-1)
				for _, i := range idxs {
					if i <= last {
						t.Fatalf("rel %d pos %d code %d: posting list not ascending: %v", r, p, code, idxs)
					}
					last = i
					if col[i] != code {
						t.Fatalf("rel %d pos %d: posting claims tuple %d has code %d, column has %d",
							r, p, i, code, col[i])
					}
					counted++
				}
			}
			nonNull := 0
			for _, code := range col {
				if code != relation.NullCode {
					nonNull++
				}
			}
			if counted != nonNull {
				t.Fatalf("rel %d pos %d: postings cover %d tuples, column has %d non-null", r, p, counted, nonNull)
			}
			if ix.Postings(r, p, relation.NullCode) != nil {
				t.Fatalf("rel %d pos %d: NullCode has a posting list", r, p)
			}
		}
	}
}

// TestPropertyCodeJoinConsistent: the code-based JoinConsistent agrees
// with a string-based oracle (Value.JoinsWith over the row storage) on
// every tuple pair of random databases.
func TestPropertyCodeJoinConsistent(t *testing.T) {
	f := func(seed int64, relations, tuples, domain uint8, nullRate float64, dense bool) bool {
		nr := nullRate - float64(int(nullRate))
		if nr < 0 {
			nr = -nr
		}
		density := 0.3
		if dense {
			density = 0.8
		}
		db, err := workload.Random(workload.Config{
			Relations:         2 + int(relations%4),
			TuplesPerRelation: 1 + int(tuples%6),
			Domain:            1 + int(domain%4),
			NullRate:          nr * 0.6,
			Seed:              seed,
		}, density)
		if err != nil {
			return true
		}
		var refs []relation.Ref
		db.ForEachRef(func(ref relation.Ref) bool {
			refs = append(refs, ref)
			return true
		})
		for _, a := range refs {
			for _, b := range refs {
				got := db.JoinConsistent(a, b)
				want := oracleJoinConsistent(db, a, b)
				if got != want {
					t.Logf("JoinConsistent(%v, %v) = %v, oracle says %v", a, b, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// oracleJoinConsistent re-states the paper's definition over the boxed
// string values, independent of the dictionary encoding.
func oracleJoinConsistent(db *relation.Database, a, b relation.Ref) bool {
	if a.Rel == b.Rel {
		return a.Idx == b.Idx
	}
	ta := db.Tuple(a)
	tb := db.Tuple(b)
	for _, p := range db.SharedPositions(int(a.Rel), int(b.Rel)) {
		if !ta.Values[p.P1].JoinsWith(tb.Values[p.P2]) {
			return false
		}
	}
	return true
}
