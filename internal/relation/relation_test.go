package relation

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueBasics(t *testing.T) {
	if !Null.IsNull() {
		t.Error("Null must report IsNull")
	}
	if Null.String() != NullToken {
		t.Errorf("Null.String() = %q, want %q", Null.String(), NullToken)
	}
	v := V("x")
	if v.IsNull() {
		t.Error("V(x) must be non-null")
	}
	if v.Datum() != "x" {
		t.Errorf("Datum = %q", v.Datum())
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value must be null")
	}
	if V("").IsNull() {
		t.Error("empty datum is not null")
	}
}

func TestValueJoinsWith(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{V("x"), V("x"), true},
		{V("x"), V("y"), false},
		{V("x"), Null, false},
		{Null, V("x"), false},
		{Null, Null, false}, // the paper: ⊥ never joins, even with ⊥
		{V(""), V(""), true},
	}
	for _, c := range cases {
		if got := c.a.JoinsWith(c.b); got != c.want {
			t.Errorf("JoinsWith(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueJoinsWithSymmetric(t *testing.T) {
	f := func(a, b string, an, bn bool) bool {
		va, vb := V(a), V(b)
		if an {
			va = Null
		}
		if bn {
			vb = Null
		}
		return va.JoinsWith(vb) == vb.JoinsWith(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchemaSortedPositions(t *testing.T) {
	s := MustSchema("City", "Country", "Hotel", "Stars")
	wantOrder := []Attribute{"City", "Country", "Hotel", "Stars"}
	for i, a := range wantOrder {
		if s.At(i) != a {
			t.Errorf("At(%d) = %s, want %s", i, s.At(i), a)
		}
		p, ok := s.Position(a)
		if !ok || p != i {
			t.Errorf("Position(%s) = %d,%v", a, p, ok)
		}
	}
	// Input order must not matter.
	s2 := MustSchema("Stars", "Hotel", "Country", "City")
	if !s.Equal(s2) {
		t.Error("schemas with same attributes in different input order must be equal")
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema("A", "A"); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewSchema("A", ""); err == nil {
		t.Error("empty attribute name accepted")
	}
}

func TestSchemaSharedConnected(t *testing.T) {
	climates := MustSchema("Country", "Climate")
	accommodations := MustSchema("Country", "City", "Hotel", "Stars")
	sites := MustSchema("Country", "City", "Site")
	disjoint := MustSchema("X", "Y")

	if got := climates.Shared(accommodations); len(got) != 1 || got[0] != "Country" {
		t.Errorf("Shared = %v", got)
	}
	if got := accommodations.Shared(sites); len(got) != 2 || got[0] != "City" || got[1] != "Country" {
		t.Errorf("Shared = %v", got)
	}
	if !climates.Connected(sites) {
		t.Error("Climates and Sites share Country")
	}
	if climates.Connected(disjoint) {
		t.Error("disjoint schemas must not be connected")
	}
	u := climates.Union(sites)
	if u.Len() != 4 {
		t.Errorf("union width = %d, want 4", u.Len())
	}
	for _, a := range []Attribute{"Country", "Climate", "City", "Site"} {
		if !u.Has(a) {
			t.Errorf("union missing %s", a)
		}
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema("B", "A")
	if s.String() != "(A, B)" {
		t.Errorf("String = %q", s.String())
	}
}

func TestRelationAppendAndAccess(t *testing.T) {
	r := MustRelation("R", MustSchema("A", "B"))
	if err := r.Append("t1", map[Attribute]Value{"A": V("1")}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	v, ok := r.Value(0, "A")
	if !ok || v != V("1") {
		t.Errorf("Value(0,A) = %v,%v", v, ok)
	}
	v, ok = r.Value(0, "B")
	if !ok || !v.IsNull() {
		t.Errorf("Value(0,B) = %v,%v, want null", v, ok)
	}
	if _, ok := r.Value(0, "Z"); ok {
		t.Error("unknown attribute accepted")
	}
	if err := r.Append("t2", map[Attribute]Value{"Z": V("1")}); err == nil {
		t.Error("append with unknown attribute accepted")
	}
}

func TestRelationAppendTupleValidation(t *testing.T) {
	r := MustRelation("R", MustSchema("A", "B"))
	if err := r.AppendTuple(Tuple{Values: []Value{V("1")}}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := r.AppendTuple(Tuple{Values: []Value{V("1"), V("2")}, Prob: 2}); err == nil {
		t.Error("probability > 1 accepted")
	}
	if err := r.AppendTuple(Tuple{Values: []Value{V("1"), V("2")}, Prob: 0.5, Imp: 3}); err != nil {
		t.Error(err)
	}
}

func TestRelationErrors(t *testing.T) {
	if _, err := NewRelation("", MustSchema("A")); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewRelation("R", nil); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestRelationSize(t *testing.T) {
	r := MustRelation("R", MustSchema("A", "B", "C"))
	r.MustAppend("", map[Attribute]Value{"A": V("1")})
	r.MustAppend("", map[Attribute]Value{"B": V("2")})
	if got := r.Size(); got != 2*(1+3) {
		t.Errorf("Size = %d, want 8", got)
	}
}

func TestDatabaseStructure(t *testing.T) {
	r1 := MustRelation("R1", MustSchema("A", "B"))
	r1.MustAppend("x", map[Attribute]Value{"A": V("1"), "B": V("2")})
	r2 := MustRelation("R2", MustSchema("B", "C"))
	r2.MustAppend("y", map[Attribute]Value{"B": V("2"), "C": V("3")})
	r3 := MustRelation("R3", MustSchema("C", "D"))
	r3.MustAppend("z", map[Attribute]Value{"C": V("3"), "D": V("4")})
	db := MustDatabase(r1, r2, r3)

	if db.NumRelations() != 3 {
		t.Fatalf("NumRelations = %d", db.NumRelations())
	}
	if !db.ConnectedRelations(0, 1) || !db.ConnectedRelations(1, 2) {
		t.Error("adjacent chain relations must be connected")
	}
	if db.ConnectedRelations(0, 2) {
		t.Error("R1 and R3 share no attribute")
	}
	if db.ConnectedRelations(1, 1) {
		t.Error("a relation is not connected to itself")
	}
	sp := db.SharedPositions(0, 1)
	if len(sp) != 1 {
		t.Fatalf("SharedPositions(0,1) = %v", sp)
	}
	// B is at position 1 in R1's sorted schema (A,B) and 0 in R2's (B,C).
	if sp[0].P1 != 1 || sp[0].P2 != 0 {
		t.Errorf("shared position pair = %+v", sp[0])
	}
	// Reverse orientation.
	sp = db.SharedPositions(1, 0)
	if sp[0].P1 != 0 || sp[0].P2 != 1 {
		t.Errorf("reversed pair = %+v", sp[0])
	}
	if idx, ok := db.RelationIndex("R2"); !ok || idx != 1 {
		t.Errorf("RelationIndex(R2) = %d,%v", idx, ok)
	}
	if _, ok := db.RelationIndex("nope"); ok {
		t.Error("unknown relation found")
	}
}

func TestDatabaseJoinConsistent(t *testing.T) {
	r1 := MustRelation("R1", MustSchema("A", "B"))
	r1.MustAppend("t0", map[Attribute]Value{"A": V("1"), "B": V("2")})
	r1.MustAppend("t1", map[Attribute]Value{"A": V("9")}) // B is null
	r2 := MustRelation("R2", MustSchema("B", "C"))
	r2.MustAppend("u0", map[Attribute]Value{"B": V("2"), "C": V("3")})
	r2.MustAppend("u1", map[Attribute]Value{"B": V("7"), "C": V("3")})
	db := MustDatabase(r1, r2)

	jc := func(a, b Ref) bool { return db.JoinConsistent(a, b) }
	t0 := Ref{Rel: 0, Idx: 0}
	t1 := Ref{Rel: 0, Idx: 1}
	u0 := Ref{Rel: 1, Idx: 0}
	u1 := Ref{Rel: 1, Idx: 1}
	if !jc(t0, u0) {
		t.Error("t0/u0 agree on B")
	}
	if jc(t0, u1) {
		t.Error("t0/u1 disagree on B")
	}
	if jc(t1, u0) {
		t.Error("null B must not join")
	}
	if jc(t0, t1) {
		t.Error("distinct tuples of one relation are never join consistent")
	}
	if !jc(t0, t0) {
		t.Error("a tuple is consistent with itself")
	}
	// Symmetry.
	if jc(t0, u0) != jc(u0, t0) || jc(t1, u0) != jc(u0, t1) {
		t.Error("JoinConsistent must be symmetric")
	}
}

func TestDatabaseErrors(t *testing.T) {
	if _, err := NewDatabase(); err == nil {
		t.Error("empty database accepted")
	}
	r := MustRelation("R", MustSchema("A"))
	if _, err := NewDatabase(r, nil); err == nil {
		t.Error("nil relation accepted")
	}
	r2 := MustRelation("R", MustSchema("B"))
	if _, err := NewDatabase(r, r2); err == nil {
		t.Error("duplicate relation names accepted")
	}
}

func TestForEachRefOrderAndStop(t *testing.T) {
	r1 := MustRelation("R1", MustSchema("A"))
	r1.MustAppend("", map[Attribute]Value{"A": V("1")})
	r1.MustAppend("", map[Attribute]Value{"A": V("2")})
	r2 := MustRelation("R2", MustSchema("A"))
	r2.MustAppend("", map[Attribute]Value{"A": V("3")})
	db := MustDatabase(r1, r2)

	var got []Ref
	db.ForEachRef(func(ref Ref) bool {
		got = append(got, ref)
		return true
	})
	want := []Ref{{0, 0}, {0, 1}, {1, 0}}
	if len(got) != len(want) {
		t.Fatalf("visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("order[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	count := 0
	db.ForEachRef(func(Ref) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := MustRelation("R", MustSchema("A", "B"))
	r.MustAppend("t1", map[Attribute]Value{"A": V("hello"), "B": V("world")})
	if err := r.AppendTuple(Tuple{Label: "t2", Values: []Value{V("only-a"), Null}, Imp: 2.5, Prob: 0.75}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("R", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip len = %d", back.Len())
	}
	if !back.Schema().Equal(r.Schema()) {
		t.Error("schema changed in round trip")
	}
	t2 := back.Tuple(1)
	if t2.Label != "t2" || t2.Imp != 2.5 || t2.Prob != 0.75 {
		t.Errorf("metadata lost: %+v", t2)
	}
	if !t2.Values[1].IsNull() {
		t.Error("null value lost in round trip")
	}
	if t2.Values[0] != V("only-a") {
		t.Errorf("value changed: %v", t2.Values[0])
	}
}

func TestReadCSVValidation(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"ragged row": "A,B\n1",
		"bad imp":    "#imp,A\nxx,1",
		"bad prob":   "#prob,A\n1.5x,1",
		"big prob":   "#prob,A\n1.5,1",
	}
	for name, in := range cases {
		if _, err := ReadCSV("R", strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	// Empty cells and the null token both decode to ⊥.
	r, err := ReadCSV("R", strings.NewReader("A,B\n,"+NullToken+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Tuple(0).Values[0].IsNull() || !r.Tuple(0).Values[1].IsNull() {
		t.Error("null decoding failed")
	}
}
