package relation_test

import (
	"bytes"
	"testing"

	"repro/internal/relation"
)

// extendBase builds a small two-relation database and the tuple batch
// the tests append to R: one tuple reusing an interned datum and one
// introducing fresh datums (exercising the dictionary overlay), plus a
// null.
func extendBase(t *testing.T) (*relation.Database, []relation.Tuple) {
	t.Helper()
	r := relation.MustRelation("R", relation.MustSchema("A", "B"))
	r.MustAppend("r1", map[relation.Attribute]relation.Value{
		"A": relation.V("x"), "B": relation.V("y")})
	r.MustAppend("r2", map[relation.Attribute]relation.Value{
		"A": relation.V("x2")})
	s := relation.MustRelation("S", relation.MustSchema("B", "C"))
	s.MustAppend("s1", map[relation.Attribute]relation.Value{
		"B": relation.V("y"), "C": relation.V("z")})
	s.MustAppend("s2", map[relation.Attribute]relation.Value{
		"B": relation.V("w"), "C": relation.V("z2")})
	batch := []relation.Tuple{
		{Label: "r3", Values: []relation.Value{relation.V("x"), relation.V("w")}, Imp: 1, Prob: 1},
		{Label: "r4", Values: []relation.Value{relation.V("fresh"), relation.Null}, Imp: 0.5, Prob: 0.5},
	}
	return relation.MustDatabase(r, s), batch
}

// rebuiltEquivalent constructs from scratch the database Extend should
// be equal to.
func rebuiltEquivalent(t *testing.T, db *relation.Database, relIdx int, batch []relation.Tuple) *relation.Database {
	t.Helper()
	rels := make([]*relation.Relation, db.NumRelations())
	for i := range rels {
		src := db.Relation(i)
		dst := relation.MustRelation(src.Name(), src.Schema())
		for j := 0; j < src.Len(); j++ {
			if err := dst.AppendTuple(*src.Tuple(j)); err != nil {
				t.Fatal(err)
			}
		}
		if i == relIdx {
			for _, tu := range batch {
				if err := dst.AppendTuple(tu); err != nil {
					t.Fatal(err)
				}
			}
		}
		rels[i] = dst
	}
	return relation.MustDatabase(rels...)
}

// TestExtendMatchesRebuild: an extended database is indistinguishable
// from a from-scratch build of the same content — same fingerprint
// (the rolled chain meets the full rehash), same decoded values, same
// join-consistency relation, same snapshot bytes.
func TestExtendMatchesRebuild(t *testing.T) {
	db, batch := extendBase(t)
	fpBefore := db.Fingerprint()
	ext, err := db.Extend(0, batch)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := rebuiltEquivalent(t, db, 0, batch)

	if got, want := ext.Fingerprint(), rebuilt.Fingerprint(); got != want {
		t.Fatalf("rolled fingerprint %016x != rebuilt %016x", got, want)
	}
	if ext.Fingerprint() == fpBefore {
		t.Fatal("extension did not change the fingerprint")
	}
	if got, want := ext.NumTuples(), rebuilt.NumTuples(); got != want {
		t.Fatalf("NumTuples = %d, want %d", got, want)
	}
	if got, want := ext.Size(), rebuilt.Size(); got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}

	// Every cell decodes to the same datum, even though the overlay
	// dictionary assigns different codes than a from-scratch intern.
	for r := 0; r < ext.NumRelations(); r++ {
		rel := ext.Relation(r)
		for p := 0; p < rel.Schema().Len(); p++ {
			for i := 0; i < rel.Len(); i++ {
				ref := relation.Ref{Rel: int32(r), Idx: int32(i)}
				got := ext.Dict().Lookup(ext.Code(ref, p))
				want := rebuilt.Dict().Lookup(rebuilt.Code(ref, p))
				if got != want {
					t.Fatalf("rel %d tuple %d pos %d: decoded %v, want %v", r, i, p, got, want)
				}
			}
		}
	}

	// Join consistency agrees across every tuple pair.
	ext.ForEachRef(func(a relation.Ref) bool {
		ext.ForEachRef(func(b relation.Ref) bool {
			if got, want := ext.JoinConsistent(a, b), rebuilt.JoinConsistent(a, b); got != want {
				t.Fatalf("JoinConsistent(%v,%v) = %v, rebuilt says %v", a, b, got, want)
			}
			return true
		})
		return true
	})

	// The base database is untouched: same fingerprint, same length.
	if db.Fingerprint() != fpBefore {
		t.Fatal("Extend mutated the base database's fingerprint")
	}
	if db.Relation(0).Len() != 2 {
		t.Fatalf("Extend grew the base relation to %d tuples", db.Relation(0).Len())
	}

	// Snapshot round-trip: the extended database serialises and loads
	// (the writer reads the dictionary through the overlay).
	var buf bytes.Buffer
	if err := ext.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := relation.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != ext.Fingerprint() {
		t.Fatalf("snapshot of extended db fingerprints %016x, want %016x",
			back.Fingerprint(), ext.Fingerprint())
	}
}

// TestExtendChained: extending an extended database (a second overlay
// derivation) still matches the rebuild.
func TestExtendChained(t *testing.T) {
	db, batch := extendBase(t)
	ext1, err := db.Extend(0, batch[:1])
	if err != nil {
		t.Fatal(err)
	}
	ext2, err := ext1.Extend(0, batch[1:])
	if err != nil {
		t.Fatal(err)
	}
	// A second extension of ext1 on another relation must not disturb
	// ext2 (the overlay is copied, not shared, between siblings).
	sib, err := ext1.Extend(1, []relation.Tuple{
		{Values: []relation.Value{relation.V("sib"), relation.V("fresh2")}, Prob: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := rebuiltEquivalent(t, db, 0, batch)
	if got, want := ext2.Fingerprint(), rebuilt.Fingerprint(); got != want {
		t.Fatalf("chained fingerprint %016x != rebuilt %016x", got, want)
	}
	if got := sib.Relation(0).Len(); got != 3 {
		t.Fatalf("sibling extension sees %d tuples in R, want 3", got)
	}
	if got, ok := sib.Dict().Code("sib"); !ok || got == relation.NullCode {
		t.Fatalf("sibling overlay lost its datum (code %d, ok %v)", got, ok)
	}
}

// TestExtendValidation: bad batches are rejected without freezing or
// deriving anything.
func TestExtendValidation(t *testing.T) {
	db, _ := extendBase(t)
	if _, err := db.Extend(0, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := db.Extend(5, []relation.Tuple{{}}); err == nil {
		t.Fatal("out-of-range relation accepted")
	}
	if _, err := db.Extend(0, []relation.Tuple{
		{Values: []relation.Value{relation.V("a")}}}); err == nil {
		t.Fatal("width-mismatched tuple accepted")
	}
	if _, err := db.Extend(0, []relation.Tuple{
		{Values: []relation.Value{relation.V("a"), relation.V("b")}, Prob: 2}}); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
}
