package relation

// The on-disk columnar snapshot format. A snapshot serialises a frozen
// Database column-first — exactly the layout of the in-memory mirror —
// so loading rebuilds the dictionary, code columns, imp/prob vectors,
// join index and fingerprint without re-interning a single string. The
// layout (see docs/SNAPSHOT_FORMAT.md for the normative description):
//
//	header   magic "FDSN" | version u16 | fingerprint u64 | crc32
//	section  id u16 | length u64 | payload | crc32(payload)
//
// Sections appear in a fixed order: meta (relation count), dict (the
// interned datums in code order), one relation section per relation
// (name, sorted schema, labels, column-major code columns, imp and prob
// vectors), and a zero-length end marker. Every section is individually
// length-prefixed and CRC32-checksummed; after parsing, the recomputed
// Fingerprint must equal the stored one, so a corrupt file that slips
// past the checksums still fails loudly instead of serving wrong
// answers.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Snapshot format constants. The version is bumped on any incompatible
// layout change; readers refuse versions they do not know.
const (
	snapMagic   = "FDSN"
	snapVersion = 1

	secMeta     uint16 = 0
	secDict     uint16 = 1
	secRelation uint16 = 2
	secEnd      uint16 = 3

	// maxSectionLen caps a section's declared payload length before any
	// allocation happens, so a corrupt length field cannot demand an
	// absurd buffer.
	maxSectionLen = 1 << 30
)

// snapHeaderLen is the byte length of the fixed header: magic, version,
// fingerprint, header CRC.
const snapHeaderLen = 4 + 2 + 8 + 4

// WriteSnapshot serialises the database in the versioned binary
// snapshot format. It freezes the database (the snapshot is the
// columnar mirror plus the metadata needed to rebuild the relations)
// and embeds the content fingerprint, which ReadSnapshot re-verifies.
func (db *Database) WriteSnapshot(w io.Writer) error {
	fp := db.Fingerprint() // freezes and encodes

	bw := bufio.NewWriter(w)
	var hdr [snapHeaderLen]byte
	copy(hdr[0:4], snapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], snapVersion)
	binary.LittleEndian.PutUint64(hdr[6:14], fp)
	binary.LittleEndian.PutUint32(hdr[14:18], crc32.ChecksumIEEE(hdr[:14]))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}

	var buf bytes.Buffer
	p := payloadWriter{&buf}
	emit := func(id uint16) error {
		var sh [10]byte
		binary.LittleEndian.PutUint16(sh[0:2], id)
		binary.LittleEndian.PutUint64(sh[2:10], uint64(buf.Len()))
		if _, err := bw.Write(sh[:]); err != nil {
			return err
		}
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return err
		}
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf.Bytes()))
		if _, err := bw.Write(crc[:]); err != nil {
			return err
		}
		buf.Reset()
		return nil
	}

	p.u32(uint32(len(db.rels)))
	if err := emit(secMeta); err != nil {
		return err
	}

	p.u32(uint32(db.dict.Len()))
	for c := int32(1); c <= int32(db.dict.Len()); c++ {
		p.str(db.dict.Datum(c))
	}
	if err := emit(secDict); err != nil {
		return err
	}

	for r, rel := range db.rels {
		p.str(rel.Name())
		attrs := rel.Schema().Attributes()
		p.u32(uint32(len(attrs)))
		for _, a := range attrs {
			p.str(string(a))
		}
		m := rel.Len()
		p.u32(uint32(m))
		for i := 0; i < m; i++ {
			p.str(rel.Tuple(i).Label)
		}
		for _, col := range db.cols[r] {
			for _, c := range col {
				p.i32(c)
			}
		}
		for _, v := range db.imps[r] {
			p.f64(v)
		}
		for _, v := range db.probs[r] {
			p.f64(v)
		}
		if err := emit(secRelation); err != nil {
			return err
		}
	}

	if err := emit(secEnd); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSnapshot loads a database from the snapshot format. The
// dictionary, code columns, imp/prob vectors and join index are adopted
// directly from the file — no value is re-interned — and the relations'
// tuples are materialised by decoding the columns, so the loaded
// database behaves exactly like the one that was written (rendering,
// CSV export and mutation-after-Refresh all work). The database comes
// back frozen; the recomputed Fingerprint must equal the stored one or
// the load fails.
func ReadSnapshot(r io.Reader) (*Database, error) {
	br := bufio.NewReader(r)
	fp, err := readSnapshotHeader(br)
	if err != nil {
		return nil, err
	}

	// meta: relation count.
	payload, err := readSection(br, secMeta)
	if err != nil {
		return nil, err
	}
	pr := payloadReader{b: payload}
	relCount := int(pr.u32())
	if pr.err != nil || relCount < 1 || relCount > 1<<20 || pr.remaining() != 0 {
		return nil, fmt.Errorf("relation: snapshot meta section malformed")
	}

	// dict: the interned datums in code order.
	payload, err = readSection(br, secDict)
	if err != nil {
		return nil, err
	}
	pr = payloadReader{b: payload}
	dictLen := int(pr.u32())
	// Every datum costs at least its 4-byte length prefix, so the count
	// is bounded by the payload before any count-sized allocation.
	if pr.err != nil || dictLen < 0 || dictLen*4 > pr.remaining() {
		return nil, fmt.Errorf("relation: snapshot dictionary malformed")
	}
	dict := &Dict{codes: make(map[string]int32, dictLen), datums: make([]string, dictLen)}
	for i := 0; i < dictLen; i++ {
		s := pr.str()
		dict.datums[i] = s
		dict.codes[s] = int32(i + 1)
	}
	if pr.err != nil || pr.remaining() != 0 {
		return nil, fmt.Errorf("relation: snapshot dictionary malformed")
	}

	rels := make([]*Relation, relCount)
	cols := make([][][]int32, relCount)
	imps := make([][]float64, relCount)
	probs := make([][]float64, relCount)
	for r := 0; r < relCount; r++ {
		payload, err = readSection(br, secRelation)
		if err != nil {
			return nil, err
		}
		rel, relCols, imp, prob, err := parseRelationSection(payload, dict)
		if err != nil {
			return nil, fmt.Errorf("relation: snapshot relation %d: %w", r, err)
		}
		rels[r] = rel
		cols[r] = relCols
		imps[r] = imp
		probs[r] = prob
	}

	payload, err = readSection(br, secEnd)
	if err != nil {
		return nil, err
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("relation: snapshot end marker carries payload")
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("relation: trailing data after snapshot end marker")
	}

	db, err := NewDatabase(rels...)
	if err != nil {
		return nil, fmt.Errorf("relation: snapshot: %w", err)
	}
	db.adoptEncoding(dict, cols, imps, probs)
	if got := db.Fingerprint(); got != fp {
		return nil, fmt.Errorf("relation: snapshot fingerprint mismatch: stored %016x, recomputed %016x", fp, got)
	}
	return db, nil
}

// ReadSnapshotFingerprint reads just the header of a snapshot stream
// and returns the stored content fingerprint. The row log uses it to
// bind log files to the snapshot they extend without parsing the whole
// snapshot.
func ReadSnapshotFingerprint(r io.Reader) (uint64, error) {
	return readSnapshotHeader(bufio.NewReader(r))
}

func readSnapshotHeader(br *bufio.Reader) (uint64, error) {
	var hdr [snapHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("relation: reading snapshot header: %w", err)
	}
	if string(hdr[0:4]) != snapMagic {
		return 0, fmt.Errorf("relation: not a snapshot file (bad magic %q)", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != snapVersion {
		return 0, fmt.Errorf("relation: unsupported snapshot version %d (supported: %d)", v, snapVersion)
	}
	want := binary.LittleEndian.Uint32(hdr[14:18])
	if got := crc32.ChecksumIEEE(hdr[:14]); got != want {
		return 0, fmt.Errorf("relation: snapshot header checksum mismatch")
	}
	return binary.LittleEndian.Uint64(hdr[6:14]), nil
}

// readSection reads the next section, demands it carry the given id,
// verifies its checksum and returns the payload.
func readSection(br *bufio.Reader, wantID uint16) ([]byte, error) {
	var sh [10]byte
	if _, err := io.ReadFull(br, sh[:]); err != nil {
		return nil, fmt.Errorf("relation: snapshot truncated (reading section header): %w", err)
	}
	id := binary.LittleEndian.Uint16(sh[0:2])
	if id != wantID {
		return nil, fmt.Errorf("relation: snapshot section order: got id %d, want %d", id, wantID)
	}
	n := binary.LittleEndian.Uint64(sh[2:10])
	if n > maxSectionLen {
		return nil, fmt.Errorf("relation: snapshot section %d declares %d bytes (cap %d)", id, n, maxSectionLen)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("relation: snapshot truncated (section %d payload): %w", id, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return nil, fmt.Errorf("relation: snapshot truncated (section %d checksum): %w", id, err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crc[:]); got != want {
		return nil, fmt.Errorf("relation: snapshot section %d checksum mismatch", id)
	}
	return payload, nil
}

// parseRelationSection decodes one relation section: the relation with
// its tuples materialised from the code columns, plus the raw columns
// for adoption into the mirror.
func parseRelationSection(payload []byte, dict *Dict) (*Relation, [][]int32, []float64, []float64, error) {
	pr := payloadReader{b: payload}
	name := pr.str()
	width := int(pr.u32())
	// Each attribute costs at least its 4-byte length prefix; bounding
	// the count by the remaining payload keeps a corrupt width from
	// demanding an absurd allocation.
	if pr.err != nil || width < 1 || width*4 > pr.remaining() {
		return nil, nil, nil, nil, fmt.Errorf("malformed schema")
	}
	attrs := make([]Attribute, width)
	for i := range attrs {
		attrs[i] = Attribute(pr.str())
	}
	if pr.err != nil {
		return nil, nil, nil, nil, pr.err
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if schema.Len() != width {
		return nil, nil, nil, nil, fmt.Errorf("schema attributes not unique")
	}
	for i, a := range schema.Attributes() {
		if a != attrs[i] {
			return nil, nil, nil, nil, fmt.Errorf("schema attributes not in sorted order")
		}
	}
	rel, err := NewRelation(name, schema)
	if err != nil {
		return nil, nil, nil, nil, err
	}

	m := int(pr.u32())
	if pr.err != nil || m < 0 {
		return nil, nil, nil, nil, fmt.Errorf("malformed tuple count")
	}
	// The remaining payload must hold m labels (≥ 4 bytes each), the
	// code matrix, and two float columns; check the fixed-size part
	// before allocating.
	if need := uint64(width)*uint64(m)*4 + uint64(m)*16; uint64(pr.remaining()) < need {
		return nil, nil, nil, nil, fmt.Errorf("payload shorter than declared columns")
	}
	labels := make([]string, m)
	for i := range labels {
		labels[i] = pr.str()
	}
	relCols := make([][]int32, width)
	flat := make([]int32, width*m) // one backing array, as in ensureEncoded
	for p := range relCols {
		relCols[p] = flat[p*m : (p+1)*m : (p+1)*m]
		for i := 0; i < m; i++ {
			c := pr.i32()
			if c < 0 || int(c) > dict.Len() {
				return nil, nil, nil, nil, fmt.Errorf("code %d outside dictionary (size %d)", c, dict.Len())
			}
			relCols[p][i] = c
		}
	}
	imp := make([]float64, m)
	for i := range imp {
		imp[i] = pr.f64()
	}
	prob := make([]float64, m)
	for i := range prob {
		prob[i] = pr.f64()
	}
	if pr.err != nil {
		return nil, nil, nil, nil, pr.err
	}
	if pr.remaining() != 0 {
		return nil, nil, nil, nil, fmt.Errorf("trailing bytes in relation section")
	}

	// Materialise the tuples by decoding the columns, so the loaded
	// relation renders, exports and survives a Refresh exactly like the
	// written one.
	rel.tuples = make([]Tuple, m)
	for i := 0; i < m; i++ {
		vals := make([]Value, width)
		for p := 0; p < width; p++ {
			if c := relCols[p][i]; c != NullCode {
				vals[p] = V(dict.datums[c-1])
			}
		}
		rel.tuples[i] = Tuple{Label: labels[i], Values: vals, Imp: imp[i], Prob: prob[i]}
	}
	return rel, relCols, imp, prob, nil
}

// adoptEncoding installs a pre-built columnar mirror (from a snapshot)
// as the database's encoding, freezing the relations — the load-time
// counterpart of ensureEncoded that skips all interning.
func (db *Database) adoptEncoding(dict *Dict, cols [][][]int32, imps, probs [][]float64) {
	db.encodeOnce.Do(func() {
		for _, rel := range db.rels {
			rel.freeze()
		}
		db.dict = dict
		db.cols = cols
		db.imps = imps
		db.probs = probs
		db.index = buildJoinIndex(cols)
	})
}

// payloadWriter serialises primitive values into a section buffer.
// Writes to a bytes.Buffer cannot fail, so it carries no error state.
type payloadWriter struct{ buf *bytes.Buffer }

func (p payloadWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	p.buf.Write(b[:])
}

func (p payloadWriter) i32(v int32) { p.u32(uint32(v)) }

func (p payloadWriter) f64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	p.buf.Write(b[:])
}

func (p payloadWriter) str(s string) {
	p.u32(uint32(len(s)))
	p.buf.WriteString(s)
}

// payloadReader deserialises primitive values from a section payload,
// latching the first error (all further reads return zero values).
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (p *payloadReader) remaining() int { return len(p.b) - p.off }

func (p *payloadReader) fail() {
	if p.err == nil {
		p.err = fmt.Errorf("relation: snapshot payload truncated")
	}
}

func (p *payloadReader) u32() uint32 {
	if p.err != nil || p.remaining() < 4 {
		p.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(p.b[p.off:])
	p.off += 4
	return v
}

func (p *payloadReader) i32() int32 { return int32(p.u32()) }

func (p *payloadReader) f64() float64 {
	if p.err != nil || p.remaining() < 8 {
		p.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(p.b[p.off:]))
	p.off += 8
	return v
}

func (p *payloadReader) str() string {
	n := int(p.u32())
	if p.err != nil || n < 0 || p.remaining() < n {
		p.fail()
		return ""
	}
	s := string(p.b[p.off : p.off+n])
	p.off += n
	return s
}
