package relation_test

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func freezeDB(t *testing.T) *relation.Database {
	t.Helper()
	r := relation.MustRelation("R", relation.MustSchema("A", "B"))
	r.MustAppend("r1", map[relation.Attribute]relation.Value{
		"A": relation.V("x"), "B": relation.V("y")})
	s := relation.MustRelation("S", relation.MustSchema("B", "C"))
	s.MustAppend("s1", map[relation.Attribute]relation.Value{
		"B": relation.V("y"), "C": relation.V("z")})
	return relation.MustDatabase(r, s)
}

// TestFreezeContract: mutation is allowed before the freeze and panics
// after it; appends fail after it; the mirror reflects the pre-freeze
// state.
func TestFreezeContract(t *testing.T) {
	db := freezeDB(t)
	if db.Frozen() {
		t.Fatal("database frozen before first query")
	}
	// Pre-freeze mutation through the accessor is visible to the mirror.
	db.Relation(0).MutateTuple(0, func(tp *relation.Tuple) {
		tp.Values[0] = relation.V("x2")
	})
	db.Freeze()
	if !db.Frozen() {
		t.Fatal("Frozen() = false after Freeze()")
	}
	if got := db.Dict().Datum(db.Code(relation.Ref{Rel: 0, Idx: 0}, 0)); got != "x2" {
		t.Fatalf("mirror holds %q, want pre-freeze mutation %q", got, "x2")
	}
	// Post-freeze mutation panics.
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("MutateTuple after freeze did not panic")
			}
			if !strings.Contains(r.(string), "froze") {
				t.Fatalf("unexpected panic: %v", r)
			}
		}()
		db.Relation(0).MutateTuple(0, func(tp *relation.Tuple) { tp.Imp = 2 })
	}()
	// Post-freeze appends error.
	if err := db.Relation(0).Append("r2", nil); err == nil {
		t.Fatal("Append after freeze succeeded")
	}
	if err := db.Relation(0).AppendTuple(relation.Tuple{
		Values: []relation.Value{relation.Null, relation.Null}, Prob: 1}); err == nil {
		t.Fatal("AppendTuple after freeze succeeded")
	}
}

// TestFreezeImpliedByQuery: the first predicate evaluation freezes.
func TestFreezeImpliedByQuery(t *testing.T) {
	db := freezeDB(t)
	db.JoinConsistent(relation.Ref{Rel: 0, Idx: 0}, relation.Ref{Rel: 1, Idx: 0})
	if !db.Frozen() {
		t.Fatal("first query did not freeze the database")
	}
}
