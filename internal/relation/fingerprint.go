package relation

import "math"

// The content fingerprint is a 64-bit FNV-1a hash computed from one
// rolling chain per relation: each chain hashes the relation's name and
// schema, then every tuple's label, values (null-marked, length-
// prefixed) and imp/prob bits, in tuple order. The database fingerprint
// combines the relation count, per-relation tuple counts and the chain
// states. Hashing values rather than dictionary codes keeps the
// fingerprint independent of interning order, so a database extended in
// place (Extend) — whose dictionary overlay assigns codes in a
// different order than a from-scratch encode would — still fingerprints
// identically to a rebuilt equal-content database. Keeping the tuple
// counts out of the chains and in the final combine is what makes the
// chains rollable: an append continues one relation's chain over just
// the new tuples.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211

	// fpNullMarker is the length sentinel hashed for a null value; a
	// real datum hashes its length+1, so 0 is never ambiguous with ⊥.
	fpNullMarker uint64 = 0
)

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	h = fnvU64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// fpChainInit starts a relation's fingerprint chain: its name and
// sorted schema attributes.
func fpChainInit(rel *Relation) uint64 {
	h := fnvString(fnvOffset64, rel.Name())
	attrs := rel.Schema().Attributes()
	h = fnvU64(h, uint64(len(attrs)))
	for _, a := range attrs {
		h = fnvString(h, string(a))
	}
	return h
}

// fpChainTuple advances a relation's chain over one tuple. Appending a
// tuple to a frozen database rolls the chain with exactly this step
// (see Database.Extend), so an extended database and a from-scratch
// build of the same content share their chain states.
func fpChainTuple(h uint64, t *Tuple) uint64 {
	h = fnvString(h, t.Label)
	for _, v := range t.Values {
		if v.IsNull() {
			h = fnvU64(h, fpNullMarker)
		} else {
			h = fnvU64(h, uint64(len(v.datum))+1)
			for i := 0; i < len(v.datum); i++ {
				h ^= uint64(v.datum[i])
				h *= fnvPrime64
			}
		}
	}
	h = fnvU64(h, math.Float64bits(t.Imp))
	h = fnvU64(h, math.Float64bits(t.Prob))
	return h
}

// combineFP folds the per-relation chain states and tuple counts into
// the database fingerprint.
func combineFP(rels []*Relation, relFPs []uint64) uint64 {
	h := fnvU64(fnvOffset64, uint64(len(rels)))
	for r, rel := range rels {
		h = fnvU64(h, uint64(rel.Len()))
		h = fnvU64(h, relFPs[r])
	}
	return h
}

// Fingerprint returns a 64-bit content hash of the frozen database:
// relation names, schemas, tuple labels, values and the importance/
// probability columns all contribute. Two databases carry the same
// fingerprint iff they hold the same relations with the same tuples in
// the same order (FNV-1a collisions aside), regardless of how the
// tuples were loaded — the hash reads values, not dictionary codes, so
// snapshot-adopted, from-scratch and incrementally extended encodings
// of equal content agree.
//
// Computing the fingerprint freezes the database; the value is cached
// until a Refresh discards the mirror. internal/service keys its result
// cache on this value, so repeated queries against identically-loaded
// databases share cached results.
func (db *Database) Fingerprint() uint64 {
	db.ensureEncoded()
	db.fpOnce.Do(func() {
		if db.relFPs == nil {
			relFPs := make([]uint64, len(db.rels))
			for r, rel := range db.rels {
				h := fpChainInit(rel)
				for i := 0; i < rel.Len(); i++ {
					h = fpChainTuple(h, rel.Tuple(i))
				}
				relFPs[r] = h
			}
			db.relFPs = relFPs
		}
		db.fp = combineFP(db.rels, db.relFPs)
	})
	return db.fp
}
