package relation

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Fingerprint returns a 64-bit content hash of the frozen database:
// relation names, schemas, tuple labels, the dictionary, the columnar
// code mirror, and the importance/probability columns all contribute.
// Two databases carry the same fingerprint iff they hold the same
// relations with the same tuples in the same order (FNV-1a collisions
// aside), regardless of how the tuples were loaded — the dictionary
// assigns codes in deterministic encoding order, so equal content
// yields equal code columns.
//
// Computing the fingerprint freezes the database (it hashes the
// mirror); the value is cached until a Refresh discards the mirror.
// internal/service keys its result cache on this value, so repeated
// queries against identically-loaded databases share cached results.
func (db *Database) Fingerprint() uint64 {
	db.ensureEncoded()
	db.fpOnce.Do(func() {
		h := fnv.New64a()
		var buf [8]byte
		w64 := func(v uint64) {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
		wstr := func(s string) {
			w64(uint64(len(s)))
			h.Write([]byte(s))
		}
		w64(uint64(len(db.rels)))
		dict := db.dict
		w64(uint64(dict.Len()))
		for c := int32(1); c <= int32(dict.Len()); c++ {
			wstr(dict.Datum(c))
		}
		for r, rel := range db.rels {
			wstr(rel.Name())
			attrs := rel.Schema().Attributes()
			w64(uint64(len(attrs)))
			for _, a := range attrs {
				wstr(string(a))
			}
			w64(uint64(rel.Len()))
			for i := 0; i < rel.Len(); i++ {
				wstr(rel.Tuple(i).Label)
			}
			for _, col := range db.cols[r] {
				for _, c := range col {
					w64(uint64(uint32(c)))
				}
			}
			for _, v := range db.imps[r] {
				w64(math.Float64bits(v))
			}
			for _, v := range db.probs[r] {
				w64(math.Float64bits(v))
			}
		}
		db.fp = h.Sum64()
	})
	return db.fp
}
