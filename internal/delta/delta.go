// Package delta implements incremental full-disjunction maintenance:
// given a frozen database that has been extended in place by an
// appended tuple batch (relation.Database.Extend), it computes the
// delta result set — the maximal join-consistent-and-connected tuple
// sets the batch created — and patches old result lists across the
// transition instead of recomputing them.
//
// The algebra of an append. Appending tuples to relation r never
// invalidates the join consistency of an existing set and never makes
// an existing maximal set larger without involving a new tuple, so
//
//	FD(R') = { T ∈ FD(R) : no D ∈ Δ strictly contains T } ∪ Δ
//
// where Δ is the set of maximal JCC sets of R' containing an appended
// tuple. Δ is enumerated directly by the seeded delta enumerators
// (core.NewDeltaEnumerator, approx.NewDeltaEnumerator): Incomplete is
// seeded with the appended singletons only, and discovered candidates
// whose relation-r member predates the append are discarded, so the
// enumeration does O(Δ-neighbourhood) work rather than O(FD). The same
// identity holds for the (A,τ)-approximate full disjunction with any
// acceptable monotone join function: a qualifying superset of an old
// maximal T must contain an appended tuple (T was maximal before), and
// its maximal qualifying superset is a member of Δ.
//
// Subsumption (the "no D strictly contains T" filter) is the existing
// signature/bitset containment check, Set.ContainsAll, which walks
// members and relation bits only — it is universe-independent, so old
// result sets bound to the pre-append universe compare correctly
// against delta sets bound to the extended one. Strictness needs no
// extra check: a delta set contains an appended tuple, an old result
// cannot, so D ⊇ T implies D ≠ T.
package delta

import (
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tupleset"
)

// Delta is the result-set delta of one appended batch for one query
// family (exact, or one (A,τ) approximate family): the new maximal
// sets the batch created. Old results subsumed by the batch are not
// stored — they are exactly the sets an Added member strictly
// contains, and Patch removes them from any old result list.
type Delta struct {
	// Added holds the maximal sets of the extended database that
	// contain an appended tuple, in enumeration order. The sets are
	// bound to the extended database's universe.
	Added []*tupleset.Set
	// Stats accumulates the enumeration counters of the delta run.
	Stats core.Stats
}

// Exact computes the exact-mode delta: u is a universe over the
// extended database whose relation relIdx received appended tuples at
// indices firstNew..Len-1.
func Exact(u *tupleset.Universe, relIdx, firstNew int, opts core.Options) (*Delta, error) {
	e, err := core.NewDeltaEnumerator(u, relIdx, firstNew, opts)
	if err != nil {
		return nil, err
	}
	d := &Delta{Added: e.All()}
	d.Stats = e.Stats()
	return d, nil
}

// Approx computes the delta of an (a,tau)-approximate family over the
// extended database db.
func Approx(db *relation.Database, relIdx, firstNew int, a approx.Join, tau float64, opts core.Options) (*Delta, error) {
	e, err := approx.NewDeltaEnumerator(db, relIdx, firstNew, a, tau, opts)
	if err != nil {
		return nil, err
	}
	d := &Delta{Added: e.All()}
	d.Stats = e.Stats()
	return d, nil
}

// Append is the one-call library form: it extends db in place at
// relation relIdx (sharing memory with db, which stays valid and
// untouched) and computes the exact-mode delta of the batch. It
// returns the extended database and the delta.
func Append(db *relation.Database, relIdx int, tuples []relation.Tuple, opts core.Options) (*relation.Database, *Delta, error) {
	firstNew := db.Relation(relIdx).Len()
	ext, err := db.Extend(relIdx, tuples)
	if err != nil {
		return nil, nil, err
	}
	d, err := Exact(tupleset.NewUniverse(ext), relIdx, firstNew, opts)
	if err != nil {
		return nil, nil, err
	}
	return ext, d, nil
}

// Subsumes reports whether t — a result of the pre-append full
// disjunction — is strictly contained in a delta set and therefore no
// longer maximal in the extended database.
func (d *Delta) Subsumes(t *tupleset.Set) bool {
	for _, a := range d.Added {
		if a.ContainsAll(t) {
			return true
		}
	}
	return false
}

// Patch rewrites an old full-disjunction result list into the
// post-append one: old results a delta set subsumes are dropped, the
// delta sets are appended. The input slice is never mutated — callers
// share drained result lists across sessions — and the returned slice
// is freshly allocated. removed reports how many old results were
// dropped.
func (d *Delta) Patch(old []*tupleset.Set) (patched []*tupleset.Set, removed int) {
	patched = make([]*tupleset.Set, 0, len(old)+len(d.Added))
	for _, t := range old {
		if d.Subsumes(t) {
			removed++
			continue
		}
		patched = append(patched, t)
	}
	patched = append(patched, d.Added...)
	return patched, removed
}
