package delta_test

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/relation"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

// prefixDB rebuilds a database holding only the first counts[i] tuples
// of each relation of full — the state an append sequence starts from.
func prefixDB(t *testing.T, full *relation.Database, counts []int) *relation.Database {
	t.Helper()
	rels := make([]*relation.Relation, full.NumRelations())
	for i := range rels {
		src := full.Relation(i)
		dst := relation.MustRelation(src.Name(), src.Schema())
		for j := 0; j < counts[i]; j++ {
			if err := dst.AppendTuple(*src.Tuple(j)); err != nil {
				t.Fatal(err)
			}
		}
		rels[i] = dst
	}
	return relation.MustDatabase(rels...)
}

// appendStep is one randomized batch: relation rel gains the next k
// tuples of the full database.
type appendStep struct {
	rel, k int
}

// randomSteps plans a randomized append sequence replaying full from
// the counts prefix.
func randomSteps(rng *rand.Rand, full *relation.Database, counts []int) []appendStep {
	remaining := 0
	for i, c := range counts {
		remaining += full.Relation(i).Len() - c
	}
	left := append([]int(nil), counts...)
	var steps []appendStep
	for remaining > 0 {
		r := rng.Intn(len(left))
		avail := full.Relation(r).Len() - left[r]
		if avail == 0 {
			continue
		}
		k := 1 + rng.Intn(min(3, avail))
		steps = append(steps, appendStep{rel: r, k: k})
		left[r] += k
		remaining -= k
	}
	return steps
}

func batchTuples(full *relation.Database, step appendStep, firstNew int) []relation.Tuple {
	out := make([]relation.Tuple, step.k)
	for i := 0; i < step.k; i++ {
		out[i] = *full.Relation(step.rel).Tuple(firstNew + i)
	}
	return out
}

// sortedKeys renders a result multiset as its sorted canonical keys.
// Set.Key is member-index based and universe-independent, so lists
// maintained across different (compatibly indexed) universes compare.
func sortedKeys(sets []*tupleset.Set) []string {
	keys := make([]string, len(sets))
	for i, s := range sets {
		keys[i] = s.Key()
	}
	sort.Strings(keys)
	return keys
}

func sameMultiset(t *testing.T, label string, got, want []*tupleset.Set) {
	t.Helper()
	g, w := sortedKeys(got), sortedKeys(want)
	if len(g) != len(w) {
		t.Fatalf("%s: delta-maintained %d results, from-scratch %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: result multisets diverge at %d: %q vs %q", label, i, g[i], w[i])
		}
	}
}

func shapes() map[string]func(workload.Config) (*relation.Database, error) {
	return map[string]func(workload.Config) (*relation.Database, error){
		"chain":  workload.Chain,
		"star":   workload.Star,
		"clique": workload.Clique,
	}
}

// TestDeltaExactEquivalence: after a randomized append sequence, the
// delta-maintained exact result set is multiset-equal to a
// from-scratch enumeration of the final database, and the rolled
// fingerprint equals the final database's.
func TestDeltaExactEquivalence(t *testing.T) {
	opts := core.Options{UseIndex: true, UseJoinIndex: true}
	for shape, gen := range shapes() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", shape, seed), func(t *testing.T) {
				full, err := gen(workload.Config{
					Relations: 3, TuplesPerRelation: 8, Domain: 3, NullRate: 0.15, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed * 101))
				counts := make([]int, full.NumRelations())
				for i := range counts {
					counts[i] = full.Relation(i).Len() / 2
				}
				steps := randomSteps(rng, full, counts)

				db := prefixDB(t, full, counts)
				results, _, err := core.FullDisjunction(db, opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, step := range steps {
					batch := batchTuples(full, step, db.Relation(step.rel).Len())
					ext, d, err := delta.Append(db, step.rel, batch, opts)
					if err != nil {
						t.Fatal(err)
					}
					results, _ = d.Patch(results)
					db = ext
				}

				scratch, _, err := core.FullDisjunction(db, opts)
				if err != nil {
					t.Fatal(err)
				}
				sameMultiset(t, "exact", results, scratch)
				if got, want := db.Fingerprint(), full.Fingerprint(); got != want {
					t.Fatalf("rolled fingerprint %016x != full rebuild %016x", got, want)
				}
			})
		}
	}
}

// TestDeltaApproxEquivalence: the same property for an (Amin,
// Levenshtein, τ)-approximate family.
func TestDeltaApproxEquivalence(t *testing.T) {
	a := &approx.Amin{S: approx.LevenshteinSim{}}
	const tau = 0.6
	opts := core.Options{UseIndex: true}
	for shape, gen := range shapes() {
		seed := int64(4)
		t.Run(shape, func(t *testing.T) {
			full, err := gen(workload.Config{
				Relations: 3, TuplesPerRelation: 6, Domain: 3, NullRate: 0.15, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 17))
			counts := make([]int, full.NumRelations())
			for i := range counts {
				counts[i] = full.Relation(i).Len() / 2
			}
			steps := randomSteps(rng, full, counts)

			db := prefixDB(t, full, counts)
			results, _, err := approx.FullDisjunction(db, a, tau, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, step := range steps {
				firstNew := db.Relation(step.rel).Len()
				batch := batchTuples(full, step, firstNew)
				ext, err := db.Extend(step.rel, batch)
				if err != nil {
					t.Fatal(err)
				}
				d, err := delta.Approx(ext, step.rel, firstNew, a, tau, opts)
				if err != nil {
					t.Fatal(err)
				}
				results, _ = d.Patch(results)
				db = ext
			}

			scratch, _, err := approx.FullDisjunction(db, a, tau, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameMultiset(t, "approx", results, scratch)
		})
	}
}

// TestExtendConcurrentWithReaders: extending a database races nothing —
// concurrent enumerations over the base database run while batches are
// appended and delta-enumerated. The race detector is the assertion.
func TestExtendConcurrentWithReaders(t *testing.T) {
	full, err := workload.Chain(workload.Config{
		Relations: 3, TuplesPerRelation: 8, Domain: 3, NullRate: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{4, 4, 4}
	base := prefixDB(t, full, counts)
	base.Freeze()
	opts := core.Options{UseIndex: true, UseJoinIndex: true}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := core.FullDisjunction(base, opts); err != nil {
				t.Error(err)
			}
		}()
	}
	db := base
	for _, step := range []appendStep{{0, 2}, {2, 3}, {1, 1}} {
		batch := batchTuples(full, step, db.Relation(step.rel).Len())
		ext, _, err := delta.Append(db, step.rel, batch, opts)
		if err != nil {
			t.Fatal(err)
		}
		db = ext
	}
	wg.Wait()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
