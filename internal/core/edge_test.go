package core

import (
	"sort"
	"testing"

	"repro/internal/naive"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

// TestSingleRelation: the full disjunction of one relation is the set
// of its tuples as singletons (no two tuples of one relation combine).
func TestSingleRelation(t *testing.T) {
	r := relation.MustRelation("R", relation.MustSchema("A", "B"))
	r.MustAppend("t0", map[relation.Attribute]relation.Value{"A": relation.V("1")})
	r.MustAppend("t1", map[relation.Attribute]relation.Value{"B": relation.V("2")})
	db := relation.MustDatabase(r)
	got, _, err := FullDisjunction(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("FD over one relation has %d members, want 2", len(got))
	}
	for _, s := range got {
		if s.Len() != 1 {
			t.Errorf("non-singleton %s", s.Format(db))
		}
	}
}

// TestEmptyRelation: an empty relation contributes nothing but does not
// break the other passes.
func TestEmptyRelation(t *testing.T) {
	r1 := relation.MustRelation("R1", relation.MustSchema("A"))
	r1.MustAppend("x", map[relation.Attribute]relation.Value{"A": relation.V("1")})
	empty := relation.MustRelation("E", relation.MustSchema("A", "B"))
	db := relation.MustDatabase(r1, empty)
	got, _, err := FullDisjunction(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Len() != 1 {
		t.Fatalf("FD = %v", got)
	}
	// FDi over the empty relation is empty.
	fdE, _, err := FDi(db, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fdE) != 0 {
		t.Errorf("FD over empty seed relation = %d members", len(fdE))
	}
}

// TestDisconnectedSchema: with two schema components, results never mix
// components, and the union over both components matches the oracle.
func TestDisconnectedSchema(t *testing.T) {
	r1 := relation.MustRelation("R1", relation.MustSchema("A", "B"))
	r1.MustAppend("x0", map[relation.Attribute]relation.Value{"A": relation.V("1"), "B": relation.V("2")})
	r2 := relation.MustRelation("R2", relation.MustSchema("B", "C"))
	r2.MustAppend("y0", map[relation.Attribute]relation.Value{"B": relation.V("2"), "C": relation.V("3")})
	r3 := relation.MustRelation("R3", relation.MustSchema("X"))
	r3.MustAppend("z0", map[relation.Attribute]relation.Value{"X": relation.V("9")})
	db := relation.MustDatabase(r1, r2, r3)

	got, _, err := FullDisjunction(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := naive.FullDisjunction(db)
	if len(got) != len(want) {
		t.Fatalf("FD = %d members, oracle %d", len(got), len(want))
	}
	for _, s := range got {
		if s.HasRelation(2) && s.Len() > 1 {
			t.Errorf("result mixes disconnected components: %s", s.Format(db))
		}
	}
}

// TestAllNullJoinValues: tuples whose join attributes are all null can
// never combine; every result is a singleton.
func TestAllNullJoinValues(t *testing.T) {
	r1 := relation.MustRelation("R1", relation.MustSchema("J", "P1"))
	r1.MustAppend("x0", map[relation.Attribute]relation.Value{"P1": relation.V("a")})
	r2 := relation.MustRelation("R2", relation.MustSchema("J", "P2"))
	r2.MustAppend("y0", map[relation.Attribute]relation.Value{"P2": relation.V("b")})
	db := relation.MustDatabase(r1, r2)
	got, _, err := FullDisjunction(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("FD = %d members, want 2 singletons", len(got))
	}
	for _, s := range got {
		if s.Len() != 1 {
			t.Errorf("⊥ join values combined: %s", s.Format(db))
		}
	}
}

// TestDuplicateTuples: identical tuples in one relation stay distinct
// tuple sets (tuple-set semantics, unlike padded-tuple semantics).
func TestDuplicateTuples(t *testing.T) {
	r1 := relation.MustRelation("R1", relation.MustSchema("A"))
	r1.MustAppend("x0", map[relation.Attribute]relation.Value{"A": relation.V("1")})
	r1.MustAppend("x1", map[relation.Attribute]relation.Value{"A": relation.V("1")})
	r2 := relation.MustRelation("R2", relation.MustSchema("A"))
	r2.MustAppend("y0", map[relation.Attribute]relation.Value{"A": relation.V("1")})
	db := relation.MustDatabase(r1, r2)
	got, _, err := FullDisjunction(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// {x0,y0} and {x1,y0}.
	if len(got) != 2 {
		names := make([]string, len(got))
		for i, s := range got {
			names[i] = s.Format(db)
		}
		t.Fatalf("FD = %v, want 2 pair sets", names)
	}
}

// TestParallelMatchesSequential: the concurrent driver produces exactly
// the sequential output across workloads and worker counts.
func TestParallelMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		db, err := workload.Random(workload.Config{
			Relations: 5, TuplesPerRelation: 6, Domain: 3, NullRate: 0.2, Seed: seed}, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := FullDisjunction(db, Options{UseIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		wantStr := formatAll(db, want)
		for _, workers := range []int{1, 2, 8} {
			got, stats, err := ParallelFullDisjunction(db, Options{UseIndex: true}, workers)
			if err != nil {
				t.Fatal(err)
			}
			gotStr := formatAll(db, got)
			if !equalStrings(gotStr, wantStr) {
				t.Errorf("seed %d workers %d: parallel output differs", seed, workers)
			}
			if stats.Emitted != len(want) {
				t.Errorf("seed %d: emitted %d, want %d", seed, stats.Emitted, len(want))
			}
		}
	}
}

func TestParallelRejectsUnsupportedOptions(t *testing.T) {
	db := workload.Tourist()
	if _, _, err := ParallelFullDisjunction(db, Options{Strategy: InitSeeded}, 2); err == nil {
		t.Error("seeded strategy accepted in parallel mode")
	}
	if _, _, err := ParallelFullDisjunction(db, Options{Trace: func(int, *tupleset.Set, []*tupleset.Set, []*tupleset.Set) {}}, 2); err == nil {
		t.Error("tracing accepted in parallel mode")
	}
}

// TestBufferPoolIntegration: fetching pages through a buffer pool does
// not change the output; a pool large enough to hold the database turns
// all repeated-scan page reads into hits, and pool capacity trades
// misses monotonically.
func TestBufferPoolIntegration(t *testing.T) {
	db, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 16, Domain: 4, NullRate: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	const block = 4
	base, baseStats, err := FullDisjunction(db, Options{BlockSize: block})
	if err != nil {
		t.Fatal(err)
	}
	totalPages := 0
	for i := 0; i < db.NumRelations(); i++ {
		totalPages += (db.Relation(i).Len() + block - 1) / block
	}
	prevReads := baseStats.PageReads
	for _, capacity := range []int{1, totalPages / 2, totalPages} {
		pool := storage.NewBufferPool(capacity)
		got, stats, err := FullDisjunction(db, Options{BlockSize: block, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		if !equalStrings(formatAll(db, got), formatAll(db, base)) {
			t.Fatalf("capacity %d changed the output", capacity)
		}
		if stats.PageReads > prevReads {
			t.Errorf("capacity %d: page reads %d exceed smaller-capacity %d",
				capacity, stats.PageReads, prevReads)
		}
		prevReads = stats.PageReads
		if pool.Hits()+pool.Misses() == 0 {
			t.Error("pool never consulted")
		}
	}
	// A pool covering the whole database only misses cold pages.
	pool := storage.NewBufferPool(totalPages)
	_, stats, err := FullDisjunction(db, Options{BlockSize: block, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PageReads != int64(totalPages) {
		t.Errorf("warm pool: %d page reads, want %d (cold misses only)",
			stats.PageReads, totalPages)
	}
	if pool.HitRate() < 0.9 {
		t.Errorf("warm pool hit rate %.2f too low", pool.HitRate())
	}
}

// TestSortedParallelOutputDeterministic: repeated parallel runs return
// identical (sorted) output.
func TestSortedParallelOutputDeterministic(t *testing.T) {
	db, err := workload.Star(workload.Config{
		Relations: 4, TuplesPerRelation: 8, Domain: 3, NullRate: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := ParallelFullDisjunction(db, Options{UseIndex: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := formatAll(db, first)
	if !sort.StringsAreSorted(a) {
		t.Error("helper output not sorted") // formatAll sorts; sanity
	}
	for trial := 0; trial < 3; trial++ {
		again, _, err := ParallelFullDisjunction(db, Options{UseIndex: true}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !equalStrings(formatAll(db, again), a) {
			t.Fatal("parallel output not deterministic")
		}
	}
}
