package core

import (
	"repro/internal/relation"
	"repro/internal/tupleset"
)

// Cursor is the pull-based form of Stream: a suspended full-disjunction
// enumeration that produces one result per Next call and can be
// abandoned at any point with Close. The suspended state is explicit —
// the current per-relation pass, its Enumerator, and (for the seeded
// strategies) the store of previously printed results — so a cursor
// holds no goroutine and abandoning one leaks nothing.
//
// A Cursor is not safe for concurrent use; wrap it (as internal/service
// does) when several goroutines share one enumeration.
type Cursor struct {
	u    *tupleset.Universe
	opts Options
	// total accumulates the counters of finished passes; the counters
	// of the in-flight pass live in e until foldPass.
	total Stats
	pass  int
	n     int
	e     *Enumerator
	// printed is the cross-pass duplicate filter of the seeded
	// strategies (nil for the restart strategy, which suppresses
	// duplicates by minimal relation instead).
	printed *CompleteStore
	err     error
	closed  bool
}

// NewCursor prepares a pull-based enumeration of FD(R) with the
// initialisation strategy selected in opts. No work happens until the
// first Next call.
func NewCursor(db *relation.Database, opts Options) (*Cursor, error) {
	u := tupleset.NewUniverse(db)
	c := &Cursor{u: u, opts: opts, n: db.NumRelations()}
	switch opts.Strategy {
	case InitSeeded, InitProjected:
		c.printed = NewCompleteStore(u, true)
	}
	return c, nil
}

// Next produces the next member of FD(R), or ok=false when the
// enumeration is exhausted, closed, or failed (check Err).
func (c *Cursor) Next() (*tupleset.Set, bool) {
	if c.closed || c.err != nil {
		return nil, false
	}
	for {
		if c.e == nil {
			if c.pass >= c.n {
				return nil, false
			}
			e, err := c.passEnumerator()
			if err != nil {
				c.err = err
				return nil, false
			}
			c.e = e
		}
		t, ok := c.e.Next()
		if !ok {
			c.foldPass()
			c.pass++
			continue
		}
		if c.printed != nil {
			// Seeded strategies: suppress results subsumed by a
			// previously printed set (§7).
			anchor, _ := t.Member(c.pass)
			if c.printed.ContainsSuperset(t, anchor, &c.total) {
				continue
			}
			c.printed.Add(t)
		} else if minRelation(t) != c.pass {
			// Restart strategy: a result belongs to the pass of its
			// minimal relation (duplicate-avoidance rule below
			// Corollary 4.7).
			continue
		}
		c.total.Emitted++
		return t, true
	}
}

// passEnumerator builds the enumerator of the current pass.
func (c *Cursor) passEnumerator() (*Enumerator, error) {
	if c.printed == nil {
		return NewEnumerator(c.u, c.pass, c.opts)
	}
	init := seedInit(c.u, c.pass, c.opts, c.printed, &c.total)
	return NewSeededEnumerator(c.u, c.pass, c.opts, init, c.pass)
}

// foldPass folds the in-flight enumerator's counters into the total.
// Emitted is zeroed first: the cursor counts emissions itself (per-pass
// enumerators also count suppressed duplicates).
func (c *Cursor) foldPass() {
	if c.e == nil {
		return
	}
	s := c.e.Stats()
	s.Emitted = 0
	c.total.Add(s)
	c.e = nil
}

// Stats returns a snapshot of the counters accumulated so far,
// including the in-flight pass.
func (c *Cursor) Stats() Stats {
	s := c.total
	if c.e != nil {
		es := c.e.Stats()
		es.Emitted = 0
		s.Add(es)
	}
	return s
}

// Err returns the error that terminated the enumeration, if any.
func (c *Cursor) Err() error { return c.err }

// Close abandons the enumeration. It is idempotent; Next returns
// ok=false afterwards. Closing releases no external resources — the
// cursor holds only heap state — but folds the in-flight pass so Stats
// stays accurate.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.foldPass()
	c.closed = true
}
