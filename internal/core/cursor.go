package core

import (
	"context"

	"repro/internal/relation"
	"repro/internal/tupleset"
)

// Cursor is the pull-based form of Stream: a suspended full-disjunction
// enumeration that produces one result per Next call and can be
// abandoned at any point with Close. The suspended state is explicit —
// the current per-relation pass, its Enumerator, and (for the seeded
// strategies) the store of previously printed results — so a cursor
// holds no goroutine and abandoning one leaks nothing.
//
// A Cursor is not safe for concurrent use; wrap it (as internal/service
// does) when several goroutines share one enumeration.
type Cursor struct {
	ctx  context.Context
	u    *tupleset.Universe
	opts Options
	// total accumulates the counters of finished passes; the counters
	// of the in-flight pass live in e until foldPass.
	total Stats
	pass  int
	n     int
	e     *Enumerator
	// printed is the cross-pass duplicate filter of the seeded
	// strategies (nil for the restart strategy, which suppresses
	// duplicates by minimal relation instead).
	printed *CompleteStore
	err     error
	closed  bool
}

// NewCursor prepares a pull-based enumeration of FD(R) with the
// initialisation strategy selected in opts. No work happens until the
// first Next call. Cancelling ctx makes the next step fail promptly:
// Next returns ok=false within one GetNextResult iteration and Err
// reports ctx.Err(). A nil ctx means context.Background().
func NewCursor(ctx context.Context, db *relation.Database, opts Options) (*Cursor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	u := tupleset.NewUniverse(db)
	c := &Cursor{ctx: ctx, u: u, opts: opts, n: db.NumRelations()}
	switch opts.Strategy {
	case InitSeeded, InitProjected:
		c.printed = NewCompleteStore(u, true)
	}
	return c, nil
}

// Next produces the next member of FD(R), or ok=false when the
// enumeration is exhausted, closed, or failed (check Err).
func (c *Cursor) Next() (*tupleset.Set, bool) {
	if c.closed || c.err != nil {
		return nil, false
	}
	for {
		// One check per GetNextResult iteration: a cancelled enumeration
		// stops within one step (the paper's unit of incremental work)
		// without paying a context poll on every scanned tuple.
		if err := c.ctx.Err(); err != nil {
			c.err = err
			return nil, false
		}
		if c.e == nil {
			if c.pass >= c.n {
				return nil, false
			}
			e, err := c.passEnumerator()
			if err != nil {
				c.err = err
				return nil, false
			}
			c.e = e
		}
		t, ok := c.e.Next()
		if !ok {
			c.foldPass()
			c.pass++
			continue
		}
		if c.printed != nil {
			// Seeded strategies: suppress results subsumed by a
			// previously printed set (§7).
			anchor, _ := t.Member(c.pass)
			if c.printed.ContainsSuperset(t, anchor, &c.total) {
				continue
			}
			c.printed.Add(t)
		} else if minRelation(t) != c.pass {
			// Restart strategy: a result belongs to the pass of its
			// minimal relation (duplicate-avoidance rule below
			// Corollary 4.7).
			continue
		}
		c.total.Emitted++
		return t, true
	}
}

// passEnumerator builds the enumerator of the current pass.
func (c *Cursor) passEnumerator() (*Enumerator, error) {
	if c.printed == nil {
		return NewEnumerator(c.u, c.pass, c.opts)
	}
	init := seedInit(c.u, c.pass, c.opts, c.printed, &c.total)
	return NewSeededEnumerator(c.u, c.pass, c.opts, init, c.pass)
}

// foldPass folds the in-flight enumerator's counters into the total.
// Emitted is zeroed first: the cursor counts emissions itself (per-pass
// enumerators also count suppressed duplicates).
func (c *Cursor) foldPass() {
	if c.e == nil {
		return
	}
	s := c.e.Stats()
	s.Emitted = 0
	c.total.Add(s)
	c.e = nil
}

// Stats returns a snapshot of the counters accumulated so far,
// including the in-flight pass.
func (c *Cursor) Stats() Stats {
	s := c.total
	if c.e != nil {
		es := c.e.Stats()
		es.Emitted = 0
		s.Add(es)
	}
	return s
}

// Err returns the error that terminated the enumeration, if any.
func (c *Cursor) Err() error { return c.err }

// Close abandons the enumeration. It is idempotent; Next returns
// ok=false afterwards. Closing releases no external resources — the
// cursor holds only heap state — but folds the in-flight pass so Stats
// stays accurate.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.foldPass()
	c.closed = true
}
