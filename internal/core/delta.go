package core

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/tupleset"
)

// NewDeltaEnumerator prepares the delta enumeration of an append: u is
// a universe over the extended database, whose relation seed received
// appended tuples at indices firstNew..Len-1. The enumeration produces
// exactly the maximal JCC sets of the extended database that contain
// an appended tuple — the results the append created — with the same
// polynomial-delay machinery as a full FDi(R) run, but seeded and
// anchored on the batch only.
//
// Why this is exactly the delta. A tuple set holds at most one tuple
// per relation, so "contains an appended tuple" is equivalent to "its
// relation-seed member has index ≥ firstNew" — the set's anchor is new.
// The anchor of an Incomplete set is invariant for its whole life:
// extension never adds a second seed-relation tuple (same-relation
// conflict), and TryAbsorb merges only sets sharing their anchor (two
// distinct seed-relation tuples are never JCC). Seeding Incomplete
// with the appended singletons therefore satisfies the initialisation
// conditions of Remark 4.3 restricted to the new tuples, and the
// minIdx floor in getNextResult discards discovered candidates whose
// anchor predates the append — those candidates grow into results of
// the old full disjunction, which the caller already has. Soundness
// (every emitted set is maximal JCC with a new anchor) and
// completeness (every such set is emitted once) then follow from
// Theorem 4.10's argument verbatim, with "tuples of Ri" read as
// "appended tuples of Ri" throughout.
//
// The results an emitted delta set strictly contains — old results it
// subsumes — are not re-derived here; internal/delta computes the
// subsumption against the caller's old result list with the signature/
// bitset containment check (Set.ContainsAll).
func NewDeltaEnumerator(u *tupleset.Universe, seed, firstNew int, opts Options) (*Enumerator, error) {
	e, err := newBareEnumerator(u, seed, opts, 0)
	if err != nil {
		return nil, err
	}
	rel := u.DB.Relation(seed)
	if firstNew < 0 || firstNew > rel.Len() {
		return nil, fmt.Errorf("core: delta first-new index %d out of range [0,%d]", firstNew, rel.Len())
	}
	e.minIdx = int32(firstNew)
	for i := firstNew; i < rel.Len(); i++ {
		e.incomplete.Push(u.Singleton(relation.Ref{Rel: int32(seed), Idx: int32(i)}))
	}
	return e, nil
}
