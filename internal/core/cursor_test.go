package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

func cursorDB(t *testing.T) *relation.Database {
	t.Helper()
	db, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 10, Domain: 3, NullRate: 0.1, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestCursorMatchesStream checks that the pull-based cursor and the
// push-based Stream produce identical result sequences and counters for
// every strategy/index combination.
func TestCursorMatchesStream(t *testing.T) {
	db := cursorDB(t)
	variants := []Options{
		{},
		{UseIndex: true},
		{UseIndex: true, UseJoinIndex: true},
		{UseIndex: true, Strategy: InitSeeded},
		{UseIndex: true, UseJoinIndex: true, Strategy: InitProjected},
	}
	for _, opts := range variants {
		var want []string
		wantStats, err := Stream(db, opts, func(s *tupleset.Set) bool {
			want = append(want, s.Key())
			return true
		})
		if err != nil {
			t.Fatal(err)
		}

		c, err := NewCursor(context.Background(), db, opts)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for {
			s, ok := c.Next()
			if !ok {
				break
			}
			got = append(got, s.Key())
		}
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		c.Close()
		if len(got) != len(want) {
			t.Fatalf("%+v: cursor emitted %d results, Stream %d", opts, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%+v: sequence diverges at %d", opts, i)
			}
		}
		if cs := c.Stats(); cs != wantStats {
			t.Errorf("%+v: cursor stats %+v, Stream stats %+v", opts, cs, wantStats)
		}
	}
}

// TestCursorCloseMidway checks that an abandoned cursor stops emitting
// and folds the in-flight pass into its counters.
func TestCursorCloseMidway(t *testing.T) {
	db := cursorDB(t)
	c, err := NewCursor(context.Background(), db, Options{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := c.Next(); !ok {
			t.Fatal("enumeration exhausted before the cut-off")
		}
	}
	c.Close()
	if _, ok := c.Next(); ok {
		t.Fatal("Next after Close emitted a result")
	}
	s := c.Stats()
	if s.Emitted != 3 {
		t.Errorf("closed cursor Emitted = %d, want 3", s.Emitted)
	}
	if s.JCCChecks == 0 || s.TuplesScanned == 0 {
		t.Errorf("in-flight pass counters not folded: %+v", s)
	}
	c.Close() // idempotent
}

// TestCursorNoGoroutineLeak asserts the leak contract of the cursor
// design: abandoning enumerations mid-flight leaves no goroutine
// behind, because a suspended enumeration is explicit state, not a
// producer goroutine.
func TestCursorNoGoroutineLeak(t *testing.T) {
	db := cursorDB(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		c, err := NewCursor(context.Background(), db, Options{UseIndex: true, UseJoinIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		c.Next()
		c.Next()
		c.Close()
	}
	assertNoExtraGoroutines(t, before)
}

// assertNoExtraGoroutines retries briefly so unrelated runtime
// goroutines winding down don't flake the comparison.
func assertNoExtraGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
