package core

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

func touristU(t *testing.T) (*tupleset.Universe, map[string]relation.Ref) {
	t.Helper()
	db := workload.Tourist()
	u := tupleset.NewUniverse(db)
	refs := map[string]relation.Ref{}
	db.ForEachRef(func(r relation.Ref) bool { refs[db.Label(r)] = r; return true })
	return u, refs
}

// TestQueueDiscipline pins the Table 3 list behaviour in isolation:
// pop from the front; staged sets flush to the front as a group in
// creation order.
func TestQueueDiscipline(t *testing.T) {
	u, refs := touristU(t)
	q := NewIncompleteQueue(u, 0, false)
	c1, c2, c3 := u.Singleton(refs["c1"]), u.Singleton(refs["c2"]), u.Singleton(refs["c3"])
	q.Push(c1)
	q.Push(c2)
	q.Push(c3)
	q.Flush()
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	got, ok := q.Pop()
	if !ok || !got.Equal(c1) {
		t.Fatalf("first pop = %v", got)
	}
	// Stage two new sets mid-iteration; they must pop before c2.
	a := u.FromRefs(refs["c1"], refs["a2"])
	b := u.FromRefs(refs["c1"], refs["s2"])
	q.Push(a)
	q.Push(b)
	q.Flush()
	wantOrder := []*tupleset.Set{a, b, c2, c3}
	for i, want := range wantOrder {
		got, ok := q.Pop()
		if !ok || !got.Equal(want) {
			t.Fatalf("pop %d = %v, want %v", i, got, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("queue should be empty")
	}
}

// TestQueuePopAutoFlush: Pop flushes staged sets itself.
func TestQueuePopAutoFlush(t *testing.T) {
	u, refs := touristU(t)
	q := NewIncompleteQueue(u, 0, false)
	q.Push(u.Singleton(refs["c1"]))
	got, ok := q.Pop() // no explicit Flush
	if !ok || got.Len() != 1 {
		t.Fatal("auto-flush failed")
	}
}

// TestQueueAbsorb checks the merge of lines 14–15 against both the
// indexed and unindexed implementations, including staged sets.
func TestQueueAbsorb(t *testing.T) {
	for _, useIndex := range []bool{false, true} {
		u, refs := touristU(t)
		q := NewIncompleteQueue(u, 0, useIndex)
		var stats Stats
		base := u.FromRefs(refs["c1"], refs["a2"])
		q.Push(base)
		q.Flush()
		// {c1, s1} merges into {c1, a2} (same c1, JCC union).
		if !q.TryAbsorb(u.FromRefs(refs["c1"], refs["s1"]), refs["c1"], &stats) {
			t.Fatalf("index=%v: absorb failed", useIndex)
		}
		got, _ := q.Pop()
		if got.Format(u.DB) != "{c1, a2, s1}" {
			t.Errorf("index=%v: merged set = %s", useIndex, got.Format(u.DB))
		}
		// Popped sets are dead: nothing to absorb into.
		if q.TryAbsorb(u.FromRefs(refs["c1"], refs["s2"]), refs["c1"], &stats) {
			t.Errorf("index=%v: absorbed into a popped set", useIndex)
		}
		// A set with a different seed tuple never merges.
		q.Push(u.Singleton(refs["c2"]))
		q.Flush()
		if q.TryAbsorb(u.FromRefs(refs["c1"], refs["s2"]), refs["c1"], &stats) {
			t.Errorf("index=%v: merged across different seed tuples", useIndex)
		}
	}
}

// TestQueueSnapshotOrder: staged sets come first, then the main list
// front to back.
func TestQueueSnapshotOrder(t *testing.T) {
	u, refs := touristU(t)
	q := NewIncompleteQueue(u, 0, false)
	q.Push(u.Singleton(refs["c1"]))
	q.Push(u.Singleton(refs["c2"]))
	q.Flush()
	q.Push(u.Singleton(refs["c3"])) // staged
	snap := q.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %d sets", len(snap))
	}
	want := []string{"{c3}", "{c1}", "{c2}"}
	for i, s := range snap {
		if s.Format(u.DB) != want[i] {
			t.Errorf("snapshot[%d] = %s, want %s", i, s.Format(u.DB), want[i])
		}
	}
}

// TestCompleteStoreContainment checks the line-11 test with and without
// the member index.
func TestCompleteStoreContainment(t *testing.T) {
	for _, useIndex := range []bool{false, true} {
		u, refs := touristU(t)
		cs := NewCompleteStore(u, useIndex)
		var stats Stats
		big := u.FromRefs(refs["c1"], refs["a2"], refs["s1"])
		cs.Add(big)
		sub := u.FromRefs(refs["c1"], refs["a2"])
		if !cs.ContainsSuperset(sub, refs["c1"], &stats) {
			t.Errorf("index=%v: containment missed", useIndex)
		}
		other := u.FromRefs(refs["c1"], refs["a1"])
		if cs.ContainsSuperset(other, refs["c1"], &stats) {
			t.Errorf("index=%v: false containment", useIndex)
		}
		disjoint := u.FromRefs(refs["c2"], refs["s3"])
		if cs.ContainsSuperset(disjoint, refs["c2"], &stats) {
			t.Errorf("index=%v: containment across different anchors", useIndex)
		}
		if cs.Len() != 1 || len(cs.Sets()) != 1 {
			t.Errorf("index=%v: store bookkeeping wrong", useIndex)
		}
	}
}
