package core
