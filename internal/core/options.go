package core

import (
	"slices"

	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tupleset"
)

// InitStrategy selects how the Incomplete list of pass i of the
// full-disjunction driver is initialised (Section 7, "Minimizing
// repeated work"). All strategies produce the same full disjunction;
// they differ in how much work the later passes repeat.
type InitStrategy int

const (
	// InitSingletons is the textbook initialisation of Fig 1: pass i
	// seeds Incomplete with {t} for every t ∈ Ri and scans the whole
	// database. Results containing a tuple of an earlier relation are
	// suppressed by the driver (they were printed by an earlier pass).
	InitSingletons InitStrategy = iota
	// InitSeeded is the second §7 option: pass i seeds Incomplete with
	// the previously printed tuple sets that contain a tuple of Ri,
	// plus {t} for every t ∈ Ri not covered by a previous result; scans
	// are restricted to tuples of Ri..Rn and results subsumed by a
	// previously printed set are suppressed.
	InitSeeded
	// InitProjected is the third §7 option: previously printed sets are
	// projected onto relations Ri..Rn (keeping the connected component
	// of their Ri tuple), extended, and deduplicated before seeding;
	// otherwise as InitSeeded.
	InitProjected
)

// String names the strategy.
func (s InitStrategy) String() string {
	switch s {
	case InitSingletons:
		return "singletons"
	case InitSeeded:
		return "seeded"
	case InitProjected:
		return "projected"
	default:
		return "unknown"
	}
}

// TraceFunc observes the state of the lists after each GetNextResult
// call; it reproduces Table 3 of the paper. The slices are snapshots
// and may be retained.
type TraceFunc func(iteration int, printed *tupleset.Set, incomplete, complete []*tupleset.Set)

// Options configures the algorithms.
type Options struct {
	// UseIndex enables the §7 hash index: Complete and Incomplete are
	// bucketed by their tuple from the seed relation, so the searches
	// of GETNEXTRESULT lines 11 and 14 touch only candidate sets that
	// could possibly match.
	UseIndex bool
	// UseJoinIndex enables candidate-only database scans backed by the
	// dictionary-code posting index: instead of sweeping every tuple,
	// GETNEXTRESULT visits only the tuples that equi-match a member of
	// the current set on a shared attribute (plus, in the discovery
	// phase, every tuple of the seed relation — the only tuples that
	// can yield a new candidate subset without such a match). The
	// produced full disjunction is identical as a set; the enumeration
	// order of individual results may differ from the sweep. Stats
	// records the probes and the tuples the sweep would have visited.
	UseJoinIndex bool
	// BlockSize is the number of tuples fetched per simulated page read
	// during database scans (block-based execution, §7). Zero or one
	// means tuple-at-a-time execution.
	BlockSize int
	// Pool, when non-nil, routes page fetches through a simulated LRU
	// buffer pool: only misses count as PageReads, and the pool's
	// hit/miss counters expose the caching behaviour a real database
	// buffer would show under the algorithm's scan pattern.
	Pool *storage.BufferPool
	// Strategy selects the Incomplete initialisation of the
	// full-disjunction driver.
	Strategy InitStrategy
	// Trace, when non-nil, receives a snapshot after every
	// GetNextResult call of a single-seed enumeration.
	Trace TraceFunc
	// TaskObserver, when non-nil, receives a TaskSpan each time a
	// parallel enumeration task finishes (label, wall-clock extent,
	// and the task's folded counters). Called from worker goroutines.
	// Unlike Trace and Pool it is compatible with parallel execution —
	// it exists to observe it — and is ignored on the sequential path.
	TaskObserver TaskObserver
}

func (o Options) blockSize() int {
	if o.BlockSize < 1 {
		return 1
	}
	return o.BlockSize
}

// Scanner walks database tuples in deterministic order while counting
// tuples and simulated page reads. minRel restricts the scan to
// relations minRel..n-1 (used by the seeded/projected strategies).
// With a buffer pool attached, only buffer misses count as page reads.
//
// With useJoinIndex set, the extension and discovery walks consult the
// dictionary-code posting index and visit only equi-match candidates;
// otherwise they fall back to the full sweep. Scanner is exported so
// sibling enumeration packages (internal/approx) share the same scan
// accounting and candidate generation instead of re-encoding it.
type Scanner struct {
	db           *relation.Database
	block        int
	minRel       int
	stats        *Stats
	pool         *storage.BufferPool
	useJoinIndex bool
	// cand[r] is reusable scratch for candidate tuple indices of
	// relation r gathered from posting lookups.
	cand [][]int32
}

// NewScanner builds a scanner over db driven by the scan knobs of opts
// (block size, buffer pool, join index), restricted to relations
// minRel..n-1, accounting into stats. Callers whose qualifying-set
// predicate is weaker than exact join consistency (approximate joins
// under a non-exact similarity) must clear opts.UseJoinIndex before
// constructing: the candidate walks are only exhaustive for predicates
// that force an equi-match.
func NewScanner(db *relation.Database, opts Options, minRel int, stats *Stats) *Scanner {
	return &Scanner{db: db, block: opts.blockSize(), minRel: minRel, stats: stats,
		pool: opts.Pool, useJoinIndex: opts.UseJoinIndex}
}

// ForEach visits every tuple in scope; fn returning false stops early.
func (sc *Scanner) ForEach(fn func(relation.Ref) bool) {
	for r := sc.minRel; r < sc.db.NumRelations(); r++ {
		n := sc.db.Relation(r).Len()
		for i := 0; i < n; i++ {
			sc.page(r, int(i))
			sc.stats.TuplesScanned++
			if !fn(relation.Ref{Rel: int32(r), Idx: int32(i)}) {
				return
			}
		}
	}
}

// page accounts one tuple access at (rel, idx) against the simulated
// block/page model: the first access of each block of a (monotone
// ascending) walk counts a read, or a pool fetch when a buffer pool is
// attached.
func (sc *Scanner) page(rel, idx int) {
	if idx%sc.block == 0 {
		sc.pageBlock(rel, idx/sc.block)
	}
}

func (sc *Scanner) pageBlock(rel, blk int) {
	if sc.pool != nil {
		if !sc.pool.Fetch(storage.PageID{Rel: int32(rel), Block: int32(blk)}) {
			sc.stats.PageReads++
		}
	} else {
		sc.stats.PageReads++
	}
}

// scopeTuples returns the number of tuples a full sweep would visit.
func (sc *Scanner) scopeTuples() int64 {
	var n int64
	for r := sc.minRel; r < sc.db.NumRelations(); r++ {
		n += int64(sc.db.Relation(r).Len())
	}
	return n
}

// ForEachExtension drives the maximal-extension walk of GETNEXTRESULT
// lines 2–6: it visits every tuple tg that could satisfy JCC(T∪{tg}).
// A valid extension must be connected to T and join consistent with
// every member, so it must equi-match (non-null code equality) some
// member of T on the first shared attribute position of an adjacent
// relation pair — exactly what the posting index returns.
func (sc *Scanner) ForEachExtension(T *tupleset.Set, fn func(relation.Ref) bool) {
	if !sc.useJoinIndex {
		sc.ForEach(fn)
		return
	}
	sc.forEachCandidate(T, -1, false, fn)
}

// ForEachDiscovery drives the candidate-subset walk of GETNEXTRESULT
// lines 7–18: it visits every tuple tb whose maximal subset T' of
// T∪{tb} (footnote 3) can contain a tuple of the seed relation. For
// tb not of the seed relation, T' reaches the seed tuple only through
// a member whose relation is adjacent to tb's and that survives the
// join-consistency filter — forcing an equi-match with that member, so
// the posting candidates plus the full seed relation cover every tb
// the sweep would not skip at line 9.
func (sc *Scanner) ForEachDiscovery(T *tupleset.Set, seed int, fn func(relation.Ref) bool) {
	if !sc.useJoinIndex {
		sc.ForEach(fn)
		return
	}
	sc.forEachCandidate(T, seed, true, fn)
}

// forEachCandidate gathers equi-match candidates for the members of T
// from the posting index and visits them in deterministic (relation,
// tuple) order, mirroring the sweep's order restricted to candidates.
// seedAll ≥ minRel names a relation to be visited in full; includeInT
// selects whether relations already represented in T yield candidates
// (discovery needs replacement tuples, extension cannot use them).
func (sc *Scanner) forEachCandidate(T *tupleset.Set, seedAll int, includeInT bool, fn func(relation.Ref) bool) {
	db := sc.db
	n := db.NumRelations()
	ix := db.Index()
	if sc.cand == nil {
		sc.cand = make([][]int32, n)
	}
	for r := range sc.cand {
		sc.cand[r] = sc.cand[r][:0]
	}
	for _, m := range T.Refs() {
		for _, r2 := range db.Adjacent(int(m.Rel)) {
			if r2 < sc.minRel || r2 == seedAll {
				continue // out of scan scope / already visited in full
			}
			if !includeInT && T.HasRelation(r2) {
				continue // an extension into a represented relation never passes JCC
			}
			p := db.SharedPositions(int(m.Rel), r2)[0]
			code := db.Code(m, p.P1)
			if code == relation.NullCode {
				continue // ⊥ joins with nothing
			}
			sc.stats.IndexProbes++
			sc.cand[r2] = append(sc.cand[r2], ix.Postings(r2, p.P2, code)...)
		}
	}
	visited := int64(0)
	defer func() {
		sc.stats.TuplesSkipped += sc.scopeTuples() - visited
	}()
	for r := sc.minRel; r < n; r++ {
		if r == seedAll {
			m := db.Relation(r).Len()
			for i := 0; i < m; i++ {
				sc.page(r, i)
				sc.stats.TuplesScanned++
				visited++
				if !fn(relation.Ref{Rel: int32(r), Idx: int32(i)}) {
					return
				}
			}
			continue
		}
		idxs := sortDedup(sc.cand[r])
		sc.cand[r] = idxs
		lastBlock := -1
		for _, i := range idxs {
			if blk := int(i) / sc.block; blk != lastBlock {
				lastBlock = blk
				sc.pageBlock(r, blk)
			}
			sc.stats.TuplesScanned++
			visited++
			if !fn(relation.Ref{Rel: int32(r), Idx: i}) {
				return
			}
		}
	}
}

// sortDedup sorts idxs ascending and removes duplicates in place
// (posting lists from different members can name the same tuple).
func sortDedup(idxs []int32) []int32 {
	if len(idxs) < 2 {
		return idxs
	}
	slices.Sort(idxs)
	out := idxs[:1]
	for _, v := range idxs[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
